// Memory-model demonstrators: broken variants must show anomalies (where
// the hardware can), fixed variants must show zero — the project-8 table.
#include "memmodel/demos.hpp"

#include <gtest/gtest.h>

namespace parc::memmodel {
namespace {

TEST(LostUpdate, UnsynchronisedLosesUpdates) {
  const auto r = lost_update_demo(Sync::kUnsynchronised, 20000, 4);
  EXPECT_EQ(r.trials, 80000u);
  // The split load/store with yields loses updates on any machine,
  // including single-core (preemption in the window).
  EXPECT_GT(r.anomalies, 0u);
}

TEST(LostUpdate, AtomicRmwIsExact) {
  const auto r = lost_update_demo(Sync::kAtomicRmw, 20000, 4);
  EXPECT_EQ(r.anomalies, 0u);
}

TEST(LostUpdate, MutexIsExact) {
  const auto r = lost_update_demo(Sync::kMutex, 10000, 4);
  EXPECT_EQ(r.anomalies, 0u);
}

TEST(LostUpdate, SeqCstAndAcqRelAreExact) {
  EXPECT_EQ(lost_update_demo(Sync::kSeqCst, 5000, 2).anomalies, 0u);
  EXPECT_EQ(lost_update_demo(Sync::kAcqRel, 5000, 2).anomalies, 0u);
}

TEST(LostUpdate, AnomalyRateComputation) {
  DemoResult r;
  r.trials = 100;
  r.anomalies = 25;
  EXPECT_DOUBLE_EQ(r.anomaly_rate(), 0.25);
  EXPECT_DOUBLE_EQ(DemoResult{}.anomaly_rate(), 0.0);
}

TEST(StoreBufferLitmus, SeqCstForbidsTheAnomaly) {
  // The (0,0) outcome is impossible under sequential consistency — on any
  // hardware, any core count.
  const auto r = store_buffer_litmus(Sync::kSeqCst, 20000);
  EXPECT_EQ(r.anomalies, 0u);
  EXPECT_EQ(r.trials, 20000u);
}

TEST(StoreBufferLitmus, RelaxedRunsToCompletion) {
  // Relaxed ordering *allows* the anomaly; whether it manifests depends on
  // the hardware (it cannot on a single-core container, where interleaving
  // semantics hold). The test asserts the harness itself is sound.
  const auto r = store_buffer_litmus(Sync::kUnsynchronised, 20000);
  EXPECT_EQ(r.trials, 20000u);
  EXPECT_LE(r.anomalies, r.trials);
}

TEST(UnsafePublication, AcqRelNeverTears) {
  const auto r = unsafe_publication_demo(Sync::kAcqRel, 50000);
  EXPECT_EQ(r.anomalies, 0u);
}

TEST(UnsafePublication, SeqCstNeverTears) {
  const auto r = unsafe_publication_demo(Sync::kSeqCst, 50000);
  EXPECT_EQ(r.anomalies, 0u);
}

TEST(UnsafePublication, RelaxedHarnessRuns) {
  const auto r = unsafe_publication_demo(Sync::kUnsynchronised, 50000);
  EXPECT_EQ(r.trials, 50000u);  // anomalies hardware-dependent
}

TEST(CheckThenAct, UnsynchronisedDoubleClaims) {
  const auto r = check_then_act_demo(Sync::kUnsynchronised, 20000, 4);
  EXPECT_GT(r.anomalies, 0u);
}

TEST(CheckThenAct, CasVariantsNeverDoubleClaim) {
  EXPECT_EQ(check_then_act_demo(Sync::kAtomicRmw, 20000, 4).anomalies, 0u);
  EXPECT_EQ(check_then_act_demo(Sync::kSeqCst, 10000, 4).anomalies, 0u);
  EXPECT_EQ(check_then_act_demo(Sync::kAcqRel, 10000, 4).anomalies, 0u);
}

TEST(CheckThenAct, MutexNeverDoubleClaims) {
  EXPECT_EQ(check_then_act_demo(Sync::kMutex, 10000, 4).anomalies, 0u);
}

TEST(DoubleCheckedLocking, FixedVariantsInitialiseExactlyOnce) {
  for (const auto sync :
       {Sync::kAcqRel, Sync::kSeqCst, Sync::kMutex, Sync::kAtomicRmw}) {
    const auto r = double_checked_locking_demo(sync, 500, 4);
    EXPECT_EQ(r.anomalies, 0u) << to_string(sync);
    EXPECT_EQ(r.trials, 500u);
  }
}

TEST(DoubleCheckedLocking, BrokenVariantHarnessRuns) {
  // The relaxed-publication bug needs weak hardware to manifest; the
  // harness must still run cleanly and count consistently.
  const auto r = double_checked_locking_demo(Sync::kUnsynchronised, 500, 4);
  EXPECT_EQ(r.trials, 500u);
  EXPECT_LE(r.anomalies, 2 * r.trials);
}

TEST(Demos, CostIsMeasured) {
  const auto r = lost_update_demo(Sync::kAtomicRmw, 10000, 2);
  EXPECT_GT(r.ns_per_op, 0.0);
}

TEST(Demos, SyncNamesRoundTrip) {
  EXPECT_EQ(to_string(Sync::kUnsynchronised), "unsynchronised");
  EXPECT_EQ(to_string(Sync::kAtomicRmw), "atomic-rmw");
  EXPECT_EQ(to_string(Sync::kMutex), "mutex");
  EXPECT_EQ(to_string(Sync::kSeqCst), "seq-cst");
  EXPECT_EQ(to_string(Sync::kAcqRel), "acq-rel");
}

}  // namespace
}  // namespace parc::memmodel
