// Graph kernels: CSR structure, BFS seq/parallel agreement, PageRank
// conservation and convergence properties.
#include "kernels/graph.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

namespace parc::kernels {
namespace {

constexpr auto kUnreached = std::numeric_limits<std::uint32_t>::max();

TEST(CsrGraph, BuildsFromEdgeList) {
  const CsrGraph g(4, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.out_degree(0), 3u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.out_degree(3), 0u);
  // Neighbours of 0 are {1, 2, 3} in insertion order.
  std::vector<std::uint32_t> n0(g.neighbours_begin(0), g.neighbours_end(0));
  EXPECT_EQ(n0, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(CsrGraph, OutOfRangeEdgeAborts) {
  EXPECT_DEATH(CsrGraph(2, {{0, 5}}), "");
}

TEST(Bfs, LineGraphDistances) {
  // 0 → 1 → 2 → 3
  const CsrGraph g(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto dist = bfs_seq(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableVerticesFlagged) {
  const CsrGraph g(4, {{0, 1}});
  const auto dist = bfs_seq(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreached);
  EXPECT_EQ(dist[3], kUnreached);
}

TEST(Bfs, ShortestPathPickedOverLonger) {
  // Two routes 0→3: direct edge and via 1,2.
  const CsrGraph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const auto dist = bfs_seq(g, 0);
  EXPECT_EQ(dist[3], 1u);
}

TEST(Bfs, ParallelMatchesSequentialOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto g = make_random_graph(2000, 4.0, seed);
    const auto seq = bfs_seq(g, 0);
    for (std::size_t threads : {1u, 2u, 4u}) {
      const auto par = bfs_pj(g, 0, threads);
      ASSERT_EQ(par, seq) << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(Bfs, ParallelMatchesSequentialOnSkewedGraph) {
  const auto g = make_skewed_graph(1500, 6.0, 7);
  const auto seq = bfs_seq(g, 0);
  const auto par = bfs_pj(g, 0, 4, {pj::Schedule::kDynamic, 8});
  EXPECT_EQ(par, seq);
}

TEST(Bfs, SelfLoopsAndDuplicateEdgesHarmless) {
  const CsrGraph g(3, {{0, 0}, {0, 1}, {0, 1}, {1, 2}});
  const auto dist = bfs_seq(g, 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(PageRank, SumsToOne) {
  const auto g = make_random_graph(500, 5.0, 11);
  const auto rank = pagerank_seq(g, 30);
  const double total = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, ParallelMatchesSequential) {
  const auto g = make_random_graph(800, 4.0, 13);
  const auto seq = pagerank_seq(g, 25);
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto par = pagerank_pj(g, 25, threads);
    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t v = 0; v < seq.size(); ++v) {
      ASSERT_NEAR(par[v], seq[v], 1e-9) << v;
    }
  }
}

TEST(PageRank, HubAccumulatesRank) {
  // Star: everyone points at vertex 0.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 1; v < 50; ++v) edges.push_back({v, 0});
  const CsrGraph g(50, edges);
  const auto rank = pagerank_seq(g, 40);
  for (std::uint32_t v = 1; v < 50; ++v) {
    EXPECT_GT(rank[0], rank[v] * 10.0);
  }
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 → 1, 1 dangles: without dangling handling rank would leak.
  const CsrGraph g(2, {{0, 1}});
  const auto rank = pagerank_seq(g, 60);
  EXPECT_NEAR(rank[0] + rank[1], 1.0, 1e-9);
  EXPECT_GT(rank[1], rank[0]);  // 1 receives everything 0 sends
}

TEST(Generators, AreDeterministic) {
  const auto g1 = make_random_graph(300, 3.0, 5);
  const auto g2 = make_random_graph(300, 3.0, 5);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  const auto s1 = make_skewed_graph(300, 3.0, 5);
  const auto s2 = make_skewed_graph(300, 3.0, 5);
  EXPECT_EQ(s1.num_edges(), s2.num_edges());
}

TEST(Generators, SkewedGraphHasHubs) {
  const auto g = make_skewed_graph(1000, 8.0, 17);
  std::size_t max_deg = 0;
  double total = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
    total += static_cast<double>(g.out_degree(v));
  }
  const double avg = total / 1000.0;
  EXPECT_GT(static_cast<double>(max_deg), avg * 10.0);
}

}  // namespace
}  // namespace parc::kernels
