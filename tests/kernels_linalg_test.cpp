// Linear algebra: GEMM variants against the naive oracle, LU reconstruction
// and solve residuals, SpMV seq/parallel agreement.
#include "kernels/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parc::kernels {
namespace {

TEST(Matrix, BasicsAndIdentity) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id.at(0, 1), 0.0);
}

TEST(Matrix, RandomIsDeterministic) {
  const auto a = Matrix::random(5, 5, 42);
  const auto b = Matrix::random(5, 5, 42);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  const auto c = Matrix::random(5, 5, 43);
  EXPECT_GT(a.max_abs_diff(c), 0.0);
}

TEST(Gemm, IdentityIsNeutral) {
  const auto a = Matrix::random(16, 16, 1);
  const auto c = gemm_seq(a, Matrix::identity(16));
  EXPECT_LT(c.max_abs_diff(a), 1e-12);
}

TEST(Gemm, KnownSmallProduct) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const auto c = gemm_seq(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(Gemm, BlockedMatchesNaive) {
  const auto a = Matrix::random(37, 53, 2);   // awkward sizes on purpose
  const auto b = Matrix::random(53, 41, 3);
  const auto naive = gemm_seq(a, b);
  for (std::size_t block : {8u, 16u, 64u, 100u}) {
    EXPECT_LT(gemm_blocked(a, b, block).max_abs_diff(naive), 1e-12)
        << "block=" << block;
  }
}

TEST(Gemm, ParallelMatchesNaiveAcrossConfigs) {
  const auto a = Matrix::random(48, 48, 4);
  const auto b = Matrix::random(48, 48, 5);
  const auto naive = gemm_seq(a, b);
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (const auto schedule : {pj::Schedule::kStatic, pj::Schedule::kDynamic}) {
      EXPECT_LT(gemm_pj(a, b, threads, {schedule, 4}).max_abs_diff(naive),
                1e-12);
    }
  }
}

TEST(Gemm, CollapsedMatchesNaive) {
  // Including a wide-short matrix where rows < threads: the case collapse
  // exists for.
  const auto a = Matrix::random(3, 64, 6);
  const auto b = Matrix::random(64, 96, 7);
  const auto naive = gemm_seq(a, b);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EXPECT_LT(
        gemm_pj_collapsed(a, b, threads, {pj::Schedule::kDynamic, 32})
            .max_abs_diff(naive),
        1e-12);
  }
}

TEST(Gemm, DimensionMismatchAborts) {
  const auto a = Matrix::random(4, 5, 1);
  const auto b = Matrix::random(4, 5, 1);
  EXPECT_DEATH((void)gemm_seq(a, b), "");
}

Matrix reconstruct_from_lu(const LuResult& lu) {
  const std::size_t n = lu.lu.rows();
  // PA = LU  →  A = Pᵀ L U; rebuild row perm[i] of A from row i of L·U.
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k <= std::min(i, j); ++k) {
        const double l = (k == i) ? 1.0 : lu.lu.at(i, k);
        const double u = lu.lu.at(k, j);
        acc += l * u;
      }
      a.at(lu.perm[i], j) = acc;
    }
  }
  return a;
}

TEST(Lu, ReconstructsOriginalMatrix) {
  const auto a = Matrix::random(24, 24, 6);
  const auto lu = lu_decompose_seq(a);
  const auto rebuilt = reconstruct_from_lu(lu);
  EXPECT_LT(rebuilt.max_abs_diff(a), 1e-9);
}

TEST(Lu, ParallelMatchesSequential) {
  const auto a = Matrix::random(32, 32, 7);
  const auto seq = lu_decompose_seq(a);
  for (std::size_t threads : {1u, 2u, 4u}) {
    const auto par = lu_decompose_pj(a, threads);
    EXPECT_LT(par.lu.max_abs_diff(seq.lu), 1e-9) << threads;
    EXPECT_EQ(par.perm, seq.perm);
    EXPECT_EQ(par.sign, seq.sign);
  }
}

TEST(Lu, SolveRecoversKnownSolution) {
  constexpr std::size_t kN = 20;
  const auto a = Matrix::random(kN, kN, 8);
  std::vector<double> x_true(kN);
  for (std::size_t i = 0; i < kN; ++i) x_true[i] = static_cast<double>(i) - 10.0;
  // b = A · x_true
  std::vector<double> b(kN, 0.0);
  for (std::size_t i = 0; i < kN; ++i) {
    for (std::size_t j = 0; j < kN; ++j) b[i] += a.at(i, j) * x_true[j];
  }
  const auto lu = lu_decompose_seq(a);
  const auto x = lu_solve(lu, b);
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_NEAR(x[i], x_true[i], 1e-8) << i;
  }
}

TEST(Lu, SingularMatrixAborts) {
  Matrix a(3, 3, 0.0);  // all zeros
  EXPECT_DEATH((void)lu_decompose_seq(a), "singular");
}

TEST(Lu, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto lu = lu_decompose_seq(a);
  const auto x = lu_solve(lu, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Spmv, RandomMatrixSeqVsParallel) {
  const auto a = CsrMatrix::random(200, 150, 0.05, 9);
  std::vector<double> x(150);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i % 13) - 6.0;
  }
  const auto y_seq = spmv_seq(a, x);
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (const auto schedule : {pj::Schedule::kStatic, pj::Schedule::kGuided}) {
      const auto y_par = spmv_pj(a, x, threads, {schedule, 0});
      ASSERT_EQ(y_par.size(), y_seq.size());
      for (std::size_t i = 0; i < y_seq.size(); ++i) {
        ASSERT_NEAR(y_par[i], y_seq[i], 1e-12);
      }
    }
  }
}

TEST(Spmv, CsrStructureIsValid) {
  const auto a = CsrMatrix::random(100, 100, 0.1, 10);
  EXPECT_EQ(a.row_offsets.size(), 101u);
  EXPECT_EQ(a.row_offsets.front(), 0u);
  EXPECT_EQ(a.row_offsets.back(), a.values.size());
  EXPECT_EQ(a.col_index.size(), a.values.size());
  for (std::size_t r = 0; r < a.rows; ++r) {
    EXPECT_LE(a.row_offsets[r], a.row_offsets[r + 1]);
    for (std::size_t k = a.row_offsets[r]; k < a.row_offsets[r + 1]; ++k) {
      EXPECT_LT(a.col_index[k], a.cols);
    }
  }
}

TEST(Spmv, EmptyRowsYieldZero) {
  CsrMatrix m;
  m.rows = 3;
  m.cols = 3;
  m.row_offsets = {0, 0, 1, 1};
  m.col_index = {1};
  m.values = {5.0};
  const auto y = spmv_seq(m, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0);
  EXPECT_DOUBLE_EQ(y[2], 0.0);
}

}  // namespace
}  // namespace parc::kernels
