// Chase–Lev deque: single-owner semantics plus owner/thief stress tests
// checking that every pushed element is consumed exactly once.
#include "sched/chase_lev_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace parc::sched {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
};

TEST(ChaseLevDeque, PopFromEmptyIsNull) {
  ChaseLevDeque<Item> d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_TRUE(d.empty_approx());
}

TEST(ChaseLevDeque, OwnerPopsLifo) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.pop()->value, 3);
  EXPECT_EQ(d.pop()->value, 2);
  EXPECT_EQ(d.pop()->value, 1);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(ChaseLevDeque, ThiefStealsFifo) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.steal()->value, 1);
  EXPECT_EQ(d.steal()->value, 2);
  EXPECT_EQ(d.steal()->value, 3);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(ChaseLevDeque, MixedPopAndSteal) {
  ChaseLevDeque<Item> d;
  Item a(1), b(2), c(3);
  d.push(&a);
  d.push(&b);
  d.push(&c);
  EXPECT_EQ(d.steal()->value, 1);  // oldest
  EXPECT_EQ(d.pop()->value, 3);    // newest
  EXPECT_EQ(d.pop()->value, 2);    // last one, owner wins
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<Item> d(8);
  std::vector<std::unique_ptr<Item>> items;
  for (int i = 0; i < 1000; ++i) {
    items.push_back(std::make_unique<Item>(i));
    d.push(items.back().get());
  }
  EXPECT_EQ(d.size_approx(), 1000u);
  for (int i = 999; i >= 0; --i) {
    Item* it = d.pop();
    ASSERT_NE(it, nullptr);
    ASSERT_EQ(it->value, i);
  }
}

TEST(ChaseLevDequeStress, EveryItemConsumedExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<Item> d;
  std::vector<std::unique_ptr<Item>> items;
  items.reserve(kItems);
  for (int i = 0; i < kItems; ++i) items.push_back(std::make_unique<Item>(i));

  std::vector<std::atomic<int>> seen(kItems);
  for (auto& s : seen) s.store(0);
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};

  auto consume = [&](Item* it) {
    seen[static_cast<std::size_t>(it->value)].fetch_add(1);
    consumed.fetch_add(1);
  };

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (consumed.load() < kItems) {
        if (Item* it = d.steal()) {
          consume(it);
        } else if (done_producing.load() && d.empty_approx() &&
                   consumed.load() >= kItems) {
          break;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner interleaves pushes and pops.
  for (int i = 0; i < kItems; ++i) {
    d.push(items[static_cast<std::size_t>(i)].get());
    if (i % 3 == 0) {
      if (Item* it = d.pop()) consume(it);
    }
  }
  done_producing.store(true);
  while (Item* it = d.pop()) consume(it);
  for (auto& t : thieves) t.join();
  // Anything left (shouldn't be) would be a lost item.
  while (Item* it = d.pop()) consume(it);

  EXPECT_EQ(consumed.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace parc::sched
