// Image generation / resize filters / PPM round-trip / thumbnail pipeline.
#include "img/ppm.hpp"
#include "img/thumbnails.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

namespace parc::img {
namespace {

TEST(Image, GenerationIsDeterministic) {
  const auto a = generate_image(64, 48, 42);
  const auto b = generate_image(64, 48, 42);
  EXPECT_EQ(a.content_hash(), b.content_hash());
  const auto c = generate_image(64, 48, 43);
  EXPECT_NE(a.content_hash(), c.content_hash());
}

TEST(Image, DimensionsAndPixelAccess) {
  auto img = generate_image(10, 20, 1);
  EXPECT_EQ(img.width(), 10u);
  EXPECT_EQ(img.height(), 20u);
  EXPECT_EQ(img.pixels().size(), 200u);
  img.at(3, 4) = Pixel{1, 2, 3, 4};
  EXPECT_EQ(img.at(3, 4), (Pixel{1, 2, 3, 4}));
}

TEST(Image, LuminanceNontrivial) {
  const auto img = generate_image(128, 128, 7);
  const double lum = img.mean_luminance();
  EXPECT_GT(lum, 20.0);
  EXPECT_LT(lum, 235.0);
}

class ResizeFilterTest : public ::testing::TestWithParam<Filter> {};

TEST_P(ResizeFilterTest, OutputDimensionsMatch) {
  const auto src = generate_image(97, 61, 3);
  const auto dst = resize(src, 32, 24, GetParam());
  EXPECT_EQ(dst.width(), 32u);
  EXPECT_EQ(dst.height(), 24u);
}

TEST_P(ResizeFilterTest, ConstantImageStaysConstant) {
  Image src(50, 50);
  for (std::uint32_t y = 0; y < 50; ++y) {
    for (std::uint32_t x = 0; x < 50; ++x) {
      src.at(x, y) = Pixel{100, 150, 200, 255};
    }
  }
  const auto dst = resize(src, 17, 13, GetParam());
  for (std::uint32_t y = 0; y < dst.height(); ++y) {
    for (std::uint32_t x = 0; x < dst.width(); ++x) {
      const Pixel& p = dst.at(x, y);
      ASSERT_NEAR(p.r, 100, 1);
      ASSERT_NEAR(p.g, 150, 1);
      ASSERT_NEAR(p.b, 200, 1);
    }
  }
}

TEST_P(ResizeFilterTest, MeanLuminanceRoughlyPreserved) {
  const auto src = generate_image(256, 256, 9);
  const auto dst = resize(src, 64, 64, GetParam());
  EXPECT_NEAR(dst.mean_luminance(), src.mean_luminance(),
              src.mean_luminance() * 0.1 + 3.0);
}

TEST_P(ResizeFilterTest, UpscaleWorks) {
  const auto src = generate_image(16, 16, 5);
  const auto dst = resize(src, 64, 64, GetParam());
  EXPECT_EQ(dst.width(), 64u);
  EXPECT_NEAR(dst.mean_luminance(), src.mean_luminance(),
              src.mean_luminance() * 0.15 + 5.0);
}

INSTANTIATE_TEST_SUITE_P(AllFilters, ResizeFilterTest,
                         ::testing::Values(Filter::kBox, Filter::kBilinear,
                                           Filter::kBicubic),
                         [](const ::testing::TestParamInfo<Filter>& info) {
                           return to_string(info.param);
                         });

TEST(FitWithin, PreservesAspect) {
  const auto landscape = fit_within(400, 200, 100);
  EXPECT_EQ(landscape.width, 100u);
  EXPECT_EQ(landscape.height, 50u);
  const auto portrait = fit_within(200, 400, 100);
  EXPECT_EQ(portrait.width, 50u);
  EXPECT_EQ(portrait.height, 100u);
  const auto square = fit_within(300, 300, 64);
  EXPECT_EQ(square.width, 64u);
  EXPECT_EQ(square.height, 64u);
}

TEST(FitWithin, ExtremeAspectNeverZero) {
  const auto e = fit_within(10000, 3, 64);
  EXPECT_GE(e.height, 1u);
}

TEST(ImageFolder, DeterministicAndWithinBounds) {
  const auto folder = make_image_folder(20, 32, 256, 99);
  EXPECT_EQ(folder.images.size(), 20u);
  for (const auto& img : folder.images) {
    EXPECT_GE(img.width(), 32u);
    EXPECT_LE(img.width(), 256u);
    EXPECT_GE(img.height(), 32u);
    EXPECT_LE(img.height(), 256u);
  }
  const auto again = make_image_folder(20, 32, 256, 99);
  EXPECT_EQ(folder.total_pixels(), again.total_pixels());
}

TEST(Ppm, RoundTripPreservesRgb) {
  const auto original = generate_image(37, 21, 8);
  std::stringstream buffer;
  write_ppm(original, buffer);
  const auto back = read_ppm(buffer);
  ASSERT_EQ(back.width(), original.width());
  ASSERT_EQ(back.height(), original.height());
  for (std::uint32_t y = 0; y < original.height(); ++y) {
    for (std::uint32_t x = 0; x < original.width(); ++x) {
      const Pixel& a = original.at(x, y);
      const Pixel& b = back.at(x, y);
      ASSERT_EQ(a.r, b.r);
      ASSERT_EQ(a.g, b.g);
      ASSERT_EQ(a.b, b.b);
    }
  }
}

TEST(Ppm, HeaderHasExpectedShape) {
  const auto img = generate_image(4, 2, 1);
  std::stringstream buffer;
  write_ppm(img, buffer);
  std::string magic, dims;
  buffer >> magic;
  EXPECT_EQ(magic, "P6");
}

TEST(Ppm, CommentsInHeaderAreSkipped) {
  std::stringstream buffer;
  buffer << "P6\n# a comment\n2 1\n255\n";
  buffer.write("\x01\x02\x03\x04\x05\x06", 6);
  const auto img = read_ppm(buffer);
  EXPECT_EQ(img.width(), 2u);
  EXPECT_EQ(img.at(1, 0).b, 6);
}

TEST(Ppm, RejectsWrongMagic) {
  std::stringstream buffer;
  buffer << "P3\n2 2\n255\n";
  EXPECT_DEATH((void)read_ppm(buffer), "P6");
}

TEST(Ppm, RejectsTruncatedPixels) {
  std::stringstream buffer;
  buffer << "P6\n4 4\n255\nxx";
  EXPECT_DEATH((void)read_ppm(buffer), "truncated");
}

TEST(Ppm, FileRoundTrip) {
  const auto original = generate_image(16, 16, 3);
  const std::string path = "/tmp/parc_ppm_test.ppm";
  save_ppm(original, path);
  const auto back = load_ppm(path);
  EXPECT_EQ(back.content_hash() != 0, true);
  EXPECT_EQ(back.width(), 16u);
  EXPECT_EQ(back.at(5, 5).r, original.at(5, 5).r);
}

class ThumbnailStrategyTest
    : public ::testing::TestWithParam<ThumbnailStrategy> {};

TEST_P(ThumbnailStrategyTest, DeliversAllThumbnailsToModel) {
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  gui::EventLoop loop;
  gui::ListModel<Image> gallery(loop);
  const auto folder = make_image_folder(12, 16, 64, 3);
  const auto run = render_gallery(folder, 32, Filter::kBilinear, GetParam(),
                                  loop, gallery, rt);
  EXPECT_EQ(run.thumbnails, 12u);
  const auto items = gallery.snapshot();
  ASSERT_EQ(items.size(), 12u);
  for (const auto& thumb : items) {
    EXPECT_LE(thumb.width(), 32u);
    EXPECT_LE(thumb.height(), 32u);
    EXPECT_GE(std::max(thumb.width(), thumb.height()), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ThumbnailStrategyTest,
    ::testing::Values(ThumbnailStrategy::kOnEventThread,
                      ThumbnailStrategy::kSingleWorker,
                      ThumbnailStrategy::kThreadPerImage,
                      ThumbnailStrategy::kPTaskMulti),
    [](const ::testing::TestParamInfo<ThumbnailStrategy>& info) {
      std::string name = to_string(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(ThumbnailPipeline, OffEdtStrategiesKeepThumbnailContentEqual) {
  // Any strategy must produce the same set of thumbnail hashes.
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  const auto folder = make_image_folder(8, 16, 48, 5);
  auto hashes_for = [&](ThumbnailStrategy s) {
    gui::EventLoop loop;
    gui::ListModel<Image> gallery(loop);
    render_gallery(folder, 24, Filter::kBox, s, loop, gallery, rt);
    std::vector<std::uint64_t> hashes;
    for (const auto& t : gallery.snapshot()) hashes.push_back(t.content_hash());
    std::sort(hashes.begin(), hashes.end());
    return hashes;
  };
  const auto a = hashes_for(ThumbnailStrategy::kSingleWorker);
  const auto b = hashes_for(ThumbnailStrategy::kPTaskMulti);
  const auto c = hashes_for(ThumbnailStrategy::kThreadPerImage);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
}  // namespace parc::img
