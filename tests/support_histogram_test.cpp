// LogHistogram: bucket placement, percentile error bounds against the exact
// Summary, merge associativity, and the clamp contract for out-of-range
// samples — the properties the serving stack's latency reporting relies on.
#include "support/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace parc {
namespace {

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogram, SingleSampleEveryPercentile) {
  LogHistogram h(1e-6, 1e3);
  h.add(0.042);
  EXPECT_EQ(h.count(), 1u);
  for (double p : {0.0, 1.0, 50.0, 99.0, 99.9, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_NEAR(v, 0.042, 0.042 * 0.08) << p;
  }
  EXPECT_DOUBLE_EQ(h.min_seen(), 0.042);
  EXPECT_DOUBLE_EQ(h.max_seen(), 0.042);
  EXPECT_DOUBLE_EQ(h.sum(), 0.042);
}

TEST(LogHistogram, BucketBoundsCoverRangeGeometrically) {
  LogHistogram h(1e-3, 1e3, 8);
  // Regular buckets tile [min, max) without gaps; each is a factor of
  // 10^(1/8) wide.
  const double step = std::pow(10.0, 1.0 / 8.0);
  for (std::size_t i = 1; i + 1 < h.bucket_count(); ++i) {
    EXPECT_NEAR(h.bucket_high(i) / h.bucket_low(i), step, 1e-9) << i;
    if (i + 2 < h.bucket_count()) {
      EXPECT_NEAR(h.bucket_high(i), h.bucket_low(i + 1), 1e-12) << i;
    }
  }
  EXPECT_DOUBLE_EQ(h.bucket_low(1), 1e-3);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 1e-3);
}

TEST(LogHistogram, OutOfRangeSamplesClampNeverLost) {
  LogHistogram h(1e-3, 1e3);
  h.add(1e-9);   // underflow
  h.add(0.0);    // underflow
  h.add(1e9);    // overflow
  h.add(1.0);    // regular
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(h.bucket_count() - 1), 1u);
  // Extremes are reported exactly even though they clamped.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1e9);
}

TEST(LogHistogram, PercentilesTrackSummaryWithinBucketError) {
  // 50k log-normal "latencies": the exact Summary percentile and the
  // bucketed estimate must agree within half a bucket width (~3.7% at 32
  // buckets/decade; assert 8% for slack at distribution edges).
  Rng rng(1234);
  LogHistogram h(1e-6, 1e3, 32);
  Summary s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(std::log(2e-3), 0.8);
    h.add(x);
    s.add(x);
  }
  EXPECT_EQ(h.count(), 50000u);
  for (double p : {10.0, 50.0, 90.0, 99.0, 99.9}) {
    const double exact = s.percentile(p);
    const double approx = h.percentile(p);
    EXPECT_NEAR(approx, exact, exact * 0.08) << "p" << p;
  }
  EXPECT_NEAR(h.mean(), s.mean(), s.mean() * 1e-9);  // sum kept exactly
}

TEST(LogHistogram, MergeEqualsCombinedStream) {
  Rng rng(77);
  LogHistogram a(1e-6, 1e3), b(1e-6, 1e3), combined(1e-6, 1e3);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(0.005);
    if (i % 3 == 0) {
      a.add(x);
    } else {
      b.add(x);
    }
    combined.add(x);
  }
  a.merge(b);
  ASSERT_EQ(a.count(), combined.count());
  for (std::size_t i = 0; i < a.bucket_count(); ++i) {
    EXPECT_EQ(a.bucket(i), combined.bucket(i)) << i;
  }
  EXPECT_DOUBLE_EQ(a.min_seen(), combined.min_seen());
  EXPECT_DOUBLE_EQ(a.max_seen(), combined.max_seen());
  EXPECT_DOUBLE_EQ(a.p999(), combined.p999());
  EXPECT_NEAR(a.sum(), combined.sum(), combined.sum() * 1e-12);
}

TEST(LogHistogram, MergeIntoEmptyAdoptsExtremes) {
  LogHistogram a, b;
  b.add(0.25);
  b.add(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min_seen(), 0.25);
  EXPECT_DOUBLE_EQ(a.max_seen(), 0.5);
}

TEST(LogHistogram, LayoutMismatchDetected) {
  LogHistogram a(1e-6, 1e3, 32);
  LogHistogram narrow(1e-3, 1e3, 32);
  LogHistogram coarse(1e-6, 1e3, 8);
  EXPECT_TRUE(a.same_layout(LogHistogram(1e-6, 1e3, 32)));
  EXPECT_FALSE(a.same_layout(narrow));
  EXPECT_FALSE(a.same_layout(coarse));
}

TEST(LogHistogram, AddNCountsInBulk) {
  LogHistogram h;
  h.add_n(0.01, 1000);
  h.add_n(0.1, 10);
  EXPECT_EQ(h.count(), 1010u);
  EXPECT_NEAR(h.p50(), 0.01, 0.01 * 0.08);
  EXPECT_NEAR(h.percentile(99.5), 0.1, 0.1 * 0.08);
  EXPECT_DOUBLE_EQ(h.sum(), 0.01 * 1000 + 0.1 * 10);
}

TEST(LogHistogram, ResetClears) {
  LogHistogram h;
  h.add(1.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
  h.add(2.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.max_seen(), 2.0);
}

TEST(LogHistogram, DescribeAndRenderMentionTheData) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.add(0.001 * (i + 1));
  const std::string d = h.describe("s");
  EXPECT_NE(d.find("p50"), std::string::npos);
  EXPECT_NE(d.find("p999"), std::string::npos);
  EXPECT_NE(d.find("n=100"), std::string::npos);
  EXPECT_NE(h.render().find('#'), std::string::npos);
  EXPECT_EQ(LogHistogram().render(), "(empty)\n");
}

TEST(LogHistogram, MonotoneAcrossPercentiles) {
  Rng rng(9);
  LogHistogram h;
  for (int i = 0; i < 10000; ++i) h.add(rng.pareto(1e-4, 1.3));
  double prev = 0.0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << p;
    prev = v;
  }
}

}  // namespace
}  // namespace parc
