// Web-fetch simulation: conservation properties, latency-hiding shape,
// bandwidth ceiling, the real-time downloader agreement, and the keep-alive
// ConnectionPool (reuse, caps, timeouts) under concurrent fetches.
#include "net/downloader.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

namespace parc::net {
namespace {

NetParams fast_params() {
  NetParams p;
  p.mean_latency_s = 0.05;
  p.mean_page_bytes = 100e3;
  p.bandwidth_bps = 10e6;
  p.per_connection_overhead_s = 0.002;
  return p;
}

TEST(MakePageSet, DeterministicAndPositive) {
  const auto params = fast_params();
  const auto a = make_page_set(100, params, 42);
  const auto b = make_page_set(100, params, 42);
  ASSERT_EQ(a.size(), 100u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a[i].latency_s, b[i].latency_s);
    ASSERT_GT(a[i].size_bytes, 0.0);
    ASSERT_GE(a[i].latency_s, 0.0);
  }
}

TEST(SimulateFetch, OneConnectionIsSerial) {
  const auto params = fast_params();
  const auto pages = make_page_set(50, params, 7);
  const auto result = simulate_fetch(pages, 1, params);
  // Serial: makespan equals the sum of each page's latency + transfer.
  double expected = 0.0;
  for (const auto& p : pages) {
    expected +=
        p.latency_s + params.per_connection_overhead_s +
        p.size_bytes / params.bandwidth_bps;
  }
  EXPECT_NEAR(result.makespan_s, expected, expected * 1e-9);
}

TEST(SimulateFetch, MoreConnectionsNeverSlowerUntilSaturation) {
  const auto params = fast_params();
  const auto pages = make_page_set(200, params, 11);
  double prev = simulate_fetch(pages, 1, params).makespan_s;
  for (std::size_t c : {2u, 4u, 8u, 16u}) {
    const double cur = simulate_fetch(pages, c, params).makespan_s;
    EXPECT_LE(cur, prev * 1.0001) << c;
    prev = cur;
  }
}

TEST(SimulateFetch, BandwidthLowerBoundHolds) {
  const auto params = fast_params();
  const auto pages = make_page_set(300, params, 13);
  double total_bytes = 0.0;
  for (const auto& p : pages) total_bytes += p.size_bytes;
  const double floor_s = total_bytes / params.bandwidth_bps;
  for (std::size_t c : {1u, 8u, 64u, 256u}) {
    const auto r = simulate_fetch(pages, c, params);
    EXPECT_GE(r.makespan_s, floor_s * 0.999) << c;
  }
}

TEST(SimulateFetch, ThroughputKneesAtBandwidthBound) {
  // Latency-dominated regime: going 1 → 8 connections must give a large
  // speedup; 64 → 256 must give almost none (already bandwidth-bound).
  NetParams params = fast_params();
  params.mean_latency_s = 0.2;            // strongly latency-bound at first
  const auto pages = make_page_set(400, params, 17);
  const double t1 = simulate_fetch(pages, 1, params).makespan_s;
  const double t8 = simulate_fetch(pages, 8, params).makespan_s;
  const double t64 = simulate_fetch(pages, 64, params).makespan_s;
  const double t256 = simulate_fetch(pages, 256, params).makespan_s;
  EXPECT_GT(t1 / t8, 4.0);          // big win while latency-bound
  EXPECT_LT(t64 / t256, 1.3);       // diminishing past the knee
}

TEST(SimulateFetch, UtilisationApproachesOneWhenSaturated) {
  const auto params = fast_params();
  const auto pages = make_page_set(300, params, 19);
  const auto r = simulate_fetch(pages, 128, params);
  EXPECT_GT(r.bandwidth_utilisation, 0.5);
  EXPECT_LE(r.bandwidth_utilisation, 1.0 + 1e-9);
}

TEST(SimulateFetch, StatisticsAreConsistent) {
  const auto params = fast_params();
  const auto pages = make_page_set(64, params, 23);
  const auto r = simulate_fetch(pages, 4, params);
  EXPECT_GT(r.mean_page_s, 0.0);
  EXPECT_GE(r.p95_page_s, r.mean_page_s * 0.5);
  EXPECT_NEAR(r.throughput_pages_s, 64.0 / r.makespan_s, 1e-9);
}

TEST(SimulateFetch, HostsAssignedWithinRange) {
  NetParams params = fast_params();
  params.num_hosts = 8;
  const auto pages = make_page_set(200, params, 41);
  for (const auto& p : pages) ASSERT_LT(p.host, 8u);
  // Zipf skew: host 0 most popular.
  std::size_t host0 = 0;
  for (const auto& p : pages) host0 += (p.host == 0);
  EXPECT_GT(host0, 200u / 8);
}

TEST(SimulateFetch, PerHostCapLimitsThroughput) {
  // One popular host, many connections: capping connections-per-host must
  // slow the fetch versus uncapped, and a cap of 1 serialises that host.
  NetParams params = fast_params();
  params.num_hosts = 1;  // everything on one host
  params.mean_latency_s = 0.2;  // latency-bound → caps bite hard
  const auto pages = make_page_set(100, params, 43);

  NetParams uncapped = params;
  uncapped.per_host_cap = 0;
  NetParams six = params;
  six.per_host_cap = 6;
  NetParams one = params;
  one.per_host_cap = 1;

  const double t_uncapped = simulate_fetch(pages, 64, uncapped).makespan_s;
  const double t_six = simulate_fetch(pages, 64, six).makespan_s;
  const double t_one = simulate_fetch(pages, 64, one).makespan_s;
  EXPECT_LT(t_uncapped, t_six);
  EXPECT_LT(t_six, t_one);
  // Cap 1 on a single host equals the serial bound regardless of the
  // client's 64 connections.
  const double serial = simulate_fetch(pages, 1, uncapped).makespan_s;
  EXPECT_NEAR(t_one, serial, serial * 1e-6);
}

TEST(SimulateFetch, CapsAcrossManyHostsStillComplete) {
  NetParams params = fast_params();
  params.num_hosts = 16;
  params.per_host_cap = 2;
  const auto pages = make_page_set(300, params, 47);
  const auto r = simulate_fetch(pages, 32, params);
  EXPECT_GT(r.makespan_s, 0.0);
  EXPECT_NEAR(r.throughput_pages_s, 300.0 / r.makespan_s, 1e-9);
}

TEST(SimWebServer, FetchReturnsPageBytes) {
  const auto params = fast_params();
  auto pages = make_page_set(5, params, 29);
  SimWebServer server(pages, params, 0.001);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(server.fetch(i), pages[i].size_bytes);
  }
}

TEST(Downloader, FetchesEveryPageOnce) {
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  const auto params = fast_params();
  const auto pages = make_page_set(40, params, 31);
  double expected_bytes = 0.0;
  for (const auto& p : pages) expected_bytes += p.size_bytes;
  SimWebServer server(pages, params, 0.0005);
  const auto run = download_all(server, 8, rt);
  EXPECT_EQ(run.pages, 40u);
  EXPECT_NEAR(run.bytes, expected_bytes, 1e-6);
}

TEST(ConnectionPool, ReusesIdleConnectionSerially) {
  ConnectionPool pool(PoolOptions{16, 6, 1.0});
  auto a = pool.acquire(3);
  ASSERT_TRUE(a.valid);
  EXPECT_FALSE(a.reused);
  const std::uint64_t id = a.conn_id;
  pool.release(a);
  EXPECT_FALSE(a.valid);  // lease invalidated by release
  auto b = pool.acquire(3);
  ASSERT_TRUE(b.valid);
  EXPECT_TRUE(b.reused);
  EXPECT_EQ(b.conn_id, id);  // same kept-alive connection
  pool.release(b);
  const auto s = pool.stats();
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.open, 1u);
  EXPECT_EQ(s.idle, 1u);
  EXPECT_EQ(s.in_use, 0u);
}

TEST(ConnectionPool, DistinctHostsDoNotShareConnections) {
  ConnectionPool pool(PoolOptions{16, 6, 1.0});
  auto a = pool.acquire(1);
  pool.release(a);
  auto b = pool.acquire(2);  // host 1's idle conn must not serve host 2
  ASSERT_TRUE(b.valid);
  EXPECT_FALSE(b.reused);
  pool.release(b);
  EXPECT_EQ(pool.stats().created, 2u);
}

TEST(ConnectionPool, PerHostCapBlocksThenTimesOut) {
  ConnectionPool pool(PoolOptions{16, 2, 0.05});
  auto a = pool.acquire(7);
  auto b = pool.acquire(7);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);
  auto c = pool.acquire(7);  // third simultaneous conn to host 7: over cap
  EXPECT_FALSE(c.valid);
  EXPECT_EQ(pool.stats().timeouts, 1u);
  pool.release(a);
  auto d = pool.acquire(7);  // freed slot: reuse, no wait
  EXPECT_TRUE(d.valid);
  EXPECT_TRUE(d.reused);
  pool.release(b);
  pool.release(d);
}

TEST(ConnectionPool, GlobalCapClosesIdleConnectionOfAnotherHost) {
  ConnectionPool pool(PoolOptions{2, 2, 0.05});
  auto a = pool.acquire(1);
  auto b = pool.acquire(2);
  pool.release(a);  // host 1's conn goes idle; pool is at max_connections
  auto c = pool.acquire(3);  // needs room: must close host 1's idle conn
  ASSERT_TRUE(c.valid);
  EXPECT_FALSE(c.reused);
  const auto s = pool.stats();
  EXPECT_EQ(s.closed, 1u);
  EXPECT_EQ(s.open, 2u);
  EXPECT_EQ(s.created, s.closed + s.open);
  pool.release(b);
  pool.release(c);
}

TEST(ConnectionPool, WaiterWakesWhenConnectionReleased) {
  ConnectionPool pool(PoolOptions{1, 1, 5.0});
  auto a = pool.acquire(9);
  ASSERT_TRUE(a.valid);
  std::thread waiter([&] {
    auto b = pool.acquire(9);  // blocks until the release below
    EXPECT_TRUE(b.valid);
    EXPECT_TRUE(b.reused);
    pool.release(b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.release(a);
  waiter.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.timeouts, 0u);
}

TEST(ConnectionPool, ConcurrentSameHostFetchesReuseAndConserve) {
  // Satellite 2's core scenario: many threads hammer one host through a
  // small pool. Connections must be reused (not one per fetch), nothing
  // times out with a generous budget, and the stats conserve exactly at
  // quiescence: created == closed + open, open == idle, and every
  // successful acquire was created-or-reused.
  NetParams params = fast_params();
  params.num_hosts = 1;
  const auto pages = make_page_set(64, params, 53);
  SimWebServer server(pages, params, 0.0002);
  ConnectionPool pool(PoolOptions{4, 4, 10.0});

  constexpr int kThreads = 8;
  constexpr int kFetchesEach = 16;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  std::atomic<double> bytes{0.0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetchesEach; ++i) {
        const auto f =
            fetch_pooled(server, pool, (t * kFetchesEach + i) % 64);
        if (f.ok) {
          ok.fetch_add(1);
          double cur = bytes.load();
          while (!bytes.compare_exchange_weak(cur, cur + f.bytes)) {
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok.load(), kThreads * kFetchesEach);
  const auto s = pool.stats();
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_LE(s.created, 4u);  // never more than the global cap
  EXPECT_EQ(s.created + s.reused,
            static_cast<std::uint64_t>(kThreads * kFetchesEach));
  EXPECT_GT(s.reused, s.created);  // keep-alive actually paid off
  EXPECT_EQ(s.created, s.closed + s.open);
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(s.idle, s.open);
}

TEST(ConnectionPool, SaturatedPoolTimesOutConcurrently) {
  // Every connection checked out and never released: all pooled fetches
  // must shed via timeout rather than queue forever.
  NetParams params = fast_params();
  params.num_hosts = 1;
  const auto pages = make_page_set(8, params, 59);
  SimWebServer server(pages, params, 0.0001);
  ConnectionPool pool(PoolOptions{2, 2, 0.03});
  auto a = pool.acquire(pages[0].host);
  auto b = pool.acquire(pages[0].host);
  ASSERT_TRUE(a.valid);
  ASSERT_TRUE(b.valid);

  std::vector<std::thread> threads;
  std::atomic<int> timed_out{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const auto f = fetch_pooled(server, pool, 0);
      if (f.timed_out) timed_out.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(timed_out.load(), 4);
  EXPECT_EQ(pool.stats().timeouts, 4u);
  pool.release(a);
  pool.release(b);
}

TEST(ConnectionPool, PooledFetchReportsBytesAndConnection) {
  const auto params = fast_params();
  const auto pages = make_page_set(4, params, 61);
  SimWebServer server(pages, params, 0.0002);
  ConnectionPool pool(PoolOptions{4, 4, 1.0});
  const auto f0 = fetch_pooled(server, pool, 0);
  ASSERT_TRUE(f0.ok);
  EXPECT_DOUBLE_EQ(f0.bytes, pages[0].size_bytes);
  EXPECT_FALSE(f0.reused_connection);
  const auto f1 = fetch_pooled(server, pool, 0);  // same page, same host
  ASSERT_TRUE(f1.ok);
  EXPECT_TRUE(f1.reused_connection);
  EXPECT_EQ(f1.conn_id, f0.conn_id);
}

TEST(Downloader, ConcurrentBeatsSequentialInRealTime) {
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  NetParams params = fast_params();
  params.mean_latency_s = 0.1;  // latency-bound: concurrency pays even on 1 core
  const auto pages = make_page_set(30, params, 37);
  SimWebServer server(pages, params, 0.02);
  const auto seq = download_sequential(server);
  const auto par = download_all(server, 16, rt);
  EXPECT_LT(par.wall_ms, seq.wall_ms * 0.6);
}

}  // namespace
}  // namespace parc::net
