// Corpus generation oracle, BMH/regex search, parallel search agreement,
// PDF granularity searches.
#include "text/text.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

namespace parc::text {
namespace {

ptask::Runtime& test_runtime() {
  static ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  return rt;
}

TEST(FindAllLiteral, BasicOccurrences) {
  const auto hits = find_all_literal("abracadabra", "abra");
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 7}));
}

TEST(FindAllLiteral, OverlappingMatches) {
  const auto hits = find_all_literal("aaaa", "aa");
  EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(FindAllLiteral, NoMatchAndLongNeedle) {
  EXPECT_TRUE(find_all_literal("short", "longerneedle").empty());
  EXPECT_TRUE(find_all_literal("abc", "xyz").empty());
}

TEST(FindAllLiteral, SingleCharNeedle) {
  const auto hits = find_all_literal("banana", "a");
  EXPECT_EQ(hits, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(FindAllLiteral, EmptyNeedleAborts) {
  EXPECT_DEATH((void)find_all_literal("abc", ""), "");
}

TEST(SearchFileLiteral, LineAndColumnResolution) {
  TextFile f{"a.txt", "first line\nneedle here\nand a needle\n"};
  const auto matches = search_file_literal(f, 7, "needle");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], (Match{7, 2, 0}));
  EXPECT_EQ(matches[1], (Match{7, 3, 6}));
}

TEST(SearchFileRegex, FindsPatternPerLine) {
  TextFile f{"a.txt", "abc123\nxyz\n456def\n"};
  const std::regex digits("[0-9]+");
  const auto matches = search_file_regex(f, 0, digits);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].line, 1u);
  EXPECT_EQ(matches[0].column, 3u);
  EXPECT_EQ(matches[1].line, 3u);
  EXPECT_EQ(matches[1].column, 0u);
}

TEST(Corpus, GenerationMatchesOracle) {
  CorpusOptions opts;
  opts.num_files = 64;
  opts.needle = "concurrency";
  const auto gen = make_corpus(opts, 123);
  EXPECT_EQ(gen.corpus.files.size(), 64u);
  // The planted needles are exactly the true matches.
  const auto found = search_corpus_seq(gen.corpus, opts.needle);
  ASSERT_EQ(found.size(), gen.needles.size());
  for (std::size_t i = 0; i < found.size(); ++i) {
    EXPECT_EQ(found[i].file_index, gen.needles[i].file_index);
    EXPECT_EQ(found[i].line, gen.needles[i].line);
    EXPECT_EQ(found[i].column, gen.needles[i].column);
  }
}

TEST(Corpus, DeterministicForSeed) {
  CorpusOptions opts;
  opts.num_files = 16;
  const auto a = make_corpus(opts, 5);
  const auto b = make_corpus(opts, 5);
  EXPECT_EQ(a.corpus.total_bytes(), b.corpus.total_bytes());
  EXPECT_EQ(a.needles.size(), b.needles.size());
  const auto c = make_corpus(opts, 6);
  EXPECT_NE(a.corpus.total_bytes(), c.corpus.total_bytes());
}

TEST(Corpus, PathsFormFolderTree) {
  CorpusOptions opts;
  opts.num_files = 8;
  opts.folder_depth = 2;
  const auto gen = make_corpus(opts, 9);
  for (const auto& f : gen.corpus.files) {
    EXPECT_EQ(std::count(f.path.begin(), f.path.end(), '/'), 2);
    EXPECT_NE(f.path.find(".txt"), std::string::npos);
  }
}

TEST(ParallelSearch, MatchesSequential) {
  CorpusOptions opts;
  opts.num_files = 128;
  const auto gen = make_corpus(opts, 77);
  const auto seq = search_corpus_seq(gen.corpus, opts.needle);
  const auto par = search_corpus_ptask(gen.corpus, opts.needle, test_runtime());
  EXPECT_EQ(par, seq);
}

TEST(ParallelSearch, BatchCallbackDeliversEverything) {
  CorpusOptions opts;
  opts.num_files = 64;
  const auto gen = make_corpus(opts, 31);
  std::atomic<std::size_t> via_batches{0};
  const auto par = search_corpus_ptask(
      gen.corpus, opts.needle, test_runtime(),
      [&](const std::vector<Match>& batch) {
        via_batches.fetch_add(batch.size());
      });
  EXPECT_EQ(via_batches.load(), par.size());
  EXPECT_EQ(par.size(), gen.needles.size());
}

TEST(ParallelSearch, RegexAgreesWithLiteralForLiteralPattern) {
  CorpusOptions opts;
  opts.num_files = 48;
  const auto gen = make_corpus(opts, 13);
  const auto literal =
      search_corpus_ptask(gen.corpus, opts.needle, test_runtime());
  const auto regex =
      search_corpus_regex_ptask(gen.corpus, opts.needle, test_runtime());
  EXPECT_EQ(regex, literal);
}

TEST(PdfLibrary, GenerationOracleHolds) {
  PdfLibraryOptions opts;
  opts.num_documents = 32;
  const auto lib = make_pdf_library(opts, 55);
  EXPECT_EQ(lib.documents.size(), 32u);
  const auto result = search_pdfs_seq(lib, opts.needle);
  ASSERT_EQ(result.matches.size(), lib.needles.size());
  for (std::size_t i = 0; i < result.matches.size(); ++i) {
    EXPECT_EQ(result.matches[i].doc_index, lib.needles[i].doc_index);
    EXPECT_EQ(result.matches[i].page_index, lib.needles[i].page_index);
  }
}

TEST(PdfLibrary, PageCountsAreSkewed) {
  PdfLibraryOptions opts;
  opts.num_documents = 64;
  const auto lib = make_pdf_library(opts, 21);
  std::size_t max_pages = 0, min_pages = SIZE_MAX;
  for (const auto& d : lib.documents) {
    max_pages = std::max(max_pages, d.pages.size());
    min_pages = std::min(min_pages, d.pages.size());
  }
  EXPECT_GT(max_pages, min_pages * 3);
}

class PdfGranularityTest : public ::testing::TestWithParam<PdfGranularity> {};

TEST_P(PdfGranularityTest, AllGranularitiesFindTheSameMatches) {
  PdfLibraryOptions opts;
  opts.num_documents = 24;
  const auto lib = make_pdf_library(opts, 8);
  const auto seq = search_pdfs_seq(lib, opts.needle);
  const auto par =
      search_pdfs_ptask(lib, opts.needle, GetParam(), test_runtime());
  EXPECT_EQ(par.matches, seq.matches);
  EXPECT_EQ(par.delivery_ms.size(), par.matches.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllGranularities, PdfGranularityTest,
    ::testing::Values(PdfGranularity::kPerDocument, PdfGranularity::kPerPage,
                      PdfGranularity::kPerChunk),
    [](const ::testing::TestParamInfo<PdfGranularity>& info) {
      std::string name = to_string(info.param);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace parc::text
