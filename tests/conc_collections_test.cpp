// Locked collections, striped map, queues: sequential semantics plus
// multi-threaded exactly-once / linearizability-style stress checks,
// parameterised over lock types.
#include "conc/conc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

namespace parc::conc {
namespace {

// ---------------------------------------------------------------------------
// Lock-type parameterised coarse collections.
// ---------------------------------------------------------------------------

template <typename Lock>
class LockedCollectionsTest : public ::testing::Test {};

using LockTypes = ::testing::Types<std::mutex, TicketLock, SpinLock>;
TYPED_TEST_SUITE(LockedCollectionsTest, LockTypes);

TYPED_TEST(LockedCollectionsTest, VectorConcurrentPushKeepsEverything) {
  LockedVector<int, TypeParam> vec;
  constexpr int kThreads = 4;
  constexpr int kEach = 2000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) vec.push_back(t * kEach + i);
    });
  }
  for (auto& w : workers) w.join();
  auto snapshot = vec.snapshot();
  ASSERT_EQ(snapshot.size(), static_cast<std::size_t>(kThreads * kEach));
  std::sort(snapshot.begin(), snapshot.end());
  for (int i = 0; i < kThreads * kEach; ++i) {
    ASSERT_EQ(snapshot[static_cast<std::size_t>(i)], i);
  }
}

TYPED_TEST(LockedCollectionsTest, SetConcurrentInsertExactlyOneWinner) {
  LockedSet<int, TypeParam> set;
  constexpr int kThreads = 4;
  constexpr int kKeys = 1000;
  std::atomic<int> wins{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        if (set.insert(k)) wins.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(wins.load(), kKeys);  // each key inserted exactly once
  EXPECT_EQ(set.size(), static_cast<std::size_t>(kKeys));
}

TYPED_TEST(LockedCollectionsTest, MapGetOrComputeComputesOnce) {
  LockedMap<int, int, TypeParam> map;
  constexpr int kThreads = 4;
  std::atomic<int> computes{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int k = 0; k < 100; ++k) {
        const int v = map.get_or_compute(k, [&] {
          computes.fetch_add(1);
          return k * 7;
        });
        ASSERT_EQ(v, k * 7);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(computes.load(), 100);  // compute-if-absent is atomic
}

TYPED_TEST(LockedCollectionsTest, DequeBothEndsBalance) {
  LockedDeque<int, TypeParam> deque;
  constexpr int kItems = 4000;
  std::atomic<int> popped{0};
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      if (i % 2 == 0) {
        deque.push_back(i);
      } else {
        deque.push_front(i);
      }
    }
  });
  std::thread consumer([&] {
    while (popped.load() < kItems) {
      if (auto v = deque.pop_front()) {
        popped.fetch_add(1);
      } else if (auto w = deque.pop_back()) {
        popped.fetch_add(1);
      } else {
        std::this_thread::yield();
      }
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(popped.load(), kItems);
  EXPECT_EQ(deque.size(), 0u);
}

// ---------------------------------------------------------------------------
// Basic semantics (single-threaded).
// ---------------------------------------------------------------------------

TEST(LockedVector, AtOutOfRangeIsNullopt) {
  LockedVector<int> v;
  v.push_back(5);
  EXPECT_EQ(v.at(0), 5);
  EXPECT_FALSE(v.at(1).has_value());
}

TEST(LockedVector, WithComposesAtomically) {
  LockedVector<int> v;
  v.push_back(1);
  const int doubled = v.with([](std::vector<int>& data) {
    data.push_back(2);
    return data.front() * 2;
  });
  EXPECT_EQ(doubled, 2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(LockedSet, EraseAndContains) {
  LockedSet<std::string> s;
  EXPECT_TRUE(s.insert("a"));
  EXPECT_FALSE(s.insert("a"));
  EXPECT_TRUE(s.contains("a"));
  EXPECT_TRUE(s.erase("a"));
  EXPECT_FALSE(s.erase("a"));
  EXPECT_FALSE(s.contains("a"));
}

TEST(LockedMap, PutGetErase) {
  LockedMap<std::string, int> m;
  m.put("x", 1);
  m.put("x", 2);  // overwrite
  EXPECT_EQ(m.get("x"), 2);
  EXPECT_FALSE(m.get("y").has_value());
  EXPECT_TRUE(m.erase("x"));
  EXPECT_EQ(m.size(), 0u);
}

// ---------------------------------------------------------------------------
// Striped map.
// ---------------------------------------------------------------------------

TEST(StripedHashMap, StripesRoundedToPowerOfTwo) {
  StripedHashMap<int, int> m(10);
  EXPECT_EQ(m.stripe_count(), 16u);
}

TEST(StripedHashMap, BasicOperations) {
  StripedHashMap<int, std::string> m(8);
  m.put(1, "one");
  m.put(2, "two");
  EXPECT_EQ(m.get(1), "one");
  EXPECT_TRUE(m.contains(2));
  EXPECT_FALSE(m.contains(3));
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.get(1).has_value());
  EXPECT_EQ(m.size(), 1u);
}

TEST(StripedHashMap, UpdateIsAtomicPerKey) {
  StripedHashMap<int, std::uint64_t> m(16);
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        m.update(i % 10, 1, [](std::uint64_t v) { return v + 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  std::uint64_t total = 0;
  for (int k = 0; k < 10; ++k) total += *m.get(k);
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads) * kIncrements);
}

TEST(StripedHashMap, ConcurrentDisjointKeysAllSurvive) {
  StripedHashMap<int, int> m(32);
  constexpr int kThreads = 4;
  constexpr int kEach = 3000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) m.put(t * kEach + i, i);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(m.size(), static_cast<std::size_t>(kThreads * kEach));
}

// Mixed insert/erase/lookup contention with an exact size oracle, at the
// degenerate single-stripe configuration (every operation contends on one
// mutex) and at 64 stripes (the serve cache's substrate). Each thread owns
// a disjoint key range and ends with a computable resident set, so the
// final size is exact, not approximate.
class StripedHashMapContention
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedHashMapContention, MixedOpsExactSizeInvariant) {
  const std::size_t stripes = GetParam();
  StripedHashMap<int, int> m(stripes);
  ASSERT_EQ(m.stripe_count(), stripes);
  constexpr int kThreads = 4;
  constexpr int kKeysEach = 2000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const int base = t * kKeysEach;
      // Phase 1: insert the whole range.
      for (int i = 0; i < kKeysEach; ++i) m.put(base + i, i);
      // Phase 2: interleave lookups (own + a neighbour's range, racing its
      // inserts/erases) with erasing every odd key of the own range.
      const int neighbour = ((t + 1) % kThreads) * kKeysEach;
      for (int i = 0; i < kKeysEach; ++i) {
        if (i % 2 == 1) {
          ASSERT_TRUE(m.erase(base + i)) << base + i;
        } else {
          const auto own = m.get(base + i);
          ASSERT_TRUE(own.has_value());
          ASSERT_EQ(*own, i);
          (void)m.get(neighbour + i);  // may or may not exist: races allowed
        }
      }
      // Phase 3: re-insert a quarter of the erased keys with update().
      for (int i = 1; i < kKeysEach; i += 8) {
        m.update(base + i, i, [](int v) { return v + 1; });
      }
    });
  }
  for (auto& w : workers) w.join();
  // Survivors per thread: kKeysEach/2 even keys + kKeysEach/8 re-inserted
  // odd keys (i = 1, 9, 17, ...).
  const std::size_t expected =
      kThreads * (kKeysEach / 2 + (kKeysEach + 7) / 8);
  EXPECT_EQ(m.size(), expected);
  // Erased-and-not-reinserted keys are really gone; survivors really there.
  for (int t = 0; t < kThreads; ++t) {
    const int base = t * kKeysEach;
    EXPECT_TRUE(m.contains(base));
    EXPECT_TRUE(m.contains(base + 1));   // re-inserted by phase 3
    EXPECT_FALSE(m.contains(base + 3));  // odd, not i % 8 == 1
  }
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, StripedHashMapContention,
                         ::testing::Values(std::size_t{1}, std::size_t{64}),
                         [](const auto& info) {
                           return "stripes" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// StripedLruCache (the serve result cache).
// ---------------------------------------------------------------------------

TEST(StripedLruCache, EvictsLeastRecentlyUsedPerStripe) {
  // One stripe so recency order is global and exactly observable.
  StripedLruCache<int, int> c(3, 1);
  ASSERT_EQ(c.stripe_count(), 1u);
  ASSERT_EQ(c.capacity(), 3u);
  c.put(1, 10);
  c.put(2, 20);
  c.put(3, 30);
  ASSERT_EQ(c.size(), 3u);
  // Touch 1 so 2 becomes LRU, then insert 4: 2 must be the eviction.
  EXPECT_EQ(c.get(1).value(), 10);
  c.put(4, 40);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.get(2).has_value());
  EXPECT_TRUE(c.get(1).has_value());
  EXPECT_TRUE(c.get(3).has_value());
  EXPECT_TRUE(c.get(4).has_value());
  const auto st = c.stats();
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.insertions, 4u);
  EXPECT_EQ(st.misses, 1u);   // the get(2) after eviction
  EXPECT_EQ(st.hits, 4u);
}

TEST(StripedLruCache, PutExistingUpdatesWithoutEviction) {
  StripedLruCache<int, std::string> c(2, 1);
  c.put(1, "a");
  c.put(2, "b");
  c.put(1, "a2");  // update, not insert: no eviction
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.get(1).value(), "a2");
  EXPECT_EQ(c.get(2).value(), "b");
  const auto st = c.stats();
  EXPECT_EQ(st.updates, 1u);
  EXPECT_EQ(st.evictions, 0u);
  // The update refreshed key 1, so inserting 3 evicts 2... but get(2) above
  // re-freshened it; the LRU now is 1 (get order 1 then 2). Verify.
  c.put(3, "c");
  EXPECT_FALSE(c.get(1).has_value());
  EXPECT_TRUE(c.get(2).has_value());
}

TEST(StripedLruCache, EraseInvalidates) {
  StripedLruCache<int, int> c(8, 4);
  c.put(5, 50);
  EXPECT_TRUE(c.erase(5));
  EXPECT_FALSE(c.erase(5));
  EXPECT_FALSE(c.get(5).has_value());
  EXPECT_EQ(c.size(), 0u);
}

TEST(StripedLruCache, CapacitySplitsAcrossStripes) {
  StripedLruCache<int, int> c(64, 16);
  EXPECT_EQ(c.stripe_count(), 16u);
  EXPECT_EQ(c.stripe_capacity(), 4u);
  // Pour in far more keys than capacity: resident size must settle at most
  // at the enforced budget, with exact conservation insert = size + evict.
  for (int i = 0; i < 4096; ++i) c.put(i, i);
  const auto st = c.stats();
  EXPECT_LE(st.size, c.capacity());
  EXPECT_EQ(st.insertions, 4096u);
  EXPECT_EQ(st.insertions, st.evictions + st.size);
}

TEST(StripedLruCache, TtlExpiresOnTheCallerClock) {
  StripedLruCache<int, int> c(8, 1);
  c.put(1, 10, 5.0);  // expires at t = 5.0
  EXPECT_EQ(c.get(1, 4.9).value(), 10);   // still live just before
  EXPECT_FALSE(c.get(1, 5.0).has_value());  // expiry is inclusive at 5.0
  EXPECT_FALSE(c.get(1, 0.0).has_value());  // ... and the entry is GONE
  const auto st = c.stats();
  EXPECT_EQ(st.expired, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);  // the expiring get and the one after
  EXPECT_EQ(st.size, 0u);
}

TEST(StripedLruCache, ClocklessGetNeverExpires) {
  StripedLruCache<int, int> c(8, 1);
  c.put(1, 10, 5.0);
  // The two-arg get (and now_s = 0) means "no clock": TTL is not checked,
  // so callers without a schedule see plain LRU semantics.
  EXPECT_EQ(c.get(1).value(), 10);
  EXPECT_EQ(c.get(1, 0.0).value(), 10);
  EXPECT_EQ(c.stats().expired, 0u);
}

TEST(StripedLruCache, PutRefreshesExpiry) {
  StripedLruCache<int, int> c(8, 1);
  c.put(1, 10, 5.0);
  c.put(1, 11, 9.0);  // update pushes the deadline out
  EXPECT_EQ(c.get(1, 6.0).value(), 11);
  EXPECT_FALSE(c.get(1, 9.0).has_value());
  // An update can also clear the TTL entirely (expire 0 = immortal).
  c.put(2, 20, 5.0);
  c.put(2, 21, 0.0);
  EXPECT_EQ(c.get(2, 100.0).value(), 21);
  EXPECT_EQ(c.stats().expired, 1u);
}

class StripedLruCacheContention
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StripedLruCacheContention, ConcurrentMixedOpsConserveCounts) {
  const std::size_t stripes = GetParam();
  StripedLruCache<int, int> c(256, stripes);
  constexpr int kThreads = 4;
  constexpr int kOps = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Zipf-ish skew via squaring: small keys hot, tail cold.
      std::uint64_t x = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int i = 0; i < kOps; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const int key = static_cast<int>((x % 1000) * (x % 1000) / 1000);
        if (const auto v = c.get(key); v.has_value()) {
          ASSERT_EQ(*v, key * 2);  // values are a pure function of the key
        } else {
          c.put(key, key * 2);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto st = c.stats();
  // Exact conservation at quiescence: every op was a hit or a miss; every
  // miss was followed by a put (insert or racy double-put = update); every
  // insert is either resident or was evicted.
  EXPECT_EQ(st.hits + st.misses, static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(st.misses, st.insertions + st.updates);
  EXPECT_EQ(st.insertions, st.evictions + st.size);
  EXPECT_LE(st.size, c.capacity());
  EXPECT_EQ(c.size(), st.size);
}

INSTANTIATE_TEST_SUITE_P(StripeCounts, StripedLruCacheContention,
                         ::testing::Values(std::size_t{1}, std::size_t{64}),
                         [](const auto& info) {
                           return "stripes" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Queues.
// ---------------------------------------------------------------------------

TEST(MichaelScottQueue, FifoOrderSingleThread) {
  MichaelScottQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (int i = 0; i < 10; ++i) q.enqueue(i);
  for (int i = 0; i < 10; ++i) {
    auto v = q.try_dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_dequeue().has_value());
}

TEST(MichaelScottQueue, MpmcExactlyOnce) {
  MichaelScottQueue<int> q;
  constexpr int kProducers = 2, kConsumers = 2, kEach = 10000;
  std::vector<std::atomic<int>> seen(kProducers * kEach);
  for (auto& s : seen) s.store(0);
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) q.enqueue(p * kEach + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kEach) {
        if (auto v = q.try_dequeue()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& s : seen) ASSERT_EQ(s.load(), 1);
}

TEST(MpmcRing, CapacityRoundsUpAndBounds) {
  MpmcRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_enqueue(i));
  EXPECT_FALSE(ring.try_enqueue(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = ring.try_dequeue();
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, i);  // FIFO
  }
  EXPECT_FALSE(ring.try_dequeue().has_value());
}

TEST(MpmcRing, MpmcExactlyOnceUnderContention) {
  MpmcRing<int> ring(64);
  constexpr int kProducers = 2, kConsumers = 2, kEach = 20000;
  std::vector<std::atomic<int>> seen(kProducers * kEach);
  for (auto& s : seen) s.store(0);
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kEach; ++i) {
        while (!ring.try_enqueue(p * kEach + i)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kEach) {
        if (auto v = ring.try_dequeue()) {
          seen[static_cast<std::size_t>(*v)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& s : seen) ASSERT_EQ(s.load(), 1);
}

// ---------------------------------------------------------------------------
// Queue lifecycle: close()/poison(), aligned with flow::Channel (PR 8).
// Conservation invariant at quiescence: enqueued == dequeued + dropped.
// ---------------------------------------------------------------------------

TEST(MichaelScottQueue, CloseRejectsEnqueueAndDrainsBuffered) {
  MichaelScottQueue<int> q;
  EXPECT_TRUE(q.enqueue(1));
  EXPECT_TRUE(q.enqueue(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.enqueue(3));  // rejected, element dropped by caller
  EXPECT_EQ(q.try_dequeue(), std::optional<int>(1));
  EXPECT_EQ(q.try_dequeue(), std::optional<int>(2));
  EXPECT_FALSE(q.try_dequeue().has_value());
  EXPECT_EQ(q.dropped(), 0u);
}

TEST(MichaelScottQueue, PoisonDropsAndCountsBuffered) {
  MichaelScottQueue<int> q;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.enqueue(i));
  q.poison();
  EXPECT_TRUE(q.closed());
  EXPECT_TRUE(q.poisoned());
  EXPECT_FALSE(q.try_dequeue().has_value());  // drain-on-pop discards
  EXPECT_EQ(q.dropped(), 5u);
  EXPECT_TRUE(q.empty());
}

TEST(MpmcRing, CloseRejectsEnqueueAndDrainsBuffered) {
  MpmcRing<int> ring(4);
  EXPECT_TRUE(ring.try_enqueue(1));
  ring.close();
  EXPECT_FALSE(ring.try_enqueue(2));
  EXPECT_EQ(ring.try_dequeue(), std::optional<int>(1));
  EXPECT_FALSE(ring.try_dequeue().has_value());
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(MpmcRing, PoisonDropsAndCountsBuffered) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(ring.try_enqueue(i));
  ring.poison();
  EXPECT_FALSE(ring.try_dequeue().has_value());
  EXPECT_EQ(ring.dropped(), 6u);
}

// Close fired from a third thread while producers enqueue and consumers
// dequeue full-tilt. Every successful enqueue must be accounted for:
// consumed while live, drained after the race, or (poison variant)
// counted as dropped. No element may vanish or double-deliver.
template <typename Q>
void close_while_concurrent_pop(Q& q, bool use_poison) {
  constexpr int kProducers = 2, kConsumers = 2;
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0;; ++i) {
        bool ok;
        if constexpr (requires { q.enqueue(i); }) {
          ok = q.enqueue(i);
        } else {
          ok = q.try_enqueue(i);
          if (!ok && !q.closed()) continue;  // full, not closed: retry
        }
        if (!ok) return;  // closed under us
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        if (q.try_dequeue().has_value()) {
          popped.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (q.closed()) return;  // closed and (for us) drained
        std::this_thread::yield();
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  if (use_poison) {
    q.poison();
  } else {
    q.close();
  }
  for (auto& t : threads) t.join();
  // Late stragglers: elements enqueued by a producer that raced the close
  // may still sit buffered after every consumer exited. Quiescent drain.
  while (q.try_dequeue().has_value()) {
    popped.fetch_add(1, std::memory_order_relaxed);
  }
  EXPECT_EQ(pushed.load(), popped.load() + q.dropped());
}

TEST(MichaelScottQueue, CloseWhileConcurrentPopConserves) {
  MichaelScottQueue<int> q;
  close_while_concurrent_pop(q, /*use_poison=*/false);
}

TEST(MichaelScottQueue, PoisonWhileConcurrentPopConserves) {
  MichaelScottQueue<int> q;
  close_while_concurrent_pop(q, /*use_poison=*/true);
}

TEST(MpmcRing, CloseWhileConcurrentPopConserves) {
  MpmcRing<int> ring(64);
  close_while_concurrent_pop(ring, /*use_poison=*/false);
}

TEST(MpmcRing, PoisonWhileConcurrentPopConserves) {
  MpmcRing<int> ring(64);
  close_while_concurrent_pop(ring, /*use_poison=*/true);
}

// ---------------------------------------------------------------------------
// Locks.
// ---------------------------------------------------------------------------

TEST(TicketLock, MutualExclusionCounter) {
  TicketLock lock;
  long counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLock, MutualExclusionCounter) {
  SpinLock lock;
  long counter = 0;
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, 40000);
}

TEST(TicketLock, TryLockFailsWhenHeld) {
  TicketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(SpinLock, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

}  // namespace
}  // namespace parc::conc
