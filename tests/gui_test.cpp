// EventLoop / widgets / responsiveness probe tests.
#include "gui/gui.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace parc::gui {
namespace {

TEST(EventLoop, ServicesEventsInFifoOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    loop.post([&order, i] { order.push_back(i); });
  }
  loop.post_and_wait([] {});
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventLoop, IsEventThreadDetection) {
  EventLoop loop;
  EXPECT_FALSE(loop.is_event_thread());
  std::atomic<bool> inside{false};
  loop.post_and_wait([&] { inside.store(loop.is_event_thread()); });
  EXPECT_TRUE(inside.load());
}

TEST(EventLoop, PostAndWaitFromEdtAborts) {
  // The loop must be constructed inside the death statement: a forked death
  // test only carries the calling thread, so a parent-owned loop would have
  // no dispatch thread in the child.
  EXPECT_DEATH(
      {
        EventLoop inner;
        inner.post_and_wait([&] { inner.post_and_wait([] {}); });
      },
      "deadlock");
}

TEST(EventLoop, RecordsLatencies) {
  EventLoop loop;
  for (int i = 0; i < 10; ++i) loop.post([] {});
  loop.post_and_wait([] {});
  EXPECT_GE(loop.latency_samples_ms().size(), 10u);
  EXPECT_GE(loop.events_serviced(), 10u);
  loop.reset_metrics();
  EXPECT_TRUE(loop.latency_samples_ms().empty());
}

TEST(EventLoop, LatencyReflectsEdtBlockage) {
  EventLoop loop;
  // A long event followed by a probe: the probe's latency must include the
  // long event's runtime.
  loop.post([] { std::this_thread::sleep_for(std::chrono::milliseconds(50)); });
  loop.post_and_wait([] {});
  const auto samples = loop.latency_samples_ms();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_GE(samples.back(), 40.0);
}

TEST(EventLoop, ShutdownDrainsQueuedEvents) {
  std::atomic<int> count{0};
  {
    EventLoop loop;
    for (int i = 0; i < 50; ++i) {
      loop.post([&] { count.fetch_add(1); });
    }
  }  // destructor shuts down and services the backlog
  EXPECT_EQ(count.load(), 50);
}

TEST(EventLoop, PostAfterShutdownAborts) {
  EventLoop loop;
  loop.shutdown();
  EXPECT_DEATH(loop.post([] {}), "shutdown");
}

TEST(EventLoop, DrainWaitsForQueueEmpty) {
  EventLoop loop;
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    loop.post([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
      count.fetch_add(1);
    });
  }
  loop.drain();
  EXPECT_GE(count.load(), 19);  // last event may still be executing
}

TEST(EventLoop, PostDelayedRunsAfterDelay) {
  EventLoop loop;
  std::atomic<bool> ran{false};
  const auto start = std::chrono::steady_clock::now();
  std::atomic<double> elapsed_ms{0.0};
  loop.post_delayed(
      [&] {
        elapsed_ms.store(std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count());
        ran.store(true);
      },
      std::chrono::milliseconds(30));
  EXPECT_FALSE(ran.load());
  while (!ran.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_GE(elapsed_ms.load(), 25.0);
}

TEST(EventLoop, DelayedEventsOrderByDeadline) {
  EventLoop loop;
  std::mutex m;
  std::vector<int> order;  // guarded by m
  loop.post_delayed(
      [&] {
        std::scoped_lock lock(m);
        order.push_back(2);
      },
      std::chrono::milliseconds(40));
  loop.post_delayed(
      [&] {
        std::scoped_lock lock(m);
        order.push_back(1);
      },
      std::chrono::milliseconds(10));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  loop.post_and_wait([] {});
  std::scoped_lock lock(m);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventLoop, ImmediateEventsRunBeforePendingDelays) {
  EventLoop loop;
  std::atomic<bool> immediate_ran{false};
  std::atomic<bool> delayed_ran{false};
  loop.post_delayed([&] { delayed_ran.store(true); },
                    std::chrono::milliseconds(100));
  loop.post([&] { immediate_ran.store(true); });
  loop.post_and_wait([] {});
  EXPECT_TRUE(immediate_ran.load());
  EXPECT_FALSE(delayed_ran.load());
}

TEST(EventLoop, FloodedQueueDropsCountsAndStaysBounded) {
  // Regression for the unbounded-post-queue bug: with the EDT wedged, a
  // flood of try_post must bound the queue at its capacity, count the
  // overflow, and run exactly the accepted events — no growth, no loss.
  EventLoop loop(/*queue_capacity=*/64);
  std::atomic<bool> wedge{true};
  loop.post([&] {
    while (wedge.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::atomic<int> ran{0};
  std::vector<std::thread> floods;
  for (int t = 0; t < kThreads; ++t) {
    floods.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (loop.try_post([&] { ran.fetch_add(1); })) {
          accepted.fetch_add(1);
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : floods) t.join();
  wedge.store(false);
  loop.drain();
  EXPECT_EQ(accepted.load() + rejected.load(), kThreads * kPerThread);
  EXPECT_GT(rejected.load(), 0) << "64 slots cannot absorb 20k posts";
  EXPECT_EQ(loop.overflowed(), static_cast<std::uint64_t>(rejected.load()));
  EXPECT_EQ(ran.load(), accepted.load()) << "every accepted event runs";
  const flow::ChannelStats qs = loop.queue_stats();
  EXPECT_LE(qs.high_water, qs.capacity) << "queue must stay bounded";
  EXPECT_EQ(qs.pushed, qs.popped) << "drained: nothing stuck, nothing lost";
}

TEST(Debouncer, BurstCollapsesToOneAction) {
  EventLoop loop;
  Debouncer debounce(loop, std::chrono::milliseconds(20));
  std::atomic<int> fired{0};
  std::atomic<int> last_value{0};
  for (int i = 1; i <= 10; ++i) {
    debounce.trigger([&, i] {
      fired.fetch_add(1);
      last_value.store(i);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Wait for the action rather than a fixed sleep: on a loaded single-core
  // host the dispatch thread itself may start late.
  for (int spin = 0; spin < 2000 && fired.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.post_and_wait([] {});
  EXPECT_EQ(fired.load(), 1);       // only the last trigger fires
  EXPECT_EQ(last_value.load(), 10);
  EXPECT_EQ(debounce.fired(), 1u);
}

TEST(Debouncer, SeparatedTriggersEachFire) {
  EventLoop loop;
  Debouncer debounce(loop, std::chrono::milliseconds(5));
  std::atomic<int> fired{0};
  for (int i = 0; i < 3; ++i) {
    debounce.trigger([&] { fired.fetch_add(1); });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  loop.post_and_wait([] {});
  EXPECT_EQ(fired.load(), 3);
}

TEST(DroppedFrames, FractionComputation) {
  EXPECT_DOUBLE_EQ(dropped_frame_fraction({}, 16.67), 0.0);
  EXPECT_DOUBLE_EQ(dropped_frame_fraction({1.0, 2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(dropped_frame_fraction({1.0, 20.0, 30.0, 2.0}), 0.5);
}

TEST(ListModel, EdtConfinementEnforced) {
  EventLoop loop;
  ListModel<int> model(loop);
  EXPECT_DEATH(model.append(1), "event-dispatch");
  loop.post_and_wait([&] {
    model.append(1);
    model.append(2);
    EXPECT_EQ(model.size(), 2u);
    EXPECT_EQ(model.at(0), 1);
    EXPECT_EQ(model.revision(), 2u);
  });
  EXPECT_EQ(model.snapshot(), (std::vector<int>{1, 2}));
}

TEST(ListModel, ClearResetsContents) {
  EventLoop loop;
  ListModel<int> model(loop);
  loop.post_and_wait([&] {
    model.append(7);
    model.clear();
    EXPECT_EQ(model.size(), 0u);
  });
}

TEST(ProgressModel, ThreadSafeAdvance) {
  ProgressModel progress(1000);
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < 250; ++i) progress.advance();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(progress.done(), 1000u);
  EXPECT_TRUE(progress.complete());
  EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
}

TEST(ProgressModel, ZeroTotalIsComplete) {
  ProgressModel progress(0);
  EXPECT_DOUBLE_EQ(progress.fraction(), 1.0);
  EXPECT_TRUE(progress.complete());
}

TEST(TextModel, EdtConfinedSetGet) {
  EventLoop loop;
  TextModel text(loop);
  loop.post_and_wait([&] {
    text.set("searching...");
    EXPECT_EQ(text.get(), "searching...");
  });
  EXPECT_EQ(text.snapshot(), "searching...");
  EXPECT_DEATH(text.set("off thread"), "event-dispatch");
}

TEST(ResponsivenessProbe, PostsProbesWhileRunning) {
  EventLoop loop;
  {
    ResponsivenessProbe probe(loop, std::chrono::microseconds(500));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    probe.stop();
    EXPECT_GE(probe.probes_posted(), 5u);
  }
  loop.post_and_wait([] {});
  EXPECT_GE(loop.latency_samples_ms().size(), 5u);
}

TEST(ResponsivenessProbe, LatencyLowOnIdleLoop) {
  EventLoop loop;
  ResponsivenessProbe probe(loop, std::chrono::microseconds(500));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  probe.stop();
  loop.post_and_wait([] {});
  const auto s = loop.latency_summary_ms();
  // An idle EDT services probes almost immediately.
  EXPECT_LT(s.median(), 10.0);
}

}  // namespace
}  // namespace parc::gui
