// Randomized nesting stress for pj: region trees of random depth/width with
// a worksharing loop (random schedule) at every node, cross-checked against
// a sequential oracle — with and without a random max_active_levels cap,
// which must not change the result — plus a traced nested-taskloop run
// replayed through sim::simulate exactly like sched_task_graph_test does
// for the raw scheduler.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "pj/pj.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

namespace parc::pj {
namespace {

void spin_for_us(double us) {
  Stopwatch sw;
  while (sw.elapsed_us() < us) {
  }
}

/// Deterministic per-iteration contribution; mixes level and index so a
/// lost, duplicated, or wrongly-levelled iteration shifts the checksum.
std::uint64_t contribution(int lvl, std::int64_t i) {
  std::uint64_t x = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ull;
  x ^= static_cast<std::uint64_t>(lvl) << 32;
  x ^= x >> 29;
  return x * 0xbf58476d1ce4e5b9ull;
}

/// A pre-generated region-tree node: the shape is fixed up front so the
/// parallel run and the sequential oracle walk the identical tree.
struct Node {
  int lvl = 1;
  int width = 1;
  std::int64_t iters = 0;
  ForOptions opts;
  // One optional child region per member index (the member encounters it).
  std::vector<std::unique_ptr<Node>> children;
};

std::unique_ptr<Node> make_tree(Rng& rng, int lvl, int max_depth) {
  auto node = std::make_unique<Node>();
  node->lvl = lvl;
  node->width = static_cast<int>(rng.below(3)) + 1;  // 1..3 threads
  node->iters = static_cast<std::int64_t>(rng.below(48)) + 16;
  switch (rng.below(3)) {
    case 0:
      node->opts = {Schedule::kStatic, 0};
      break;
    case 1:
      node->opts = {Schedule::kDynamic,
                    static_cast<std::int64_t>(rng.below(4)) + 1};
      break;
    default:
      node->opts = {Schedule::kGuided, 1};
      break;
  }
  node->children.resize(static_cast<std::size_t>(node->width));
  if (lvl < max_depth) {
    for (auto& child : node->children) {
      if (rng.below(100) < 60) child = make_tree(rng, lvl + 1, max_depth);
    }
  }
  return node;
}

std::uint64_t oracle(const Node& node) {
  std::uint64_t sum = 0;
  for (std::int64_t i = 0; i < node.iters; ++i) {
    sum += contribution(node.lvl, i);
  }
  for (const auto& child : node.children) {
    if (child) sum += oracle(*child);
  }
  return sum;
}

void run_tree(const Node& node, std::atomic<std::uint64_t>& sum) {
  region(static_cast<std::size_t>(node.width), [&](Team& team) {
    // Introspection invariants hold at every node regardless of whether the
    // runtime pooled, spawned, or serialized this region.
    EXPECT_EQ(Team::current(), &team);
    EXPECT_EQ(level(), node.lvl);  // serialization still deepens the level
    EXPECT_EQ(ancestor_thread_num(level()), team.thread_num());
    std::uint64_t local = 0;
    for_loop(
        team, 0, node.iters,
        [&](std::int64_t i) { local += contribution(node.lvl, i); },
        node.opts,
        /*nowait=*/true);
    sum.fetch_add(local, std::memory_order_relaxed);
    // Children are distributed round-robin over the members that actually
    // exist, so the same tree runs the same work even when a cap serialized
    // this region to one thread; each encounter sits between the nowait
    // loop and the closing barrier — the nesting hot path.
    const auto nt = static_cast<std::size_t>(team.num_threads());
    for (auto c = static_cast<std::size_t>(team.thread_num());
         c < node.children.size(); c += nt) {
      if (node.children[c]) run_tree(*node.children[c], sum);
    }
    team.barrier();
  });
}

struct LevelsGuard {
  int saved = max_active_levels();
  ~LevelsGuard() { set_max_active_levels(saved); }
};

TEST(PjNestedStress, RandomRegionTreesMatchSequentialOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(0xbead0000 + seed);
    const auto tree = make_tree(rng, 1, /*max_depth=*/3);
    const std::uint64_t expected = oracle(*tree);
    std::atomic<std::uint64_t> sum{0};
    run_tree(*tree, sum);
    EXPECT_EQ(sum.load(), expected) << "seed " << seed;
  }
}

TEST(PjNestedStress, SerializationCapDoesNotChangeResults) {
  LevelsGuard guard;
  Rng rng(0x5eed);
  const auto tree = make_tree(rng, 1, /*max_depth=*/3);
  const std::uint64_t expected = oracle(*tree);
  for (int cap = 0; cap <= 3; ++cap) {
    set_max_active_levels(cap);
    std::atomic<std::uint64_t> sum{0};
    run_tree(*tree, sum);
    EXPECT_EQ(sum.load(), expected) << "max_active_levels " << cap;
  }
}

TEST(PjNestedStress, RepeatedNestingReleasesAllPoolCapacity) {
  auto& pool = task_pool();
  Rng rng(0xcafe);
  for (int round = 0; round < 8; ++round) {
    const auto tree = make_tree(rng, 1, /*max_depth=*/2);
    std::atomic<std::uint64_t> sum{0};
    run_tree(*tree, sum);
    EXPECT_EQ(sum.load(), oracle(*tree)) << "round " << round;
    // Every inner join returned its blocking-capacity tokens.
    EXPECT_EQ(pool.reserved_capacity(), 0u) << "round " << round;
  }
}

TEST(PjNestedStress, TracedNestedTaskloopsReplayThroughTheSimulator) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  constexpr std::int64_t kIters = 8;
  constexpr std::size_t kChunksPerLevel = 4;
  obs::TraceDump dump;
  std::atomic<int> count{0};
  {
    obs::TraceSession session;
    region(2, [&](Team& outer) {
      outer.master([&] {
        taskloop(
            outer, 0, kIters,
            [&](std::int64_t) {
              spin_for_us(200);
              count.fetch_add(1, std::memory_order_relaxed);
            },
            kChunksPerLevel);
      });
      if (outer.thread_num() == 0) {
        region(2, [&](Team& inner) {
          inner.master([&] {
            taskloop(
                inner, 0, kIters,
                [&](std::int64_t) {
                  spin_for_us(200);
                  count.fetch_add(1, std::memory_order_relaxed);
                },
                kChunksPerLevel);
          });
        });
      }
      outer.barrier();
    });
    dump = session.end();
  }
  EXPECT_EQ(count.load(), 2 * kIters);
  // Both levels' chunk runners are recorded as (edge-free) tasks.
  const obs::RecordedGraph graph = obs::extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), 2 * kChunksPerLevel);
  const obs::CriticalPathReport report = obs::critical_path(graph);
  const sim::TaskDag dag = graph.to_dag();
  // T1 == single-core makespan, T∞ == unbounded-core makespan, and greedy
  // replay respects Graham's bound in between — same anchors as
  // sched_task_graph_test, now across two nesting levels.
  const auto serial = sim::simulate(dag, {1, 0.0, "p1"});
  EXPECT_NEAR(serial.makespan_s, report.work_s, report.work_s * 1e-9);
  const auto wide = sim::simulate(dag, {64, 0.0, "p64"});
  EXPECT_NEAR(wide.makespan_s, report.span_s, report.span_s * 1e-9);
  sim::SweepOptions sweep_opts;
  sweep_opts.cores = {2, 4};
  for (const sim::SweepPoint& point : sim::sweep(dag, sweep_opts).points) {
    EXPECT_LE(point.outcome.speedup,
              report.speedup_bound(point.cores) * (1.0 + 1e-9))
        << "cores = " << point.cores;
  }
}

}  // namespace
}  // namespace parc::pj
