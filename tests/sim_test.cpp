// Machine model: work/span accounting, Graham-bound property sweeps,
// saturation shapes, DAG builders.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace parc::sim {
namespace {

TEST(TaskDag, WorkAndSpanAccounting) {
  TaskDag dag;
  const auto a = dag.add_task(2.0);
  const auto b = dag.add_task(3.0, {a});
  const auto c = dag.add_task(1.0, {a});
  dag.add_task(4.0, {b, c});
  EXPECT_DOUBLE_EQ(dag.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(dag.critical_path(), 9.0);  // a→b→sink
  EXPECT_NEAR(dag.parallelism(), 10.0 / 9.0, 1e-12);
}

TEST(TaskDag, ForwardDependenceAborts) {
  TaskDag dag;
  dag.add_task(1.0);
  EXPECT_DEATH(dag.add_task(1.0, {5}), "before");
}

TEST(Simulate, SingleCoreEqualsWork) {
  TaskDag dag = fork_join_dag({1.0, 2.0, 3.0, 4.0});
  const auto out = simulate(dag, MachineParams{1, 0.0, "one"});
  EXPECT_DOUBLE_EQ(out.makespan_s, 10.0);
  EXPECT_DOUBLE_EQ(out.speedup, 1.0);
}

TEST(Simulate, IndependentTasksScalePerfectly) {
  std::vector<double> costs(64, 1.0);
  TaskDag dag = fork_join_dag(costs);
  for (std::size_t p : {2u, 4u, 8u, 64u}) {
    const auto out = simulate(dag, MachineParams{p, 0.0, "p"});
    EXPECT_NEAR(out.speedup, static_cast<double>(p), 1e-9) << p;
    EXPECT_NEAR(out.efficiency, 1.0, 1e-9);
  }
}

TEST(Simulate, SpeedupCappedBySpan) {
  // A pure chain cannot speed up at all.
  TaskDag dag;
  TaskDag::NodeId prev = dag.add_task(1.0);
  for (int i = 0; i < 9; ++i) prev = dag.add_task(1.0, {prev});
  const auto out = simulate(dag, MachineParams{16, 0.0, "chain"});
  EXPECT_DOUBLE_EQ(out.makespan_s, 10.0);
  EXPECT_DOUBLE_EQ(out.speedup, 1.0);
}

TEST(Simulate, EmptyDag) {
  TaskDag dag;
  const auto out = simulate(dag, MachineParams{4, 0.0, "empty"});
  EXPECT_DOUBLE_EQ(out.makespan_s, 0.0);
}

TEST(Simulate, PerTaskOverheadCounts) {
  TaskDag dag = fork_join_dag({1.0, 1.0});
  const auto out = simulate(dag, MachineParams{1, 0.5, "oh"});
  EXPECT_DOUBLE_EQ(out.makespan_s, 3.0);
}

TEST(Simulate, DeterministicAcrossRuns) {
  const TaskDag dag = divide_conquer_dag(100000, 1000, 1e-7, 1e-6);
  const auto a = simulate(dag, parc_16core());
  const auto b = simulate(dag, parc_16core());
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

// Property sweep: lower bounds and Graham's bound hold for every DAG shape
// and core count.
using SimParam = std::tuple<int, std::size_t>;  // shape id, cores

class GrahamBound : public ::testing::TestWithParam<SimParam> {};

TaskDag shape_for(int id) {
  switch (id) {
    case 0: return fork_join_dag(std::vector<double>(37, 0.7));
    case 1: {
      std::vector<double> skewed;
      for (int i = 1; i <= 25; ++i) skewed.push_back(0.1 * i);
      return fork_join_dag(skewed);
    }
    case 2: return divide_conquer_dag(10000, 250, 1e-4, 0.0);
    case 3: return barrier_rounds_dag(8, 12, 0.3);
    case 4: return amdahl_dag(5.0, 40, 0.5);
  }
  return fork_join_dag({1.0});
}

TEST_P(GrahamBound, BoundsHold) {
  const auto [shape, cores] = GetParam();
  const TaskDag dag = shape_for(shape);
  const auto out = simulate(dag, MachineParams{cores, 0.0, "sweep"});
  const double work = dag.total_work();
  const double span = dag.critical_path();
  const double p = static_cast<double>(cores);
  EXPECT_GE(out.makespan_s, work / p - 1e-9);       // work lower bound
  EXPECT_GE(out.makespan_s, span - 1e-9);           // span lower bound
  EXPECT_LE(out.makespan_s, work / p + span + 1e-9); // Graham's bound
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndCores, GrahamBound,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values<std::size_t>(1, 2, 3, 8, 64)),
    [](const ::testing::TestParamInfo<SimParam>& info) {
      return "shape" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Sweep, MonotoneUntilSaturation) {
  const TaskDag dag = divide_conquer_dag(1 << 20, 1 << 12, 1e-8, 0.0);
  const SweepTable table = sweep(dag, {});
  ASSERT_EQ(table.points.size(), 7u);  // default grid 1..64
  for (std::size_t i = 1; i < table.points.size(); ++i) {
    EXPECT_GE(table.points[i].outcome.speedup,
              table.points[i - 1].outcome.speedup - 1e-9);
  }
  EXPECT_NEAR(table.points.front().outcome.speedup, 1.0, 1e-9);
  // Saturates at the DAG's parallelism.
  EXPECT_LE(table.points.back().outcome.speedup, dag.parallelism() + 1e-9);
  // Table summary matches the DAG and the lookup helpers hit.
  EXPECT_NEAR(table.work_s, dag.total_work(), 1e-9);
  EXPECT_NEAR(table.span_s, dag.critical_path(), 1e-9);
  ASSERT_NE(table.find(8), nullptr);
  EXPECT_NEAR(table.speedup_at(8), table.find(8)->speedup, 1e-12);
  EXPECT_EQ(table.find(5), nullptr);  // not a sweep point
}

TEST(AmdahlDag, MatchesAmdahlFormula) {
  // serial s, parallel n×e: T1 = s + n·e, Tp = s + ceil(n/p)·e.
  const TaskDag dag = amdahl_dag(2.0, 32, 0.25);
  const auto out = simulate(dag, MachineParams{8, 0.0, "amdahl"});
  EXPECT_NEAR(out.makespan_s, 2.0 + 4 * 0.25, 1e-9);
  const double expected_speedup = (2.0 + 32 * 0.25) / (2.0 + 1.0);
  EXPECT_NEAR(out.speedup, expected_speedup, 1e-9);
}

TEST(BarrierRoundsDag, SpanIsIterationChain) {
  const TaskDag dag = barrier_rounds_dag(5, 10, 0.2);
  EXPECT_DOUBLE_EQ(dag.total_work(), 10.0);
  EXPECT_DOUBLE_EQ(dag.critical_path(), 1.0);  // 5 rounds × 0.2
}

TEST(DivideConquerDag, WorkMatchesRecurrence) {
  // cutoff = elements: single leaf.
  const TaskDag leaf_only = divide_conquer_dag(1000, 1000, 1e-3, 0.0);
  EXPECT_NEAR(leaf_only.total_work(), 1.0, 1e-12);
  // One split: partition(1000) + two leaves(500) + join(0).
  const TaskDag one_split = divide_conquer_dag(1000, 500, 1e-3, 0.0);
  EXPECT_NEAR(one_split.total_work(), 1.0 + 1.0, 1e-12);
}

TEST(Machines, PresetsMatchPaperInventory) {
  EXPECT_EQ(parc_64core().cores, 64u);
  EXPECT_EQ(parc_16core().cores, 16u);
  EXPECT_EQ(parc_8core().cores, 8u);
}

TEST(Simulate, CoreBusyAccountingConsistent) {
  const TaskDag dag = fork_join_dag(std::vector<double>(10, 1.0));
  const auto out = simulate(dag, MachineParams{4, 0.0, "busy"});
  double busy = 0.0;
  for (double b : out.core_busy_s) busy += b;
  EXPECT_NEAR(busy, dag.total_work(), 1e-9);
}

// ---------------------------------------------------------------------------
// Locality-domain (sharded) machine model.
//
// The canonical asymmetric DAG: two roots a1, a2 with different costs and a
// task c depending on a2. On a 2-core/2-domain machine, c's home is a2's
// domain (core 1); at c's ready time core 0 is the earlier-free core, so the
// shard-oblivious scheduler migrates c across the boundary while
// hierarchical dispatch keeps it home at no makespan cost.
// ---------------------------------------------------------------------------

namespace {
TaskDag asymmetric_chain_dag() {
  TaskDag dag;
  dag.add_task(1.0);                        // a1 → core 0 (domain 0)
  const auto a2 = dag.add_task(2.0);        // a2 → core 1 (domain 1)
  dag.add_task(1.0, {a2});                  // c: home domain 1, ready at 2
  return dag;
}
}  // namespace

TEST(ShardedMachine, OneShardMatchesFlatMachine) {
  const TaskDag dag = divide_conquer_dag(4096, 64, 1e-7, 1e-6);
  const auto flat = simulate(dag, MachineParams{4, 1e-6, "flat"});
  MachineParams sharded{4, 1e-6, "sharded-1"};
  sharded.shards = 1;
  sharded.cross_shard_steal_cost_s = 99.0;  // unreachable on one domain
  sharded.hierarchical_dispatch = true;
  const auto out = simulate(dag, sharded);
  EXPECT_DOUBLE_EQ(out.makespan_s, flat.makespan_s);
  EXPECT_EQ(out.cross_shard_dispatches, 0u);
}

TEST(ShardedMachine, ObliviousReplayCountsCrossTrafficAtZeroCost) {
  const TaskDag dag = asymmetric_chain_dag();
  MachineParams m{2, 0.0, "2c2s"};
  m.shards = 2;
  // Zero-cost replay still *counts* the migration the flat schedule makes.
  const auto oblivious = simulate(dag, m);
  EXPECT_EQ(oblivious.cross_shard_dispatches, 1u);
  EXPECT_DOUBLE_EQ(oblivious.makespan_s, 3.0);
  m.hierarchical_dispatch = true;
  const auto hierarchical = simulate(dag, m);
  EXPECT_EQ(hierarchical.cross_shard_dispatches, 0u);
  // At zero cross cost, staying home is free: identical makespan.
  EXPECT_DOUBLE_EQ(hierarchical.makespan_s, 3.0);
}

TEST(ShardedMachine, CrossCostPenalisesTheObliviousScheduleOnly) {
  const TaskDag dag = asymmetric_chain_dag();
  MachineParams m{2, 0.0, "2c2s-cost"};
  m.shards = 2;
  m.cross_shard_steal_cost_s = 0.5;
  const auto oblivious = simulate(dag, m);
  m.hierarchical_dispatch = true;
  const auto hierarchical = simulate(dag, m);
  EXPECT_DOUBLE_EQ(oblivious.makespan_s, 3.5);   // pays the migration
  EXPECT_DOUBLE_EQ(hierarchical.makespan_s, 3.0);  // stays home
  EXPECT_GT(oblivious.makespan_s, hierarchical.makespan_s);
  EXPECT_EQ(hierarchical.cross_shard_dispatches, 0u);
}

TEST(ShardedMachine, HierarchicalGoesRemoteWhenStrictlySooner) {
  // a2's two dependents both have home domain 1 (one core): d takes the
  // home core 1→2; e would wait until 2 at home, but the remote core is
  // free at 0.5, so even with the 0.5 s cross cost it starts (and finishes)
  // strictly sooner — hierarchical dispatch is a preference, not a pin.
  TaskDag dag;
  dag.add_task(0.5);                    // a1 → core 0 free at 0.5
  const auto a2 = dag.add_task(1.0);    // a2 → core 1
  dag.add_task(1.0, {a2});              // d: home core, 1 → 2
  dag.add_task(1.0, {a2});              // e: migrates, finishes 2.5
  MachineParams m{2, 0.0, "2c2s-remote"};
  m.shards = 2;
  m.cross_shard_steal_cost_s = 0.5;
  m.hierarchical_dispatch = true;
  const auto out = simulate(dag, m);
  EXPECT_EQ(out.cross_shard_dispatches, 1u);
  EXPECT_DOUBLE_EQ(out.makespan_s, 2.5);  // home-only would be 3.0
}

TEST(ShardedMachine, ShardCountClampsToCores) {
  const TaskDag dag = asymmetric_chain_dag();
  MachineParams m{2, 0.0, "clamped"};
  m.shards = 8;  // clamped to 2 — no empty domains
  m.cross_shard_steal_cost_s = 0.25;
  m.hierarchical_dispatch = true;
  MachineParams two = m;
  two.shards = 2;
  const auto clamped = simulate(dag, m);
  const auto exact = simulate(dag, two);
  EXPECT_DOUBLE_EQ(clamped.makespan_s, exact.makespan_s);
  EXPECT_EQ(clamped.cross_shard_dispatches, exact.cross_shard_dispatches);
}

TEST(ShardedMachine, GrahamBoundHoldsUnderHierarchicalDispatch) {
  // At zero cross cost hierarchical dispatch never delays a start beyond
  // the greedy choice, so the classic anchors must keep holding.
  const TaskDag dag = divide_conquer_dag(8192, 128, 1e-7, 0.0);
  MachineParams m{4, 0.0, "graham-h"};
  m.shards = 2;
  m.hierarchical_dispatch = true;
  const auto out = simulate(dag, m);
  const double work = dag.total_work();
  const double span = dag.critical_path();
  EXPECT_GE(out.makespan_s, span - 1e-12);
  EXPECT_GE(out.makespan_s, work / 4.0 - 1e-12);
  EXPECT_LE(out.makespan_s, work / 4.0 + span + 1e-12);
}

}  // namespace
}  // namespace parc::sim
