// Course machinery: nexus classification (Fig. 1), plan structure (Fig. 2),
// assessment pipeline, FIFO allocation properties, Likert evaluation,
// commit-log contribution analysis.
#include "course/course.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace parc::course {
namespace {

// ---------------------------------------------------------------------------
// Nexus (Figure 1).
// ---------------------------------------------------------------------------

TEST(Nexus, QuadrantMappingMatchesHealeyModel) {
  EXPECT_EQ(classify(ContentEmphasis::kResearchContent, StudentRole::kAudience),
            NexusCategory::kResearchLed);
  EXPECT_EQ(
      classify(ContentEmphasis::kResearchProcesses, StudentRole::kAudience),
      NexusCategory::kResearchOriented);
  EXPECT_EQ(
      classify(ContentEmphasis::kResearchContent, StudentRole::kParticipants),
      NexusCategory::kResearchTutored);
  EXPECT_EQ(classify(ContentEmphasis::kResearchProcesses,
                     StudentRole::kParticipants),
            NexusCategory::kResearchBased);
}

TEST(Nexus, SoftEng751CoversThreeQuadrants) {
  // §III-E: the course spans research-led, research-tutored and
  // research-based; research-oriented is deliberately absent.
  const auto activities = softeng751_activities();
  const auto covered = covered_categories(activities);
  std::set<NexusCategory> set(covered.begin(), covered.end());
  EXPECT_TRUE(set.contains(NexusCategory::kResearchLed));
  EXPECT_TRUE(set.contains(NexusCategory::kResearchTutored));
  EXPECT_TRUE(set.contains(NexusCategory::kResearchBased));
  EXPECT_FALSE(set.contains(NexusCategory::kResearchOriented));
}

TEST(Nexus, ProjectIsResearchBased) {
  const auto activities = softeng751_activities();
  const auto it = std::find_if(activities.begin(), activities.end(),
                               [](const CourseActivity& a) {
                                 return a.name == "group research project";
                               });
  ASSERT_NE(it, activities.end());
  EXPECT_EQ(it->category(), NexusCategory::kResearchBased);
}

TEST(Nexus, NamesRoundTrip) {
  EXPECT_EQ(to_string(NexusCategory::kResearchLed), "research-led");
  EXPECT_EQ(to_string(NexusCategory::kResearchOriented), "research-oriented");
  EXPECT_EQ(to_string(NexusCategory::kResearchTutored), "research-tutored");
  EXPECT_EQ(to_string(NexusCategory::kResearchBased), "research-based");
}

// ---------------------------------------------------------------------------
// Plan (Figure 2).
// ---------------------------------------------------------------------------

TEST(Plan, TwelveTeachingWeeksPlusBreak) {
  const auto plan = softeng751_plan();
  int teaching = 0, breaks = 0;
  for (const auto& w : plan) {
    if (w.study_break) {
      ++breaks;
    } else {
      ++teaching;
    }
  }
  EXPECT_EQ(teaching, 12);
  EXPECT_EQ(breaks, 2);
}

TEST(Plan, PaperStatedPlacementsHold) {
  const auto checks = validate_plan(softeng751_plan());
  EXPECT_TRUE(checks.test1_in_week6);
  EXPECT_TRUE(checks.seminars_weeks_7_to_10);
  EXPECT_TRUE(checks.test2_in_week11);
  EXPECT_TRUE(checks.final_due_week12);
  EXPECT_TRUE(checks.first_five_weeks_teaching);
  // "students will have 8 weeks of development time": week 6 through 12
  // plus the study break all carry project time.
  EXPECT_GE(checks.project_weeks, 8);
}

TEST(Plan, WeekUseCodes) {
  EXPECT_EQ(week_use_code(static_cast<unsigned>(WeekUse::kInstructorTeaching)),
            "IT");
  EXPECT_EQ(week_use_code(static_cast<unsigned>(WeekUse::kAssessment) |
                          static_cast<unsigned>(WeekUse::kProject)),
            "A+P");
  EXPECT_EQ(week_use_code(0), "-");
}

// ---------------------------------------------------------------------------
// Assessment.
// ---------------------------------------------------------------------------

TEST(Assessment, WeightsMatchPaper) {
  EXPECT_DOUBLE_EQ(kWeights[static_cast<std::size_t>(Component::kTest1)], 25.0);
  EXPECT_DOUBLE_EQ(kWeights[static_cast<std::size_t>(Component::kSeminar)],
                   20.0);
  EXPECT_DOUBLE_EQ(kWeights[static_cast<std::size_t>(Component::kTest2)], 10.0);
  EXPECT_DOUBLE_EQ(
      kWeights[static_cast<std::size_t>(Component::kImplementation)], 25.0);
  EXPECT_DOUBLE_EQ(kWeights[static_cast<std::size_t>(Component::kReport)],
                   20.0);
}

TEST(Assessment, OnlyAQuarterIsIndividualLectureMaterial) {
  // §III-C: "only 25% of the grade targeted individual understanding of the
  // lecture-style material" (Test 1).
  double individual_lecture = 0.0;
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    if (static_cast<Component>(c) == Component::kTest1) {
      individual_lecture += kWeights[c];
    }
  }
  EXPECT_DOUBLE_EQ(individual_lecture, 25.0);
}

TEST(Assessment, GroupComponentsAreTheProjectPieces) {
  EXPECT_FALSE(is_group_component(Component::kTest1));
  EXPECT_FALSE(is_group_component(Component::kTest2));
  EXPECT_TRUE(is_group_component(Component::kSeminar));
  EXPECT_TRUE(is_group_component(Component::kImplementation));
  EXPECT_TRUE(is_group_component(Component::kReport));
}

TEST(Assessment, PerfectScoresGiveHundred) {
  StudentRecord s;
  s.raw = {100, 100, 100, 100, 100};
  EXPECT_DOUBLE_EQ(final_grade(s), 100.0);
}

TEST(Assessment, WeightedMixture) {
  StudentRecord s;
  s.raw = {80, 60, 100, 70, 90};  // test1, seminar, test2, impl, report
  const double expected =
      80 * 0.25 + 60 * 0.20 + 100 * 0.10 + 70 * 0.25 + 90 * 0.20;
  EXPECT_DOUBLE_EQ(final_grade(s), expected);
}

TEST(Assessment, PeerFactorScalesOnlyGroupComponents) {
  StudentRecord fair;
  fair.raw = {80, 80, 80, 80, 80};
  StudentRecord slacker = fair;
  slacker.peer_factor = 0.5;
  // Group components (65% of weight) halve; tests (35%) stay.
  const double expected = 80 * 0.35 + 40 * 0.65;
  EXPECT_DOUBLE_EQ(final_grade(slacker), expected);
  EXPECT_DOUBLE_EQ(final_grade(fair), 80.0);
}

TEST(Assessment, PeerFactorClampsAtHundred) {
  StudentRecord s;
  s.raw = {100, 95, 100, 95, 95};
  s.peer_factor = 1.5;
  EXPECT_LE(final_grade(s), 100.0);
}

TEST(Assessment, OutOfRangeMarkAborts) {
  StudentRecord s;
  s.raw = {120, 0, 0, 0, 0};
  EXPECT_DEATH((void)final_grade(s), "range");
}

TEST(Assessment, CohortStatsComputed) {
  std::vector<StudentRecord> cohort;
  for (int i = 0; i < 20; ++i) {
    StudentRecord s;
    const double base = 50.0 + i * 2.0;
    s.raw = {base, base, base, base, base};
    cohort.push_back(s);
  }
  const auto stats = cohort_stats(cohort);
  EXPECT_NEAR(stats.mean, 69.0, 1e-9);
  EXPECT_GT(stats.stddev, 0.0);
  EXPECT_NEAR(stats.test1_impl_correlation, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Allocation.
// ---------------------------------------------------------------------------

TEST(Allocation, PaperTopicListHasTenEntries) {
  const auto topics = softeng751_topics();
  EXPECT_EQ(topics.size(), 10u);
  int android = 0;
  for (const auto& t : topics) {
    if (t.android_option) ++android;
  }
  EXPECT_EQ(android, 4);  // thumbnails, string search, PDF, web access
}

TEST(Allocation, FormGroupsOfThree) {
  std::vector<std::string> students;
  for (int i = 0; i < 60; ++i) students.push_back("s" + std::to_string(i));
  const auto groups = form_groups(students, 3);
  EXPECT_EQ(groups.size(), 20u);
  for (const auto& g : groups) EXPECT_EQ(g.members.size(), 3u);
}

TEST(Allocation, UnevenCohortLastGroupSmaller) {
  std::vector<std::string> students(59, "x");
  const auto groups = form_groups(students, 3);
  EXPECT_EQ(groups.size(), 20u);
  EXPECT_EQ(groups.back().members.size(), 2u);
}

TEST(Allocation, TwentyGroupsTenTopicsFillsExactly) {
  std::vector<std::string> students(60, "x");
  auto groups = form_groups(students, 3);
  assign_preferences(groups, 10, 2013);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  const auto result = allocate_fifo(groups, 10, 2, arrival);
  EXPECT_TRUE(allocation_respects_capacity(result, 2));
  // Exactly two groups per topic.
  for (const auto& holders : result.groups_of_topic) {
    EXPECT_EQ(holders.size(), 2u);
  }
  EXPECT_TRUE(allocation_is_fifo_fair(groups, result, arrival));
}

TEST(Allocation, FirstArriverGetsFirstChoice) {
  std::vector<std::string> students(12, "x");
  auto groups = form_groups(students, 3);
  assign_preferences(groups, 4, 7);
  std::vector<std::size_t> arrival = {2, 0, 1, 3};
  const auto result = allocate_fifo(groups, 4, 2, arrival);
  EXPECT_EQ(result.rank_received[2], 1u);  // first to pick
}

TEST(Allocation, FifoFairAcrossManySeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<std::string> students(60, "x");
    auto groups = form_groups(students, 3);
    assign_preferences(groups, 10, seed);
    // Arrival order shuffled by seed.
    std::vector<std::size_t> arrival(groups.size());
    for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
    Rng rng(seed * 31);
    shuffle(arrival.begin(), arrival.end(), rng);
    const auto result = allocate_fifo(groups, 10, 2, arrival);
    ASSERT_TRUE(allocation_respects_capacity(result, 2)) << seed;
    ASSERT_TRUE(allocation_is_fifo_fair(groups, result, arrival)) << seed;
    // Every group allocated.
    for (std::size_t g = 0; g < groups.size(); ++g) {
      ASSERT_LT(result.topic_of_group[g], 10u);
    }
  }
}

TEST(Allocation, InsufficientCapacityAborts) {
  std::vector<std::string> students(12, "x");
  auto groups = form_groups(students, 3);  // 4 groups
  assign_preferences(groups, 1, 3);
  std::vector<std::size_t> arrival = {0, 1, 2, 3};
  EXPECT_DEATH((void)allocate_fifo(groups, 1, 2, arrival), "capacity");
}

TEST(Allocation, PopularTopicsContested) {
  // With Zipf-skewed preferences, at least one group misses its first
  // choice in a typical cohort.
  std::vector<std::string> students(60, "x");
  auto groups = form_groups(students, 3);
  assign_preferences(groups, 10, 99);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  const auto result = allocate_fifo(groups, 10, 2, arrival);
  const bool someone_missed =
      std::any_of(result.rank_received.begin(), result.rank_received.end(),
                  [](std::size_t r) { return r > 1; });
  EXPECT_TRUE(someone_missed);
}

// ---------------------------------------------------------------------------
// Topic pool (§III-D / §IV-C).
// ---------------------------------------------------------------------------

TEST(TopicPool, SuitabilityGatesOnWeakestFactor) {
  TopicProposal strong{"x", ProposerKind::kInstructor, 0.9, 0.9, 0.9, 2013, 0};
  TopicProposal gated = strong;
  gated.timeframe_fit = 0.1;  // cannot fit the semester
  EXPECT_GT(suitability(strong), 2.0 * suitability(gated));
}

TEST(TopicPool, ReofferingDiscountsScore) {
  TopicProposal fresh{"x", ProposerKind::kInstructor, 0.8, 0.8, 0.8, 2013, 0};
  TopicProposal reused = fresh;
  reused.times_offered = 3;
  EXPECT_GT(suitability(fresh), suitability(reused));
  EXPECT_NEAR(suitability(reused), suitability(fresh) * 0.9 * 0.9 * 0.9,
              1e-12);
}

TEST(TopicPool, ReviewPicksTopTenFrom2013Pool) {
  auto pool = softeng751_2013_pool();
  EXPECT_GT(pool.size(), 10u);  // wish-list is larger than the selection
  const auto selected = pool.review_top(10, 2013);
  ASSERT_EQ(selected.size(), 10u);
  // The ten §IV-C topics beat the wish-list leftovers.
  const auto paper_topics = softeng751_topics();
  for (const auto& s : selected) {
    const bool in_paper = std::any_of(
        paper_topics.begin(), paper_topics.end(),
        [&](const Topic& t) { return t.title == s.title; });
    EXPECT_TRUE(in_paper) << s.title;
  }
  // Best first.
  for (std::size_t i = 1; i < selected.size(); ++i) {
    EXPECT_GE(suitability(selected[i - 1]), suitability(selected[i]) - 1e-12);
  }
}

TEST(TopicPool, SelectionMarksTopicsOffered) {
  auto pool = softeng751_2013_pool();
  (void)pool.review_top(10, 2013);
  int offered = 0;
  for (const auto& t : pool.topics()) {
    if (t.times_offered > 0 && t.proposed_year == 2013) ++offered;
  }
  EXPECT_GE(offered, 10);
}

TEST(TopicPool, RecyclingAcrossYearsRotates) {
  // Offer the top ten three years running: the discount rotates topics in
  // from the wish-list once the regulars have been offered repeatedly.
  auto pool = softeng751_2013_pool();
  const auto y1 = pool.review_top(10, 2013);
  (void)pool.review_top(10, 2014);
  const auto y3 = pool.review_top(10, 2015);
  // After two offerings each, some fresh wish-list topic displaces a
  // discounted regular.
  const bool rotated = std::any_of(
      y3.begin(), y3.end(), [&](const TopicProposal& t) {
        return std::none_of(y1.begin(), y1.end(),
                            [&](const TopicProposal& o) {
                              return o.title == t.title;
                            });
      });
  EXPECT_TRUE(rotated);
}

TEST(TopicPool, ReviewWithTooFewProposalsAborts) {
  TopicPool pool;
  pool.propose({"only one", ProposerKind::kInstructor, 1, 1, 1, 2013, 0});
  EXPECT_DEATH((void)pool.review_top(10, 2013), "not enough");
}

// ---------------------------------------------------------------------------
// Evaluation (§V-A).
// ---------------------------------------------------------------------------

TEST(Evaluation, SurveyDistributionsMatchReportedAgreePct) {
  for (const auto& q : softeng751_survey()) {
    const double agree =
        100.0 * (q.probabilities[0] + q.probabilities[1]);
    EXPECT_NEAR(agree, q.reported_agree_pct, 1e-9) << q.text;
  }
}

TEST(Evaluation, SampledCohortTracksReportedNumbers) {
  const auto outcomes = run_survey(softeng751_survey(), 5000, 42);
  ASSERT_EQ(outcomes.size(), 3u);
  for (const auto& o : outcomes) {
    EXPECT_NEAR(o.agree_pct, o.reported_pct, 2.0) << o.question;
    std::uint64_t total = 0;
    for (auto c : o.counts) total += c;
    EXPECT_EQ(total, 5000u);
  }
}

TEST(Evaluation, SmallCohortIsDeterministic) {
  const auto a = run_survey(softeng751_survey(), 57, 7);
  const auto b = run_survey(softeng751_survey(), 57, 7);
  for (std::size_t q = 0; q < a.size(); ++q) {
    EXPECT_EQ(a[q].counts, b[q].counts);
  }
}

TEST(Evaluation, OpenCommentsIncludeImprovementRequest) {
  const auto comments = reported_open_comments();
  EXPECT_EQ(comments.size(), 5u);
  const bool has_improvement =
      std::any_of(comments.begin(), comments.end(), [](const OpenComment& c) {
        return c.prompt.find("improvement") != std::string::npos;
      });
  EXPECT_TRUE(has_improvement);
}

// ---------------------------------------------------------------------------
// Community dynamics (§V-B outcomes).
// ---------------------------------------------------------------------------

TEST(Community, DeterministicForSeed) {
  CommunityParams params;
  const auto a = simulate_community(params, 6, 6, 9);
  const auto b = simulate_community(params, 6, 6, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].new_project_students, b[s].new_project_students);
    EXPECT_EQ(a[s].bug_reports, b[s].bug_reports);
  }
}

TEST(Community, ExperiencedPoolEmergesAfterFirstSemester) {
  CommunityParams params;
  const auto series = simulate_community(params, 6, 6, 2013);
  EXPECT_EQ(series[0].experienced_members, 0u);  // nobody yet
  // Once the first continuing cohort ages in, the pool stays populated.
  for (std::size_t s = 2; s < series.size(); ++s) {
    EXPECT_GT(series[s].experienced_members, 0u) << "semester " << s + 1;
  }
}

TEST(Community, MentoringRatioStaysBounded) {
  CommunityParams params;
  const auto series = simulate_community(params, 10, 6, 7);
  for (const auto& s : series) {
    EXPECT_LT(s.mentoring_ratio, 10.0);
  }
}

TEST(Community, BugBacklogStabilises) {
  CommunityParams params;
  const auto series = simulate_community(params, 12, 6, 21);
  // With fix_rate 0.75 the backlog cannot grow without bound: the last
  // semesters' backlog stays within a small multiple of one semester's
  // report volume.
  const auto& last = series.back();
  EXPECT_LT(last.open_bugs, last.bug_reports * 2 + 10);
}

TEST(Community, ZeroMentorsRatioDegradesGracefully) {
  CommunityParams params;
  const auto series = simulate_community(params, 2, 0, 3);
  EXPECT_GE(series[0].mentoring_ratio, 0.0);  // no division blow-up
}

// ---------------------------------------------------------------------------
// Commit logs.
// ---------------------------------------------------------------------------

TEST(Commits, DeterministicGeneration) {
  const CommitModel model;
  const auto a = generate_commit_log(1, {"alice", "bob", "carol"}, model, 5);
  const auto b = generate_commit_log(1, {"alice", "bob", "carol"}, model, 5);
  EXPECT_EQ(a.commits.size(), b.commits.size());
}

TEST(Commits, SortedByDayAndWithinWindow) {
  const CommitModel model;
  const auto log = generate_commit_log(0, {"a", "b", "c"}, model, 11);
  int prev = 0;
  for (const auto& c : log.commits) {
    EXPECT_GE(c.day, prev);
    prev = c.day;
    EXPECT_LT(c.day, model.project_days);
  }
}

TEST(Commits, CrunchWeekIsBusier) {
  CommitModel model;
  model.crunch_multiplier = 4.0;
  const auto log = generate_commit_log(0, {"a", "b", "c"}, model, 13);
  std::size_t last_week = 0, first_week = 0;
  for (const auto& c : log.commits) {
    if (c.day >= model.project_days - 7) ++last_week;
    if (c.day < 7) ++first_week;
  }
  EXPECT_GT(last_week, first_week);
}

TEST(Commits, BalancedGroupPassesAnalysis) {
  const CommitModel model;  // equal weights
  const auto log = generate_commit_log(0, {"a", "b", "c"}, model, 17);
  const auto report = analyse_contributions(log);
  EXPECT_TRUE(report.balanced);
  EXPECT_EQ(report.members.size(), 3u);
  EXPECT_DOUBLE_EQ(report.layout_compliance, 1.0);
  double share = 0.0;
  for (const auto& m : report.members) share += m.commit_share;
  EXPECT_NEAR(share, 1.0, 1e-9);
}

TEST(Commits, SkewedGroupFlagged) {
  CommitModel model;
  model.member_weights = {10.0, 0.5, 0.5};
  const auto log = generate_commit_log(0, {"a", "b", "c"}, model, 19);
  const auto report = analyse_contributions(log, 0.6);
  EXPECT_FALSE(report.balanced);
  EXPECT_EQ(report.members.front().member, "a");
  EXPECT_GT(report.max_line_share, 0.6);
}

}  // namespace
}  // namespace parc::course
