// Project 6's thesis as executable tests: a thread-safe blocking queue
// deadlocks inside a bounded task pool where the task-safe queue does not.
#include "conc/task_safe.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace parc::conc {
namespace {

TEST(ThreadSafeBlockingQueue, BasicPutTake) {
  ThreadSafeBlockingQueue<int> q(4);
  q.put(1);
  q.put(2);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.take(), 1);
  EXPECT_EQ(q.take(), 2);
}

TEST(ThreadSafeBlockingQueue, TakeForTimesOutWhenEmpty) {
  ThreadSafeBlockingQueue<int> q(4);
  const auto v = q.take_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(v.has_value());
}

TEST(ThreadSafeBlockingQueue, PutBlocksAtCapacity) {
  ThreadSafeBlockingQueue<int> q(1);
  q.put(1);
  std::atomic<bool> second_done{false};
  std::thread producer([&] {
    q.put(2);  // blocks until the consumer takes
    second_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_done.load());
  EXPECT_EQ(q.take(), 1);
  producer.join();
  EXPECT_TRUE(second_done.load());
  EXPECT_EQ(q.take(), 2);
}

TEST(TaskSafety, ThreadSafeQueueStallsInsideBoundedPool) {
  // One pool worker. The consumer task blocks in take(); the producer task
  // sits queued behind it forever. take_for observes the stall instead of
  // hanging the test.
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{1, 4, "t"});
  ThreadSafeBlockingQueue<int> queue(4);
  std::atomic<bool> consumer_got{false};
  std::atomic<bool> consumer_done{false};
  pool.submit([&] {
    const auto v = queue.take_for(std::chrono::milliseconds(300));
    consumer_got.store(v.has_value());
    consumer_done.store(true);
  });
  std::atomic<bool> producer_done{false};
  pool.submit([&] {  // starves behind the consumer
    queue.put(42);
    producer_done.store(true);
  });
  while (!consumer_done.load()) std::this_thread::yield();
  // The deadlock manifests as the timeout: the element never arrived while
  // the consumer occupied the only worker.
  EXPECT_FALSE(consumer_got.load());
  // The consumer's timeout frees the worker and the starved producer finally
  // runs; let its put() finish before `queue` leaves scope.
  while (!producer_done.load()) std::this_thread::yield();
}

TEST(TaskSafety, TaskSafeQueueCompletesInTheSameScenario) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{1, 4, "t"});
  TaskSafeQueue<int> queue(pool);
  std::atomic<int> got{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    got.store(queue.take());  // helping wait runs the producer below
    done.store(true);
  });
  pool.submit([&] { queue.put(42); });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(got.load(), 42);
}

TEST(TaskSafeQueue, ProducerConsumerPipelineExactlyOnce) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "t"});
  TaskSafeQueue<int> queue(pool);
  constexpr int kItems = 2000;
  std::atomic<long> sum{0};
  std::atomic<int> taken{0};
  std::atomic<bool> producers_done{false};
  pool.submit([&] {
    for (int i = 1; i <= kItems; ++i) queue.put(i);
    producers_done.store(true);
  });
  pool.submit([&] {
    for (int i = 0; i < kItems; ++i) {
      sum.fetch_add(queue.take());
      taken.fetch_add(1);
    }
  });
  pool.help_while([&] { return taken.load() < kItems; });
  EXPECT_EQ(sum.load(), static_cast<long>(kItems) * (kItems + 1) / 2);
  EXPECT_TRUE(producers_done.load());
}

TEST(TaskSafeQueue, FifoAndTryTake) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "t"});
  TaskSafeQueue<int> queue(pool);
  queue.put(1);
  queue.put(2);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(*queue.try_take(), 1);
  EXPECT_EQ(*queue.try_take(), 2);
  EXPECT_FALSE(queue.try_take().has_value());
}

TEST(TaskSafeQueue, ConsumerNestedInsideHelpedProducerStillCompletes) {
  // The scenario that motivates the unbounded design: one worker, consumer
  // submitted first. The consumer's take() helps and runs the producer
  // nested on its own stack; because put() never blocks, the nested
  // producer always completes and the consumer drains.
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{1, 4, "t"});
  TaskSafeQueue<int> queue(pool);
  std::atomic<long> sum{0};
  std::atomic<bool> done{false};
  pool.submit([&] {
    for (int i = 0; i < 100; ++i) sum.fetch_add(queue.take());
    done.store(true);
  });
  pool.submit([&] {
    for (int i = 1; i <= 100; ++i) queue.put(i);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(TaskSafeLatch, BlocksUntilAllCountdowns) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "t"});
  TaskSafeLatch latch(pool, 10);
  std::atomic<int> fired{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&] {
      fired.fetch_add(1);
      latch.count_down();
    });
  }
  latch.wait();
  EXPECT_EQ(fired.load(), 10);
  EXPECT_TRUE(latch.ready());
}

TEST(TaskSafeBarrier, MorePartiesThanWorkersStillPasses) {
  // 8 parties on a 2-worker pool: a cv-barrier would deadlock; helping
  // lets queued parties reach the barrier.
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "t"});
  TaskSafeBarrier barrier(pool, 8);
  std::atomic<int> passed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      barrier.arrive_and_wait();
      passed.fetch_add(1);
    });
  }
  pool.help_while([&] { return passed.load() < 8; });
  EXPECT_EQ(passed.load(), 8);
}

TEST(TaskSafeBarrier, CyclicReuseAcrossRounds) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "t"});
  TaskSafeBarrier barrier(pool, 4);
  std::atomic<int> total{0};
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> done{0};
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        barrier.arrive_and_wait();
        total.fetch_add(1);
        done.fetch_add(1);
      });
    }
    pool.help_while([&] { return done.load() < 4; });
  }
  EXPECT_EQ(total.load(), 20);
}

}  // namespace
}  // namespace parc::conc
