// CowSet: snapshot isolation, writer serialisation, reader stability under
// concurrent mutation.
#include "conc/cow_set.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace parc::conc {
namespace {

TEST(CowSet, BasicInsertEraseContains) {
  CowSet<int> s;
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(1));
  EXPECT_TRUE(s.contains(1));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.erase(1));
  EXPECT_FALSE(s.erase(1));
  EXPECT_FALSE(s.contains(1));
}

TEST(CowSet, SnapshotIsImmutableUnderWrites) {
  CowSet<int> s;
  for (int i = 0; i < 10; ++i) s.insert(i);
  const auto snap = s.snapshot();
  EXPECT_EQ(snap->size(), 10u);
  s.insert(100);
  s.erase(0);
  // The old snapshot is untouched.
  EXPECT_EQ(snap->size(), 10u);
  EXPECT_TRUE(snap->contains(0));
  EXPECT_FALSE(snap->contains(100));
  // The live view moved on.
  EXPECT_TRUE(s.contains(100));
  EXPECT_FALSE(s.contains(0));
}

TEST(CowSet, ConcurrentWritersAllLand) {
  CowSet<int> s;
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kEach; ++i) {
        s.insert(t * kEach + i);
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(s.size(), static_cast<std::size_t>(kThreads * kEach));
}

TEST(CowSet, ReadersSeeConsistentSnapshotsDuringWrites) {
  CowSet<int> s;
  // Invariant maintained by the writer: the set always contains a full
  // prefix {0..k}. Readers iterating any snapshot must observe a prefix.
  std::atomic<bool> stop{false};
  std::atomic<bool> violation{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const auto snap = s.snapshot();
      int expected = 0;
      for (int v : *snap) {
        if (v != expected) {
          violation.store(true);
          return;
        }
        ++expected;
      }
    }
  });
  for (int i = 0; i < 2000; ++i) s.insert(i);
  stop.store(true);
  reader.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace parc::conc
