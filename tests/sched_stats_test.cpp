// WorkStealingPool::stats() under concurrency, the trace-gated high-water
// marks, and a regression test for the PR-1 batched-wakeup protocol: a
// submit_bulk racing with the last worker going to sleep must never lose the
// wakeup (the bug class the epoch/re-scan park protocol exists to prevent).
#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <span>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace parc::sched {
namespace {

using namespace std::chrono_literals;

/// Wait (without helping — the workers must do the running) until `count`
/// reaches `target` or the deadline passes. Returns the final count.
int await_count(const std::atomic<int>& count, int target,
                std::chrono::steady_clock::duration deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (count.load(std::memory_order_acquire) < target &&
         std::chrono::steady_clock::now() < until) {
    std::this_thread::yield();
  }
  return count.load(std::memory_order_acquire);
}

/// Poll an arbitrary condition until it holds or the deadline passes. Used
/// for stats counters, which workers bump *after* the job body runs — a job
/// count reaching its target does not yet mean the matching executed/helped
/// increments are visible.
template <typename F>
bool await_until(F&& cond, std::chrono::steady_clock::duration deadline) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (!cond()) {
    if (std::chrono::steady_clock::now() >= until) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(PoolStats, CountsEveryJobUnderConcurrentExternalSubmitters) {
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 2000;
  constexpr int kTotal = kThreads * kJobsPerThread;
  std::atomic<int> ran{0};
  WorkStealingPool pool(WorkStealingPool::Config{3, 4, "stats"});
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&pool, &ran] {
        for (int i = 0; i < kJobsPerThread; ++i) {
          pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
        }
      });
    }
    for (auto& th : submitters) th.join();
  }
  // No helping here: every job must be executed by a pool worker, so
  // executed (a worker-side counter) has to reach the exact total.
  ASSERT_EQ(await_count(ran, kTotal, 30s), kTotal);
  ASSERT_TRUE(await_until(
      [&] { return pool.stats().executed >= static_cast<std::uint64_t>(kTotal); },
      30s));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(stats.helped, 0u);
}

TEST(PoolStats, SnapshotsAreMonotonicUnderLoad) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "mono"});
  constexpr int kJobs = 20000;
  std::atomic<int> ran{0};
  std::atomic<bool> stop_reader{false};
  std::atomic<bool> monotonic{true};
  // Reader thread: stats() must never go backwards while workers and a
  // submitter race it.
  std::thread reader([&] {
    WorkStealingPool::Stats prev;
    while (!stop_reader.load(std::memory_order_acquire)) {
      const auto s = pool.stats();
      if (s.executed < prev.executed || s.stolen < prev.stolen ||
          s.parked < prev.parked || s.helped < prev.helped ||
          s.steal_fails < prev.steal_fails) {
        monotonic.store(false, std::memory_order_relaxed);
      }
      prev = s;
    }
  });
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_EQ(await_count(ran, kJobs, 30s), kJobs);
  stop_reader.store(true, std::memory_order_release);
  reader.join();
  EXPECT_TRUE(monotonic.load());
  EXPECT_TRUE(await_until(
      [&] { return pool.stats().executed >= static_cast<std::uint64_t>(kJobs); },
      30s));
  EXPECT_EQ(pool.stats().executed, static_cast<std::uint64_t>(kJobs));
}

TEST(PoolStats, HelpWhileCountsHelpedJobsSeparately) {
  WorkStealingPool pool(WorkStealingPool::Config{1, 4, "helped"});
  std::atomic<int> ran{0};
  constexpr int kJobs = 200;
  // Saturate the single worker with a long job so the helper is guaranteed
  // to pick up some of the short ones.
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&ran, &release] {
      release.store(true, std::memory_order_release);
      ran.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.help_while([&] { return ran.load(std::memory_order_acquire) < kJobs; });
  // Total completions = worker-executed + helper-executed.
  ASSERT_TRUE(await_until(
      [&] {
        const auto s = pool.stats();
        return s.executed + s.helped >= static_cast<std::uint64_t>(kJobs) + 1;
      },
      30s));
  const auto stats = pool.stats();
  EXPECT_GT(stats.helped, 0u);
  EXPECT_EQ(stats.executed + stats.helped,
            static_cast<std::uint64_t>(kJobs) + 1);
}

TEST(PoolStats, HighWaterMarksAreSampledWhileTracing) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  obs::TraceSession session;
  WorkStealingPool pool(WorkStealingPool::Config{1, 4, "hw"});
  std::atomic<int> ran{0};
  constexpr int kBurst = 64;
  // External burst: lands in the injection queue faster than the lone
  // worker can drain it, so the injected high-water must register.
  for (int i = 0; i < kBurst; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  // Worker-side burst: one job fans out nested submits into its own deque.
  pool.submit([&pool, &ran] {
    for (int i = 0; i < kBurst; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  ASSERT_EQ(await_count(ran, 2 * kBurst, 30s), 2 * kBurst);
  const auto stats = pool.stats();
  EXPECT_GT(stats.injected_high_water, 0u);
  EXPECT_GT(stats.deque_high_water, 0u);
  (void)session.end();
}

// ---------------------------------------------------------------------------
// Batched-wakeup regression: submit_bulk wakes workers once per batch via
// the epoch protocol. The race under test: all workers decide to park (epoch
// snapshot taken, re-scan found nothing) while a bulk submission publishes
// jobs and bumps the epoch once. If the single bump could be missed, the
// batch would sit unexecuted until the next submission — with no helper
// here, that is a hang, caught by the await deadline.
// ---------------------------------------------------------------------------

TEST(PoolWakeup, SubmitBulkRacingWithParkingWorkersNeverLosesTheWakeup) {
  // sweeps_before_park = 1 makes workers park as aggressively as possible,
  // maximising the chance each round catches the park/submit race.
  WorkStealingPool pool(WorkStealingPool::Config{2, 1, "wake"});
  constexpr int kRounds = 200;
  constexpr int kBatch = 8;
  std::atomic<int> ran{0};
  int expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Let the workers drain and (very likely) park. Alternate between a
    // definitely-parked submission and an immediate one to also catch the
    // half-asleep window around the epoch snapshot.
    if (round % 2 == 0) {
      std::this_thread::sleep_for(1ms);
    }
    std::vector<std::function<void()>> batch;
    batch.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      batch.emplace_back(
          [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.submit_bulk(std::span<std::function<void()>>(batch));
    expected += kBatch;
    // Workers alone must finish the batch: a lost wakeup times out here.
    ASSERT_EQ(await_count(ran, expected, 30s), expected)
        << "lost wakeup in round " << round;
  }
  EXPECT_TRUE(await_until(
      [&] {
        return pool.stats().executed >= static_cast<std::uint64_t>(expected);
      },
      30s));
  EXPECT_EQ(pool.stats().executed, static_cast<std::uint64_t>(expected));
  // The aggressive config must actually have parked along the way for the
  // regression to have exercised the race at all.
  EXPECT_GT(pool.stats().parked, 0u);
}

TEST(PoolWakeup, SubmitNBatchesWakeThroughTheSameProtocol) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 1, "waken"});
  constexpr int kRounds = 100;
  constexpr std::size_t kBatch = 8;
  std::atomic<int> ran{0};
  int expected = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::this_thread::sleep_for(500us);
    pool.submit_n(kBatch, [&ran](std::size_t) {
      return [&ran] { ran.fetch_add(1, std::memory_order_relaxed); };
    });
    expected += static_cast<int>(kBatch);
    ASSERT_EQ(await_count(ran, expected, 30s), expected)
        << "lost wakeup in round " << round;
  }
}

}  // namespace
}  // namespace parc::sched
