// Reductions: builtin scalar set, object reductions (sets, maps, vectors,
// top-k, histograms), determinism and schedule-invariance properties.
#include "pj/pj.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

namespace parc::pj {
namespace {

TEST(Reduce, SumOfIntegers) {
  constexpr std::int64_t kN = 100000;
  const auto sum = reduce(4, 0, kN, SumReducer<std::int64_t>{},
                          [](std::int64_t i, std::int64_t& acc) { acc += i; });
  EXPECT_EQ(sum, kN * (kN - 1) / 2);
}

TEST(Reduce, ProductReducer) {
  const auto product =
      reduce(3, 1, 11, ProductReducer<long>{},
             [](std::int64_t i, long& acc) { acc *= i; });
  EXPECT_EQ(product, 3628800L);  // 10!
}

TEST(Reduce, MinAndMax) {
  std::vector<int> data;
  for (int i = 0; i < 1000; ++i) data.push_back(((i * 7919) % 4099) - 2000);
  const auto mn = reduce(4, 0, 1000, MinReducer<int>{},
                         [&](std::int64_t i, int& acc) {
                           acc = std::min(acc, data[static_cast<std::size_t>(i)]);
                         });
  const auto mx = reduce(4, 0, 1000, MaxReducer<int>{},
                         [&](std::int64_t i, int& acc) {
                           acc = std::max(acc, data[static_cast<std::size_t>(i)]);
                         });
  EXPECT_EQ(mn, *std::min_element(data.begin(), data.end()));
  EXPECT_EQ(mx, *std::max_element(data.begin(), data.end()));
}

TEST(Reduce, LogicalReducers) {
  const bool all_even =
      reduce(4, 0, 100, LogicalAndReducer{},
             [](std::int64_t i, bool& acc) { acc = acc && (i * 2) % 2 == 0; });
  EXPECT_TRUE(all_even);
  const bool any_42 =
      reduce(4, 0, 100, LogicalOrReducer{},
             [](std::int64_t i, bool& acc) { acc = acc || i == 42; });
  EXPECT_TRUE(any_42);
  const bool any_1000 =
      reduce(4, 0, 100, LogicalOrReducer{},
             [](std::int64_t i, bool& acc) { acc = acc || i == 1000; });
  EXPECT_FALSE(any_1000);
}

TEST(Reduce, BitReducers) {
  const auto ors = reduce(4, 0, 64, BitOrReducer<std::uint64_t>{},
                          [](std::int64_t i, std::uint64_t& acc) {
                            acc |= (std::uint64_t{1} << i);
                          });
  EXPECT_EQ(ors, ~std::uint64_t{0});
  const auto xors = reduce(4, 0, 64, BitXorReducer<std::uint64_t>{},
                           [](std::int64_t i, std::uint64_t& acc) {
                             acc ^= (std::uint64_t{1} << i);
                           });
  EXPECT_EQ(xors, ~std::uint64_t{0});
  const auto ands = reduce(4, 0, 16, BitAndReducer<std::uint32_t>{},
                           [](std::int64_t, std::uint32_t& acc) {
                             acc &= 0xFFFF0000u;
                           });
  EXPECT_EQ(ands, 0xFFFF0000u);
}

TEST(Reduce, SetUnionCollectsAllElements) {
  constexpr std::int64_t kN = 5000;
  const auto result =
      reduce(4, 0, kN, SetUnionReducer<std::int64_t>{},
             [](std::int64_t i, std::set<std::int64_t>& acc) {
               acc.insert(i % 997);  // duplicates collapse
             },
             {Schedule::kDynamic, 64});
  EXPECT_EQ(result.size(), 997u);
  EXPECT_TRUE(result.contains(0));
  EXPECT_TRUE(result.contains(996));
}

TEST(Reduce, MapMergeCombinesCollidingKeys) {
  constexpr std::int64_t kN = 10000;
  const auto result = reduce(
      4, 0, kN, MapMergeReducer<int, std::int64_t>{},
      [](std::int64_t i, std::map<int, std::int64_t>& acc) {
        acc[static_cast<int>(i % 10)] += 1;
      });
  ASSERT_EQ(result.size(), 10u);
  for (const auto& [k, v] : result) EXPECT_EQ(v, kN / 10) << "key " << k;
}

TEST(Reduce, MapMergeWithCustomValueCombine) {
  struct KeepMax {
    std::int64_t operator()(std::int64_t a, std::int64_t b) const {
      return std::max(a, b);
    }
  };
  const auto result = reduce(
      4, 0, 1000, MapMergeReducer<int, std::int64_t, KeepMax>{},
      [](std::int64_t i, std::map<int, std::int64_t>& acc) {
        const int key = static_cast<int>(i % 7);
        auto [it, inserted] = acc.try_emplace(key, i);
        if (!inserted) it->second = std::max(it->second, i);
      });
  ASSERT_EQ(result.size(), 7u);
  // Max value for key k is the largest i < 1000 with i % 7 == k.
  for (const auto& [k, v] : result) {
    EXPECT_GE(v, 993);
    EXPECT_EQ(v % 7, k);
  }
}

TEST(Reduce, VectorConcatKeepsAllElements) {
  constexpr std::int64_t kN = 3000;
  auto result = reduce(4, 0, kN, VectorConcatReducer<std::int64_t>{},
                       [](std::int64_t i, std::vector<std::int64_t>& acc) {
                         if (i % 3 == 0) acc.push_back(i);
                       });
  EXPECT_EQ(result.size(), static_cast<std::size_t>(kN / 3));
  std::sort(result.begin(), result.end());
  for (std::size_t j = 0; j < result.size(); ++j) {
    ASSERT_EQ(result[j], static_cast<std::int64_t>(j * 3));
  }
}

TEST(Reduce, VectorConcatStaticScheduleIsOrderPreserving) {
  // With the default static block partition, thread t holds a contiguous
  // block and partials are combined in thread order → global order.
  constexpr std::int64_t kN = 1000;
  const auto result = reduce(
      4, 0, kN, VectorConcatReducer<std::int64_t>{},
      [](std::int64_t i, std::vector<std::int64_t>& acc) { acc.push_back(i); },
      {Schedule::kStatic, 0});
  ASSERT_EQ(result.size(), static_cast<std::size_t>(kN));
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(result[static_cast<std::size_t>(i)], i);
  }
}

TEST(Reduce, TopKKeepsSmallest) {
  const TopKReducer<int> top5(5);
  const auto result =
      reduce(4, 0, 10000, top5, [&](std::int64_t i, std::vector<int>& acc) {
        // Insert a scrambled value.
        top5.insert(acc, static_cast<int>((i * 7919) % 10007));
      });
  ASSERT_EQ(result.size(), 5u);
  // Must be the 5 smallest of the inserted multiset, ascending.
  std::vector<int> all;
  for (std::int64_t i = 0; i < 10000; ++i) {
    all.push_back(static_cast<int>((i * 7919) % 10007));
  }
  std::sort(all.begin(), all.end());
  for (int j = 0; j < 5; ++j) {
    EXPECT_EQ(result[static_cast<std::size_t>(j)], all[static_cast<std::size_t>(j)]);
  }
}

TEST(Reduce, HistogramCountsEveryIndex) {
  const HistogramReducer hist(16);
  const auto result = reduce(
      4, 0, 16000, hist,
      [&](std::int64_t i, std::vector<std::uint64_t>& acc) {
        hist.count(acc, static_cast<std::size_t>(i % 16));
      },
      {Schedule::kGuided, 8});
  ASSERT_EQ(result.size(), 16u);
  for (auto c : result) EXPECT_EQ(c, 1000u);
}

TEST(Reduce, LambdaReducerAdHoc) {
  // Longest string: a reduction OpenMP cannot express on scalars.
  const std::vector<std::string> words = {"a", "ccc", "bb", "ffffff", "dd"};
  auto reducer = make_reducer(std::string{}, [](std::string& into,
                                                std::string&& from) {
    if (from.size() > into.size()) into = std::move(from);
  });
  const auto longest = reduce(
      3, 0, static_cast<std::int64_t>(words.size()), reducer,
      [&](std::int64_t i, std::string& acc) {
        const auto& w = words[static_cast<std::size_t>(i)];
        if (w.size() > acc.size()) acc = w;
      });
  EXPECT_EQ(longest, "ffffff");
}

// ---------------------------------------------------------------------------
// Property: the reduction result is invariant under schedule and thread
// count for associative+commutative integer ops.
// ---------------------------------------------------------------------------

using ReduceParam = std::tuple<Schedule, std::size_t>;

class ReduceInvariance : public ::testing::TestWithParam<ReduceParam> {};

TEST_P(ReduceInvariance, SumInvariantAcrossConfigurations) {
  const auto [schedule, threads] = GetParam();
  constexpr std::int64_t kN = 37777;
  const auto sum = reduce(
      threads, 0, kN, SumReducer<std::int64_t>{},
      [](std::int64_t i, std::int64_t& acc) { acc += i * i; },
      {schedule, 0});
  // Closed form for sum of squares.
  EXPECT_EQ(sum, (kN - 1) * kN * (2 * kN - 1) / 6);
}

TEST_P(ReduceInvariance, SetUnionInvariantAcrossConfigurations) {
  const auto [schedule, threads] = GetParam();
  const auto result = reduce(
      threads, 0, 2048, SetUnionReducer<int>{},
      [](std::int64_t i, std::set<int>& acc) {
        acc.insert(static_cast<int>(i / 2));
      },
      {schedule, 32});
  EXPECT_EQ(result.size(), 1024u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, ReduceInvariance,
    ::testing::Combine(::testing::Values(Schedule::kStatic, Schedule::kDynamic,
                                         Schedule::kGuided),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<ReduceParam>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ReduceInTeam, AllThreadsGetTheResult) {
  std::vector<std::int64_t> seen(4, -1);
  region(4, [&](Team& team) {
    const auto r = reduce_in_team(
        team, 0, 1000, SumReducer<std::int64_t>{},
        [](std::int64_t i, std::int64_t& acc) { acc += i; });
    seen[static_cast<std::size_t>(team.thread_num())] = r;
  });
  for (auto v : seen) EXPECT_EQ(v, 499500);
}

TEST(Reduce, EmptyRangeYieldsIdentity) {
  const auto sum = reduce(4, 10, 10, SumReducer<int>{},
                          [](std::int64_t, int& acc) { acc += 1; });
  EXPECT_EQ(sum, 0);
  const auto set = reduce(4, 0, 0, SetUnionReducer<int>{},
                          [](std::int64_t, std::set<int>&) {});
  EXPECT_TRUE(set.empty());
}

}  // namespace
}  // namespace parc::pj
