// Nested pj parallel regions: OpenMP conformance for level/ancestor
// introspection, isolation of worksharing constructs between team levels,
// max_active_levels/set_nested serialization, exception propagation through
// nested joins, deferred tasks inside inner regions, the degenerate
// parallel_for(1) contract, and the pool routing of inner-region members
// (exclusive jobs + capacity reservation, with a counted spawn fallback).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "pj/pj.hpp"
#include "sched/thread_pool.hpp"
#include "support/clock.hpp"

namespace parc::pj {
namespace {

void spin_for_us(double us) {
  Stopwatch sw;
  while (sw.elapsed_us() < us) {
  }
}

/// RAII restore for the nesting knobs, so a failing assertion cannot leak a
/// serialization cap into later tests.
struct LevelsGuard {
  int saved = max_active_levels();
  ~LevelsGuard() { set_max_active_levels(saved); }
};

TEST(PjNested, IntrospectionOutsideAnyRegion) {
  EXPECT_EQ(Team::current(), nullptr);
  EXPECT_EQ(level(), 0);
  EXPECT_EQ(active_level(), 0);
  EXPECT_EQ(ancestor_thread_num(0), 0);  // the initial thread
  EXPECT_EQ(ancestor_thread_num(1), -1);
  EXPECT_EQ(ancestor_team(1), nullptr);
}

TEST(PjNested, LevelsAndAncestorsThroughTwoLevels) {
  constexpr int kOuter = 3;
  constexpr int kInner = 2;
  std::atomic<int> inner_members{0};
  std::atomic<bool> ok{true};
  auto check = [&](bool cond) {
    if (!cond) ok.store(false);
  };
  region(kOuter, [&](Team& outer) {
    check(level() == 1);
    check(active_level() == 1);
    check(outer.level() == 1);
    check(Team::current() == &outer);
    check(ancestor_team(1) == &outer);
    check(ancestor_thread_num(1) == outer.thread_num());
    if (outer.thread_num() == 1) {
      const auto encountering = std::this_thread::get_id();
      region(kInner, [&](Team& inner) {
        inner_members.fetch_add(1);
        check(Team::current() == &inner);
        check(level() == 2);
        check(active_level() == 2);
        check(inner.level() == 2);
        check(inner.num_threads() == kInner);
        // Whole ancestry chain, from any inner member's point of view.
        check(ancestor_team(1) == &outer);
        check(ancestor_team(2) == &inner);
        check(ancestor_team(1)->num_threads() == kOuter);
        check(ancestor_thread_num(0) == 0);
        check(ancestor_thread_num(1) == 1);  // the encountering thread's id
        check(ancestor_thread_num(2) == inner.thread_num());
        check(ancestor_thread_num(3) == -1);
        check(ancestor_team(3) == nullptr);
        // Thread 0 of the inner team IS the encountering thread.
        if (inner.thread_num() == 0) {
          check(std::this_thread::get_id() == encountering);
        }
        inner.barrier();
      });
      // Back on the encountering thread: the inner membership has popped.
      check(Team::current() == &outer);
      check(level() == 1);
      check(outer.thread_num() == 1);
    }
    outer.barrier();
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(inner_members.load(), kInner);
  EXPECT_EQ(level(), 0);
  EXPECT_EQ(Team::current(), nullptr);
}

TEST(PjNested, InnerWorksharingConstructsAreIsolatedFromOuterTeam) {
  constexpr int kOuter = 2;
  constexpr int kInner = 2;
  std::atomic<int> outer_singles{0};
  std::atomic<int> inner_singles{0};
  std::atomic<int> inner_sections_a{0};
  std::atomic<int> inner_sections_b{0};
  std::atomic<bool> ordered_ok{true};
  region(kOuter, [&](Team& outer) {
    outer.single([&] { outer_singles.fetch_add(1); });
    // Every outer member opens its own inner team; each inner team's
    // single/sections/ordered run on that team's instance state, so the
    // inner high-water marks can never alias the outer team's.
    region(kInner, [&](Team& inner) {
      inner.single([&] { inner_singles.fetch_add(1); });
      inner.sections({[&] { inner_sections_a.fetch_add(1); },
                      [&] { inner_sections_b.fetch_add(1); }});
      auto ordered = inner.workshare<OrderedContext>(
          [] { return std::make_shared<OrderedContext>(0); });
      std::vector<std::int64_t>* order = nullptr;
      auto log = inner.workshare<std::vector<std::int64_t>>(
          [] { return std::make_shared<std::vector<std::int64_t>>(); });
      order = log.get();
      constexpr std::int64_t kIters = 8;
      for (std::int64_t i = inner.thread_num(); i < kIters; i += kInner) {
        ordered->run_ordered(i, [&] { order->push_back(i); });
      }
      inner.barrier();
      inner.master([&] {
        for (std::int64_t i = 0; i < kIters; ++i) {
          if ((*order)[static_cast<std::size_t>(i)] != i) {
            ordered_ok.store(false);
          }
        }
      });
    });
    // The outer team's claim sites are untouched by the inner teams.
    outer.single([&] { outer_singles.fetch_add(1); });
  });
  EXPECT_EQ(outer_singles.load(), 2);
  EXPECT_EQ(inner_singles.load(), kOuter);     // once per inner team
  EXPECT_EQ(inner_sections_a.load(), kOuter);  // each body once per team
  EXPECT_EQ(inner_sections_b.load(), kOuter);
  EXPECT_TRUE(ordered_ok.load());
}

TEST(PjNested, MaxActiveLevelsSerializesInnerRegions) {
  LevelsGuard guard;
  const NestedStats before = nested_stats();
  set_max_active_levels(1);
  EXPECT_FALSE(nested());
  std::atomic<int> inner_runs{0};
  region(2, [&](Team& outer) {
    EXPECT_EQ(outer.num_threads(), 2);
    region(4, [&](Team& inner) {
      inner_runs.fetch_add(1);
      // Serialized, but still a real team: barriers and introspection work.
      EXPECT_EQ(inner.num_threads(), 1);
      EXPECT_EQ(inner.thread_num(), 0);
      EXPECT_EQ(inner.level(), 2);
      EXPECT_EQ(level(), 2);
      EXPECT_EQ(active_level(), 1);  // only the outer team is active
      EXPECT_EQ(ancestor_team(2), &inner);
      inner.barrier();
      inner.single([] {});
    });
  });
  // One serialized body per outer member.
  EXPECT_EQ(inner_runs.load(), 2);
  EXPECT_GE(nested_stats().serialized - before.serialized, 2u);

  // Cap 0 serializes even the outermost region.
  set_max_active_levels(0);
  region(4, [&](Team& team) {
    EXPECT_EQ(team.num_threads(), 1);
    EXPECT_EQ(active_level(), 0);
  });

  set_nested(true);
  EXPECT_TRUE(nested());
}

TEST(PjNested, SetNestedFalseMatchesMaxActiveLevelsOne) {
  LevelsGuard guard;
  set_nested(false);
  EXPECT_EQ(max_active_levels(), 1);
  region(2, [&](Team&) {
    region(3, [&](Team& inner) { EXPECT_EQ(inner.num_threads(), 1); });
  });
  set_nested(true);
  EXPECT_GT(max_active_levels(), 1);
}

TEST(PjNested, InnerExceptionPropagatesThroughOuterJoin) {
  EXPECT_THROW(
      region(2,
             [&](Team& outer) {
               if (outer.thread_num() == 0) {
                 region(2, [&](Team& inner) {
                   if (inner.thread_num() == 1) {
                     throw std::runtime_error("inner boom");
                   }
                 });
               }
             }),
      std::runtime_error);
  // The failed join tore everything down: no leaked memberships.
  EXPECT_EQ(level(), 0);
  EXPECT_EQ(Team::current(), nullptr);
}

TEST(PjNested, DeferredTasksInsideInnerRegionRetireBeforeItReturns) {
  constexpr int kTasks = 16;
  std::atomic<int> done{0};
  region(2, [&](Team& outer) {
    if (outer.thread_num() == 0) {
      region(2, [&](Team& inner) {
        inner.master([&] {
          for (int i = 0; i < kTasks; ++i) {
            task(inner, [&] {
              spin_for_us(50);
              done.fetch_add(1);
            });
          }
        });
      });
      // The inner region's implicit taskwait retired every deferred task
      // before returning to the encountering (outer) thread.
      EXPECT_EQ(done.load(), kTasks);
    }
    outer.barrier();
  });
  EXPECT_EQ(done.load(), kTasks);
}

TEST(PjNested, DegenerateParallelForMatchesRealTeamOfOne) {
  std::vector<std::int64_t> seen;
  parallel_for(1, 0, 4, [&](std::int64_t i) {
    seen.push_back(i);
    const Team* team = Team::current();
    ASSERT_NE(team, nullptr);
    EXPECT_EQ(team->num_threads(), 1);
    EXPECT_EQ(team->thread_num(), 0);
    EXPECT_EQ(level(), 1);
    EXPECT_EQ(active_level(), 0);  // a team of one is never active
    EXPECT_EQ(ancestor_thread_num(1), 0);
  });
  ASSERT_EQ(seen.size(), 4u);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);  // in-order on one thread
  }
  EXPECT_EQ(Team::current(), nullptr);

  // Nested: the degenerate loop still opens a real (serial) inner region.
  region(2, [&](Team& outer) {
    if (outer.thread_num() == 1) {
      parallel_for(1, 0, 2, [&](std::int64_t) {
        EXPECT_EQ(level(), 2);
        EXPECT_EQ(ancestor_thread_num(1), 1);
        EXPECT_EQ(ancestor_team(1), &outer);
      });
      EXPECT_EQ(level(), 1);
    }
  });
}

TEST(PjNested, InnerParallelForBetweenNowaitLoopAndBarrier) {
  constexpr int kOuter = 2;
  constexpr std::int64_t kN = 64;
  std::vector<std::atomic<int>> loop1(kN), inner(kN), loop2(kN);
  region(kOuter, [&](Team& team) {
    // Thread 1 is slow: thread 0 finishes its share of the nowait loop and
    // runs a whole inner parallel region while thread 1 is still drawing
    // loop-1 iterations from the outer team's dispenser. Per-construct
    // workshare publication means the inner region (and the second loop
    // below) cannot clobber the slot thread 1 is still using.
    for_loop(
        team, 0, kN,
        [&](std::int64_t i) {
          if (Team::current()->thread_num() == 1) spin_for_us(100);
          loop1[static_cast<std::size_t>(i)].fetch_add(1);
        },
        {}, /*nowait=*/true);
    parallel_for(2, 0, kN,
                 [&](std::int64_t i) {
                   inner[static_cast<std::size_t>(i)].fetch_add(1);
                 });
    team.barrier();
    for_loop(team, 0, kN, [&](std::int64_t i) {
      loop2[static_cast<std::size_t>(i)].fetch_add(1);
    });
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(loop1[idx].load(), 1) << "loop1 iteration " << i;
    // Each of the two outer members ran its own inner parallel_for.
    EXPECT_EQ(inner[idx].load(), kOuter) << "inner iteration " << i;
    EXPECT_EQ(loop2[idx].load(), 1) << "loop2 iteration " << i;
  }
}

TEST(PjNested, InnerRegionMembersRunOnPoolWorkers) {
  auto& pool = task_pool();
  const NestedStats before = nested_stats();
  std::atomic<bool> member_on_pool{false};
  region(2, [&](Team& outer) {
    if (outer.thread_num() == 0) {
      region(2, [&](Team& inner) {
        if (inner.thread_num() == 1) {
          member_on_pool.store(sched::WorkStealingPool::current_pool() ==
                               &pool);
        }
        inner.barrier();
      });
    }
    outer.barrier();
  });
  const NestedStats after = nested_stats();
  EXPECT_TRUE(member_on_pool.load());
  EXPECT_EQ(after.inner_pooled - before.inner_pooled, 1u);
  EXPECT_EQ(after.members_pooled - before.members_pooled, 1u);
  // Happy path: the fallback-spawn counter did not move.
  EXPECT_EQ(after.inner_spawned, before.inner_spawned);
  EXPECT_EQ(after.members_spawned, before.members_spawned);
  // The blocking-capacity reservation was returned in full.
  EXPECT_EQ(pool.reserved_capacity(), 0u);
}

TEST(PjNested, SaturatedPoolFallsBackToSpawnedThreads) {
  auto& pool = task_pool();
  // Eat the whole blocking capacity so the inner region's reservation must
  // fail deterministically.
  ASSERT_TRUE(pool.try_reserve_capacity(pool.worker_count()));
  const NestedStats before = nested_stats();
  const auto denied_before = pool.stats().reservations_denied;
  std::atomic<int> inner_runs{0};
  region(2, [&](Team& outer) {
    if (outer.thread_num() == 0) {
      region(2, [&](Team& inner) {
        inner_runs.fetch_add(1);
        // Fallback members still get the full ancestry chain.
        EXPECT_EQ(level(), 2);
        EXPECT_EQ(ancestor_thread_num(1), 0);
        inner.barrier();
      });
    }
  });
  pool.release_capacity(pool.worker_count());
  const NestedStats after = nested_stats();
  EXPECT_EQ(inner_runs.load(), 2);
  EXPECT_EQ(after.inner_spawned - before.inner_spawned, 1u);
  EXPECT_EQ(after.members_spawned - before.members_spawned, 1u);
  EXPECT_GT(pool.stats().reservations_denied, denied_before);
}

TEST(PjNested, TracedDepthTwoRunExportsNestedRegionTree) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  obs::TraceDump dump;
  {
    obs::TraceSession session;
    region(2, [&](Team& outer) {
      if (outer.thread_num() == 0) {
        region(2, [&](Team& inner) { inner.barrier(); });
      }
      outer.barrier();
    });
    dump = session.end();
  }
  // 2 outer members + 2 inner members, a begin/end pair each.
  EXPECT_EQ(dump.count_kind(obs::EventKind::kRegionBegin), 4u);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kRegionEnd), 4u);
  ASSERT_EQ(dump.count_kind(obs::EventKind::kRegionFork), 2u);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kSpawnFallback), 0u);

  // The fork events link child regions to parents: exactly one top-level
  // fork (parent 0) and one whose parent is the top-level region's id.
  std::uint64_t outer_id = 0, inner_id = 0, inner_parent = 0;
  for (const auto& track : dump.tracks) {
    for (const obs::Event& e : track.events) {
      if (e.kind != obs::EventKind::kRegionFork) continue;
      if (e.id == 0) {
        outer_id = e.arg;
      } else {
        inner_parent = e.id;
        inner_id = e.arg;
      }
    }
  }
  ASSERT_NE(outer_id, 0u);
  ASSERT_NE(inner_id, 0u);
  EXPECT_EQ(inner_parent, outer_id);

  // On the encountering thread's track the region spans nest strictly:
  // begin(outer) .. begin(inner) .. end(inner) .. end(outer).
  bool found_nested_track = false;
  for (const auto& track : dump.tracks) {
    std::vector<std::uint64_t> stack;
    bool saw_inner_inside_outer = false;
    for (const obs::Event& e : track.events) {
      if (e.kind == obs::EventKind::kRegionBegin) {
        if (!stack.empty() && stack.back() == outer_id && e.id == inner_id) {
          saw_inner_inside_outer = true;
        }
        stack.push_back(e.id);
      } else if (e.kind == obs::EventKind::kRegionEnd) {
        ASSERT_FALSE(stack.empty()) << "unbalanced region end";
        EXPECT_EQ(stack.back(), e.id) << "region spans must nest per thread";
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty()) << "unclosed region span on a track";
    if (saw_inner_inside_outer) found_nested_track = true;
  }
  EXPECT_TRUE(found_nested_track);

  // And the Chrome export of that dump is well-formed: every B has its E.
  std::ostringstream os;
  obs::write_chrome_trace(dump, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("region-fork"), std::string::npos);
  auto count_of = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t pos = json.find(needle); pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
      ++n;
    }
    return n;
  };
  EXPECT_EQ(count_of("\"ph\":\"B\""), count_of("\"ph\":\"E\""));
}

}  // namespace
}  // namespace parc::pj
