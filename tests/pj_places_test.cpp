// pj places and proc_bind: OMP_PLACES/OMP_PROC_BIND on top of the sharded
// pool.
//
// The process is configured once, before any pj construct touches the
// shared task pool (task_pool() shards itself from num_places() at first
// use and never re-shards): 4 default threads, 2 places. Tests then pin
// down —
//  - the member_place formulas for close/spread/master/none, including
//    a non-zero origin place and oversubscribed teams;
//  - region(n, bind, body): each member's place_num() reports its binding
//    for the body's duration, and is restored after;
//  - nested inheritance: a bound member's own place becomes its inner
//    region's origin (close/spread rotate from it, none inherits it);
//  - the process-default bind (set_proc_bind) used by the unclaused
//    region overloads, with none == the pre-places behaviour (-1
//    everywhere);
//  - the pool integration: task_pool() actually carved one locality
//    domain per place.
//
// This suite runs in its own binary precisely because set_places is a
// before-first-use knob; nothing here may run after another suite already
// built the pool flat.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstddef>

#include "pj/pj.hpp"
#include "sched/thread_pool.hpp"

namespace parc::pj {
namespace {

class PlacesEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    set_default_num_threads(4);
    set_places(2);
  }
};
const auto* const g_places_env =
    ::testing::AddGlobalTestEnvironment(new PlacesEnvironment);

TEST(PjPlaces, ProcessConfiguration) {
  EXPECT_EQ(num_places(), 2u);
  EXPECT_EQ(proc_bind(), ProcBind::none);
  // The initial thread is unbound until a bound region encloses it.
  EXPECT_EQ(place_num(), -1);
}

TEST(PjPlaces, SetPlacesClampsZeroToOne) {
  set_places(0);
  EXPECT_EQ(num_places(), 1u);
  set_places(2);  // restore the suite's configuration
}

// The assignment formulas, checked on a Team object directly (no threads):
// P = num_places, T = team size, p0 = origin place (0 when unbound).
TEST(PjPlaces, MemberPlaceFormulas) {
  Team close4(4, 1, 1);
  close4.set_places_binding(ProcBind::close, -1);
  // close, T=4, P=2: consecutive members packed in groups of ceil(T/P)=2.
  EXPECT_EQ(close4.member_place(0), 0);
  EXPECT_EQ(close4.member_place(1), 0);
  EXPECT_EQ(close4.member_place(2), 1);
  EXPECT_EQ(close4.member_place(3), 1);

  Team spread4(4, 1, 1);
  spread4.set_places_binding(ProcBind::spread, -1);
  // spread, T=4, P=2: i*P/T = 0,0,1,1 — same partition, reached evenly.
  EXPECT_EQ(spread4.member_place(0), 0);
  EXPECT_EQ(spread4.member_place(3), 1);

  Team master4(4, 1, 1);
  master4.set_places_binding(ProcBind::master, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(master4.member_place(i), 1) << "member " << i;
  }

  Team none4(4, 1, 1);
  none4.set_places_binding(ProcBind::none, 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(none4.member_place(i), 1) << "member " << i;
  }

  // Non-zero origin rotates the close packing: p0=1, groups wrap mod P.
  Team rotated(4, 1, 1);
  rotated.set_places_binding(ProcBind::close, 1);
  EXPECT_EQ(rotated.member_place(0), 1);
  EXPECT_EQ(rotated.member_place(1), 1);
  EXPECT_EQ(rotated.member_place(2), 0);
  EXPECT_EQ(rotated.member_place(3), 0);
}

// close vs spread differ once T and P do not divide evenly: T=4 on P=3
// packs {0,0,1,1} but spreads {0,0,1,2}.
TEST(PjPlaces, CloseAndSpreadDivergeWhenUneven) {
  set_places(3);
  Team close(4, 1, 1);
  close.set_places_binding(ProcBind::close, -1);
  EXPECT_EQ(close.member_place(2), 1);
  EXPECT_EQ(close.member_place(3), 1);
  Team spread(4, 1, 1);
  spread.set_places_binding(ProcBind::spread, -1);
  EXPECT_EQ(spread.member_place(2), 1);
  EXPECT_EQ(spread.member_place(3), 2);
  set_places(2);
}

TEST(PjPlaces, TaskPoolShardedByPlaces) {
  // First pj construct below (or here) builds the pool: one locality
  // domain per place, 4 workers as configured.
  auto& pool = task_pool();
  EXPECT_EQ(pool.shard_count(), 2u);
  EXPECT_EQ(pool.worker_count(), 4u);
}

TEST(PjPlaces, RegionBindsMembersClose) {
  std::array<std::atomic<int>, 4> places{};
  for (auto& p : places) p.store(-2);
  region(4, ProcBind::close, [&places](Team& team) {
    places[static_cast<std::size_t>(team.thread_num())].store(place_num());
  });
  EXPECT_EQ(places[0].load(), 0);
  EXPECT_EQ(places[1].load(), 0);
  EXPECT_EQ(places[2].load(), 1);
  EXPECT_EQ(places[3].load(), 1);
  // The binding is scoped to the region body.
  EXPECT_EQ(place_num(), -1);
}

TEST(PjPlaces, RegionBindsMembersSpreadAndMaster) {
  std::array<std::atomic<int>, 2> spread_places{};
  region(2, ProcBind::spread, [&spread_places](Team& team) {
    spread_places[static_cast<std::size_t>(team.thread_num())].store(
        place_num());
  });
  EXPECT_EQ(spread_places[0].load(), 0);
  EXPECT_EQ(spread_places[1].load(), 1);

  std::array<std::atomic<int>, 2> master_places{};
  region(2, ProcBind::master, [&master_places](Team& team) {
    master_places[static_cast<std::size_t>(team.thread_num())].store(
        place_num());
  });
  EXPECT_EQ(master_places[0].load(), 0);
  EXPECT_EQ(master_places[1].load(), 0);
}

TEST(PjPlaces, UnboundRegionLeavesMembersUnplaced) {
  std::array<std::atomic<int>, 4> places{};
  for (auto& p : places) p.store(-2);
  region(4, [&places](Team& team) {  // default bind: ProcBind::none
    places[static_cast<std::size_t>(team.thread_num())].store(place_num());
  });
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(places[i].load(), -1) << "member " << i;
  }
}

TEST(PjPlaces, DefaultBindComesFromSetProcBind) {
  set_proc_bind(ProcBind::close);
  std::array<std::atomic<int>, 2> places{};
  for (auto& p : places) p.store(-2);
  region(2, [&places](Team& team) {
    places[static_cast<std::size_t>(team.thread_num())].store(place_num());
  });
  set_proc_bind(ProcBind::none);
  EXPECT_EQ(places[0].load(), 0);
  EXPECT_EQ(places[1].load(), 1);
}

// Nested inheritance: a bound member's own place is its inner region's
// origin. Under close the inner team packs starting from that place; under
// none the inner members simply inherit it.
TEST(PjPlaces, NestedRegionsInheritTheirOriginPlace) {
  std::array<std::atomic<int>, 2> inner_close{};
  std::array<std::atomic<int>, 2> inner_none{};
  for (auto& p : inner_close) p.store(-2);
  for (auto& p : inner_none) p.store(-2);
  region(2, ProcBind::spread, [&](Team& team) {
    if (team.thread_num() == 1) {  // bound to place 1 by spread
      region(2, ProcBind::close, [&inner_close](Team& inner) {
        inner_close[static_cast<std::size_t>(inner.thread_num())].store(
            place_num());
      });
      region(2, ProcBind::none, [&inner_none](Team& inner) {
        inner_none[static_cast<std::size_t>(inner.thread_num())].store(
            place_num());
      });
    }
  });
  // close from origin 1, T=2, P=2: group=1, places (1+i)%2 = {1, 0}.
  EXPECT_EQ(inner_close[0].load(), 1);
  EXPECT_EQ(inner_close[1].load(), 0);
  // none: the origin place is inherited verbatim.
  EXPECT_EQ(inner_none[0].load(), 1);
  EXPECT_EQ(inner_none[1].load(), 1);
}

// A bound member's outer place is restored when its inner region ends —
// the PlaceScope stack unwinds like the membership stack.
TEST(PjPlaces, PlaceRestoredAfterInnerRegion) {
  std::atomic<int> before{-2};
  std::atomic<int> after{-2};
  region(2, ProcBind::spread, [&](Team& team) {
    if (team.thread_num() == 1) {
      before.store(place_num());
      region(2, ProcBind::close, [](Team&) {});
      after.store(place_num());
    }
  });
  EXPECT_EQ(before.load(), 1);
  EXPECT_EQ(after.load(), 1);
}

// Deferred pj::task work still drains correctly from bound members (the
// submission is routed to the member's domain; any worker may run it).
TEST(PjPlaces, TasksFromBoundMembersComplete) {
  std::atomic<int> ran{0};
  region(4, ProcBind::close, [&ran](Team& team) {
    for (int i = 0; i < 8; ++i) {
      task(team, [&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    taskwait(team);
  });
  EXPECT_EQ(ran.load(), 32);
}

}  // namespace
}  // namespace parc::pj
