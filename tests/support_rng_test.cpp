// Determinism and distribution-shape tests for parc's seeded generators.
#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <set>
#include <vector>

namespace parc {
namespace {

TEST(SplitMix64, IsDeterministicForSeed) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, OutputIsStableAcrossConstructions) {
  // Pin the first outputs for seed 0 so silent algorithm changes fail tests
  // (all workload tables depend on the stream staying fixed).
  SplitMix64 g(0);
  const std::uint64_t first = g.next();
  const std::uint64_t second = g.next();
  SplitMix64 h(0);
  EXPECT_EQ(h.next(), first);
  EXPECT_EQ(h.next(), second);
  EXPECT_NE(first, second);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, IsDeterministicForSeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, SplitChildContinuesWhereParentWas) {
  // split() hands the child the pre-jump stream and advances the parent by
  // 2^128 steps, so parent and child never overlap again.
  Xoshiro256 a(7);
  Xoshiro256 reference(7);
  Xoshiro256 child = a.split();
  for (int i = 0; i < 64; ++i) ASSERT_EQ(child.next(), reference.next());
  int collisions = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.next() == child.next()) ++collisions;
  }
  EXPECT_LT(collisions, 3);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusiveHitsBothEndpoints) {
  Rng rng(11);
  bool lo = false, hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.range(3, 6);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 6);
    lo |= (v == 3);
    hi |= (v == 6);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng(2024);
  double sum = 0.0, sumsq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(55);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ParetoRespectsScaleFloor) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, ZipfStaysInRangeAndIsSkewed) {
  Rng rng(31);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const auto k = rng.zipf(100, 1.2);
    ASSERT_LT(k, 100u);
    ++counts[static_cast<std::size_t>(k)];
  }
  // Rank 0 must dominate rank 50 heavily for s=1.2.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(rng.zipf(1, 1.0), 0u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_FALSE(rng.chance(0.0));
    ASSERT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(500);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 128; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Shuffle, ProducesPermutationDeterministically) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> v2 = v1;
  Rng r1(9), r2(9);
  shuffle(v1.begin(), v1.end(), r1);
  shuffle(v2.begin(), v2.end(), r2);
  EXPECT_EQ(v1, v2);  // same seed, same permutation
  std::vector<int> sorted = v1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}));
}

TEST(Shuffle, DifferentSeedsDifferentPermutations) {
  std::vector<int> v1{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  std::vector<int> v2 = v1;
  Rng r1(1), r2(2);
  shuffle(v1.begin(), v1.end(), r1);
  shuffle(v2.begin(), v2.end(), r2);
  EXPECT_NE(v1, v2);
}

}  // namespace
}  // namespace parc
