// Pyjama regions and synchronisation constructs: team identity, barrier,
// critical, single, master, sections, ordered, exception propagation,
// GUI-aware regions.
#include "pj/pj.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace parc::pj {
namespace {

TEST(Region, AllThreadsParticipateWithDistinctIds) {
  constexpr std::size_t kThreads = 4;
  std::mutex m;
  std::set<int> ids;  // guarded by m
  region(kThreads, [&](Team& team) {
    EXPECT_EQ(team.num_threads(), static_cast<int>(kThreads));
    std::scoped_lock lock(m);
    ids.insert(team.thread_num());
  });
  EXPECT_EQ(ids.size(), kThreads);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), static_cast<int>(kThreads) - 1);
}

TEST(Region, SingleThreadTeamWorks) {
  int ran = 0;
  region(1, [&](Team& team) {
    EXPECT_EQ(team.thread_num(), 0);
    team.barrier();
    team.single([&] { ++ran; });
    team.master([&] { ++ran; });
    ++ran;
  });
  EXPECT_EQ(ran, 3);
}

TEST(Region, CallingThreadIsThreadZero) {
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> checked{false};
  region(3, [&](Team& team) {
    if (team.thread_num() == 0) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      checked.store(true);
    }
  });
  EXPECT_TRUE(checked.load());
}

TEST(Region, BarrierSynchronisesPhases) {
  constexpr std::size_t kThreads = 4;
  constexpr int kPhases = 10;
  std::vector<std::atomic<int>> phase_counts(kPhases);
  for (auto& c : phase_counts) c.store(0);
  region(kThreads, [&](Team& team) {
    for (int p = 0; p < kPhases; ++p) {
      // Before the barrier, earlier phases must be fully populated.
      for (int q = 0; q < p; ++q) {
        ASSERT_EQ(phase_counts[static_cast<std::size_t>(q)].load(),
                  static_cast<int>(kThreads));
      }
      phase_counts[static_cast<std::size_t>(p)].fetch_add(1);
      team.barrier();
    }
  });
  for (auto& c : phase_counts) EXPECT_EQ(c.load(), static_cast<int>(kThreads));
}

TEST(Region, CriticalIsMutuallyExclusive) {
  constexpr std::size_t kThreads = 4;
  constexpr int kIters = 2000;
  long counter = 0;  // unsynchronised on purpose; critical protects it
  region(kThreads, [&](Team& team) {
    for (int i = 0; i < kIters; ++i) {
      team.critical([&] { ++counter; });
    }
  });
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Region, NamedCriticalsAreIndependentLocks) {
  // Two named criticals must be able to interleave: thread A holding "a"
  // must not block thread B entering "b". We run pairs and just verify both
  // totals; a shared lock would still pass this, so additionally check
  // concurrency via a flag visible while inside "a".
  std::atomic<bool> inside_a{false};
  std::atomic<bool> b_ran_while_a{false};
  region(2, [&](Team& team) {
    if (team.thread_num() == 0) {
      team.critical("a", [&] {
        inside_a.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        inside_a.store(false);
      });
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      team.critical("b", [&] {
        if (inside_a.load()) b_ran_while_a.store(true);
      });
    }
  });
  EXPECT_TRUE(b_ran_while_a.load());
}

TEST(Region, SingleRunsExactlyOncePerEncounter) {
  constexpr std::size_t kThreads = 4;
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  region(kThreads, [&](Team& team) {
    team.single([&] { first.fetch_add(1); });
    team.single([&] { second.fetch_add(1); });
  });
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 1);
}

TEST(Region, SingleBarrierPublishesSideEffects) {
  constexpr std::size_t kThreads = 4;
  std::vector<int> shared;  // written only inside single
  std::atomic<int> ok{0};
  region(kThreads, [&](Team& team) {
    team.single([&] { shared.assign(100, 7); });
    // After single's implicit barrier every thread sees the write.
    if (shared.size() == 100 && shared[99] == 7) ok.fetch_add(1);
  });
  EXPECT_EQ(ok.load(), static_cast<int>(kThreads));
}

TEST(Region, MasterRunsOnlyOnThreadZero) {
  std::atomic<int> runs{0};
  std::atomic<int> master_tid{-1};
  region(4, [&](Team& team) {
    team.master([&] {
      runs.fetch_add(1);
      master_tid.store(team.thread_num());
    });
  });
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(master_tid.load(), 0);
}

TEST(Region, SectionsDistributeAllBodies) {
  std::atomic<int> mask{0};
  region(3, [&](Team& team) {
    team.sections({
        [&] { mask.fetch_or(1); },
        [&] { mask.fetch_or(2); },
        [&] { mask.fetch_or(4); },
        [&] { mask.fetch_or(8); },
        [&] { mask.fetch_or(16); },
    });
  });
  EXPECT_EQ(mask.load(), 31);
}

TEST(Region, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      region(4,
             [&](Team& team) {
               if (team.thread_num() == 2) throw std::runtime_error("t2");
             }),
      std::runtime_error);
}

TEST(Region, ThreadNumOutsideTeamAborts) {
  Team team(1);
  EXPECT_DEATH((void)team.thread_num(), "outside this team");
}

TEST(Region, CurrentTeamVisibleInside) {
  EXPECT_EQ(Team::current(), nullptr);
  region(2, [&](Team& team) { EXPECT_EQ(Team::current(), &team); });
  EXPECT_EQ(Team::current(), nullptr);
}

TEST(Ordered, RunsIterationsInOrder) {
  constexpr int kN = 64;
  OrderedContext ordered(0);
  std::vector<int> log;
  region(4, [&](Team& team) {
    for_loop(
        team, 0, kN,
        [&](std::int64_t i) {
          ordered.run_ordered(i, [&] { log.push_back(static_cast<int>(i)); });
        },
        {Schedule::kDynamic, 1});
  });
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) ASSERT_EQ(log[static_cast<std::size_t>(i)], i);
}

TEST(GuiRegion, CompletionDeliveredThroughDispatcher) {
  std::atomic<int> dispatched{0};
  set_event_dispatcher([&](std::function<void()> fn) {
    dispatched.fetch_add(1);
    fn();
  });
  std::atomic<bool> completed{false};
  std::atomic<int> work{0};
  auto handle = gui_region(
      3, [&](Team&) { work.fetch_add(1); },
      [&](std::exception_ptr e) {
        EXPECT_EQ(e, nullptr);
        completed.store(true);
      });
  handle.wait();
  EXPECT_TRUE(completed.load());
  EXPECT_EQ(work.load(), 3);
  EXPECT_GE(dispatched.load(), 1);
  set_event_dispatcher(nullptr);
}

TEST(GuiRegion, ErrorReachesCompletionHandler) {
  std::atomic<bool> got_error{false};
  auto handle = gui_region(
      2, [&](Team& team) {
        if (team.thread_num() == 1) throw std::runtime_error("gui fail");
      },
      [&](std::exception_ptr e) { got_error.store(e != nullptr); });
  handle.wait();
  EXPECT_TRUE(got_error.load());
}

TEST(GuiRegion, DestructorJoins) {
  std::atomic<bool> done{false};
  {
    auto handle = gui_region(2, [&](Team&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }, [&](std::exception_ptr) { done.store(true); });
  }  // destructor must join
  EXPECT_TRUE(done.load());
}

TEST(Settings, DefaultNumThreadsIsConfigurable) {
  const auto original = default_num_threads();
  set_default_num_threads(3);
  EXPECT_EQ(default_num_threads(), 3u);
  std::atomic<int> seen{0};
  region([&](Team& team) { seen.store(team.num_threads()); });
  EXPECT_EQ(seen.load(), 3);
  set_default_num_threads(original);
}

}  // namespace
}  // namespace parc::pj
