// TaskCell: inline vs. heap storage selection, move-only callables,
// destruction on both paths (with and without running), and re-use.
#include "sched/task_cell.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <utility>

namespace parc::sched {
namespace {

TEST(TaskCell, StartsEmpty) {
  TaskCell cell;
  EXPECT_FALSE(cell.armed());
}

TEST(TaskCell, SmallCaptureStaysInline) {
  int a = 1, b = 2, c = 3;
  auto fn = [&a, &b, &c] { a = b + c; };
  static_assert(TaskCell::stores_inline<decltype(fn)>());
  TaskCell cell;
  cell.emplace(fn);
  EXPECT_TRUE(cell.armed());
  cell.invoke();
  EXPECT_FALSE(cell.armed());
  EXPECT_EQ(a, 5);
}

TEST(TaskCell, LargeCaptureUsesHeapAndRuns) {
  struct Big {
    char bytes[128];
  };
  Big big{};
  big.bytes[0] = 42;
  int out = 0;
  auto fn = [big, &out] { out = big.bytes[0]; };
  static_assert(!TaskCell::stores_inline<decltype(fn)>());
  TaskCell cell;
  cell.emplace(std::move(fn));
  cell.invoke();
  EXPECT_EQ(out, 42);
}

TEST(TaskCell, MoveOnlyFunctorInline) {
  auto ptr = std::make_unique<int>(7);
  int out = 0;
  auto fn = [p = std::move(ptr), &out] { out = *p; };
  static_assert(TaskCell::stores_inline<decltype(fn)>());
  TaskCell cell;
  cell.emplace(std::move(fn));
  cell.invoke();
  EXPECT_EQ(out, 7);
}

TEST(TaskCell, MoveOnlyFunctorHeap) {
  struct Pad {
    char bytes[100];
  };
  auto ptr = std::make_unique<int>(9);
  int out = 0;
  auto fn = [p = std::move(ptr), pad = Pad{}, &out] { out = *p; };
  static_assert(!TaskCell::stores_inline<decltype(fn)>());
  TaskCell cell;
  cell.emplace(std::move(fn));
  cell.invoke();
  EXPECT_EQ(out, 9);
}

// A callable that counts live instances, padded to force either path.
template <std::size_t Pad>
struct Counted {
  explicit Counted(int* live) : live_(live) { ++*live_; }
  Counted(const Counted& o) : live_(o.live_) { ++*live_; }
  Counted(Counted&& o) noexcept : live_(o.live_) { ++*live_; }
  ~Counted() { --*live_; }
  void operator()() const {}
  int* live_;
  char pad_[Pad]{};
};

TEST(TaskCell, ClearDestroysInlineWithoutRunning) {
  using Fn = Counted<8>;
  static_assert(TaskCell::stores_inline<Fn>());
  int live = 0;
  {
    TaskCell cell;
    cell.emplace(Fn(&live));
    EXPECT_EQ(live, 1);
    cell.clear();
    EXPECT_EQ(live, 0);
    EXPECT_FALSE(cell.armed());
  }
  EXPECT_EQ(live, 0);
}

TEST(TaskCell, ClearDestroysHeapWithoutRunning) {
  using Fn = Counted<128>;
  static_assert(!TaskCell::stores_inline<Fn>());
  int live = 0;
  {
    TaskCell cell;
    cell.emplace(Fn(&live));
    EXPECT_EQ(live, 1);
    cell.clear();
    EXPECT_EQ(live, 0);
  }
  EXPECT_EQ(live, 0);
}

TEST(TaskCell, DestructorReleasesUnranCallable) {
  int live = 0;
  {
    TaskCell cell;
    cell.emplace(Counted<8>(&live));
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
  {
    TaskCell cell;
    cell.emplace(Counted<128>(&live));
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(TaskCell, InvokeDestroysCallableOnBothPaths) {
  int live = 0;
  TaskCell cell;
  cell.emplace(Counted<8>(&live));
  cell.invoke();
  EXPECT_EQ(live, 0);
  cell.emplace(Counted<128>(&live));
  cell.invoke();
  EXPECT_EQ(live, 0);
}

TEST(TaskCell, ReusableAcrossManyCycles) {
  TaskCell cell;
  int total = 0;
  for (int i = 0; i < 1000; ++i) {
    // Alternate inline and heap to exercise both recycling paths.
    if (i % 2 == 0) {
      cell.emplace([&total, i] { total += i; });
    } else {
      char pad[96] = {};
      cell.emplace([&total, i, pad] { total += i + pad[0]; });
    }
    cell.invoke();
  }
  EXPECT_EQ(total, 999 * 1000 / 2);
}

TEST(TaskCell, BoundarySizeIsInline) {
  struct Exact {
    char bytes[TaskCell::kInlineBytes];
    void operator()() const {}
  };
  struct Over {
    char bytes[TaskCell::kInlineBytes + 1];
    void operator()() const {}
  };
  static_assert(TaskCell::stores_inline<Exact>());
  static_assert(!TaskCell::stores_inline<Over>());
}

}  // namespace
}  // namespace parc::sched
