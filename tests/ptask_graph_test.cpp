// Property tests over random dependence graphs: for any DAG, run_after must
// execute every node after all of its dependences (observed via a global
// completion counter), exceptions must not break the graph, and cancelling
// a mid-graph node must not corrupt unrelated subgraphs.
#include "ptask/ptask.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <tuple>
#include <vector>

#include "support/rng.hpp"

namespace parc::ptask {
namespace {

Runtime& test_runtime() {
  static Runtime rt(Runtime::Config{4, {}});
  return rt;
}

struct GraphSpec {
  std::vector<std::vector<std::size_t>> deps;  // deps[i] ⊂ {0..i-1}
};

GraphSpec random_dag(std::size_t nodes, double edge_prob, std::uint64_t seed) {
  Rng rng(seed);
  GraphSpec spec;
  spec.deps.resize(nodes);
  for (std::size_t i = 1; i < nodes; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (rng.chance(edge_prob)) spec.deps[i].push_back(j);
    }
  }
  return spec;
}

using GraphParam = std::tuple<std::size_t, double, std::uint64_t>;

class RandomDagExecution : public ::testing::TestWithParam<GraphParam> {};

TEST_P(RandomDagExecution, DependencesAlwaysFinishFirst) {
  const auto [nodes, edge_prob, seed] = GetParam();
  const GraphSpec spec = random_dag(nodes, edge_prob, seed);

  std::atomic<std::uint64_t> clock{0};
  std::vector<std::atomic<std::uint64_t>> finish_stamp(nodes);
  for (auto& f : finish_stamp) f.store(0);

  std::vector<TaskID<void>> tasks(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::vector<std::shared_ptr<TaskStateBase>> dep_states;
    for (std::size_t d : spec.deps[i]) {
      dep_states.push_back(tasks[d].state_base());
    }
    auto body = [&, i] {
      finish_stamp[i].store(clock.fetch_add(1) + 1,
                            std::memory_order_release);
    };
    tasks[i] = detail::spawn<void>(test_runtime(), std::move(body),
                                   std::move(dep_states),
                                   /*interactive=*/false);
  }
  for (auto& t : tasks) t.get();

  for (std::size_t i = 0; i < nodes; ++i) {
    for (std::size_t d : spec.deps[i]) {
      ASSERT_GT(finish_stamp[i].load(), finish_stamp[d].load())
          << "node " << i << " ran before its dependence " << d;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesDensitiesSeeds, RandomDagExecution,
    ::testing::Combine(::testing::Values<std::size_t>(5, 25, 100),
                       ::testing::Values(0.05, 0.3, 0.8),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    [](const ::testing::TestParamInfo<GraphParam>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_p" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

TEST(DependenceGraph, FailedDependenceStillReleasesDependents) {
  // A dependence that throws still counts as finished: the dependent runs
  // (Parallel Task semantics — inspect the dep yourself if failure matters).
  auto bad = run(test_runtime(), [] { throw std::runtime_error("dep"); });
  std::atomic<bool> ran{false};
  auto next = run_after(test_runtime(), [&] { ran.store(true); }, bad);
  next.get();
  EXPECT_TRUE(ran.load());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(DependenceGraph, CancelledDependenceReleasesDependents) {
  Runtime rt(Runtime::Config{1, {}});
  std::atomic<bool> release{false};
  auto blocker = run(rt, [&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  });
  auto victim = run(rt, [] {});
  auto dependent = run_after(rt, [] { return 7; }, victim);
  victim.cancel();
  release.store(true);
  blocker.get();
  EXPECT_EQ(dependent.get(), 7);
  EXPECT_THROW(victim.get(), TaskCancelled);
}

TEST(DependenceGraph, LongChainCompletesInOrder) {
  constexpr std::size_t kDepth = 500;
  std::vector<TaskID<void>> chain;
  chain.reserve(kDepth);
  std::atomic<std::size_t> next_expected{0};
  std::atomic<bool> order_ok{true};
  chain.push_back(run(test_runtime(), [&] {
    if (next_expected.fetch_add(1) != 0) order_ok.store(false);
  }));
  for (std::size_t i = 1; i < kDepth; ++i) {
    chain.push_back(run_after(
        test_runtime(),
        [&, i] {
          if (next_expected.fetch_add(1) != i) order_ok.store(false);
        },
        chain[i - 1]));
  }
  chain.back().get();
  EXPECT_TRUE(order_ok.load());
  EXPECT_EQ(next_expected.load(), kDepth);
}

TEST(DependenceGraph, WideFanInReleasesOnce) {
  constexpr std::size_t kWidth = 200;
  std::vector<TaskID<int>> sources;
  sources.reserve(kWidth);
  for (std::size_t i = 0; i < kWidth; ++i) {
    sources.push_back(run(test_runtime(), [i] { return static_cast<int>(i); }));
  }
  std::vector<std::shared_ptr<TaskStateBase>> dep_states;
  for (auto& s : sources) dep_states.push_back(s.state_base());
  std::atomic<int> runs{0};
  auto sink = detail::spawn<void>(
      test_runtime(), [&] { runs.fetch_add(1); }, std::move(dep_states),
      false);
  sink.get();
  EXPECT_EQ(runs.load(), 1);
  for (auto& s : sources) EXPECT_TRUE(s.ready());
}

}  // namespace
}  // namespace parc::ptask
