// Stopwatch sanity, VirtualClock ordering semantics, backoff escalation.
#include "support/backoff.hpp"
#include "support/clock.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace parc {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(sw.elapsed_ms(), 5.0);
  sw.reset();
  EXPECT_LT(sw.elapsed_ms(), 5.0);
}

TEST(Stopwatch, UnitsAreConsistent) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double ns = sw.elapsed_ns();
  EXPECT_NEAR(sw.elapsed_us(), ns / 1e3, ns * 0.5);
  EXPECT_NEAR(sw.elapsed_s(), ns / 1e9, ns);
}

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  EXPECT_FALSE(clock.has_pending());
}

TEST(VirtualClock, AdvancesToEarliestEvent) {
  VirtualClock clock;
  clock.schedule(5.0, 1);
  clock.schedule(2.0, 2);
  clock.schedule(8.0, 3);
  EXPECT_EQ(clock.advance(), 2u);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_EQ(clock.advance(), 1u);
  EXPECT_EQ(clock.advance(), 3u);
  EXPECT_DOUBLE_EQ(clock.now(), 8.0);
  EXPECT_FALSE(clock.has_pending());
}

TEST(VirtualClock, TiesBreakInScheduleOrder) {
  VirtualClock clock;
  clock.schedule(1.0, 10);
  clock.schedule(1.0, 20);
  clock.schedule(1.0, 30);
  EXPECT_EQ(clock.advance(), 10u);
  EXPECT_EQ(clock.advance(), 20u);
  EXPECT_EQ(clock.advance(), 30u);
}

TEST(VirtualClock, NextTimePeeksWithoutAdvancing) {
  VirtualClock clock;
  clock.schedule(3.5, 7);
  EXPECT_DOUBLE_EQ(clock.next_time(), 3.5);
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VirtualClock, SchedulingInThePastAborts) {
  VirtualClock clock;
  clock.schedule(2.0, 1);
  clock.advance();
  EXPECT_DEATH(clock.schedule(1.0, 2), "past");
}

TEST(SpinWork, IsDeterministicAndNonTrivial) {
  EXPECT_EQ(spin_work(1000), spin_work(1000));
  EXPECT_NE(spin_work(1000), spin_work(1001));
}

TEST(ExponentialBackoff, EscalatesToYieldingThenResets) {
  ExponentialBackoff backoff(16);
  EXPECT_FALSE(backoff.yielding());
  for (int i = 0; i < 10; ++i) backoff.pause();
  EXPECT_TRUE(backoff.yielding());
  backoff.pause();  // yielding path executes without incident
  backoff.reset();
  EXPECT_FALSE(backoff.yielding());
}

}  // namespace
}  // namespace parc
