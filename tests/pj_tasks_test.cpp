// pj::task / pj::taskwait: deferred execution, nesting, implicit region-end
// taskwait, exception funnelling, single-producer patterns.
#include "pj/pj.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace parc::pj {
namespace {

TEST(PjTasks, TasksRunAndTaskwaitBlocks) {
  std::atomic<int> done{0};
  region(2, [&](Team& team) {
    team.single([&] {
      for (int i = 0; i < 100; ++i) {
        task(team, [&] { done.fetch_add(1); });
      }
    });
    taskwait(team);
    EXPECT_EQ(done.load(), 100);
  });
}

TEST(PjTasks, ImplicitTaskwaitAtRegionEnd) {
  std::atomic<int> done{0};
  region(2, [&](Team& team) {
    team.single([&] {
      for (int i = 0; i < 50; ++i) {
        task(team, [&] { done.fetch_add(1); });
      }
    });
    // no explicit taskwait
  });
  EXPECT_EQ(done.load(), 50);
}

TEST(PjTasks, NestedTasks) {
  std::atomic<int> done{0};
  region(2, [&](Team& team) {
    team.single([&] {
      task(team, [&] {
        done.fetch_add(1);
        for (int i = 0; i < 10; ++i) {
          task(team, [&] { done.fetch_add(1); });
        }
      });
    });
  });
  EXPECT_EQ(done.load(), 11);
}

TEST(PjTasks, EveryTeamThreadMaySpawn) {
  std::atomic<int> done{0};
  region(4, [&](Team& team) {
    for (int i = 0; i < 10; ++i) {
      task(team, [&] { done.fetch_add(1); });
    }
    taskwait(team);
  });
  EXPECT_EQ(done.load(), 40);
}

TEST(PjTasks, RecursiveDivideAndConquer) {
  // Tree-sum via nested tasks with per-node accumulation.
  std::atomic<long> sum{0};
  std::function<void(Team&, int, int)> tree_sum =
      [&](Team& team, int lo, int hi) {
        if (hi - lo <= 16) {
          long acc = 0;
          for (int i = lo; i < hi; ++i) acc += i;
          sum.fetch_add(acc);
          return;
        }
        const int mid = lo + (hi - lo) / 2;
        task(team, [&, lo, mid] { tree_sum(team, lo, mid); });
        tree_sum(team, mid, hi);
      };
  region(2, [&](Team& team) {
    team.single([&] { tree_sum(team, 0, 10000); });
    taskwait(team);
  });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(PjTasks, TaskExceptionReachesRegionCaller) {
  EXPECT_THROW(
      region(2,
             [&](Team& team) {
               team.single([&] {
                 task(team, [] { throw std::runtime_error("task boom"); });
               });
             }),
      std::runtime_error);
}

TEST(PjTasks, TaskwaitRethrowsInsideRegion) {
  std::atomic<bool> caught{false};
  region(2, [&](Team& team) {
    team.single([&] {
      task(team, [] { throw std::logic_error("early"); });
      try {
        taskwait(team);
      } catch (const std::logic_error&) {
        caught.store(true);
      }
    });
  });
  EXPECT_TRUE(caught.load());
}

TEST(PjTasks, OutstandingCounterTracks) {
  region(1, [&](Team& team) {
    EXPECT_EQ(tasks_outstanding(team), 0u);
    std::atomic<bool> release{false};
    task(team, [&] {
      while (!release.load()) std::this_thread::yield();
    });
    EXPECT_GE(tasks_outstanding(team), 1u);
    release.store(true);
    taskwait(team);
    EXPECT_EQ(tasks_outstanding(team), 0u);
  });
}

TEST(PjTasks, TaskwaitWithNoTasksIsFree) {
  region(2, [&](Team& team) {
    taskwait(team);  // must not touch (or create) the pool
    SUCCEED();
  });
}

TEST(PjTasks, ManySmallTasksComplete) {
  std::atomic<int> done{0};
  region(4, [&](Team& team) {
    team.single([&] {
      for (int i = 0; i < 5000; ++i) {
        task(team, [&] { done.fetch_add(1); });
      }
    });
  });
  EXPECT_EQ(done.load(), 5000);
}

TEST(PjTasks, TaskloopCoversEveryIterationOnce) {
  constexpr std::int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  region(2, [&](Team& team) {
    team.single([&] {
      taskloop(team, 0, kN,
               [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
    });
    taskwait(team);
  });
  for (std::int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "i=" << i;
  }
}

TEST(PjTasks, TaskloopExplicitChunkCountAndEmptyRange) {
  std::atomic<int> count{0};
  region(2, [&](Team& team) {
    team.single([&] {
      taskloop(team, 5, 5, [&](std::int64_t) { count.fetch_add(1); });
      taskloop(team, 0, 100, [&](std::int64_t) { count.fetch_add(1); },
               /*num_tasks=*/7);
      // More chunks requested than iterations: clamps, still exact.
      taskloop(team, 0, 3, [&](std::int64_t) { count.fetch_add(1); },
               /*num_tasks=*/64);
    });
    taskwait(team);
  });
  EXPECT_EQ(count.load(), 103);
}

TEST(PjTasks, TaskloopExceptionReachesTaskwait) {
  EXPECT_THROW(
      region(2,
             [&](Team& team) {
               team.single([&] {
                 taskloop(team, 0, 16, [&](std::int64_t i) {
                   if (i == 7) throw std::runtime_error("boom");
                 });
               });
               taskwait(team);
             }),
      std::runtime_error);
}

}  // namespace
}  // namespace parc::pj
