// Unit + stress coverage for the lock-free completion core
// (sched/completion.hpp): Completion's sealed Treiber continuation list and
// futex-parking waiter protocol, FirstError's single-CAS capture,
// DependencyCounter's countdown, and Sequencer's ticket hand-off.
//
// The *Stress tests are written for the TSan tier-1 gate: they race
// complete() against add_continuation() against wait() on purpose, and
// assert the exactly-once / first-wins contracts hold under the race.
#include "sched/completion.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace parc::sched {
namespace {

TEST(Completion, StartsIncomplete) {
  Completion c;
  EXPECT_FALSE(c.completed());
  c.complete();
  EXPECT_TRUE(c.completed());
}

TEST(Completion, ContinuationRegisteredBeforeCompleteRunsOnComplete) {
  Completion c;
  bool ran = false;
  c.add_continuation([&ran]() noexcept { ran = true; });
  EXPECT_FALSE(ran);
  c.complete();
  EXPECT_TRUE(ran);
}

TEST(Completion, ContinuationAfterCompleteRunsInline) {
  Completion c;
  c.complete();
  bool ran = false;
  c.add_continuation([&ran]() noexcept { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(Completion, ContinuationsRunInRegistrationOrder) {
  Completion c;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    c.add_continuation([&order, i]() noexcept { order.push_back(i); });
  }
  c.complete();
  ASSERT_EQ(order.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Completion, TryPushFailsAfterComplete) {
  Completion c;
  c.complete();
  bool ran = false;
  CompletionNode* node =
      make_completion_node([&ran]() noexcept { ran = true; });
  EXPECT_FALSE(c.try_push(node));
  EXPECT_FALSE(ran);  // caller keeps ownership and decides
  delete node;
}

TEST(Completion, DestructorFreesUnfiredContinuations) {
  // A never-completed completion must not leak its registered nodes (ASan
  // tier-1 checks the delete actually happens).
  auto flag = std::make_shared<int>(7);
  {
    Completion c;
    c.add_continuation([flag]() noexcept { (void)*flag; });
    EXPECT_EQ(flag.use_count(), 2);
  }
  EXPECT_EQ(flag.use_count(), 1);
}

TEST(Completion, WaitReturnsImmediatelyWhenComplete) {
  Completion c;
  c.complete();
  c.wait();  // must not block
}

TEST(Completion, WaiterParksUntilComplete) {
  Completion c;
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    c.wait();
    woke.store(true, std::memory_order_release);
  });
  // Give the waiter time to pass the spin phase and park on the futex.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  c.complete();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(Completion, StackLifetimeSurvivesCompleterRace) {
  // The post_and_wait pattern: the waiter owns the Completion on its stack
  // and destroys it the moment wait() returns, while the completer's
  // complete() may still be mid-return. Many quick rounds to give TSan/ASan
  // a chance to catch a completer touching freed stack.
  for (int round = 0; round < 200; ++round) {
    auto c = std::make_unique<Completion>();
    std::thread completer([&c] { c->complete(); });
    c->wait();
    c.reset();  // destroy immediately after wake, as a stack frame would
    completer.join();
  }
}

TEST(CompletionStress, ConcurrentAddContinuationVsComplete) {
  // Racing registrars against the completer: every continuation must run
  // exactly once, whether it won the push (runs on the completer) or lost
  // to the seal (runs inline on the registrar).
  constexpr int kRegistrars = 4;
  constexpr int kPerThread = 200;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    Completion c;
    std::atomic<int> ran{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kRegistrars + 1);
    for (int t = 0; t < kRegistrars; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < kPerThread; ++i) {
          c.add_continuation([&ran]() noexcept {
            ran.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
    }
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      c.complete();
    });
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    EXPECT_EQ(ran.load(), kRegistrars * kPerThread);
  }
}

TEST(CompletionStress, ManyWaitersAllWake) {
  constexpr int kWaiters = 8;
  constexpr int kRounds = 20;
  for (int round = 0; round < kRounds; ++round) {
    Completion c;
    std::atomic<int> woke{0};
    std::vector<std::thread> waiters;
    waiters.reserve(kWaiters);
    for (int t = 0; t < kWaiters; ++t) {
      waiters.emplace_back([&] {
        c.wait();
        woke.fetch_add(1, std::memory_order_relaxed);
      });
    }
    c.complete();
    for (auto& t : waiters) t.join();
    EXPECT_EQ(woke.load(), kWaiters);
  }
}

TEST(FirstError, TakeReturnsNullWhenNothingCaptured) {
  FirstError e;
  EXPECT_FALSE(e.has_error());
  EXPECT_EQ(e.take(), nullptr);
}

TEST(FirstError, CapturesAndTakesOnce) {
  FirstError e;
  e.capture(std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_TRUE(e.has_error());
  std::exception_ptr p = e.take();
  ASSERT_NE(p, nullptr);
  EXPECT_THROW(std::rethrow_exception(p), std::runtime_error);
  EXPECT_EQ(e.take(), nullptr);  // drained
}

TEST(FirstError, FirstCaptureWins) {
  FirstError e;
  e.capture(std::make_exception_ptr(std::runtime_error("first")));
  e.capture(std::make_exception_ptr(std::logic_error("second")));
  try {
    std::rethrow_exception(e.take());
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "first");
  }
}

TEST(FirstError, NullCaptureIgnored) {
  FirstError e;
  e.capture(nullptr);
  EXPECT_FALSE(e.has_error());
}

TEST(FirstErrorStress, ConcurrentCapturesKeepExactlyOne) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    FirstError e;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&e, &go, t] {
        while (!go.load(std::memory_order_acquire)) {
        }
        e.capture(std::make_exception_ptr(std::runtime_error(
            "thread " + std::to_string(t))));
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    EXPECT_NE(e.take(), nullptr);
    EXPECT_EQ(e.take(), nullptr);
  }
}

TEST(DependencyCounter, ZeroCountFiresFromInit) {
  DependencyCounter d;
  bool fired = false;
  d.init(0, [&fired] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(DependencyCounter, FiresOnLastSatisfy) {
  DependencyCounter d;
  int fired = 0;
  d.init(3, [&fired] { ++fired; });
  d.satisfy();
  d.satisfy();
  EXPECT_EQ(fired, 0);
  d.satisfy();
  EXPECT_EQ(fired, 1);
}

TEST(DependencyCounter, RegistrationHoldPreventsEarlyFire) {
  // The spawn idiom: init with deps + 1, then release the hold last.
  DependencyCounter d;
  bool fired = false;
  d.init(2 + 1, [&fired] { fired = true; });
  d.satisfy();  // dep 1
  d.satisfy();  // dep 2
  EXPECT_FALSE(fired);
  d.satisfy();  // registration hold
  EXPECT_TRUE(fired);
}

TEST(DependencyCounterStress, ConcurrentSatisfyFiresExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 100;
  for (int round = 0; round < kRounds; ++round) {
    DependencyCounter d;
    std::atomic<int> fired{0};
    d.init(kThreads, [&fired] {
      fired.fetch_add(1, std::memory_order_relaxed);
    });
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        d.satisfy();
      });
    }
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    EXPECT_EQ(fired.load(), 1);
  }
}

TEST(Sequencer, EnforcesTicketOrder) {
  Sequencer seq(0);
  std::vector<int> order;
  std::mutex order_mutex;
  constexpr int kTickets = 16;
  std::vector<std::thread> threads;
  threads.reserve(kTickets);
  // Launch in reverse so later tickets are (usually) waiting first.
  for (int i = kTickets - 1; i >= 0; --i) {
    threads.emplace_back([&, i] {
      seq.wait_for(i);
      {
        std::scoped_lock lock(order_mutex);
        order.push_back(i);
      }
      seq.advance();
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kTickets));
  for (int i = 0; i < kTickets; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(seq.current(), kTickets);
}

}  // namespace
}  // namespace parc::sched
