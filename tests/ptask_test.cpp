// ParallelTask runtime: spawning, results, exceptions, dependences,
// notify handlers, cancellation, interactive tasks.
#include "ptask/ptask.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace parc::ptask {
namespace {

Runtime& test_runtime() {
  static Runtime rt(Runtime::Config{4, {}});
  return rt;
}

TEST(PTask, RunReturnsValue) {
  auto t = run(test_runtime(), [] { return 6 * 7; });
  EXPECT_EQ(t.get(), 42);
  EXPECT_TRUE(t.ready());
  EXPECT_EQ(t.status(), TaskStatus::kDone);
}

TEST(PTask, CancellationRequestedFalseOutsideTasks) {
  EXPECT_FALSE(cancellation_requested());
}

TEST(PTask, RunVoidTask) {
  std::atomic<bool> ran{false};
  auto t = run(test_runtime(), [&] { ran.store(true); });
  t.get();
  EXPECT_TRUE(ran.load());
}

TEST(PTask, GetIsIdempotent) {
  auto t = run(test_runtime(), [] { return std::string("hello"); });
  EXPECT_EQ(t.get(), "hello");
  EXPECT_EQ(t.get(), "hello");  // value persists in the shared state
}

TEST(PTask, ExceptionPropagatesThroughGet) {
  auto t = run(test_runtime(), []() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(t.get(), std::runtime_error);
  EXPECT_EQ(t.status(), TaskStatus::kFailed);
  // Rethrow is repeatable.
  EXPECT_THROW(t.get(), std::runtime_error);
}

TEST(PTask, ManyConcurrentTasks) {
  std::vector<TaskID<int>> tasks;
  tasks.reserve(500);
  for (int i = 0; i < 500; ++i) {
    tasks.push_back(run(test_runtime(), [i] { return i * i; }));
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(tasks[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(PTask, NestedSpawnsAndWaitsDoNotDeadlock) {
  std::function<long(int)> fib = [&](int n) -> long {
    if (n < 2) return n;
    auto left = run(test_runtime(), [&, n] { return fib(n - 1); });
    const long right = fib(n - 2);
    return left.get() + right;
  };
  EXPECT_EQ(fib(18), 2584);
}

TEST(PTask, DependenceOrdersExecution) {
  std::atomic<int> step{0};
  auto a = run(test_runtime(), [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    step.store(1);
    return 10;
  });
  auto b = run_after(
      test_runtime(),
      [&] {
        // Must observe a's side effect: dependence means a finished.
        EXPECT_EQ(step.load(), 1);
        return 20;
      },
      a);
  EXPECT_EQ(b.get(), 20);
}

TEST(PTask, DependenceOnFinishedTaskStillRuns) {
  auto a = run(test_runtime(), [] { return 1; });
  a.get();
  auto b = run_after(test_runtime(), [] { return 2; }, a);
  EXPECT_EQ(b.get(), 2);
}

TEST(PTask, DiamondDependenceGraph) {
  std::atomic<int> order{0};
  auto source = run(test_runtime(), [&] { return order.fetch_add(1); });
  auto left = run_after(test_runtime(), [&] { return order.fetch_add(1); },
                        source);
  auto right = run_after(test_runtime(), [&] { return order.fetch_add(1); },
                         source);
  auto sink =
      run_after(test_runtime(), [&] { return order.fetch_add(1); }, left,
                right);
  EXPECT_EQ(sink.get(), 3);    // last of the four
  EXPECT_EQ(source.get(), 0);  // first
}

TEST(PTask, NotifyInlineFiresOnCompletion) {
  std::atomic<int> notified{0};
  auto t = run(test_runtime(), [] { return 5; });
  t.notify_inline([&](const int& v) { notified.store(v); });
  t.wait();
  // Continuation runs as part of completion or immediately if already done.
  for (int i = 0; i < 100 && notified.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(notified.load(), 5);
}

TEST(PTask, NotifyAfterCompletionRunsImmediately) {
  auto t = run(test_runtime(), [] { return 9; });
  t.get();
  std::atomic<int> notified{0};
  t.notify_inline([&](const int& v) { notified.store(v); });
  EXPECT_EQ(notified.load(), 9);
}

TEST(PTask, NotifyGoesThroughRegisteredDispatcher) {
  Runtime rt(Runtime::Config{2, {}});
  std::atomic<int> via_edt{0};
  // A fake EDT: tags deliveries so we can prove the hop happened.
  rt.set_event_dispatcher([&](std::function<void()> fn) {
    via_edt.fetch_add(1);
    fn();
  });
  std::atomic<int> got{0};
  auto t = run(rt, [] { return 3; });
  t.notify([&](const int& v) { got.store(v); });
  t.wait();
  for (int i = 0; i < 200 && got.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(got.load(), 3);
  EXPECT_GE(via_edt.load(), 1);
}

TEST(PTask, OnErrorDeliversException) {
  std::atomic<bool> caught{false};
  auto t = run(test_runtime(), [] { throw std::logic_error("bad"); });
  t.on_error([&](std::exception_ptr e) {
    try {
      std::rethrow_exception(e);
    } catch (const std::logic_error&) {
      caught.store(true);
    }
  });
  t.wait();
  for (int i = 0; i < 200 && !caught.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(caught.load());
}

TEST(PTask, CancelBeforeStartSkipsBody) {
  // Block the 1-worker pool so the victim task cannot start.
  Runtime rt(Runtime::Config{1, {}});
  std::atomic<bool> release{false};
  std::atomic<bool> victim_ran{false};
  auto blocker = run(rt, [&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  });
  auto victim = run(rt, [&] { victim_ran.store(true); });
  EXPECT_TRUE(victim.cancel());
  release.store(true);
  blocker.get();
  EXPECT_THROW(victim.get(), TaskCancelled);
  EXPECT_FALSE(victim_ran.load());
  EXPECT_EQ(victim.status(), TaskStatus::kCancelled);
}

TEST(PTask, RunningTaskSeesCancellationRequest) {
  std::atomic<bool> observed{false};
  std::atomic<bool> started{false};
  auto t = run(test_runtime(), [&] {
    started.store(true);
    while (!cancellation_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    observed.store(true);
  });
  while (!started.load()) std::this_thread::yield();
  t.cancel();
  t.get();  // completes normally: body exited voluntarily
  EXPECT_TRUE(observed.load());
}

TEST(PTask, InteractiveTasksRunOffComputePool) {
  Runtime rt(Runtime::Config{1, {}});
  // Saturate the single compute worker...
  std::atomic<bool> release{false};
  auto blocker = run(rt, [&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  });
  // ...and prove an interactive task still makes progress.
  auto io = run_interactive(rt, [] { return 123; });
  EXPECT_EQ(io.get(), 123);
  release.store(true);
  blocker.get();
}

TEST(PTask, TaskGroupWaitsForAll) {
  std::atomic<int> count{0};
  TaskGroup group(test_runtime());
  for (int i = 0; i < 64; ++i) {
    group.run([&] { count.fetch_add(1); });
  }
  group.wait();
  EXPECT_EQ(count.load(), 64);
}

TEST(PTask, TaskGroupPropagatesFirstException) {
  TaskGroup group(test_runtime());
  group.run([] {});
  group.run([] { throw std::runtime_error("in group"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // After the throw the group is reusable and clean.
  group.run([] {});
  group.wait();
}

TEST(PTask, TaskGroupDestructorJoinsWithoutThrow) {
  // Destroying a group whose tasks failed must join quietly — a throwing
  // destructor during the unwinding of another exception would terminate.
  std::atomic<int> survived{0};
  try {
    TaskGroup group(test_runtime());
    group.run([] { throw std::runtime_error("task failed"); });
    group.run([&] { survived.fetch_add(1); });
    throw std::logic_error("caller failed");  // unwinds through ~TaskGroup
  } catch (const std::logic_error&) {
    survived.fetch_add(10);
  }
  // Reaching the catch proves the destructor swallowed the group error
  // instead of calling std::terminate; the non-throwing task still ran.
  EXPECT_EQ(survived.load(), 11);
}

TEST(PTask, TaskGroupDestructorDropsUnwaitedError) {
  // Without a wait(), the captured error dies with the group — silently.
  {
    TaskGroup group(test_runtime());
    group.run([] { throw std::runtime_error("never observed"); });
  }
  SUCCEED();
}

TEST(PTask, ParallelInvokeRunsAll) {
  std::atomic<int> mask{0};
  parallel_invoke(
      test_runtime(), [&] { mask.fetch_or(1); }, [&] { mask.fetch_or(2); },
      [&] { mask.fetch_or(4); });
  EXPECT_EQ(mask.load(), 7);
}

TEST(PTask, GlobalRuntimeWorks) {
  auto t = run([] { return 1; });
  EXPECT_EQ(t.get(), 1);
}

TEST(PTask, InvalidTaskIdChecks) {
  TaskID<int> empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_FALSE(empty.ready());
}

}  // namespace
}  // namespace parc::ptask
