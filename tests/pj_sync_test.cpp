// Pyjama synchronisation constructs on the sched completion core: barrier
// cycles (sense-reversing atomic, parking team threads), ordered tickets
// (Sequencer), single/sections site claiming (CAS high-water mark instead
// of mutex + set), and task-error funnelling through the team JoinLatch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pj/pj.hpp"

namespace parc::pj {
namespace {

TEST(PjBarrier, ManyCyclesStayPhaseLocked) {
  constexpr std::size_t kThreads = 4;
  constexpr int kCycles = 50;
  std::atomic<int> phase_sum{0};
  std::atomic<bool> torn{false};
  region(kThreads, [&](Team& team) {
    for (int c = 0; c < kCycles; ++c) {
      phase_sum.fetch_add(1, std::memory_order_relaxed);
      team.barrier();
      // After the barrier every member must see the whole cycle's adds.
      if (phase_sum.load(std::memory_order_acquire) <
          static_cast<int>(kThreads) * (c + 1)) {
        torn.store(true, std::memory_order_relaxed);
      }
      team.barrier();
    }
  });
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(phase_sum.load(), static_cast<int>(kThreads) * kCycles);
}

TEST(PjOrdered, TicketsRunStrictlyInOrder) {
  constexpr std::size_t kThreads = 4;
  constexpr std::int64_t kIterations = 64;
  std::vector<std::int64_t> order;
  region(kThreads, [&](Team& team) {
    auto ordered = team.workshare<OrderedContext>(
        [] { return std::make_shared<OrderedContext>(0); });
    // Static round-robin: thread t owns iterations t, t+T, t+2T, ...
    const auto tid = static_cast<std::int64_t>(team.thread_num());
    for (std::int64_t i = tid; i < kIterations;
         i += static_cast<std::int64_t>(kThreads)) {
      ordered->run_ordered(i, [&] { order.push_back(i); });
    }
    team.barrier();
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kIterations));
  for (std::int64_t i = 0; i < kIterations; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(PjSingle, ExactlyOneWinnerPerSite) {
  constexpr std::size_t kThreads = 4;
  constexpr int kSites = 40;
  std::atomic<int> executed{0};
  region(kThreads, [&](Team& team) {
    for (int s = 0; s < kSites; ++s) {
      team.single([&] { executed.fetch_add(1, std::memory_order_relaxed); });
    }
  });
  EXPECT_EQ(executed.load(), kSites);
}

TEST(PjSingle, NowaitStillClaimsEachSiteOnce) {
  constexpr std::size_t kThreads = 3;
  constexpr int kSites = 30;
  std::atomic<int> executed{0};
  region(kThreads, [&](Team& team) {
    for (int s = 0; s < kSites; ++s) {
      team.single([&] { executed.fetch_add(1, std::memory_order_relaxed); },
                  /*nowait=*/true);
    }
    team.barrier();
  });
  EXPECT_EQ(executed.load(), kSites);
}

TEST(PjSections, EverySectionRunsExactlyOnce) {
  constexpr std::size_t kThreads = 3;
  constexpr std::size_t kSections = 12;
  std::vector<std::atomic<int>> ran(kSections);
  for (auto& r : ran) r.store(0);
  region(kThreads, [&](Team& team) {
    std::vector<std::function<void()>> bodies;
    bodies.reserve(kSections);
    for (std::size_t i = 0; i < kSections; ++i) {
      bodies.push_back([&ran, i] {
        ran[i].fetch_add(1, std::memory_order_relaxed);
      });
    }
    team.sections(bodies);
  });
  for (std::size_t i = 0; i < kSections; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << "section " << i;
  }
}

TEST(PjTaskError, FirstTaskFailurePropagatesFromTaskwait) {
  EXPECT_THROW(
      region(2, [&](Team& team) {
        team.single([&] {
          for (int i = 0; i < 8; ++i) {
            task(team, [] { throw std::runtime_error("task boom"); });
          }
        });
        // The region-end implicit taskwait rethrows on one member; region()
        // funnels it through its FirstError and rethrows here.
      }),
      std::runtime_error);
}

TEST(PjTaskError, TaskwaitDrainsBeforeRethrow) {
  std::atomic<int> finished{0};
  try {
    region(2, [&](Team& team) {
      team.single([&] {
        for (int i = 0; i < 16; ++i) {
          task(team, [&finished, i] {
            if (i == 3) throw std::runtime_error("one bad task");
            finished.fetch_add(1, std::memory_order_relaxed);
          });
        }
      });
      taskwait(team);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error&) {
  }
  // taskwait waits for ALL tasks (not just the failing one) before
  // rethrowing, so every non-throwing task must have completed.
  EXPECT_EQ(finished.load(), 15);
}

TEST(PjRegionError, BodyExceptionWinsOverLaterOnes) {
  try {
    region(4, [&](Team& team) {
      if (team.thread_num() == 0) throw std::runtime_error("member failed");
      team.master([] {});
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "member failed");
  }
}

TEST(PjTasks, OutstandingReturnsToZeroAfterTaskwait) {
  region(2, [&](Team& team) {
    team.single([&] {
      taskloop(team, 0, 100, [](std::int64_t) {}, /*num_tasks=*/10);
    });
    taskwait(team);
    EXPECT_EQ(tasks_outstanding(team), 0u);
  });
}

TEST(PjForLoop, OrderedStyleReductionStaysCorrectAcrossSchedules) {
  // A worksharing loop whose chunks hit barrier + single + dispenser paths
  // all at once — the integration shape students meet in project 4.
  constexpr std::int64_t kN = 10'000;
  std::atomic<std::int64_t> sum{0};
  parallel_for(4, 0, kN, [&](std::int64_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

}  // namespace
}  // namespace parc::pj
