// parc::obs core: session semantics, per-thread lock-free buffers, drop
// accounting, the counters registry, and Chrome trace-event export — the
// exported JSON is validated against the trace-event schema with a small
// recursive-descent parser (no external JSON dependency).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "sched/thread_pool.hpp"

namespace parc::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON model + recursive-descent parser, enough to validate the
// trace-event format: objects, arrays, strings, numbers, true/false/null.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] const std::string& str() const {
    return std::get<std::string>(v);
  }
  [[nodiscard]] double num() const { return std::get<double>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  /// Parses the whole input; sets ok() false on any syntax error.
  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) ok_ = false;
    return v;
  }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    if (pos_ >= s_.size()) return fail();
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return JsonValue{string()};
      case 't':
        return literal("true", JsonValue{true});
      case 'f':
        return literal("false", JsonValue{false});
      case 'n':
        return literal("null", JsonValue{nullptr});
      default:
        return number();
    }
  }

  JsonValue fail() {
    ok_ = false;
    return {};
  }

  JsonValue literal(const std::string& word, JsonValue result) {
    if (s_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return result;
    }
    return fail();
  }

  std::string string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            pos_ += 4;  // the tests only check structure, not code points
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) {
      ok_ = false;
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return fail();
    try {
      return JsonValue{std::stod(s_.substr(start, pos_ - start))};
    } catch (...) {
      return fail();
    }
  }

  JsonValue array() {
    auto arr = std::make_shared<JsonArray>();
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return JsonValue{arr};
    do {
      arr->push_back(value());
    } while (ok_ && consume(','));
    if (!consume(']')) return fail();
    return JsonValue{arr};
  }

  JsonValue object() {
    auto obj = std::make_shared<JsonObject>();
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return JsonValue{obj};
    do {
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail();
      std::string key = string();
      if (!consume(':')) return fail();
      obj->emplace(std::move(key), value());
    } while (ok_ && consume(','));
    if (!consume('}')) return fail();
    return JsonValue{obj};
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Session semantics.
// ---------------------------------------------------------------------------

TEST(ObsTrace, NoSessionMeansNoTracing) {
  EXPECT_FALSE(tracing());
  EXPECT_FALSE(session_active());
}

TEST(ObsTrace, SessionCollectsEventsEmittedWithinIt) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  ASSERT_TRUE(tracing());
  const std::uint64_t a = next_id();
  const std::uint64_t b = next_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, a);
  emit(EventKind::kTaskSpawn, a, 0);
  emit(EventKind::kTaskStart, a, 0);
  emit(EventKind::kDepEdge, a, b);
  const TraceDump dump = session.end();
  EXPECT_FALSE(tracing());
  EXPECT_EQ(dump.total_events(), 3u);
  EXPECT_EQ(dump.count_kind(EventKind::kTaskSpawn), 1u);
  EXPECT_EQ(dump.count_kind(EventKind::kDepEdge), 1u);
  EXPECT_EQ(dump.total_dropped(), 0u);
}

TEST(ObsTrace, EventsOutsideASessionAreNotRecorded) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  {
    TraceSession warm;
    emit(EventKind::kTaskSpawn, next_id(), 0);
    (void)warm.end();
  }
  // No session live: well-gated hooks never reach emit(), and a fresh
  // session must start empty regardless of prior history.
  TraceSession session;
  const TraceDump dump = session.end();
  EXPECT_EQ(dump.total_events(), 0u);
}

TEST(ObsTrace, PerThreadTracksKeepEmissionOrderAndLabels) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  TraceSession session;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      label_thread("obs-test-" + std::to_string(t));
      for (int i = 0; i < kPerThread; ++i) {
        emit(EventKind::kJobEnqueue, static_cast<std::uint64_t>(i + 1),
             static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& th : threads) th.join();
  const TraceDump dump = session.end();
  EXPECT_EQ(dump.total_events(),
            static_cast<std::size_t>(kThreads * kPerThread));
  int labelled = 0;
  for (const auto& track : dump.tracks) {
    if (track.name.rfind("obs-test-", 0) != 0) continue;
    ++labelled;
    ASSERT_EQ(track.events.size(), static_cast<std::size_t>(kPerThread));
    for (int i = 0; i < kPerThread; ++i) {
      // Single-writer buffers preserve program order within a thread.
      EXPECT_EQ(track.events[static_cast<std::size_t>(i)].id,
                static_cast<std::uint64_t>(i + 1));
    }
    // Timestamps are monotone within a track.
    for (std::size_t i = 1; i < track.events.size(); ++i) {
      EXPECT_GE(track.events[i].t_ns, track.events[i - 1].t_ns);
    }
  }
  EXPECT_EQ(labelled, kThreads);
}

TEST(ObsTrace, FullBufferDropsAndCounts) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  TraceSession session(TraceConfig{.events_per_thread = 8});
  for (int i = 0; i < 20; ++i) emit(EventKind::kJobEnqueue, 1, 0);
  const TraceDump dump = session.end();
  EXPECT_EQ(dump.total_events(), 8u);
  EXPECT_EQ(dump.total_dropped(), 12u);
}

// ---------------------------------------------------------------------------
// Counters registry.
// ---------------------------------------------------------------------------

TEST(ObsCounters, AddValueSnapshotRoundTrip) {
  auto& counters = Counters::global();
  counters.reset();
  counters.add("test.alpha", 3);
  counters.add("test.alpha", 4);
  counters.add("test.beta", 1);
  EXPECT_EQ(counters.value("test.alpha"), 7u);
  EXPECT_EQ(counters.value("test.beta"), 1u);
  EXPECT_EQ(counters.value("test.never-touched"), 0u);
  const auto snapshot = counters.snapshot();
  ASSERT_GE(snapshot.size(), 2u);
  // Snapshot is name-sorted.
  for (std::size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
  counters.reset();
  EXPECT_EQ(counters.value("test.alpha"), 0u);
}

TEST(ObsCounters, ConcurrentAddsAreLossless) {
  auto& counters = Counters::global();
  counters.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kAdds; ++i) Counters::global().add("test.race", 1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counters.value("test.race"),
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

// ---------------------------------------------------------------------------
// Chrome trace-event export, validated against the schema.
// ---------------------------------------------------------------------------

TEST(ObsChromeTrace, ExportValidatesAgainstTraceEventSchema) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  // Record a real scheduler run so the dump carries every event class:
  // enqueues, exec spans, task spans, a dependence edge, thread labels.
  TraceDump dump;
  {
    TraceSession session;
    {
      sched::WorkStealingPool pool(
          sched::WorkStealingPool::Config{2, 4, "obs"});
      const std::uint64_t pred = next_id();
      const std::uint64_t succ = next_id();
      emit(EventKind::kTaskSpawn, pred, 0);
      emit(EventKind::kTaskSpawn, succ, 0);
      emit(EventKind::kDepEdge, pred, succ);
      emit(EventKind::kTaskStart, pred, 0);
      emit(EventKind::kTaskFinish, pred, 0);
      emit(EventKind::kTaskStart, succ, 0);
      emit(EventKind::kTaskFinish, succ, 0);
      // Two gate jobs, one per worker: each worker must pick one up (the
      // main thread does not help), so every worker demonstrably emits —
      // and therefore gets a labelled track — before the session ends.
      std::atomic<int> gated{0};
      std::atomic<bool> release{false};
      for (int i = 0; i < 2; ++i) {
        pool.submit([&gated, &release] {
          gated.fetch_add(1, std::memory_order_relaxed);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        });
      }
      while (gated.load(std::memory_order_relaxed) < 2) {
        std::this_thread::yield();
      }
      release.store(true, std::memory_order_release);
      std::atomic<int> ran{0};
      for (int i = 0; i < 50; ++i) {
        pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      }
      pool.help_while([&] { return ran.load(std::memory_order_relaxed) < 50; });
    }  // pool destruction joins the workers: all their events are published
    dump = session.end();
  }
  ASSERT_GT(dump.total_events(), 0u);

  std::ostringstream os;
  write_chrome_trace(dump, os);
  const std::string json = os.str();

  JsonParser parser(json);
  const JsonValue root = parser.parse();
  ASSERT_TRUE(parser.ok()) << "export is not well-formed JSON";
  ASSERT_TRUE(root.is_object());
  const auto& top = root.object();
  ASSERT_TRUE(top.count("traceEvents"));
  ASSERT_TRUE(top.at("traceEvents").is_array());
  const JsonArray& events = top.at("traceEvents").array();
  ASSERT_GT(events.size(), 0u);

  // Schema: every event needs ph/pid/tid; non-metadata events need a
  // numeric ts; B/E spans must balance per tid; flow events come in s/f
  // pairs sharing an id.
  std::map<double, int> open_spans_per_tid;
  int flow_starts = 0;
  int flow_finishes = 0;
  for (const JsonValue& ev : events) {
    ASSERT_TRUE(ev.is_object());
    const auto& e = ev.object();
    ASSERT_TRUE(e.count("ph"));
    ASSERT_TRUE(e.at("ph").is_string());
    const std::string& ph = e.at("ph").str();
    ASSERT_EQ(ph.size(), 1u);
    ASSERT_TRUE(e.count("pid"));
    ASSERT_TRUE(e.at("pid").is_number());
    ASSERT_TRUE(e.count("tid"));
    ASSERT_TRUE(e.at("tid").is_number());
    if (ph != "M") {
      ASSERT_TRUE(e.count("ts"));
      ASSERT_TRUE(e.at("ts").is_number());
      ASSERT_GE(e.at("ts").num(), 0.0);
      ASSERT_TRUE(e.count("name"));
      ASSERT_TRUE(e.at("name").is_string());
    }
    if (ph == "B") open_spans_per_tid[e.at("tid").num()]++;
    if (ph == "E") open_spans_per_tid[e.at("tid").num()]--;
    if (ph == "s") ++flow_starts;
    if (ph == "f") {
      ++flow_finishes;
      ASSERT_TRUE(e.count("bp"));  // bind to enclosing slice
    }
    if (ph == "s" || ph == "f") {
      ASSERT_TRUE(e.count("id"));
    }
  }
  for (const auto& [tid, open] : open_spans_per_tid) {
    EXPECT_EQ(open, 0) << "unbalanced B/E spans on tid " << tid;
  }
  EXPECT_EQ(flow_starts, 1);
  EXPECT_EQ(flow_finishes, 1);

  // Thread metadata: one name per recorded track, workers labelled.
  int names = 0;
  bool saw_worker = false;
  for (const JsonValue& ev : events) {
    const auto& e = ev.object();
    if (e.at("ph").str() != "M") continue;
    ASSERT_TRUE(e.count("name"));
    if (e.at("name").str() == "thread_name") {
      ++names;
      const auto& args = e.at("args").object();
      if (args.at("name").str().rfind("obs-w", 0) == 0) saw_worker = true;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(names), dump.tracks.size());
  EXPECT_TRUE(saw_worker) << "pool worker threads should be labelled";
}

}  // namespace
}  // namespace parc::obs
