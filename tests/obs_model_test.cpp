// obs::model — fitted scaling models, pattern annotation, and the
// trace → sweep → fit → cross-check loop (ISSUE 9 acceptance gates live
// here: held-out prediction within 15%, degenerate DAGs without NaNs).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <sstream>
#include <vector>

#include "obs/obs.hpp"
#include "ptask/ptask.hpp"
#include "sim/machine.hpp"

namespace parc::obs {
namespace {

using model::FitOptions;
using model::ModelOptions;
using model::ProgramModel;
using model::ScalingModel;

void expect_finite(const ScalingModel& m) {
  for (const double c : m.c) EXPECT_TRUE(std::isfinite(c));
  EXPECT_TRUE(std::isfinite(m.floor_s));
  EXPECT_TRUE(std::isfinite(m.t1));
  EXPECT_TRUE(std::isfinite(m.cv_rel_rmse));
  for (const double p : {1.0, 2.0, 7.0, 64.0, 1024.0}) {
    EXPECT_TRUE(std::isfinite(m.eval(p))) << "p = " << p;
    EXPECT_GE(m.eval(p), 0.0) << "p = " << p;
  }
}

// ---------------------------------------------------------------------------
// fit() on synthetic sweeps.
// ---------------------------------------------------------------------------

TEST(ObsModelFit, AmdahlDagHoldoutWithin15Percent) {
  // serial 0.5 s + 256 × 1/256 s parallel: the textbook curve.
  const sim::TaskDag dag = sim::amdahl_dag(0.5, 256, 1.0 / 256.0);
  sim::SweepOptions opts;
  opts.cores = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const ScalingModel m = model::fit(sim::sweep(dag, opts));
  expect_finite(m);
  EXPECT_LE(m.cv_rel_rmse, 0.15);

  // The acceptance gate: ≥2 held-out core counts, never used for fitting,
  // predicted within 15% relative error against ground-truth simulate.
  const auto holdout = model::cross_check(m, dag, {3, 6, 12, 24, 48, 96},
                                          sim::MachineParams{1, 0.0, "h"});
  ASSERT_GE(holdout.size(), 2u);
  for (const auto& h : holdout) {
    EXPECT_LE(h.rel_error, 0.15) << "cores = " << h.cores;
    EXPECT_GT(h.simulated_speedup, 0.0);
  }
}

TEST(ObsModelFit, ForkJoinKneeHoldoutWithin15Percent) {
  // 192 equal tasks: sharp work-law knee at P = 192. The max(linear, floor)
  // candidate exists exactly for this shape.
  const sim::TaskDag dag =
      sim::fork_join_dag(std::vector<double>(192, 1.0 / 192.0));
  sim::SweepOptions opts;
  opts.cores = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  const ScalingModel m = model::fit(sim::sweep(dag, opts));
  expect_finite(m);
  const auto holdout = model::cross_check(m, dag, {3, 6, 12, 24, 48, 96},
                                          sim::MachineParams{1, 0.0, "h"});
  for (const auto& h : holdout) {
    EXPECT_LE(h.rel_error, 0.15) << "cores = " << h.cores;
  }
  // Speedup keeps growing to the task count, so saturation is far out.
  EXPECT_GE(m.saturation_p(), 32u);
}

TEST(ObsModelFit, SerialChainIsConstantWithoutNaN) {
  sim::TaskDag dag;
  sim::TaskDag::NodeId prev = dag.add_task(0.1);
  for (int i = 0; i < 9; ++i) prev = dag.add_task(0.1, {prev});
  const ScalingModel m = model::fit(sim::sweep(dag, {}));
  expect_finite(m);
  // A chain does not scale: constant prediction, saturation at 1.
  EXPECT_NEAR(m.eval(1.0), 1.0, 1e-6);
  EXPECT_NEAR(m.eval(64.0), 1.0, 1e-6);
  EXPECT_EQ(m.saturation_p(), 1u);
  EXPECT_NEAR(m.speedup_at(64.0), 1.0, 1e-6);
}

TEST(ObsModelFit, SingleTaskAndEmptyDagFitWithoutNaN) {
  sim::TaskDag one;
  one.add_task(0.25);
  const ScalingModel m1 = model::fit(sim::sweep(one, {}));
  expect_finite(m1);
  EXPECT_NEAR(m1.eval(16.0), 0.25, 1e-9);

  const sim::TaskDag empty;
  const ScalingModel m0 = model::fit(sim::sweep(empty, {}));
  expect_finite(m0);
  EXPECT_EQ(m0.eval(8.0), 0.0);
  EXPECT_EQ(m0.speedup_at(8.0), 0.0);
}

TEST(ObsModelFit, FormulaMentionsActiveTermsOnly) {
  const sim::TaskDag dag =
      sim::fork_join_dag(std::vector<double>(64, 1.0 / 64.0));
  const ScalingModel m = model::fit(sim::sweep(dag, {}));
  EXPECT_FALSE(m.formula().empty());
  // Whatever was selected, the formula must parse back loosely: it names
  // p only if a p-dependent term is active.
  if ((m.terms & ~0x1u) == 0) {
    EXPECT_EQ(m.formula().find('p'), std::string::npos);
  } else {
    EXPECT_NE(m.formula().find('p'), std::string::npos);
  }
}

TEST(ObsModelFit, CrossoverBetweenGranularities) {
  // Coarse: 4 chunks of 0.25 — wins at low P, capped at speedup 4.
  // Fine: 64 chunks of 1/64 with 2 ms dispatch overhead each — pays more
  // at P = 1, keeps scaling past 4 cores.
  const sim::TaskDag coarse =
      sim::fork_join_dag(std::vector<double>(4, 0.25));
  const sim::TaskDag fine =
      sim::fork_join_dag(std::vector<double>(64, 1.0 / 64.0));
  sim::SweepOptions coarse_opts;
  sim::SweepOptions fine_opts;
  fine_opts.machine.per_task_overhead_s = 0.002;
  const ScalingModel mc = model::fit(sim::sweep(coarse, coarse_opts));
  const ScalingModel mf = model::fit(sim::sweep(fine, fine_opts));
  const std::size_t cross = model::crossover_p(mf, mc, 256);
  EXPECT_GT(cross, 2u);   // coarse wins while its 4 chunks still spread
  EXPECT_LE(cross, 16u);  // fine takes over once coarse saturates
}

// ---------------------------------------------------------------------------
// Pattern annotation through the stable accessors.
// ---------------------------------------------------------------------------

RecordedTask task_at(std::uint64_t id, std::uint64_t start_us,
                     std::uint64_t dur_us, std::uint64_t parent = 0) {
  RecordedTask t;
  t.id = id;
  t.parent = parent;
  t.start_ns = start_us * 1000;
  t.finish_ns = (start_us + dur_us) * 1000;
  t.started = t.finished = true;
  return t;
}

TEST(ObsPatterns, ReduceTreeIsClassified) {
  // 4 leaves → 2 combiners → 1 root (in-tree, 4 sources, 1 sink).
  std::vector<RecordedTask> tasks;
  for (std::uint64_t i = 1; i <= 4; ++i) tasks.push_back(task_at(i, 0, 100));
  tasks.push_back(task_at(5, 200, 50));
  tasks.push_back(task_at(6, 200, 50));
  tasks.push_back(task_at(7, 300, 50));
  const std::vector<RecordedGraph::Edge> edges = {
      {1, 5}, {2, 5}, {3, 6}, {4, 6}, {5, 7}, {6, 7}};
  const RecordedGraph graph(tasks, edges);
  ASSERT_EQ(graph.patterns().size(), 1u);
  EXPECT_EQ(graph.patterns()[0].kind, PatternKind::kReduce);
  EXPECT_EQ(graph.patterns()[0].tasks.size(), 7u);
  for (std::size_t k = 0; k < graph.task_count(); ++k) {
    EXPECT_EQ(graph.pattern_of(k), 0u);
  }
}

TEST(ObsPatterns, ForkJoinAndChainAndMapCoexist) {
  std::vector<RecordedTask> tasks;
  // Fork-join: 10 fans 11..13, all join into 14.
  tasks.push_back(task_at(10, 0, 10));
  for (std::uint64_t i = 11; i <= 13; ++i) tasks.push_back(task_at(i, 20, 50));
  tasks.push_back(task_at(14, 80, 10));
  // Chain: 20 → 21.
  tasks.push_back(task_at(20, 100, 30));
  tasks.push_back(task_at(21, 140, 30));
  // Map: three children of spawn parent 99 (id not a traced task).
  for (std::uint64_t i = 30; i <= 32; ++i) {
    tasks.push_back(task_at(i, 200, 40, 99));
  }
  const std::vector<RecordedGraph::Edge> edges = {
      {10, 11}, {10, 12}, {10, 13}, {11, 14}, {12, 14}, {13, 14}, {20, 21}};
  const RecordedGraph graph(tasks, edges);
  ASSERT_EQ(graph.patterns().size(), 3u);
  EXPECT_EQ(graph.patterns()[0].kind, PatternKind::kForkJoin);
  EXPECT_EQ(graph.patterns()[1].kind, PatternKind::kSerialChain);
  EXPECT_EQ(graph.patterns()[2].kind, PatternKind::kMap);
  // group_dag keeps only intra-group structure.
  EXPECT_EQ(graph.group_dag(0).size(), 5u);
  EXPECT_EQ(graph.group_dag(2).size(), 3u);
  EXPECT_NEAR(graph.group_dag(2).total_work(), 3 * 40e-6, 1e-12);
}

TEST(ObsPatterns, TwoTaskloopsSeparatedInTimeAreTwoMaps) {
  // Parent-0 chunks: burst A (overlapping), gap, burst B.
  std::vector<RecordedTask> tasks;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    tasks.push_back(task_at(i, 10 * i, 100));
  }
  for (std::uint64_t i = 5; i <= 8; ++i) {
    tasks.push_back(task_at(i, 1000 + 10 * i, 100));
  }
  const RecordedGraph graph(tasks, {});
  ASSERT_EQ(graph.patterns().size(), 2u);
  EXPECT_EQ(graph.patterns()[0].kind, PatternKind::kMap);
  EXPECT_EQ(graph.patterns()[1].kind, PatternKind::kMap);
  EXPECT_EQ(graph.patterns()[0].tasks.size(), 4u);
  EXPECT_EQ(graph.patterns()[1].tasks.size(), 4u);
}

// ---------------------------------------------------------------------------
// fit_program: composition + holdout on a structured graph.
// ---------------------------------------------------------------------------

RecordedGraph map_then_chain_graph() {
  std::vector<RecordedTask> tasks;
  // Phase 1: 32-wide map, 1 ms each (children of one spawn call).
  for (std::uint64_t i = 1; i <= 32; ++i) {
    tasks.push_back(task_at(i, 0, 1000, 500));
  }
  // Phase 2: a 4-link chain of 0.5 ms, strictly after the map.
  std::uint64_t prev = 0;
  std::vector<RecordedGraph::Edge> edges;
  for (std::uint64_t i = 100; i <= 103; ++i) {
    tasks.push_back(task_at(i, 40000 + (i - 100) * 600, 500));
    if (prev != 0) edges.push_back({prev, i});
    prev = i;
  }
  return RecordedGraph(std::move(tasks), std::move(edges));
}

TEST(ObsProgramModel, HoldoutWithin15PercentAndPhasesRecovered) {
  const RecordedGraph graph = map_then_chain_graph();
  const ProgramModel pm = model::fit_program(graph);
  expect_finite(pm.total);
  EXPECT_GT(pm.total.t1, 0.0);

  // The greedy schedule of this graph has a ceil(32/p) staircase no smooth
  // basis reproduces point-for-point, so the acceptance gate here is the
  // report's: at least two held-out core counts within 15%, and no holdout
  // point badly wrong.
  ASSERT_GE(pm.holdout.size(), 2u);
  std::size_t within = 0;
  for (const auto& h : pm.holdout) {
    EXPECT_LE(h.rel_error, 0.25) << "cores = " << h.cores;
    if (h.rel_error <= 0.15) ++within;
  }
  EXPECT_GE(within, 2u);

  // Structure: one map group + one chain group, in two sequential phases.
  ASSERT_EQ(pm.patterns.size(), 2u);
  EXPECT_EQ(pm.patterns[0].kind, PatternKind::kMap);
  EXPECT_EQ(pm.patterns[1].kind, PatternKind::kSerialChain);
  EXPECT_EQ(pm.phases.size(), 2u);

  // The composed prediction stays in the simulated truth's neighbourhood.
  // It cannot match exactly: the trace records the chain strictly after the
  // map, so composition sums the phases, while the flat DAG simulation is
  // free to overlap them once p exceeds the map width.
  EXPECT_LE(pm.composed_rel_rmse, 0.35);
  for (const double p : {2.0, 8.0, 64.0}) {
    EXPECT_GT(pm.composed_time(p), 0.0);
    EXPECT_TRUE(std::isfinite(pm.composed_time(p)));
  }
  // What-if surface: map dominates, so saturation sits near its width.
  EXPECT_GE(pm.saturation_p(), 8u);
}

TEST(ObsProgramModel, DegenerateGraphsFitWithoutNaN) {
  // Single task.
  {
    const RecordedGraph graph({task_at(1, 0, 500)}, {});
    const ProgramModel pm = model::fit_program(graph);
    expect_finite(pm.total);
    EXPECT_EQ(pm.patterns.size(), 1u);
    EXPECT_TRUE(std::isfinite(pm.composed_time(8.0)));
  }
  // Pure serial chain.
  {
    std::vector<RecordedTask> tasks;
    std::vector<RecordedGraph::Edge> edges;
    for (std::uint64_t i = 1; i <= 5; ++i) {
      tasks.push_back(task_at(i, i * 1000, 900));
      if (i > 1) edges.push_back({i - 1, i});
    }
    const RecordedGraph graph(std::move(tasks), std::move(edges));
    const ProgramModel pm = model::fit_program(graph);
    expect_finite(pm.total);
    EXPECT_EQ(pm.total.saturation_p(), 1u);
    EXPECT_LE(pm.max_holdout_error(), 0.15);
  }
  // Empty graph.
  {
    const RecordedGraph graph;
    const ProgramModel pm = model::fit_program(graph);
    expect_finite(pm.total);
    EXPECT_EQ(pm.patterns.size(), 0u);
    EXPECT_EQ(pm.composed_time(4.0), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Chrome trace round-trip: write → read → same recorded graph.
// ---------------------------------------------------------------------------

TEST(ObsTraceRoundTrip, SyntheticDumpSurvivesWriteRead) {
  TraceDump dump;
  ThreadTrack track;
  track.name = "worker-7";
  auto push = [&](EventKind kind, std::uint64_t t_ns, std::uint64_t id,
                  std::uint64_t arg) {
    Event e;
    e.kind = kind;
    e.t_ns = t_ns;
    e.id = id;
    e.arg = arg;
    track.events.push_back(e);
  };
  push(EventKind::kTaskSpawn, 1000, 1, 0);
  push(EventKind::kTaskStart, 2000, 1, 0);
  push(EventKind::kTaskFinish, 250000, 1, 0);
  push(EventKind::kTaskSpawn, 251000, 2, 1);
  push(EventKind::kDepEdge, 251000, 1, 2);
  push(EventKind::kTaskStart, 252000, 2, 0);
  push(EventKind::kTaskFinish, 500000, 2, 0);
  dump.tracks.push_back(track);

  std::stringstream ss;
  write_chrome_trace(dump, ss);
  const TraceDump parsed = read_chrome_trace(ss);

  ASSERT_EQ(parsed.tracks.size(), 1u);
  EXPECT_EQ(parsed.tracks[0].name, "worker-7");
  ASSERT_EQ(parsed.tracks[0].events.size(), track.events.size());
  for (std::size_t i = 0; i < track.events.size(); ++i) {
    const Event& a = track.events[i];
    const Event& b = parsed.tracks[0].events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.t_ns, b.t_ns) << "event " << i;
    EXPECT_EQ(a.id, b.id) << "event " << i;
    EXPECT_EQ(a.arg, b.arg) << "event " << i;
  }

  // And the graphs extracted from both dumps agree.
  const RecordedGraph g1 = extract_task_graph(dump);
  const RecordedGraph g2 = extract_task_graph(parsed);
  EXPECT_EQ(g1.task_count(), g2.task_count());
  EXPECT_EQ(g1.edge_count(), g2.edge_count());
}

TEST(ObsTraceRoundTrip, MalformedInputThrows) {
  std::stringstream bad("{\"traceEvents\": [{\"ph\": \"B\", ");
  EXPECT_THROW((void)read_chrome_trace(bad), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW((void)read_chrome_trace(empty), std::runtime_error);
}

TEST(ObsTraceRoundTrip, TracedRunSurvivesWriteRead) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  auto& rt = ptask::Runtime::global();
  TraceDump dump;
  {
    TraceSession session;
    auto spin = [] {
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::microseconds(300);
      while (std::chrono::steady_clock::now() < until) {
      }
    };
    auto a = ptask::run(rt, spin);
    auto b = ptask::run_after(rt, spin, a);
    auto m = ptask::run_multi(rt, 4, [&](std::size_t) { spin(); });
    b.wait();
    m.wait();
    dump = session.end();
  }
  std::stringstream ss;
  write_chrome_trace(dump, ss);
  const TraceDump parsed = read_chrome_trace(ss);

  const RecordedGraph g1 = extract_task_graph(dump);
  const RecordedGraph g2 = extract_task_graph(parsed);
  ASSERT_EQ(g1.task_count(), g2.task_count());
  ASSERT_EQ(g1.edge_count(), g2.edge_count());
  ASSERT_EQ(g1.patterns().size(), g2.patterns().size());
  for (std::size_t g = 0; g < g1.patterns().size(); ++g) {
    EXPECT_EQ(g1.patterns()[g].kind, g2.patterns()[g].kind);
    EXPECT_EQ(g1.patterns()[g].tasks.size(), g2.patterns()[g].tasks.size());
    EXPECT_NEAR(g1.patterns()[g].work_s, g2.patterns()[g].work_s, 1e-12);
  }
  // The fitted models agree because the inputs agree exactly. A six-task
  // trace recorded under real scheduler noise is the hardest fitting input
  // in this file, so the accuracy ask is the report gate (two held-out core
  // counts within 15%), not a bound on every point.
  const ProgramModel m1 = model::fit_program(g1);
  const ProgramModel m2 = model::fit_program(g2);
  EXPECT_NEAR(m1.total.eval(8.0), m2.total.eval(8.0), 1e-12);
  std::size_t within = 0;
  for (const auto& h : m1.holdout) {
    if (h.rel_error <= 0.15) ++within;
  }
  EXPECT_GE(within, 2u);
  EXPECT_LE(m1.max_holdout_error(), 0.35);
}

}  // namespace
}  // namespace parc::obs
