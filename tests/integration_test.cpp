// Cross-module integration: the example-application flows as assertions —
// a live search app (ptask + gui + text), a GUI-aware Pyjama computation
// (pj + gui + kernels), a full semester of course administration
// (course, end to end), and a download session (net + ptask).
#include <gtest/gtest.h>

#include <atomic>

#include "course/course.hpp"
#include "gui/gui.hpp"
#include "kernels/kernels.hpp"
#include "net/downloader.hpp"
#include "pj/pj.hpp"
#include "ptask/ptask.hpp"
#include "text/text.hpp"

namespace parc {
namespace {

TEST(Integration, SearchAppDeliversOracleResultsThroughUi) {
  text::CorpusOptions opts;
  opts.num_files = 128;
  const auto generated = text::make_corpus(opts, 99);

  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  gui::EventLoop loop;
  gui::ListModel<std::string> results(loop);
  gui::TextModel status(loop);
  rt.set_event_dispatcher(loop.dispatcher());

  const auto matches = text::search_corpus_ptask(
      generated.corpus, opts.needle, rt,
      [&](const std::vector<text::Match>& batch) {
        loop.post([&, batch] {
          for (const auto& m : batch) {
            results.append(generated.corpus.files[m.file_index].path);
          }
          status.set(std::to_string(results.size()) + " hits");
        });
      });
  loop.drain();
  loop.post_and_wait([] {});

  EXPECT_EQ(matches.size(), generated.needles.size());
  EXPECT_EQ(results.snapshot().size(), matches.size());
  EXPECT_NE(status.snapshot().find("hits"), std::string::npos);
  rt.set_event_dispatcher(nullptr);
}

TEST(Integration, GuiAwarePyjamaComputationKeepsEdtFree) {
  gui::EventLoop loop;
  pj::set_event_dispatcher(loop.dispatcher());

  auto grid = kernels::make_heat_grid(64, 64);
  auto reference = kernels::make_heat_grid(64, 64);
  const double ref_residual = kernels::jacobi_seq(reference, 30);

  std::atomic<bool> completed{false};
  std::atomic<bool> completed_on_edt{false};
  double residual = 0.0;
  auto handle = pj::gui_region(
      3,
      [&](pj::Team& team) {
        // The region body executes on every team thread; exactly one may
        // own the whole-grid solve (which forks its own nested teams).
        team.single([&] { residual = kernels::jacobi_pj(grid, 30, 3); });
      },
      [&](std::exception_ptr error) {
        completed_on_edt.store(loop.is_event_thread());
        completed.store(error == nullptr);
      });
  handle.wait();
  loop.post_and_wait([] {});

  EXPECT_TRUE(completed.load());
  EXPECT_TRUE(completed_on_edt.load());
  EXPECT_DOUBLE_EQ(residual, ref_residual);
  for (std::size_t i = 0; i < grid.cells.size(); ++i) {
    ASSERT_DOUBLE_EQ(grid.cells[i], reference.cells[i]);
  }
  pj::set_event_dispatcher(nullptr);
}

TEST(Integration, FullSemesterAdministrationInvariants) {
  using namespace course;
  // Topics from the yearly review feed the poll; groups feed the grade
  // pipeline; the survey closes the loop.
  auto pool = softeng751_2013_pool();
  const auto selected = pool.review_top(10, 2013);
  ASSERT_EQ(selected.size(), 10u);

  std::vector<std::string> students;
  for (int i = 0; i < 60; ++i) students.push_back("s" + std::to_string(i));
  auto groups = form_groups(students, 3);
  assign_preferences(groups, selected.size(), 2013);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  const auto allocation = allocate_fifo(groups, selected.size(), 2, arrival);
  EXPECT_TRUE(allocation_respects_capacity(allocation, 2));
  EXPECT_TRUE(allocation_is_fifo_fair(groups, allocation, arrival));

  std::vector<StudentRecord> cohort;
  Rng rng(2013);
  for (const auto& group : groups) {
    const auto log = generate_commit_log(group.id, group.members,
                                         CommitModel{}, 7 + group.id);
    const auto contribution = analyse_contributions(log);
    const double impl = rng.uniform(60, 95);
    for (const auto& member : group.members) {
      StudentRecord s;
      s.id = member;
      s.group = group.id;
      s.raw = {rng.uniform(50, 100), rng.uniform(60, 95), rng.uniform(50, 100),
               impl, rng.uniform(60, 95)};
      s.peer_factor = contribution.balanced ? 1.0 : 0.95;
      cohort.push_back(std::move(s));
    }
  }
  const auto stats = cohort_stats(cohort);
  EXPECT_GT(stats.mean, 50.0);
  EXPECT_LT(stats.mean, 100.0);

  const auto survey = run_survey(softeng751_survey(), cohort.size(), 2013);
  for (const auto& q : survey) {
    EXPECT_GT(q.agree_pct, 80.0);  // a strongly positive evaluation
  }
}

TEST(Integration, DownloadSessionThroughInteractiveTasks) {
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  net::NetParams params;
  params.mean_latency_s = 0.05;
  const auto pages = net::make_page_set(24, params, 5);
  net::SimWebServer server(pages, params, 0.002);
  const auto run = net::download_all(server, 8, rt);
  double expected = 0.0;
  for (const auto& p : pages) expected += p.size_bytes;
  EXPECT_EQ(run.pages, 24u);
  EXPECT_NEAR(run.bytes, expected, 1e-6);
  // The model's prediction and the live run agree on the *shape*: both are
  // far below the serial sum of latencies.
  const auto model = net::simulate_fetch(pages, 8, params);
  EXPECT_LT(model.makespan_s,
            0.6 * net::simulate_fetch(pages, 1, params).makespan_s);
}

TEST(Integration, PipelineFeedsProgressChannelToUi) {
  ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  gui::EventLoop loop;
  rt.set_event_dispatcher(loop.dispatcher());
  std::vector<int> ui_rows;  // EDT-confined
  ptask::ProgressChannel<int> progress(
      rt, [&](std::vector<int> batch) {
        for (int v : batch) ui_rows.push_back(v);
      });
  std::vector<int> inputs;
  for (int i = 0; i < 100; ++i) inputs.push_back(i);
  auto done = ptask::pipeline(
      rt, inputs, [](int x) { return x * 2; },
      [&](int x) {
        progress.publish(x);
        return x;
      });
  const auto outputs = done.get();
  loop.drain();
  loop.post_and_wait([] {});
  EXPECT_EQ(outputs.size(), 100u);
  EXPECT_EQ(ui_rows.size(), 100u);
  // Pipeline order survives both the channel and the EDT.
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(ui_rows[static_cast<std::size_t>(i)], i * 2);
  }
  rt.set_event_dispatcher(nullptr);
}

}  // namespace
}  // namespace parc
