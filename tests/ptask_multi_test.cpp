// Multi-task (TASK(n)) semantics: expansion, result ordering, exceptions,
// cancellation, interactive-pool elasticity.
#include "ptask/ptask.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace parc::ptask {
namespace {

Runtime& test_runtime() {
  static Runtime rt(Runtime::Config{4, {}});
  return rt;
}

TEST(MultiTask, VoidBodiesAllRun) {
  constexpr std::size_t kN = 200;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  auto t = run_multi(test_runtime(), kN,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  t.get();
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(MultiTask, ValueResultsAreIndexOrdered) {
  auto t = run_multi(test_runtime(), 100,
                     [](std::size_t i) { return static_cast<int>(i) * 3; });
  const std::vector<int>& out = t.get();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i * 3);
  }
}

TEST(MultiTask, ZeroCopiesCompletesImmediately) {
  auto tv = run_multi(test_runtime(), 0, [](std::size_t) {});
  EXPECT_TRUE(tv.ready());
  tv.get();
  auto ti = run_multi(test_runtime(), 0, [](std::size_t i) { return i; });
  EXPECT_TRUE(ti.ready());
  EXPECT_TRUE(ti.get().empty());
}

TEST(MultiTask, SingleCopy) {
  auto t = run_multi(test_runtime(), 1, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(t.get().size(), 1u);
  EXPECT_EQ(t.get()[0], 41u);
}

TEST(MultiTask, FirstExceptionWins) {
  auto t = run_multi(test_runtime(), 50, [](std::size_t i) -> int {
    if (i % 7 == 3) throw std::runtime_error("multi boom");
    return static_cast<int>(i);
  });
  EXPECT_THROW(t.get(), std::runtime_error);
  EXPECT_EQ(t.status(), TaskStatus::kFailed);
}

TEST(MultiTask, ExceptionDoesNotStopSiblings) {
  std::atomic<int> ran{0};
  auto t = run_multi(test_runtime(), 64, [&](std::size_t i) {
    ran.fetch_add(1);
    if (i == 0) throw std::runtime_error("one bad copy");
  });
  EXPECT_THROW(t.get(), std::runtime_error);
  EXPECT_EQ(ran.load(), 64);
}

TEST(MultiTask, CancellationSkipsUnstartedCopies) {
  Runtime rt(Runtime::Config{1, {}});
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  auto blocker = run(rt, [&] {
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
  });
  auto t = run_multi(rt, 32, [&](std::size_t) { ran.fetch_add(1); });
  t.cancel();
  release.store(true);
  blocker.get();
  EXPECT_THROW(t.get(), TaskCancelled);
  EXPECT_EQ(ran.load(), 0);  // none started: all were queued behind blocker
}

TEST(MultiTask, ResultsSurviveLargeN) {
  constexpr std::size_t kN = 2000;
  auto t = run_multi(test_runtime(), kN,
                     [](std::size_t i) { return static_cast<long>(i); });
  const auto& out = t.get();
  const long sum = std::accumulate(out.begin(), out.end(), 0L);
  EXPECT_EQ(sum, static_cast<long>(kN * (kN - 1) / 2));
}

TEST(CachedThreadPool, ReusesIdleThreads) {
  CachedThreadPool pool(CachedThreadPool::Config{8, std::chrono::milliseconds(500)});
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> batch{0};
    for (int i = 0; i < 4; ++i) {
      pool.submit([&] {
        count.fetch_add(1);
        batch.fetch_add(1);
      });
    }
    while (batch.load() < 4) std::this_thread::yield();
  }
  EXPECT_EQ(count.load(), 20);
  // 4 concurrent jobs per round, reused across rounds: never needs > 8.
  EXPECT_LE(pool.peak_thread_count(), 8u);
}

TEST(CachedThreadPool, CapQueuesExcessJobs) {
  CachedThreadPool pool(CachedThreadPool::Config{2, std::chrono::milliseconds(500)});
  std::atomic<int> done{0};
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      while (!release.load()) std::this_thread::sleep_for(
          std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < 6; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  EXPECT_LE(pool.thread_count(), 2u);
  release.store(true);
  while (done.load() < 8) std::this_thread::yield();
  EXPECT_EQ(done.load(), 8);
}

TEST(CachedThreadPool, IdleThreadsRetire) {
  CachedThreadPool pool(CachedThreadPool::Config{8, std::chrono::milliseconds(30)});
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  while (!ran.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(pool.thread_count(), 0u);
}

}  // namespace
}  // namespace parc::ptask
