// flow::Channel / flow::Pipeline conformance suite (ISSUE 8, satellite 3).
//
// The load-bearing assertions:
//  - a producer blocked on a full channel *parks* (futex) instead of
//    spinning, and a consumer blocked on an empty one does too;
//  - pool-capable threads never park on a channel — they help_while;
//  - close() drains buffered elements before reporting closed;
//  - conservation: pushed == popped + dropped, exactly, at quiescence —
//    including under concurrent poison and under stage errors;
//  - the compile-time fusion rule (bare .then fuses, stage()/flush() forces
//    a boundary), asserted through Pipeline::stage_count();
//  - a randomized multi-stage pipeline matches the sequential oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "flow/flow.hpp"
#include "sched/completion.hpp"
#include "sched/thread_pool.hpp"
#include "sim/machine.hpp"

namespace parc::flow {
namespace {

using namespace std::chrono_literals;

void expect_conserved(const ChannelStats& s) {
  EXPECT_EQ(s.pushed, s.popped + s.dropped)
      << "pushed=" << s.pushed << " popped=" << s.popped
      << " dropped=" << s.dropped;
}

// ---------------------------------------------------------------------------
// Channel basics.
// ---------------------------------------------------------------------------

TEST(FlowChannel, SpscFifoAndCapacityRounding) {
  Channel<int> ch(ChannelOptions{.capacity = 5, .spsc = true});
  EXPECT_EQ(ch.capacity(), 8u);  // rounded up to a power of two
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_EQ(ch.try_push(v), PushResult::ok);
  }
  int v = 99;
  EXPECT_EQ(ch.try_push(v), PushResult::full);
  EXPECT_EQ(ch.occupancy(), 8u);
  for (int i = 0; i < 8; ++i) {
    int out = -1;
    ASSERT_EQ(ch.try_pop(out), PopResult::ok);
    EXPECT_EQ(out, i);  // strict FIFO
  }
  int out;
  EXPECT_EQ(ch.try_pop(out), PopResult::empty);
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.high_water, 8u);
  expect_conserved(s);
}

TEST(FlowChannel, MpmcSingleStripeIsFifo) {
  Channel<int> ch(ChannelOptions{.capacity = 16, .stripes = 1});
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(ch.push(i));
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, i);
  }
}

TEST(FlowChannel, StripedDeliversEveryElement) {
  Channel<int> ch(ChannelOptions{.capacity = 64, .stripes = 4});
  std::vector<int> out;
  for (int i = 0; i < 40; ++i) EXPECT_TRUE(ch.push(i));
  int v;
  while (ch.try_pop(v) == PopResult::ok) out.push_back(v);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 40u);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(out[i], i);
  expect_conserved(ch.stats());
}

TEST(FlowChannel, CloseDrainsBufferedThenReportsClosed) {
  Channel<int> ch(ChannelOptions{.capacity = 8});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.push(i));
  ch.close();
  int v = 7;
  EXPECT_EQ(ch.try_push(v), PushResult::closed);
  EXPECT_FALSE(ch.push(8));
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_EQ(ch.try_pop(out), PopResult::ok) << "buffered elements drain";
    EXPECT_EQ(out, i);
  }
  int out;
  EXPECT_EQ(ch.try_pop(out), PopResult::closed);
  EXPECT_FALSE(ch.pop(out));
  const ChannelStats s = ch.stats();
  EXPECT_TRUE(s.closed);
  EXPECT_FALSE(s.poisoned);
  EXPECT_EQ(s.dropped, 0u);
  expect_conserved(s);
}

TEST(FlowChannel, PoisonDropsAndCountsBuffered) {
  Channel<int> ch(ChannelOptions{.capacity = 8});
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(ch.push(i));
  ch.poison();
  int out;
  EXPECT_EQ(ch.try_pop(out), PopResult::closed) << "poison discards, not drains";
  const ChannelStats s = ch.stats();
  EXPECT_TRUE(s.poisoned);
  EXPECT_EQ(s.pushed, 6u);
  EXPECT_EQ(s.popped, 0u);
  EXPECT_EQ(s.dropped, 6u);
  expect_conserved(s);
}

TEST(FlowChannel, PushNAndPopNMoveBatches) {
  Channel<int> ch(ChannelOptions{.capacity = 32, .spsc = true});
  std::vector<int> in(20);
  std::iota(in.begin(), in.end(), 0);
  EXPECT_EQ(ch.push_n(std::span<int>(in)), 20u);
  std::vector<int> out;
  std::size_t total = 0;
  while (total < 20) {
    const std::size_t n = ch.pop_n(out, 7);
    ASSERT_GT(n, 0u);
    total += n;
  }
  ASSERT_EQ(out.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(out[i], i);
  ch.close();
  EXPECT_EQ(ch.pop_n(out, 7), 0u) << "0 means closed-and-drained";
}

TEST(FlowChannel, TryPopUntilHonorsDeadline) {
  Channel<int> ch(ChannelOptions{.capacity = 4});
  int out = -1;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(ch.try_pop_until(out, t0 + 20ms), PopResult::empty);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 15ms);
  EXPECT_TRUE(ch.push(5));
  EXPECT_EQ(ch.try_pop_until(out, std::chrono::steady_clock::now() + 20ms),
            PopResult::ok);
  EXPECT_EQ(out, 5);
  ch.close();
  EXPECT_EQ(ch.try_pop_until(out, std::chrono::steady_clock::now() + 20ms),
            PopResult::closed);
}

// ---------------------------------------------------------------------------
// Blocking edges: park, don't spin; pool threads help, never park.
// ---------------------------------------------------------------------------

TEST(FlowChannel, FullChannelProducerParksNotSpins) {
  Channel<int> ch(ChannelOptions{.capacity = 2, .spsc = true});
  constexpr int kItems = 50;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ch.push(i));
  });
  // Let the producer exhaust its spin budget and park on the epoch word.
  std::this_thread::sleep_for(50ms);
  for (int i = 0; i < kItems; ++i) {
    int out = -1;
    ASSERT_TRUE(ch.pop(out));
    EXPECT_EQ(out, i);
  }
  producer.join();
  const ChannelStats s = ch.stats();
  EXPECT_GE(s.producer_blocks, 1u);
  EXPECT_GE(s.producer_parks, 1u) << "a blocked producer must futex-park";
  EXPECT_GT(s.producer_blocked_ns, 0u);
  EXPECT_EQ(s.producer_helps, 0u) << "non-pool thread never helps";
  expect_conserved(s);
}

TEST(FlowChannel, EmptyChannelConsumerParksNotSpins) {
  Channel<int> ch(ChannelOptions{.capacity = 4});
  int got = -1;
  std::thread consumer([&] {
    int out = -1;
    ASSERT_TRUE(ch.pop(out));
    got = out;
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_TRUE(ch.push(17));
  consumer.join();
  EXPECT_EQ(got, 17);
  const ChannelStats s = ch.stats();
  EXPECT_GE(s.consumer_blocks, 1u);
  EXPECT_GE(s.consumer_parks, 1u) << "a blocked consumer must futex-park";
  EXPECT_GT(s.consumer_blocked_ns, 0u);
  expect_conserved(s);
}

TEST(FlowChannel, PoolThreadConsumerHelpsInsteadOfParking) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "flw"});
  Channel<int> ch(ChannelOptions{.capacity = 4});
  std::atomic<int> got{-1};
  sched::Completion done;
  pool.submit([&] {
    int v = -1;
    if (ch.pop(v)) got.store(v);
    done.complete();
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_TRUE(ch.push(7));
  done.wait();
  EXPECT_EQ(got.load(), 7);
  const ChannelStats s = ch.stats();
  EXPECT_GE(s.consumer_helps, 1u) << "pool threads ride help_while";
  EXPECT_EQ(s.consumer_parks, 0u) << "pool threads must never futex-park";
}

TEST(FlowChannel, PoolThreadProducerHelpsInsteadOfParking) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "flw"});
  Channel<int> ch(ChannelOptions{.capacity = 2, .spsc = true});
  EXPECT_TRUE(ch.push(0));
  EXPECT_TRUE(ch.push(1));
  sched::Completion done;
  pool.submit([&] {
    ASSERT_TRUE(ch.push(2));  // full: must block via help_while
    done.complete();
  });
  std::this_thread::sleep_for(20ms);
  int out = -1;
  ASSERT_TRUE(ch.pop(out));
  done.wait();
  const ChannelStats s = ch.stats();
  EXPECT_GE(s.producer_helps, 1u);
  EXPECT_EQ(s.producer_parks, 0u);
}

// ---------------------------------------------------------------------------
// Conservation under concurrency.
// ---------------------------------------------------------------------------

TEST(FlowChannel, ConcurrentCloseConservesEveryElement) {
  Channel<int> ch(ChannelOptions{.capacity = 64, .stripes = 4});
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 4000;
  std::atomic<std::uint64_t> produced{0}, consumed{0};
  std::atomic<int> live_producers{kProducers};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        if (!ch.push(i)) break;
        produced.fetch_add(1);
      }
      // Producer-side close: the last producer out ends the stream.
      if (live_producers.fetch_sub(1) == 1) ch.close();
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (ch.pop(v)) consumed.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(produced.load(), std::uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(consumed.load(), produced.load());
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.pushed, produced.load());
  EXPECT_EQ(s.popped, consumed.load());
  EXPECT_EQ(s.dropped, 0u);
  expect_conserved(s);
}

TEST(FlowChannel, ConcurrentPoisonConservesPushedEqualsPoppedPlusDropped) {
  Channel<int> ch(ChannelOptions{.capacity = 32, .stripes = 2});
  constexpr int kProducers = 3, kConsumers = 2;
  std::atomic<std::uint64_t> produced{0}, consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0;; ++i) {
        if (!ch.push(i)) break;  // poisoned under us
        produced.fetch_add(1);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int v;
      while (ch.pop(v)) consumed.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(10ms);
  ch.poison();
  for (auto& t : threads) t.join();
  (void)ch.discard_all();  // quiescent owner sweeps stragglers
  const ChannelStats s = ch.stats();
  EXPECT_EQ(s.pushed, produced.load());
  EXPECT_EQ(s.popped, consumed.load());
  expect_conserved(s);
}

// ---------------------------------------------------------------------------
// Pipeline: fusion rule, ported ptask scenarios, parallelism, errors.
// ---------------------------------------------------------------------------

TEST(FlowPipeline, SingleStageMapsAllElements) {
  auto p = pipeline<int>(PipelineOptions{.single_producer = true})
               .then([](int x) { return x * 10; })
               .collect();
  for (int i = 1; i <= 5; ++i) EXPECT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  EXPECT_EQ(out, (std::vector<int>{10, 20, 30, 40, 50}));
  EXPECT_EQ(p.stage_count(), 1u);
  expect_conserved(p.source_stats());
}

TEST(FlowPipeline, BareThenChainFusesIntoOneStage) {
  auto p = pipeline<int>()
               .then([](int x) { return x + 1; })
               .then([](int x) { return x * 2; })
               .then([](int x) { return std::to_string(x); })
               .collect();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(p.push(i));
  const std::vector<std::string> out = p.wait();
  EXPECT_EQ(p.stage_count(), 1u)
      << "bare .then callables must fuse: composition, no extra channel";
  EXPECT_EQ(out, (std::vector<std::string>{"2", "4", "6", "8"}));
}

TEST(FlowPipeline, StageWrapperForcesMaterializationBoundary) {
  auto p = pipeline<int>()
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x * 2; }))
               .collect();
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  EXPECT_EQ(p.stage_count(), 2u) << "flow::stage() is a boundary";
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6, 8}));
}

TEST(FlowPipeline, FlushCallableForcesBoundaryAndEmitsTail) {
  struct SumBatches {
    int acc = 0;
    int n = 0;
    std::optional<int> operator()(int x) {
      acc += x;
      if (++n == 3) {
        const int r = acc;
        acc = 0;
        n = 0;
        return r;
      }
      return std::nullopt;
    }
    std::optional<int> flush() {
      if (n == 0) return std::nullopt;
      return acc;
    }
  };
  auto p = pipeline<int>()
               .then([](int x) { return x; })  // open group...
               .then(SumBatches{})             // ...flush state forces a cut
               .collect();
  for (int i = 1; i <= 7; ++i) EXPECT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  EXPECT_EQ(p.stage_count(), 2u)
      << "a flush() callable cannot fuse with its upstream";
  EXPECT_EQ(out, (std::vector<int>{6, 15, 7}));  // (1+2+3), (4+5+6), flush(7)
}

TEST(FlowPipeline, MultiStageChainsAcrossTypes) {
  auto p = pipeline<int>()
               .then(stage([](int x) { return x * x; }))
               .then(stage([](int x) { return std::to_string(x); }))
               .then(stage([](std::string s) { return "#" + s; }))
               .collect();
  for (int i = 1; i <= 4; ++i) EXPECT_TRUE(p.push(i));
  const std::vector<std::string> out = p.wait();
  EXPECT_EQ(out, (std::vector<std::string>{"#1", "#4", "#9", "#16"}));
  EXPECT_EQ(p.stage_count(), 3u);
}

TEST(FlowPipeline, PreservesOrderForManyElements) {
  constexpr int kN = 2000;
  auto p = pipeline<int>(PipelineOptions{.capacity = 16,
                                         .single_producer = true})
               .then(stage([](int x) { return x * 3; }))
               .then(stage([](int x) { return x + 1; }))
               .collect();
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * 3 + 1);
  // capacity 16 with 2000 elements: backpressure must have engaged.
  const ChannelStats s = p.source_stats();
  EXPECT_LE(s.high_water, s.capacity);
  expect_conserved(s);
}

TEST(FlowPipeline, EmptyInputYieldsEmptyOutput) {
  auto p = pipeline<int>().then([](int x) { return x; }).collect();
  EXPECT_TRUE(p.wait().empty());
}

TEST(FlowPipeline, PassThroughPipelineHasZeroStages) {
  auto p = pipeline<int>().collect();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(p.push(i));
  EXPECT_EQ(p.stage_count(), 0u);
  EXPECT_EQ(p.wait(), (std::vector<int>{0, 1, 2}));
}

TEST(FlowPipeline, MoveOnlyPayloadsFlowThrough) {
  auto p = pipeline<std::unique_ptr<int>>()
               .then([](std::unique_ptr<int> v) {
                 *v += 100;
                 return v;
               })
               .then(stage([](std::unique_ptr<int> v) { return *v; }))
               .collect();
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(p.push(std::make_unique<int>(i)));
  }
  EXPECT_EQ(p.wait(), (std::vector<int>{100, 101, 102, 103, 104, 105, 106,
                                        107}));
}

TEST(FlowPipeline, FilterStagesDropElements) {
  auto p = pipeline<int>()
               .then([](int x) -> std::optional<int> {
                 if (x % 2 != 0) return std::nullopt;
                 return x;
               })
               .then([](int x) { return x / 2; })
               .collect();
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(p.push(i));
  EXPECT_EQ(p.wait(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FlowPipeline, StagesOverlapInTime) {
  using Clock = std::chrono::steady_clock;
  std::atomic<Clock::rep> stage1_last_exit{0};
  std::atomic<Clock::rep> stage2_first_entry{0};
  auto p =
      pipeline<int>(PipelineOptions{.capacity = 4})
          .then(stage([&](int x) {
            std::this_thread::sleep_for(1ms);
            stage1_last_exit.store(Clock::now().time_since_epoch().count());
            return x;
          }))
          .then(stage([&](int x) {
            Clock::rep expected = 0;
            stage2_first_entry.compare_exchange_strong(
                expected, Clock::now().time_since_epoch().count());
            std::this_thread::sleep_for(1ms);
            return x;
          }))
          .collect();
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(p.push(i));
  ASSERT_EQ(p.wait().size(), 40u);
  EXPECT_LT(stage2_first_entry.load(), stage1_last_exit.load())
      << "stage 2 must start before stage 1 has finished its stream";
}

TEST(FlowPipeline, DeepStageChain) {
  auto b = pipeline<int>(PipelineOptions{.capacity = 8});
  auto p = std::move(b)
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .then(stage([](int x) { return x + 1; }))
               .collect();
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  EXPECT_EQ(p.stage_count(), 8u);
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i + 8);
}

TEST(FlowPipeline, ParallelStageDeliversEveryElement) {
  constexpr int kN = 1000;
  StageOptions wide;
  wide.parallelism = 4;
  auto p = pipeline<int>()
               .then(stage([](int x) { return x * 2; }, wide))
               .collect();
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(p.push(i));
  std::vector<int> out = p.wait();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  std::sort(out.begin(), out.end());  // replicas do not preserve order
  for (int i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * 2);
  const PipelineStats ps = p.stats();
  ASSERT_EQ(ps.stages.size(), 2u);  // transform + collect sink
  EXPECT_EQ(ps.stages[0].parallelism, 4u);
  expect_conserved(ps.stages[0].input);
}

TEST(FlowPipeline, PoolBatchStagePreservesOrder) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{4, 4, "flw"});
  constexpr int kN = 2000;
  StageOptions batched;
  batched.pool_batch = 64;
  auto p = pipeline<int>(PipelineOptions{.pool = &pool})
               .then(stage([](int x) { return x * x; }, batched))
               .collect();
  for (int i = 0; i < kN; ++i) ASSERT_TRUE(p.push(i));
  const std::vector<int> out = p.wait();
  ASSERT_EQ(out.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i) << "pool_batch fan-out must preserve order";
  }
}

TEST(FlowPipeline, ForEachSinkSeesEveryElement) {
  std::atomic<long> sum{0};
  auto p = pipeline<int>()
               .then([](int x) { return x + 1; })
               .for_each([&](int x) { sum.fetch_add(x); }, 2);
  long expect = 0;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(p.push(i));
    expect += i + 1;
  }
  (void)p.wait();
  EXPECT_EQ(sum.load(), expect);
}

TEST(FlowPipeline, ThrowingStagePoisonsAndWaitRethrows) {
  auto p = pipeline<int>(PipelineOptions{.capacity = 4})
               .then(stage([](int x) {
                 if (x == 42) throw std::runtime_error("boom at 42");
                 return x;
               }))
               .collect();
  // Keep pushing until the poison cascade rejects the feed (or input ends).
  for (int i = 0; i < 10000; ++i) {
    if (!p.push(i)) break;
  }
  EXPECT_THROW((void)p.wait(), std::runtime_error);
  // wait() swept every channel: conservation still exact.
  expect_conserved(p.source_stats());
}

TEST(FlowPipeline, RandomizedMultiStagePipelineMatchesSequentialOracle) {
  std::mt19937 rng(20260808u);
  for (int round = 0; round < 12; ++round) {
    const int n = static_cast<int>(rng() % 600);
    const int mul = 1 + static_cast<int>(rng() % 7);
    const int add = static_cast<int>(rng() % 100);
    const int mod = 2 + static_cast<int>(rng() % 5);
    std::vector<int> input(static_cast<std::size_t>(n));
    for (auto& x : input) x = static_cast<int>(rng() % 10000);

    // Sequential oracle: map, filter, map — same lambdas, same order.
    std::vector<int> oracle;
    for (int x : input) {
      const int a = x * mul;
      if (a % mod == 0) continue;
      oracle.push_back(a + add);
    }

    auto p = pipeline<int>(PipelineOptions{
                 .capacity = 8, .single_producer = true})
                 .then([mul](int x) { return x * mul; })
                 .then(stage([mod](int x) -> std::optional<int> {
                   if (x % mod == 0) return std::nullopt;
                   return x;
                 }))
                 .then([add](int x) { return x + add; })
                 .collect();
    for (int x : input) ASSERT_TRUE(p.push(x));
    const std::vector<int> out = p.wait();
    ASSERT_EQ(out, oracle) << "round " << round << " n=" << n;
    expect_conserved(p.source_stats());
  }
}

// ---------------------------------------------------------------------------
// Tracing and replay.
// ---------------------------------------------------------------------------

TEST(FlowTrace, ChannelEventsBalanceAndReplayBuildsDag) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  obs::TraceSession session;
  {
    auto p = pipeline<int>(PipelineOptions{.capacity = 8,
                                           .single_producer = true})
                 .then(stage([](int x) { return x * 2; }))
                 .then(stage([](int x) { return x + 1; }))
                 .collect();
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(p.push(i));
    ASSERT_EQ(p.wait().size(), 64u);
  }
  const obs::TraceDump dump = session.end();
  ASSERT_EQ(dump.total_dropped(), 0u);
  const std::size_t pushes = dump.count_kind(obs::EventKind::kChanPush);
  const std::size_t pops = dump.count_kind(obs::EventKind::kChanPop);
  EXPECT_EQ(pushes, pops) << "fully-consumed run: every push has its pop";
  EXPECT_EQ(pushes, 64u * 3u);  // source + two inter-stage edges
  EXPECT_GE(dump.count_kind(obs::EventKind::kChanClosed), 3u);

  const FlowReplay replay = build_flow_dag(dump);
  EXPECT_EQ(replay.pushes, pushes);
  EXPECT_EQ(replay.pops, pops);
  EXPECT_EQ(replay.channels, 3u);
  EXPECT_GT(replay.source_units, 0u);
  EXPECT_GT(replay.stage_units, 0u);
  EXPECT_GT(replay.sink_units, 0u);

  const sim::SimOutcome outcome = sim::simulate(replay.dag, sim::parc_8core());
  EXPECT_GT(outcome.makespan_s, 0.0);
  EXPECT_GT(outcome.speedup, 0.0);
}

}  // namespace
}  // namespace parc::flow
