// Worksharing loops: full coverage / exactly-once for every schedule,
// chunking edge cases, nowait, parameterized schedule × thread sweeps.
#include "pj/pj.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

namespace parc::pj {
namespace {

TEST(ChunkSource, StaticCoversRangeOnce) {
  ChunkSource src(0, 100, 4, {Schedule::kStatic, 0});
  std::vector<int> hits(100, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    std::size_t step = 0;
    while (auto c = src.next(t, step)) {
      for (auto i = c->begin; i < c->end; ++i) ++hits[static_cast<std::size_t>(i)];
    }
  }
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ChunkSource, StaticDefaultChunkIsBlockPartition) {
  ChunkSource src(0, 100, 4, {Schedule::kStatic, 0});
  EXPECT_EQ(src.chunk_size(), 25);
  // Thread 0 gets exactly [0, 25).
  std::size_t step = 0;
  auto c = src.next(0, step);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->begin, 0);
  EXPECT_EQ(c->end, 25);
  EXPECT_FALSE(src.next(0, step).has_value());
}

TEST(ChunkSource, StaticRoundRobinWithExplicitChunk) {
  ChunkSource src(0, 100, 4, {Schedule::kStatic, 10});
  // Thread 1's chunks: [10,20), [50,60), [90,100).
  std::size_t step = 0;
  auto c1 = src.next(1, step);
  auto c2 = src.next(1, step);
  auto c3 = src.next(1, step);
  auto c4 = src.next(1, step);
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(c1->begin, 10);
  EXPECT_EQ(c2->begin, 50);
  EXPECT_EQ(c3->begin, 90);
  EXPECT_EQ(c3->end, 100);
  EXPECT_FALSE(c4.has_value());
}

TEST(ChunkSource, DynamicCoversRangeOnce) {
  ChunkSource src(0, 1000, 4, {Schedule::kDynamic, 7});
  std::vector<int> hits(1000, 0);
  for (std::size_t t = 0; t < 4; ++t) {
    std::size_t step = 0;
    while (auto c = src.next(t, step)) {
      for (auto i = c->begin; i < c->end; ++i) ++hits[static_cast<std::size_t>(i)];
    }
  }
  for (int h : hits) ASSERT_EQ(h, 1);
}

TEST(ChunkSource, GuidedChunksDecreaseAndCover) {
  ChunkSource src(0, 10000, 4, {Schedule::kGuided, 1});
  std::int64_t covered = 0;
  std::int64_t prev_size = std::numeric_limits<std::int64_t>::max();
  bool monotonic_from_start = true;
  std::size_t step = 0;
  while (auto c = src.next(0, step)) {
    const std::int64_t size = c->end - c->begin;
    if (size > prev_size) monotonic_from_start = false;
    prev_size = size;
    covered += size;
  }
  EXPECT_EQ(covered, 10000);
  EXPECT_TRUE(monotonic_from_start);  // single consumer: strictly shrinking
}

TEST(ChunkSource, EmptyRange) {
  ChunkSource src(5, 5, 4, {Schedule::kStatic, 0});
  std::size_t step = 0;
  EXPECT_FALSE(src.next(0, step).has_value());
}

TEST(ChunkSource, NegativeBounds) {
  ChunkSource src(-50, 50, 3, {Schedule::kDynamic, 9});
  std::vector<int> hits(100, 0);
  for (std::size_t t = 0; t < 3; ++t) {
    std::size_t step = 0;
    while (auto c = src.next(t, step)) {
      for (auto i = c->begin; i < c->end; ++i) {
        ++hits[static_cast<std::size_t>(i + 50)];
      }
    }
  }
  for (int h : hits) ASSERT_EQ(h, 1);
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every schedule × thread count × chunk covers the
// iteration space exactly once (the fundamental worksharing invariant).
// ---------------------------------------------------------------------------

using ForParam = std::tuple<Schedule, std::size_t, std::int64_t>;

class ParallelForSweep : public ::testing::TestWithParam<ForParam> {};

TEST_P(ParallelForSweep, EveryIterationExactlyOnce) {
  const auto [schedule, threads, chunk] = GetParam();
  constexpr std::int64_t kN = 1777;  // deliberately not a multiple of anything
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  parallel_for(
      threads, 0, kN,
      [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      {schedule, chunk});
  for (std::int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchedulesThreadsChunks, ParallelForSweep,
    ::testing::Combine(::testing::Values(Schedule::kStatic, Schedule::kDynamic,
                                         Schedule::kGuided, Schedule::kAuto),
                       ::testing::Values<std::size_t>(1, 2, 4, 7),
                       ::testing::Values<std::int64_t>(0, 1, 13, 1000)),
    [](const ::testing::TestParamInfo<ForParam>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

TEST(ParallelFor, EmptyRangeIsNoop) {
  std::atomic<int> count{0};
  parallel_for(4, 10, 10, [&](std::int64_t) { count.fetch_add(1); });
  parallel_for(4, 10, 5, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ParallelFor, SumMatchesSequential) {
  constexpr std::int64_t kN = 100000;
  std::vector<std::int64_t> data(kN);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<std::int64_t> sum{0};
  parallel_for(4, 0, kN, [&](std::int64_t i) {
    sum.fetch_add(data[static_cast<std::size_t>(i)],
                  std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ForLoop, TwoLoopsInOneRegion) {
  constexpr std::int64_t kN = 500;
  std::vector<std::atomic<int>> first(kN), second(kN);
  for (auto& x : first) x.store(0);
  for (auto& x : second) x.store(0);
  region(4, [&](Team& team) {
    for_loop(team, 0, kN, [&](std::int64_t i) {
      first[static_cast<std::size_t>(i)].fetch_add(1);
    });
    // Implicit barrier between the loops: second sees first complete.
    for_loop(team, 0, kN, [&](std::int64_t i) {
      ASSERT_EQ(first[static_cast<std::size_t>(i)].load(), 1);
      second[static_cast<std::size_t>(i)].fetch_add(1);
    }, {Schedule::kDynamic, 16});
  });
  for (auto& x : second) ASSERT_EQ(x.load(), 1);
}

TEST(ParallelFor2D, CoversRectangleExactlyOnce) {
  constexpr std::int64_t kR = 37, kC = 53;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(kR * kC));
  for (auto& h : hits) h.store(0);
  parallel_for_2d(
      4, 0, kR, 0, kC,
      [&](std::int64_t r, std::int64_t c) {
        hits[static_cast<std::size_t>(r * kC + c)].fetch_add(1);
      },
      {Schedule::kDynamic, 16});
  for (auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelFor2D, OffsetBoundsMapCorrectly) {
  std::atomic<std::int64_t> sum{0};
  parallel_for_2d(3, 2, 5, 10, 13, [&](std::int64_t r, std::int64_t c) {
    ASSERT_GE(r, 2);
    ASSERT_LT(r, 5);
    ASSERT_GE(c, 10);
    ASSERT_LT(c, 13);
    sum.fetch_add(r * 100 + c);
  });
  // rows {2,3,4} x cols {10,11,12}: sum = 3*(2+3+4)*100/3... compute directly.
  std::int64_t expected = 0;
  for (std::int64_t r = 2; r < 5; ++r) {
    for (std::int64_t c = 10; c < 13; ++c) expected += r * 100 + c;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ParallelFor2D, EmptyDimensionsNoop) {
  std::atomic<int> count{0};
  parallel_for_2d(4, 0, 0, 0, 10, [&](std::int64_t, std::int64_t) {
    count.fetch_add(1);
  });
  parallel_for_2d(4, 0, 10, 5, 5, [&](std::int64_t, std::int64_t) {
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 0);
}

TEST(ForLoop, DynamicScheduleSharesIterationsAcrossThreads) {
  // Under dynamic chunk-1 scheduling with blocking work per iteration, more
  // than one thread must end up owning iterations: while one thread sleeps
  // inside an iteration, another grabs the next chunk. (Static would also
  // involve all threads, but here we additionally record that dynamic's
  // assignment is demand-driven: every iteration gets exactly one owner.)
  constexpr std::int64_t kN = 300;
  std::vector<std::atomic<int>> owner(kN);
  for (auto& o : owner) o.store(-1);
  region(4, [&](Team& team) {
    for_loop(
        team, 0, kN,
        [&](std::int64_t i) {
          ASSERT_EQ(owner[static_cast<std::size_t>(i)].exchange(
                        team.thread_num()),
                    -1);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        },
        {Schedule::kDynamic, 1});
  });
  std::set<int> owners;
  for (auto& o : owner) {
    ASSERT_GE(o.load(), 0);
    owners.insert(o.load());
  }
  EXPECT_GE(owners.size(), 2u);
}

}  // namespace
}  // namespace parc::pj
