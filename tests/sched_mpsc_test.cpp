// MPSC injection queue: FIFO order, multi-producer stress (every node
// delivered exactly once), and the pool-level behaviours built on it —
// lock-free external submission, bulk submission waking parked workers.
#include "sched/mpsc_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sched/thread_pool.hpp"

namespace parc::sched {
namespace {

struct Node {
  std::atomic<Node*> next{nullptr};
  int producer = -1;
  int seq = -1;
};

TEST(MpscIntrusiveQueue, FifoSingleThread) {
  MpscIntrusiveQueue<Node> q;
  EXPECT_TRUE(q.empty_approx());
  EXPECT_EQ(q.try_pop(), nullptr);
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].seq = i;
    q.push(&nodes[i]);
  }
  EXPECT_EQ(q.size_approx(), 5u);
  for (int i = 0; i < 5; ++i) {
    Node* n = q.try_pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, i);
  }
  EXPECT_EQ(q.try_pop(), nullptr);
  EXPECT_TRUE(q.empty_approx());
}

TEST(MpscIntrusiveQueue, InterleavedPushPopKeepsPerProducerOrder) {
  MpscIntrusiveQueue<Node> q;
  Node nodes[6];
  for (int i = 0; i < 3; ++i) {
    nodes[i].seq = i;
    q.push(&nodes[i]);
  }
  EXPECT_EQ(q.try_pop()->seq, 0);
  for (int i = 3; i < 6; ++i) {
    nodes[i].seq = i;
    q.push(&nodes[i]);
  }
  for (int want = 1; want < 6; ++want) {
    Node* n = q.try_pop();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, want);
  }
}

TEST(MpscIntrusiveQueue, MultiProducerStressDeliversEachNodeOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  MpscIntrusiveQueue<Node> q;
  // Node is non-copyable (atomic member): size each inner vector by move
  // assignment rather than the copy-fill constructor.
  std::vector<std::vector<Node>> nodes(kProducers);
  for (auto& v : nodes) v = std::vector<Node>(kPerProducer);
  std::atomic<bool> go{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        nodes[p][i].producer = p;
        nodes[p][i].seq = i;
        q.push(&nodes[p][i]);
      }
    });
  }

  std::vector<std::vector<int>> seen(kProducers,
                                     std::vector<int>(kPerProducer, 0));
  std::vector<int> last_seq(kProducers, -1);
  go.store(true, std::memory_order_release);
  int popped = 0;
  while (popped < kProducers * kPerProducer) {
    Node* n = q.try_pop();
    if (n == nullptr) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_GE(n->producer, 0);
    ++seen[n->producer][n->seq];
    // FIFO per producer: sequence numbers from one producer arrive in order.
    EXPECT_GT(n->seq, last_seq[n->producer]);
    last_seq[n->producer] = n->seq;
    ++popped;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.try_pop(), nullptr);
  for (int p = 0; p < kProducers; ++p) {
    for (int i = 0; i < kPerProducer; ++i) {
      EXPECT_EQ(seen[p][i], 1) << "producer " << p << " node " << i;
    }
  }
}

TEST(WorkStealingPool, MultiProducerInjectionExecutesEachJobOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  // Declared before the pool: the pool's destructor joins the workers, so
  // the slots outlive every job (the jobs' relaxed increments carry no
  // happens-before into this thread's teardown on their own).
  std::vector<std::atomic<int>> runs(kProducers * kPerProducer);
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  for (auto& r : runs) r.store(0);
  std::atomic<bool> go{false};

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        const int slot = p * kPerProducer + i;
        pool.submit([&runs, slot] {
          runs[slot].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : producers) t.join();
  pool.help_while([&] {
    for (const auto& r : runs) {
      if (r.load(std::memory_order_relaxed) == 0) return true;
    }
    return false;
  });
  for (const auto& r : runs) {
    EXPECT_EQ(r.load(std::memory_order_relaxed), 1);
  }
}

TEST(WorkStealingPool, SubmitBulkRunsAllJobsAndWakesParkedWorkers) {
  WorkStealingPool pool(WorkStealingPool::Config{3, 2, "t"});
  for (int round = 0; round < 10; ++round) {
    // Let every worker park, then wake the pool with one batched submit.
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    constexpr int kJobs = 64;
    std::atomic<int> done{0};
    // Release so the final count observed by help_while happens-after every
    // increment — `done` lives on this stack frame and is reused next round.
    auto make = [&done](int) {
      return [&done] { done.fetch_add(1, std::memory_order_release); };
    };
    using Job = decltype(make(0));
    std::vector<Job> jobs;
    jobs.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) jobs.push_back(make(i));
    pool.submit_bulk(std::span<Job>(jobs));
    pool.help_while([&] { return done.load() < kJobs; });
    EXPECT_EQ(done.load(), kJobs);
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.parked, 0u);  // the rounds really did park workers
}

TEST(WorkStealingPool, SubmitNGeneratesEveryIndexOnce) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  constexpr std::size_t kJobs = 500;
  std::vector<std::atomic<int>> runs(kJobs);
  for (auto& r : runs) r.store(0);
  std::atomic<std::size_t> done{0};
  pool.submit_n(kJobs, [&](std::size_t i) {
    return [&runs, &done, i] {
      runs[i].fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_acq_rel);
    };
  });
  pool.help_while([&] { return done.load() < kJobs; });
  for (const auto& r : runs) {
    EXPECT_EQ(r.load(std::memory_order_relaxed), 1);
  }
}

TEST(WorkStealingPool, BulkFromInsideWorkerUsesLocalDeque) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  constexpr std::size_t kJobs = 200;
  std::atomic<std::size_t> done{0};
  std::atomic<bool> spawned{false};
  pool.submit([&] {
    pool.submit_n(kJobs, [&](std::size_t) {
      return [&done] { done.fetch_add(1, std::memory_order_relaxed); };
    });
    spawned.store(true, std::memory_order_release);
  });
  pool.help_while([&] { return !spawned.load() || done.load() < kJobs; });
  EXPECT_EQ(done.load(), kJobs);
}

// Keeps the reader loop below from being optimised away.
volatile std::uint64_t g_stats_sink = 0;

// Satellite regression: stats()/pending_approx() are read concurrently with
// worker counter updates; with relaxed atomics this must be TSan-clean.
TEST(WorkStealingPool, StatsReadableWhileWorkersRun) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  std::atomic<int> done{0};
  constexpr int kJobs = 2000;
  std::thread reader([&] {
    std::uint64_t sink = 0;
    while (done.load(std::memory_order_relaxed) < kJobs) {
      const auto s = pool.stats();
      sink += s.executed + s.stolen + s.parked + pool.pending_approx();
    }
    g_stats_sink = sink;
  });
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.help_while([&] { return done.load() < kJobs; });
  reader.join();
  EXPECT_EQ(done.load(), kJobs);
}

}  // namespace
}  // namespace parc::sched
