// The serving stack: workload determinism, admission decisions, the
// cache/coalesce/batch pipeline's exact conservation accounting, trace
// vocabulary, and the trace→DAG replay builder.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "obs/trace.hpp"
#include "serve/replay.hpp"
#include "serve/workload.hpp"
#include "sim/machine.hpp"

namespace parc::serve {
namespace {

TEST(LoadGenerator, DeterministicStream) {
  WorkloadConfig w;
  w.requests = 500;
  w.seed = 99;
  const auto a = generate(w);
  const auto b = generate(w);
  ASSERT_EQ(a.size(), 500u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i + 1);
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
  }
}

TEST(LoadGenerator, OpenLoopArrivalsMatchTheRate) {
  WorkloadConfig w;
  w.requests = 20000;
  w.arrival_rate = 10000.0;
  w.seed = 3;
  const auto reqs = generate(w);
  double prev = 0.0;
  for (const auto& r : reqs) {
    ASSERT_GT(r.arrival_s, prev);  // strictly increasing schedule
    prev = r.arrival_s;
  }
  // 20k exponential gaps at 10k/s: total ≈ 2 s within a few percent.
  EXPECT_NEAR(reqs.back().arrival_s, 2.0, 2.0 * 0.05);
}

TEST(LoadGenerator, ClosedLoopHasNoSchedule) {
  WorkloadConfig w;
  w.requests = 10;
  w.arrival_rate = 0.0;
  for (const auto& r : generate(w)) EXPECT_DOUBLE_EQ(r.arrival_s, 0.0);
}

TEST(LoadGenerator, MixAndSkewShapeTheStream) {
  WorkloadConfig w;
  w.requests = 30000;
  w.keyspace = 1000;
  w.key_skew = 1.2;
  w.weight_img = 0.6;
  w.weight_text = 0.3;
  w.weight_net = 0.1;
  w.seed = 11;
  std::size_t counts[kRequestKinds] = {0, 0, 0};
  std::size_t hot = 0;
  for (const auto& r : generate(w)) {
    ++counts[static_cast<std::size_t>(r.kind)];
    ASSERT_LT(r.key, w.keyspace);
    hot += r.key < 10;
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 30000.0, 0.6, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 30000.0, 0.3, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[2]) / 30000.0, 0.1, 0.03);
  // Zipf: the 10 hottest of 1000 keys draw far more than 1% of requests.
  EXPECT_GT(hot, 30000u / 20);
}

TEST(CompositeKey, KindsNeverCollide) {
  EXPECT_NE(composite_key(RequestKind::img, 7),
            composite_key(RequestKind::text, 7));
  EXPECT_NE(composite_key(RequestKind::text, 7),
            composite_key(RequestKind::net, 7));
  EXPECT_EQ(composite_key(RequestKind::img, 7),
            composite_key(RequestKind::img, 7));
}

TEST(Admission, TokenBucketShedsAtTheConfiguredRate) {
  // 100/s, burst 10: offering 200 requests in the first second admits the
  // burst plus the refill, sheds the rest — exactly.
  AdmissionController adm(AdmissionConfig{100.0, 10.0, 0});
  std::uint64_t admitted = 0;
  for (int i = 0; i < 200; ++i) {
    const double t = static_cast<double>(i) / 200.0;
    if (adm.admit(t, Priority::high, 0.0, 0) ==
        AdmissionController::Decision::admit) {
      ++admitted;
    }
  }
  // 10 burst tokens + ~99.5 refilled over 0.995 s.
  EXPECT_GE(admitted, 105u);
  EXPECT_LE(admitted, 113u);
  const auto& s = adm.stats();
  EXPECT_EQ(s.offered, 200u);
  EXPECT_EQ(s.admitted + s.shed_rate + s.shed_queue, s.offered);
  EXPECT_EQ(s.shed_queue, 0u);
}

TEST(Admission, QueueBoundSheds) {
  AdmissionController adm(AdmissionConfig{0.0, 256.0, 4});
  EXPECT_EQ(adm.admit(0.0, Priority::high, 0.0, 3),
            AdmissionController::Decision::admit);
  EXPECT_EQ(adm.admit(0.0, Priority::high, 0.0, 4),
            AdmissionController::Decision::shed_queue);
  EXPECT_EQ(adm.admit(0.0, Priority::high, 0.0, 100),
            AdmissionController::Decision::shed_queue);
  EXPECT_EQ(adm.stats().shed_queue, 2u);
}

TEST(Backend, DeterministicPerKey) {
  BackendConfig cfg;
  Backend a(cfg);
  Backend b(cfg);
  for (std::uint64_t key : {0ull, 7ull, 12345ull}) {
    for (RequestKind kind : {RequestKind::img, RequestKind::text}) {
      const BackendResult ra = a.execute(kind, key);
      const BackendResult rb = b.execute(kind, key);
      EXPECT_TRUE(ra.ok());
      EXPECT_TRUE(rb.ok());
      EXPECT_EQ(ra.value, rb.value);
    }
  }
}

ServerConfig small_server() {
  ServerConfig cfg;
  cfg.pool.num_threads = 2;
  cfg.pool.shards = 2;
  cfg.cache_capacity = 256;
  cfg.cache_stripes = 4;
  cfg.backend.img_source_dim = 12;
  cfg.backend.img_thumb_dim = 4;
  cfg.backend.text_chunks = 16;
  cfg.backend.text_chunk_bytes = 512;
  cfg.admission = AdmissionConfig{0.0, 256.0, 0};
  return cfg;
}

TEST(Server, ConservationHoldsAfterDrain) {
  ServerConfig cfg = small_server();
  cfg.cache_capacity = 2048;  // all composite keys fit every stripe: no
                              // evictions, so each key executes at most
                              // once (hit vs coalesce per duplicate
                              // depends on worker timing; their sum
                              // does not)
  Server server(cfg);
  WorkloadConfig w;
  w.requests = 20000;
  w.arrival_rate = 0.0;
  w.keyspace = 64;  // × 3 kinds = 192 distinct composite keys
  w.seed = 5;
  LoadGenerator gen(w);
  server.start();
  for (std::size_t i = 0; i < w.requests; ++i) {
    Request r = gen.next();
    r.arrival_s = server.now_s();
    (void)server.offer(r);
  }
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.offered, 20000u);
  EXPECT_EQ(s.offered,
            s.admitted + s.shed_rate + s.shed_queue + s.shed_deadline);
  EXPECT_EQ(s.admitted, s.completed + s.failed);
  EXPECT_EQ(s.admitted,
            s.hits_inline + s.negative_hits + s.coalesced + s.executed);
  EXPECT_EQ(s.cache.hits, s.hits_inline);
  EXPECT_EQ(s.cache.misses, s.executed + s.coalesced);
  EXPECT_EQ(s.cache.evictions, 0u);
  // ~One backend run per distinct key. A miss probed just before a
  // worker's cache.put lands re-executes that key once (rare, benign,
  // counted as executed) — hence slack above 192, but nowhere near the
  // 20000 offers.
  EXPECT_LT(s.executed, 192u + 64u);
  EXPECT_GT(s.hits_inline + s.coalesced, s.executed);
  const auto h = server.latency_histogram();
  EXPECT_EQ(h.count(), s.completed);
}

TEST(Server, SecondRequestForAKeyHitsTheCache) {
  Server server(small_server());
  server.start();
  Request r;
  r.id = 1;
  r.kind = RequestKind::text;
  r.key = 42;
  EXPECT_EQ(server.offer(r), Server::Outcome::dispatched);
  server.drain();
  r.id = 2;
  EXPECT_EQ(server.offer(r), Server::Outcome::hit);
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.hits_inline, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Server, DuplicateInFlightKeysCoalesce) {
  ServerConfig cfg = small_server();
  cfg.batch_max = 64;  // keep the batch unsealed: the leader cannot finish
  Server server(cfg);
  server.start();
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Request r;
    r.id = i;
    r.kind = RequestKind::img;
    r.key = 9;
    const auto outcome = server.offer(r);
    if (i == 1) {
      EXPECT_EQ(outcome, Server::Outcome::dispatched);
    } else {
      EXPECT_EQ(outcome, Server::Outcome::coalesced);
    }
  }
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.executed, 1u);  // one backend run served all ten
  EXPECT_EQ(s.coalesced, 9u);
  EXPECT_EQ(s.completed, 10u);
}

TEST(Server, QueueBoundShedsWhileBatchesAreUnsealed) {
  ServerConfig cfg = small_server();
  cfg.batch_max = 64;
  cfg.admission = AdmissionConfig{0.0, 256.0, 2};
  Server server(cfg);
  server.start();
  Request r;
  r.kind = RequestKind::img;
  r.priority = Priority::high;  // full pending cap (the ladder trims lower
                                // classes to a fraction of max_pending)
  r.id = 1;
  r.key = 1;
  EXPECT_EQ(server.offer(r), Server::Outcome::dispatched);
  r.id = 2;
  r.key = 2;
  EXPECT_EQ(server.offer(r), Server::Outcome::dispatched);
  r.id = 3;
  r.key = 3;
  EXPECT_EQ(server.offer(r), Server::Outcome::shed);  // in_flight == 2
  server.drain();
  const auto s = server.stats();
  EXPECT_EQ(s.shed_queue, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(Server, ShardRoutingIsStableAndInRange) {
  Server server(small_server());
  const std::size_t shards = server.pool().shard_count();
  EXPECT_EQ(shards, 2u);
  std::set<std::size_t> used;
  for (std::uint64_t k = 0; k < 64; ++k) {
    const auto ckey = composite_key(RequestKind::net, k);
    const std::size_t s = server.shard_of(ckey);
    EXPECT_LT(s, shards);
    EXPECT_EQ(s, server.shard_of(ckey));
    used.insert(s);
  }
  EXPECT_EQ(used.size(), shards);  // 64 keys cover both shards
}

#if PARC_OBS_TRACE
TEST(Server, TraceEventsBalanceTheLedger) {
  ServerConfig cfg = small_server();
  Server server(cfg);
  WorkloadConfig w;
  w.requests = 2000;
  w.arrival_rate = 0.0;
  w.keyspace = 64;
  w.seed = 17;
  LoadGenerator gen(w);
  obs::TraceSession session(obs::TraceConfig{std::size_t{1} << 16});
  server.start();
  for (std::size_t i = 0; i < w.requests; ++i) {
    Request r = gen.next();
    r.arrival_s = server.now_s();
    (void)server.offer(r);
  }
  server.drain();
  const auto dump = session.end();
  EXPECT_EQ(dump.total_dropped(), 0u);
  const auto s = server.stats();
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeArrive), s.offered);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeDone),
            s.completed + s.failed);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeHit),
            s.hits_inline + s.negative_hits);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeCoalesce), s.coalesced);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeExecBegin), s.executed);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeExecEnd), s.executed);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeBatch), s.batches);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kServeShed), 0u);
  // Every dispatched leader routes exactly once.
  EXPECT_EQ(dump.count_kind(obs::EventKind::kReplicaPick), s.executed);
  EXPECT_EQ(s.router.routed, s.executed);
}
#endif

TEST(Replay, BuildsChainPlusExecTasks) {
  // Hand-built trace: 3 arrivals 10 µs apart; requests 1 and 3 executed
  // for 50 µs each, request 2 was (say) a cache hit.
  obs::ThreadTrack track;
  track.tid = 0;
  track.name = "ingress";
  auto ev = [](obs::EventKind k, std::uint64_t t, std::uint64_t id,
               std::uint64_t arg = 0) {
    obs::Event e;
    e.kind = k;
    e.t_ns = t;
    e.id = id;
    e.arg = arg;
    return e;
  };
  track.events = {
      ev(obs::EventKind::kServeArrive, 10000, 1),
      ev(obs::EventKind::kServeArrive, 20000, 2),
      ev(obs::EventKind::kServeArrive, 30000, 3),
      ev(obs::EventKind::kServeExecBegin, 31000, 1),
      ev(obs::EventKind::kServeExecEnd, 81000, 1),
      ev(obs::EventKind::kServeExecBegin, 90000, 3),
      ev(obs::EventKind::kServeExecEnd, 140000, 3),
  };
  obs::TraceDump dump;
  dump.tracks.push_back(track);

  const ReplayDag replay = build_serve_dag(dump);
  EXPECT_EQ(replay.arrivals, 3u);
  EXPECT_EQ(replay.executed, 2u);
  EXPECT_EQ(replay.dag.size(), 5u);  // 3 chain + 2 exec
  EXPECT_NEAR(replay.ingress_span_s, 30e-6, 1e-12);
  EXPECT_NEAR(replay.exec_work_s, 100e-6, 1e-12);
  EXPECT_NEAR(replay.dag.total_work(), 130e-6, 1e-12);
  // Critical path: full chain + one exec = 30 + 50 µs.
  EXPECT_NEAR(replay.dag.critical_path(), 80e-6, 1e-12);
}

TEST(Replay, AttributesLoadToReplicas) {
  // Two executed requests routed to replicas 1 and 3; request 1 failed on
  // its replica. The unreplicated-trace path (no kReplicaPick) is covered
  // by BuildsChainPlusExecTasks above (replicas stays empty).
  obs::ThreadTrack track;
  auto ev = [](obs::EventKind k, std::uint64_t t, std::uint64_t id,
               std::uint64_t arg = 0) {
    obs::Event e;
    e.kind = k;
    e.t_ns = t;
    e.id = id;
    e.arg = arg;
    return e;
  };
  track.events = {
      ev(obs::EventKind::kServeArrive, 10000, 1),
      ev(obs::EventKind::kServeArrive, 20000, 2),
      ev(obs::EventKind::kReplicaPick, 10100, 1, 1),
      ev(obs::EventKind::kReplicaPick, 20100, 2, 3),
      ev(obs::EventKind::kReplicaFail, 60000, 1, 1),
      ev(obs::EventKind::kServeExecBegin, 11000, 1),
      ev(obs::EventKind::kServeExecEnd, 51000, 1),
      ev(obs::EventKind::kServeExecBegin, 21000, 2),
      ev(obs::EventKind::kServeExecEnd, 41000, 2),
  };
  obs::TraceDump dump;
  dump.tracks.push_back(track);

  const ReplayDag replay = build_serve_dag(dump);
  ASSERT_EQ(replay.requests.size(), 2u);
  EXPECT_EQ(replay.requests[0].replica, 1u);
  EXPECT_TRUE(replay.requests[0].failed);
  EXPECT_EQ(replay.requests[1].replica, 3u);
  EXPECT_FALSE(replay.requests[1].failed);
  ASSERT_EQ(replay.replicas.size(), 4u);
  EXPECT_EQ(replay.replicas[1].routed, 1u);
  EXPECT_EQ(replay.replicas[1].failed, 1u);
  EXPECT_NEAR(replay.replicas[1].exec_work_s, 40e-6, 1e-12);
  EXPECT_EQ(replay.replicas[3].routed, 1u);
  EXPECT_EQ(replay.replicas[3].failed, 0u);
  EXPECT_NEAR(replay.replicas[3].exec_work_s, 20e-6, 1e-12);
  EXPECT_EQ(replay.replicas[0].routed, 0u);
}

TEST(Replay, SimulatedCoresShowTheKnee) {
  // Synthetic serving trace: 400 arrivals every 2 µs, each executing for
  // 20 µs → parallelism ≈ 11. P=4 must be near-linear, P=64 saturated.
  obs::ThreadTrack track;
  std::uint64_t t = 0;
  for (std::uint64_t id = 1; id <= 400; ++id) {
    t += 2000;
    obs::Event a;
    a.kind = obs::EventKind::kServeArrive;
    a.t_ns = t;
    a.id = id;
    track.events.push_back(a);
    obs::Event b = a;
    b.kind = obs::EventKind::kServeExecBegin;
    b.t_ns = t + 100;
    track.events.push_back(b);
    obs::Event e = b;
    e.kind = obs::EventKind::kServeExecEnd;
    e.t_ns = b.t_ns + 20000;
    track.events.push_back(e);
  }
  obs::TraceDump dump;
  dump.tracks.push_back(track);
  const ReplayDag replay = build_serve_dag(dump);
  EXPECT_EQ(replay.executed, 400u);

  sim::SweepOptions sweep_opts;
  sweep_opts.cores = {1, 4, 64, 256};
  const sim::SweepTable table = sim::sweep(replay.dag, sweep_opts);
  const double sp1 = table.speedup_at(1);
  const double sp4 = table.speedup_at(4);
  const double sp64 = table.speedup_at(64);
  const double sp256 = table.speedup_at(256);
  EXPECT_NEAR(sp1, 1.0, 1e-9);
  EXPECT_GT(sp4, 3.0);
  EXPECT_GT(sp64, sp4);
  EXPECT_LT(sp256 / sp64, 1.05);  // deterministic gaps: knee is sharp
  EXPECT_LT(sp256, 12.5);         // bounded by the DAG's parallelism
}

}  // namespace
}  // namespace parc::serve
