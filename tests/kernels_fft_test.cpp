// FFT: known transforms, inverse round-trip property, seq/parallel
// agreement across schedules and thread counts.
#include "kernels/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace parc::kernels {
namespace {

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  return v;
}

double max_diff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

TEST(Fft, IsPowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> v(3);
  EXPECT_DEATH(fft_seq(v), "power of two");
}

TEST(Fft, DcSignalTransformsToImpulse) {
  std::vector<Complex> v(8, Complex(1.0, 0.0));
  fft_seq(v);
  EXPECT_NEAR(v[0].real(), 8.0, 1e-12);
  for (std::size_t k = 1; k < 8; ++k) {
    EXPECT_NEAR(std::abs(v[k]), 0.0, 1e-12) << k;
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  constexpr std::size_t kN = 64;
  std::vector<Complex> v(kN);
  constexpr double kFreq = 5.0;
  for (std::size_t i = 0; i < kN; ++i) {
    v[i] = Complex(std::cos(2.0 * M_PI * kFreq * static_cast<double>(i) /
                            static_cast<double>(kN)),
                   0.0);
  }
  fft_seq(v);
  const auto spectrum = power_spectrum(v);
  // Energy concentrated in bins 5 and 59 (conjugate pair).
  EXPECT_NEAR(spectrum[5], kN / 2.0, 1e-9);
  EXPECT_NEAR(spectrum[kN - 5], kN / 2.0, 1e-9);
  for (std::size_t k = 0; k < kN; ++k) {
    if (k != 5 && k != kN - 5) {
      EXPECT_LT(spectrum[k], 1e-9) << k;
    }
  }
}

TEST(Fft, ForwardInverseRoundTripIsIdentity) {
  for (std::size_t n : {2u, 16u, 256u, 4096u}) {
    auto original = random_signal(n, 42 + n);
    auto copy = original;
    fft_seq(copy);
    fft_seq(copy, /*inverse=*/true);
    EXPECT_LT(max_diff(original, copy), 1e-9) << "n=" << n;
  }
}

TEST(Fft, ParallelMatchesSequential) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    auto a = random_signal(1024, 7);
    auto b = a;
    fft_seq(a);
    fft_pj(b, threads);
    EXPECT_LT(max_diff(a, b), 1e-12) << "threads=" << threads;
  }
}

TEST(Fft, ParallelRoundTripHelper) {
  const auto original = random_signal(512, 99);
  const auto back = fft_roundtrip(original, 4);
  EXPECT_LT(max_diff(original, back), 1e-9);
}

TEST(Fft, ParallelWorksAcrossSchedules) {
  auto reference = random_signal(256, 3);
  auto expected = reference;
  fft_seq(expected);
  for (const auto schedule :
       {pj::Schedule::kStatic, pj::Schedule::kDynamic, pj::Schedule::kGuided}) {
    auto v = reference;
    fft_pj(v, 3, false, {schedule, 2});
    EXPECT_LT(max_diff(expected, v), 1e-12)
        << to_string(schedule);
  }
}

TEST(Fft, TrivialSizes) {
  std::vector<Complex> one{Complex(3.0, 1.0)};
  fft_seq(one);
  EXPECT_NEAR(one[0].real(), 3.0, 1e-15);
  std::vector<Complex> empty;
  fft_seq(empty);  // no-op, no crash
  EXPECT_TRUE(empty.empty());
}

TEST(Fft, LinearityProperty) {
  const auto x = random_signal(128, 11);
  const auto y = random_signal(128, 13);
  std::vector<Complex> sum(128);
  for (std::size_t i = 0; i < 128; ++i) sum[i] = x[i] + y[i];
  auto fx = x, fy = y, fsum = sum;
  fft_seq(fx);
  fft_seq(fy);
  fft_seq(fsum);
  double err = 0.0;
  for (std::size_t i = 0; i < 128; ++i) {
    err = std::max(err, std::abs(fsum[i] - (fx[i] + fy[i])));
  }
  EXPECT_LT(err, 1e-9);
}

}  // namespace
}  // namespace parc::kernels
