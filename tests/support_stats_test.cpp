// Unit tests for Summary/Histogram/OnlineStats and the fitting helpers.
#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parc {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
}

TEST(Summary, PercentileInterpolates) {
  Summary s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half_width(), 0.0);
}

TEST(Summary, SortCacheInvalidatesOnAdd) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  s.add(9.0);  // after a cached sort, adding must invalidate
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, DescribeMentionsCount) {
  Summary s;
  s.add(1.0);
  s.add(2.0);
  EXPECT_NE(s.describe().find("n=2"), std::string::npos);
}

TEST(Histogram, CountsAndClamps) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bucket 0
  h.add(9.5);    // bucket 9
  h.add(-4.0);   // clamps to bucket 0
  h.add(100.0);  // clamps to bucket 9
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  for (std::size_t i = 1; i < 9; ++i) EXPECT_EQ(h.bucket(i), 0u);
}

TEST(Histogram, BucketBoundsTile) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_low(3), 75.0);
  EXPECT_DOUBLE_EQ(h.bucket_high(3), 100.0);
}

TEST(Histogram, RenderSkipsEmptyBuckets) {
  Histogram h(0.0, 10.0, 10);
  h.add(1.0);
  const std::string out = h.render();
  // Exactly one line: one non-empty bucket.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 1);
}

TEST(OnlineStats, MatchesBatchSummary) {
  Summary batch;
  OnlineStats online;
  const double xs[] = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (double x : xs) {
    batch.add(x);
    online.add(x);
  }
  EXPECT_NEAR(batch.mean(), online.mean(), 1e-12);
  EXPECT_NEAR(batch.variance(), online.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(batch.min(), online.min());
  EXPECT_DOUBLE_EQ(batch.max(), online.max());
}

TEST(PearsonCorrelation, PerfectAndInverse) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> up{2, 4, 6, 8, 10};
  std::vector<double> down{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(PearsonCorrelation, ConstantSeriesIsZero) {
  std::vector<double> xs{1, 2, 3};
  std::vector<double> flat{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson_correlation(xs, flat), 0.0);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs{0, 1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(3.0 + 2.0 * x);
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFit, DegenerateXGivesMeanIntercept) {
  std::vector<double> xs{2, 2, 2};
  std::vector<double> ys{1, 2, 3};
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
}

}  // namespace
}  // namespace parc
