// serve::Router + fault injection: the health state machine against a
// scripted oracle, FaultPlan purity, weighted-P2C routing, the priority/
// deadline admission ladder, TTL + negative caching at the server level,
// end-to-end blackout/ejection/recovery, and a 12-seed randomized stress
// run whose concurrent counters must match a sequential mirror exactly
// (ewma_alpha = 0 freezes the P2C scores, so the whole routing sequence is
// a pure function of the seeded stream).
#include "serve/router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "serve/admission.hpp"
#include "serve/fault.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "support/rng.hpp"

namespace parc::serve {
namespace {

// ---------------------------------------------------------------------------
// ReplicaHealth: the state machine vs a scripted oracle.

TEST(HealthOracle, EjectsAfterThresholdThenProbesAndRecovers) {
  ReplicaHealth h(HealthConfig{3, 0.1, 0.4});
  EXPECT_EQ(h.state(0.0), ReplicaState::healthy);

  EXPECT_FALSE(h.on_result(false, 1.0).ejected);
  EXPECT_FALSE(h.on_result(false, 1.1).ejected);
  EXPECT_EQ(h.state(1.1), ReplicaState::healthy);
  EXPECT_EQ(h.consecutive_failures(), 2u);

  const auto tr = h.on_result(false, 1.2);  // third consecutive: eject
  EXPECT_TRUE(tr.ejected);
  EXPECT_EQ(tr.from, ReplicaState::healthy);
  EXPECT_EQ(tr.to, ReplicaState::ejected);
  EXPECT_EQ(h.state(1.25), ReplicaState::ejected);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), 1.3);  // eject time + probe_backoff_s
  EXPECT_EQ(h.state(1.3), ReplicaState::half_open);  // backoff expired

  const auto probe = h.on_result(true, 1.3);  // probe succeeds
  EXPECT_TRUE(probe.probe);
  EXPECT_TRUE(probe.recovered);
  EXPECT_FALSE(probe.probe_failed);
  EXPECT_EQ(h.state(1.3), ReplicaState::healthy);
  EXPECT_EQ(h.consecutive_failures(), 0u);
  EXPECT_EQ(h.ejections(), 1u);
  EXPECT_EQ(h.probes(), 1u);
  EXPECT_EQ(h.recoveries(), 1u);
}

TEST(HealthOracle, FailedProbesDoubleBackoffUpToTheCap) {
  ReplicaHealth h(HealthConfig{1, 0.1, 0.4});
  EXPECT_TRUE(h.on_result(false, 0.0).ejected);
  EXPECT_DOUBLE_EQ(h.backoff_s(), 0.1);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), 0.1);

  const auto p1 = h.on_result(false, 0.1);  // probe fails: backoff 0.2
  EXPECT_TRUE(p1.probe);
  EXPECT_TRUE(p1.probe_failed);
  EXPECT_DOUBLE_EQ(h.backoff_s(), 0.2);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), 0.3);

  // Probe exactly when due (read the schedule back rather than recomputing
  // it: 0.1 + 0.2 != 0.3 in binary floating point).
  const double p2 = h.next_probe_s();
  EXPECT_TRUE(h.on_result(false, p2).probe_failed);  // backoff 0.4
  EXPECT_DOUBLE_EQ(h.backoff_s(), 0.4);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), p2 + 0.4);

  const double p3 = h.next_probe_s();
  EXPECT_TRUE(h.on_result(false, p3).probe_failed);  // capped at 0.4
  EXPECT_DOUBLE_EQ(h.backoff_s(), 0.4);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), p3 + 0.4);
  EXPECT_EQ(h.probe_failures(), 3u);
  EXPECT_EQ(h.ejections(), 1u);  // one ejection, many probes
}

TEST(HealthOracle, SuccessResetsTheStreak) {
  ReplicaHealth h(HealthConfig{3, 0.1, 0.4});
  for (int round = 0; round < 8; ++round) {
    const double t = 0.1 * round;
    EXPECT_FALSE(h.on_result(false, t).ejected);
    EXPECT_FALSE(h.on_result(false, t + 0.01).ejected);
    h.on_result(true, t + 0.02);  // streak broken before the threshold
    EXPECT_EQ(h.consecutive_failures(), 0u);
  }
  EXPECT_EQ(h.ejections(), 0u);
  EXPECT_EQ(h.state(1.0), ReplicaState::healthy);
}

TEST(HealthOracle, ForcedTrafficWhileEjectedRecoversOnSuccessOnly) {
  ReplicaHealth h(HealthConfig{1, 0.1, 0.8});
  EXPECT_TRUE(h.on_result(false, 0.0).ejected);  // next probe at 0.1

  // Forced failure while still ejected (before the probe is due): nothing
  // changes — in particular the backoff must NOT double (a total blackout
  // would otherwise stampede it to the cap).
  const auto forced_fail = h.on_result(false, 0.05);
  EXPECT_FALSE(forced_fail.probe);
  EXPECT_FALSE(forced_fail.recovered);
  EXPECT_DOUBLE_EQ(h.backoff_s(), 0.1);
  EXPECT_DOUBLE_EQ(h.next_probe_s(), 0.1);

  // Forced success while ejected: the replica evidently works — recover.
  const auto forced_ok = h.on_result(true, 0.06);
  EXPECT_TRUE(forced_ok.recovered);
  EXPECT_FALSE(forced_ok.probe);
  EXPECT_EQ(h.state(0.06), ReplicaState::healthy);
  EXPECT_EQ(h.recoveries(), 1u);
  EXPECT_EQ(h.probes(), 0u);
}

TEST(HealthOracle, StaleCompletionReportsCannotRewindTheClock) {
  ReplicaHealth h(HealthConfig{1, 0.1, 0.4});
  EXPECT_TRUE(h.on_result(false, 1.0).ejected);  // next probe 1.1
  EXPECT_TRUE(h.on_result(false, 1.1).probe_failed);  // next probe 1.3
  // A stale completion stamped before the last transition must not
  // reschedule the probe into the past.
  h.on_result(false, 0.5);
  EXPECT_GE(h.next_probe_s(), 1.3);
}

// ---------------------------------------------------------------------------
// FaultPlan: pure, seeded, windowed verdicts.

TEST(FaultPlanTest, BlackoutWindowBoundsAreExact) {
  const FaultPlan plan = FaultPlan::blackout(2, 1.0, 2.0);
  EXPECT_TRUE(plan.decide(2, 1.0, 7).fail);     // begin inclusive
  EXPECT_TRUE(plan.decide(2, 1.999, 7).fail);
  EXPECT_FALSE(plan.decide(2, 2.0, 7).fail);    // end exclusive
  EXPECT_FALSE(plan.decide(2, 0.999, 7).fail);
  EXPECT_FALSE(plan.decide(1, 1.5, 7).fail);    // other replicas untouched
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(plan.decide(2, 1.5, 9).fail);   // pure: same args same answer
  }
}

TEST(FaultPlanTest, ErrorWindowIsASeededCoin) {
  FaultWindow w;
  w.replica = 0;
  w.begin_s = 0.0;
  w.end_s = 1.0;
  w.kind = FaultKind::error;
  w.error_prob = 0.3;
  const FaultPlan a({w}, 42);
  const FaultPlan b({w}, 42);
  const FaultPlan c({w}, 43);
  int fails = 0;
  int differs = 0;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    const bool fa = a.decide(0, 0.5, id).fail;
    EXPECT_EQ(fa, b.decide(0, 0.5, id).fail);  // same seed, same verdicts
    differs += fa != c.decide(0, 0.5, id).fail;
    fails += fa;
  }
  EXPECT_NEAR(static_cast<double>(fails) / 10000.0, 0.3, 0.03);
  EXPECT_GT(differs, 1000);  // a different seed is a different coin
  EXPECT_FALSE(a.decide(0, 1.5, 1).fail);  // outside the window: clean
}

TEST(FaultPlanTest, OverlappingSlowdownsTakeTheMaxFactor) {
  FaultWindow s2;
  s2.replica = 1;
  s2.begin_s = 0.0;
  s2.end_s = 2.0;
  s2.kind = FaultKind::slowdown;
  s2.slow_factor = 2;
  FaultWindow s5 = s2;
  s5.begin_s = 1.0;
  s5.slow_factor = 5;
  const FaultPlan plan({s2, s5}, 1);
  EXPECT_EQ(plan.decide(1, 0.5, 1).slow_factor, 2u);
  EXPECT_EQ(plan.decide(1, 1.5, 1).slow_factor, 5u);  // overlap: max wins
  EXPECT_FALSE(plan.decide(1, 1.5, 1).fail);
  EXPECT_EQ(plan.decide(0, 1.5, 1).slow_factor, 1u);
}

// ---------------------------------------------------------------------------
// Router: weighted P2C, score bias, ejection/diversion, forced routes.

TEST(RouterTest, WeightedDrawTracksWeightsWithFrozenScores) {
  RouterConfig rc;
  rc.replicas = 3;
  rc.weights = {1.0, 2.0, 1.0};
  rc.ewma_alpha = 0.0;  // frozen equal scores: ties keep the first draw,
                        // so the pick distribution IS the weighted draw
  rc.seed = 5;
  Router router(rc);
  const std::size_t n = 30000;
  for (std::size_t i = 0; i < n; ++i) {
    (void)router.route(i + 1, static_cast<double>(i) * 1e-6);
  }
  const auto snap = router.snapshot(1.0);
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_NEAR(static_cast<double>(snap[0].routed) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(snap[1].routed) / n, 0.50, 0.02);
  EXPECT_NEAR(static_cast<double>(snap[2].routed) / n, 0.25, 0.02);
  EXPECT_EQ(router.stats().routed, n);
  EXPECT_EQ(router.stats().ejections, 0u);
}

TEST(RouterTest, CompletionLatencyBiasesTheScore) {
  RouterConfig rc;
  rc.replicas = 2;
  rc.ewma_alpha = 0.5;
  rc.seed = 9;
  Router router(rc);
  // Teach the router that replica 0 is 100× slower.
  for (int i = 0; i < 20; ++i) {
    router.on_complete(1, 0, true, false, 0.1, 0.0);
    router.on_complete(2, 1, true, false, 0.001, 0.0);
  }
  const std::size_t n = 10000;
  for (std::size_t i = 0; i < n; ++i) {
    (void)router.route(100 + i, static_cast<double>(i) * 1e-6);
  }
  const auto snap = router.snapshot(1.0);
  // P2C with unequal scores: the slow replica is picked only when both
  // draws land on it (p = 1/4 at equal weights).
  EXPECT_NEAR(static_cast<double>(snap[1].routed) / n, 0.75, 0.03);
}

TEST(RouterTest, BlackoutEjectsWithinThresholdAndDivertsTraffic) {
  RouterConfig rc;
  rc.replicas = 3;
  rc.ewma_alpha = 0.0;
  rc.health = HealthConfig{4, 0.05, 0.2};
  rc.seed = 3;
  Router router(rc);
  router.set_fault_plan(FaultPlan::blackout(0, 0.0, 10.0));

  // Drive scheduled time across the blackout window and past it.
  std::uint64_t picks0_after_eject = 0;
  std::uint64_t routed0_in_window = 0;
  bool ejected_seen = false;
  for (std::size_t i = 0; i < 40000; ++i) {
    const double t = static_cast<double>(i) * 5e-4;  // 0 .. 20 s
    const auto route = router.route(i + 1, t);
    if (route.replica == 0 && t < 10.0) ++routed0_in_window;
    if (ejected_seen && route.replica == 0 && t < 10.0) {
      ++picks0_after_eject;
      EXPECT_TRUE(route.probe);  // only probes reach an ejected replica
    }
    if (!ejected_seen && router.stats().ejections > 0) {
      ejected_seen = true;
      // Ejection must take exactly fail_threshold consecutive failures.
      EXPECT_EQ(router.snapshot(t)[0].failed, 4u);
    }
  }
  ASSERT_TRUE(ejected_seen);
  const auto end = router.snapshot(20.0);
  EXPECT_EQ(end[0].state, ReplicaState::healthy);  // recovered post-window
  EXPECT_GE(end[0].recoveries, 1u);
  EXPECT_GT(end[0].probe_failures, 0u);  // in-window probes kept failing
  // Every in-window failure is either pre-ejection streak or a probe.
  EXPECT_EQ(end[0].failed, 4u + end[0].probe_failures);
  // Probes are paced by backoff, not traffic: far fewer than the window's
  // 20000 requests went to the dead replica.
  EXPECT_LT(routed0_in_window, 200u);
  EXPECT_LE(picks0_after_eject, end[0].probes);
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed, 40000u);
  EXPECT_EQ(stats.forced_routes, 0u);  // two replicas stayed healthy
}

TEST(RouterTest, TotalBlackoutForcesRoutesAndStillConserves) {
  RouterConfig rc;
  rc.replicas = 2;
  rc.ewma_alpha = 0.0;
  rc.health = HealthConfig{1, 0.05, 0.2};
  rc.seed = 11;
  Router router(rc);
  FaultWindow w0;
  w0.replica = 0;
  w0.begin_s = 0.0;
  w0.end_s = 1.0;
  FaultWindow w1 = w0;
  w1.replica = 1;
  router.set_fault_plan(FaultPlan({w0, w1}, 1));

  const std::size_t n = 4000;
  for (std::size_t i = 0; i < n; ++i) {
    (void)router.route(i + 1, static_cast<double>(i) * 5e-4);  // 0 .. 2 s
  }
  const auto stats = router.stats();
  EXPECT_EQ(stats.routed, n);  // every request routed somewhere
  EXPECT_EQ(stats.ejections, 2u);
  EXPECT_GT(stats.forced_routes, 0u);  // both down: best-effort picks
  EXPECT_GE(stats.recoveries, 2u);     // both healthy after the window
  const auto end = router.snapshot(2.0);
  EXPECT_EQ(end[0].state, ReplicaState::healthy);
  EXPECT_EQ(end[1].state, ReplicaState::healthy);
}

// ---------------------------------------------------------------------------
// Admission: deadline shedding + the priority ladder.

TEST(AdmissionLadder, DeadlineExpiredIsShedAndCountedByClass) {
  AdmissionController adm(AdmissionConfig{0.0, 256.0, 0});
  EXPECT_EQ(adm.admit(1.0, Priority::high, 0.5, 0),
            AdmissionController::Decision::shed_deadline);
  EXPECT_EQ(adm.admit(1.0, Priority::low, 1.5, 0),
            AdmissionController::Decision::admit);
  EXPECT_EQ(adm.admit(1.0, Priority::low, 0.0, 0),  // 0 = no deadline
            AdmissionController::Decision::admit);
  const auto& s = adm.stats();
  EXPECT_EQ(s.shed_deadline, 1u);
  EXPECT_EQ(s.shed_by[static_cast<std::size_t>(Priority::high)], 1u);
  EXPECT_EQ(s.admitted_by[static_cast<std::size_t>(Priority::low)], 2u);
  EXPECT_EQ(s.offered, 3u);
}

TEST(AdmissionLadder, ReservesAndPendingCapsAreMonotone) {
  AdmissionController adm(AdmissionConfig{100.0, 64.0, 100});
  EXPECT_DOUBLE_EQ(adm.reserve_tokens(Priority::high), 0.0);
  EXPECT_LT(adm.reserve_tokens(Priority::high),
            adm.reserve_tokens(Priority::normal));
  EXPECT_LT(adm.reserve_tokens(Priority::normal),
            adm.reserve_tokens(Priority::low));
  EXPECT_EQ(adm.pending_cap(Priority::high), 100u);
  EXPECT_GE(adm.pending_cap(Priority::normal),
            adm.pending_cap(Priority::low));
  EXPECT_GE(adm.pending_cap(Priority::low), 1u);
}

TEST(AdmissionLadder, OverloadShedsTheLowClassFirst) {
  // 1500/s admitted, 3000/s offered in a high,low,low cycle: high traffic
  // (1000/s) fits entirely under the rate; low absorbs all the shedding.
  AdmissionController adm(AdmissionConfig{1500.0, 10.0, 0});
  const std::size_t n = 30000;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / 3000.0;
    const Priority p = i % 3 == 0 ? Priority::high : Priority::low;
    (void)adm.admit(t, p, 0.0, 0);
  }
  const auto& s = adm.stats();
  EXPECT_EQ(s.shed_by[static_cast<std::size_t>(Priority::high)], 0u);
  EXPECT_GT(s.shed_by[static_cast<std::size_t>(Priority::low)], n / 10);
  EXPECT_EQ(s.offered, n);
  EXPECT_EQ(s.admitted + s.shed_rate + s.shed_queue + s.shed_deadline, n);
}

TEST(AdmissionLadder, NoHigherClassShedWhileALowerClassAdmitsInTheWindow) {
  // The provable ladder property (admission.hpp): after a class-p rate
  // shed at time t, a class with a larger reserve cannot admit before the
  // refill has had time to climb the reserve gap — in any window shorter
  // than (reserve(q) − reserve(p)) / rate there is no (p shed, q admitted)
  // pair with reserve(q) > reserve(p).
  AdmissionConfig cfg{2000.0, 32.0, 0};
  AdmissionController adm(cfg);
  struct Obs {
    double t;
    Priority p;
    bool admitted;
    bool rate_shed;
  };
  std::vector<Obs> log;
  Rng rng(77);
  double t = 0.0;
  // Alternate overload bursts (2× the rate: the bucket crashes to the
  // normal-class boundary, normal sheds) and lulls (0.5×: tokens climb
  // past the low reserve, low admits again) so the bucket sweeps the whole
  // ladder instead of pinning at one boundary.
  for (std::size_t i = 0; i < 24000; ++i) {
    const bool burst = (i / 2000) % 2 == 0;
    t += rng.exponential(burst ? 1.0 / 4000.0 : 1.0 / 1000.0);
    const auto p = static_cast<Priority>(rng.below(kPriorities));
    const auto d = adm.admit(t, p, 0.0, 0);
    log.push_back(Obs{t, p,
                      d == AdmissionController::Decision::admit,
                      d == AdmissionController::Decision::shed_rate});
  }
  std::uint64_t violations = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    if (!log[i].rate_shed) continue;
    const double res_i = adm.reserve_tokens(log[i].p);
    for (std::size_t j = i + 1; j < log.size(); ++j) {
      if (log[j].t - log[i].t >=
          (adm.reserve_tokens(Priority::low) - res_i) / cfg.rate) {
        break;  // beyond the widest window: everything later is legal
      }
      if (!log[j].admitted) continue;
      const double res_j = adm.reserve_tokens(log[j].p);
      if (res_j <= res_i) continue;
      const double window = (res_j - res_i) / cfg.rate;
      if (log[j].t - log[i].t >= window) continue;
      ++violations;
      ADD_FAILURE() << "class with reserve " << res_j << " admitted "
                    << (log[j].t - log[i].t) << " s after a shed of class "
                    << "with reserve " << res_i << " (window " << window
                    << " s)";
    }
  }
  EXPECT_EQ(violations, 0u);
  // The stream must actually have exercised the property: higher classes
  // shed while lower classes also admit elsewhere in the stream.
  const auto& s = adm.stats();
  EXPECT_GT(s.shed_rate, 1000u);
  EXPECT_GT(s.shed_by[static_cast<std::size_t>(Priority::normal)], 100u);
  EXPECT_GT(s.admitted_by[static_cast<std::size_t>(Priority::low)], 100u);
}

// ---------------------------------------------------------------------------
// Server level: TTL + negative caching, end-to-end blackout, determinism.

ServerConfig fault_server(std::size_t replicas) {
  ServerConfig cfg;
  cfg.pool.num_threads = 2;
  cfg.pool.shards = 2;
  cfg.cache_capacity = 4096;
  cfg.cache_stripes = 4;
  cfg.backend.img_source_dim = 8;
  cfg.backend.img_thumb_dim = 4;
  cfg.backend.text_chunks = 8;
  cfg.backend.text_chunk_bytes = 256;
  cfg.admission = AdmissionConfig{0.0, 256.0, 0};  // no gates
  cfg.router.replicas = replicas;
  cfg.router.seed = 21;
  return cfg;
}

Request img_at(std::uint64_t id, std::uint64_t key, double arrival_s) {
  Request r;
  r.id = id;
  r.kind = RequestKind::img;
  r.key = key;
  r.arrival_s = arrival_s;
  return r;
}

TEST(ServerFault, NegativeCacheFailsFastUntilItExpires) {
  ServerConfig cfg = fault_server(1);
  cfg.router.health.fail_threshold = 1000;  // stay healthy: isolate caching
  cfg.fault_plan = FaultPlan::blackout(0, 0.0, 0.5);
  cfg.negative_ttl_s = 0.2;
  Server server(cfg);
  server.start();

  ASSERT_EQ(server.offer(img_at(1, 7, 0.10)), Server::Outcome::dispatched);
  server.drain();  // fails in the blackout; negative entry until 0.30
  EXPECT_EQ(server.stats().failed, 1u);

  ASSERT_EQ(server.offer(img_at(2, 7, 0.15)), Server::Outcome::hit);
  server.drain();  // negative hit: fail-fast, no dispatch
  EXPECT_EQ(server.stats().negative_hits, 1u);
  EXPECT_EQ(server.stats().failed, 2u);
  EXPECT_EQ(server.stats().executed, 1u);

  ASSERT_EQ(server.offer(img_at(3, 7, 0.35)), Server::Outcome::dispatched);
  server.drain();  // entry expired; still inside the blackout: fails again
  EXPECT_EQ(server.stats().failed, 3u);
  EXPECT_EQ(server.stats().executed, 2u);

  ASSERT_EQ(server.offer(img_at(4, 7, 0.90)), Server::Outcome::dispatched);
  server.drain();  // blackout over (and negative entry from 0.35 expired)
  const auto s = server.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.failed, 3u);
  EXPECT_EQ(s.executed, 3u);
  EXPECT_EQ(s.cache.expired, 2u);
  EXPECT_EQ(s.admitted, s.completed + s.failed);
  EXPECT_EQ(s.admitted,
            s.hits_inline + s.negative_hits + s.coalesced + s.executed);

  // The success is now positively cached: an immediate repeat hits.
  ASSERT_EQ(server.offer(img_at(5, 7, 0.95)), Server::Outcome::hit);
  server.drain();
  EXPECT_EQ(server.stats().hits_inline, 1u);
}

TEST(ServerFault, CacheTtlExpiresResultsOnTheScheduledClock) {
  ServerConfig cfg = fault_server(1);
  cfg.cache_ttl_s = 1.0;
  Server server(cfg);
  server.start();

  ASSERT_EQ(server.offer(img_at(1, 3, 0.0)), Server::Outcome::dispatched);
  server.drain();
  ASSERT_EQ(server.offer(img_at(2, 3, 0.5)), Server::Outcome::hit);
  server.drain();  // still live at 0.5
  ASSERT_EQ(server.offer(img_at(3, 3, 1.25)), Server::Outcome::dispatched);
  server.drain();  // expired at 1.0: re-executes
  const auto s = server.stats();
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.hits_inline, 1u);
  EXPECT_EQ(s.cache.expired, 1u);
  EXPECT_EQ(s.completed, 3u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(ServerFault, BlackoutEjectsThenRecoversEndToEnd) {
  ServerConfig cfg = fault_server(4);
  cfg.router.ewma_alpha = 0.0;
  cfg.router.health = HealthConfig{5, 0.02, 0.1};
  cfg.fault_plan = FaultPlan::blackout(0, 0.2, 1.0);
  Server server(cfg);
  server.start();
  const std::size_t n = 4000;
  for (std::size_t i = 0; i < n; ++i) {
    // Unique keys: every request is a leader; arrival 0 .. 2 s scheduled.
    (void)server.offer(img_at(i + 1, 1'000'000 + i,
                              static_cast<double>(i) * 5e-4));
  }
  server.drain();

  const auto s = server.stats();
  EXPECT_EQ(s.offered, n);
  EXPECT_EQ(s.admitted, n);
  EXPECT_EQ(s.executed, n);  // unique keys: no hits, no coalescing
  EXPECT_EQ(s.hits_inline + s.negative_hits + s.coalesced, 0u);
  EXPECT_EQ(s.completed + s.failed, n);
  EXPECT_GT(s.failed, 0u);

  EXPECT_GE(s.router.ejections, 1u);
  EXPECT_GE(s.router.recoveries, 1u);
  EXPECT_EQ(s.router.routed, n);
  EXPECT_EQ(s.router.forced_routes, 0u);  // three replicas stayed up
  EXPECT_EQ(s.router.failed_organic, 0u);  // img never times out

  const auto snap = server.router().snapshot(2.0);
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap[0].state, ReplicaState::healthy);  // recovered
  // Every replica-0 failure was either the pre-ejection streak or a probe.
  EXPECT_EQ(snap[0].failed,
            5u * snap[0].ejections + snap[0].probe_failures);
  EXPECT_EQ(snap[1].ejections + snap[2].ejections + snap[3].ejections, 0u);
  EXPECT_EQ(s.failed, s.router.failed_injected);
}

TEST(ServerFault, IdenticalRunsProduceIdenticalStats) {
  const auto run = [] {
    ServerConfig cfg = fault_server(4);
    cfg.router.ewma_alpha = 0.0;
    cfg.router.health = HealthConfig{5, 0.02, 0.1};
    cfg.fault_plan = FaultPlan::blackout(1, 0.3, 0.9);
    Server server(cfg);
    server.start();
    for (std::size_t i = 0; i < 3000; ++i) {
      (void)server.offer(img_at(i + 1, 2'000'000 + i,
                                static_cast<double>(i) * 5e-4));
    }
    server.drain();
    return server.stats();
  };
  const Server::Stats a = run();
  const Server::Stats b = run();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.router.ejections, b.router.ejections);
  EXPECT_EQ(a.router.probes, b.router.probes);
  EXPECT_EQ(a.router.probe_failures, b.router.probe_failures);
  EXPECT_EQ(a.router.recoveries, b.router.recoveries);
  EXPECT_EQ(a.router.failed_injected, b.router.failed_injected);
  EXPECT_EQ(a.router.forced_routes, b.router.forced_routes);
}

#if PARC_OBS_TRACE
TEST(ServerFault, TraceLedgerCountsFaultEvents) {
  ServerConfig cfg = fault_server(4);
  cfg.router.ewma_alpha = 0.0;
  cfg.router.health = HealthConfig{5, 0.02, 0.1};
  cfg.fault_plan = FaultPlan::blackout(0, 0.2, 1.0);
  Server server(cfg);
  obs::TraceSession session(obs::TraceConfig{std::size_t{1} << 16});
  server.start();
  const std::size_t n = 3000;
  for (std::size_t i = 0; i < n; ++i) {
    Request r = img_at(i + 1, 3'000'000 + i, static_cast<double>(i) * 5e-4);
    if (i % 7 == 3) r.deadline_s = r.arrival_s - 1e-9;  // already expired
    (void)server.offer(r);
  }
  server.drain();
  const auto dump = session.end();
  EXPECT_EQ(dump.total_dropped(), 0u);
  const auto s = server.stats();
  EXPECT_EQ(dump.count_kind(obs::EventKind::kReplicaPick), s.executed);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kReplicaFail), s.failed);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kEject), s.router.ejections);
  EXPECT_EQ(dump.count_kind(obs::EventKind::kDeadlineShed), s.shed_deadline);
  EXPECT_GT(s.shed_deadline, 0u);
  // kProbe arg 0 marks the routed probe, 1|2 its settled verdict.
  std::uint64_t settled = 0;
  for (const auto& track : dump.tracks) {
    for (const obs::Event& e : track.events) {
      settled += e.kind == obs::EventKind::kProbe && e.arg != 0 ? 1 : 0;
    }
  }
  EXPECT_EQ(settled, s.router.probes);
}
#endif

// ---------------------------------------------------------------------------
// Randomized stress: 12 seeds, concurrent run vs sequential mirror.

TEST(ServerStress, TwelveSeedsMatchASequentialOracle) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    // A random fault plan: 0–2 windows per replica, mixed kinds.
    Rng rng(seed * 1009);
    std::vector<FaultWindow> windows;
    for (std::size_t rep = 0; rep < 4; ++rep) {
      const std::uint64_t count = rng.below(3);
      for (std::uint64_t k = 0; k < count; ++k) {
        FaultWindow w;
        w.replica = rep;
        w.begin_s = rng.uniform() * 1.5;
        w.end_s = w.begin_s + 0.1 + rng.uniform() * 0.5;
        const std::uint64_t kind = rng.below(3);
        w.kind = static_cast<FaultKind>(kind);
        w.error_prob = 0.3 + 0.7 * rng.uniform();
        w.slow_factor = 2 + static_cast<std::uint32_t>(rng.below(3));
        windows.push_back(w);
      }
    }
    const FaultPlan plan(windows, seed);

    WorkloadConfig w;
    w.requests = 6000;
    w.arrival_rate = 3000.0;  // 2 s schedule
    w.keyspace = 1ull << 40;  // unique keys w.h.p.: no cache/coalesce paths
    w.key_skew = 0.0;
    w.weight_img = 0.6;
    w.weight_text = 0.4;
    w.weight_net = 0.0;  // no organic failures: verdicts fully scripted
    w.seed = 4242 + seed;
    std::vector<Request> stream = generate(w);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (i % 7 == 3) {
        stream[i].deadline_s = stream[i].arrival_s - 1e-9;  // expired
      }
    }

    ServerConfig cfg;
    cfg.pool.num_threads = 4;
    cfg.pool.shards = 2;
    cfg.cache_capacity = 1024;
    cfg.cache_stripes = 4;
    cfg.backend.img_source_dim = 8;
    cfg.backend.img_thumb_dim = 4;
    cfg.backend.text_chunks = 8;
    cfg.backend.text_chunk_bytes = 256;
    // Rate gate on (pure function of the schedule); queue gate off
    // (in_flight depends on worker timing).
    cfg.admission = AdmissionConfig{2500.0, 64.0, 0};
    cfg.router.replicas = 4;
    cfg.router.ewma_alpha = 0.0;  // frozen scores: routing is stream-pure
    cfg.router.seed = 17 + seed;
    cfg.router.health = HealthConfig{3, 0.01, 0.08};
    cfg.fault_plan = plan;

    // Sequential mirror: the same admission + routing decisions, made
    // inline with zero concurrency.
    AdmissionController mirror_adm(cfg.admission);
    Router mirror_router(cfg.router);
    mirror_router.set_fault_plan(plan);
    std::uint64_t expect_failed = 0;
    for (const Request& r : stream) {
      const auto d =
          mirror_adm.admit(r.arrival_s, r.priority, r.deadline_s, 0);
      if (d != AdmissionController::Decision::admit) continue;
      const auto rt = mirror_router.route(r.id, r.arrival_s);
      expect_failed += rt.verdict.fail ? 1 : 0;
    }

    // Concurrent run over the identical stream.
    Server server(cfg);
    server.start();
    for (const Request& r : stream) (void)server.offer(r);
    server.drain();

    const auto s = server.stats();
    const auto& ma = mirror_adm.stats();
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(s.offered, ma.offered);
    EXPECT_EQ(s.admitted, ma.admitted);
    EXPECT_EQ(s.shed_rate, ma.shed_rate);
    EXPECT_EQ(s.shed_queue, ma.shed_queue);
    EXPECT_EQ(s.shed_deadline, ma.shed_deadline);
    EXPECT_EQ(s.offered_by, ma.offered_by);
    EXPECT_EQ(s.admitted_by, ma.admitted_by);
    EXPECT_EQ(s.shed_by, ma.shed_by);
    EXPECT_GT(s.shed_deadline, 0u);

    // Exact conservation under concurrency.
    EXPECT_EQ(s.in_flight, 0u);
    EXPECT_EQ(s.offered,
              s.admitted + s.shed_rate + s.shed_queue + s.shed_deadline);
    EXPECT_EQ(s.admitted, s.completed + s.failed);
    EXPECT_EQ(s.executed, s.admitted);  // unique keys
    EXPECT_EQ(s.hits_inline + s.negative_hits + s.coalesced, 0u);

    // The routing sequence matches the sequential oracle bit-for-bit.
    const auto mr = mirror_router.stats();
    EXPECT_EQ(s.router.routed, mr.routed);
    EXPECT_EQ(s.router.failed_injected, mr.failed_injected);
    EXPECT_EQ(s.router.failed_organic, 0u);
    EXPECT_EQ(s.router.ejections, mr.ejections);
    EXPECT_EQ(s.router.probes, mr.probes);
    EXPECT_EQ(s.router.probe_failures, mr.probe_failures);
    EXPECT_EQ(s.router.recoveries, mr.recoveries);
    EXPECT_EQ(s.router.forced_routes, mr.forced_routes);
    EXPECT_EQ(s.failed, expect_failed);

    const auto sa = server.router().snapshot(2.5);
    const auto sb = mirror_router.snapshot(2.5);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      EXPECT_EQ(sa[i].routed, sb[i].routed);
      EXPECT_EQ(sa[i].failed, sb[i].failed);
      EXPECT_EQ(sa[i].state, sb[i].state);
      EXPECT_EQ(sa[i].ejections, sb[i].ejections);
    }
  }
}

}  // namespace
}  // namespace parc::serve
