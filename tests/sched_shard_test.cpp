// Locality-domain sharding: the hierarchical-stealing contract.
//
// These tests pin down the sharded pool's observable semantics —
//  - shards=1 is the flat pool: one domain, cross counters hard-zero,
//    stolen_shard_local == stolen;
//  - Config::shards auto-sizing (0 → workers/4) and clamping (≤ workers),
//    with workers partitioned into contiguous blocks;
//  - explicit-shard routing lands work on the named domain's queues, and
//    the domain's own workers take it first;
//  - victim order is shard-first: with local supply, every steal has a
//    same-domain victim; a thief crosses the boundary (counted as a
//    cross-probe) only once its own domain runs dry, and then its raids
//    count — exactly — as cross-shard steals and kStealRemote events;
//  - the work-conservation fallback: a submission targeting a busy domain
//    while another domain's worker sleeps wakes that remote worker
//    (cross_shard_wakes) instead of letting the job wait;
//  - per-shard Stats snapshots sum to the pool-wide columns;
//  - a traced shards=4 ptask run replays in sim::machine, where
//    hierarchical dispatch generates no more modeled cross-domain traffic
//    than the shard-oblivious schedule of the same DAG.
//
// Determinism idiom: every routing assertion first parks the whole pool
// (poll stats().parked), then wakes exactly the workers it means to —
// a submission to shard s with sleepers everywhere wakes only a shard-s
// worker, so "who runs this job" becomes observable without timing
// assumptions. Exact counter asserts quiesce through a release-increment /
// acquire-load of the jobs-ran counter, which the Stats contract requires.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/analysis.hpp"
#include "obs/trace.hpp"
#include "ptask/ptask.hpp"
#include "sched/thread_pool.hpp"
#include "sim/machine.hpp"

namespace parc::sched {
namespace {

void spin_until(const std::atomic<bool>& flag) {
  while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
}

/// Wait until every worker of `pool` is asleep *right now* (the `sleeping`
/// gauge, not the cumulative `parked` counter — mid-test the latter stays
/// satisfied while a worker is still out sweeping). After this, a targeted
/// submission wakes only workers of its own shard — no other worker is
/// awake to race for it.
void wait_all_parked(const WorkStealingPool& pool, std::size_t workers) {
  while (pool.stats().sleeping < workers) std::this_thread::yield();
}

/// A job that records which domain ran it, then spins until released —
/// occupying its worker so it can neither steal nor take further work.
struct Hostage {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<std::size_t> ran_on_shard{static_cast<std::size_t>(-1)};

  void submit_to(WorkStealingPool& pool, std::size_t shard) {
    pool.submit(
        [this, &pool] {
          ran_on_shard.store(pool.current_shard(), std::memory_order_relaxed);
          started.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        SubmitHint::remote, shard);
    spin_until(started);
  }

  void free() { release.store(true, std::memory_order_release); }
};

TEST(SchedShard, DefaultIsSingleDomainWithFlatCounters) {
  WorkStealingPool pool({2, 4, "shard-flat"});
  EXPECT_EQ(pool.shard_count(), 1u);
  EXPECT_EQ(pool.shard_of_worker(0), 0u);
  EXPECT_EQ(pool.shard_of_worker(1), 0u);

  constexpr int kJobs = 200;
  std::atomic<int> ran{0};
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_release); });
  }
  while (ran.load(std::memory_order_acquire) < kJobs) {
    std::this_thread::yield();
  }
  const auto s = pool.stats();
  ASSERT_EQ(s.shards.size(), 1u);
  // One domain: every steal is shard-local, nothing ever crosses.
  EXPECT_EQ(s.stolen_shard_local, s.stolen);
  EXPECT_EQ(s.stolen_cross_shard, 0u);
  EXPECT_EQ(s.cross_shard_probes, 0u);
  EXPECT_EQ(s.cross_shard_wakes, 0u);
  EXPECT_EQ(s.shard(0).executed, s.executed);
  EXPECT_EQ(s.shard(0).stolen, s.stolen);
}

TEST(SchedShard, AutoShardsSizeFromWorkerCount) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 8;
  cfg.name = "shard-auto";
  cfg.shards = 0;  // auto: workers / 4
  WorkStealingPool pool(cfg);
  EXPECT_EQ(pool.shard_count(), 2u);
  // Contiguous blocks: shard s owns [s*W/S, (s+1)*W/S).
  for (std::size_t w = 0; w < 8; ++w) {
    EXPECT_EQ(pool.shard_of_worker(w), w < 4 ? 0u : 1u) << "worker " << w;
  }
}

TEST(SchedShard, ShardCountClampsToWorkers) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 2;
  cfg.name = "shard-clamp";
  cfg.shards = 7;
  WorkStealingPool pool(cfg);
  EXPECT_EQ(pool.shard_count(), 2u);
  EXPECT_EQ(pool.shard_of_worker(0), 0u);
  EXPECT_EQ(pool.shard_of_worker(1), 1u);
}

// The victim-order theorem, made deterministic: both shard-0 workers are
// held hostage, then a generator on shard 1 local-pushes K jobs while its
// shard-1 sibling is the only free worker. Every one of the K jobs must be
// stolen by that sibling — a same-domain victim — so the exact counts are
// stolen_shard_local == K and stolen_cross_shard == 0. Along the way the
// explicit-shard routing itself is asserted: with the whole pool parked, a
// submission to shard s is executed by a shard-s worker.
TEST(SchedShard, VictimOrderIsShardFirst) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 4;
  cfg.name = "shard-victim";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);
  wait_all_parked(pool, 4);

  Hostage h1;
  Hostage h2;
  h1.submit_to(pool, 0);
  h2.submit_to(pool, 0);
  EXPECT_EQ(h1.ran_on_shard.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(h2.ran_on_shard.load(std::memory_order_relaxed), 0u);

  constexpr std::size_t kJobs = 64;
  std::atomic<std::size_t> jobs_ran{0};
  std::atomic<std::size_t> gen_shard{static_cast<std::size_t>(-1)};
  std::atomic<bool> gen_done{false};
  pool.submit(
      [&pool, &jobs_ran, &gen_shard, &gen_done] {
        gen_shard.store(pool.current_shard(), std::memory_order_relaxed);
        for (std::size_t i = 0; i < kJobs; ++i) {
          // Worker-local fast path: lands on this worker's own deque.
          pool.submit([&jobs_ran] {
            jobs_ran.fetch_add(1, std::memory_order_release);
          });
        }
        // Never pop: the only way these jobs run is a sibling's steal.
        while (jobs_ran.load(std::memory_order_acquire) < kJobs) {
          std::this_thread::yield();
        }
        gen_done.store(true, std::memory_order_release);
      },
      SubmitHint::remote, 1);
  spin_until(gen_done);
  h1.free();
  h2.free();
  EXPECT_EQ(gen_shard.load(std::memory_order_relaxed), 1u);

  const auto s = pool.stats();
  EXPECT_EQ(s.stolen_shard_local, kJobs);
  EXPECT_EQ(s.stolen_cross_shard, 0u);
  EXPECT_EQ(s.shard(1).stolen_local, kJobs);
  EXPECT_EQ(s.shard(0).stolen, 0u);
}

// The complementary exact count: the generator's own domain has no sibling
// (2 workers, 2 domains), so the only thief lives across the boundary.
// All K jobs must arrive via cross-shard deque raids — counted exactly,
// traced as kStealRemote, and preceded by at least one cross-probe.
TEST(SchedShard, CrossShardStealsCountExactly) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 2;
  cfg.name = "shard-cross";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);
  wait_all_parked(pool, 2);

  obs::TraceSession session({.events_per_thread = 1u << 14});

  constexpr std::size_t kJobs = 64;
  std::atomic<std::size_t> jobs_ran{0};
  std::atomic<std::size_t> thief_shard_sum{0};
  std::atomic<bool> gen_done{false};
  pool.submit(
      [&pool, &jobs_ran, &thief_shard_sum, &gen_done] {
        for (std::size_t i = 0; i < kJobs; ++i) {
          pool.submit([&pool, &jobs_ran, &thief_shard_sum] {
            thief_shard_sum.fetch_add(pool.current_shard(),
                                      std::memory_order_relaxed);
            jobs_ran.fetch_add(1, std::memory_order_release);
          });
        }
        while (jobs_ran.load(std::memory_order_acquire) < kJobs) {
          std::this_thread::yield();
        }
        gen_done.store(true, std::memory_order_release);
      },
      SubmitHint::remote, 0);
  spin_until(gen_done);

  const obs::TraceDump dump = session.end();
  const auto s = pool.stats();
  EXPECT_EQ(s.stolen_cross_shard, kJobs);
  EXPECT_EQ(s.stolen_shard_local, 0u);
  EXPECT_GE(s.cross_shard_probes, 1u);
  // The generator parked no one, so at least the first push had to wake
  // the remote (shard-1) worker through the fallback.
  EXPECT_GE(s.cross_shard_wakes, 1u);
  // Every job ran on the shard-1 thief.
  EXPECT_EQ(thief_shard_sum.load(std::memory_order_relaxed), kJobs);
  EXPECT_EQ(s.shard(1).stolen_cross, kJobs);

  EXPECT_EQ(dump.count_kind(obs::EventKind::kStealRemote), kJobs);
}

// Work conservation across domains: a job routed to a busy shard while the
// other shard's worker sleeps must not wait — signal_work falls back to
// waking the remote sleeper, which then drains the busy shard's queue.
TEST(SchedShard, FallbackWakeServesBusyShard) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 2;
  cfg.name = "shard-wake";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);
  wait_all_parked(pool, 2);

  Hostage hostage;
  hostage.submit_to(pool, 0);
  EXPECT_EQ(hostage.ran_on_shard.load(std::memory_order_relaxed), 0u);

  std::atomic<std::size_t> probe_shard{static_cast<std::size_t>(-1)};
  std::atomic<bool> probe_ran{false};
  pool.submit(
      [&pool, &probe_shard, &probe_ran] {
        probe_shard.store(pool.current_shard(), std::memory_order_relaxed);
        probe_ran.store(true, std::memory_order_release);
      },
      SubmitHint::remote, 0);
  spin_until(probe_ran);
  hostage.free();

  EXPECT_EQ(probe_shard.load(std::memory_order_relaxed), 1u);
  EXPECT_GE(pool.stats().cross_shard_wakes, 1u);
}

// Bulk submissions carry the shard name for the whole batch: with every
// worker hostage, 32 jobs routed to shard 1 pile up on shard 1's injection
// queue (its traced high-water mark) while shard 0's stays at its hostage.
TEST(SchedShard, SubmitNRoutesWholeBatchToNamedShard) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 2;
  cfg.name = "shard-bulk";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);
  wait_all_parked(pool, 2);

  obs::TraceSession session({.events_per_thread = 1u << 14});
  Hostage h0;
  Hostage h1;
  h0.submit_to(pool, 0);
  h1.submit_to(pool, 1);

  constexpr std::size_t kJobs = 32;
  std::atomic<std::size_t> ran{0};
  pool.submit_n(
      kJobs,
      [&ran](std::size_t) {
        return [&ran] { ran.fetch_add(1, std::memory_order_release); };
      },
      SubmitHint::remote, 1);
  // Nobody is free to pop: the batch is still queued, so the high-water
  // marks are a race-free observation of where it landed.
  const auto mid = pool.stats();
  EXPECT_GE(mid.shard(1).injected_high_water, kJobs);
  EXPECT_LE(mid.shard(0).injected_high_water, 2u);

  h0.free();
  h1.free();
  while (ran.load(std::memory_order_acquire) < kJobs) {
    std::this_thread::yield();
  }
  (void)session.end();
}

// Exclusive jobs: the named shard's workers check their own exclusive
// queue first, and a foreign worker drains another domain's exclusive
// queue when that domain is busy (the soft-binding work-conservation
// guarantee nested pj regions rely on).
TEST(SchedShard, ExclusiveJobsPreferButDoNotRequireTheirShard) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 2;
  cfg.name = "shard-excl";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);
  wait_all_parked(pool, 2);

  // Preferred path: whole pool parked, exclusive named for shard 1 wakes
  // and runs on the shard-1 worker.
  std::atomic<std::size_t> first_shard{static_cast<std::size_t>(-1)};
  std::atomic<bool> first_ran{false};
  pool.submit_exclusive(
      [&pool, &first_shard, &first_ran] {
        first_shard.store(pool.current_shard(), std::memory_order_relaxed);
        first_ran.store(true, std::memory_order_release);
      },
      1);
  spin_until(first_ran);
  EXPECT_EQ(first_shard.load(std::memory_order_relaxed), 1u);

  wait_all_parked(pool, 2);
  // Soft binding: shard 1's worker is hostage, so its exclusive job is
  // drained by the shard-0 worker (woken through the fallback) instead of
  // waiting for a busy domain.
  Hostage hostage;
  hostage.submit_to(pool, 1);
  std::atomic<std::size_t> second_shard{static_cast<std::size_t>(-1)};
  std::atomic<bool> second_ran{false};
  pool.submit_exclusive(
      [&pool, &second_shard, &second_ran] {
        second_shard.store(pool.current_shard(), std::memory_order_relaxed);
        second_ran.store(true, std::memory_order_release);
      },
      1);
  spin_until(second_ran);
  hostage.free();
  EXPECT_EQ(second_shard.load(std::memory_order_relaxed), 0u);
}

TEST(SchedShard, ShardSnapshotsSumToPoolTotals) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 4;
  cfg.name = "shard-sum";
  cfg.shards = 2;
  WorkStealingPool pool(cfg);

  constexpr std::size_t kJobs = 300;
  std::atomic<std::size_t> ran{0};
  pool.submit_n(kJobs, [&ran](std::size_t) {
    return [&ran] { ran.fetch_add(1, std::memory_order_release); };
  });
  while (ran.load(std::memory_order_acquire) < kJobs) {
    std::this_thread::yield();
  }
  const auto s = pool.stats();
  ASSERT_EQ(s.shards.size(), 2u);
  std::uint64_t executed = 0;
  std::uint64_t stolen = 0;
  std::uint64_t local = 0;
  std::uint64_t cross = 0;
  std::uint64_t parked = 0;
  for (const auto& sh : s.shards) {
    executed += sh.executed;
    stolen += sh.stolen;
    local += sh.stolen_local;
    cross += sh.stolen_cross;
    parked += sh.parked;
  }
  EXPECT_EQ(executed, s.executed);
  EXPECT_EQ(stolen, s.stolen);
  EXPECT_EQ(local, s.stolen_shard_local);
  EXPECT_EQ(cross, s.stolen_cross_shard);
  EXPECT_EQ(parked, s.parked);
  EXPECT_EQ(s.stolen, s.stolen_shard_local + s.stolen_cross_shard);
}

// Closing the loop with the machine model: trace a dependence-chain
// workload on a real shards=4 pool, rebuild its DAG, and replay it on a
// sharded 16-core model. Hierarchical dispatch must generate no more
// modeled cross-domain traffic than the shard-oblivious schedule — for
// pure chains it generates none, since a successor's home core is always
// free when it becomes ready — and the real pool's counted cross-shard
// steals stay a small fraction of executed jobs under the same
// chains-stay-local reasoning.
TEST(SchedShard, TracedRunReplaysWithLessCrossTrafficHierarchically) {
  ptask::Runtime rt(ptask::Runtime::Config{.workers = 4, .shards = 4});
  EXPECT_EQ(rt.pool().shard_count(), 4u);

  constexpr std::size_t kChains = 8;
  constexpr std::size_t kLinks = 25;
  obs::TraceSession session({.events_per_thread = 1u << 16});
  {
    std::vector<ptask::TaskID<void>> tails;
    tails.reserve(kChains);
    const auto body = [] {
      volatile std::uint32_t x = 0;
      for (int i = 0; i < 400; ++i) x = x + 1;
    };
    for (std::size_t c = 0; c < kChains; ++c) {
      auto t = ptask::run(rt, body);
      for (std::size_t l = 1; l < kLinks; ++l) {
        t = ptask::run_after(rt, body, t);
      }
      tails.push_back(std::move(t));
    }
    for (auto& t : tails) t.get();
  }
  const obs::TraceDump dump = session.end();
  const obs::RecordedGraph graph = obs::extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), kChains * kLinks);
  ASSERT_EQ(graph.edge_count(), kChains * (kLinks - 1));
  const sim::TaskDag dag = graph.to_dag();

  sim::MachineParams machine{16, 0.0, "replay-16c"};
  machine.shards = 4;
  machine.cross_shard_steal_cost_s = 1e-6;
  machine.hierarchical_dispatch = false;
  const auto oblivious = sim::simulate(dag, machine);
  machine.hierarchical_dispatch = true;
  const auto hierarchical = sim::simulate(dag, machine);

  EXPECT_LE(hierarchical.cross_shard_dispatches,
            oblivious.cross_shard_dispatches);
  // Chains never need to cross: the home core is free the moment the
  // successor becomes ready.
  EXPECT_EQ(hierarchical.cross_shard_dispatches, 0u);
  EXPECT_GE(oblivious.cross_shard_dispatches, 1u);
  // Modeled cross traffic under hierarchical dispatch stays under 10% of
  // tasks (trivially here; the bound is the acceptance gate's shape).
  EXPECT_LE(hierarchical.cross_shard_dispatches * 10, dag.size());
  // Validity anchors still hold on the sharded machine.
  EXPECT_GE(hierarchical.makespan_s, dag.critical_path() - 1e-12);
  EXPECT_GE(hierarchical.makespan_s, dag.total_work() / 16.0 - 1e-12);

  // The counted side of the cross-check: continuation stealing keeps each
  // chain on its worker, so real cross-shard raids are a race artifact,
  // not the transport. Generous margin — the property is "rare", not a
  // timing threshold.
  const auto s = rt.pool().stats();
  EXPECT_LE(s.stolen_cross_shard * 4, s.executed);
}

}  // namespace
}  // namespace parc::sched
