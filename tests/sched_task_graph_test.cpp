// Coverage for the pool-aware task-graph primitives (sched/task_graph.hpp):
// JoinLatch waiting (helping and parked), the sense-reversing Barrier —
// including the team-size > worker-count regression the old cv-barrier
// would deadlock on — deep dependsOn chains, and a randomized traced DAG
// whose recorded critical path is cross-checked against the sim machine
// model (T1 = serial makespan, T∞ = unbounded-core makespan).
#include "sched/task_graph.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "ptask/ptask.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

namespace parc::sched {
namespace {

TEST(JoinLatch, StartsIdle) {
  JoinLatch j;
  EXPECT_TRUE(j.idle());
  EXPECT_EQ(j.outstanding(), 0u);
  j.wait(nullptr);  // must not block
}

TEST(JoinLatch, HelpingWaitDrainsPoolWork) {
  WorkStealingPool pool({2, 4, "jl-help"});
  JoinLatch j;
  std::atomic<int> ran{0};
  constexpr int kJobs = 64;
  j.add(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&ran, &j] {
      ran.fetch_add(1, std::memory_order_relaxed);
      j.done();
    });
  }
  j.wait(&pool);
  EXPECT_EQ(ran.load(), kJobs);
  EXPECT_TRUE(j.idle());
}

TEST(JoinLatch, ParkedWaitWakesOnLastDone) {
  JoinLatch j;
  j.add(3);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    j.wait(nullptr);
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  j.done();
  j.done();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  j.done();
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(JoinLatch, DoneNRetiresABatchInOneStep) {
  JoinLatch j;
  j.add(8);
  j.done_n(3);
  EXPECT_EQ(j.outstanding(), 5u);
  EXPECT_FALSE(j.idle());
  j.done_n(0);  // no-op by contract
  EXPECT_EQ(j.outstanding(), 5u);
  j.done_n(5);
  EXPECT_TRUE(j.idle());
  j.wait(nullptr);  // must not block
}

TEST(JoinLatch, DoneNWakesParkedWaiterOnExactZero) {
  JoinLatch j;
  j.add(4);
  std::atomic<bool> woke{false};
  std::thread waiter([&j, &woke] {
    j.wait(nullptr);  // no pool: parks on the count word
    woke.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(woke.load(std::memory_order_acquire));
  j.done_n(4);  // one RMW, one notify for the whole batch
  waiter.join();
  EXPECT_TRUE(woke.load(std::memory_order_acquire));
}

TEST(JoinLatch, ReusableAcrossCycles) {
  JoinLatch j;
  for (int cycle = 0; cycle < 3; ++cycle) {
    j.add(1);
    std::thread t([&j] { j.done(); });
    j.wait(nullptr);
    t.join();
    EXPECT_TRUE(j.idle());
  }
}

TEST(JoinLatch, IdleObserverSurvivesFinisherRace) {
  // The pj Team pattern: a waiter polls idle() (helping path) and destroys
  // the latch the instant it sees zero, while the finishing task's done()
  // may still be mid-return. done()'s last object access must be the count
  // fetch_sub itself — TSan caught the original epoch-word version touching
  // freed Team stack here. Many quick rounds to hand TSan/ASan the window.
  for (int round = 0; round < 200; ++round) {
    auto latch = std::make_unique<JoinLatch>();
    latch->add();
    std::thread finisher([&latch] { latch->done(); });
    while (!latch->idle()) {
    }
    latch.reset();  // destroy as Team's region-end teardown would
    finisher.join();
  }
}

TEST(JoinLatch, ErrorCaptureFirstWins) {
  JoinLatch j;
  EXPECT_FALSE(j.has_error());
  j.capture_error(std::make_exception_ptr(std::runtime_error("first")));
  j.capture_error(std::make_exception_ptr(std::runtime_error("second")));
  try {
    std::rethrow_exception(j.take_error());
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "first");
  }
  EXPECT_EQ(j.take_error(), nullptr);
}

// The satellite regression: more barrier parties than pool workers. Each
// arrival occupies a worker (or queues behind one); with the old cv-based
// barrier the workers would block forever while the remaining arrivals sat
// unstarted in the queues. The new barrier's arrivals help the pool, so
// queued arrivals run nested on the waiting workers and the barrier trips.
TEST(Barrier, TeamLargerThanWorkerCountCompletes) {
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kParties = 6;  // > kWorkers: the regression shape
  WorkStealingPool pool({kWorkers, 4, "barrier-regress"});
  Barrier barrier(kParties, &pool);
  std::atomic<std::size_t> through{0};
  JoinLatch join;
  join.add(kParties);
  for (std::size_t i = 0; i < kParties; ++i) {
    pool.submit([&] {
      barrier.arrive_and_wait();
      through.fetch_add(1, std::memory_order_relaxed);
      join.done();
    });
  }
  join.wait(&pool);
  EXPECT_EQ(through.load(), kParties);
}

// Same shape without an explicitly configured pool: a pooled arrival must
// auto-detect its own pool and help (pj teams construct their barrier with
// no pool handle).
TEST(Barrier, PooledArrivalHelpsWithoutConfiguredPool) {
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kParties = 5;
  WorkStealingPool pool({kWorkers, 4, "barrier-auto"});
  Barrier barrier(kParties);  // no help pool configured
  std::atomic<std::size_t> through{0};
  JoinLatch join;
  join.add(kParties);
  for (std::size_t i = 0; i < kParties; ++i) {
    pool.submit([&] {
      barrier.arrive_and_wait();
      through.fetch_add(1, std::memory_order_relaxed);
      join.done();
    });
  }
  join.wait(&pool);
  EXPECT_EQ(through.load(), kParties);
}

TEST(Barrier, PlainThreadsParkAndCycle) {
  constexpr std::size_t kParties = 4;
  constexpr int kCycles = 25;
  Barrier barrier(kParties);
  EXPECT_EQ(barrier.parties(), kParties);
  std::atomic<int> checksum{0};
  std::vector<std::thread> threads;
  threads.reserve(kParties);
  for (std::size_t t = 0; t < kParties; ++t) {
    threads.emplace_back([&] {
      for (int c = 0; c < kCycles; ++c) {
        checksum.fetch_add(1, std::memory_order_relaxed);
        barrier.arrive_and_wait();
        // Between barriers every thread must observe the full cycle's adds.
        EXPECT_GE(checksum.load(std::memory_order_acquire),
                  static_cast<int>(kParties) * (c + 1));
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(checksum.load(), static_cast<int>(kParties) * kCycles);
}

TEST(TaskLatch, WrapperStillWaitsByHelping) {
  WorkStealingPool pool({2, 4, "tl-wrap"});
  TaskLatch latch(pool);
  std::atomic<int> ran{0};
  latch.add(8);
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      ran.fetch_add(1, std::memory_order_relaxed);
      latch.done();
    });
  }
  latch.wait();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_TRUE(latch.idle());
}

// Deep dependsOn chain through the rebased ptask graph: each link fires the
// next through the completion core's dependent notification; 10k links
// would blow the stack if dependence firing ever recursed inline.
TEST(TaskGraphDeep, TenThousandLinkChainCompletesInOrder) {
  auto& rt = ptask::Runtime::global();
  constexpr int kLinks = 10'000;
  std::atomic<int> last{-1};
  std::atomic<bool> ordered{true};
  auto tail = ptask::run(rt, [&] {
    if (last.exchange(0, std::memory_order_acq_rel) != -1) {
      ordered.store(false, std::memory_order_relaxed);
    }
  });
  for (int i = 1; i < kLinks; ++i) {
    tail = ptask::run_after(
        rt,
        [&last, &ordered, i] {
          if (last.exchange(i, std::memory_order_acq_rel) != i - 1) {
            ordered.store(false, std::memory_order_relaxed);
          }
        },
        tail);
  }
  tail.get();
  EXPECT_TRUE(ordered.load());
  EXPECT_EQ(last.load(), kLinks - 1);
}

/// Busy-spin for roughly `us` microseconds (scheduler-visible cost).
void spin_for_us(double us) {
  Stopwatch sw;
  while (sw.elapsed_us() < us) {
  }
}

// Satellite 3's randomized DAG join: build a random layered dependence
// graph with ptask::run_after, trace it, and cross-check the recorded
// critical path against the sim machine model — T1 must match the serial
// makespan and T∞ the unbounded-core makespan, exactly as in the curated
// obs_roundtrip graphs but on an adversarial random shape.
TEST(TaskGraphRandomDag, TracedJoinMatchesSimCriticalPath) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  auto& rt = ptask::Runtime::global();
  Rng rng(20260806);
  constexpr std::size_t kLayers = 5;
  constexpr std::size_t kWidth = 4;

  obs::TraceDump dump;
  std::size_t spawned = 0;
  {
    obs::TraceSession session;
    std::vector<ptask::TaskID<void>> all;
    std::vector<ptask::TaskID<void>> prev;
    std::vector<ptask::TaskID<void>> layer;
    for (std::size_t l = 0; l < kLayers; ++l) {
      layer.clear();
      const std::size_t width = 1 + rng.below(kWidth);
      for (std::size_t w = 0; w < width; ++w) {
        const double cost_us = 200.0 + static_cast<double>(rng.below(400));
        auto body = [cost_us] { spin_for_us(cost_us); };
        if (prev.empty()) {
          layer.push_back(ptask::run(rt, body));
        } else {
          // One or two random predecessors from the previous layer.
          const auto& d1 = prev[rng.below(prev.size())];
          const auto& d2 = prev[rng.below(prev.size())];
          if (rng.below(2) == 0) {
            layer.push_back(ptask::run_after(rt, body, d1));
          } else {
            layer.push_back(ptask::run_after(rt, body, d1, d2));
          }
        }
        all.push_back(layer.back());
        ++spawned;
      }
      prev = layer;
    }
    // Quiesce every spawned task — an early-layer task with no successor is
    // not ordered before the final layer, and the recorded graph must be
    // complete before the session ends.
    for (auto& t : all) t.get();
    dump = session.end();
  }

  const obs::RecordedGraph graph = obs::extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), spawned);
  for (const obs::RecordedTask& t : graph.tasks()) {
    EXPECT_TRUE(t.started);
    EXPECT_TRUE(t.finished);
  }
  const obs::CriticalPathReport report = obs::critical_path(graph);
  EXPECT_EQ(report.tasks, spawned);
  EXPECT_GT(report.work_s, 0.0);
  EXPECT_GT(report.span_s, 0.0);
  EXPECT_LE(report.span_s, report.work_s + 1e-12);

  const sim::TaskDag dag = graph.to_dag();
  const auto serial = sim::simulate(dag, {1, 0.0, "p1"});
  EXPECT_NEAR(serial.makespan_s, report.work_s, report.work_s * 1e-9);
  const auto wide = sim::simulate(dag, {64, 0.0, "pinf"});
  EXPECT_NEAR(wide.makespan_s, report.span_s, report.span_s * 1e-9);
  sim::SweepOptions sweep_opts;
  sweep_opts.cores = {2, 4, 8};
  for (const sim::SweepPoint& point : sim::sweep(dag, sweep_opts).points) {
    EXPECT_LE(point.outcome.speedup,
              report.speedup_bound(point.cores) * (1.0 + 1e-9))
        << "cores = " << point.cores;
  }
}

}  // namespace
}  // namespace parc::sched
