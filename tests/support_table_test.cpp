// Table rendering and CSV emission tests.
#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "support/strings.hpp"

namespace parc {
namespace {

TEST(Table, PrintsTitleColumnsAndRows) {
  Table t("Demo Table");
  t.columns({"name", "value"});
  t.add_row().cell("alpha").cell(1.5, 1);
  t.add_row().cell("beta").cell(std::uint64_t{1234567});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo Table"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("1,234,567"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("csv");
  t.columns({"a", "b"});
  t.row({"plain", "has,comma"});
  t.row({"has\"quote", "x"});
  std::ostringstream os;
  t.write_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, RowWidthMismatchAborts) {
  Table t("bad");
  t.columns({"only"});
  EXPECT_DEATH(t.row({"a", "b"}), "row width");
}

TEST(Strings, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567890), "1,234,567,890");
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(1024ull * 1024 * 3), "3.0 MiB");
}

TEST(Strings, FormatDurationPicksUnit) {
  EXPECT_EQ(format_duration_ns(500), "500 ns");
  EXPECT_EQ(format_duration_ns(2500), "2.50 us");
  EXPECT_EQ(format_duration_ns(3.2e6), "3.20 ms");
  EXPECT_EQ(format_duration_ns(7.5e9), "7.50 s");
}

TEST(Strings, PadHelpers) {
  EXPECT_EQ(pad_left("ab", 5), "   ab");
  EXPECT_EQ(pad_right("ab", 5), "ab   ");
  EXPECT_EQ(pad_left("abcdef", 3), "abcdef");  // never truncates
}

TEST(Strings, SplitAndJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join(parts, ","), "a,b,,c");
}

TEST(Strings, MiscHelpers) {
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("benchmark", "bench"));
  EXPECT_FALSE(starts_with("ben", "bench"));
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
}

}  // namespace
}  // namespace parc
