// Molecular dynamics: force symmetry, momentum conservation, seq/parallel
// agreement. Stencil: convergence, boundary invariance, bit-identical
// parallel sweeps.
#include "kernels/moldyn.hpp"
#include "kernels/stencil.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace parc::kernels {
namespace {

TEST(MolDyn, SystemConstructionIsDeterministic) {
  const auto a = make_md_system(64, 42);
  const auto b = make_md_system(64, 42);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.pos[i].x, b.pos[i].x);
    ASSERT_DOUBLE_EQ(a.vel[i].z, b.vel[i].z);
  }
}

TEST(MolDyn, InitialMomentumIsZero) {
  const auto sys = make_md_system(100, 7);
  EXPECT_LT(net_momentum(sys), 1e-10);
}

TEST(MolDyn, ParticlesInsideBox) {
  const auto sys = make_md_system(125, 9);
  for (const auto& p : sys.pos) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, sys.box);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, sys.box);
    EXPECT_GE(p.z, 0.0);
    EXPECT_LT(p.z, sys.box);
  }
}

TEST(MolDyn, ForcesSumToZero) {
  auto sys = make_md_system(80, 3);
  compute_forces_seq(sys);
  Vec3 net{};
  for (const auto& f : sys.force) net += f;
  // Newton's third law with minimum image: total force ~0.
  EXPECT_LT(std::sqrt(net.norm2()), 1e-8);
}

TEST(MolDyn, ParallelForcesMatchSequential) {
  auto a = make_md_system(96, 5);
  auto b = make_md_system(96, 5);
  const double pe_seq = compute_forces_seq(a);
  for (std::size_t threads : {1u, 2u, 4u}) {
    const double pe_par = compute_forces_pj(b, threads);
    EXPECT_NEAR(pe_par, pe_seq, std::abs(pe_seq) * 1e-12 + 1e-12);
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_NEAR(a.force[i].x, b.force[i].x, 1e-10);
      ASSERT_NEAR(a.force[i].y, b.force[i].y, 1e-10);
      ASSERT_NEAR(a.force[i].z, b.force[i].z, 1e-10);
    }
  }
}

TEST(MolDyn, MomentumConservedOverRun) {
  auto sys = make_md_system(64, 11);
  compute_forces_seq(sys);
  for (int step = 0; step < 50; ++step) {
    verlet_step(sys, [](MdSystem& s) { return compute_forces_seq(s); });
  }
  EXPECT_LT(net_momentum(sys), 1e-8);
}

TEST(MolDyn, EnergyApproximatelyConservedForSmallDt) {
  auto sys = make_md_system(64, 13);
  sys.dt = 0.0005;
  const double pe0 = compute_forces_seq(sys);
  const double e0 = pe0 + kinetic_energy(sys);
  double pe = pe0;
  for (int step = 0; step < 100; ++step) {
    pe = verlet_step(sys, [](MdSystem& s) { return compute_forces_seq(s); });
  }
  const double e1 = pe + kinetic_energy(sys);
  // Velocity Verlet drifts slowly; 100 small steps keep |ΔE| well under 5%.
  EXPECT_LT(std::abs(e1 - e0), 0.05 * std::abs(e0) + 0.5);
}

TEST(MolDyn, ParallelRunMatchesSequentialRun) {
  auto a = make_md_system(48, 17);
  auto b = make_md_system(48, 17);
  compute_forces_seq(a);
  compute_forces_pj(b, 4);
  for (int step = 0; step < 10; ++step) {
    verlet_step(a, [](MdSystem& s) { return compute_forces_seq(s); });
    verlet_step(b, [](MdSystem& s) { return compute_forces_pj(s, 4); });
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_NEAR(a.pos[i].x, b.pos[i].x, 1e-8);
    ASSERT_NEAR(a.vel[i].y, b.vel[i].y, 1e-8);
  }
}

TEST(Stencil, HeatGridHasHotTopEdge) {
  const auto g = make_heat_grid(10, 10, 100.0);
  for (std::size_t c = 0; c < 10; ++c) EXPECT_DOUBLE_EQ(g.at(0, c), 100.0);
  EXPECT_DOUBLE_EQ(g.at(5, 5), 0.0);
}

TEST(Stencil, ResidualDecreasesWithIterations) {
  auto g1 = make_heat_grid(32, 32);
  auto g2 = make_heat_grid(32, 32);
  const double r_few = jacobi_seq(g1, 5);
  const double r_many = jacobi_seq(g2, 200);
  EXPECT_LT(r_many, r_few);
}

TEST(Stencil, HeatFlowsDownward) {
  auto g = make_heat_grid(16, 16, 100.0);
  jacobi_seq(g, 300);
  // Interior near the hot edge is warmer than near the cold edge.
  EXPECT_GT(g.at(1, 8), g.at(14, 8));
  EXPECT_GT(g.at(1, 8), 1.0);
}

TEST(Stencil, BoundaryUntouched) {
  auto g = make_heat_grid(16, 16, 100.0);
  jacobi_seq(g, 100);
  for (std::size_t c = 0; c < 16; ++c) {
    EXPECT_DOUBLE_EQ(g.at(0, c), 100.0);
    EXPECT_DOUBLE_EQ(g.at(15, c), 0.0);
  }
}

TEST(Stencil, ParallelBitIdenticalToSequential) {
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (const auto schedule : {pj::Schedule::kStatic, pj::Schedule::kDynamic,
                                pj::Schedule::kGuided}) {
      auto a = make_heat_grid(24, 40);
      auto b = make_heat_grid(24, 40);
      const double ra = jacobi_seq(a, 50);
      const double rb = jacobi_pj(b, 50, threads, {schedule, 2});
      ASSERT_DOUBLE_EQ(ra, rb);
      for (std::size_t i = 0; i < a.cells.size(); ++i) {
        ASSERT_DOUBLE_EQ(a.cells[i], b.cells[i]);
      }
    }
  }
}

}  // namespace
}  // namespace parc::kernels
