// The obs↔sim round trip: trace a real ptask dependence graph, extract the
// recorded DAG, replay it on the deterministic machine model, and check the
// critical-path analyzer against the simulator — T1 must equal the P=1
// makespan and T∞ the makespan with unbounded cores (zero overheads), which
// is what "the exporter emits the exact format sim::machine consumes" means
// operationally.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>

#include "obs/obs.hpp"
#include "pj/pj.hpp"
#include "ptask/ptask.hpp"
#include "support/clock.hpp"

namespace parc::obs {
namespace {

/// Busy-spin for roughly `us` microseconds: measurable, scheduler-visible
/// cost that does not depend on sleep granularity.
void spin_for_us(double us) {
  Stopwatch sw;
  while (sw.elapsed_us() < us) {
  }
}

TEST(ObsRoundTrip, DiamondGraphSurvivesExtractReplayAnalysis) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  auto& rt = ptask::Runtime::global();
  TraceDump dump;
  {
    TraceSession session;
    //      a
    //     / \.
    //    b   c
    //     \ /
    //      d
    auto a = ptask::run(rt, [] { spin_for_us(2000); });
    auto b = ptask::run_after(rt, [] { spin_for_us(4000); }, a);
    auto c = ptask::run_after(rt, [] { spin_for_us(4000); }, a);
    auto d = ptask::run_after(rt, [] { spin_for_us(2000); }, b, c);
    d.wait();
    dump = session.end();
  }

  const RecordedGraph graph = extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), 4u);
  ASSERT_EQ(graph.edge_count(), 4u);
  for (const RecordedTask& t : graph.tasks()) {
    EXPECT_TRUE(t.started);
    EXPECT_TRUE(t.finished);
    EXPECT_GT(t.cost_s(), 0.0);
  }
  // Start-time order is topological: a first, d last.
  EXPECT_GE(graph.tasks()[3].start_ns, graph.tasks()[0].finish_ns);

  const CriticalPathReport report = critical_path(graph);
  EXPECT_EQ(report.tasks, 4u);
  EXPECT_EQ(report.edges, 4u);
  double sum = 0.0;
  for (const RecordedTask& t : graph.tasks()) sum += t.cost_s();
  EXPECT_DOUBLE_EQ(report.work_s, sum);
  // The span follows the a → max(b, c) → d chain; every cost is ≥ its spin
  // budget, so the span must be at least 2+4+2 ms and below the total work.
  EXPECT_GE(report.span_s, 0.008 - 1e-9);
  EXPECT_LT(report.span_s, report.work_s);
  EXPECT_GT(report.parallelism(), 1.0);

  // Replay on the machine model. P=1: the makespan is exactly the work.
  const sim::TaskDag dag = graph.to_dag();
  ASSERT_EQ(dag.size(), 4u);
  const auto serial = sim::simulate(dag, {1, 0.0, "p1"});
  EXPECT_NEAR(serial.makespan_s, report.work_s, report.work_s * 1e-9);
  // P ≥ graph width: the makespan collapses to the span.
  const auto wide = sim::simulate(dag, {64, 0.0, "pinf"});
  EXPECT_NEAR(wide.makespan_s, report.span_s, report.span_s * 1e-9);
  // The analyzer's span must agree with the DAG's own longest path.
  EXPECT_NEAR(dag.critical_path(), report.span_s, report.span_s * 1e-9);

  // Work/span laws: the simulated speedup never exceeds the analyzer's
  // bound at any core count.
  sim::SweepOptions sweep_opts;
  sweep_opts.cores = {1, 2, 3, 8};
  for (const sim::SweepPoint& point : sim::sweep(dag, sweep_opts).points) {
    EXPECT_LE(point.outcome.speedup,
              report.speedup_bound(point.cores) * (1.0 + 1e-9))
        << "cores = " << point.cores;
  }
}

TEST(ObsRoundTrip, DagTextDumpMirrorsToDag) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  auto& rt = ptask::Runtime::global();
  TraceDump dump;
  {
    TraceSession session;
    auto a = ptask::run(rt, [] { spin_for_us(500); });
    auto b = ptask::run_after(rt, [] { spin_for_us(500); }, a);
    b.wait();
    dump = session.end();
  }
  const RecordedGraph graph = extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), 2u);
  std::ostringstream os;
  graph.write(os);
  const std::string text = os.str();
  // Header + one line per task, with task 1 depending on task 0.
  EXPECT_NE(text.find("2 tasks, 1 edges"), std::string::npos);
  EXPECT_NE(text.find("task 0 cost_s"), std::string::npos);
  EXPECT_NE(text.find("deps 1 0"), std::string::npos);
}

TEST(ObsRoundTrip, MultiTaskBodiesRecordAsChildrenOfTheAggregate) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  auto& rt = ptask::Runtime::global();
  constexpr std::size_t kBodies = 6;
  TraceDump dump;
  {
    TraceSession session;
    auto agg = ptask::run_multi(rt, kBodies,
                                [](std::size_t) { spin_for_us(300); });
    agg.wait();
    dump = session.end();
  }
  const RecordedGraph graph = extract_task_graph(dump);
  // The aggregate handle plus one task per body.
  ASSERT_EQ(graph.task_count(), kBodies + 1);
  std::uint64_t agg_id = 0;
  for (const RecordedTask& t : graph.tasks()) {
    if (!t.started) agg_id = t.id;  // the aggregate never runs a body
  }
  ASSERT_NE(agg_id, 0u);
  std::size_t children = 0;
  for (const RecordedTask& t : graph.tasks()) {
    if (t.parent == agg_id) {
      ++children;
      EXPECT_TRUE(t.started);
      EXPECT_TRUE(t.finished);
    }
  }
  EXPECT_EQ(children, kBodies);
  // An unstarted aggregate contributes zero cost, so replay still works.
  const auto out = sim::simulate(graph.to_dag(), {2, 0.0, "p2"});
  EXPECT_GT(out.makespan_s, 0.0);
}

TEST(ObsRoundTrip, PjTaskloopTraceReplaysThroughTheSimulator) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  // The pj runtime records flat (edge-free) task sets; the round trip is
  // extract → fork-join replay, and the bound check still applies.
  TraceDump dump;
  {
    TraceSession session;
    std::atomic<int> sum{0};
    pj::region(2, [&](pj::Team& team) {
      team.master([&] {
        pj::taskloop(
            team, 0, 64,
            [&](std::int64_t) {
              spin_for_us(100);
              sum.fetch_add(1, std::memory_order_relaxed);
            },
            /*num_tasks=*/8);
      });
      team.barrier();
    });
    EXPECT_EQ(sum.load(), 64);
    dump = session.end();
  }
  EXPECT_GT(dump.count_kind(EventKind::kRegionBegin), 0u);
  EXPECT_GT(dump.count_kind(EventKind::kBarrierBegin), 0u);
  const RecordedGraph graph = extract_task_graph(dump);
  ASSERT_EQ(graph.task_count(), 8u);
  EXPECT_TRUE((graph.edge_count() == 0));
  const CriticalPathReport report = critical_path(graph);
  // Independent chunks: the span is the single most expensive chunk.
  double max_cost = 0.0;
  for (const RecordedTask& t : graph.tasks()) {
    max_cost = std::max(max_cost, t.cost_s());
  }
  EXPECT_DOUBLE_EQ(report.span_s, max_cost);
  const auto wide = sim::simulate(graph.to_dag(), {8, 0.0, "p8"});
  EXPECT_NEAR(wide.makespan_s, report.span_s, report.span_s * 1e-9);
}

}  // namespace
}  // namespace parc::obs
