// Continuation stealing: where does newly-ready dependent work actually
// run? These tests pin down the SubmitHint routing contract —
//  - a dependsOn successor released by a pool worker lands on that worker's
//    own deque (and, with no siblings, runs on that very thread);
//  - non-worker completers (the main thread here, the EDT in production)
//    fall back to the injection queue, counted;
//  - the hinted-local soft cap spills to injection without losing or
//    double-running a single cell;
//  - deep continuation cascades trampoline through the worker deque instead
//    of growing the completing thread's stack;
//  - 10k-deep dependsOn chains stay clean under TSan (this suite is in the
//    tier-1 TSan gate).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "ptask/ptask.hpp"
#include "sched/completion.hpp"
#include "sched/thread_pool.hpp"

namespace parc::sched {
namespace {

// A single-worker runtime makes the hand-off deterministic: there is no
// sibling to steal the successor, and the asserting thread never helps (it
// polls an atomic instead of calling get(), which would let the main thread
// run pool jobs and race the worker for the successor).
TEST(SchedLocality, DependentRunsOnCompletingWorkerThread) {
  ptask::Runtime rt(ptask::Runtime::Config{.workers = 1});
  const auto base = rt.pool().stats();
  std::atomic<bool> release{false};
  std::atomic<std::thread::id> pred_tid{};
  std::atomic<std::thread::id> succ_tid{};
  // Gate the predecessor until the successor is fully wired: its completion
  // must happen on the worker, after run_after registered the dependence.
  auto a = ptask::run(rt, [&] {
    pred_tid.store(std::this_thread::get_id(), std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  auto b = ptask::run_after(
      rt,
      [&] {
        succ_tid.store(std::this_thread::get_id(), std::memory_order_release);
      },
      a);
  release.store(true, std::memory_order_release);
  while (succ_tid.load(std::memory_order_acquire) == std::thread::id{}) {
    std::this_thread::yield();
  }
  b.get();
  EXPECT_EQ(pred_tid.load(), succ_tid.load());
  const auto s = rt.pool().stats();
  EXPECT_GE(s.continuation_local_pushed, base.continuation_local_pushed + 1);
  EXPECT_EQ(s.continuation_inject_fallback, base.continuation_inject_fallback);
}

TEST(SchedLocality, NonWorkerLocalHintFallsBackToInjection) {
  WorkStealingPool pool({1, 4, "loc-fallback"});
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true, std::memory_order_release); },
              SubmitHint::local);  // main thread: not a worker
  while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
  const auto s = pool.stats();
  EXPECT_EQ(s.continuation_inject_fallback, 1u);
  EXPECT_EQ(s.continuation_local_pushed, 0u);
}

// The ptask-level spelling of the same fallback: when every dependence is
// already satisfied at run_after time, the successor is released by the
// spawning (main) thread, not a worker.
TEST(SchedLocality, ReleaseFromNonWorkerFallsBackToInjection) {
  ptask::Runtime rt(ptask::Runtime::Config{.workers = 1});
  const auto base = rt.pool().stats();
  auto a = ptask::run(rt, [] {});
  a.get();
  auto b = ptask::run_after(rt, [] {}, a);
  b.get();
  const auto s = rt.pool().stats();
  EXPECT_GE(s.continuation_inject_fallback,
            base.continuation_inject_fallback + 1);
}

TEST(SchedLocality, RemoteHintFromWorkerBypassesOwnDeque) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 1;
  cfg.name = "loc-remote";
  WorkStealingPool pool(cfg);
  std::atomic<bool> ran{false};
  pool.submit([&pool, &ran] {
    pool.submit([&ran] { ran.store(true, std::memory_order_release); },
                SubmitHint::remote);
  });
  while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
  const auto s = pool.stats();
  // The remote hint must not touch the continuation-stealing counters; the
  // job still runs (the worker drains its own injection queue).
  EXPECT_EQ(s.continuation_local_pushed, 0u);
  EXPECT_EQ(s.deque_overflows, 0u);
}

TEST(SchedLocality, DequeOverflowSpillsWithoutLosingOrDoublingJobs) {
  WorkStealingPool::Config cfg;
  cfg.num_threads = 1;
  cfg.name = "loc-overflow";
  cfg.local_queue_soft_cap = 16;
  WorkStealingPool pool(cfg);
  constexpr int kJobs = 400;
  std::atomic<int> ran{0};
  pool.submit([&pool, &ran] {
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  SubmitHint::local);
    }
  });
  while (ran.load(std::memory_order_acquire) < kJobs) {
    std::this_thread::yield();
  }
  // Settle before the exact-count check: a double-run would land shortly
  // after the threshold is crossed.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(std::memory_order_acquire), kJobs);
  const auto s = pool.stats();
  EXPECT_GE(s.deque_overflows, 1u);
  EXPECT_GE(s.continuation_local_pushed, 1u);
  EXPECT_EQ(s.continuation_local_pushed + s.deque_overflows,
            static_cast<std::uint64_t>(kJobs));
}

// Chained completions on a worker must not recurse unboundedly: past the
// inline depth budget, nodes hop through the worker's deque (each hop
// restarts at depth zero). 4096 links would overflow a thread stack if
// every link nested a complete() frame.
TEST(SchedLocality, ContinuationCascadeTrampolinesThroughWorkerDeque) {
  WorkStealingPool pool({1, 4, "loc-tramp"});
  constexpr std::size_t kDepth = 4096;
  std::vector<std::unique_ptr<Completion>> chain(kDepth);
  for (auto& c : chain) c = std::make_unique<Completion>();
  for (std::size_t i = 0; i + 1 < kDepth; ++i) {
    chain[i]->add_continuation(
        [next = chain[i + 1].get()]() noexcept { next->complete(); });
  }
  std::atomic<bool> done{false};
  chain[kDepth - 1]->add_continuation(
      [&done]() noexcept { done.store(true, std::memory_order_release); });
  pool.submit([&chain] { chain[0]->complete(); });
  // The chain is linear, so the final node running implies every earlier
  // node (including every handed-off hop) already ran.
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  // Destruction safety: an inline-nested complete() frame does its final
  // state-word RMW only after the frames it nested return, so `done` alone
  // does not mean every complete() has exited. wait() returning does (the
  // RMW is complete()'s last access) — wait on every link before the
  // vector goes out of scope.
  for (auto& c : chain) c->wait();
  const auto s = pool.stats();
  EXPECT_GE(s.continuation_local_pushed, 1u);
}

TEST(SchedLocality, DeepDependsOnChainCompletesExactlyOnce) {
  ptask::Runtime rt(ptask::Runtime::Config{.workers = 2});
  constexpr int kDepth = 10000;
  std::atomic<int> count{0};
  auto tick = [&count] { count.fetch_add(1, std::memory_order_relaxed); };
  auto t = ptask::run(rt, tick);
  for (int i = 1; i < kDepth; ++i) {
    t = ptask::run_after(rt, tick, t);
  }
  t.get();
  EXPECT_EQ(count.load(), kDepth);
}

TEST(SchedLocality, HandOffDecisionsEmitTraceEvents) {
  if (!obs::kTraceCompiled) GTEST_SKIP() << "built with PARC_TRACE=OFF";
  WorkStealingPool pool({1, 4, "loc-trace"});
  obs::TraceSession session;
  std::atomic<int> ran{0};
  pool.submit([&pool, &ran] {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                SubmitHint::local);
  });
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
              SubmitHint::local);  // non-worker: fallback
  while (ran.load(std::memory_order_acquire) < 2) std::this_thread::yield();
  const obs::TraceDump dump = session.end();
  std::size_t local_pushes = 0;
  std::size_t fallbacks = 0;
  for (const auto& track : dump.tracks) {
    for (const auto& e : track.events) {
      if (e.kind == obs::EventKind::kContLocalPush) ++local_pushes;
      if (e.kind == obs::EventKind::kContInjectFallback) ++fallbacks;
    }
  }
  EXPECT_GE(local_pushes, 1u);
  EXPECT_GE(fallbacks, 1u);
}

}  // namespace
}  // namespace parc::sched
