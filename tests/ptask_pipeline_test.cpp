// Pipelines and progress channels: ordering, type transforms, overlap,
// end-of-stream propagation, EDT batch delivery.
#include "ptask/ptask.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "gui/event_loop.hpp"

namespace parc::ptask {
namespace {

Runtime& test_runtime() {
  static Runtime rt(Runtime::Config{4, {}});
  return rt;
}

TEST(Pipeline, SingleStageMapsAllElements) {
  std::vector<int> inputs{1, 2, 3, 4, 5};
  auto t = pipeline(test_runtime(), inputs, [](int x) { return x * 10; });
  EXPECT_EQ(t.get(), (std::vector<int>{10, 20, 30, 40, 50}));
}

TEST(Pipeline, MultiStageChainsTypes) {
  std::vector<int> inputs{1, 2, 3};
  auto t = pipeline(
      test_runtime(), inputs, [](int x) { return x + 1; },
      [](int x) { return std::to_string(x * 2); },
      [](std::string s) { return s + "!"; });
  EXPECT_EQ(t.get(), (std::vector<std::string>{"4!", "6!", "8!"}));
}

TEST(Pipeline, PreservesOrderForManyElements) {
  std::vector<int> inputs;
  for (int i = 0; i < 2000; ++i) inputs.push_back(i);
  auto t = pipeline(
      test_runtime(), inputs, [](int x) { return x * 3; },
      [](int x) { return x + 1; });
  const auto& out = t.get();
  ASSERT_EQ(out.size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i * 3 + 1);
  }
}

TEST(Pipeline, EmptyInputYieldsEmptyOutput) {
  auto t = pipeline(test_runtime(), std::vector<int>{},
                    [](int x) { return x; });
  EXPECT_TRUE(t.get().empty());
}

TEST(Pipeline, StagesOverlapInTime) {
  // Record which elements stage 2 has seen before stage 1 finished all of
  // them: with true pipelining, stage 2 starts before stage 1 drains.
  std::atomic<int> stage1_done{0};
  std::atomic<int> stage2_started_early{0};
  std::vector<int> inputs;
  for (int i = 0; i < 64; ++i) inputs.push_back(i);
  auto t = pipeline(
      test_runtime(), inputs,
      [&](int x) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        stage1_done.fetch_add(1);
        return x;
      },
      [&](int x) {
        if (stage1_done.load() < 64) stage2_started_early.fetch_add(1);
        return x;
      });
  t.get();
  EXPECT_GT(stage2_started_early.load(), 0);
}

TEST(Pipeline, DeepPipelineOnSmallPool) {
  // 6 stages on a 2-worker runtime: helping waits keep it from deadlocking.
  Runtime rt(Runtime::Config{2, {}});
  std::vector<int> inputs{1, 2, 3, 4};
  auto t = pipeline(
      rt, inputs, [](int x) { return x + 1; }, [](int x) { return x + 1; },
      [](int x) { return x + 1; }, [](int x) { return x + 1; },
      [](int x) { return x + 1; }, [](int x) { return x + 1; });
  EXPECT_EQ(t.get(), (std::vector<int>{7, 8, 9, 10}));
}

TEST(Pipeline, MoveOnlyFriendlyPayloads) {
  std::vector<std::string> inputs{"a", "bb", "ccc"};
  auto t = pipeline(test_runtime(), inputs,
                    [](std::string s) { return s.size(); });
  EXPECT_EQ(t.get(), (std::vector<std::size_t>{1, 2, 3}));
}

TEST(ProgressChannel, DeliversEverythingInBatches) {
  gui::EventLoop loop;
  Runtime rt(Runtime::Config{2, {}});
  rt.set_event_dispatcher(loop.dispatcher());
  std::vector<int> received;  // EDT-confined
  std::atomic<int> batches{0};
  ProgressChannel<int> channel(rt, [&](std::vector<int> batch) {
    batches.fetch_add(1);
    for (int v : batch) received.push_back(v);
  });
  auto task = run(rt, [&] {
    for (int i = 0; i < 500; ++i) channel.publish(i);
  });
  task.get();
  loop.drain();
  loop.post_and_wait([] {});
  ASSERT_EQ(received.size(), 500u);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i);  // order preserved
  }
  // Coalescing: far fewer batches than items.
  EXPECT_LT(batches.load(), 500);
  EXPECT_GE(batches.load(), 1);
  rt.set_event_dispatcher(nullptr);
}

TEST(ProgressChannel, WorksWithoutDispatcher) {
  Runtime rt(Runtime::Config{2, {}});
  std::atomic<int> total{0};
  ProgressChannel<int> channel(rt, [&](std::vector<int> batch) {
    for (int v : batch) total.fetch_add(v);
  });
  channel.publish(1);
  channel.publish(2);
  channel.publish(3);
  EXPECT_EQ(total.load(), 6);  // inline delivery, immediate
}

TEST(ProgressChannel, ConcurrentPublishersLoseNothing) {
  gui::EventLoop loop;
  Runtime rt(Runtime::Config{4, {}});
  rt.set_event_dispatcher(loop.dispatcher());
  std::atomic<long> sum{0};
  ProgressChannel<int> channel(rt, [&](std::vector<int> batch) {
    for (int v : batch) sum.fetch_add(v);
  });
  auto t = run_multi(rt, 8, [&](std::size_t) {
    for (int i = 1; i <= 250; ++i) channel.publish(i);
  });
  t.get();
  loop.drain();
  loop.post_and_wait([] {});
  EXPECT_EQ(sum.load(), 8L * 250 * 251 / 2);
  rt.set_event_dispatcher(nullptr);
}

}  // namespace
}  // namespace parc::ptask
