// Quicksort variants: correctness against std::sort over every input shape,
// strategy and size, as a parameterized sweep, plus edge cases.
#include "kernels/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

namespace parc::kernels {
namespace {

ptask::Runtime& test_runtime() {
  static ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  return rt;
}

enum class Strategy { kSeq, kPTask, kPj, kThreads };

const char* strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kSeq: return "seq";
    case Strategy::kPTask: return "ptask";
    case Strategy::kPj: return "pj";
    case Strategy::kThreads: return "threads";
  }
  return "?";
}

const char* kind_name(InputKind k) {
  switch (k) {
    case InputKind::kUniform: return "uniform";
    case InputKind::kSorted: return "sorted";
    case InputKind::kReverse: return "reverse";
    case InputKind::kFewUniques: return "fewuniq";
    case InputKind::kConstant: return "constant";
  }
  return "?";
}

void run_sort(Strategy s, std::vector<std::int64_t>& data) {
  switch (s) {
    case Strategy::kSeq: quicksort_seq(data); break;
    case Strategy::kPTask: quicksort_ptask(data, test_runtime(), 512); break;
    case Strategy::kPj: quicksort_pj(data, 3, 512); break;
    case Strategy::kThreads: quicksort_threads(data, 3, 512); break;
  }
}

using SortParam = std::tuple<Strategy, InputKind, std::size_t>;

class QuicksortSweep : public ::testing::TestWithParam<SortParam> {};

TEST_P(QuicksortSweep, AgreesWithStdSort) {
  const auto strategy = std::get<0>(GetParam());
  const auto kind = std::get<1>(GetParam());
  const auto n = std::get<2>(GetParam());
  auto data = make_sort_input(n, kind, 0xC0FFEE + n);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  run_sort(strategy, data);
  ASSERT_EQ(data, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesKindsSizes, QuicksortSweep,
    ::testing::Combine(
        ::testing::Values(Strategy::kSeq, Strategy::kPTask, Strategy::kPj,
                          Strategy::kThreads),
        ::testing::Values(InputKind::kUniform, InputKind::kSorted,
                          InputKind::kReverse, InputKind::kFewUniques,
                          InputKind::kConstant),
        ::testing::Values<std::size_t>(0, 1, 2, 33, 1000, 50000)),
    [](const ::testing::TestParamInfo<SortParam>& info) {
      return std::string(strategy_name(std::get<0>(info.param))) + "_" +
             kind_name(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Quicksort, PTaskTinyCutoffStillCorrect) {
  auto data = make_sort_input(20000, InputKind::kUniform, 5);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  quicksort_ptask(data, test_runtime(), 64);
  EXPECT_EQ(data, expected);
}

TEST(Quicksort, StableAcrossRepeatedRuns) {
  // Same seed, same data, every strategy: deterministic results.
  for (int rep = 0; rep < 3; ++rep) {
    auto data = make_sort_input(5000, InputKind::kFewUniques, 77);
    quicksort_ptask(data, test_runtime(), 256);
    auto expected = make_sort_input(5000, InputKind::kFewUniques, 77);
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(data, expected);
  }
}

TEST(MakeSortInput, ShapesAreAsLabelled) {
  const auto sorted = make_sort_input(100, InputKind::kSorted, 1);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  const auto reverse = make_sort_input(100, InputKind::kReverse, 1);
  EXPECT_TRUE(std::is_sorted(reverse.rbegin(), reverse.rend()));
  const auto constant = make_sort_input(100, InputKind::kConstant, 1);
  EXPECT_TRUE(std::all_of(constant.begin(), constant.end(),
                          [](std::int64_t v) { return v == 42; }));
  const auto few = make_sort_input(1000, InputKind::kFewUniques, 1);
  std::set<std::int64_t> uniq(few.begin(), few.end());
  EXPECT_LE(uniq.size(), 16u);
}

}  // namespace
}  // namespace parc::kernels
