// WorkStealingPool: submission from inside/outside, helping waits,
// recursion, shutdown draining, stats plumbing.
#include "sched/task_graph.hpp"
#include "sched/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace parc::sched {
namespace {

TEST(WorkStealingPool, RunsASubmittedJob) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  std::atomic<bool> ran{false};
  pool.submit([&] { ran.store(true); });
  pool.help_while([&] { return !ran.load(); });
  EXPECT_TRUE(ran.load());
}

TEST(WorkStealingPool, RunsManyJobsFromExternalThread) {
  WorkStealingPool pool(WorkStealingPool::Config{4, 4, "t"});
  constexpr int kJobs = 5000;
  std::atomic<int> count{0};
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.help_while([&] { return count.load() < kJobs; });
  EXPECT_EQ(count.load(), kJobs);
}

TEST(WorkStealingPool, WorkerSubmitsGoToLocalDeque) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  std::atomic<int> count{0};
  std::atomic<bool> spawned{false};
  pool.submit([&] {
    // Runs on a worker: nested submits use the local deque.
    for (int i = 0; i < 100; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
    spawned.store(true);
  });
  pool.help_while([&] { return !spawned.load() || count.load() < 100; });
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealingPool, RecursiveForkJoinDoesNotDeadlock) {
  // Fibonacci via nested jobs with helping waits: the classic test that a
  // bounded pool + blocking waits would deadlock on, but helping must pass.
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});

  std::function<int(int)> fib = [&](int n) -> int {
    if (n < 2) return n;
    std::atomic<bool> left_done{false};
    int left = 0;
    pool.submit([&] {
      left = fib(n - 1);
      left_done.store(true, std::memory_order_release);
    });
    const int right = fib(n - 2);
    pool.help_while(
        [&] { return !left_done.load(std::memory_order_acquire); });
    return left + right;
  };

  EXPECT_EQ(fib(16), 987);
}

TEST(WorkStealingPool, CurrentPoolIdentifiesWorkers) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  EXPECT_EQ(WorkStealingPool::current_pool(), nullptr);
  EXPECT_EQ(WorkStealingPool::current_worker(), -1);
  std::atomic<bool> checked{false};
  std::atomic<int> seen_worker{-2};
  std::atomic<WorkStealingPool*> seen_pool{nullptr};
  pool.submit([&] {
    seen_pool.store(WorkStealingPool::current_pool());
    seen_worker.store(WorkStealingPool::current_worker());
    checked.store(true);
  });
  // Deliberately NOT help_while: helping would run the job on this external
  // thread, where current_pool() is rightly nullptr.
  while (!checked.load()) std::this_thread::yield();
  EXPECT_EQ(seen_pool.load(), &pool);
  EXPECT_GE(seen_worker.load(), 0);
  EXPECT_LT(seen_worker.load(), 2);
}

TEST(WorkStealingPool, TryRunOneReturnsFalseWhenIdle) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  // Give workers a moment to drain anything; then an external try_run_one
  // on an idle pool must return false.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pool.try_run_one());
}

TEST(WorkStealingPool, DestructorDrainsPendingJobs) {
  std::atomic<int> count{0};
  {
    WorkStealingPool pool(WorkStealingPool::Config{1, 4, "t"});
    // A slow first job so later ones are still queued at destruction time.
    pool.submit([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      count.fetch_add(1);
    });
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 51);
}

TEST(WorkStealingPool, StatsCountExecutions) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  std::atomic<int> count{0};
  constexpr int kJobs = 200;
  for (int i = 0; i < kJobs; ++i) pool.submit([&] { count.fetch_add(1); });
  pool.help_while([&] { return count.load() < kJobs; });
  const auto stats = pool.stats();
  // help_while may have run some on the external thread; executed covers
  // worker-run jobs only, so executed + helped >= kJobs is the invariant.
  EXPECT_GE(stats.executed + stats.helped, static_cast<std::uint64_t>(kJobs));
}

TEST(WorkStealingPool, ParkAndWakeCycleSurvives) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 2, "t"});
  for (int round = 0; round < 20; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let them park
    std::atomic<bool> ran{false};
    pool.submit([&] { ran.store(true); });
    pool.help_while([&] { return !ran.load(); });
    EXPECT_TRUE(ran.load());
  }
}

TEST(TaskLatch, WaitsForAllCompletions) {
  WorkStealingPool pool(WorkStealingPool::Config{2, 4, "t"});
  TaskLatch latch(pool);
  std::atomic<int> done{0};
  constexpr int kJobs = 100;
  latch.add(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    pool.submit([&] {
      done.fetch_add(1);
      latch.done();
    });
  }
  latch.wait();
  EXPECT_EQ(done.load(), kJobs);
  EXPECT_TRUE(latch.idle());
}

TEST(DefaultConcurrency, AtLeastTwo) {
  EXPECT_GE(default_concurrency(), 2u);
}

}  // namespace
}  // namespace parc::sched
