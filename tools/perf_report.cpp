// perf_report — scaling report from a recorded trace, no re-run needed.
//
//   $ kernels_tour --trace tour.json
//   $ perf_report --trace tour.json            # human-readable report
//   $ perf_report --trace tour.json --json     # machine-readable, CI gate
//
// Ingests any --trace output this repo produces (kernels/examples task
// traces, bench_serve request traces, bench_flow channel traces — the mode
// is auto-detected from the event kinds, or forced with --tasks / --serve /
// --flow). The trace is rebuilt into its DAG, swept through sim::sweep at
// the training core counts, and fitted with obs::model; the report states
// the fitted scaling law per pattern, the saturation point, and — because a
// fitted curve that is not checked is just an opinion — the prediction
// error against ground-truth sim::simulate at held-out core counts never
// used for fitting. Exit status is non-zero when that error exceeds
// --max-error (default 0.15), which is what CI gates on.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "args.hpp"
#include "flow/replay.hpp"
#include "obs/obs.hpp"
#include "serve/replay.hpp"
#include "sim/machine.hpp"
#include "support/table.hpp"

namespace {

using namespace parc;

enum class Mode { kAuto, kTasks, kServe, kFlow };

struct Options {
  std::string trace_path;
  bool json = false;
  Mode mode = Mode::kAuto;
  double max_error = 0.15;
  obs::model::ModelOptions model;
};

std::vector<std::size_t> parse_cores(const char* arg, const char* flag) {
  std::vector<std::size_t> cores;
  const char* p = arg;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0) {
      std::fprintf(stderr, "perf_report: %s wants a comma list of positive "
                   "integers, got '%s'\n", flag, arg);
      std::exit(2);
    }
    cores.push_back(static_cast<std::size_t>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (cores.empty()) {
    std::fprintf(stderr, "perf_report: %s list is empty\n", flag);
    std::exit(2);
  }
  return cores;
}

Options parse_options(int argc, char** argv) {
  Options opts;
  // Shared spellings first (--trace/--json/--threads strip themselves).
  const bench::Args shared = bench::parse(argc, argv);
  opts.trace_path = shared.trace_path;
  opts.json = shared.json;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_report: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--tasks") == 0) {
      opts.mode = Mode::kTasks;
    } else if (std::strcmp(arg, "--serve") == 0) {
      opts.mode = Mode::kServe;
    } else if (std::strcmp(arg, "--flow") == 0) {
      opts.mode = Mode::kFlow;
    } else if (std::strcmp(arg, "--train") == 0) {
      opts.model.train_cores = parse_cores(value("--train"), "--train");
    } else if (std::strcmp(arg, "--holdout") == 0) {
      opts.model.holdout_cores = parse_cores(value("--holdout"), "--holdout");
    } else if (std::strcmp(arg, "--max-error") == 0) {
      opts.max_error = std::strtod(value("--max-error"), nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: perf_report --trace <file.json> [--json]\n"
                   "                   [--tasks|--serve|--flow]\n"
                   "                   [--train a,b,...] [--holdout a,b,...]\n"
                   "                   [--max-error 0.15]\n");
      std::exit(2);
    }
  }
  if (opts.trace_path.empty()) {
    std::fprintf(stderr, "perf_report: --trace <file.json> is required\n");
    std::exit(2);
  }
  return opts;
}

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kServe: return "serve";
    case Mode::kFlow:  return "flow";
    default:           return "tasks";
  }
}

void print_json_escaped(std::FILE* os, const std::string& s) {
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') std::fputc('\\', os);
    std::fputc(ch, os);
  }
}

/// Everything both output formats need about one fitted model + its check.
struct Report {
  Mode mode = Mode::kTasks;
  std::size_t tasks = 0;
  std::size_t edges = 0;
  double work_s = 0.0;
  double span_s = 0.0;
  obs::model::ScalingModel total;
  std::vector<obs::model::HoldoutPoint> holdout;
  // Task mode only: pattern structure.
  std::vector<obs::model::PatternModel> patterns;
  std::vector<std::vector<std::size_t>> phases;
  double composed_rel_rmse = 0.0;
  // Serve mode only: latency what-if.
  struct P99Point { std::size_t cores = 0; double p99_ms = 0.0; };
  std::vector<P99Point> p99;

  [[nodiscard]] double max_holdout_error() const {
    double worst = 0.0;
    for (const auto& h : holdout) worst = std::max(worst, h.rel_error);
    return worst;
  }
  /// Held-out core counts predicted within the tolerance.
  [[nodiscard]] std::size_t holdout_within(double tol) const {
    std::size_t n = 0;
    for (const auto& h : holdout) n += h.rel_error <= tol ? 1 : 0;
    return n;
  }
  /// The report gate: the model must land within tolerance at two or more
  /// held-out core counts. A max-error gate would make the tool flaky on
  /// traces recorded under load, where one staircase point can miss while
  /// the rest of the curve is nailed.
  [[nodiscard]] bool holdout_ok(double tol) const {
    return holdout_within(tol) >= 2;
  }
};

Report build_report(const obs::TraceDump& dump, const Options& opts) {
  Report r;
  r.mode = opts.mode;
  if (r.mode == Mode::kAuto) {
    if (dump.count_kind(obs::EventKind::kServeArrive) > 0) {
      r.mode = Mode::kServe;
    } else if (dump.count_kind(obs::EventKind::kChanPush) > 0) {
      r.mode = Mode::kFlow;
    } else {
      r.mode = Mode::kTasks;
    }
  }

  if (r.mode == Mode::kTasks) {
    const obs::RecordedGraph graph = obs::extract_task_graph(dump);
    if (graph.task_count() == 0) {
      std::fprintf(stderr, "perf_report: no task events in %s (is this a "
                   "serve/flow trace? try --serve / --flow)\n",
                   opts.trace_path.c_str());
      std::exit(2);
    }
    const obs::model::ProgramModel pm =
        obs::model::fit_program(graph, opts.model);
    r.tasks = graph.task_count();
    r.edges = graph.edge_count();
    const sim::TaskDag dag = graph.to_dag();
    r.work_s = dag.total_work();
    r.span_s = dag.critical_path();
    r.total = pm.total;
    r.holdout = pm.holdout;
    r.patterns = pm.patterns;
    r.phases = pm.phases;
    r.composed_rel_rmse = pm.composed_rel_rmse;
    return r;
  }

  // serve / flow: one replay DAG, one monolithic fit.
  sim::TaskDag dag;
  serve::ReplayDag serve_replay;
  if (r.mode == Mode::kServe) {
    serve_replay = serve::build_serve_dag(dump);
    dag = serve_replay.dag;
    if (serve_replay.arrivals == 0) {
      std::fprintf(stderr, "perf_report: no kServeArrive events in %s\n",
                   opts.trace_path.c_str());
      std::exit(2);
    }
  } else {
    flow::FlowReplay flow_replay = flow::build_flow_dag(dump);
    dag = std::move(flow_replay.dag);
    if (flow_replay.pushes == 0) {
      std::fprintf(stderr, "perf_report: no kChanPush events in %s\n",
                   opts.trace_path.c_str());
      std::exit(2);
    }
  }
  r.tasks = dag.size();
  r.work_s = dag.total_work();
  r.span_s = dag.critical_path();
  const sim::SweepOptions sweep_opts{opts.model.train_cores,
                                     opts.model.machine};
  r.total = obs::model::fit(sim::sweep(dag, sweep_opts), opts.model.fit);
  r.holdout = obs::model::cross_check(r.total, dag, opts.model.holdout_cores,
                                      opts.model.machine);
  if (r.mode == Mode::kServe) {
    for (const std::size_t cores :
         {std::size_t{2}, std::size_t{4}, std::size_t{8}, std::size_t{16},
          std::size_t{32}, std::size_t{64}}) {
      sim::MachineParams m = opts.model.machine;
      m.cores = cores;
      const std::vector<double> lats =
          serve::replay_latencies(serve_replay, m);
      if (lats.empty()) break;
      r.p99.push_back(Report::P99Point{
          cores, lats[lats.size() * 99 / 100] * 1e3});
    }
  }
  return r;
}

void print_human(const Report& r, const Options& opts) {
  std::printf("perf_report: %s (%s trace)\n", opts.trace_path.c_str(),
              mode_name(r.mode));
  std::printf("  %zu tasks, %zu edges, work %.6f s, span %.6f s, "
              "parallelism %.1f\n\n",
              r.tasks, r.edges, r.work_s, r.span_s,
              r.span_s > 0.0 ? r.work_s / r.span_s : 0.0);

  std::printf("fitted model    t(p) = %s\n", r.total.formula().c_str());
  std::printf("  cv rel rmse   %.3f   (train %.3f over %zu points)\n",
              r.total.cv_rel_rmse, r.total.train_rel_rmse,
              r.total.train_points);
  std::printf("  saturation    P = %zu  (doubling cores past this gains "
              "<5%%)\n", r.total.saturation_p());
  std::printf("  speedup       p=4: %.2f   p=16: %.2f   p=64: %.2f\n\n",
              r.total.speedup_at(4), r.total.speedup_at(16),
              r.total.speedup_at(64));

  if (!r.patterns.empty()) {
    Table t("Pattern structure (fitted per dependence component)");
    t.columns({"#", "pattern", "tasks", "work s", "sat P", "model"});
    for (const obs::model::PatternModel& p : r.patterns) {
      t.add_row()
          .cell(static_cast<std::uint64_t>(p.group))
          .cell(obs::pattern_name(p.kind))
          .cell(static_cast<std::uint64_t>(p.tasks))
          .cell(p.work_s, 6)
          .cell(static_cast<std::uint64_t>(
              p.work_s > 0.0 ? p.model.saturation_p() : 1))
          .cell(p.work_s > 0.0 ? p.model.formula() : "-");
    }
    t.print(std::cout);
    std::printf("  %zu sequential phase(s); composed prediction rel rmse "
                "%.3f vs training sweep\n\n",
                r.phases.size(), r.composed_rel_rmse);
  }

  Table h("Cross-check at held-out core counts (never used for fitting)");
  h.columns({"cores", "predicted x", "simulated x", "rel err %"});
  for (const obs::model::HoldoutPoint& p : r.holdout) {
    h.add_row()
        .cell(static_cast<std::uint64_t>(p.cores))
        .cell(p.predicted_speedup, 2)
        .cell(p.simulated_speedup, 2)
        .cell(100.0 * p.rel_error, 1);
  }
  h.print(std::cout);

  if (!r.p99.empty()) {
    Table lat("Predicted request p99 by core count (replay what-if)");
    lat.columns({"cores", "p99 ms"});
    for (const Report::P99Point& p : r.p99) {
      lat.add_row().cell(static_cast<std::uint64_t>(p.cores)).cell(p.p99_ms, 3);
    }
    lat.print(std::cout);
  }

  std::printf(
      "holdout: %zu/%zu core counts within %.0f%% (max error %.1f%%), "
      "gate >=2 within: %s\n",
      r.holdout_within(opts.max_error), r.holdout.size(),
      100.0 * opts.max_error, 100.0 * r.max_holdout_error(),
      r.holdout_ok(opts.max_error) ? "PASS" : "FAIL");
}

void print_json(const Report& r, const Options& opts) {
  std::FILE* os = stdout;
  std::fprintf(os, "{\"tool\": \"perf_report\", \"mode\": \"%s\",\n",
               mode_name(r.mode));
  std::fprintf(os, " \"tasks\": %zu, \"edges\": %zu,\n", r.tasks, r.edges);
  std::fprintf(os, " \"work_s\": %.9g, \"span_s\": %.9g,\n", r.work_s,
               r.span_s);
  std::fprintf(os, " \"model\": {\"formula\": \"");
  print_json_escaped(os, r.total.formula());
  std::fprintf(os, "\", \"cv_rel_rmse\": %.6g, \"saturation_p\": %zu},\n",
               r.total.cv_rel_rmse, r.total.saturation_p());
  std::fprintf(os, " \"patterns\": [");
  for (std::size_t i = 0; i < r.patterns.size(); ++i) {
    const obs::model::PatternModel& p = r.patterns[i];
    std::fprintf(os, "%s\n  {\"kind\": \"%s\", \"tasks\": %zu, "
                 "\"work_s\": %.9g, \"formula\": \"",
                 i == 0 ? "" : ",", obs::pattern_name(p.kind), p.tasks,
                 p.work_s);
    print_json_escaped(os, p.work_s > 0.0 ? p.model.formula() : "-");
    std::fprintf(os, "\"}");
  }
  std::fprintf(os, "],\n \"phases\": %zu,\n \"composed_rel_rmse\": %.6g,\n",
               r.phases.size(), r.composed_rel_rmse);
  std::fprintf(os, " \"holdout\": [");
  for (std::size_t i = 0; i < r.holdout.size(); ++i) {
    const obs::model::HoldoutPoint& p = r.holdout[i];
    std::fprintf(os, "%s\n  {\"cores\": %zu, \"predicted_speedup\": %.6g, "
                 "\"simulated_speedup\": %.6g, \"rel_error\": %.6g}",
                 i == 0 ? "" : ",", p.cores, p.predicted_speedup,
                 p.simulated_speedup, p.rel_error);
  }
  std::fprintf(os, "],\n");
  if (!r.p99.empty()) {
    std::fprintf(os, " \"p99_ms_by_cores\": [");
    for (std::size_t i = 0; i < r.p99.size(); ++i) {
      std::fprintf(os, "%s{\"cores\": %zu, \"p99_ms\": %.6g}",
                   i == 0 ? "" : ", ", r.p99[i].cores, r.p99[i].p99_ms);
    }
    std::fprintf(os, "],\n");
  }
  std::fprintf(os,
               " \"max_holdout_error\": %.6g, \"holdout_within\": %zu, "
               "\"holdout_ok\": %s}\n",
               r.max_holdout_error(), r.holdout_within(opts.max_error),
               r.holdout_ok(opts.max_error) ? "true" : "false");
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = parse_options(argc, argv);

  std::ifstream is(opts.trace_path);
  if (!is) {
    std::fprintf(stderr, "perf_report: cannot open %s\n",
                 opts.trace_path.c_str());
    return 2;
  }
  obs::TraceDump dump;
  try {
    dump = obs::read_chrome_trace(is);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "perf_report: %s: %s\n", opts.trace_path.c_str(),
                 ex.what());
    return 2;
  }

  const Report report = build_report(dump, opts);
  if (opts.json) {
    print_json(report, opts);
  } else {
    print_human(report, opts);
  }
  return report.holdout_ok(opts.max_error) ? 0 : 1;
}
