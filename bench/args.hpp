// Shared CLI flags for bench binaries (and anything else that replays the
// same spellings, e.g. tools/perf_report). Every bench used to hand-roll the
// same strip-the-flag loop; parse() centralises it:
//
//   --json           CI smoke mode: deterministic gates only, smaller sizes,
//                    still writes BENCH_<name>.json.
//   --trace <path>   record the run with parc::obs and write a Chrome
//                    trace-event file (requires -DPARC_TRACE=ON).
//   --threads <n>    worker-count override for benches that honour it.
//
// Recognised flags are removed from argv so google-benchmark (or any other
// downstream parser) never sees them; everything else is left in place.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace parc::bench {

struct Args {
  bool json = false;
  std::string trace_path;   ///< empty: tracing off
  std::size_t threads = 0;  ///< 0: bench default

  [[nodiscard]] bool tracing() const { return !trace_path.empty(); }
};

/// Parse and strip the shared flags from argv in place. Exits with status 2
/// on a malformed flag (missing value, non-numeric --threads) — a bench
/// invoked wrongly should fail loudly, not run the wrong experiment.
inline Args parse(int& argc, char** argv) {
  Args args;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      args.trace_path = value("--trace");
    } else if (std::strcmp(arg, "--threads") == 0) {
      char* end = nullptr;
      const unsigned long n = std::strtoul(value("--threads"), &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "%s: --threads needs a positive integer\n",
                     argv[0]);
        std::exit(2);
      }
      args.threads = static_cast<std::size_t>(n);
    } else {
      argv[out++] = argv[i];  // not ours: keep for the next parser
    }
  }
  argc = out;
  return args;
}

}  // namespace parc::bench
