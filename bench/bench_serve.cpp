// bench_serve: a million requests through the serving stack.
//
// Phases:
//   1. Closed-loop calibration — W requests in flight, no admission gates:
//      measures the server's capacity (requests/second) on this host.
//   2. Open-loop sweep at 0.3×, 0.7× and 1.5× capacity — the classic
//      latency/throughput story: flat latency below the knee, queueing
//      blow-up and (counted, bounded) shedding past it. Latency is
//      measured from the *scheduled* arrival, so overload is charged
//      honestly. Every level asserts the exact conservation identities.
//   3. A traced run (zero-drop asserted) rebuilt as a task DAG and
//      replayed on simulated machines at P ∈ {4, 64, 256} cores — the
//      1-core container's way of showing where the serving knee sits.
//
// --json: CI smoke mode. Smaller request counts, same assertion gates
// (conservation, p99 envelope at low load, zero-drop trace, replay knee),
// writes BENCH_serve.json.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"
#include "serve/replay.hpp"
#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"
#include "support/table.hpp"

namespace parc::serve {
namespace {

/// The sweep's serving configuration (shared by every phase so capacity
/// calibrates the same server the levels load).
ServerConfig base_config() {
  ServerConfig cfg;
  cfg.pool.name = "serve";
  cfg.pool.shards = 0;  // auto: workers / 4
  cfg.cache_capacity = 1ull << 14;
  cfg.cache_stripes = 16;
  cfg.batch_max = 32;
  cfg.backend.img_source_dim = 16;
  cfg.backend.img_thumb_dim = 8;
  cfg.backend.text_chunk_bytes = 2048;
  cfg.backend.net_spin_iters = 2000;
  cfg.backend.pool.acquire_timeout_s = 10.0;  // backends shed at admission,
                                              // not inside the pool
  return cfg;
}

WorkloadConfig base_workload(std::size_t requests) {
  WorkloadConfig w;
  w.requests = requests;
  w.keyspace = 1ull << 16;
  w.key_skew = 1.1;
  w.seed = 20260808;
  return w;
}

void check_conservation(const Server::Stats& s, const char* where) {
  PARC_CHECK_MSG(s.in_flight == 0, where);
  PARC_CHECK_MSG(s.offered == s.admitted + s.shed_rate + s.shed_queue +
                                  s.shed_deadline,
                 where);
  PARC_CHECK_MSG(s.admitted == s.completed + s.failed, where);
  PARC_CHECK_MSG(s.admitted == s.hits_inline + s.negative_hits +
                                   s.coalesced + s.executed,
                 where);
  // Every ingress cache miss became a leader (executed) or a waiter.
  PARC_CHECK_MSG(s.cache.hits == s.hits_inline + s.negative_hits, where);
  PARC_CHECK_MSG(s.cache.misses == s.executed + s.coalesced, where);
  // Per-priority splits sum to the aggregates, exactly.
  std::uint64_t offered_by = 0, admitted_by = 0, shed_by = 0;
  for (std::size_t p = 0; p < kPriorities; ++p) {
    offered_by += s.offered_by[p];
    admitted_by += s.admitted_by[p];
    shed_by += s.shed_by[p];
  }
  PARC_CHECK_MSG(offered_by == s.offered, where);
  PARC_CHECK_MSG(admitted_by == s.admitted, where);
  PARC_CHECK_MSG(shed_by == s.shed_rate + s.shed_queue + s.shed_deadline,
                 where);
}

struct LevelResult {
  double offered_rate = 0.0;
  double throughput = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
  double hit_rate = 0.0;
  double shed_rate = 0.0;
  Server::Stats stats;
};

/// Closed loop: keep `window` requests in flight until `n` completed.
double calibrate_capacity(std::size_t n, std::size_t window) {
  ServerConfig cfg = base_config();
  cfg.admission = AdmissionConfig{0.0, 256.0, 0};  // no gates
  Server server(cfg);
  WorkloadConfig w = base_workload(n);
  w.arrival_rate = 0.0;  // closed loop
  LoadGenerator gen(w);
  server.start();
  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    while (server.in_flight() >= window) {
      server.flush();  // partial batches must reach the pool before waiting
      server.pool().help_while(
          [&] { return server.in_flight() >= window; });
    }
    Request r = gen.next();
    r.arrival_s = server.now_s();
    (void)server.offer(r);
  }
  server.drain();
  const double elapsed = sw.elapsed_s();
  check_conservation(server.stats(), "closed-loop calibration");
  PARC_CHECK(server.stats().completed == n);
  return static_cast<double>(n) / elapsed;
}

/// Open loop at `rate` requests/s with admission gates on.
LevelResult run_level(std::size_t n, double rate, double admit_rate) {
  ServerConfig cfg = base_config();
  cfg.admission = AdmissionConfig{admit_rate, 256.0, 8192};
  Server server(cfg);
  WorkloadConfig w = base_workload(n);
  w.arrival_rate = rate;
  LoadGenerator gen(w);
  server.start();
  Stopwatch sw;
  for (std::size_t i = 0; i < n; ++i) {
    const Request r = gen.next();
    if (server.now_s() < r.arrival_s) {
      // Ahead of schedule: don't let sealed-but-partial batches go stale
      // while we wait (batch under pressure, flush when idle).
      server.flush();
      while (server.now_s() < r.arrival_s) {
      }
    }
    (void)server.offer(r);
  }
  server.drain();
  const double elapsed = sw.elapsed_s();

  LevelResult out;
  out.stats = server.stats();
  check_conservation(out.stats, "open-loop level");
  out.offered_rate = rate;
  out.throughput = static_cast<double>(out.stats.completed) / elapsed;
  const LogHistogram h = server.latency_histogram();
  out.p50_ms = h.p50() * 1e3;
  out.p99_ms = h.p99() * 1e3;
  out.p999_ms = h.p999() * 1e3;
  out.hit_rate = static_cast<double>(out.stats.hits_inline) /
                 static_cast<double>(std::max<std::uint64_t>(
                     1, out.stats.admitted));
  out.shed_rate =
      static_cast<double>(out.stats.shed_rate + out.stats.shed_queue) /
      static_cast<double>(out.stats.offered);
  return out;
}

/// One replicated open-loop run for the degraded-mode sweep: 4 replicas,
/// priority-weighted traffic at 1.3× the admitted rate (so the token
/// ladder sheds — from the low class), optionally under a fault plan.
/// The run is traced: zero drops asserted, and the eject/probe ledger is
/// cross-checked against the router's own counters.
struct DegradedResult {
  Server::Stats stats;
  double p99_ms = 0.0;       ///< all priorities, successful replies
  double p99_high_ms = 0.0;  ///< priority-high replies
  double shed_low_frac = 0.0;
  std::vector<Router::ReplicaSnapshot> replicas;  ///< at end of schedule
  std::uint64_t trace_ejects = 0;
  std::uint64_t trace_probes = 0;
  std::uint64_t trace_events = 0;
};

DegradedResult run_replicated(std::size_t n, double rate, double admit_rate,
                              const FaultPlan& plan, double duration_s) {
  ServerConfig cfg = base_config();
  cfg.admission = AdmissionConfig{admit_rate, 256.0, 8192};
  cfg.router.replicas = 4;
  cfg.router.seed = 7;
  // Backoffs scale with the schedule so a blackout ending at 60% of the
  // run always leaves room for the recovery probe to land and succeed.
  cfg.router.health.probe_backoff_s = duration_s * 0.005;
  cfg.router.health.probe_backoff_max_s = duration_s * 0.02;
  cfg.fault_plan = plan;
  // Negative caching: a hot key that just failed on a dead replica fails
  // fast at the ingress for a short window instead of re-dispatching.
  cfg.negative_ttl_s = duration_s * 0.005;
  Server server(cfg);
  WorkloadConfig w = base_workload(n);
  w.arrival_rate = rate;
  LoadGenerator gen(w);
  obs::TraceSession session(obs::TraceConfig{std::size_t{1} << 20});
  server.start();
  for (std::size_t i = 0; i < n; ++i) {
    const Request r = gen.next();
    if (server.now_s() < r.arrival_s) {
      server.flush();
      while (server.now_s() < r.arrival_s) {
      }
    }
    (void)server.offer(r);
  }
  server.drain();
  const obs::TraceDump dump = session.end();
  PARC_CHECK_MSG(dump.total_dropped() == 0,
                 "degraded-mode run must not drop trace events");

  DegradedResult out;
  out.stats = server.stats();
  check_conservation(out.stats, "degraded-mode run");
  out.p99_ms = server.latency_histogram().p99() * 1e3;
  out.p99_high_ms = server.latency_histogram(Priority::high).p99() * 1e3;
  const std::uint64_t shed_total =
      out.stats.shed_rate + out.stats.shed_queue + out.stats.shed_deadline;
  out.shed_low_frac =
      shed_total == 0
          ? 0.0
          : static_cast<double>(
                out.stats.shed_by[static_cast<std::size_t>(Priority::low)]) /
                static_cast<double>(shed_total);
  out.replicas = server.router().snapshot(duration_s);
  out.trace_ejects = dump.count_kind(obs::EventKind::kEject);
  out.trace_events = dump.count_kind(obs::EventKind::kServeArrive);
  // kProbe arg 0 = routed, 1|2 = settled; count settled verdicts only.
  for (const auto& track : dump.tracks) {
    for (const obs::Event& e : track.events) {
      out.trace_probes +=
          e.kind == obs::EventKind::kProbe && e.arg != 0 ? 1 : 0;
    }
  }
  return out;
}

/// Traced run: pure-img all-miss workload, paced so the replay DAG's
/// parallelism lands between P=4 and P=64 (the saturation knee the
/// simulated sweep must show).
ReplayDag traced_run(std::size_t n, const std::string& trace_path) {
  ServerConfig cfg = base_config();
  cfg.admission = AdmissionConfig{0.0, 256.0, 0};
  // One worker: with more, workers preempt each other (and the pacing
  // ingress) on the container's few cores and the measured exec spans
  // inflate — the simulated machines supply the parallelism, the traced
  // run only has to measure arrival gaps and per-request cost honestly.
  cfg.pool.num_threads = 1;
  cfg.pool.shards = 1;
  // All-miss: unique keys swamp the cache, so every request carries a
  // measured backend execution into the DAG.
  cfg.cache_capacity = 64;
  // Bigger renders (tens of µs) so the pacing gap — exec/32 — stays well
  // above the ingress loop's own cost and the DAG's parallelism actually
  // lands near the target.
  cfg.backend.img_source_dim = 48;

  // Calibrate one img render to pick the pacing gap.
  double exec_s;
  {
    Backend probe(cfg.backend);
    Stopwatch sw;
    for (std::uint64_t k = 0; k < 64; ++k) {
      (void)probe.execute(RequestKind::img, 1'000'000 + k);
    }
    exec_s = sw.elapsed_s() / 64.0;
  }
  // Target DAG parallelism ~16 (arrival gap = exec/16): far enough above
  // P=4 to show near-linear speedup there, far enough below P=64 that both
  // 64 and 256 cores sit past the knee — even when 1-core timesharing
  // inflates the measured exec spans by ~1.5x relative to this probe.
  const double rate = 16.0 / exec_s;

  Server server(cfg);
  WorkloadConfig w = base_workload(n);
  w.arrival_rate = rate;
  w.key_skew = 0.0;
  w.keyspace = 1ull << 40;  // unique keys w.h.p.
  w.weight_img = 1.0;
  w.weight_text = 0.0;
  w.weight_net = 0.0;
  LoadGenerator gen(w);

  // Buffer budget: the ingress thread can end up emitting ~5 events per
  // request (arrive + batch, plus exec/done for every job it drains via
  // help_while on a 1-core box) — 2^19 slots cover 60k requests with room.
  obs::TraceSession session(obs::TraceConfig{std::size_t{1} << 19});
  server.start();
  for (std::size_t i = 0; i < n; ++i) {
    const Request r = gen.next();
    if (server.now_s() < r.arrival_s) {
      server.flush();
      while (server.now_s() < r.arrival_s) {
      }
    }
    (void)server.offer(r);
  }
  server.drain();
  const obs::TraceDump dump = session.end();

  PARC_CHECK_MSG(dump.total_dropped() == 0,
                 "traced serve run must not drop events");
  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    obs::write_chrome_trace(dump, os);
    std::printf("wrote %s (feed it to perf_report --serve)\n",
                trace_path.c_str());
  }
  check_conservation(server.stats(), "traced run");
  ReplayDag replay = build_serve_dag(dump);
  PARC_CHECK(replay.arrivals == n);
  PARC_CHECK_MSG(replay.executed >= n * 99 / 100,
                 "all-miss traced run should execute (nearly) every request");
  return replay;
}

}  // namespace
}  // namespace parc::serve

int main(int argc, char** argv) {
  using namespace parc;
  using namespace parc::serve;

  const bench::Args args = bench::parse(argc, argv);
  const bool json_only = args.json;

  const std::size_t per_level = json_only ? 100000 : 320000;
  const std::size_t calib_n = json_only ? 40000 : 100000;
  const std::size_t traced_n = json_only ? 30000 : 60000;

  // Phase 1: capacity.
  const double capacity = calibrate_capacity(calib_n, 512);
  std::printf("closed-loop capacity: %.0f req/s\n", capacity);

  // Phase 2: the load sweep. The token bucket is set to 1.2× capacity:
  // below the knee it never fires; at 1.5× offered load it sheds the
  // excess deterministically (by schedule, not by wall-clock luck).
  const double admit_rate = 1.2 * capacity;
  const std::vector<double> levels = {0.3, 0.7, 1.5};
  std::vector<LevelResult> results;
  std::uint64_t total_offered = calib_n;
  for (const double level : levels) {
    results.push_back(run_level(per_level, level * capacity, admit_rate));
    total_offered += results.back().stats.offered;
  }

  Table table("Serving a million requests (open loop, measured from "
              "scheduled arrival)");
  table.columns({"load", "offered/s", "served/s", "p50 ms", "p99 ms",
                 "p999 ms", "hit rate", "shed rate"});
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelResult& r = results[i];
    table.add_row()
        .cell(std::to_string(levels[i]).substr(0, 4) + "x cap")
        .cell(r.offered_rate, 0)
        .cell(r.throughput, 0)
        .cell(r.p50_ms, 3)
        .cell(r.p99_ms, 3)
        .cell(r.p999_ms, 3)
        .cell(r.hit_rate, 3)
        .cell(r.shed_rate, 3);
  }
  bench::emit(table);

  // Gates on the sweep's shape.
  PARC_CHECK_MSG(results[0].shed_rate == 0.0,
                 "no shedding below the admission rate");
  PARC_CHECK_MSG(results[2].shed_rate > 0.05,
                 "1.5x capacity must shed a visible fraction");
  PARC_CHECK_MSG(results[0].p99_ms < 50.0,
                 "p99 envelope at 0.3x capacity (50 ms, generous for CI)");
  PARC_CHECK_MSG(results[0].p99_ms <= results[2].p99_ms,
                 "overload latency must not beat light load");

  // Phase 3: traced run + simulated replay.
  const ReplayDag replay = traced_run(traced_n, args.trace_path);
  total_offered += replay.arrivals;
  std::printf("\ntraced run: %llu arrivals, %llu executed, ingress span "
              "%.3f s, exec work %.3f s, DAG parallelism %.1f\n",
              static_cast<unsigned long long>(replay.arrivals),
              static_cast<unsigned long long>(replay.executed),
              replay.ingress_span_s, replay.exec_work_s,
              replay.dag.parallelism());

  Table knee("Serving knee on simulated machines (greedy replay of the "
             "traced run)");
  knee.columns({"cores", "makespan s", "speedup", "efficiency"});
  sim::SweepOptions knee_sweep;
  knee_sweep.cores = {1, 4, 64, 256};
  knee_sweep.machine.name = "sim";
  const sim::SweepTable knee_table = sim::sweep(replay.dag, knee_sweep);
  for (const sim::SweepPoint& point : knee_table.points) {
    knee.add_row()
        .cell(static_cast<double>(point.cores), 0)
        .cell(point.outcome.makespan_s, 4)
        .cell(point.outcome.speedup, 2)
        .cell(point.outcome.efficiency, 3);
  }
  bench::emit(knee);
  const double sp4 = knee_table.speedup_at(4);
  const double sp64 = knee_table.speedup_at(64);
  const double sp256 = knee_table.speedup_at(256);

  PARC_CHECK_MSG(sp4 >= 2.8, "P=4 sits below the knee: near-linear");
  PARC_CHECK_MSG(sp64 >= sp4 * 1.5, "P=64 still gains substantially");
  PARC_CHECK_MSG(sp256 <= sp64 * 1.3,
                 "P=256 is past the knee: offered load binds, not cores");

  // Latency what-if from the same replay: per-request p99 by core count.
  Table lat("Replay p99 by simulated core count (same traced run)");
  lat.columns({"cores", "p99 ms"});
  double p99_4 = 0.0, p99_64 = 0.0;
  for (const std::size_t cores : {std::size_t{4}, std::size_t{64}}) {
    sim::MachineParams m;
    m.cores = cores;
    m.name = "sim-" + std::to_string(cores);
    const std::vector<double> lats = replay_latencies(replay, m);
    PARC_CHECK(!lats.empty());
    const double p99 = lats[lats.size() * 99 / 100] * 1e3;
    lat.add_row().cell(static_cast<double>(cores), 0).cell(p99, 3);
    if (cores == 4) p99_4 = p99;
    if (cores == 64) p99_64 = p99;
  }
  bench::emit(lat);
  PARC_CHECK_MSG(p99_64 <= p99_4 * 1.05,
                 "more simulated cores must not worsen replay p99");

  // Phase 4: degraded-mode sweep — the same replicated server healthy and
  // with 1 of its 4 replicas blacked out for 40% of the schedule. Offered
  // load is 1.3× the admitted rate so the priority ladder sheds (from the
  // low class); the blackout must trigger ejection, then recovery via
  // half-open probes once the window ends, while priority-high p99 stays
  // inside 2× of the healthy run's.
  const std::size_t per_degraded = json_only ? 40000 : 120000;
  const double deg_admit = 0.5 * capacity;
  const double deg_rate = 1.3 * deg_admit;
  const double deg_duration = static_cast<double>(per_degraded) / deg_rate;
  const FaultPlan blackout =
      FaultPlan::blackout(0, 0.2 * deg_duration, 0.6 * deg_duration);
  const DegradedResult healthy = run_replicated(
      per_degraded, deg_rate, deg_admit, FaultPlan{}, deg_duration);
  const DegradedResult degraded = run_replicated(
      per_degraded, deg_rate, deg_admit, blackout, deg_duration);
  total_offered += healthy.stats.offered + degraded.stats.offered;

  Table deg("Degraded mode: 4 replicas, one blacked out for 40% of the "
            "schedule (offered = 1.3x admitted rate)");
  deg.columns({"run", "p99 ms", "p99-high ms", "shed rate", "shed from low",
               "failed", "neg hits", "ejects", "recoveries"});
  const std::pair<const char*, const DegradedResult*> deg_rows[] = {
      {"healthy", &healthy}, {"blackout", &degraded}};
  for (const auto& [name, r] : deg_rows) {
    const auto& s = r->stats;
    deg.add_row()
        .cell(name)
        .cell(r->p99_ms, 3)
        .cell(r->p99_high_ms, 3)
        .cell(static_cast<double>(s.shed_rate + s.shed_queue +
                                  s.shed_deadline) /
                  static_cast<double>(s.offered),
              3)
        .cell(r->shed_low_frac, 3)
        .cell(static_cast<double>(s.failed), 0)
        .cell(static_cast<double>(s.negative_hits), 0)
        .cell(static_cast<double>(s.router.ejections), 0)
        .cell(static_cast<double>(s.router.recoveries), 0);
  }
  bench::emit(deg);

  // Gates (the ISSUE's degraded-mode acceptance criteria).
  PARC_CHECK_MSG(healthy.stats.router.ejections == 0,
                 "no ejection without a fault plan");
  PARC_CHECK_MSG(healthy.stats.failed == 0,
                 "no failures without a fault plan");
  PARC_CHECK_MSG(degraded.stats.router.ejections >= 1,
                 "the blackout must eject replica 0");
  PARC_CHECK_MSG(degraded.stats.router.recoveries >= 1,
                 "replica 0 must recover via probes after the window");
  PARC_CHECK_MSG(degraded.stats.failed > 0,
                 "pre-ejection traffic into the blackout must fail");
  PARC_CHECK_MSG(degraded.replicas.size() == 4 &&
                     degraded.replicas[0].state == ReplicaState::healthy,
                 "replica 0 must be healthy again at end of schedule");
  const std::uint64_t deg_shed = degraded.stats.shed_rate +
                                 degraded.stats.shed_queue +
                                 degraded.stats.shed_deadline;
  PARC_CHECK_MSG(deg_shed > 0, "1.3x admitted rate must shed");
  PARC_CHECK_MSG(degraded.shed_low_frac >= 0.9,
                 "at least 90% of shedding drawn from the low class");
  PARC_CHECK_MSG(
      degraded.stats.shed_by[static_cast<std::size_t>(Priority::high)] == 0,
      "the reserve ladder must never shed priority-high here");
  PARC_CHECK_MSG(degraded.p99_high_ms <= 2.0 * healthy.p99_high_ms,
                 "degraded priority-high p99 within 2x of healthy");
  if (degraded.trace_events > 0) {
    // Tracing compiled in: the event ledger must match the router.
    PARC_CHECK_MSG(degraded.trace_ejects == degraded.stats.router.ejections,
                   "kEject events == router ejections");
    PARC_CHECK_MSG(degraded.trace_probes == degraded.stats.router.probes,
                   "settled kProbe events == router probes");
  }

  PARC_CHECK_MSG(json_only || total_offered >= 1000000,
                 "the full bench must offer at least a million requests");
  std::printf("\ntotal requests offered: %llu\n",
              static_cast<unsigned long long>(total_offered));
  std::printf("conservation + envelope + zero-drop + knee gates: PASS\n");

  bench::JsonReport report("serve");
  report.config("per_level", std::to_string(per_level))
      .config("capacity_req_s", std::to_string(capacity));
  const char* names[] = {"low", "mid", "over"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    report.add(std::string(names[i]) + "_p50", results[i].p50_ms * 1e6);
    report.add(std::string(names[i]) + "_p99", results[i].p99_ms * 1e6);
    report.add(std::string(names[i]) + "_throughput_req_s",
               results[i].throughput);
    report.add(std::string(names[i]) + "_hit_rate", results[i].hit_rate);
    report.add(std::string(names[i]) + "_shed_rate", results[i].shed_rate);
  }
  report.add("replay_speedup_p4", sp4)
      .add("replay_speedup_p64", sp64)
      .add("replay_speedup_p256", sp256);
  report.add("healthy_p99_high", healthy.p99_high_ms * 1e6)
      .add("degraded_p99_high", degraded.p99_high_ms * 1e6)
      .add("degraded_shed_low_frac", degraded.shed_low_frac)
      .add("degraded_failed", static_cast<double>(degraded.stats.failed))
      .add("degraded_negative_hits",
           static_cast<double>(degraded.stats.negative_hits))
      .add("degraded_ejections",
           static_cast<double>(degraded.stats.router.ejections))
      .add("degraded_recoveries",
           static_cast<double>(degraded.stats.router.recoveries));
  report.write();

  // No google-benchmark micros here: every measurement above is a paced
  // whole-system run, which the micro harness's auto-iteration would only
  // distort.
  (void)argc;
  (void)argv;
  return 0;
}
