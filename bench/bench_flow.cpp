// bench_flow: a million elements through the channel substrate (ISSUE 8).
//
// Phases:
//   1. Pipesort — a streaming mergesort on flow::Pipeline: a run-builder
//      stage sorts fixed-size runs, then a cascade of pair-merge stages
//      (each holding one run, merging it with the next, flush() emitting
//      the leftover) collapses them to a single sorted stream. Every stage
//      is stateful-with-flush, so every stage is a materialized channel
//      boundary and the whole sort runs as a 10-thread dataflow with exact
//      conservation asserted (pushed == popped + dropped == n, output ==
//      std::sort oracle).
//   2. A traced pipesort (16k elements) — zero-drop asserted, per-stage
//      occupancy/blocked-time table printed, kChanPush == kChanPop checked,
//      the trace rebuilt into a task DAG with flow::build_flow_dag and
//      replayed through sim::simulate; full mode also writes the Chrome
//      trace (chan#N occupancy counter tracks) to flow_pipesort_trace.json.
//   3. A live-search feed — a generated text corpus streamed file-by-file
//      through a parallel search stage whose results land on a bounded
//      gui::EventLoop (the "matches appear while the search runs" UX);
//      ground-truth match counts and EventLoop queue conservation asserted.
//
// --json: CI smoke mode. Same phases, same assertion gates (the pipesort
// still moves the full million elements — that *is* the acceptance bar),
// writes BENCH_flow.json.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "flow/flow.hpp"
#include "gui/gui.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"
#include "support/table.hpp"
#include "text/text.hpp"

namespace parc::flow {
namespace {

// ---------------------------------------------------------------------------
// Pipesort stages.
// ---------------------------------------------------------------------------

/// Accumulate `run` elements, sort, emit as one run; flush() the remainder.
struct RunBuilder {
  std::size_t run;
  std::vector<int> acc;

  std::optional<std::vector<int>> operator()(int x) {
    if (acc.capacity() < run) acc.reserve(run);
    acc.push_back(x);
    if (acc.size() < run) return std::nullopt;
    std::sort(acc.begin(), acc.end());
    std::vector<int> out;
    out.swap(acc);
    return out;
  }
  std::optional<std::vector<int>> flush() {
    if (acc.empty()) return std::nullopt;
    std::sort(acc.begin(), acc.end());
    std::vector<int> out;
    out.swap(acc);
    return out;
  }
};

/// Hold one sorted run; merge it with the next and emit. An odd run count
/// leaves one run held, which flush() passes through — so a cascade of
/// these halves the run count per stage.
struct PairMerge {
  std::vector<int> held;
  bool has = false;

  std::optional<std::vector<int>> operator()(std::vector<int> next) {
    if (!has) {
      held = std::move(next);
      has = true;
      return std::nullopt;
    }
    std::vector<int> out;
    out.reserve(held.size() + next.size());
    std::merge(held.begin(), held.end(), next.begin(), next.end(),
               std::back_inserter(out));
    held.clear();
    has = false;
    return out;
  }
  std::optional<std::vector<int>> flush() {
    if (!has) return std::nullopt;
    has = false;
    return std::move(held);
  }
};

StageOptions named(const char* n) {
  StageOptions o;
  o.name = n;
  return o;
}

struct SortRun {
  std::vector<int> sorted;
  double elapsed_s = 0.0;
  ChannelStats source;
  PipelineStats stages;
  std::size_t stage_count = 0;
};

/// Sort `data` through the run-builder + 8-deep pair-merge cascade. Eight
/// merges collapse up to 256 runs, so run_len must satisfy
/// ceil(n / run_len) <= 256.
SortRun pipesort(const std::vector<int>& data, std::size_t run_len) {
  PipelineOptions po;
  po.capacity = 1024;
  po.single_producer = true;
  auto p = pipeline<int>(po)
               .then(stage(RunBuilder{run_len, {}}, named("runs")))
               .then(stage(PairMerge{}, named("merge0")))
               .then(stage(PairMerge{}, named("merge1")))
               .then(stage(PairMerge{}, named("merge2")))
               .then(stage(PairMerge{}, named("merge3")))
               .then(stage(PairMerge{}, named("merge4")))
               .then(stage(PairMerge{}, named("merge5")))
               .then(stage(PairMerge{}, named("merge6")))
               .then(stage(PairMerge{}, named("merge7")))
               .collect();
  Stopwatch sw;
  for (int x : data) {
    PARC_CHECK(p.push(x));
  }
  std::vector<std::vector<int>> runs = p.wait();
  SortRun out;
  out.elapsed_s = sw.elapsed_s();
  out.source = p.source_stats();
  out.stages = p.stats();
  out.stage_count = p.stage_count();

  // Conservation, end to end: the source channel saw every element exactly
  // once, nothing was dropped, and the cascade collapsed to a single run.
  PARC_CHECK_MSG(out.source.pushed == data.size(), "source saw every element");
  PARC_CHECK_MSG(out.source.popped == data.size(), "source fully drained");
  PARC_CHECK_MSG(out.source.dropped == 0, "clean run drops nothing");
  PARC_CHECK_MSG(p.swept_dropped() == 0, "no stragglers after join");
  PARC_CHECK_MSG(runs.size() == 1, "cascade must collapse to one run");
  out.sorted = std::move(runs.front());
  PARC_CHECK_MSG(out.sorted.size() == data.size(),
                 "conservation: every element sorted");
  return out;
}

void print_stage_table(const char* title, const PipelineStats& ps) {
  Table t(title);
  t.columns({"stage", "par", "inbox cap", "high water", "blocked(prod) ms",
             "blocked(cons) ms"});
  for (const StageStats& s : ps.stages) {
    t.add_row()
        .cell(s.name)
        .cell(static_cast<double>(s.parallelism), 0)
        .cell(static_cast<double>(s.input.capacity), 0)
        .cell(static_cast<double>(s.input.high_water), 0)
        .cell(static_cast<double>(s.input.producer_blocked_ns) / 1e6, 1)
        .cell(static_cast<double>(s.input.consumer_blocked_ns) / 1e6, 1);
  }
  bench::emit(t);
}

// ---------------------------------------------------------------------------
// Phase 1+2: the million-element sort, then a traced+replayed small one.
// ---------------------------------------------------------------------------

std::vector<int> make_data(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<int> data(n);
  for (auto& x : data) x = static_cast<int>(rng() & 0x7fffffff);
  return data;
}

double run_pipesort_million(bench::JsonReport& report) {
  constexpr std::size_t kN = 1'000'000;
  constexpr std::size_t kRun = 4096;  // 245 runs -> 8 merge stages collapse
  const std::vector<int> data = make_data(kN, 20260808);

  SortRun r = pipesort(data, kRun);

  std::vector<int> oracle = data;
  std::sort(oracle.begin(), oracle.end());
  PARC_CHECK_MSG(r.sorted == oracle, "pipesort output == std::sort oracle");

  const double melem_s = static_cast<double>(kN) / r.elapsed_s / 1e6;
  std::printf("pipesort: %zu elements, %zu stages, %.3f s (%.2f Melem/s)\n",
              kN, r.stage_count, r.elapsed_s, melem_s);
  print_stage_table("Pipesort per-stage backpressure (1M elements)",
                    r.stages);

  // Throughput envelope: generous for a loaded 1-core CI container — the
  // gate exists to catch order-of-magnitude regressions (a spinning or
  // serialized substrate), not to benchmark the host.
  PARC_CHECK_MSG(melem_s > 0.2, "pipesort throughput envelope (0.2 Melem/s)");
  report.add("pipesort_ns_per_elem", r.elapsed_s * 1e9 / kN);
  return melem_s;
}

void run_traced_replay(bench::JsonReport& report, bool json_only,
                       const std::string& trace_path) {
  constexpr std::size_t kN = 16384;
  constexpr std::size_t kRun = 512;  // 32 runs
  const std::vector<int> data = make_data(kN, 7);

  obs::TraceSession session(obs::TraceConfig{std::size_t{1} << 19});
  SortRun r = pipesort(data, kRun);
  const obs::TraceDump dump = session.end();

  PARC_CHECK_MSG(dump.total_dropped() == 0,
                 "traced pipesort must not drop events");
  const std::size_t pushes = dump.count_kind(obs::EventKind::kChanPush);
  const std::size_t pops = dump.count_kind(obs::EventKind::kChanPop);
  PARC_CHECK_MSG(pushes == pops, "every traced push has its traced pop");

  const FlowReplay replay = build_flow_dag(dump);
  PARC_CHECK(replay.pushes == pushes);
  PARC_CHECK_MSG(replay.channels == 10, "source + 9 stage inboxes");
  std::printf(
      "\ntraced pipesort: %zu push/%zu pop events over %zu channels, "
      "%zu source / %zu stage / %zu sink units\n",
      pushes, pops, replay.channels, replay.source_units, replay.stage_units,
      replay.sink_units);

  Table t("Pipesort replay on simulated machines (traced 16k-element run)");
  t.columns({"cores", "makespan ms", "speedup", "efficiency"});
  sim::SweepOptions sweep_opts;
  sweep_opts.cores = {1, 4, 16};
  sweep_opts.machine.name = "sim";
  const sim::SweepTable table = sim::sweep(replay.dag, sweep_opts);
  for (const sim::SweepPoint& point : table.points) {
    PARC_CHECK(point.outcome.makespan_s > 0.0);
    t.add_row()
        .cell(static_cast<double>(point.cores), 0)
        .cell(point.outcome.makespan_s * 1e3, 3)
        .cell(point.outcome.speedup, 2)
        .cell(point.outcome.efficiency, 3);
  }
  report.add("replay_speedup_p4_x1000", table.speedup_at(4) * 1e3);
  bench::emit(t);

  if (!trace_path.empty()) {
    std::ofstream os(trace_path);
    obs::write_chrome_trace(dump, os);
    std::printf("wrote %s (feed it to perf_report --flow)\n",
                trace_path.c_str());
  } else if (!json_only) {
    std::ofstream os("flow_pipesort_trace.json");
    obs::write_chrome_trace(dump, os);
    std::printf("wrote flow_pipesort_trace.json (chan#N occupancy counter "
                "tracks per stage)\n");
  }
}

// ---------------------------------------------------------------------------
// Phase 3: live-search feed (text corpus -> search stage -> gui EventLoop).
// ---------------------------------------------------------------------------

void run_live_search(bench::JsonReport& report, bool json_only) {
  text::CorpusOptions copts;
  copts.num_files = json_only ? 192 : 512;
  copts.mean_words_per_file = 1500;
  copts.needle = "concurrency";
  const text::GeneratedCorpus gen = text::make_corpus(copts, 20260808);
  const std::size_t total_bytes = gen.corpus.total_bytes();

  gui::EventLoop ui(/*queue_capacity=*/256);
  std::atomic<std::uint64_t> ui_updates{0};
  std::atomic<std::uint64_t> ui_matches{0};

  StageOptions search_opts;
  search_opts.parallelism = 2;
  search_opts.name = "search";
  PipelineOptions po;
  po.capacity = 64;
  po.single_producer = true;
  auto p =
      pipeline<std::size_t>(po)
          .then(stage(
              [&gen, &copts](std::size_t i) {
                const auto matches = text::search_file_literal(
                    gen.corpus.files[i], i, copts.needle);
                return std::pair<std::size_t, std::size_t>(i, matches.size());
              },
              search_opts))
          .for_each([&](std::pair<std::size_t, std::size_t> result) {
            // Blocking post: the bounded EDT queue backpressures the feed
            // instead of dropping result rows.
            ui.post([&ui_updates, &ui_matches, result] {
              ui_updates.fetch_add(1);
              ui_matches.fetch_add(result.second);
            });
          });

  Stopwatch sw;
  for (std::size_t i = 0; i < gen.corpus.files.size(); ++i) {
    PARC_CHECK(p.push(i));
  }
  (void)p.wait();
  ui.drain();
  const double elapsed = sw.elapsed_s();

  // Ground truth: the vocabulary never contains the needle, so the planted
  // occurrences are exactly the matches the feed must deliver to the UI.
  PARC_CHECK_MSG(ui_updates.load() == gen.corpus.files.size(),
                 "one UI update per searched file");
  PARC_CHECK_MSG(ui_matches.load() == gen.needles.size(),
                 "live-search feed delivers exactly the planted matches");
  PARC_CHECK_MSG(ui.overflowed() == 0, "blocking post path never drops");
  const ChannelStats qs = ui.queue_stats();
  PARC_CHECK_MSG(qs.pushed == qs.popped, "EDT queue drained clean");
  PARC_CHECK_MSG(qs.high_water <= qs.capacity, "EDT queue stays bounded");

  const double mb_s = static_cast<double>(total_bytes) / elapsed / 1e6;
  std::printf(
      "\nlive search: %zu files (%.1f MB), %llu matches streamed to the "
      "EDT in %.3f s (%.1f MB/s); EDT queue high water %llu/%zu\n",
      gen.corpus.files.size(), static_cast<double>(total_bytes) / 1e6,
      static_cast<unsigned long long>(ui_matches.load()), elapsed, mb_s,
      static_cast<unsigned long long>(qs.high_water), qs.capacity);
  report.add("livesearch_ns_per_byte",
             elapsed * 1e9 / static_cast<double>(total_bytes));
}

}  // namespace
}  // namespace parc::flow

int main(int argc, char** argv) {
  using namespace parc;

  const bench::Args args = bench::parse(argc, argv);
  const bool json_only = args.json;

  bench::JsonReport report("flow");
  report.config("pipesort_n", "1000000")
      .config("pipesort_run", "4096")
      .config("traced_n", "16384");

  const double melem_s = flow::run_pipesort_million(report);
  flow::run_traced_replay(report, json_only, args.trace_path);
  flow::run_live_search(report, json_only);

  std::printf("\nbench_flow: all conservation and envelope gates passed "
              "(pipesort %.2f Melem/s)\n", melem_s);
  report.write();
  return 0;
}
