// Shared scaffolding for bench binaries: every bench prints the regenerated
// paper artifact as a Table first (deterministic), then runs its registered
// google-benchmark micro-measurements (wall-clock, labelled as 1-core
// container numbers in EXPERIMENTS.md).
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>

#include "support/table.hpp"

namespace parc::bench {

/// Print the artifact table to stdout (the regenerated figure/table).
inline void emit(const Table& table) { table.print(std::cout); }

/// Standard tail of every bench main(): run micro-benchmarks if any were
/// registered (and not filtered out by --benchmark_* flags).
inline int run_micro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace parc::bench
