// Shared scaffolding for bench binaries: every bench prints the regenerated
// paper artifact as a Table first (deterministic), then runs its registered
// google-benchmark micro-measurements (wall-clock, labelled as 1-core
// container numbers in EXPERIMENTS.md). A bench that wants its numbers
// machine-readable fills a JsonReport alongside the table; the written
// BENCH_<name>.json is what CI archives and regression tooling diffs.
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "args.hpp"
#include "support/table.hpp"

namespace parc::bench {

/// Print the artifact table to stdout (the regenerated figure/table).
inline void emit(const Table& table) { table.print(std::cout); }

/// Machine-readable companion to the printed table: per-case ns/op plus
/// free-form config key/values, written as BENCH_<name>.json in the working
/// directory. The format is deliberately flat so a five-line script can diff
/// two runs:
///
///   {"bench": "sched_overhead",
///    "config": {"workers": "1"},
///    "cases": [{"name": "cell_cycle", "ns_per_op": 7.1}, ...]}
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  JsonReport& config(std::string key, std::string value) {
    config_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  JsonReport& add(std::string case_name, double ns_per_op) {
    cases_.emplace_back(std::move(case_name), ns_per_op);
    return *this;
  }

  /// Write BENCH_<name>.json; prints the path so run logs say where it went.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    os << "{\"bench\": \"" << escaped(name_) << "\",\n \"config\": {";
    for (std::size_t i = 0; i < config_.size(); ++i) {
      os << (i == 0 ? "" : ", ") << '"' << escaped(config_[i].first)
         << "\": \"" << escaped(config_[i].second) << '"';
    }
    os << "},\n \"cases\": [";
    for (std::size_t i = 0; i < cases_.size(); ++i) {
      os << (i == 0 ? "" : ",") << "\n  {\"name\": \""
         << escaped(cases_[i].first) << "\", \"ns_per_op\": "
         << cases_[i].second << '}';
    }
    os << "\n ]}\n";
    std::cout << "wrote " << path << '\n';
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';  // control chars have no business in bench names
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> config_;
  std::vector<std::pair<std::string, double>> cases_;
};

/// Standard tail of every bench main(): run micro-benchmarks if any were
/// registered (and not filtered out by --benchmark_* flags).
inline int run_micro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace parc::bench
