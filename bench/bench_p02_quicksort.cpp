// P2: parallel quicksort with three runtime flavours vs sequential —
// wall times per strategy/size/input shape, cutoff ablation, and the
// divide-and-conquer machine-model speedup curve for the lab machines.
#include "bench_util.hpp"
#include "kernels/sort.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"

using namespace parc;
using namespace parc::kernels;

namespace {

ptask::Runtime& runtime() {
  static ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  return rt;
}

double time_sort(const std::function<void(std::vector<std::int64_t>&)>& fn,
                 std::size_t n, InputKind kind) {
  auto data = make_sort_input(n, kind, 42 + n);
  Stopwatch sw;
  fn(data);
  return sw.elapsed_ms();
}

}  // namespace

static void BM_QuicksortSeq(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = make_sort_input(n, InputKind::kUniform, 7);
    state.ResumeTiming();
    quicksort_seq(data);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_QuicksortSeq)->Arg(100000)->Arg(1000000);

static void BM_QuicksortPTask(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto data = make_sort_input(n, InputKind::kUniform, 7);
    state.ResumeTiming();
    quicksort_ptask(data, runtime(), 16384);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_QuicksortPTask)->Arg(100000)->Arg(1000000);

int main(int argc, char** argv) {
  Table table("P2 — quicksort strategies (1-core container wall times)");
  table.columns({"n", "input", "seq ms", "ptask ms", "pj ms", "threads ms"});
  for (std::size_t n : {100000u, 1000000u, 4000000u}) {
    for (const auto kind : {InputKind::kUniform, InputKind::kFewUniques}) {
      table.add_row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(kind == InputKind::kUniform ? "uniform" : "few-uniques")
          .cell(time_sort([](auto& d) { quicksort_seq(d); }, n, kind), 1)
          .cell(time_sort(
                    [](auto& d) { quicksort_ptask(d, runtime(), 16384); }, n,
                    kind),
                1)
          .cell(time_sort([](auto& d) { quicksort_pj(d, 3, 16384); }, n, kind),
                1)
          .cell(time_sort([](auto& d) { quicksort_threads(d, 3, 16384); }, n,
                          kind),
                1);
    }
  }
  bench::emit(table);

  // Cutoff ablation (the design knob DESIGN.md calls out).
  Table cutoff("P2 — ParallelTask cutoff ablation (n = 1M uniform)");
  cutoff.columns({"cutoff", "wall ms"});
  for (std::size_t c : {256u, 1024u, 4096u, 16384u, 65536u, 262144u}) {
    cutoff.add_row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(time_sort([c](auto& d) { quicksort_ptask(d, runtime(), c); },
                        1000000, InputKind::kUniform),
              1);
  }
  bench::emit(cutoff);

  // Machine-model speedup sweep: quicksort DAG on 1..64 cores.
  const auto dag = sim::divide_conquer_dag(1 << 22, 1 << 14, 2e-9, 1e-6);
  Table curve("P2 — quicksort DAG speedup (machine model, 4M elements)");
  curve.columns({"cores", "speedup", "efficiency %"});
  sim::SweepOptions sweep_opts;
  sweep_opts.machine.per_task_overhead_s = 1e-6;
  for (const auto& point : sim::sweep(dag, sweep_opts).points) {
    curve.add_row()
        .cell(static_cast<std::uint64_t>(point.cores))
        .cell(point.outcome.speedup, 2)
        .cell(100.0 * point.outcome.efficiency, 1);
  }
  bench::emit(curve);
  std::printf("quicksort DAG parallelism (work/span): %.1f\n",
              dag.parallelism());

  return bench::run_micro(argc, argv);
}
