// P8: the memory-model table — anomaly incidence and per-operation cost of
// each demonstrator under each fix, i.e. the "what options are available and
// what are their pros/cons" deliverable of the project.
#include <atomic>
#include <mutex>

#include "bench_util.hpp"
#include "memmodel/demos.hpp"

using namespace parc;
using namespace parc::memmodel;

static void BM_AtomicFetchAdd(benchmark::State& state) {
  std::atomic<std::uint64_t> counter{0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.fetch_add(1, std::memory_order_relaxed));
  }
}
BENCHMARK(BM_AtomicFetchAdd);

static void BM_MutexIncrement(benchmark::State& state) {
  std::mutex m;
  std::uint64_t counter = 0;
  for (auto _ : state) {
    std::scoped_lock lock(m);
    benchmark::DoNotOptimize(++counter);
  }
}
BENCHMARK(BM_MutexIncrement);

int main(int argc, char** argv) {
  Table lost("P8 — lost-update demo (4 threads x 50k increments)");
  lost.columns({"synchronisation", "lost updates", "rate %", "ns/op"});
  for (const auto sync :
       {Sync::kUnsynchronised, Sync::kAtomicRmw, Sync::kMutex,
        Sync::kSeqCst}) {
    const auto r = lost_update_demo(sync, 50000, 4);
    lost.add_row()
        .cell(to_string(sync))
        .cell(r.anomalies)
        .cell(100.0 * r.anomaly_rate(), 3)
        .cell(r.ns_per_op, 1);
  }
  bench::emit(lost);

  Table cta("P8 — check-then-act demo (4 threads over 50k shared slots)");
  cta.columns({"synchronisation", "double claims", "rate %", "ns/op"});
  for (const auto sync :
       {Sync::kUnsynchronised, Sync::kAtomicRmw, Sync::kMutex}) {
    const auto r = check_then_act_demo(sync, 50000, 4);
    cta.add_row()
        .cell(to_string(sync))
        .cell(r.anomalies)
        .cell(100.0 * r.anomaly_rate(), 3)
        .cell(r.ns_per_op, 1);
  }
  bench::emit(cta);

  Table litmus("P8 — store-buffer litmus (SC-forbidden outcome r1=r2=0)");
  litmus.columns({"ordering", "trials", "anomalies", "ns/trial"});
  for (const auto sync : {Sync::kUnsynchronised, Sync::kAcqRel, Sync::kSeqCst}) {
    const auto r = store_buffer_litmus(sync, 30000);
    litmus.add_row()
        .cell(to_string(sync))
        .cell(r.trials)
        .cell(r.anomalies)
        .cell(r.ns_per_op, 1);
  }
  bench::emit(litmus);

  Table pub("P8 — publication demo (writer fills payload, sets flag)");
  pub.columns({"ordering", "trials", "torn reads", "ns/round"});
  for (const auto sync : {Sync::kUnsynchronised, Sync::kAcqRel, Sync::kSeqCst}) {
    const auto r = unsafe_publication_demo(sync, 30000);
    pub.add_row()
        .cell(to_string(sync))
        .cell(r.trials)
        .cell(r.anomalies)
        .cell(r.ns_per_op, 1);
  }
  bench::emit(pub);

  std::printf(
      "\nnotes: lost-update and check-then-act anomalies manifest on any "
      "host (preemption splits the window). The litmus/publication anomalies "
      "need truly concurrent cores and weak ordering; on a 1-core container "
      "both columns read 0 — the cost columns still rank the fixes. seq-cst "
      "is the only ordering that forbids the litmus outcome by "
      "construction.\n");

  return bench::run_micro(argc, argv);
}
