// P6: task-aware libraries for Parallel Task — the stall-incidence table
// (thread-safe blocking queue inside a bounded pool vs the task-safe queue)
// across worker counts, plus join-point comparisons (latch/barrier).
#include "bench_util.hpp"
#include "conc/task_safe.hpp"
#include "support/clock.hpp"

#include <atomic>
#include <thread>

using namespace parc;
using namespace parc::conc;

namespace {

/// Run the consumers-then-producer scenario on `workers` workers with the
/// cv-blocking queue; returns true only if EVERY consumer was served inside
/// its window. With blocking consumers on every worker, the producer queued
/// behind them starves until the first consumer gives up — so at least one
/// consumer always times out: the stall.
bool thread_safe_scenario(std::size_t workers) {
  sched::WorkStealingPool pool(
      sched::WorkStealingPool::Config{workers, 4, "p6"});
  ThreadSafeBlockingQueue<int> queue(4);
  std::atomic<std::size_t> got{0};
  std::atomic<std::size_t> done{0};
  for (std::size_t c = 0; c < workers; ++c) {
    // One blocking consumer per worker: with cv-blocking takes, every
    // worker parks and the producers behind them starve.
    pool.submit([&] {
      if (queue.take_for(std::chrono::milliseconds(200)).has_value()) {
        got.fetch_add(1);
      }
      done.fetch_add(1);
    });
  }
  pool.submit([&] {
    for (std::size_t c = 0; c < workers; ++c) {
      queue.put(static_cast<int>(c));
    }
  });
  while (done.load() < workers) std::this_thread::yield();
  return got.load() == workers;
}

bool task_safe_scenario(std::size_t workers) {
  sched::WorkStealingPool pool(
      sched::WorkStealingPool::Config{workers, 4, "p6"});
  TaskSafeQueue<int> queue(pool);
  std::atomic<std::size_t> got{0};
  std::atomic<std::size_t> done{0};
  for (std::size_t c = 0; c < workers; ++c) {
    pool.submit([&] {
      if (queue.take() >= 0) got.fetch_add(1);
      done.fetch_add(1);
    });
  }
  pool.submit([&] {
    for (std::size_t c = 0; c < workers; ++c) {
      queue.put(static_cast<int>(c));
    }
  });
  while (done.load() < workers) std::this_thread::yield();
  return got.load() == workers;
}

}  // namespace

static void BM_TaskSafeQueueThroughput(benchmark::State& state) {
  sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "p6"});
  TaskSafeQueue<int> queue(pool);
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i) queue.put(i);
    long sum = 0;
    for (int i = 0; i < 1000; ++i) sum += *queue.try_take();
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TaskSafeQueueThroughput);

int main(int argc, char** argv) {
  Table table("P6 — blocking take() inside a bounded pool: thread-safe vs task-safe");
  table.columns({"workers", "blocking consumers", "thread-safe queue",
                 "task-safe queue"});
  for (std::size_t workers : {1u, 2u, 4u}) {
    const bool ts_ok = thread_safe_scenario(workers);
    const bool task_ok = task_safe_scenario(workers);
    table.add_row()
        .cell(static_cast<std::uint64_t>(workers))
        .cell(static_cast<std::uint64_t>(workers))
        .cell(ts_ok ? "completed" : "STALLED (timeout)")
        .cell(task_ok ? "completed" : "STALLED");
  }
  bench::emit(table);

  // Join-point variants: a barrier with more parties than workers.
  Table joins("P6 — task-safe join points with parties > workers (2 workers)");
  joins.columns({"primitive", "parties", "outcome", "wall ms"});
  {
    sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "p6"});
    TaskSafeBarrier barrier(pool, 8);
    std::atomic<int> passed{0};
    Stopwatch sw;
    for (int i = 0; i < 8; ++i) {
      pool.submit([&] {
        barrier.arrive_and_wait();
        passed.fetch_add(1);
      });
    }
    pool.help_while([&] { return passed.load() < 8; });
    joins.add_row()
        .cell("TaskSafeBarrier")
        .cell(std::uint64_t{8})
        .cell("completed")
        .cell(sw.elapsed_ms(), 2);
  }
  {
    sched::WorkStealingPool pool(sched::WorkStealingPool::Config{2, 4, "p6"});
    TaskSafeLatch latch(pool, 64);
    std::atomic<int> fired{0};
    Stopwatch sw;
    for (int i = 0; i < 64; ++i) {
      pool.submit([&] {
        fired.fetch_add(1);
        latch.count_down();
      });
    }
    latch.wait();
    joins.add_row()
        .cell("TaskSafeLatch")
        .cell(std::uint64_t{64})
        .cell(fired.load() == 64 ? "completed" : "STALLED")
        .cell(sw.elapsed_ms(), 2);
  }
  bench::emit(joins);

  std::printf(
      "\nreading the tables: 'thread-safe' parks the worker and starves the "
      "producer queued behind it — the stall appears whenever blocking "
      "consumers >= workers. The task-safe classes donate the waiting thread "
      "back to the pool, so the same program completes at every size.\n");

  return bench::run_micro(argc, argv);
}
