// Scheduler fast-path microcosts: the per-job constants that multiply into
// every fine-grained benchmark in EXPERIMENTS.md (quicksort cutoff sweeps,
// reduction trees, the spawn-cost ablation).
//
// Prints a table of per-operation costs for the zero-allocation TaskCell
// path against a reconstruction of the seed path (`new Job{std::function}`
// + mutex-guarded injection deque), and *asserts* — via a counting
// operator-new hook — that the worker-local submit path performs zero heap
// allocations for small captures once the cell freelists are warm. The
// per-spawn numbers feed parc::sim's MachineParams::per_task_overhead_s.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "obs/trace.hpp"
#include "pj/parallel.hpp"
#include "sched/chase_lev_deque.hpp"
#include "sched/completion.hpp"
#include "sched/mpsc_queue.hpp"
#include "sched/task_cell.hpp"
#include "sched/thread_pool.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"
#include "support/table.hpp"

// ---------------------------------------------------------------------------
// Counting allocator hook: every operator-new on *this thread* bumps the
// counter. Thread-local so worker/benchmark-harness allocations on other
// threads cannot pollute a measured window.
// ---------------------------------------------------------------------------

namespace {
thread_local std::uint64_t t_alloc_count = 0;
}  // namespace

// GCC's heuristic flags free() on pointers from the replacement operator new
// below; the replacement operator delete is free-backed too, so the pairing
// is correct — the warning is a false positive in this TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++t_alloc_count;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace parc::sched {
namespace {

volatile std::uint64_t g_sink = 0;

// The capture every measurement uses: three words, comfortably inline.
struct SmallWork {
  std::uint64_t* acc;
  std::uint64_t a;
  std::uint64_t b;
  void operator()() const { *acc += a ^ b; }
};
static_assert(TaskCell::stores_inline<SmallWork>());

// --- seed path reconstruction: one heap Job per submission ----------------

struct SeedJob {
  std::function<void()> fn;
};

double measure_seed_job_cycle(std::size_t iters) {
  std::uint64_t acc = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    auto* job = new SeedJob{std::function<void()>(SmallWork{&acc, i, i + 1})};
    job->fn();
    delete job;
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  g_sink = g_sink + acc;
  return ns;
}

double measure_task_cell_cycle(std::size_t iters) {
  std::uint64_t acc = 0;
  TaskCell cell;  // recycled in place: the steady-state freelist case
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    cell.emplace(SmallWork{&acc, i, i + 1});
    cell.invoke();
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  g_sink = g_sink + acc;
  return ns;
}

// --- injection queues: seed (mutex+deque) vs MPSC -------------------------

double measure_seed_injection(std::size_t iters) {
  std::mutex mutex;
  std::deque<SeedJob*> queue;
  std::uint64_t acc = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    auto* job = new SeedJob{std::function<void()>(SmallWork{&acc, i, i})};
    {
      std::scoped_lock lock(mutex);
      queue.push_back(job);
    }
    SeedJob* got;
    {
      std::scoped_lock lock(mutex);
      got = queue.front();
      queue.pop_front();
    }
    got->fn();
    delete got;
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  g_sink = g_sink + acc;
  return ns;
}

double measure_mpsc_injection(std::size_t iters) {
  MpscIntrusiveQueue<TaskCell> queue;
  TaskCell cell;
  std::uint64_t acc = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    cell.emplace(SmallWork{&acc, i, i});
    queue.push(&cell);
    TaskCell* got = queue.try_pop();
    got->invoke();
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  g_sink = g_sink + acc;
  return ns;
}

// --- Chase–Lev owner push/pop and thief steal ------------------------------

double measure_deque_push_pop(std::size_t iters) {
  ChaseLevDeque<TaskCell> deque;
  TaskCell cell;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    deque.push(&cell);
    g_sink = g_sink + (deque.pop() != nullptr ? 1 : 0);
  }
  return sw.elapsed_ns() / static_cast<double>(iters);
}

double measure_deque_steal(std::size_t iters) {
  ChaseLevDeque<TaskCell> deque;
  std::vector<TaskCell> cells(iters);
  for (auto& c : cells) deque.push(&c);
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    g_sink = g_sink + (deque.steal() != nullptr ? 1 : 0);
  }
  return sw.elapsed_ns() / static_cast<double>(iters);
}

// --- full pool: worker-local submit+run, with the zero-allocation assert ---

struct LocalSubmitResult {
  double ns_per_job = 0.0;
  std::uint64_t allocs_in_window = ~0ull;
};

LocalSubmitResult measure_worker_local_submit(WorkStealingPool& pool,
                                              std::size_t iters,
                                              SubmitHint hint) {
  // NOTE: call with a 1-worker pool — a sibling worker could otherwise
  // steal the freshly pushed job between submit and try_run_one.
  LocalSubmitResult result;
  std::atomic<bool> done{false};
  // The whole measurement runs inside one worker: submit to the local deque,
  // then immediately pop-and-run (LIFO), so the cell cycles through this
  // worker's freelist. After warmup the window must allocate nothing.
  pool.submit([&pool, &result, &done, iters, hint] {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < 256; ++i) {  // warm the freelist
      pool.submit(SmallWork{&acc, i, i}, hint);
      PARC_CHECK(pool.try_run_one());
    }
    const std::uint64_t allocs_before = t_alloc_count;
    Stopwatch sw;
    for (std::size_t i = 0; i < iters; ++i) {
      pool.submit(SmallWork{&acc, i, i + 1}, hint);
      PARC_CHECK(pool.try_run_one());
    }
    result.ns_per_job = sw.elapsed_ns() / static_cast<double>(iters);
    result.allocs_in_window = t_alloc_count - allocs_before;
    g_sink = g_sink + acc;
    done.store(true, std::memory_order_release);
  });
  while (!done.load(std::memory_order_acquire)) std::this_thread::yield();
  return result;
}

double measure_external_submit(WorkStealingPool& pool, std::size_t iters) {
  std::atomic<std::uint64_t> ran{0};
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  pool.help_while([&] { return ran.load(std::memory_order_relaxed) < iters; });
  return ns;
}

// --- tracing overhead ------------------------------------------------------

// Cost of one enabled-but-idle trace hook: the `obs::tracing()` gate every
// runtime hot path pays while no session is live. At PARC_TRACE=OFF the gate
// is a constexpr false and this loop measures an empty body (~0 ns).
double measure_trace_gate_cost(std::size_t iters) {
  std::uint64_t hits = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    if (obs::tracing()) [[unlikely]] ++hits;
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  g_sink = g_sink + hits;
  return ns;
}

double measure_parked_wakeup(WorkStealingPool& pool, std::size_t rounds) {
  double total_us = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let it park
    std::atomic<bool> ran{false};
    Stopwatch sw;
    pool.submit([&ran] { ran.store(true, std::memory_order_release); });
    // Yield while waiting: on a 1-core container the woken worker needs the
    // CPU to actually run the job.
    while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
    total_us += sw.elapsed_us();
  }
  return total_us / static_cast<double>(rounds);
}

std::int64_t now_ns();  // defined with the join-wakeup measures below

// Continuation-release wakeup: a busy worker local-pushes newly-ready work
// while its sibling is parked, so the sample is push → sibling wakes, steals
// and runs — the path a dependsOn successor takes when its predecessor's
// worker stays busy. Median over rounds (an OS wake path: one descheduled
// round on a 1-core container would dominate a mean).
//
// `shards` > 1 turns each round into the cross-domain hostage case: with
// 2 workers in 2 domains the busy pusher is its shard's *only* worker, so
// signal_work finds no sleeper at home and must take the fallback
// cross-shard wake (the work-conservation guard) to rouse the sibling in
// the other domain. Without that fallback this round would livelock on a
// 1-core container — pusher spinning on ran_at, sibling parked forever —
// which is exactly the deadlock the guard exists to prevent.
double measure_parked_wakeup_local_push(std::size_t rounds,
                                        std::size_t shards = 1) {
  WorkStealingPool pool(
      WorkStealingPool::Config{2, 4, "bench-local-wake", 4096, shards});
  std::vector<double> samples;
  samples.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    std::atomic<std::int64_t> pushed_at{0};
    std::atomic<std::int64_t> ran_at{0};
    std::atomic<bool> outer_done{false};
    pool.submit([&pool, &pushed_at, &ran_at, &outer_done] {
      // 2 ms lets the sibling run out of steal sweeps and park.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      pushed_at.store(now_ns(), std::memory_order_release);
      pool.submit(
          [&ran_at] {
            ran_at.store(now_ns(), std::memory_order_release);
          },
          SubmitHint::local);
      // Hold this worker hostage: only the woken sibling can take the probe.
      while (ran_at.load(std::memory_order_acquire) == 0) {
        std::this_thread::yield();
      }
      // Last access to the round's frame. Main must not retire the round on
      // ran_at alone: on a 1-core box this worker may not be rescheduled
      // until after main has reused the stack slots for the next round's
      // atomics, leaving it spinning on a reborn ran_at that a *second*
      // hostage then waits on too — every thread spinning, no one eligible
      // to run either probe.
      outer_done.store(true, std::memory_order_release);
    });
    while (!outer_done.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    samples.push_back(
        static_cast<double>(ran_at.load(std::memory_order_acquire) -
                            pushed_at.load(std::memory_order_acquire)) /
        1000.0);
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

// --- locality domains: sharded-pool fast path and counter gates ------------

// Parks one worker inside a spinning job routed to `shard`, so a 2-worker /
// 2-domain pool degenerates to the single-worker case the submit→run window
// measurements need: the hostage executes (never sweeps), so it cannot
// steal out of the 1-deep window between submit and try_run_one. The spin
// yields — on a 1-core container every other thread still progresses.
struct ShardHostage {
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> exited{false};

  void take(WorkStealingPool& pool, std::size_t shard) {
    pool.submit(
        [this] {
          started.store(true, std::memory_order_release);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          exited.store(true, std::memory_order_release);
        },
        SubmitHint::remote, shard);
    while (!started.load(std::memory_order_acquire)) std::this_thread::yield();
  }

  // Rounds must retire on `exited`, not `release`: the hostage frame reads
  // this struct after release, so the caller may not reuse (or destroy) it
  // until the hostage has demonstrably left — the same stack-rebirth hazard
  // measure_parked_wakeup_local_push documents for its ran_at slots.
  void free() {
    release.store(true, std::memory_order_release);
    while (!exited.load(std::memory_order_acquire)) std::this_thread::yield();
  }
};

// Fallback cross-shard wake latency: the submission targets a domain whose
// only worker is busy (the hostage) while the other domain's worker is
// parked. signal_work finds no sleeper on the target shard and must wake
// the remote one (counted as cross_shard_wakes) — the work-conservation
// guarantee that a job never waits on a busy shard while any worker in the
// pool sleeps. Median submit → probe-running time over rounds; rounds where
// the sibling had not parked yet simply resolve through its live sweep (no
// wake needed), so only the counter delta — not every round — is asserted.
double measure_cross_shard_fallback_wake(std::size_t rounds,
                                         std::uint64_t* wakes_delta) {
  WorkStealingPool pool(
      WorkStealingPool::Config{2, 4, "bench-cross-wake", 4096, 2});
  const std::uint64_t wakes_before = pool.stats().cross_shard_wakes;
  std::vector<double> samples;
  samples.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    ShardHostage hostage;
    hostage.take(pool, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // let 1 park
    std::atomic<bool> ran{false};
    Stopwatch sw;
    pool.submit([&ran] { ran.store(true, std::memory_order_release); },
                SubmitHint::remote, 0);
    while (!ran.load(std::memory_order_acquire)) std::this_thread::yield();
    samples.push_back(sw.elapsed_us());
    hostage.free();
  }
  *wakes_delta = pool.stats().cross_shard_wakes - wakes_before;
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

// All-local load: one generator job routed to each of 4 domains, each
// cycling jobs through its own worker via the worker-local submit→run path.
// Every job is born and consumed on the same worker, so the only way work
// crosses a domain is a remote thief winning the 1-deep race between a
// generator's push and its own pop — under hierarchical stealing that must
// stay a rounding error of throughput. Returns counter deltas read after
// full quiescence (all jobs ran, all generators retired), which the stats()
// contract makes exact.
struct ShardLocalLoadOutcome {
  std::uint64_t executed = 0;
  std::uint64_t cross_steals = 0;
  std::uint64_t local_steals = 0;
  std::uint64_t cross_probes = 0;
};

ShardLocalLoadOutcome run_shard_local_load(std::size_t jobs_per_shard) {
  constexpr std::size_t kShards = 4;
  WorkStealingPool pool(
      WorkStealingPool::Config{kShards, 4, "bench-shard-load", 4096, kShards});
  const WorkStealingPool::Stats before = pool.stats();
  std::atomic<std::size_t> jobs_ran{0};
  std::atomic<std::size_t> gens_done{0};
  for (std::size_t s = 0; s < kShards; ++s) {
    pool.submit(
        [&pool, &jobs_ran, &gens_done, jobs_per_shard] {
          for (std::size_t i = 0; i < jobs_per_shard; ++i) {
            pool.submit(
                [&jobs_ran] {
                  jobs_ran.fetch_add(1, std::memory_order_relaxed);
                },
                SubmitHint::auto_);
            // Usually pops the job just pushed; a cross-steal may win the
            // race, in which case the job still runs — remotely.
            pool.try_run_one();
          }
          gens_done.fetch_add(1, std::memory_order_release);
        },
        SubmitHint::remote, s);
  }
  const std::size_t total = kShards * jobs_per_shard;
  while (gens_done.load(std::memory_order_acquire) < kShards ||
         jobs_ran.load(std::memory_order_acquire) < total) {
    std::this_thread::yield();
  }
  const WorkStealingPool::Stats after = pool.stats();
  ShardLocalLoadOutcome out;
  out.executed = after.executed - before.executed;
  out.cross_steals = after.stolen_cross_shard - before.stolen_cross_shard;
  out.local_steals = after.stolen_shard_local - before.stolen_shard_local;
  out.cross_probes = after.cross_shard_probes - before.cross_shard_probes;
  return out;
}

// --- pj region fork/join: flat vs depth-2 nested ---------------------------
//
// What one `pj::region(2, ...)` fork+join costs, and what opening an inner
// region(2) from thread 0 adds on top. The outer fork is a std::thread spawn
// (level-0 regions keep the spawn path); the inner fork is the pool-routed
// exclusive-job path, so depth2 − flat ≈ reservation + 1 exclusive submit +
// pool-helped inner join. Median over rounds: the outer spawn is an OS
// thread-create and a single descheduled round would dominate a mean.
double measure_region_forkjoin_us(std::size_t rounds, bool nested) {
  std::vector<double> samples;
  samples.reserve(rounds);
  for (std::size_t r = 0; r < rounds + 8; ++r) {  // 8 warmup rounds
    Stopwatch sw;
    pj::region(2, [nested](pj::Team& team) {
      if (nested && team.thread_num() == 0) {
        pj::region(2, [](pj::Team&) {});
      }
    });
    if (r >= 8) samples.push_back(sw.elapsed_us());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

// --- completion core: seed (mutex+cv TaskState) vs sched::Completion ------
//
// The seed's TaskState carried a std::mutex + std::condition_variable + a
// dependents vector per task; the task-graph refactor replaces all three
// with one Completion word (done bit | parked-waiter count) and a sealed
// Treiber continuation list. These measure the three costs that refactor
// targets: the no-waiter complete (every task pays it), the notify-one-
// dependent hand-off, and the per-edge dependency decrement.

struct SeedCompletionState {
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  std::vector<std::function<void()>> dependents;

  void add_dependent(std::function<void()> fn) {
    std::unique_lock lock(mutex);
    if (done) {
      lock.unlock();
      fn();
      return;
    }
    dependents.push_back(std::move(fn));
  }
  void complete() {
    std::vector<std::function<void()>> fire;
    {
      std::scoped_lock lock(mutex);
      done = true;
      fire.swap(dependents);
    }
    cv.notify_all();
    for (auto& fn : fire) fn();
  }
  void wait() {
    std::unique_lock lock(mutex);
    cv.wait(lock, [this] { return done; });
  }
};

// No-waiter complete: construct + finish, the cost every task pays even when
// nobody blocks on it. Fresh object per iteration on both sides — the seed
// also constructed its mutex/cv per TaskState.
double measure_seed_complete_cycle(std::size_t iters) {
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    SeedCompletionState s;
    s.complete();
    g_sink = g_sink + (s.done ? 1 : 0);
  }
  return sw.elapsed_ns() / static_cast<double>(iters);
}

double measure_core_complete_cycle(std::size_t iters) {
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    Completion c;
    c.complete();
    g_sink = g_sink + (c.completed() ? 1 : 0);
  }
  return sw.elapsed_ns() / static_cast<double>(iters);
}

// Notify hand-off: one registered dependent dispatched at completion. Both
// sides heap-allocate the continuation (std::function vs FnNode); the win
// is losing the lock round-trips around registration and the swap.
double measure_seed_notify_one(std::size_t iters) {
  std::uint64_t ran = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    SeedCompletionState s;
    s.add_dependent([&ran] { ++ran; });
    s.complete();
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  PARC_CHECK(ran == iters);
  g_sink = g_sink + ran;
  return ns;
}

double measure_core_notify_one(std::size_t iters) {
  std::uint64_t ran = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    Completion c;
    c.add_continuation([&ran]() noexcept { ++ran; });
    c.complete();
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  PARC_CHECK(ran == iters);
  g_sink = g_sink + ran;
  return ns;
}

// Dependency resolution, ns per edge: what each dependsOn edge costs the
// predecessor at finish time. Seed = mutex-guarded counter decrement; core
// = DependencyCounter::satisfy (one fetch_sub). The registration hold (+1)
// keeps the fire out of the measured window on both sides.

// Escape hatch: publishing the state's address to a volatile global means
// the opaque pthread lock/unlock calls could observe it, so the compiler
// must keep `remaining` in memory across the critical section — as it had
// to for the seed's shared TaskState — instead of caching it in a register.
volatile void* g_escape = nullptr;

struct SeedDepState {
  std::mutex mutex;
  std::size_t remaining = 0;
};

double measure_seed_dependency_edge(std::size_t iters) {
  auto state = std::make_unique<SeedDepState>();
  state->remaining = iters + 1;
  g_escape = state.get();
  std::uint64_t fired = 0;
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) {
    std::scoped_lock lock(state->mutex);
    if (--state->remaining == 0) ++fired;
  }
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  PARC_CHECK(fired == 0);
  g_sink = g_sink + state->remaining;
  g_escape = nullptr;
  return ns;
}

double measure_core_dependency_edge(std::size_t iters) {
  DependencyCounter deps;
  std::uint64_t fired = 0;
  deps.init(iters + 1, [&fired] { ++fired; });
  Stopwatch sw;
  for (std::size_t i = 0; i < iters; ++i) deps.satisfy();
  const double ns = sw.elapsed_ns() / static_cast<double>(iters);
  deps.satisfy();  // release the registration hold; fires outside the window
  PARC_CHECK(fired == 1);
  g_sink = g_sink + fired;
  return ns;
}

// Parked-join wakeup: complete() → a parked waiter returning from wait().
// The waiter gets 2 ms to pass its spin phase and park, so this measures
// the futex (resp. condition-variable) wake path, not the spin path.
std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Median, not mean: each round is one sample of an OS wake path, and a
// single descheduled round on a 1-core container can be 100x the typical
// latency — the median is the number a student can reproduce.
template <typename State>
double measure_join_wakeup_us(std::size_t rounds) {
  std::vector<double> samples;
  samples.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    State state;
    std::atomic<std::int64_t> woke_at{0};
    std::thread waiter([&] {
      state.wait();
      woke_at.store(now_ns(), std::memory_order_release);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const std::int64_t t0 = now_ns();
    state.complete();
    waiter.join();
    samples.push_back(
        static_cast<double>(woke_at.load(std::memory_order_acquire) - t0) /
        1000.0);
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

// --- google-benchmark micros ----------------------------------------------

void BM_SeedJobCycle(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto* job = new SeedJob{std::function<void()>(SmallWork{&acc, i, ++i})};
    job->fn();
    delete job;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SeedJobCycle);

void BM_TaskCellCycle(benchmark::State& state) {
  std::uint64_t acc = 0;
  std::uint64_t i = 0;
  TaskCell cell;
  for (auto _ : state) {
    cell.emplace(SmallWork{&acc, i, ++i});
    cell.invoke();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_TaskCellCycle);

void BM_MpscPushPop(benchmark::State& state) {
  MpscIntrusiveQueue<TaskCell> queue;
  TaskCell cell;
  std::uint64_t acc = 0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    cell.emplace(SmallWork{&acc, i, ++i});
    queue.push(&cell);
    queue.try_pop()->invoke();
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_MpscPushPop);

void BM_SeedCompletionNotify(benchmark::State& state) {
  std::uint64_t ran = 0;
  for (auto _ : state) {
    SeedCompletionState s;
    s.add_dependent([&ran] { ++ran; });
    s.complete();
  }
  benchmark::DoNotOptimize(ran);
}
BENCHMARK(BM_SeedCompletionNotify);

void BM_CoreCompletionNotify(benchmark::State& state) {
  std::uint64_t ran = 0;
  for (auto _ : state) {
    Completion c;
    c.add_continuation([&ran]() noexcept { ++ran; });
    c.complete();
  }
  benchmark::DoNotOptimize(ran);
}
BENCHMARK(BM_CoreCompletionNotify);

}  // namespace
}  // namespace parc::sched

int main(int argc, char** argv) {
  using namespace parc;
  using namespace parc::sched;

  // --json: CI smoke mode. Runs every deterministic measurement and assert
  // gate (zero-alloc windows, trace budget, cross-shard counters) and
  // writes BENCH_sched_overhead.json, but skips the google-benchmark micros
  // — wall-clock numbers a shared CI box cannot interpret anyway.
  const bool json_only = bench::parse(argc, argv).json;

  constexpr std::size_t kIters = 200000;

  Table table("Scheduler fast-path microcosts (1-core container)");
  table.columns({"operation", "seed path ns", "fast path ns", "speedup"});

  const double seed_cycle = measure_seed_job_cycle(kIters);
  const double cell_cycle = measure_task_cell_cycle(kIters);
  table.add_row()
      .cell("job create+run+release (small capture)")
      .cell(seed_cycle, 1)
      .cell(cell_cycle, 1)
      .cell(seed_cycle / cell_cycle, 2);

  const double seed_inject = measure_seed_injection(kIters);
  const double mpsc_inject = measure_mpsc_injection(kIters);
  table.add_row()
      .cell("external inject+drain (1 thread)")
      .cell(seed_inject, 1)
      .cell(mpsc_inject, 1)
      .cell(seed_inject / mpsc_inject, 2);

  const double push_pop = measure_deque_push_pop(kIters);
  const double steal = measure_deque_steal(100000);
  table.add_row()
      .cell("deque owner push+pop")
      .cell("-")
      .cell(push_pop, 1)
      .cell("-");
  table.add_row().cell("deque steal").cell("-").cell(steal, 1).cell("-");

  // Completion core (ISSUE 3): seed mutex+cv TaskState vs sched::Completion.
  // glibc skips mutex atomics entirely while a process is single-threaded,
  // which would flatter the seed numbers: the seed runtime always had pool
  // workers alive. A parked keeper thread (zero CPU: futex wait) restores
  // the multi-threaded lock paths for the measured window.
  std::atomic<std::uint32_t> keeper_flag{0};
  std::thread keeper([&keeper_flag] { keeper_flag.wait(0); });

  const double seed_complete = measure_seed_complete_cycle(kIters);
  const double core_complete = measure_core_complete_cycle(kIters);
  table.add_row()
      .cell("completion: construct+complete, no waiter")
      .cell(seed_complete, 1)
      .cell(core_complete, 1)
      .cell(seed_complete / core_complete, 2);

  const double seed_notify = measure_seed_notify_one(kIters);
  const double core_notify = measure_core_notify_one(kIters);
  table.add_row()
      .cell("completion: notify one dependent")
      .cell(seed_notify, 1)
      .cell(core_notify, 1)
      .cell(seed_notify / core_notify, 2);

  const double seed_edge = measure_seed_dependency_edge(kIters);
  const double core_edge = measure_core_dependency_edge(kIters);
  table.add_row()
      .cell("dependency resolution, ns/edge")
      .cell(seed_edge, 1)
      .cell(core_edge, 1)
      .cell(seed_edge / core_edge, 2);

  const double seed_join_us = measure_join_wakeup_us<SeedCompletionState>(50);
  const double core_join_us = measure_join_wakeup_us<Completion>(50);
  table.add_row()
      .cell("parked join wakeup latency (us)")
      .cell(seed_join_us, 1)
      .cell(core_join_us, 1)
      .cell(seed_join_us / core_join_us, 2);

  keeper_flag.store(1);
  keeper_flag.notify_one();
  keeper.join();

  {
    // One worker: keeps the submit→run cycle on a single deque so the
    // zero-allocation window cannot be perturbed by a sibling's steal.
    WorkStealingPool pool(WorkStealingPool::Config{1, 4, "bench-local"});
    const LocalSubmitResult local =
        measure_worker_local_submit(pool, kIters, SubmitHint::auto_);
    // The acceptance gate: the warm worker-local submit path must not touch
    // the heap for inline-sized captures.
    PARC_CHECK_MSG(local.allocs_in_window == 0,
                   "worker-local submit path allocated on the fast path");
    table.add_row()
        .cell("pool worker-local submit+run")
        .cell("-")
        .cell(local.ns_per_job, 1)
        .cell("-");
    table.add_row()
        .cell("  heap allocs in measured window")
        .cell("-")
        .cell(static_cast<std::uint64_t>(local.allocs_in_window))
        .cell("-");

    // The continuation-stealing hand-off path: same cycle with the explicit
    // local hint, which adds the soft-cap check and outcome counter. Must
    // stay allocation-free too — this is the path every dependsOn release
    // takes on a worker.
    const LocalSubmitResult hinted =
        measure_worker_local_submit(pool, kIters, SubmitHint::local);
    PARC_CHECK_MSG(hinted.allocs_in_window == 0,
                   "hinted-local submit path allocated on the fast path");
    table.add_row()
        .cell("pool worker-local submit+run, hint=local")
        .cell("-")
        .cell(hinted.ns_per_job, 1)
        .cell("-");

    const double external = measure_external_submit(pool, kIters);
    table.add_row()
        .cell("pool external submit (amortised)")
        .cell("-")
        .cell(external, 1)
        .cell("-");

    const double wakeup_us = measure_parked_wakeup(pool, 50);
    table.add_row()
        .cell("parked-worker wakeup latency (us)")
        .cell("-")
        .cell(wakeup_us, 1)
        .cell("-");

    const double wakeup_local_us = measure_parked_wakeup_local_push(50);
    table.add_row()
        .cell("parked sibling wake via local push (us)")
        .cell("-")
        .cell(wakeup_local_us, 1)
        .cell("-");

    // pj nested-region cost: what an inner region(2) adds over a flat
    // region(2). The delta is the pool-routed inner fork/join (reserve +
    // exclusive submit + helped join), not a second thread spawn.
    const double region_flat_us = measure_region_forkjoin_us(200, false);
    const double region_depth2_us = measure_region_forkjoin_us(200, true);
    table.add_row()
        .cell("pj region(2) fork+join, flat (us)")
        .cell("-")
        .cell(region_flat_us, 1)
        .cell("-");
    table.add_row()
        .cell("pj region(2) fork+join, depth 2 (us)")
        .cell("-")
        .cell(region_depth2_us, 1)
        .cell("-");
    table.add_row()
        .cell("  inner-region fork/join delta (us)")
        .cell("-")
        .cell(region_depth2_us - region_flat_us, 1)
        .cell("-");

    // --- tracing overhead: the obs acceptance gates ----------------------
    // Idle gate: one relaxed load + predicted branch, budgeted at <= 5 ns.
    const double gate_ns = measure_trace_gate_cost(kIters);
    table.add_row()
        .cell("trace hook, compiled in but idle")
        .cell("-")
        .cell(gate_ns, 2)
        .cell("-");
    if (obs::kTraceCompiled) {
      PARC_CHECK_MSG(gate_ns <= 5.0,
                     "idle trace hook exceeds the 5 ns/job budget");
    }

    // Live session: same worker-local cycle while every submit/exec emits
    // events. The window must still be allocation-free — events land in the
    // session's preallocated per-thread buffer (warmup registers the
    // worker's buffer before the counted window opens).
    double traced_ns = 0.0;
    std::uint64_t traced_events = 0;
    if (obs::kTraceCompiled) {
      constexpr std::size_t kTracedIters = 20000;
      obs::TraceSession session({.events_per_thread = 1u << 17});
      const LocalSubmitResult traced =
          measure_worker_local_submit(pool, kTracedIters, SubmitHint::auto_);
      const obs::TraceDump dump = session.end();
      PARC_CHECK_MSG(traced.allocs_in_window == 0,
                     "tracing a worker-local submit allocated per job");
      PARC_CHECK_MSG(dump.total_dropped() == 0,
                     "trace buffer sized too small for the bench window");
      traced_ns = traced.ns_per_job;
      traced_events = dump.total_events();
      table.add_row()
          .cell("pool worker-local submit+run, trace live")
          .cell("-")
          .cell(traced_ns, 1)
          .cell("-");
      table.add_row()
          .cell("  events captured / heap allocs in window")
          .cell("-")
          .cell(traced_events)
          .cell(static_cast<std::uint64_t>(traced.allocs_in_window));
    }

    // --- locality domains: the sharded-pool acceptance gates -------------
    // Same submit→run cycles on a 2-domain pool, the other domain's worker
    // held hostage so it cannot steal out of the 1-deep window. Sharding
    // must cost the fast path nothing: the zero-allocation gates are
    // asserted identically, and the ns/job rows let EXPERIMENTS.md show the
    // envelopes holding (≈2.4 ns auto, ≈47 ns hint=local on this container).
    LocalSubmitResult s2_local;
    LocalSubmitResult s2_hinted;
    {
      WorkStealingPool pool2(
          WorkStealingPool::Config{2, 4, "bench-local-s2", 4096, 2});
      ShardHostage hostage;
      hostage.take(pool2, 1);
      s2_local = measure_worker_local_submit(pool2, kIters, SubmitHint::auto_);
      PARC_CHECK_MSG(s2_local.allocs_in_window == 0,
                     "worker-local submit allocated on a 2-domain pool");
      s2_hinted = measure_worker_local_submit(pool2, kIters, SubmitHint::local);
      PARC_CHECK_MSG(s2_hinted.allocs_in_window == 0,
                     "hinted-local submit allocated on a 2-domain pool");
      hostage.free();
    }
    table.add_row()
        .cell("pool worker-local submit+run, 2 domains")
        .cell("-")
        .cell(s2_local.ns_per_job, 1)
        .cell("-");
    table.add_row()
        .cell("pool worker-local, hint=local, 2 domains")
        .cell("-")
        .cell(s2_hinted.ns_per_job, 1)
        .cell("-");

    // Hostage-round wake paths across a domain boundary: the local-push
    // variant (continuation hand-off) and the explicit-shard variant. Both
    // rely on signal_work's fallback cross-shard wake; the counter assert
    // below pins that the fallback actually fired, not that some sweep got
    // lucky.
    const double wakeup_local_s2_us = measure_parked_wakeup_local_push(50, 2);
    table.add_row()
        .cell("parked sibling wake via local push, 2 domains (us)")
        .cell("-")
        .cell(wakeup_local_s2_us, 1)
        .cell("-");
    std::uint64_t fallback_wakes = 0;
    const double cross_wake_us =
        measure_cross_shard_fallback_wake(50, &fallback_wakes);
    PARC_CHECK_MSG(fallback_wakes >= 1,
                   "no cross-shard fallback wake fired in 50 hostage rounds");
    table.add_row()
        .cell("cross-shard fallback wake latency (us)")
        .cell("-")
        .cell(cross_wake_us, 1)
        .cell("-");

    // The hierarchical-stealing gate: under all-local load on a 4-domain
    // pool, cross-shard steals must stay under 10% of executed jobs.
    // Counter assert only — no timing threshold, so a loaded CI box cannot
    // flake it.
    const ShardLocalLoadOutcome shard_load = run_shard_local_load(20000);
    PARC_CHECK_MSG(shard_load.cross_steals * 10 <= shard_load.executed,
                   "cross-shard steals exceed 10% of all-local load");
    const double cross_per_1k =
        shard_load.executed > 0
            ? 1000.0 * static_cast<double>(shard_load.cross_steals) /
                  static_cast<double>(shard_load.executed)
            : 0.0;
    table.add_row()
        .cell("all-local load: cross-shard steals / 1k jobs (4 domains)")
        .cell("-")
        .cell(cross_per_1k, 2)
        .cell("-");

    bench::JsonReport report("sched_overhead");
    report.config("workers", "1")
        .config("shards", "1")
        .config("shard_variants", "2,4")
        .config("trace_compiled", obs::kTraceCompiled ? "1" : "0");
    report.add("seed_job_cycle", seed_cycle)
        .add("task_cell_cycle", cell_cycle)
        .add("seed_injection", seed_inject)
        .add("mpsc_injection", mpsc_inject)
        .add("deque_push_pop", push_pop)
        .add("deque_steal", steal)
        .add("worker_local_submit", local.ns_per_job)
        .add("worker_local_submit_hint_local", hinted.ns_per_job)
        .add("external_submit", external)
        .add("parked_wakeup", wakeup_us * 1000.0)
        .add("parked_wakeup_local_push", wakeup_local_us * 1000.0)
        .add("pj_region_forkjoin_flat", region_flat_us * 1000.0)
        .add("pj_region_forkjoin_depth2", region_depth2_us * 1000.0)
        .add("seed_complete_cycle", seed_complete)
        .add("core_complete_cycle", core_complete)
        .add("seed_notify_one", seed_notify)
        .add("core_notify_one", core_notify)
        .add("seed_dependency_edge", seed_edge)
        .add("core_dependency_edge", core_edge)
        .add("seed_join_wakeup", seed_join_us * 1000.0)
        .add("core_join_wakeup", core_join_us * 1000.0)
        .add("trace_gate_idle", gate_ns)
        .add("worker_local_submit_shards2", s2_local.ns_per_job)
        .add("worker_local_submit_hint_local_shards2", s2_hinted.ns_per_job)
        .add("parked_wakeup_local_push_shards2", wakeup_local_s2_us * 1000.0)
        .add("cross_shard_fallback_wake", cross_wake_us * 1000.0)
        .add("shard_local_cross_steals_per_1k", cross_per_1k);
    if (obs::kTraceCompiled) {
      report.add("worker_local_submit_traced", traced_ns);
    }
    report.write();
  }

  bench::emit(table);
  std::printf("zero-allocation fast path: PASS\n");
  std::printf("trace overhead gates: PASS\n");
  std::printf("cross-shard steal/wake gates: PASS\n");
  if (json_only) return 0;
  return bench::run_micro(argc, argv);
}
