// SYS: §III-B parallel systems — the machine-model validation table: for
// canonical workload shapes, predicted speedup on the three PARC machines,
// with the analytic bounds (work/P, span, Graham) printed alongside so the
// model can be audited row by row.
#include "bench_util.hpp"
#include "sim/machine.hpp"

using namespace parc;
using namespace parc::sim;

static void BM_SimulateQuicksortDag(benchmark::State& state) {
  const auto dag = divide_conquer_dag(1 << 20, 1 << 13, 1e-8, 0.0);
  const auto machine = parc_64core();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate(dag, machine));
  }
}
BENCHMARK(BM_SimulateQuicksortDag);

int main(int argc, char** argv) {
  Table inventory("§III-B parallel systems available to students");
  inventory.columns({"machine", "cores", "per-task overhead us"});
  for (const auto& m : {parc_8core(), parc_16core(), parc_64core()}) {
    inventory.add_row()
        .cell(m.name)
        .cell(static_cast<std::uint64_t>(m.cores))
        .cell(m.per_task_overhead_s * 1e6, 1);
  }
  bench::emit(inventory);

  struct Shape {
    std::string name;
    TaskDag dag;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"embarrassingly parallel (1024 equal tasks)",
                    fork_join_dag(std::vector<double>(1024, 1e-3))});
  {
    std::vector<double> skewed;
    for (int i = 1; i <= 64; ++i) skewed.push_back(1e-3 * i);
    shapes.push_back({"skewed fork-join (64 tasks, 1..64x)",
                      fork_join_dag(skewed)});
  }
  shapes.push_back({"divide & conquer (quicksort, 1M elems)",
                    divide_conquer_dag(1 << 20, 1 << 13, 1e-8, 0.0)});
  shapes.push_back({"barrier rounds (Jacobi, 50 x 64)",
                    barrier_rounds_dag(50, 64, 1e-4)});
  shapes.push_back({"Amdahl 10% serial", amdahl_dag(0.1, 900, 1e-3)});

  Table table("Machine-model validation: speedups and analytic bounds");
  table.columns({"workload", "work/span", "P", "speedup", "eff %",
                 "Graham bound ok"});
  for (auto& s : shapes) {
    for (const auto& machine : {parc_8core(), parc_16core(), parc_64core()}) {
      const auto out = simulate(s.dag, machine);
      const double work = s.dag.total_work();
      const double span = s.dag.critical_path();
      const double p = static_cast<double>(machine.cores);
      // Bounds with overhead folded into work/span on the conservative side.
      const double overhead =
          machine.per_task_overhead_s * static_cast<double>(s.dag.size());
      const bool bound_ok =
          out.makespan_s <= (work + overhead) / p + span +
                                machine.per_task_overhead_s *
                                    static_cast<double>(s.dag.size()) +
                                1e-9;
      table.add_row()
          .cell(s.name)
          .cell(s.dag.parallelism(), 1)
          .cell(static_cast<std::uint64_t>(machine.cores))
          .cell(out.speedup, 2)
          .cell(100.0 * out.efficiency, 1)
          .cell(bound_ok ? "yes" : "NO");
    }
  }
  bench::emit(table);

  std::printf(
      "\nreading the table: equal independent tasks scale to all 64 cores; "
      "skew caps speedup at work/span; Amdahl's serial fraction dominates "
      "exactly as the formula predicts. These are the scaling shapes the "
      "student groups measured on the real machines.\n");

  return bench::run_micro(argc, argv);
}
