// P5: reductions in Pyjama — the builtin scalar set vs the object
// reductions (set-union, map-merge, top-k, histogram) the project added,
// across schedules; result-invariance verdicts; machine-model scaling of a
// reduction's combine tree.
#include "bench_util.hpp"
#include "pj/pj.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"

using namespace parc;
using namespace parc::pj;

namespace {

constexpr std::int64_t kN = 2'000'000;

template <typename F>
double time_ms(F&& f) {
  Stopwatch sw;
  f();
  return sw.elapsed_ms();
}

}  // namespace

static void BM_SumReduction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(reduce(
        4, 0, 1'000'000, SumReducer<std::int64_t>{},
        [](std::int64_t i, std::int64_t& acc) { acc += i; }));
  }
}
BENCHMARK(BM_SumReduction);

int main(int argc, char** argv) {
  Table table("P5 — Pyjama reductions (4 threads, 2M indices, 1-core walls)");
  table.columns({"reduction", "kind", "static ms", "dynamic ms", "guided ms",
                 "invariant"});

  auto sweep = [&](const std::string& name, const std::string& kind,
                   auto&& runner, auto&& check) {
    double t_static = 0, t_dynamic = 0, t_guided = 0;
    bool ok = true;
    t_static = time_ms([&] { ok &= check(runner({Schedule::kStatic, 0})); });
    t_dynamic =
        time_ms([&] { ok &= check(runner({Schedule::kDynamic, 4096})); });
    t_guided = time_ms([&] { ok &= check(runner({Schedule::kGuided, 256})); });
    table.add_row()
        .cell(name)
        .cell(kind)
        .cell(t_static, 1)
        .cell(t_dynamic, 1)
        .cell(t_guided, 1)
        .cell(ok ? "yes" : "NO");
  };

  sweep(
      "sum of squares", "builtin",
      [&](ForOptions o) {
        return reduce(
            4, 0, kN, SumReducer<std::int64_t>{},
            [](std::int64_t i, std::int64_t& acc) { acc += i * i; }, o);
      },
      [&](std::int64_t v) {
        // Grouped to stay inside int64: ((n-1)n/2)(2n-1)/3.
        return v == (kN - 1) * kN / 2 * (2 * kN - 1) / 3;
      });

  sweep(
      "min/max pair (min shown)", "builtin",
      [&](ForOptions o) {
        return reduce(
            4, 0, kN, MinReducer<std::int64_t>{},
            [](std::int64_t i, std::int64_t& acc) {
              acc = std::min(acc, (i * 48271) % 1000003);
            },
            o);
      },
      [&](std::int64_t v) { return v >= 0; });

  sweep(
      "set union (mod 10007)", "object",
      [&](ForOptions o) {
        return reduce(
            4, 0, kN, SetUnionReducer<std::int64_t>{},
            [](std::int64_t i, std::set<std::int64_t>& acc) {
              acc.insert(i % 10007);
            },
            o);
      },
      [&](const std::set<std::int64_t>& s) { return s.size() == 10007; });

  sweep(
      "map merge (word counts)", "object",
      [&](ForOptions o) {
        return reduce(
            4, 0, kN, MapMergeReducer<int, std::int64_t>{},
            [](std::int64_t i, std::map<int, std::int64_t>& acc) {
              acc[static_cast<int>(i % 100)] += 1;
            },
            o);
      },
      [&](const std::map<int, std::int64_t>& m) {
        return m.size() == 100 && m.at(0) == kN / 100;
      });

  {
    const TopKReducer<std::int64_t> top10(10);
    sweep(
        "top-10 smallest", "object",
        [&](ForOptions o) {
          return reduce(
              4, 0, kN, top10,
              [&](std::int64_t i, std::vector<std::int64_t>& acc) {
                top10.insert(acc, (i * 48271) % 2147483647);
              },
              o);
        },
        [&](const std::vector<std::int64_t>& v) {
          return v.size() == 10 && std::is_sorted(v.begin(), v.end());
        });
  }

  {
    const HistogramReducer hist(64);
    sweep(
        "histogram (64 bins)", "object",
        [&](ForOptions o) {
          return reduce(
              4, 0, kN, hist,
              [&](std::int64_t i, std::vector<std::uint64_t>& acc) {
                hist.count(acc, static_cast<std::size_t>(i % 64));
              },
              o);
        },
        [&](const std::vector<std::uint64_t>& h) {
          std::uint64_t total = 0;
          for (auto c : h) total += c;
          return total == static_cast<std::uint64_t>(kN);
        });
  }

  bench::emit(table);

  // Scaling shape: a reduction is a fork-join (partials) plus a combine
  // chain on the master — model both parts.
  Table scaling("P5 — reduction scaling (machine model, per-thread partials + serial combine)");
  scaling.columns({"cores", "speedup", "efficiency %"});
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    sim::TaskDag dag;
    std::vector<sim::TaskDag::NodeId> partials;
    const double work_each = 1.0 / static_cast<double>(p);
    for (std::size_t t = 0; t < p; ++t) {
      partials.push_back(dag.add_task(work_each));
    }
    // Serial combine: cost per partial merge (object reductions pay this).
    sim::TaskDag::NodeId prev = dag.add_task(0.002, partials);
    benchmark::DoNotOptimize(prev);
    const auto out = sim::simulate(dag, sim::MachineParams{p, 0.0, "r"});
    scaling.add_row()
        .cell(static_cast<std::uint64_t>(p))
        .cell(out.speedup, 2)
        .cell(100.0 * out.efficiency, 1);
  }
  bench::emit(scaling);

  return bench::run_micro(argc, argv);
}
