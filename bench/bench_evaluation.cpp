// EVAL: §V-A — regenerate the Likert evaluation table (95% / 95% / 92%
// agree-or-strongly-agree) from the seeded cohort model, plus the quoted
// open comments.
#include "bench_util.hpp"
#include "course/evaluation.hpp"

using namespace parc;
using namespace parc::course;

static void BM_RunSurvey(benchmark::State& state) {
  const auto questions = softeng751_survey();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_survey(questions, 57, 42));
  }
}
BENCHMARK(BM_RunSurvey);

int main(int argc, char** argv) {
  // ~57 respondents ("almost 60 students").
  const auto outcomes = run_survey(softeng751_survey(), 57, 2013);

  Table table("End-of-course summative evaluation (§V-A)");
  table.columns({"question", "SA", "A", "N", "D", "SD", "sampled agree %",
                 "paper %"});
  for (const auto& o : outcomes) {
    table.add_row()
        .cell(o.question)
        .cell(o.counts[0])
        .cell(o.counts[1])
        .cell(o.counts[2])
        .cell(o.counts[3])
        .cell(o.counts[4])
        .cell(o.agree_pct, 1)
        .cell(o.reported_pct, 1);
  }
  bench::emit(table);

  // Large-sample check: the model's expectation matches the paper exactly.
  const auto expectation = run_survey(softeng751_survey(), 200000, 7);
  Table converged("Model expectation (200k samples) vs paper");
  converged.columns({"question", "model %", "paper %"});
  for (const auto& o : expectation) {
    converged.add_row().cell(o.question).cell(o.agree_pct, 2).cell(
        o.reported_pct, 2);
  }
  bench::emit(converged);

  Table comments("Open comments quoted in §V-A");
  comments.columns({"prompt", "comment"});
  for (const auto& c : reported_open_comments()) {
    comments.row({c.prompt, c.comment});
  }
  bench::emit(comments);

  return bench::run_micro(argc, argv);
}
