// P3: computational kernels (FFT, MD, graph, linear algebra, stencil) —
// sequential vs Pyjama with each schedule, correctness cross-checks, and
// machine-model scaling per kernel shape.
#include "bench_util.hpp"
#include "kernels/kernels.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"

using namespace parc;
using namespace parc::kernels;

namespace {

struct KernelRow {
  std::string name;
  double seq_ms;
  double pj_static_ms;
  double pj_dynamic_ms;
  double pj_guided_ms;
  bool agrees;
};

template <typename Seq, typename Par, typename Check>
KernelRow measure(const std::string& name, Seq&& seq, Par&& par,
                  Check&& agree) {
  KernelRow row;
  row.name = name;
  Stopwatch sw;
  seq();
  row.seq_ms = sw.elapsed_ms();
  sw.reset();
  par(pj::Schedule::kStatic);
  row.pj_static_ms = sw.elapsed_ms();
  sw.reset();
  par(pj::Schedule::kDynamic);
  row.pj_dynamic_ms = sw.elapsed_ms();
  sw.reset();
  par(pj::Schedule::kGuided);
  row.pj_guided_ms = sw.elapsed_ms();
  row.agrees = agree();
  return row;
}

}  // namespace

static void BM_Gemm128(benchmark::State& state) {
  const auto a = Matrix::random(128, 128, 1);
  const auto b = Matrix::random(128, 128, 2);
  for (auto _ : state) benchmark::DoNotOptimize(gemm_seq(a, b));
}
BENCHMARK(BM_Gemm128);

static void BM_Spmv(benchmark::State& state) {
  const auto a = CsrMatrix::random(5000, 5000, 0.002, 3);
  std::vector<double> x(5000, 1.0);
  for (auto _ : state) benchmark::DoNotOptimize(spmv_seq(a, x));
}
BENCHMARK(BM_Spmv);

int main(int argc, char** argv) {
  Table table("P3 — kernels: sequential vs Pyjama (4 threads), 1-core wall times");
  table.columns({"kernel", "seq ms", "pj static ms", "pj dynamic ms",
                 "pj guided ms", "agrees"});

  std::vector<KernelRow> rows;

  {  // FFT
    auto base = std::vector<Complex>(1 << 16);
    Rng rng(5);
    for (auto& c : base) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto seq_out = base;
    std::vector<Complex> par_out;
    rows.push_back(measure(
        "FFT 64k", [&] { fft_seq(seq_out); },
        [&](pj::Schedule s) {
          par_out = base;
          fft_pj(par_out, 4, false, {s, 0});
        },
        [&] {
          double d = 0;
          for (std::size_t i = 0; i < seq_out.size(); ++i) {
            d = std::max(d, std::abs(seq_out[i] - par_out[i]));
          }
          return d < 1e-9;
        }));
  }
  {  // MD
    auto sys_seq = make_md_system(384, 7);
    auto sys_par = make_md_system(384, 7);
    double pe_seq = 0, pe_par = 0;
    rows.push_back(measure(
        "MD forces n=384", [&] { pe_seq = compute_forces_seq(sys_seq); },
        [&](pj::Schedule s) {
          pe_par = compute_forces_pj(sys_par, 4, {s, 8});
        },
        [&] { return std::abs(pe_seq - pe_par) < 1e-9; }));
  }
  {  // Graph: PageRank on a skewed graph (imbalance → schedules matter)
    const auto g = make_skewed_graph(30000, 8.0, 11);
    std::vector<double> pr_seq, pr_par;
    rows.push_back(measure(
        "PageRank 30k skewed", [&] { pr_seq = pagerank_seq(g, 10); },
        [&](pj::Schedule s) { pr_par = pagerank_pj(g, 10, 4, 0.85, {s, 64}); },
        [&] {
          double d = 0;
          for (std::size_t i = 0; i < pr_seq.size(); ++i) {
            d = std::max(d, std::abs(pr_seq[i] - pr_par[i]));
          }
          return d < 1e-9;
        }));
  }
  {  // GEMM
    const auto a = Matrix::random(256, 256, 1);
    const auto b = Matrix::random(256, 256, 2);
    Matrix c_seq, c_par;
    rows.push_back(measure(
        "GEMM 256^3", [&] { c_seq = gemm_seq(a, b); },
        [&](pj::Schedule s) { c_par = gemm_pj(a, b, 4, {s, 8}); },
        [&] { return c_seq.max_abs_diff(c_par) < 1e-9; }));
  }
  {  // Stencil
    auto g_seq = make_heat_grid(256, 256);
    Grid2D g_par;
    rows.push_back(measure(
        "Jacobi 256^2 x50", [&] { jacobi_seq(g_seq, 50); },
        [&](pj::Schedule s) {
          g_par = make_heat_grid(256, 256);
          jacobi_pj(g_par, 50, 4, {s, 4});
        },
        [&] {
          double d = 0;
          for (std::size_t i = 0; i < g_seq.cells.size(); ++i) {
            d = std::max(d, std::abs(g_seq.cells[i] - g_par.cells[i]));
          }
          return d == 0.0;
        }));
  }

  for (const auto& r : rows) {
    table.add_row()
        .cell(r.name)
        .cell(r.seq_ms, 1)
        .cell(r.pj_static_ms, 1)
        .cell(r.pj_dynamic_ms, 1)
        .cell(r.pj_guided_ms, 1)
        .cell(r.agrees ? "yes" : "NO");
  }
  bench::emit(table);

  // Machine-model scaling per kernel shape.
  Table scaling("P3 — kernel-shape scaling on the machine model");
  scaling.columns({"kernel shape", "parallelism (work/span)", "speedup @8",
                   "speedup @16", "speedup @64"});
  struct Shape {
    std::string name;
    sim::TaskDag dag;
  };
  std::vector<Shape> shapes;
  shapes.push_back({"FFT (16 stages x 64k/len groups)",
                    sim::barrier_rounds_dag(16, 256, 1e-5)});
  shapes.push_back(
      {"MD forces (384 rows)", sim::fork_join_dag(std::vector<double>(384, 1e-4))});
  shapes.push_back({"PageRank (10 rounds x row blocks)",
                    sim::barrier_rounds_dag(10, 128, 1e-4)});
  shapes.push_back(
      {"GEMM (256 rows)", sim::fork_join_dag(std::vector<double>(256, 2e-4))});
  for (auto& s : shapes) {
    const auto p8 = sim::simulate(s.dag, sim::parc_8core());
    const auto p16 = sim::simulate(s.dag, sim::parc_16core());
    const auto p64 = sim::simulate(s.dag, sim::parc_64core());
    scaling.add_row()
        .cell(s.name)
        .cell(s.dag.parallelism(), 1)
        .cell(p8.speedup, 2)
        .cell(p16.speedup, 2)
        .cell(p64.speedup, 2);
  }
  bench::emit(scaling);

  return bench::run_micro(argc, argv);
}
