// P4: search for a string in text files of a folder — sequential vs
// ParallelTask multi-task, literal vs regex, corpus-size sweep, plus the
// interactivity metric: latency until the first result batch reaches the UI.
#include "bench_util.hpp"
#include "gui/gui.hpp"
#include "support/clock.hpp"
#include "text/text.hpp"

using namespace parc;
using namespace parc::text;

namespace {

ptask::Runtime& runtime() {
  static ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  return rt;
}

}  // namespace

static void BM_BmhSearchOneFile(benchmark::State& state) {
  CorpusOptions opts;
  opts.num_files = 1;
  opts.mean_words_per_file = 20000;
  const auto gen = make_corpus(opts, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        search_file_literal(gen.corpus.files[0], 0, opts.needle));
  }
}
BENCHMARK(BM_BmhSearchOneFile);

int main(int argc, char** argv) {
  Table table("P4 — folder search: sequential vs ParallelTask (4 workers)");
  table.columns({"files", "corpus MB", "matches", "seq ms", "ptask ms",
                 "regex ptask ms", "first batch ms"});
  for (std::size_t files : {128u, 512u, 2048u}) {
    CorpusOptions opts;
    opts.num_files = files;
    const auto gen = make_corpus(opts, 751);

    Stopwatch sw;
    const auto seq = search_corpus_seq(gen.corpus, opts.needle);
    const double t_seq = sw.elapsed_ms();

    std::atomic<double> first_batch_ms{-1.0};
    Stopwatch total;
    const auto par = search_corpus_ptask(
        gen.corpus, opts.needle, runtime(),
        [&](const std::vector<Match>&) {
          double expected = -1.0;
          first_batch_ms.compare_exchange_strong(expected,
                                                 total.elapsed_ms());
        });
    const double t_par = total.elapsed_ms();

    sw.reset();
    const auto re = search_corpus_regex_ptask(gen.corpus, opts.needle,
                                              runtime());
    const double t_regex = sw.elapsed_ms();

    PARC_CHECK(par == seq);
    PARC_CHECK(re == seq);
    table.add_row()
        .cell(static_cast<std::uint64_t>(files))
        .cell(static_cast<double>(gen.corpus.total_bytes()) / 1e6, 1)
        .cell(static_cast<std::uint64_t>(seq.size()))
        .cell(t_seq, 1)
        .cell(t_par, 1)
        .cell(t_regex, 1)
        .cell(first_batch_ms.load(), 2);
  }
  bench::emit(table);

  // Responsiveness: search with UI delivery while probe events arrive.
  CorpusOptions opts;
  opts.num_files = 1024;
  const auto gen = make_corpus(opts, 99);
  Table responsive("P4 — UI responsiveness during a live search");
  responsive.columns({"mode", "search ms", "probe p99 ms", "dropped %"});
  for (const bool on_edt : {true, false}) {
    gui::EventLoop loop;
    gui::ListModel<std::string> results(loop);
    gui::ResponsivenessProbe probe(loop, std::chrono::microseconds(1000));
    Stopwatch sw;
    if (on_edt) {
      // Anti-pattern: the whole search as one EDT event.
      loop.post_and_wait([&] {
        const auto m = search_corpus_seq(gen.corpus, opts.needle);
        for (const auto& match : m) {
          results.append(gen.corpus.files[match.file_index].path);
        }
      });
    } else {
      const auto m = search_corpus_ptask(
          gen.corpus, opts.needle, runtime(),
          [&](const std::vector<Match>& batch) {
            loop.post([&, batch] {
              for (const auto& match : batch) {
                results.append(gen.corpus.files[match.file_index].path);
              }
            });
          });
      benchmark::DoNotOptimize(m);
      loop.drain();
    }
    const double wall = sw.elapsed_ms();
    probe.stop();
    loop.drain();
    const auto latencies = loop.latency_samples_ms();
    Summary s;
    s.add_all(latencies);
    responsive.add_row()
        .cell(on_edt ? "search on EDT" : "ptask + incremental delivery")
        .cell(wall, 1)
        .cell(s.empty() ? 0.0 : s.percentile(99), 2)
        .cell(100.0 * gui::dropped_frame_fraction(latencies), 1);
  }
  bench::emit(responsive);

  return bench::run_micro(argc, argv);
}
