// ALLOC: §III-D doodle-poll allocation — the 2013 setting (60 students, 20
// groups, 10 topics x 2), choice-rank distribution over many arrival orders,
// and the fairness/capacity invariants.
#include "bench_util.hpp"
#include "course/allocation.hpp"

using namespace parc;
using namespace parc::course;

namespace {

std::vector<Group> cohort_groups(std::uint64_t seed) {
  std::vector<std::string> students;
  for (int i = 0; i < 60; ++i) students.push_back("s" + std::to_string(i));
  auto groups = form_groups(students, 3);
  assign_preferences(groups, 10, seed);
  return groups;
}

}  // namespace

static void BM_AllocateFifo(benchmark::State& state) {
  auto groups = cohort_groups(7);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_fifo(groups, 10, 2, arrival));
  }
}
BENCHMARK(BM_AllocateFifo);

int main(int argc, char** argv) {
  // One concrete semester.
  auto groups = cohort_groups(2013);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  Rng rng(2013);
  shuffle(arrival.begin(), arrival.end(), rng);
  const auto result = allocate_fifo(groups, 10, 2, arrival);
  const auto topics = softeng751_topics();

  Table alloc("Doodle-poll outcome, 2013 cohort (10 topics x 2 groups)");
  alloc.columns({"topic", "android?", "groups", "their choice rank"});
  for (std::size_t t = 0; t < topics.size(); ++t) {
    std::string gs, ranks;
    for (std::size_t g : result.groups_of_topic[t]) {
      if (!gs.empty()) {
        gs += ",";
        ranks += ",";
      }
      gs += "G" + std::to_string(g);
      ranks += std::to_string(result.rank_received[g]);
    }
    alloc.row({topics[t].title, topics[t].android_option ? "yes" : "no", gs,
               ranks});
  }
  bench::emit(alloc);

  // Choice-rank distribution over 200 seeded semesters.
  std::vector<std::size_t> rank_histogram(11, 0);
  bool all_capacity_ok = true;
  bool all_fifo_fair = true;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    auto g = cohort_groups(seed);
    std::vector<std::size_t> order(g.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    Rng r(seed * 17);
    shuffle(order.begin(), order.end(), r);
    const auto res = allocate_fifo(g, 10, 2, order);
    all_capacity_ok &= allocation_respects_capacity(res, 2);
    all_fifo_fair &= allocation_is_fifo_fair(g, res, order);
    for (std::size_t rank : res.rank_received) ++rank_histogram[rank];
  }
  Table dist("Choice rank received (200 seeded semesters, 20 groups each)");
  dist.columns({"rank", "groups", "share %"});
  const double total = 200.0 * 20.0;
  for (std::size_t rank = 1; rank <= 10; ++rank) {
    if (rank_histogram[rank] == 0) continue;
    dist.add_row()
        .cell(static_cast<std::uint64_t>(rank))
        .cell(static_cast<std::uint64_t>(rank_histogram[rank]))
        .cell(100.0 * static_cast<double>(rank_histogram[rank]) / total, 1);
  }
  bench::emit(dist);

  Table invariants("Invariants over all 200 semesters");
  invariants.columns({"invariant", "holds"});
  invariants.row({"capacity never exceeded", all_capacity_ok ? "yes" : "NO"});
  invariants.row({"FIFO fairness", all_fifo_fair ? "yes" : "NO"});
  bench::emit(invariants);

  return bench::run_micro(argc, argv);
}
