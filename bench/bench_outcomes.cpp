// OUTCOMES: §V-B — the community-dynamics series: continuation into PARC
// projects, the emerging mentor pool ("constant stream of mentoring"), and
// the tool-feedback loop (more users → more bugs found → more fixed).
#include "bench_util.hpp"
#include "course/community.hpp"

using namespace parc;
using namespace parc::course;

static void BM_SimulateCommunity(benchmark::State& state) {
  CommunityParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_community(params, 8, 6, 42));
  }
}
BENCHMARK(BM_SimulateCommunity);

int main(int argc, char** argv) {
  CommunityParams params;
  const auto series = simulate_community(params, 8, 6, 2013);

  Table table("§V-B outcomes — 8 simulated semesters of the PARC community");
  table.columns({"semester", "course students", "new project students",
                 "experienced members", "mentors", "new per mentor",
                 "bug reports", "bugs fixed", "backlog"});
  for (const auto& s : series) {
    table.add_row()
        .cell(static_cast<std::uint64_t>(s.semester))
        .cell(static_cast<std::uint64_t>(s.course_students))
        .cell(static_cast<std::uint64_t>(s.new_project_students))
        .cell(static_cast<std::uint64_t>(s.experienced_members))
        .cell(static_cast<std::uint64_t>(s.mentors_available))
        .cell(s.mentoring_ratio, 2)
        .cell(static_cast<std::uint64_t>(s.bug_reports))
        .cell(static_cast<std::uint64_t>(s.bugs_fixed))
        .cell(static_cast<std::uint64_t>(s.open_bugs));
  }
  bench::emit(table);

  std::printf(
      "\nreading the table: after two semesters the experienced-member pool "
      "self-sustains (the paper's 'overlap of experienced and new "
      "Masters-taught project students provides a constant stream of "
      "mentoring'), and the bug backlog stabilises because the fix rate "
      "keeps pace with the enlarged user base.\n");

  return bench::run_micro(argc, argv);
}
