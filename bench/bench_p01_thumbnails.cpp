// P1: thumbnails of images in a folder — strategy comparison the two
// student groups ran: wall time, thread cost, and GUI responsiveness
// (probe-event latency while rendering), across folder sizes; plus the
// machine-model replay that shows how the pooled strategy scales on the
// PARC machines.
#include "bench_util.hpp"
#include "gui/gui.hpp"
#include "img/thumbnails.hpp"
#include "sim/machine.hpp"
#include "support/stats.hpp"

using namespace parc;

namespace {

struct StrategyOutcome {
  img::ThumbnailRun run;
  double p99_latency_ms = 0.0;
  double dropped_pct = 0.0;
};

StrategyOutcome measure(const img::ImageFolder& folder,
                        img::ThumbnailStrategy strategy,
                        ptask::Runtime& runtime) {
  gui::EventLoop loop;
  gui::ListModel<img::Image> gallery(loop);
  runtime.set_event_dispatcher(loop.dispatcher());
  gui::ResponsivenessProbe probe(loop, std::chrono::microseconds(1000));
  StrategyOutcome out;
  out.run = img::render_gallery(folder, 64, img::Filter::kBilinear, strategy,
                                loop, gallery, runtime);
  probe.stop();
  loop.drain();
  const auto latencies = loop.latency_samples_ms();
  Summary s;
  s.add_all(latencies);
  out.p99_latency_ms = s.empty() ? 0.0 : s.percentile(99);
  out.dropped_pct = 100.0 * gui::dropped_frame_fraction(latencies);
  runtime.set_event_dispatcher(nullptr);
  return out;
}

}  // namespace

static void BM_ResizeOneImage(benchmark::State& state) {
  const auto src = img::generate_image(512, 512, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(img::resize(src, 64, 64, img::Filter::kBilinear));
  }
}
BENCHMARK(BM_ResizeOneImage);

int main(int argc, char** argv) {
  ptask::Runtime runtime(ptask::Runtime::Config{4, {}});

  Table table("P1 — thumbnail strategies (box 64, bilinear)");
  table.columns({"images", "strategy", "wall ms", "extra threads",
                 "probe p99 ms", "dropped frames %"});
  for (std::size_t images : {16u, 48u, 96u}) {
    const auto folder = img::make_image_folder(images, 256, 1280, 2013);
    for (const auto strategy :
         {img::ThumbnailStrategy::kOnEventThread,
          img::ThumbnailStrategy::kSingleWorker,
          img::ThumbnailStrategy::kThreadPerImage,
          img::ThumbnailStrategy::kPTaskMulti}) {
      const auto out = measure(folder, strategy, runtime);
      table.add_row()
          .cell(static_cast<std::uint64_t>(images))
          .cell(img::to_string(strategy))
          .cell(out.run.wall_ms, 1)
          .cell(static_cast<std::uint64_t>(out.run.peak_threads))
          .cell(out.p99_latency_ms, 2)
          .cell(out.dropped_pct, 1);
    }
  }
  bench::emit(table);

  // Machine-model replay: per-image resize cost proportional to pixels,
  // pooled strategy = fork-join DAG; predicted speedup on the lab machines.
  const auto folder = img::make_image_folder(96, 256, 1280, 2013);
  std::vector<double> costs;
  for (const auto& image : folder.images) {
    costs.push_back(static_cast<double>(image.width()) * image.height() * 1e-8);
  }
  const auto dag = sim::fork_join_dag(costs);
  Table scaling("P1 — pooled strategy replayed on the PARC machines (96 images)");
  scaling.columns({"machine", "cores", "speedup", "efficiency %"});
  for (const auto& machine :
       {sim::parc_8core(), sim::parc_16core(), sim::parc_64core()}) {
    const auto sim_out = sim::simulate(dag, machine);
    scaling.add_row()
        .cell(machine.name)
        .cell(static_cast<std::uint64_t>(machine.cores))
        .cell(sim_out.speedup, 2)
        .cell(100.0 * sim_out.efficiency, 1);
  }
  bench::emit(scaling);

  return bench::run_micro(argc, argv);
}
