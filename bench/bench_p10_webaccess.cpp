// P10: fast web access through concurrent connections — the connection-count
// sweep on the exact virtual-clock model (the paper's "how many connections
// should be opened?"), a latency/bandwidth regime comparison locating the
// knee, and a live ParallelTask run at reduced time scale.
#include "bench_util.hpp"
#include "net/downloader.hpp"

using namespace parc;
using namespace parc::net;

static void BM_SimulateFetch64(benchmark::State& state) {
  NetParams params;
  const auto pages = make_page_set(200, params, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_fetch(pages, 64, params));
  }
}
BENCHMARK(BM_SimulateFetch64);

int main(int argc, char** argv) {
  NetParams params;  // 80 ms latency, 256 kB pages, 100 Mbit/s
  const auto pages = make_page_set(1000, params, 2013);

  Table sweep("P10 — connection sweep (1000 pages, virtual-clock model)");
  sweep.columns({"connections", "makespan s", "throughput pages/s",
                 "speedup vs 1", "bandwidth util %"});
  const double t1 = simulate_fetch(pages, 1, params).makespan_s;
  for (std::size_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto r = simulate_fetch(pages, c, params);
    sweep.add_row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(r.makespan_s, 3)
        .cell(r.throughput_pages_s, 1)
        .cell(t1 / r.makespan_s, 2)
        .cell(100.0 * r.bandwidth_utilisation, 1);
  }
  bench::emit(sweep);

  // Regime study: where the knee sits depends on latency x bandwidth.
  Table regimes("P10 — knee location by network regime (makespan s)");
  regimes.columns({"regime", "c=1", "c=8", "c=64", "c=256", "knee"});
  struct Regime {
    const char* name;
    NetParams p;
  };
  std::vector<Regime> regimes_list;
  {
    Regime slow_links{"high latency (300ms), fat pipe", params};
    slow_links.p.mean_latency_s = 0.3;
    regimes_list.push_back(slow_links);
    Regime thin_pipe{"low latency (20ms), thin pipe (8Mbit)", params};
    thin_pipe.p.mean_latency_s = 0.02;
    thin_pipe.p.bandwidth_bps = 1e6;
    regimes_list.push_back(thin_pipe);
    Regime balanced{"80ms, 100Mbit (default)", params};
    regimes_list.push_back(balanced);
  }
  for (const auto& regime : regimes_list) {
    const auto rpages = make_page_set(600, regime.p, 7);
    double prev = simulate_fetch(rpages, 1, regime.p).makespan_s;
    std::size_t knee = 512;
    double t8 = 0, t64 = 0, t256 = 0;
    for (std::size_t c : {8u, 64u, 256u}) {
      const double t = simulate_fetch(rpages, c, regime.p).makespan_s;
      if (c == 8) t8 = t;
      if (c == 64) t64 = t;
      if (c == 256) t256 = t;
    }
    // Knee: first doubling step with < 10% improvement.
    prev = simulate_fetch(rpages, 1, regime.p).makespan_s;
    for (std::size_t c = 2; c <= 512; c *= 2) {
      const double t = simulate_fetch(rpages, c, regime.p).makespan_s;
      if (t > prev * 0.9) {
        knee = c / 2;
        break;
      }
      prev = t;
    }
    regimes.add_row()
        .cell(regime.name)
        .cell(simulate_fetch(rpages, 1, regime.p).makespan_s, 2)
        .cell(t8, 2)
        .cell(t64, 2)
        .cell(t256, 2)
        .cell(static_cast<std::uint64_t>(knee));
  }
  bench::emit(regimes);

  // Per-host connection caps: the "how many connections *per server*"
  // refinement. A Zipf-popular host dominates the page set, so the per-host
  // cap — not the client budget — sets the knee.
  Table hosts("P10 — per-host caps (600 pages over 8 Zipf hosts, 64 client connections)");
  hosts.columns({"per-host cap", "makespan s", "vs uncapped"});
  {
    NetParams hp = params;
    hp.num_hosts = 8;
    const auto hpages = make_page_set(600, hp, 23);
    const double t_uncapped = simulate_fetch(hpages, 64, hp).makespan_s;
    for (std::size_t cap : {0u, 16u, 6u, 2u, 1u}) {
      NetParams capped = hp;
      capped.per_host_cap = cap;
      const double t = simulate_fetch(hpages, 64, capped).makespan_s;
      hosts.add_row()
          .cell(cap == 0 ? std::string("unlimited") : std::to_string(cap))
          .cell(t, 3)
          .cell(t / t_uncapped, 2);
    }
  }
  bench::emit(hosts);

  // Live run through interactive tasks (1/100 time scale).
  ptask::Runtime runtime(ptask::Runtime::Config{2, {}});
  const auto live_pages = make_page_set(80, params, 11);
  SimWebServer server(live_pages, params, 0.01);
  Table live("P10 — live ParallelTask downloader (80 pages, 1/100 time)");
  live.columns({"connections", "wall ms", "speedup vs sequential"});
  const auto seq = download_sequential(server);
  live.add_row().cell("1 (sequential)").cell(seq.wall_ms, 1).cell(1.0, 2);
  for (std::size_t c : {4u, 16u, 64u}) {
    const auto r = download_all(server, c, runtime);
    live.add_row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(r.wall_ms, 1)
        .cell(seq.wall_ms / r.wall_ms, 2);
  }
  bench::emit(live);

  return bench::run_micro(argc, argv);
}
