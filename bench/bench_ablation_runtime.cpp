// ABLATION: the runtime design knobs DESIGN.md calls out —
//  (a) task spawn overhead: ParallelTask task vs raw std::thread vs plain
//      function call (why pooled tasks beat thread-per-item);
//  (b) chunk-size sweep for dynamic scheduling (grain vs dispenser traffic);
//  (c) work-stealing statistics under recursive fork/join (helping waits in
//      action);
//  (d) machine-model sensitivity to per-task overhead (when fine-grained
//      tasking stops paying off).
#include "bench_util.hpp"
#include "pj/pj.hpp"
#include "ptask/ptask.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"

#include <thread>

using namespace parc;

static void BM_SpawnPTask(benchmark::State& state) {
  static ptask::Runtime rt(ptask::Runtime::Config{2, {}});
  for (auto _ : state) {
    auto t = ptask::run(rt, [] { return 1; });
    benchmark::DoNotOptimize(t.get());
  }
}
BENCHMARK(BM_SpawnPTask);

static void BM_SpawnRawThread(benchmark::State& state) {
  for (auto _ : state) {
    int out = 0;
    std::thread t([&] { out = 1; });
    t.join();
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SpawnRawThread);

static void BM_PlainCall(benchmark::State& state) {
  auto fn = [] { return 1; };
  for (auto _ : state) benchmark::DoNotOptimize(fn());
}
BENCHMARK(BM_PlainCall);

int main(int argc, char** argv) {
  // (a) spawn-cost table (quick inline measurement; precise numbers come
  // from the registered micro-benchmarks below).
  {
    Table spawn("Ablation (a) — cost per unit of concurrency (10k spawns)");
    spawn.columns({"mechanism", "total ms", "us each"});
    constexpr int kSpawns = 10000;
    ptask::Runtime rt(ptask::Runtime::Config{2, {}});
    {
      Stopwatch sw;
      ptask::TaskGroup group(rt);
      for (int i = 0; i < kSpawns; ++i) group.run([] {});
      group.wait();
      const double ms = sw.elapsed_ms();
      spawn.add_row().cell("ptask task (pooled)").cell(ms, 1).cell(
          ms * 1000.0 / kSpawns, 2);
    }
    {
      Stopwatch sw;
      constexpr int kThreads = 500;  // 10k raw threads would take minutes
      for (int i = 0; i < kThreads; ++i) {
        std::thread t([] {});
        t.join();
      }
      const double ms = sw.elapsed_ms();
      spawn.add_row()
          .cell("std::thread (join each)")
          .cell(ms * kSpawns / kThreads, 1)
          .cell(ms * 1000.0 / kThreads, 2);
    }
    bench::emit(spawn);
  }

  // (b) dynamic chunk sweep on a skewed loop.
  {
    Table chunks("Ablation (b) — dynamic schedule chunk size (skewed 100k-iter loop)");
    chunks.columns({"chunk", "wall ms"});
    for (std::int64_t chunk : {1, 8, 64, 512, 4096, 32768}) {
      Stopwatch sw;
      std::atomic<std::uint64_t> sink{0};
      pj::parallel_for(
          4, 0, 100000,
          [&](std::int64_t i) {
            sink.fetch_add(spin_work(static_cast<std::uint64_t>(i % 37)),
                           std::memory_order_relaxed);
          },
          {pj::Schedule::kDynamic, chunk});
      chunks.add_row().cell(static_cast<std::uint64_t>(chunk)).cell(
          sw.elapsed_ms(), 1);
    }
    bench::emit(chunks);
  }

  // (c) stealing statistics under recursive fork/join.
  {
    ptask::Runtime rt(ptask::Runtime::Config{4, {}});
    std::function<long(int)> fib = [&](int n) -> long {
      if (n < 14) {
        long a = 0, b = 1;
        for (int i = 0; i < n; ++i) {
          const long next = a + b;
          a = b;
          b = next;
        }
        return a;
      }
      auto left = ptask::run(rt, [&, n] { return fib(n - 1); });
      const long right = fib(n - 2);
      return left.get() + right;
    };
    const long result = fib(26);
    const auto stats = rt.pool().stats();
    Table steals("Ablation (c) — pool statistics after recursive fib(26)");
    steals.columns({"metric", "value"});
    steals.add_row().cell("result (oracle 121393)").cell(
        static_cast<std::int64_t>(result));
    steals.add_row().cell("tasks executed by workers").cell(stats.executed);
    steals.add_row().cell("tasks obtained by stealing").cell(stats.stolen);
    steals.add_row().cell("tasks run inside helping waits").cell(stats.helped);
    steals.add_row().cell("worker park events").cell(stats.parked);
    bench::emit(steals);
  }

  // (d) machine-model overhead sensitivity: same DAG, growing dispatch cost.
  {
    Table sensitivity("Ablation (d) — speedup vs per-task overhead (16 cores, 4096 x 10us tasks)");
    sensitivity.columns({"overhead us", "speedup", "efficiency %"});
    const auto dag = sim::fork_join_dag(std::vector<double>(4096, 1e-5));
    for (double overhead_us : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0}) {
      const auto out = sim::simulate(
          dag, sim::MachineParams{16, overhead_us * 1e-6, "x"});
      sensitivity.add_row()
          .cell(overhead_us, 1)
          .cell(out.speedup, 2)
          .cell(100.0 * out.efficiency, 1);
    }
    bench::emit(sensitivity);
  }

  return bench::run_micro(argc, argv);
}
