// ASSESS: §III-C assessment schema — weights table, a synthetic 60-student
// cohort pushed through the grade pipeline, and the peer-adjustment effect.
#include "bench_util.hpp"
#include "course/assessment.hpp"
#include "support/rng.hpp"

using namespace parc;
using namespace parc::course;

namespace {

std::vector<StudentRecord> synthetic_cohort(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<StudentRecord> cohort;
  for (std::size_t i = 0; i < n; ++i) {
    StudentRecord s;
    s.id = "student_" + std::to_string(i);
    s.group = i / 3;
    // Ability factor correlates test and project performance.
    const double ability = rng.uniform(0.5, 1.0);
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      s.raw[c] = std::clamp(100.0 * ability + rng.normal(0.0, 8.0), 0.0, 100.0);
    }
    cohort.push_back(std::move(s));
  }
  return cohort;
}

}  // namespace

static void BM_FinalGradeCohort(benchmark::State& state) {
  const auto cohort = synthetic_cohort(60, 1);
  for (auto _ : state) {
    double sum = 0;
    for (const auto& s : cohort) sum += final_grade(s);
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_FinalGradeCohort);

int main(int argc, char** argv) {
  Table weights("Assessment schema (§III-C)");
  weights.columns({"component", "weight %", "assessed"});
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    const auto comp = static_cast<Component>(c);
    weights.add_row()
        .cell(to_string(comp))
        .cell(kWeights[c], 0)
        .cell(is_group_component(comp) ? "group (peer-adjusted)"
                                       : "individual");
  }
  bench::emit(weights);

  const auto cohort = synthetic_cohort(60, 2013);
  const auto stats = cohort_stats(cohort);
  Table outcome("Synthetic 60-student cohort through the grade pipeline");
  outcome.columns({"metric", "value"});
  outcome.add_row().cell("mean final grade").cell(stats.mean, 1);
  outcome.add_row().cell("stddev").cell(stats.stddev, 1);
  outcome.add_row().cell("min").cell(stats.min, 1);
  outcome.add_row().cell("max").cell(stats.max, 1);
  outcome.add_row()
      .cell("test1 vs implementation correlation")
      .cell(stats.test1_impl_correlation, 2);
  bench::emit(outcome);

  // Peer adjustment: what a 0.8 factor does to a median student.
  Table peer("Peer-evaluation adjustment effect (group components only)");
  peer.columns({"peer factor", "final grade (all raw = 75)"});
  for (double f : {1.0, 0.9, 0.8, 0.6}) {
    StudentRecord s;
    s.raw = {75, 75, 75, 75, 75};
    s.peer_factor = f;
    peer.add_row().cell(f, 2).cell(final_grade(s), 1);
  }
  bench::emit(peer);

  return bench::run_micro(argc, argv);
}
