// FIG2: regenerate Figure 2 — the 12-teaching-week course structure with
// per-week usage codes (IT / A / P / ST), plus the validator verdicts for
// every placement the paper states.
#include "bench_util.hpp"
#include "course/plan.hpp"

using namespace parc;
using namespace parc::course;

static void BM_GenerateAndValidatePlan(benchmark::State& state) {
  for (auto _ : state) {
    const auto plan = softeng751_plan();
    benchmark::DoNotOptimize(validate_plan(plan));
  }
}
BENCHMARK(BM_GenerateAndValidatePlan);

int main(int argc, char** argv) {
  const auto plan = softeng751_plan();

  Table weeks("Figure 2 — SoftEng 751 course structure");
  weeks.columns({"week", "use", "notes"});
  for (const auto& w : plan) {
    weeks.row({w.study_break ? "break" : std::to_string(w.number),
               week_use_code(w.uses), w.note});
  }
  bench::emit(weeks);

  const auto checks = validate_plan(plan);
  Table verdicts("Structural checks (each stated in the paper)");
  verdicts.columns({"check", "holds"});
  verdicts.row({"weeks 1-5 are instructor-led teaching",
                checks.first_five_weeks_teaching ? "yes" : "NO"});
  verdicts.row({"Test 1 in week 6", checks.test1_in_week6 ? "yes" : "NO"});
  verdicts.row({"group seminars span weeks 7-10",
                checks.seminars_weeks_7_to_10 ? "yes" : "NO"});
  verdicts.row({"Test 2 in week 11", checks.test2_in_week11 ? "yes" : "NO"});
  verdicts.row({"implementation + report due in week 12",
                checks.final_due_week12 ? "yes" : "NO"});
  verdicts.row({"project development weeks (paper: 8)",
                std::to_string(checks.project_weeks)});
  bench::emit(verdicts);

  return bench::run_micro(argc, argv);
}
