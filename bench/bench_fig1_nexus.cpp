// FIG1: regenerate Figure 1 — the research-teaching nexus quadrants and
// where every SoftEng 751 activity sits, including the paper's observation
// that research-oriented is the one deliberately uncovered quadrant.
#include "bench_util.hpp"
#include "course/nexus.hpp"

using namespace parc;
using namespace parc::course;

static void BM_ClassifyActivity(benchmark::State& state) {
  const auto activities = softeng751_activities();
  for (auto _ : state) {
    for (const auto& a : activities) {
      benchmark::DoNotOptimize(a.category());
    }
  }
}
BENCHMARK(BM_ClassifyActivity);

int main(int argc, char** argv) {
  Table quadrants("Figure 1 — research-teaching nexus (emphasis x participation)");
  quadrants.columns({"quadrant", "content emphasis", "student role"});
  quadrants.row({"research-led", "research content", "audience"});
  quadrants.row({"research-oriented", "research processes", "audience"});
  quadrants.row({"research-tutored", "research content", "participants"});
  quadrants.row({"research-based", "research processes", "participants"});
  bench::emit(quadrants);

  Table placement("SoftEng 751 activities placed on the nexus");
  placement.columns({"activity", "quadrant"});
  const auto activities = softeng751_activities();
  for (const auto& a : activities) {
    placement.row({a.name, to_string(a.category())});
  }
  bench::emit(placement);

  Table coverage("Quadrant coverage (paper: research-oriented absent by design)");
  coverage.columns({"quadrant", "covered"});
  const auto covered = covered_categories(activities);
  for (const auto c :
       {NexusCategory::kResearchLed, NexusCategory::kResearchOriented,
        NexusCategory::kResearchTutored, NexusCategory::kResearchBased}) {
    const bool has =
        std::find(covered.begin(), covered.end(), c) != covered.end();
    coverage.row({to_string(c), has ? "yes" : "no (by design)"});
  }
  bench::emit(coverage);

  return bench::run_micro(argc, argv);
}
