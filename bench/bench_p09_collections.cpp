// P9: parallel use of collections — throughput of each map/queue variant
// under read/write mixes and thread counts: coarse std::mutex vs fair
// ticket vs unfair spin locks, lock striping, and the two queue designs.
#include "bench_util.hpp"
#include "conc/conc.hpp"
#include "support/clock.hpp"
#include "support/rng.hpp"

#include <thread>

using namespace parc;
using namespace parc::conc;

namespace {

constexpr std::size_t kOpsPerThread = 40000;
constexpr std::size_t kKeySpace = 1024;

/// Mixed read/write workload against any map-like type with get/put.
template <typename Map>
double map_throughput_mops(Map& map, unsigned threads, double read_fraction) {
  std::atomic<unsigned> started{0};
  Stopwatch sw;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(1000 + t);
      started.fetch_add(1);
      while (started.load() < threads) std::this_thread::yield();
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const auto key = static_cast<int>(rng.below(kKeySpace));
        if (rng.uniform() < read_fraction) {
          benchmark::DoNotOptimize(map.get(key));
        } else {
          map.put(key, static_cast<int>(i));
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double total_ops =
      static_cast<double>(threads) * static_cast<double>(kOpsPerThread);
  return total_ops / sw.elapsed_us();  // Mops/s
}

template <typename Queue>
double queue_throughput_mops(Queue& queue, unsigned producers,
                             unsigned consumers, std::size_t items) {
  std::atomic<std::size_t> consumed{0};
  Stopwatch sw;
  std::vector<std::thread> threads;
  for (unsigned p = 0; p < producers; ++p) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < items; ++i) {
        if constexpr (requires { queue.enqueue(1); }) {
          queue.enqueue(static_cast<int>(i));
        } else {
          while (!queue.try_enqueue(static_cast<int>(i))) {
            std::this_thread::yield();
          }
        }
      }
    });
  }
  const std::size_t total = producers * items;
  for (unsigned c = 0; c < consumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < total) {
        if (auto v = queue.try_dequeue()) {
          benchmark::DoNotOptimize(*v);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  return static_cast<double>(total) / sw.elapsed_us();
}

}  // namespace

int main(int argc, char** argv) {
  Table maps("P9 — map variants: throughput (Mops/s, 1-core container)");
  maps.columns({"implementation", "threads", "95/5 r/w", "70/30 r/w",
                "50/50 r/w"});
  for (unsigned threads : {1u, 2u, 4u}) {
    {
      LockedMap<int, int, std::mutex> m;
      maps.add_row()
          .cell("coarse std::mutex")
          .cell(static_cast<std::uint64_t>(threads))
          .cell(map_throughput_mops(m, threads, 0.95), 2)
          .cell(map_throughput_mops(m, threads, 0.70), 2)
          .cell(map_throughput_mops(m, threads, 0.50), 2);
    }
    {
      LockedMap<int, int, TicketLock> m;
      maps.add_row()
          .cell("coarse ticket (fair)")
          .cell(static_cast<std::uint64_t>(threads))
          .cell(map_throughput_mops(m, threads, 0.95), 2)
          .cell(map_throughput_mops(m, threads, 0.70), 2)
          .cell(map_throughput_mops(m, threads, 0.50), 2);
    }
    {
      LockedMap<int, int, SpinLock> m;
      maps.add_row()
          .cell("coarse spin (unfair)")
          .cell(static_cast<std::uint64_t>(threads))
          .cell(map_throughput_mops(m, threads, 0.95), 2)
          .cell(map_throughput_mops(m, threads, 0.70), 2)
          .cell(map_throughput_mops(m, threads, 0.50), 2);
    }
    {
      StripedHashMap<int, int> m(32);
      maps.add_row()
          .cell("striped x32")
          .cell(static_cast<std::uint64_t>(threads))
          .cell(map_throughput_mops(m, threads, 0.95), 2)
          .cell(map_throughput_mops(m, threads, 0.70), 2)
          .cell(map_throughput_mops(m, threads, 0.50), 2);
    }
  }
  bench::emit(maps);

  Table queues("P9 — queue variants: 2 producers + 2 consumers, 100k items each");
  queues.columns({"implementation", "Mops/s"});
  {
    MichaelScottQueue<int> q;
    queues.add_row()
        .cell("Michael-Scott two-lock")
        .cell(queue_throughput_mops(q, 2, 2, 100000), 2);
  }
  {
    MpmcRing<int> q(4096);
    queues.add_row()
        .cell("Vyukov MPMC ring (lock-free)")
        .cell(queue_throughput_mops(q, 2, 2, 100000), 2);
  }
  bench::emit(queues);

  std::printf(
      "\nexpected shape (and what the 64-core runs showed the students): "
      "striping/lock-free pull ahead as threads and write share grow; the "
      "fair ticket lock pays a handover penalty under contention that the "
      "unfair spinlock avoids at the cost of starvation risk. On this "
      "1-core container absolute gaps compress — the ranking is what "
      "transfers.\n");

  return bench::run_micro(argc, argv);
}
