// P7: PDF searching — granularity study (per-document / per-chunk /
// per-page): wall time, task count, and the interactivity metric (time to
// first / median match delivery), plus machine-model scaling per
// granularity where skewed document sizes make the difference.
#include "bench_util.hpp"
#include "sim/machine.hpp"
#include "support/stats.hpp"
#include "text/text.hpp"

using namespace parc;
using namespace parc::text;

namespace {

ptask::Runtime& runtime() {
  static ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  return rt;
}

std::size_t task_count(const GeneratedPdfLibrary& lib, PdfGranularity g,
                       std::size_t chunk) {
  std::size_t units = 0;
  for (const auto& d : lib.documents) {
    switch (g) {
      case PdfGranularity::kPerDocument: units += 1; break;
      case PdfGranularity::kPerPage: units += d.pages.size(); break;
      case PdfGranularity::kPerChunk:
        units += (d.pages.size() + chunk - 1) / chunk;
        break;
    }
  }
  return units;
}

}  // namespace

static void BM_SearchOnePage(benchmark::State& state) {
  PdfLibraryOptions opts;
  opts.num_documents = 1;
  const auto lib = make_pdf_library(opts, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_all_literal(lib.documents[0].pages[0], opts.needle));
  }
}
BENCHMARK(BM_SearchOnePage);

int main(int argc, char** argv) {
  PdfLibraryOptions opts;
  opts.num_documents = 96;
  const auto lib = make_pdf_library(opts, 2013);
  std::printf("library: %zu documents, %zu pages total\n",
              lib.documents.size(), lib.total_pages());

  const auto seq = search_pdfs_seq(lib, opts.needle);

  Table table("P7 — PDF search granularity (4 workers)");
  table.columns({"granularity", "tasks", "wall ms", "first match ms",
                 "median match ms", "matches ok"});
  table.add_row()
      .cell("sequential")
      .cell(std::uint64_t{1})
      .cell(seq.wall_ms, 1)
      .cell(seq.delivery_ms.empty() ? 0.0 : seq.delivery_ms.front(), 2)
      .cell(seq.delivery_ms.empty()
                ? 0.0
                : seq.delivery_ms[seq.delivery_ms.size() / 2],
            2)
      .cell("-");
  for (const auto g :
       {PdfGranularity::kPerDocument, PdfGranularity::kPerChunk,
        PdfGranularity::kPerPage}) {
    const auto result = search_pdfs_ptask(lib, opts.needle, g, runtime(), 8);
    table.add_row()
        .cell(to_string(g))
        .cell(static_cast<std::uint64_t>(task_count(lib, g, 8)))
        .cell(result.wall_ms, 1)
        .cell(result.delivery_ms.empty() ? 0.0 : result.delivery_ms.front(), 2)
        .cell(result.delivery_ms.empty()
                  ? 0.0
                  : result.delivery_ms[result.delivery_ms.size() / 2],
              2)
        .cell(result.matches == seq.matches ? "yes" : "NO");
  }
  bench::emit(table);

  // Machine-model comparison: with Pareto page counts, per-document tasks
  // leave the longest document as the straggler; finer granularity fixes it.
  Table scaling("P7 — granularity scaling on the machine model (per-page cost 1)");
  scaling.columns({"granularity", "parallelism", "speedup @4", "speedup @16",
                   "speedup @64"});
  for (const auto g :
       {PdfGranularity::kPerDocument, PdfGranularity::kPerChunk,
        PdfGranularity::kPerPage}) {
    sim::TaskDag dag;
    for (const auto& d : lib.documents) {
      switch (g) {
        case PdfGranularity::kPerDocument:
          dag.add_task(static_cast<double>(d.pages.size()));
          break;
        case PdfGranularity::kPerPage:
          for (std::size_t p = 0; p < d.pages.size(); ++p) dag.add_task(1.0);
          break;
        case PdfGranularity::kPerChunk:
          for (std::size_t p = 0; p < d.pages.size(); p += 8) {
            dag.add_task(static_cast<double>(
                std::min<std::size_t>(8, d.pages.size() - p)));
          }
          break;
      }
    }
    sim::SweepOptions sweep_opts;
    sweep_opts.cores = {4, 16, 64};
    sweep_opts.machine = sim::MachineParams{1, 0.01, "pdf"};
    const sim::SweepTable table = sim::sweep(dag, sweep_opts);
    scaling.add_row()
        .cell(to_string(g))
        .cell(dag.parallelism(), 1)
        .cell(table.speedup_at(4), 2)
        .cell(table.speedup_at(16), 2)
        .cell(table.speedup_at(64), 2);
  }
  bench::emit(scaling);

  return bench::run_micro(argc, argv);
}
