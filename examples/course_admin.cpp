// The course itself as an application: run one semester of SoftEng 751
// administration — form groups, release the doodle poll, allocate topics,
// generate commit logs, compute grades, and run the end-of-course survey.
//
//   $ ./course_admin [num_students] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "course/course.hpp"
#include "support/table.hpp"

using namespace parc;
using namespace parc::course;

int main(int argc, char** argv) {
  const std::size_t num_students =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2013;

  // 1. Cohort and groups.
  std::vector<std::string> students;
  for (std::size_t i = 0; i < num_students; ++i) {
    students.push_back("student_" + std::to_string(i));
  }
  auto groups = form_groups(students, 3);
  std::printf("cohort: %zu students in %zu groups of 3\n", students.size(),
              groups.size());

  // 2. Doodle-poll topic allocation.
  const auto topics = softeng751_topics();
  assign_preferences(groups, topics.size(), seed);
  std::vector<std::size_t> arrival(groups.size());
  for (std::size_t i = 0; i < arrival.size(); ++i) arrival[i] = i;
  Rng rng(seed ^ 0xD00D1E);
  shuffle(arrival.begin(), arrival.end(), rng);
  const auto allocation = allocate_fifo(groups, topics.size(), 2, arrival);

  Table alloc_table("Doodle-poll allocation (first-in first-served, 2 groups/topic)");
  alloc_table.columns({"topic", "groups", "choice ranks"});
  for (std::size_t t = 0; t < topics.size(); ++t) {
    std::string who, ranks;
    for (std::size_t g : allocation.groups_of_topic[t]) {
      if (!who.empty()) {
        who += ", ";
        ranks += ", ";
      }
      who += "G" + std::to_string(g);
      ranks += "#" + std::to_string(allocation.rank_received[g]);
    }
    alloc_table.row({topics[t].title, who, ranks});
  }
  alloc_table.print(std::cout);

  // 3. Eight weeks of project work → subversion logs → contribution check.
  Table contrib_table("Contribution analysis from subversion logs");
  contrib_table.columns({"group", "commits", "max member share %", "balanced",
                         "layout ok %"});
  Rng grade_rng(seed ^ 0x9DADE5);
  std::vector<StudentRecord> cohort;
  for (const auto& group : groups) {
    CommitModel model;
    // One in five groups is uneven, like real cohorts.
    if (grade_rng.chance(0.2) && group.members.size() == 3) {
      model.member_weights = {3.0, 1.0, 0.7};
    }
    const auto log =
        generate_commit_log(group.id, group.members, model, seed + group.id);
    const auto report = analyse_contributions(log);
    contrib_table.add_row()
        .cell("G" + std::to_string(group.id))
        .cell(static_cast<std::uint64_t>(log.commits.size()))
        .cell(100.0 * report.max_line_share, 1)
        .cell(report.balanced ? "yes" : "NO")
        .cell(100.0 * report.layout_compliance, 1);

    // 4. Marks: group components shared, tests individual, peer factors
    // nudged for unbalanced groups.
    const double seminar = grade_rng.uniform(65, 95);
    const double impl = grade_rng.uniform(60, 98);
    const double report_mark = grade_rng.uniform(60, 95);
    for (std::size_t m = 0; m < group.members.size(); ++m) {
      StudentRecord s;
      s.id = group.members[m];
      s.group = group.id;
      s.raw[static_cast<std::size_t>(Component::kTest1)] =
          grade_rng.uniform(50, 100);
      s.raw[static_cast<std::size_t>(Component::kTest2)] =
          grade_rng.uniform(50, 100);
      s.raw[static_cast<std::size_t>(Component::kSeminar)] = seminar;
      s.raw[static_cast<std::size_t>(Component::kImplementation)] = impl;
      s.raw[static_cast<std::size_t>(Component::kReport)] = report_mark;
      s.peer_factor = report.balanced ? 1.0 : (m == 0 ? 1.05 : 0.9);
      cohort.push_back(std::move(s));
    }
  }
  contrib_table.print(std::cout);

  const auto stats = cohort_stats(cohort);
  std::printf(
      "\nfinal grades: mean %.1f, sd %.1f, range [%.1f, %.1f], "
      "test1/implementation correlation %.2f\n",
      stats.mean, stats.stddev, stats.min, stats.max,
      stats.test1_impl_correlation);

  // 5. End-of-course Likert survey.
  const auto outcomes = run_survey(softeng751_survey(), cohort.size(), seed);
  Table survey_table("End-of-course evaluation (agree + strongly agree)");
  survey_table.columns({"question", "sampled %", "paper %"});
  for (const auto& o : outcomes) {
    survey_table.add_row()
        .cell(o.question)
        .cell(o.agree_pct, 1)
        .cell(o.reported_pct, 1);
  }
  survey_table.print(std::cout);
  return 0;
}
