// serve_demo: the serving stack end to end, small enough to read the
// output. Offers 50k mixed requests open-loop at a fixed rate, then prints
// the disposition ledger, the cache and connection-pool economics, and the
// latency histogram.
#include <cstdio>

#include "serve/server.hpp"
#include "serve/workload.hpp"
#include "support/clock.hpp"

int main() {
  using namespace parc;
  using namespace parc::serve;

  ServerConfig cfg;
  cfg.pool.name = "serve-demo";
  cfg.cache_capacity = 4096;
  cfg.admission = AdmissionConfig{80000.0, 256.0, 4096};
  Server server(cfg);

  WorkloadConfig w;
  w.requests = 50000;
  w.arrival_rate = 40000.0;
  w.keyspace = 1ull << 14;
  w.key_skew = 1.1;
  w.seed = 7;
  LoadGenerator gen(w);

  std::printf("offering %zu requests at %.0f/s "
              "(img/text/net mix, Zipf keys)...\n",
              w.requests, w.arrival_rate);
  server.start();
  Stopwatch sw;
  for (std::size_t i = 0; i < w.requests; ++i) {
    const Request r = gen.next();
    if (server.now_s() < r.arrival_s) {
      server.flush();
      while (server.now_s() < r.arrival_s) {
      }
    }
    (void)server.offer(r);
  }
  server.drain();
  const double elapsed = sw.elapsed_s();

  const Server::Stats s = server.stats();
  std::printf("\ndisposition (%.2f s wall, %.0f served/s):\n", elapsed,
              static_cast<double>(s.completed) / elapsed);
  std::printf("  offered   %8llu\n", (unsigned long long)s.offered);
  std::printf("  admitted  %8llu   shed: rate %llu, queue %llu\n",
              (unsigned long long)s.admitted,
              (unsigned long long)s.shed_rate,
              (unsigned long long)s.shed_queue);
  std::printf("  cache hit %8llu   coalesced %llu   executed %llu "
              "(in %llu batches)\n",
              (unsigned long long)s.hits_inline,
              (unsigned long long)s.coalesced,
              (unsigned long long)s.executed,
              (unsigned long long)s.batches);
  std::printf("  cache: %llu hits / %llu misses / %llu evictions, "
              "%zu resident\n",
              (unsigned long long)s.cache.hits,
              (unsigned long long)s.cache.misses,
              (unsigned long long)s.cache.evictions, s.cache.size);
  const auto pool = server.backend().pool_stats();
  std::printf("  net pool: %llu created, %llu reused, %llu closed, "
              "%llu timeouts\n",
              (unsigned long long)pool.created,
              (unsigned long long)pool.reused,
              (unsigned long long)pool.closed,
              (unsigned long long)pool.timeouts);

  const LogHistogram h = server.latency_histogram();
  std::printf("\nlatency %s\n", h.describe("s").c_str());
  std::printf("%s", h.render().c_str());
  return 0;
}
