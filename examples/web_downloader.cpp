// Project 10 as an application: download a batch of pages as fast as
// possible, sweeping the number of simultaneous connections to find the
// knee — first on the exact virtual-clock model, then live against the
// real-time simulated server with ParallelTask interactive tasks.
//
//   $ ./web_downloader [num_pages]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "net/downloader.hpp"
#include "support/table.hpp"

using namespace parc;

int main(int argc, char** argv) {
  const std::size_t num_pages =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 400;

  net::NetParams params;  // 80 ms latency, 256 kB pages, 100 Mbit/s downlink
  const auto pages = net::make_page_set(num_pages, params, 1100);

  Table model_table("Connection sweep (virtual-clock model, exact)");
  model_table.columns({"connections", "makespan s", "throughput pages/s",
                       "bandwidth util %", "p95 page s"});
  for (std::size_t c : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const auto r = net::simulate_fetch(pages, c, params);
    model_table.add_row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(r.makespan_s, 3)
        .cell(r.throughput_pages_s, 1)
        .cell(100.0 * r.bandwidth_utilisation, 1)
        .cell(r.p95_page_s, 3);
  }
  model_table.print(std::cout);

  // Live run: scaled-down real time through interactive tasks.
  ptask::Runtime runtime(ptask::Runtime::Config{2, {}});
  const auto live_pages = net::make_page_set(60, params, 1101);
  net::SimWebServer server(live_pages, params, 0.01);

  Table live_table("Live downloader (ParallelTask interactive tasks, 1/100 time scale)");
  live_table.columns({"connections", "wall ms", "MB fetched"});
  const auto seq = net::download_sequential(server);
  live_table.add_row()
      .cell("sequential")
      .cell(seq.wall_ms, 1)
      .cell(seq.bytes / 1e6, 2);
  for (std::size_t c : {4u, 16u, 64u}) {
    const auto r = net::download_all(server, c, runtime);
    live_table.add_row()
        .cell(static_cast<std::uint64_t>(c))
        .cell(r.wall_ms, 1)
        .cell(r.bytes / 1e6, 2);
  }
  live_table.print(std::cout);

  std::printf(
      "\nreading the tables: throughput climbs while fetches are "
      "latency-bound, then knees once the downlink saturates — opening more "
      "connections past the knee buys nothing.\n");
  return 0;
}
