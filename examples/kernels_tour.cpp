// Project 3 as an application: run each computational kernel sequentially
// and Pyjama-parallel, verify they agree, and replay the recorded work on
// the PARC lab's three machines with the deterministic machine model.
//
//   $ ./kernels_tour
//   $ ./kernels_tour --trace tour.json   # record the run with parc::obs:
//                                        # tour.json loads in Perfetto,
//                                        # tour.json.dag.txt is the recorded
//                                        # task DAG, and the critical-path
//                                        # report prints at the end
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "kernels/kernels.hpp"
#include "obs/obs.hpp"
#include "ptask/ptask.hpp"
#include "sim/machine.hpp"
#include "support/clock.hpp"
#include "support/table.hpp"

using namespace parc;

namespace {

/// A ptask map phase (one task per row block, run_multi) so the traced DAG
/// carries a wide pattern with a real speedup curve — this is what makes
/// `perf_report --trace tour.json` show a map group saturating near the
/// task count instead of a serial chain pinned at 1.
double ptask_map_demo() {
  auto& rt = ptask::Runtime::global();
  constexpr std::size_t kBlocks = 32;
  auto blocks = ptask::run_multi(rt, kBlocks, [](std::size_t blk) {
    double s = 0.0;
    for (std::size_t k = 0; k < 120000; ++k) {
      s += std::sqrt(static_cast<double>(k + blk * 131));
    }
    return s;
  });
  blocks.wait();
  return 0.0;
}

/// A small ParallelTask dependence chain (scale → sum over halves → join)
/// so a traced tour also carries dependsOn edges, not just pj task sets.
double ptask_dependence_demo() {
  auto& rt = ptask::Runtime::global();
  auto data = ptask::run(rt, [] {
    std::vector<double> xs(1 << 16);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      xs[i] = static_cast<double>(i % 97) * 0.25;
    }
    return xs;
  });
  auto lo = ptask::run_after(
      rt,
      [data] {
        const auto& xs = data.get();
        double s = 0;
        for (std::size_t i = 0; i < xs.size() / 2; ++i) s += xs[i];
        return s;
      },
      data);
  auto hi = ptask::run_after(
      rt,
      [data] {
        const auto& xs = data.get();
        double s = 0;
        for (std::size_t i = xs.size() / 2; i < xs.size(); ++i) s += xs[i];
        return s;
      },
      data);
  auto total = ptask::run_after(
      rt, [lo, hi] { return lo.get() + hi.get(); }, lo, hi);
  return total.get();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace out.json]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty() && !obs::kTraceCompiled) {
    std::fprintf(stderr,
                 "--trace requires a build with -DPARC_TRACE=ON "
                 "(tracing is compiled out)\n");
    return 2;
  }
  std::unique_ptr<obs::TraceSession> session;
  if (!trace_path.empty()) session = std::make_unique<obs::TraceSession>();
  Table table("Computational kernels: sequential vs Pyjama (4 threads)");
  table.columns({"kernel", "seq ms", "pj ms", "agrees"});

  {
    auto signal = std::vector<kernels::Complex>(1 << 15);
    Rng rng(42);
    for (auto& c : signal) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto a = signal, b = signal;
    Stopwatch sw1;
    kernels::fft_seq(a);
    const double t_seq = sw1.elapsed_ms();
    Stopwatch sw2;
    kernels::fft_pj(b, 4);
    const double t_pj = sw2.elapsed_ms();
    double diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      diff = std::max(diff, std::abs(a[i] - b[i]));
    }
    table.add_row().cell("FFT 32k").cell(t_seq, 2).cell(t_pj, 2).cell(
        diff < 1e-9 ? "yes" : "NO");
  }
  {
    auto sys_a = kernels::make_md_system(256, 7);
    auto sys_b = kernels::make_md_system(256, 7);
    Stopwatch sw1;
    const double pe_seq = kernels::compute_forces_seq(sys_a);
    const double t_seq = sw1.elapsed_ms();
    Stopwatch sw2;
    const double pe_pj = kernels::compute_forces_pj(sys_b, 4);
    const double t_pj = sw2.elapsed_ms();
    table.add_row().cell("MD forces n=256").cell(t_seq, 2).cell(t_pj, 2).cell(
        std::abs(pe_seq - pe_pj) < 1e-9 ? "yes" : "NO");
  }
  {
    const auto g = kernels::make_random_graph(20000, 8.0, 5);
    Stopwatch sw1;
    const auto d_seq = kernels::bfs_seq(g, 0);
    const double t_seq = sw1.elapsed_ms();
    Stopwatch sw2;
    const auto d_pj = kernels::bfs_pj(g, 0, 4);
    const double t_pj = sw2.elapsed_ms();
    table.add_row().cell("BFS 20k vertices").cell(t_seq, 2).cell(t_pj, 2).cell(
        d_seq == d_pj ? "yes" : "NO");
  }
  {
    const auto a = kernels::Matrix::random(192, 192, 3);
    const auto b = kernels::Matrix::random(192, 192, 4);
    Stopwatch sw1;
    const auto c_seq = kernels::gemm_seq(a, b);
    const double t_seq = sw1.elapsed_ms();
    Stopwatch sw2;
    const auto c_pj = kernels::gemm_pj(a, b, 4);
    const double t_pj = sw2.elapsed_ms();
    table.add_row().cell("GEMM 192^3").cell(t_seq, 2).cell(t_pj, 2).cell(
        c_seq.max_abs_diff(c_pj) < 1e-9 ? "yes" : "NO");
  }
  table.print(std::cout);

  // Scaling shapes on the paper's machines via the machine model: the GEMM
  // row workload (192 rows ≈ 192 equal tasks) on 8/16/64 cores.
  Table scaling("Recorded GEMM task graph replayed on the PARC machines");
  scaling.columns({"machine", "cores", "speedup", "efficiency %"});
  const auto dag =
      sim::fork_join_dag(std::vector<double>(192, 1.0 / 192.0));
  for (const auto& machine :
       {sim::parc_8core(), sim::parc_16core(), sim::parc_64core()}) {
    const auto out = sim::simulate(dag, machine);
    scaling.add_row()
        .cell(machine.name)
        .cell(static_cast<std::uint64_t>(machine.cores))
        .cell(out.speedup, 2)
        .cell(100.0 * out.efficiency, 1);
  }
  scaling.print(std::cout);
  std::printf(
      "\n(1-core container: the wall-clock columns show overhead, not "
      "speedup; the machine-model table shows the scaling shape.)\n");

  if (session) {
    ptask_map_demo();
    ptask_dependence_demo();
    const obs::TraceDump dump = session->end();
    {
      std::ofstream os(trace_path);
      obs::write_chrome_trace(dump, os);
    }
    const obs::RecordedGraph graph = obs::extract_task_graph(dump);
    {
      std::ofstream os(trace_path + ".dag.txt");
      graph.write(os);
    }
    const obs::CriticalPathReport report = obs::critical_path(graph);
    std::printf(
        "\ntrace: %zu events on %zu threads (%llu dropped) -> %s\n"
        "recorded DAG: %zu tasks, %zu edges -> %s.dag.txt\n"
        "critical path: T1 = %.3f ms, Tinf = %.3f ms, parallelism = %.2f\n"
        "achievable speedup: P=4 -> %.2fx, P=16 -> %.2fx\n",
        dump.total_events(), dump.tracks.size(),
        static_cast<unsigned long long>(dump.total_dropped()),
        trace_path.c_str(), report.tasks, report.edges, trace_path.c_str(),
        report.work_s * 1e3, report.span_s * 1e3, report.parallelism(),
        report.speedup_bound(4), report.speedup_bound(16));
  }
  return 0;
}
