// Search-as-you-type (project 4's interactivity goal, sharpened): each
// simulated keystroke launches a fresh parallel search and cancels the
// previous one; stale results never reach the list because delivery checks
// the query generation on the EDT. Exercises: cancellation, multi-tasks,
// EDT hopping, and the progress channel.
//
//   $ ./live_search
#include <atomic>
#include <cstdio>
#include <string>

#include "gui/gui.hpp"
#include "ptask/ptask.hpp"
#include "text/text.hpp"

using namespace parc;

namespace {

struct SearchSession {
  ptask::Runtime& rt;
  gui::EventLoop& loop;
  const text::Corpus& corpus;
  gui::ListModel<std::string>& results;
  std::atomic<std::uint64_t> generation{0};
  ptask::TaskID<void> current;

  /// One keystroke: bump the generation, cancel the running search, start a
  /// new one for the longer prefix.
  void type(const std::string& query) {
    const std::uint64_t my_gen = generation.fetch_add(1) + 1;
    if (current.valid()) current.cancel();
    loop.post([this] { results.clear(); });
    current = ptask::run(rt, [this, query, my_gen] {
      for (std::size_t f = 0; f < corpus.files.size(); ++f) {
        if (ptask::cancellation_requested()) return;  // superseded
        const auto matches =
            text::search_file_literal(corpus.files[f], f, query);
        if (matches.empty()) continue;
        loop.post([this, f, my_gen, count = matches.size()] {
          // Drop stale deliveries: a newer keystroke owns the list now.
          if (generation.load() != my_gen) return;
          results.append(corpus.files[f].path + " (" +
                         std::to_string(count) + ")");
        });
      }
    });
  }
};

}  // namespace

int main() {
  text::CorpusOptions opts;
  opts.num_files = 512;
  opts.needle = "concurrency";
  const auto generated = text::make_corpus(opts, 4242);
  std::printf("corpus ready: %zu files, %zu bytes\n",
              generated.corpus.files.size(), generated.corpus.total_bytes());

  ptask::Runtime rt(ptask::Runtime::Config{4, {}});
  gui::EventLoop loop;
  gui::ListModel<std::string> results(loop);
  rt.set_event_dispatcher(loop.dispatcher());

  SearchSession session{rt, loop, generated.corpus, results, {}, {}};

  // The user types "concurrency" one character at a time, faster than a
  // full-corpus search completes — earlier searches must be cancelled.
  const std::string full = opts.needle;
  for (std::size_t len = 2; len <= full.size(); ++len) {
    session.type(full.substr(0, len));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  session.current.wait();
  loop.drain();

  const auto rows = results.snapshot();
  std::printf("final query \"%s\": %zu files with matches\n", full.c_str(),
              rows.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 8); ++i) {
    std::printf("  %s\n", rows[i].c_str());
  }

  // Oracle check: final list must equal the files containing the needle.
  std::size_t expected_files = 0;
  std::size_t last_file = SIZE_MAX;
  for (const auto& n : generated.needles) {
    if (n.file_index != last_file) {
      ++expected_files;
      last_file = n.file_index;
    }
  }
  std::printf("expected %zu files — %s\n", expected_files,
              rows.size() == expected_files ? "consistent" : "MISMATCH");
  rt.set_event_dispatcher(nullptr);
  return rows.size() == expected_files ? 0 : 1;
}
