// Project 1 as an application: open a "folder" of images, render thumbnails
// with each strategy, and measure what a user would feel — thumbnails
// delivered incrementally to the gallery while simulated scroll events keep
// arriving on the event-dispatch thread.
//
//   $ ./thumbnail_gallery [num_images] [thumb_box]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "gui/gui.hpp"
#include "img/ppm.hpp"
#include "img/thumbnails.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace parc;

int main(int argc, char** argv) {
  const std::size_t num_images =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 48;
  const std::uint32_t box =
      argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 96;

  std::printf("generating a folder of %zu images...\n", num_images);
  const auto folder = img::make_image_folder(num_images, 256, 1280, 2013);
  std::printf("total %zu pixels across the folder\n", folder.total_pixels());

  ptask::Runtime runtime(ptask::Runtime::Config{4, {}});

  Table table("Thumbnail gallery: strategy comparison");
  table.columns({"strategy", "wall ms", "extra threads", "scroll p99 ms",
                 "dropped frames %"});

  for (const auto strategy :
       {img::ThumbnailStrategy::kOnEventThread,
        img::ThumbnailStrategy::kSingleWorker,
        img::ThumbnailStrategy::kThreadPerImage,
        img::ThumbnailStrategy::kPTaskMulti}) {
    gui::EventLoop loop;
    gui::ListModel<img::Image> gallery(loop);
    runtime.set_event_dispatcher(loop.dispatcher());

    // Simulated user scrolling at ~500 Hz while thumbnails render.
    gui::ResponsivenessProbe probe(loop, std::chrono::microseconds(2000));
    const auto run = img::render_gallery(folder, box, img::Filter::kBilinear,
                                         strategy, loop, gallery, runtime);
    probe.stop();
    loop.drain();

    const auto latencies = loop.latency_samples_ms();
    Summary latency;
    latency.add_all(latencies);
    table.add_row()
        .cell(img::to_string(strategy))
        .cell(run.wall_ms, 1)
        .cell(static_cast<std::uint64_t>(run.peak_threads))
        .cell(latency.empty() ? 0.0 : latency.percentile(99), 2)
        .cell(100.0 * gui::dropped_frame_fraction(latencies), 1);

    const auto items = gallery.snapshot();
    std::printf("  %-16s delivered %zu thumbnails\n",
                img::to_string(strategy).c_str(), items.size());
    runtime.set_event_dispatcher(nullptr);
  }

  table.print(std::cout);

  // Leave a real artifact: a contact sheet of the gallery as a PPM.
  {
    gui::EventLoop loop;
    gui::ListModel<img::Image> gallery(loop);
    runtime.set_event_dispatcher(loop.dispatcher());
    img::render_gallery(folder, box, img::Filter::kBilinear,
                        img::ThumbnailStrategy::kPTaskMulti, loop, gallery,
                        runtime);
    const auto thumbs = gallery.snapshot();
    const std::uint32_t columns = 8;
    const std::uint32_t rows =
        (static_cast<std::uint32_t>(thumbs.size()) + columns - 1) / columns;
    img::Image sheet(columns * box, rows * box);
    for (std::size_t i = 0; i < thumbs.size(); ++i) {
      const auto cx = static_cast<std::uint32_t>(i % columns) * box;
      const auto cy = static_cast<std::uint32_t>(i / columns) * box;
      const img::Image& t = thumbs[i];
      for (std::uint32_t y = 0; y < t.height(); ++y) {
        for (std::uint32_t x = 0; x < t.width(); ++x) {
          sheet.at(cx + x, cy + y) = t.at(x, y);
        }
      }
    }
    img::save_ppm(sheet, "thumbnail_contact_sheet.ppm");
    std::printf("\nwrote thumbnail_contact_sheet.ppm (%ux%u)\n", sheet.width(),
                sheet.height());
    runtime.set_event_dispatcher(nullptr);
  }

  std::printf(
      "\nreading the table: on-EDT freezes the UI (p99 explodes); every "
      "off-EDT strategy keeps scrolling smooth, and the pooled multi-task "
      "does it without a thread per image.\n");
  return 0;
}
