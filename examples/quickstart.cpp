// Quickstart: the two runtimes in ~80 lines.
//
//   $ ./quickstart
//
// Shows: spawning ParallelTask tasks, dependences, multi-tasks; a Pyjama
// parallel region, a scheduled parallel-for and an object reduction.
#include <cstdio>
#include <set>

#include "pj/pj.hpp"
#include "ptask/ptask.hpp"

namespace ptask = parc::ptask;
namespace pj = parc::pj;

int main() {
  // ------------------------------------------------------------------
  // ParallelTask: futures, dependences, multi-tasks.
  // ------------------------------------------------------------------
  ptask::Runtime runtime(ptask::Runtime::Config{4, {}});

  auto hello = ptask::run(runtime, [] { return 6 * 7; });
  std::printf("task result: %d\n", hello.get());

  // dependsOn: `sum` starts only after both inputs finished.
  auto a = ptask::run(runtime, [] { return 20; });
  auto b = ptask::run(runtime, [] { return 22; });
  auto sum = ptask::run_after(
      runtime, [&] { return a.get() + b.get(); }, a, b);
  std::printf("dependent task: %d\n", sum.get());

  // Multi-task (TASK(n)): one logical task, n parallel bodies.
  auto squares = ptask::run_multi(
      runtime, 8, [](std::size_t i) { return static_cast<int>(i * i); });
  int total = 0;
  for (int v : squares.get()) total += v;
  std::printf("multi-task sum of squares 0..7: %d\n", total);

  // Structured fork/join for divide and conquer.
  long fib_result = 0;
  {
    ptask::TaskGroup group(runtime);
    group.run([&] { fib_result = 21 + 13; });
    group.wait();
  }
  std::printf("task group result: %ld\n", fib_result);

  // ------------------------------------------------------------------
  // Pyjama: regions, worksharing, reductions.
  // ------------------------------------------------------------------
  // A parallel region: every team thread runs the body (omp parallel).
  pj::region(4, [](pj::Team& team) {
    team.critical([&] {
      std::printf("hello from team thread %d of %d\n", team.thread_num(),
                  team.num_threads());
    });
    team.barrier();
    team.single([] { std::printf("exactly one thread says this\n"); });
  });

  // Combined parallel-for with a dynamic schedule (omp parallel for).
  std::vector<double> xs(1'000'000);
  pj::parallel_for(
      4, 0, static_cast<std::int64_t>(xs.size()),
      [&](std::int64_t i) {
        xs[static_cast<std::size_t>(i)] = 1.0 / static_cast<double>(i + 1);
      },
      {pj::Schedule::kDynamic, 4096});

  // Builtin reduction (omp reduction(+:sum)).
  const double harmonic = pj::reduce(
      4, 0, static_cast<std::int64_t>(xs.size()), pj::SumReducer<double>{},
      [&](std::int64_t i, double& acc) {
        acc += xs[static_cast<std::size_t>(i)];
      });
  std::printf("harmonic number H_1e6 = %.6f\n", harmonic);

  // Object reduction — Pyjama's extension: merge sets across the team.
  const auto digits = pj::reduce(
      4, 0, 10000, pj::SetUnionReducer<int>{},
      [](std::int64_t i, std::set<int>& acc) {
        acc.insert(static_cast<int>(i % 10));
      });
  std::printf("distinct last digits seen: %zu\n", digits.size());

  std::printf("quickstart done\n");
  return 0;
}
