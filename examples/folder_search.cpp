// Project 4 as an application: search a folder tree of text files for a
// string (or regex) in parallel, streaming results into the UI as they are
// found, with the status line and result list updated only on the EDT.
//
//   $ ./folder_search [needle] [num_files]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gui/gui.hpp"
#include "text/text.hpp"

using namespace parc;

int main(int argc, char** argv) {
  const std::string needle = argc > 1 ? argv[1] : "concurrency";
  const std::size_t num_files =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 512;

  text::CorpusOptions opts;
  opts.num_files = num_files;
  opts.needle = needle;
  std::printf("generating a %zu-file corpus (needle: \"%s\")...\n", num_files,
              needle.c_str());
  const auto generated = text::make_corpus(opts, 751);
  std::printf("corpus: %zu bytes, %zu planted occurrences\n",
              generated.corpus.total_bytes(), generated.needles.size());

  ptask::Runtime runtime(ptask::Runtime::Config{4, {}});
  gui::EventLoop loop;
  gui::ListModel<std::string> results(loop);
  gui::TextModel status(loop);
  runtime.set_event_dispatcher(loop.dispatcher());

  // Incremental delivery: each per-file batch hops onto the EDT and appends
  // "path:line:col" rows while the search is still running.
  const auto matches = text::search_corpus_ptask(
      generated.corpus, needle, runtime,
      [&](const std::vector<text::Match>& batch) {
        loop.post([&, batch] {
          for (const auto& m : batch) {
            results.append(generated.corpus.files[m.file_index].path + ":" +
                           std::to_string(m.line) + ":" +
                           std::to_string(m.column));
          }
          status.set(std::to_string(results.size()) + " matches so far...");
        });
      });

  loop.post_and_wait([&] {
    status.set("done: " + std::to_string(results.size()) + " matches");
  });

  std::printf("status: %s\n", status.snapshot().c_str());
  const auto rows = results.snapshot();
  std::printf("first results:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(rows.size(), 10); ++i) {
    std::printf("  %s\n", rows[i].c_str());
  }
  if (rows.size() > 10) std::printf("  ... and %zu more\n", rows.size() - 10);

  // Cross-check against the sequential engine and the generator oracle.
  const auto oracle = text::search_corpus_seq(generated.corpus, needle);
  std::printf("parallel found %zu, sequential %zu, planted %zu — %s\n",
              matches.size(), oracle.size(), generated.needles.size(),
              matches == oracle ? "consistent" : "MISMATCH");
  runtime.set_event_dispatcher(nullptr);
  return matches == oracle ? 0 : 1;
}
