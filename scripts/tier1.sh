#!/usr/bin/env bash
# Tier-1 gate: the plain build + full ctest pass that every PR must keep
# green, plus a ThreadSanitizer pass over the concurrency-bearing suites
# (scheduler, ptask runtime, conc collections, net pool, serving stack,
# flow channels) —
# the code where a data race is a correctness bug, not a flake — and an
# AddressSanitizer(+UBSan) pass
# over the full test suite, which is what keeps the TaskCell/slab recycling
# and the obs trace buffers honest about lifetimes.
#
# Usage: scripts/tier1.sh [build-dir-prefix]
#        scripts/tier1.sh --label <ctest-label> [build-dir-prefix]
#
# The --label form is the fast inner-loop path: plain build + only the
# suites carrying that ctest label (e.g. `--label pj` for the Pyjama
# suites), skipping the sanitizer passes.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--label" ]]; then
  LABEL="${2:?usage: tier1.sh --label <ctest-label> [build-dir-prefix]}"
  PREFIX="${3:-build}"
  echo "== tier-1 fast path: label '${LABEL}' =="
  cmake -B "${PREFIX}" -S . >/dev/null
  cmake --build "${PREFIX}" -j"$(nproc)"
  ctest --test-dir "${PREFIX}" --output-on-failure -j2 -L "${LABEL}"
  exit 0
fi

PREFIX="${1:-build}"

echo "== tier-1: plain build + full ctest =="
cmake -B "${PREFIX}" -S . >/dev/null
cmake --build "${PREFIX}" -j"$(nproc)"
ctest --test-dir "${PREFIX}" --output-on-failure -j2

echo "== tier-1: ThreadSanitizer (sched / ptask / conc suites) =="
TSAN_SUITES=(
  sched_deque_test sched_pool_test sched_task_cell_test sched_mpsc_test
  sched_stats_test sched_completion_test sched_task_graph_test
  sched_locality_test sched_shard_test
  obs_trace_test obs_roundtrip_test obs_model_test
  ptask_test ptask_multi_test ptask_pipeline_test ptask_graph_test
  pj_sync_test pj_nested_test pj_nested_stress_test pj_places_test
  conc_collections_test conc_tasksafe_test conc_cow_test
  net_test serve_test serve_fault_test flow_test
)
cmake -B "${PREFIX}-tsan" -S . -DPARC_SANITIZE=thread \
  -DPARC_BUILD_BENCH=OFF -DPARC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-tsan" -j"$(nproc)" --target "${TSAN_SUITES[@]}"

fail=0
for t in "${TSAN_SUITES[@]}"; do
  # TSan reports do not always fail the exit code (e.g. under gtest's
  # exception guards), so grep the output as well.
  if out=$("${PREFIX}-tsan/tests/${t}" 2>&1) \
      && ! grep -qE "ThreadSanitizer|FAILED" <<<"${out}"; then
    echo "tsan ${t}: PASS"
  else
    echo "tsan ${t}: FAIL"
    grep -E "WARNING: ThreadSanitizer|SUMMARY|FAILED" <<<"${out}" | head -10
    fail=1
  fi
done

if [[ "${fail}" -ne 0 ]]; then
  echo "tier-1: TSAN FAILURES"
  exit 1
fi

echo "== tier-1: AddressSanitizer (full test suite) =="
cmake -B "${PREFIX}-asan" -S . -DPARC_SANITIZE=address \
  -DPARC_BUILD_BENCH=OFF -DPARC_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "${PREFIX}-asan" -j"$(nproc)"
# halt_on_error makes any ASan/UBSan report fail the test's exit code, so
# ctest itself is the gate (no output grepping needed as with TSan).
ASAN_OPTIONS=halt_on_error=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "${PREFIX}-asan" --output-on-failure -j2

echo "tier-1: ALL GREEN"
