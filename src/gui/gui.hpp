// Umbrella header for the simulated GUI substrate (parc::gui).
#pragma once

#include "gui/event_loop.hpp"  // IWYU pragma: export
#include "gui/probe.hpp"       // IWYU pragma: export
#include "gui/widgets.hpp"     // IWYU pragma: export
