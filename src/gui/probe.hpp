// Responsiveness probe: simulated user interactions against an EventLoop.
//
// A ticker thread posts a no-op "user event" (scroll/click) every
// `interval`; the loop records its service latency like any other event.
// Running the probe while a workload executes yields the latency
// distribution that quantifies the paper's "the GUI remains fully
// responsive while thumbnails are being rendered".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "gui/event_loop.hpp"

namespace parc::gui {

class ResponsivenessProbe {
 public:
  ResponsivenessProbe(EventLoop& loop, std::chrono::microseconds interval);
  ~ResponsivenessProbe();

  ResponsivenessProbe(const ResponsivenessProbe&) = delete;
  ResponsivenessProbe& operator=(const ResponsivenessProbe&) = delete;

  /// Stop posting probe events and join the ticker (idempotent).
  void stop();

  [[nodiscard]] std::uint64_t probes_posted() const noexcept {
    return posted_.load(std::memory_order_relaxed);
  }

 private:
  void tick();

  EventLoop& loop_;
  const std::chrono::microseconds interval_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> posted_{0};
  std::thread ticker_;
};

}  // namespace parc::gui
