// A deterministic stand-in for the Swing/Android event-dispatch thread.
//
// This is the substrate under every "keep the GUI responsive" experiment
// (projects 1, 4, 7 and the GUI-awareness of both runtimes). Events are
// closures with an enqueue timestamp; the loop thread services them FIFO and
// records the *service latency* (enqueue → start of execution) of each. A
// responsive UI is exactly one whose event latency stays within a frame
// budget while background work runs — which turns the paper's qualitative
// "the GUI remains fully responsive" into a measurable distribution.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "support/histogram.hpp"
#include "support/stats.hpp"

namespace parc::gui {

class EventLoop {
 public:
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueue an event for the dispatch thread (thread-safe; the analogue of
  /// SwingUtilities.invokeLater / Handler.post).
  void post(std::function<void()> event);

  /// Enqueue an event to run no earlier than `delay` from now (the
  /// Swing Timer / Handler.postDelayed analogue). Delayed events do not
  /// count toward latency metrics until they become due.
  void post_delayed(std::function<void()> event,
                    std::chrono::milliseconds delay);

  /// Post and block until the event has been serviced (invokeAndWait).
  /// Deadlocks if called from the event thread itself — checked.
  void post_and_wait(std::function<void()> event);

  /// True when the calling thread is this loop's dispatch thread.
  [[nodiscard]] bool is_event_thread() const noexcept;

  /// Block until the queue has been observed empty (all events posted so
  /// far serviced). Events posted concurrently may still be pending.
  void drain();

  /// Stop accepting events, service what is queued, join the thread.
  /// Idempotent; also runs from the destructor.
  void shutdown();

  /// Service-latency samples (ms) of all events serviced so far.
  [[nodiscard]] std::vector<double> latency_samples_ms() const;
  [[nodiscard]] Summary latency_summary_ms() const;
  /// Same samples, bucketed into the shared log-histogram type the serving
  /// stack and probes report (p50/p99/p999 without keeping every sample).
  [[nodiscard]] LogHistogram latency_histogram_ms() const;
  /// Discard recorded samples (between experiment phases).
  void reset_metrics();

  [[nodiscard]] std::uint64_t events_serviced() const noexcept {
    return serviced_.load(std::memory_order_relaxed);
  }

  /// Adapter for Runtime::set_event_dispatcher / pj::set_event_dispatcher.
  [[nodiscard]] std::function<void(std::function<void()>)> dispatcher() {
    return [this](std::function<void()> fn) { post(std::move(fn)); };
  }

 private:
  using Clock = std::chrono::steady_clock;
  struct Event {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };
  struct DelayedEvent {
    Clock::time_point due;
    std::uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const DelayedEvent& o) const noexcept {
      if (due != o.due) return due > o.due;
      return seq > o.seq;
    }
  };

  void loop();
  /// Move due delayed events into the immediate queue. Caller holds mutex_.
  void promote_due_locked(Clock::time_point now);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Event> queue_;          // guarded by mutex_
  std::priority_queue<DelayedEvent, std::vector<DelayedEvent>,
                      std::greater<>>
      delayed_;                      // guarded by mutex_
  std::uint64_t delayed_seq_ = 0;    // guarded by mutex_
  bool stopping_ = false;            // guarded by mutex_
  std::vector<double> latencies_ms_; // guarded by mutex_
  std::atomic<std::uint64_t> serviced_{0};
  std::thread thread_;  // last member: starts after state is ready
};

/// Collapse bursts of triggers into one action after a quiet period — the
/// standard debounce for search-as-you-type. Only the last action of a
/// burst fires; it runs on the event thread.
class Debouncer {
 public:
  Debouncer(EventLoop& loop, std::chrono::milliseconds quiet);

  /// (Re)arm the timer with a new action; thread-safe.
  void trigger(std::function<void()> action);

  /// Actions actually fired (for tests/metrics).
  [[nodiscard]] std::uint64_t fired() const noexcept;

 private:
  struct State {
    std::mutex mutex;
    std::uint64_t generation = 0;  // guarded by mutex
    std::atomic<std::uint64_t> fired{0};
  };
  EventLoop& loop_;
  std::chrono::milliseconds quiet_;
  std::shared_ptr<State> state_;
};

/// Fraction of latency samples exceeding a frame budget (default 60 Hz).
/// The paper's "fully responsive" claim corresponds to this being ~0 for
/// off-EDT strategies and large when work runs on the EDT.
[[nodiscard]] double dropped_frame_fraction(const std::vector<double>& latencies_ms,
                                            double budget_ms = 16.67);

}  // namespace parc::gui
