// A deterministic stand-in for the Swing/Android event-dispatch thread.
//
// This is the substrate under every "keep the GUI responsive" experiment
// (projects 1, 4, 7 and the GUI-awareness of both runtimes). Events are
// closures with an enqueue timestamp; the loop thread services them FIFO and
// records the *service latency* (enqueue → start of execution) of each. A
// responsive UI is exactly one whose event latency stays within a frame
// budget while background work runs — which turns the paper's qualitative
// "the GUI remains fully responsive" into a measurable distribution.
//
// The post queue is a bounded flow::Channel (PR 8): posts from background
// threads exert backpressure instead of growing an unbounded deque, and
// try_post() gives latency-sensitive producers a drop-and-count escape
// hatch (`overflowed()`). The dispatch thread itself never blocks on its
// own full queue — self-posts spill to an EDT-confined backlog so a
// re-posting event cannot deadlock the loop.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "flow/channel.hpp"
#include "support/histogram.hpp"
#include "support/stats.hpp"

namespace parc::gui {

namespace detail {
/// One EventLoop channel element. Lives outside the class because the
/// channel member instantiates Channel<EdtMsg> while EventLoop is still an
/// open class — and GCC parses nested-class default member initializers in
/// a complete-class context, so a nested Msg would not yet satisfy
/// Channel's is_default_constructible static_assert. Immediate events carry
/// their enqueue time; delayed events carry a due time and are parked in
/// the dispatch thread's own timer heap once they cross the channel.
struct EdtMsg {
  std::function<void()> fn;
  std::chrono::steady_clock::time_point enqueued{};
  std::chrono::steady_clock::time_point due{};
  std::uint64_t seq = 0;  // FIFO among equal deadlines
  bool delayed = false;
};
}  // namespace detail

class EventLoop {
 public:
  /// Bound on events queued but not yet serviced. Generous for UI work:
  /// a backlog this deep already means seconds of unresponsiveness.
  static constexpr std::size_t kDefaultQueueCapacity = 1024;

  explicit EventLoop(std::size_t queue_capacity = kDefaultQueueCapacity);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueue an event for the dispatch thread (thread-safe; the analogue of
  /// SwingUtilities.invokeLater / Handler.post). Blocks with backpressure
  /// while the queue is full — except on the event thread itself, where it
  /// spills to an internal backlog instead of deadlocking.
  void post(std::function<void()> event);

  /// Non-blocking post: false (and `overflowed()` bumped) when the queue is
  /// full. For producers that would rather drop than stall — the probe/
  /// telemetry pattern.
  [[nodiscard]] bool try_post(std::function<void()> event);

  /// Enqueue an event to run no earlier than `delay` from now (the
  /// Swing Timer / Handler.postDelayed analogue). Delayed events do not
  /// count toward latency metrics until they become due.
  void post_delayed(std::function<void()> event,
                    std::chrono::milliseconds delay);

  /// Post and block until the event has been serviced (invokeAndWait).
  /// Deadlocks if called from the event thread itself — checked.
  void post_and_wait(std::function<void()> event);

  /// True when the calling thread is this loop's dispatch thread.
  [[nodiscard]] bool is_event_thread() const noexcept;

  /// Block until all events posted so far have been serviced (implemented
  /// as a posted sentinel, so it also exerts backpressure when full).
  /// Events posted concurrently may still be pending.
  void drain();

  /// Stop accepting events, service what is queued, join the thread.
  /// Idempotent; also runs from the destructor.
  void shutdown();

  /// Service-latency samples (ms) of all events serviced so far.
  [[nodiscard]] std::vector<double> latency_samples_ms() const;
  [[nodiscard]] Summary latency_summary_ms() const;
  /// Same samples, bucketed into the shared log-histogram type the serving
  /// stack and probes report (p50/p99/p999 without keeping every sample).
  /// Note: events rejected by try_post() never ran, so they have no sample
  /// here — read `overflowed()` alongside, or the histogram understates a
  /// saturated EDT.
  [[nodiscard]] LogHistogram latency_histogram_ms() const;
  /// Discard recorded samples (between experiment phases).
  void reset_metrics();

  [[nodiscard]] std::uint64_t events_serviced() const noexcept {
    return serviced_.load(std::memory_order_relaxed);
  }

  /// Events rejected by try_post() because the queue was full.
  [[nodiscard]] std::uint64_t overflowed() const noexcept {
    return overflowed_.load(std::memory_order_relaxed);
  }

  /// Post-queue counters (occupancy, high-water, block/park counts) from
  /// the underlying channel.
  [[nodiscard]] flow::ChannelStats queue_stats() const {
    return queue_.stats();
  }

  /// Adapter for Runtime::set_event_dispatcher / pj::set_event_dispatcher.
  [[nodiscard]] std::function<void(std::function<void()>)> dispatcher() {
    return [this](std::function<void()> fn) { post(std::move(fn)); };
  }

 private:
  using Clock = std::chrono::steady_clock;
  using Msg = detail::EdtMsg;

  struct DelayedEvent {
    Clock::time_point due;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const DelayedEvent& o) const noexcept {
      if (due != o.due) return due > o.due;
      return seq > o.seq;
    }
  };

  void loop();
  void run_event(std::function<void()>&& fn, Clock::time_point enqueued);
  void enqueue(Msg m, const char* what);

  flow::Channel<Msg> queue_;  // the one hand-off: every post crosses here
  std::deque<Msg> edt_backlog_;  // EDT-confined: self-posts that found the
                                 // channel full (serviced after it drains)
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> overflowed_{0};
  std::atomic<std::uint64_t> delayed_seq_{0};
  mutable std::mutex metrics_mutex_;
  std::vector<double> latencies_ms_;  // guarded by metrics_mutex_
  std::atomic<std::uint64_t> serviced_{0};
  std::thread thread_;  // last member: starts after state is ready
};

/// Collapse bursts of triggers into one action after a quiet period — the
/// standard debounce for search-as-you-type. Only the last action of a
/// burst fires; it runs on the event thread.
class Debouncer {
 public:
  Debouncer(EventLoop& loop, std::chrono::milliseconds quiet);

  /// (Re)arm the timer with a new action; thread-safe.
  void trigger(std::function<void()> action);

  /// Actions actually fired (for tests/metrics).
  [[nodiscard]] std::uint64_t fired() const noexcept;

 private:
  struct State {
    std::mutex mutex;
    std::uint64_t generation = 0;  // guarded by mutex
    std::atomic<std::uint64_t> fired{0};
  };
  EventLoop& loop_;
  std::chrono::milliseconds quiet_;
  std::shared_ptr<State> state_;
};

/// Fraction of latency samples exceeding a frame budget (default 60 Hz).
/// The paper's "fully responsive" claim corresponds to this being ~0 for
/// off-EDT strategies and large when work runs on the EDT.
[[nodiscard]] double dropped_frame_fraction(const std::vector<double>& latencies_ms,
                                            double budget_ms = 16.67);

}  // namespace parc::gui
