// Widget *models* — the mutable state behind a UI, with the Swing threading
// rule enforced: models marked EDT-confined abort when touched off the event
// thread. This is what makes the example apps honest: a background task
// cannot "cheat" by updating the list directly, it must notify through the
// event loop exactly as Parallel Task's `notify` clause does.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "gui/event_loop.hpp"
#include "support/check.hpp"

namespace parc::gui {

/// EDT-confined growable list (a JList/ListView model).
template <typename T>
class ListModel {
 public:
  explicit ListModel(EventLoop& loop) : loop_(loop) {}

  void append(T item) {
    assert_on_edt();
    items_.push_back(std::move(item));
    ++revision_;
  }

  void clear() {
    assert_on_edt();
    items_.clear();
    ++revision_;
  }

  [[nodiscard]] std::size_t size() const {
    assert_on_edt();
    return items_.size();
  }

  [[nodiscard]] const T& at(std::size_t i) const {
    assert_on_edt();
    PARC_CHECK(i < items_.size());
    return items_[i];
  }

  [[nodiscard]] const std::vector<T>& items() const {
    assert_on_edt();
    return items_;
  }

  /// Model change count (repaint trigger in a real toolkit).
  [[nodiscard]] std::uint64_t revision() const {
    assert_on_edt();
    return revision_;
  }

  /// Thread-safe snapshot for assertions after the loop has drained:
  /// hops onto the EDT to copy.
  [[nodiscard]] std::vector<T> snapshot() {
    std::vector<T> copy;
    loop_.post_and_wait([&] { copy = items_; });
    return copy;
  }

 private:
  void assert_on_edt() const {
    PARC_CHECK_MSG(loop_.is_event_thread(),
                   "ListModel touched off the event-dispatch thread");
  }

  EventLoop& loop_;
  std::vector<T> items_;       // EDT-confined
  std::uint64_t revision_ = 0; // EDT-confined
};

/// Thread-safe progress indicator (a JProgressBar model): atomics only, so
/// workers may bump it directly — the one widget Swing also allows that for.
class ProgressModel {
 public:
  explicit ProgressModel(std::uint64_t total) : total_(total) {}

  void advance(std::uint64_t by = 1) noexcept {
    done_.fetch_add(by, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t done() const noexcept {
    return done_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double fraction() const noexcept {
    return total_ == 0 ? 1.0
                       : static_cast<double>(done()) /
                             static_cast<double>(total_);
  }
  [[nodiscard]] bool complete() const noexcept { return done() >= total_; }

 private:
  const std::uint64_t total_;
  std::atomic<std::uint64_t> done_{0};
};

/// EDT-confined text field model (status bars, search boxes).
class TextModel {
 public:
  explicit TextModel(EventLoop& loop) : loop_(loop) {}

  void set(std::string text) {
    assert_on_edt();
    text_ = std::move(text);
    ++revision_;
  }

  [[nodiscard]] const std::string& get() const {
    assert_on_edt();
    return text_;
  }

  [[nodiscard]] std::uint64_t revision() const {
    assert_on_edt();
    return revision_;
  }

  [[nodiscard]] std::string snapshot() {
    std::string copy;
    loop_.post_and_wait([&] { copy = text_; });
    return copy;
  }

 private:
  void assert_on_edt() const {
    PARC_CHECK_MSG(loop_.is_event_thread(),
                   "TextModel touched off the event-dispatch thread");
  }

  EventLoop& loop_;
  std::string text_;           // EDT-confined
  std::uint64_t revision_ = 0; // EDT-confined
};

}  // namespace parc::gui
