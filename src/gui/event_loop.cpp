#include "gui/event_loop.hpp"

#include <queue>
#include <utility>

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/completion.hpp"
#include "support/check.hpp"

namespace parc::gui {

EventLoop::EventLoop(std::size_t queue_capacity)
    : queue_({.capacity = queue_capacity, .stripes = 1}),
      thread_([this] { loop(); }) {}

EventLoop::~EventLoop() { shutdown(); }

void EventLoop::enqueue(Msg m, const char* what) {
  PARC_CHECK_MSG(!stopping_.load(std::memory_order_acquire), what);
  if (is_event_thread()) {
    // Never block the dispatch thread on its own queue: a full channel here
    // means nobody else can drain it. Spill to the EDT-confined backlog.
    const flow::PushResult r = queue_.try_push(m);
    if (r == flow::PushResult::ok) return;
    PARC_CHECK_MSG(r != flow::PushResult::closed, what);
    edt_backlog_.push_back(std::move(m));
    return;
  }
  // Backpressure: a full queue stalls the poster until the EDT catches up
  // (pool workers help-steal while they wait — Channel::push).
  PARC_CHECK_MSG(queue_.push(std::move(m)), what);
}

void EventLoop::post(std::function<void()> event) {
  PARC_CHECK(event != nullptr);
  if (obs::tracing()) [[unlikely]] {
    // The posting side of a worker→EDT handoff; the matching kEdtRunBegin
    // happens on the event thread when the event is serviced.
    obs::emit(obs::EventKind::kEdtPost, 0, 0);
  }
  enqueue(Msg{std::move(event), Clock::now(), {}, 0, false},
          "post() after EventLoop::shutdown()");
}

bool EventLoop::try_post(std::function<void()> event) {
  PARC_CHECK(event != nullptr);
  PARC_CHECK_MSG(!stopping_.load(std::memory_order_acquire),
                 "try_post() after EventLoop::shutdown()");
  Msg m{std::move(event), Clock::now(), {}, 0, false};
  const flow::PushResult r = queue_.try_push(m);
  if (r == flow::PushResult::ok) {
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kEdtPost, 0, 0);
    }
    return true;
  }
  PARC_CHECK_MSG(r != flow::PushResult::closed,
                 "try_post() after EventLoop::shutdown()");
  overflowed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void EventLoop::post_delayed(std::function<void()> event,
                             std::chrono::milliseconds delay) {
  PARC_CHECK(event != nullptr);
  const auto now = Clock::now();
  enqueue(Msg{std::move(event), now, now + delay,
              delayed_seq_.fetch_add(1, std::memory_order_relaxed), true},
          "post_delayed() after EventLoop::shutdown()");
}

void EventLoop::post_and_wait(std::function<void()> event) {
  PARC_CHECK_MSG(!is_event_thread(),
                 "post_and_wait from the event thread would deadlock");
  // Stack lifetime is safe: complete()'s final access to the Completion is
  // the publishing RMW the waiter acquires through, so the waiter cannot
  // return (and destroy `done`) while the EDT still touches it.
  sched::Completion done;
  post([&done, event = std::move(event)] {
    event();
    done.complete();
  });
  done.wait();
}

bool EventLoop::is_event_thread() const noexcept {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::drain() {
  PARC_CHECK_MSG(!is_event_thread(), "drain from the event thread");
  if (stopping_.load(std::memory_order_acquire)) return;  // shutdown drains
  // FIFO sentinel: when it runs, everything posted before it has run.
  sched::Completion done;
  Msg m{[&done] { done.complete(); }, Clock::now(), {}, 0, false};
  if (!queue_.push(std::move(m))) return;  // raced shutdown(); it drains
  done.wait();
}

void EventLoop::shutdown() {
  stopping_.store(true, std::memory_order_release);
  queue_.close();  // idempotent; wakes the parked dispatch thread
  if (thread_.joinable()) {
    thread_.join();
    obs::Counters::global().add("gui.edt.events",
                                serviced_.load(std::memory_order_relaxed));
  }
}

void EventLoop::run_event(std::function<void()>&& fn,
                          Clock::time_point enqueued) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - enqueued)
          .count();
  {
    std::scoped_lock lock(metrics_mutex_);
    latencies_ms_.push_back(latency_ms);
  }
  if (obs::tracing()) [[unlikely]] {
    obs::emit(obs::EventKind::kEdtRunBegin, 0, 0);
    fn();
    obs::emit(obs::EventKind::kEdtRunEnd, 0, 0);
  } else {
    fn();
  }
  serviced_.fetch_add(1, std::memory_order_relaxed);
}

void EventLoop::loop() {
  obs::label_thread("edt");
  // Timer heap is dispatch-thread-confined: delayed events cross the
  // channel as messages and park here until due — no shared timer state.
  std::priority_queue<DelayedEvent, std::vector<DelayedEvent>, std::greater<>>
      timers;
  bool closed = false;
  for (;;) {
    if (!timers.empty() && timers.top().due <= Clock::now()) {
      // enqueued = due time: latency measures EDT backlog, not the delay.
      DelayedEvent t = std::move(const_cast<DelayedEvent&>(timers.top()));
      timers.pop();
      run_event(std::move(t.fn), t.due);
      continue;
    }
    Msg m;
    bool have = false;
    if (!closed) {
      if (!edt_backlog_.empty()) {
        // Local work pending: poll the channel (older events) but never
        // park over it.
        const flow::PopResult r = queue_.try_pop(m);
        if (r == flow::PopResult::ok) have = true;
        if (r == flow::PopResult::closed) closed = true;
      } else {
        const Clock::time_point deadline =
            timers.empty() ? Clock::time_point::max() : timers.top().due;
        const flow::PopResult r = queue_.try_pop_until(m, deadline);
        if (r == flow::PopResult::ok) have = true;
        if (r == flow::PopResult::closed) closed = true;
      }
    }
    if (!have && !edt_backlog_.empty()) {
      m = std::move(edt_backlog_.front());
      edt_backlog_.pop_front();
      have = true;
    }
    if (!have) {
      if (closed) {
        // Already-due timers still run at shutdown; the rest are
        // intentionally dropped — they are timers, and the app is closing.
        if (!timers.empty() && timers.top().due <= Clock::now()) continue;
        return;
      }
      continue;  // a timer came due, or the deadline poll timed out
    }
    if (m.delayed) {
      if (m.due <= Clock::now()) {
        run_event(std::move(m.fn), m.due);
      } else {
        timers.push(DelayedEvent{m.due, m.seq, std::move(m.fn)});
      }
      continue;
    }
    run_event(std::move(m.fn), m.enqueued);
  }
}

std::vector<double> EventLoop::latency_samples_ms() const {
  std::scoped_lock lock(metrics_mutex_);
  return latencies_ms_;
}

Summary EventLoop::latency_summary_ms() const {
  Summary s;
  s.add_all(latency_samples_ms());
  return s;
}

LogHistogram EventLoop::latency_histogram_ms() const {
  // 1 µs .. 100 s in ms units covers everything from an idle loop's
  // sub-frame latencies to a fully wedged EDT.
  LogHistogram h(1e-3, 1e5);
  std::scoped_lock lock(metrics_mutex_);
  for (const double ms : latencies_ms_) h.add(ms);
  return h;
}

void EventLoop::reset_metrics() {
  std::scoped_lock lock(metrics_mutex_);
  latencies_ms_.clear();
}

Debouncer::Debouncer(EventLoop& loop, std::chrono::milliseconds quiet)
    : loop_(loop), quiet_(quiet), state_(std::make_shared<State>()) {}

void Debouncer::trigger(std::function<void()> action) {
  PARC_CHECK(action != nullptr);
  std::uint64_t my_generation;
  {
    std::scoped_lock lock(state_->mutex);
    my_generation = ++state_->generation;
  }
  loop_.post_delayed(
      [state = state_, my_generation, action = std::move(action)] {
        {
          std::scoped_lock lock(state->mutex);
          if (state->generation != my_generation) return;  // superseded
        }
        state->fired.fetch_add(1, std::memory_order_relaxed);
        action();
      },
      quiet_);
}

std::uint64_t Debouncer::fired() const noexcept {
  return state_->fired.load(std::memory_order_relaxed);
}

double dropped_frame_fraction(const std::vector<double>& latencies_ms,
                              double budget_ms) {
  if (latencies_ms.empty()) return 0.0;
  std::size_t over = 0;
  for (double l : latencies_ms) {
    if (l > budget_ms) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(latencies_ms.size());
}

}  // namespace parc::gui
