#include "gui/event_loop.hpp"

#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "sched/completion.hpp"
#include "support/check.hpp"

namespace parc::gui {

EventLoop::EventLoop() : thread_([this] { loop(); }) {}

EventLoop::~EventLoop() { shutdown(); }

void EventLoop::post(std::function<void()> event) {
  PARC_CHECK(event != nullptr);
  if (obs::tracing()) [[unlikely]] {
    // The posting side of a worker→EDT handoff; the matching kEdtRunBegin
    // happens on the event thread when the event is serviced.
    obs::emit(obs::EventKind::kEdtPost, 0, 0);
  }
  {
    std::scoped_lock lock(mutex_);
    PARC_CHECK_MSG(!stopping_, "post() after EventLoop::shutdown()");
    queue_.push_back(Event{std::move(event), Clock::now()});
  }
  cv_.notify_one();
}

void EventLoop::post_delayed(std::function<void()> event,
                             std::chrono::milliseconds delay) {
  PARC_CHECK(event != nullptr);
  {
    std::scoped_lock lock(mutex_);
    PARC_CHECK_MSG(!stopping_, "post_delayed() after EventLoop::shutdown()");
    delayed_.push(
        DelayedEvent{Clock::now() + delay, delayed_seq_++, std::move(event)});
  }
  cv_.notify_one();  // the loop recomputes its wake deadline
}

void EventLoop::promote_due_locked(Clock::time_point now) {
  while (!delayed_.empty() && delayed_.top().due <= now) {
    // enqueued = due time: latency measures EDT backlog, not the delay.
    queue_.push_back(
        Event{std::move(const_cast<DelayedEvent&>(delayed_.top()).fn),
              delayed_.top().due});
    delayed_.pop();
  }
}

void EventLoop::post_and_wait(std::function<void()> event) {
  PARC_CHECK_MSG(!is_event_thread(),
                 "post_and_wait from the event thread would deadlock");
  // Stack lifetime is safe: complete()'s final access to the Completion is
  // the publishing RMW the waiter acquires through, so the waiter cannot
  // return (and destroy `done`) while the EDT still touches it.
  sched::Completion done;
  post([&done, event = std::move(event)] {
    event();
    done.complete();
  });
  done.wait();
}

bool EventLoop::is_event_thread() const noexcept {
  return std::this_thread::get_id() == thread_.get_id();
}

void EventLoop::drain() {
  PARC_CHECK_MSG(!is_event_thread(), "drain from the event thread");
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty(); });
}

void EventLoop::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    if (stopping_) {
      // Second call: thread may already be joined.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
    obs::Counters::global().add("gui.edt.events",
                                serviced_.load(std::memory_order_relaxed));
  }
}

void EventLoop::loop() {
  obs::label_thread("edt");
  for (;;) {
    Event ev;
    {
      std::unique_lock lock(mutex_);
      for (;;) {
        promote_due_locked(Clock::now());
        if (stopping_ || !queue_.empty()) break;
        if (delayed_.empty()) {
          cv_.wait(lock, [&] {
            return stopping_ || !queue_.empty() || !delayed_.empty();
          });
        } else {
          // Plain timed wait, deadline recomputed every lap: a notify for a
          // newly posted *earlier* delayed event must shorten the sleep (a
          // predicate wait would sleep through to the old deadline). The
          // deadline is copied out first — wait_until keeps a reference and
          // re-reads it after re-locking, by which point a concurrent
          // post_delayed may have reallocated the queue's storage.
          const Clock::time_point due = delayed_.top().due;
          cv_.wait_until(lock, due);
        }
      }
      if (queue_.empty()) {
        // stopping_ and nothing runnable: exit after notifying drainers.
        // Delayed events that never became due are intentionally dropped —
        // they are timers, and the app is closing.
        idle_cv_.notify_all();
        return;
      }
      ev = std::move(queue_.front());
      queue_.pop_front();
      const double latency_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - ev.enqueued)
              .count();
      latencies_ms_.push_back(latency_ms);
      if (queue_.empty()) idle_cv_.notify_all();
    }
    if (obs::tracing()) [[unlikely]] {
      obs::emit(obs::EventKind::kEdtRunBegin, 0, 0);
      ev.fn();
      obs::emit(obs::EventKind::kEdtRunEnd, 0, 0);
    } else {
      ev.fn();
    }
    serviced_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<double> EventLoop::latency_samples_ms() const {
  std::scoped_lock lock(mutex_);
  return latencies_ms_;
}

Summary EventLoop::latency_summary_ms() const {
  Summary s;
  s.add_all(latency_samples_ms());
  return s;
}

LogHistogram EventLoop::latency_histogram_ms() const {
  // 1 µs .. 100 s in ms units covers everything from an idle loop's
  // sub-frame latencies to a fully wedged EDT.
  LogHistogram h(1e-3, 1e5);
  std::scoped_lock lock(mutex_);
  for (const double ms : latencies_ms_) h.add(ms);
  return h;
}

void EventLoop::reset_metrics() {
  std::scoped_lock lock(mutex_);
  latencies_ms_.clear();
}

Debouncer::Debouncer(EventLoop& loop, std::chrono::milliseconds quiet)
    : loop_(loop), quiet_(quiet), state_(std::make_shared<State>()) {}

void Debouncer::trigger(std::function<void()> action) {
  PARC_CHECK(action != nullptr);
  std::uint64_t my_generation;
  {
    std::scoped_lock lock(state_->mutex);
    my_generation = ++state_->generation;
  }
  loop_.post_delayed(
      [state = state_, my_generation, action = std::move(action)] {
        {
          std::scoped_lock lock(state->mutex);
          if (state->generation != my_generation) return;  // superseded
        }
        state->fired.fetch_add(1, std::memory_order_relaxed);
        action();
      },
      quiet_);
}

std::uint64_t Debouncer::fired() const noexcept {
  return state_->fired.load(std::memory_order_relaxed);
}

double dropped_frame_fraction(const std::vector<double>& latencies_ms,
                              double budget_ms) {
  if (latencies_ms.empty()) return 0.0;
  std::size_t over = 0;
  for (double l : latencies_ms) {
    if (l > budget_ms) ++over;
  }
  return static_cast<double>(over) / static_cast<double>(latencies_ms.size());
}

}  // namespace parc::gui
