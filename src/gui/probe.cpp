#include "gui/probe.hpp"

namespace parc::gui {

ResponsivenessProbe::ResponsivenessProbe(EventLoop& loop,
                                         std::chrono::microseconds interval)
    : loop_(loop), interval_(interval), ticker_([this] { tick(); }) {}

ResponsivenessProbe::~ResponsivenessProbe() { stop(); }

void ResponsivenessProbe::stop() {
  stop_.store(true, std::memory_order_release);
  if (ticker_.joinable()) ticker_.join();
}

void ResponsivenessProbe::tick() {
  while (!stop_.load(std::memory_order_acquire)) {
    // The probe event is an empty user interaction; its latency is the
    // measurement (recorded by the EventLoop itself).
    loop_.post([] {});
    posted_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(interval_);
  }
}

}  // namespace parc::gui
