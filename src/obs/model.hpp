// obs::model — compositional scaling models fitted from traces (ISSUE 9).
//
// The paper's pedagogical core is *predict before you measure*: students
// state the expected speedup curve of a program before running it on the
// lab machines. This layer mechanises that move for a traced run. One trace
// yields a RecordedGraph; sim::sweep replays its DAG at a handful of
// training core counts; fit() then selects, Extra-P style, a small scaling
// function
//
//     t(p) = c0 + c1·(n/p) + c2·log2(p) + c3·p
//
// (per-trace n is fixed, so the n/p term carries it inside c1) by
// cross-validated residual over the candidate term subsets. fit_program()
// does this per pattern group (map/taskloop, reduce, pipeline-ish chains,
// fork-join, general DAGs — the annotation obs::analysis recovers) and
// composes the per-pattern models along that structure: sequential phases
// add, concurrent groups within a phase combine under the work law. The
// composed and monolithic predictions are cross-checked against held-out
// sim::simulate runs, so every report states its own residual instead of
// asking to be trusted.
//
// What-if questions answered without re-running the simulator:
//   - saturation P (where doubling cores stops paying),
//   - crossover P between two fitted models (granularity choices),
//   - predicted time/speedup at any P, including extrapolation
//     (bounded by FitOptions::max_extrapolation_p — the fit refuses
//     candidates that go non-positive anywhere in that range).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/analysis.hpp"
#include "sim/machine.hpp"

namespace parc::obs::model {

/// Term-selection knobs for fit().
struct FitOptions {
  /// A candidate within (1 + tolerance)·best_cv of the best cross-validated
  /// residual wins if it uses fewer terms (Occam tie-break, Extra-P's
  /// parsimony rule).
  double parsimony_tolerance = 0.05;
  /// Candidates must predict strictly positive time over [1, this] or be
  /// rejected — extrapolation must never return a negative makespan.
  double max_extrapolation_p = 1024.0;
};

/// A fitted scaling function over the basis {1, 1/p, log2(p), p}, plus an
/// optional Graham floor: greedy-scheduled DAGs follow
/// max(work-law hyperbola, span plateau), a kink no smooth basis can
/// express, so the candidate family includes max(linear part, floor_s).
struct ScalingModel {
  std::array<double, 4> c{};  ///< coefficients, inactive terms 0
  unsigned terms = 0x1;       ///< bitmask of active basis terms (bit 0 = c0;
                              ///< bit 4 = Graham floor active)
  double floor_s = 0.0;       ///< plateau for max(linear, floor) candidates
  double t1 = 0.0;            ///< reference serial time (P=1 sweep point)
  double cv_rel_rmse = 0.0;    ///< leave-one-out relative residual (selector)
  double train_rel_rmse = 0.0;
  std::size_t train_points = 0;

  /// Predicted time at p ≥ 1 (clamped non-negative).
  [[nodiscard]] double eval(double p) const noexcept;
  /// Predicted speedup t(1-reference)/t(p); 0 when undefined.
  [[nodiscard]] double speedup_at(double p) const noexcept;
  /// Smallest p (walking 1, 2, 4, …) where doubling cores improves the
  /// predicted time by less than `min_gain` relative; max_p if it never
  /// saturates in range.
  [[nodiscard]] std::size_t saturation_p(double min_gain = 0.05,
                                         std::size_t max_p = 1024) const;
  /// Human-readable "1.2e-02 + 3.4e-01/p + 5.6e-04*log2(p)".
  [[nodiscard]] std::string formula() const;
};

/// Fit a scaling model to a sweep (the one sweep surface: any SweepTable,
/// whether from a recorded graph, a serve replay or a flow replay).
[[nodiscard]] ScalingModel fit(const sim::SweepTable& table,
                               const FitOptions& opts = {});

/// Smallest integer p in [1, max_p] where a's predicted time drops to or
/// below b's (the granularity-crossover question); 0 when a never wins.
[[nodiscard]] std::size_t crossover_p(const ScalingModel& a,
                                      const ScalingModel& b,
                                      std::size_t max_p = 1024);

/// Model prediction vs ground-truth sim::simulate at one held-out P.
struct HoldoutPoint {
  std::size_t cores = 0;
  double predicted_s = 0.0;        ///< model makespan
  double simulated_s = 0.0;        ///< simulate() makespan
  double predicted_speedup = 0.0;  ///< t1 / predicted_s
  double simulated_speedup = 0.0;  ///< t1 / simulated_s (same reference)
  double rel_error = 0.0;  ///< |predicted - simulated| / simulated speedup
};

/// Simulate the DAG at each held-out P and score the model against it.
[[nodiscard]] std::vector<HoldoutPoint> cross_check(
    const ScalingModel& model, const sim::TaskDag& dag,
    const std::vector<std::size_t>& holdout_cores,
    const sim::MachineParams& machine);

/// End-to-end options for fit_program (and the perf_report tool).
struct ModelOptions {
  std::vector<std::size_t> train_cores = {1, 2, 4, 8, 16, 32, 64, 128, 256};
  std::vector<std::size_t> holdout_cores = {3, 6, 12, 24, 48, 96};
  /// Machine template for both sweeps and holdout ground truth.
  sim::MachineParams machine{1, 0.0, "model"};
  FitOptions fit{};
};

/// One pattern group's fitted model.
struct PatternModel {
  PatternKind kind = PatternKind::kSingle;
  std::size_t group = 0;  ///< index into RecordedGraph::patterns()
  std::size_t tasks = 0;
  double work_s = 0.0;
  ScalingModel model;
};

/// The compositional model of one traced program.
struct ProgramModel {
  /// Monolithic fit over the full recorded DAG — the primary predictor
  /// (and the one the 15% holdout gate applies to).
  ScalingModel total;
  /// Per-pattern fits, in trace time order.
  std::vector<PatternModel> patterns;
  /// Pattern indices clustered into sequential phases by wall-time overlap:
  /// groups inside one phase ran concurrently, phases ran back to back.
  std::vector<std::vector<std::size_t>> phases;
  /// total-model prediction vs simulate() at ModelOptions::holdout_cores.
  std::vector<HoldoutPoint> holdout;
  /// RMS relative error of the *composed* prediction against the training
  /// sweep's simulated makespans — how much structure the composition loses
  /// versus re-fitting the whole program.
  double composed_rel_rmse = 0.0;

  [[nodiscard]] double predict_time(double p) const { return total.eval(p); }
  [[nodiscard]] double predict_speedup(double p) const {
    return total.speedup_at(p);
  }
  /// Compositional prediction: Σ over phases of the phase time, where a
  /// phase combines its concurrent groups under the work law —
  /// max(max_g t_g(p), Σ_g work_g / p).
  [[nodiscard]] double composed_time(double p) const;
  [[nodiscard]] std::size_t saturation_p(double min_gain = 0.05,
                                         std::size_t max_p = 1024) const {
    return total.saturation_p(min_gain, max_p);
  }
  /// Worst holdout relative error (0 when no holdout was requested).
  [[nodiscard]] double max_holdout_error() const noexcept;
};

/// Sweep + fit the full graph and every pattern group, cluster phases,
/// cross-check against held-out simulations.
[[nodiscard]] ProgramModel fit_program(const RecordedGraph& graph,
                                       const ModelOptions& opts = {});

}  // namespace parc::obs::model
