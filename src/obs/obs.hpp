// Umbrella header for parc::obs — tracing, counters, and trace analysis.
//
//   obs::TraceSession session;          // start recording (lock-free hooks
//   ... run ptask / pj / pool work ...  //  in both runtimes light up)
//   auto dump = session.end();          // collect per-thread event tracks
//
//   obs::write_chrome_trace(dump, file);        // open in Perfetto
//   auto graph = obs::extract_task_graph(dump); // recorded dependence graph
//   auto report = obs::critical_path(graph);    // T1, T∞, speedup bounds
//   sim::simulate(graph.to_dag(), machine);     // replay on a modelled host
//
//   auto table = sim::sweep(graph.to_dag(), {}); // one sweep surface
//   auto model = obs::model::fit_program(graph); // fitted scaling models
#pragma once

#include "obs/analysis.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/counters.hpp"
#include "obs/model.hpp"
#include "obs/trace.hpp"
