// Post-run trace analysis: reconstruct the task graph a run actually
// executed, hand it to the deterministic machine model for replay, and
// report its work/span profile.
//
// This closes the loop the ROADMAP promised: `parc::sim` replays "recorded
// task DAGs", and obs is what records them. A traced ptask dependence graph
// round-trips — extract_task_graph → to_dag → sim::simulate — and the
// critical-path analyzer's T1/T∞ agree with the simulator's P=1 / P=∞
// schedules (asserted in obs_roundtrip_test).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace parc::obs {

/// One task reconstructed from kTaskSpawn/Start/Finish events.
struct RecordedTask {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;    ///< spawning task's id (0 = spawned at root)
  std::uint64_t start_ns = 0;
  std::uint64_t finish_ns = 0;
  bool started = false;
  bool finished = false;

  /// Measured body cost; 0 for tasks that never ran (cancelled) or whose
  /// start/finish fell outside the session window.
  [[nodiscard]] double cost_s() const noexcept {
    return (started && finished && finish_ns > start_ns)
               ? static_cast<double>(finish_ns - start_ns) * 1e-9
               : 0.0;
  }
};

/// A run's task graph: tasks in start-time (hence topological) order plus
/// the recorded dependence edges between their obs ids.
struct RecordedGraph {
  std::vector<RecordedTask> tasks;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;  ///< pred → succ

  /// Convert to the exact structure sim::machine replays. Task k of the
  /// returned DAG is tasks[k]; edges whose endpoints were not both recorded
  /// (e.g. a dependence on a task finished before the session began) are
  /// dropped, as are edges that would violate topological order.
  [[nodiscard]] sim::TaskDag to_dag() const;

  /// Human/sim-readable dump: one `task <k> cost_s <c> deps <n> <k...>` line
  /// per task, mirroring exactly the add_task() calls to_dag() makes.
  void write(std::ostream& os) const;
};

/// Scan every track of `dump` for task-layer events and rebuild the graph.
[[nodiscard]] RecordedGraph extract_task_graph(const TraceDump& dump);

/// Work/span profile of a recorded run.
struct CriticalPathReport {
  double work_s = 0.0;  ///< T1: total measured task cost
  double span_s = 0.0;  ///< T∞: longest cost-weighted dependence path
  std::size_t tasks = 0;
  std::size_t edges = 0;

  /// Average parallelism T1/T∞ (0 when nothing was recorded).
  [[nodiscard]] double parallelism() const noexcept {
    return span_s > 0.0 ? work_s / span_s : 0.0;
  }
  /// Achievable speedup on P cores: T1 / max(T1/P, T∞) — the work and span
  /// laws, which greedy scheduling approaches within 2x (Graham).
  [[nodiscard]] double speedup_bound(std::size_t cores) const noexcept;
};

/// Longest-path analysis over the recorded graph (independent of sim; the
/// round-trip test cross-checks the two).
[[nodiscard]] CriticalPathReport critical_path(const RecordedGraph& graph);

}  // namespace parc::obs
