// Post-run trace analysis: reconstruct the task graph a run actually
// executed, hand it to the deterministic machine model for replay, and
// report its work/span profile.
//
// This closes the loop the ROADMAP promised: `parc::sim` replays "recorded
// task DAGs", and obs is what records them. A traced ptask dependence graph
// round-trips — extract_task_graph → to_dag → sim::simulate — and the
// critical-path analyzer's T1/T∞ agree with the simulator's P=1 / P=∞
// schedules (asserted in obs_roundtrip_test).
//
// Beyond the flat DAG, the graph is annotated with *pattern structure*
// (ISSUE 9): dependence-connected components classified as serial chains,
// reductions, fork-joins or general DAGs, and independent tasks clustered
// into map groups (taskloop chunks, parallel-for bodies, run_multi
// children). obs::model fits one scaling function per group and composes
// them along this structure; everything is reached through the stable
// accessors below — no struct poking from tests or tools.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/machine.hpp"

namespace parc::obs {

/// One task reconstructed from kTaskSpawn/Start/Finish events.
struct RecordedTask {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;    ///< spawning task's id (0 = spawned at root)
  std::uint64_t start_ns = 0;
  std::uint64_t finish_ns = 0;
  bool started = false;
  bool finished = false;

  /// Measured body cost; 0 for tasks that never ran (cancelled) or whose
  /// start/finish fell outside the session window.
  [[nodiscard]] double cost_s() const noexcept {
    return (started && finished && finish_ns > start_ns)
               ? static_cast<double>(finish_ns - start_ns) * 1e-9
               : 0.0;
  }
};

/// Structural pattern vocabulary shared by model fitting and reporting.
enum class PatternKind : std::uint8_t {
  kSingle,       ///< one task with no dependences
  kMap,          ///< ≥2 independent tasks (taskloop / parallel-for / multi)
  kSerialChain,  ///< linear dependence chain (every node ≤1 pred, ≤1 succ)
  kReduce,       ///< in-tree: many sources funnelling into one sink
  kForkJoin,     ///< one source fanning out (and optionally re-joining)
  kDag,          ///< anything else
};
[[nodiscard]] const char* pattern_name(PatternKind kind) noexcept;

/// One pattern group recovered from the recorded graph: either a
/// dependence-connected component, or a batch of edge-free tasks clustered
/// by spawn parent and wall-time overlap (two sequential taskloops become
/// two map groups, not one).
struct PatternGroup {
  PatternKind kind = PatternKind::kSingle;
  std::vector<std::size_t> tasks;  ///< indices into RecordedGraph::tasks()
  double work_s = 0.0;             ///< Σ cost of member tasks
  std::uint64_t first_start_ns = 0;
  std::uint64_t last_finish_ns = 0;
};

/// A run's task graph: tasks in start-time (hence topological) order, the
/// recorded dependence edges between their obs ids, and the pattern
/// annotation — all reached through accessors (the construction invariants
/// live in one place, the constructor).
class RecordedGraph {
 public:
  using Edge = std::pair<std::uint64_t, std::uint64_t>;  ///< pred → succ ids

  RecordedGraph() = default;

  /// Build from recorded tasks and dependence edges (obs ids, deduped by
  /// the caller or not — duplicates are tolerated). Sorts tasks into
  /// start-time order, indexes edges, annotates patterns.
  RecordedGraph(std::vector<RecordedTask> tasks, std::vector<Edge> edges);

  [[nodiscard]] const std::vector<RecordedTask>& tasks() const noexcept {
    return tasks_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] std::size_t task_count() const noexcept {
    return tasks_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept {
    return edges_.size();
  }

  /// Indexed predecessors of task k. Edges whose endpoints were not both
  /// recorded (e.g. a dependence on a task finished before the session
  /// began) are dropped, as are edges that would violate topological order.
  [[nodiscard]] const std::vector<std::size_t>& preds(std::size_t k) const {
    return preds_[k];
  }

  /// Pattern annotation, ordered by first start time.
  [[nodiscard]] const std::vector<PatternGroup>& patterns() const noexcept {
    return patterns_;
  }
  /// Index into patterns() of the group containing task k.
  [[nodiscard]] std::size_t pattern_of(std::size_t k) const {
    return pattern_of_[k];
  }

  /// Convert to the exact structure sim::machine replays. Task k of the
  /// returned DAG is tasks()[k]; dropped edges match preds().
  [[nodiscard]] sim::TaskDag to_dag() const;

  /// Sub-DAG of one pattern group: member costs plus intra-group edges,
  /// in the same (topological) relative order as the full DAG.
  [[nodiscard]] sim::TaskDag group_dag(std::size_t group) const;

  /// Human/sim-readable dump: one `task <k> cost_s <c> deps <n> <k...>` line
  /// per task, mirroring exactly the add_task() calls to_dag() makes.
  void write(std::ostream& os) const;

 private:
  std::vector<RecordedTask> tasks_;
  std::vector<Edge> edges_;
  std::vector<std::vector<std::size_t>> preds_;
  std::vector<PatternGroup> patterns_;
  std::vector<std::size_t> pattern_of_;
};

/// Scan every track of `dump` for task-layer events and rebuild the graph.
[[nodiscard]] RecordedGraph extract_task_graph(const TraceDump& dump);

/// Work/span profile of a recorded run.
struct CriticalPathReport {
  double work_s = 0.0;  ///< T1: total measured task cost
  double span_s = 0.0;  ///< T∞: longest cost-weighted dependence path
  std::size_t tasks = 0;
  std::size_t edges = 0;

  /// Average parallelism T1/T∞ (0 when nothing was recorded).
  [[nodiscard]] double parallelism() const noexcept {
    return span_s > 0.0 ? work_s / span_s : 0.0;
  }
  /// Achievable speedup on P cores: T1 / max(T1/P, T∞) — the work and span
  /// laws, which greedy scheduling approaches within 2x (Graham).
  [[nodiscard]] double speedup_bound(std::size_t cores) const noexcept;
};

/// Longest-path analysis over the recorded graph (independent of sim; the
/// round-trip test cross-checks the two).
[[nodiscard]] CriticalPathReport critical_path(const RecordedGraph& graph);

}  // namespace parc::obs
