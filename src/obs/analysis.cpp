#include "obs/analysis.hpp"

#include <algorithm>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace parc::obs {

namespace {

/// Dense index of each task id within a start-ordered task vector.
std::unordered_map<std::uint64_t, std::size_t> index_tasks(
    const std::vector<RecordedTask>& tasks) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(tasks.size());
  for (std::size_t k = 0; k < tasks.size(); ++k) index.emplace(tasks[k].id, k);
  return index;
}

/// Dependence lists keyed by successor index; edges with unknown endpoints
/// or non-topological direction are skipped (they cannot occur in a trace
/// recorded from a real run, where a successor starts after its
/// predecessor finishes).
std::vector<std::vector<std::size_t>> index_edges(const RecordedGraph& graph) {
  const auto index = index_tasks(graph.tasks);
  std::vector<std::vector<std::size_t>> preds(graph.tasks.size());
  for (const auto& [from, to] : graph.edges) {
    const auto f = index.find(from);
    const auto t = index.find(to);
    if (f == index.end() || t == index.end()) continue;
    if (f->second >= t->second) continue;
    preds[t->second].push_back(f->second);
  }
  return preds;
}

}  // namespace

RecordedGraph extract_task_graph(const TraceDump& dump) {
  RecordedGraph graph;
  std::unordered_map<std::uint64_t, RecordedTask> tasks;
  std::unordered_set<std::uint64_t> edge_seen;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      switch (e.kind) {
        case EventKind::kTaskSpawn: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.parent = e.arg;
          break;
        }
        case EventKind::kTaskStart: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.start_ns = e.t_ns;
          t.started = true;
          break;
        }
        case EventKind::kTaskFinish: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.finish_ns = e.t_ns;
          t.finished = true;
          break;
        }
        case EventKind::kDepEdge: {
          // Dedupe (a diamond's join edge is recorded once per spawn call,
          // but re-traced sessions could replay): key on the id pair.
          const std::uint64_t key = e.id * 0x9e3779b97f4a7c15ull ^ e.arg;
          if (edge_seen.insert(key).second) {
            graph.edges.emplace_back(e.id, e.arg);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  graph.tasks.reserve(tasks.size());
  for (auto& [id, task] : tasks) graph.tasks.push_back(task);
  // Start-time order is topological: a successor can only start after its
  // predecessor finished. Never-started tasks sort last (by id, stable).
  std::sort(graph.tasks.begin(), graph.tasks.end(),
            [](const RecordedTask& a, const RecordedTask& b) {
              if (a.started != b.started) return a.started;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });
  return graph;
}

sim::TaskDag RecordedGraph::to_dag() const {
  const auto preds = index_edges(*this);
  sim::TaskDag dag;
  std::vector<sim::TaskDag::NodeId> deps;
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    deps.assign(preds[k].begin(), preds[k].end());
    dag.add_task(tasks[k].cost_s(), deps);
  }
  return dag;
}

void RecordedGraph::write(std::ostream& os) const {
  const auto preds = index_edges(*this);
  os << "# parc::obs task DAG: " << tasks.size() << " tasks, " << edges.size()
     << " edges\n";
  for (std::size_t k = 0; k < tasks.size(); ++k) {
    os << "task " << k << " cost_s " << tasks[k].cost_s() << " deps "
       << preds[k].size();
    for (const std::size_t p : preds[k]) os << ' ' << p;
    os << '\n';
  }
}

CriticalPathReport critical_path(const RecordedGraph& graph) {
  CriticalPathReport report;
  report.tasks = graph.tasks.size();
  report.edges = graph.edges.size();
  const auto preds = index_edges(graph);
  // Longest cost-weighted path, processed in the (topological) task order.
  std::vector<double> finish(graph.tasks.size(), 0.0);
  for (std::size_t k = 0; k < graph.tasks.size(); ++k) {
    double ready = 0.0;
    for (const std::size_t p : preds[k]) ready = std::max(ready, finish[p]);
    const double cost = graph.tasks[k].cost_s();
    finish[k] = ready + cost;
    report.work_s += cost;
    report.span_s = std::max(report.span_s, finish[k]);
  }
  return report;
}

double CriticalPathReport::speedup_bound(std::size_t cores) const noexcept {
  if (cores == 0 || work_s <= 0.0) return 0.0;
  const double bound =
      std::max(work_s / static_cast<double>(cores), span_s);
  return bound > 0.0 ? work_s / bound : 0.0;
}

}  // namespace parc::obs
