#include "obs/analysis.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <ostream>
#include <unordered_map>
#include <unordered_set>

namespace parc::obs {

namespace {

/// Dense index of each task id within a start-ordered task vector.
std::unordered_map<std::uint64_t, std::size_t> index_tasks(
    const std::vector<RecordedTask>& tasks) {
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(tasks.size());
  for (std::size_t k = 0; k < tasks.size(); ++k) index.emplace(tasks[k].id, k);
  return index;
}

/// Union-find over task indices (path halving, union by size).
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

/// Shape of a dependence-connected component (≥2 tasks, ≥1 edge).
PatternKind classify_component(const std::vector<std::size_t>& members,
                               const std::vector<std::size_t>& indeg,
                               const std::vector<std::size_t>& outdeg) {
  std::size_t sources = 0, sinks = 0;
  bool all_linear = true;   // every node ≤1 pred and ≤1 succ
  bool in_tree = true;      // every node ≤1 succ
  bool fan_out = true;      // every non-source has exactly 1 pred
  for (const std::size_t k : members) {
    if (indeg[k] == 0) ++sources;
    if (outdeg[k] == 0) ++sinks;
    if (indeg[k] > 1 || outdeg[k] > 1) all_linear = false;
    if (outdeg[k] > 1) in_tree = false;
    if (indeg[k] > 1 && outdeg[k] != 0) fan_out = false;
  }
  if (all_linear) return PatternKind::kSerialChain;
  if (in_tree && sinks == 1 && sources >= 2) return PatternKind::kReduce;
  // One root fanning out, re-joining at most into sinks (diamond included).
  if (sources == 1 && fan_out) return PatternKind::kForkJoin;
  return PatternKind::kDag;
}

}  // namespace

const char* pattern_name(PatternKind kind) noexcept {
  switch (kind) {
    case PatternKind::kSingle:      return "single";
    case PatternKind::kMap:         return "map";
    case PatternKind::kSerialChain: return "serial-chain";
    case PatternKind::kReduce:      return "reduce";
    case PatternKind::kForkJoin:    return "fork-join";
    case PatternKind::kDag:         return "dag";
  }
  return "unknown";
}

RecordedGraph::RecordedGraph(std::vector<RecordedTask> tasks,
                             std::vector<Edge> edges)
    : tasks_(std::move(tasks)), edges_(std::move(edges)) {
  // Start-time order is topological: a successor can only start after its
  // predecessor finished. Never-started tasks sort last (by id, stable).
  std::sort(tasks_.begin(), tasks_.end(),
            [](const RecordedTask& a, const RecordedTask& b) {
              if (a.started != b.started) return a.started;
              if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
              return a.id < b.id;
            });

  // Indexed, deduped predecessor lists; edges with unknown endpoints or
  // non-topological direction are skipped (they cannot occur in a trace
  // recorded from a real run, where a successor starts after its
  // predecessor finishes).
  const auto index = index_tasks(tasks_);
  preds_.assign(tasks_.size(), {});
  for (const auto& [from, to] : edges_) {
    const auto f = index.find(from);
    const auto t = index.find(to);
    if (f == index.end() || t == index.end()) continue;
    if (f->second >= t->second) continue;
    auto& list = preds_[t->second];
    if (std::find(list.begin(), list.end(), f->second) == list.end()) {
      list.push_back(f->second);
    }
  }

  // --- Pattern annotation -------------------------------------------------
  const std::size_t n = tasks_.size();
  std::vector<std::size_t> indeg(n, 0), outdeg(n, 0);
  UnionFind uf(n);
  for (std::size_t k = 0; k < n; ++k) {
    indeg[k] = preds_[k].size();
    for (const std::size_t p : preds_[k]) {
      ++outdeg[p];
      uf.merge(p, k);
    }
  }

  // Dependence-connected components of ≥2 tasks become one group each.
  std::unordered_map<std::size_t, std::vector<std::size_t>> components;
  std::vector<std::size_t> loose;  // edge-free tasks
  for (std::size_t k = 0; k < n; ++k) {
    if (indeg[k] == 0 && outdeg[k] == 0) {
      loose.push_back(k);
    } else {
      components[uf.find(k)].push_back(k);
    }
  }

  auto make_group = [&](PatternKind kind, std::vector<std::size_t> members) {
    PatternGroup g;
    g.kind = kind;
    g.work_s = 0.0;
    g.first_start_ns = std::numeric_limits<std::uint64_t>::max();
    g.last_finish_ns = 0;
    for (const std::size_t k : members) {
      const RecordedTask& t = tasks_[k];
      g.work_s += t.cost_s();
      if (t.started) g.first_start_ns = std::min(g.first_start_ns, t.start_ns);
      if (t.finished) g.last_finish_ns = std::max(g.last_finish_ns, t.finish_ns);
    }
    if (g.first_start_ns == std::numeric_limits<std::uint64_t>::max()) {
      g.first_start_ns = 0;  // group of never-started tasks
    }
    g.tasks = std::move(members);
    patterns_.push_back(std::move(g));
  };

  for (auto& [root, members] : components) {
    std::sort(members.begin(), members.end());
    const PatternKind kind = classify_component(members, indeg, outdeg);
    make_group(kind, std::move(members));
  }

  // Edge-free tasks cluster into map groups: first by spawn parent (a
  // run_multi's children share one), then — within the parent-0 pool — by
  // wall-time overlap, so two taskloops separated in time stay two phases.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> by_parent;
  for (const std::size_t k : loose) by_parent[tasks_[k].parent].push_back(k);
  for (auto& [parent, members] : by_parent) {
    if (parent != 0) {
      // One spawn call's children are one map, full stop — on a 1-core
      // host they execute back to back, so wall-time overlap would shatter
      // the group into singles and hide the pattern.
      const PatternKind kind =
          members.size() >= 2 ? PatternKind::kMap : PatternKind::kSingle;
      make_group(kind, std::move(members));
      continue;
    }
    // Members arrive in start order (indices are start-ordered). Close the
    // running cluster when the next task starts after everything seen so
    // far has finished.
    std::vector<std::size_t> cluster;
    std::uint64_t cluster_max_finish = 0;
    auto flush = [&] {
      if (cluster.empty()) return;
      const PatternKind kind =
          cluster.size() >= 2 ? PatternKind::kMap : PatternKind::kSingle;
      make_group(kind, std::move(cluster));
      cluster = {};
      cluster_max_finish = 0;
    };
    for (const std::size_t k : members) {
      const RecordedTask& t = tasks_[k];
      if (!cluster.empty() && t.started && t.start_ns > cluster_max_finish) {
        flush();
      }
      cluster.push_back(k);
      cluster_max_finish = std::max(cluster_max_finish, t.finish_ns);
    }
    flush();
  }

  std::sort(patterns_.begin(), patterns_.end(),
            [](const PatternGroup& a, const PatternGroup& b) {
              if (a.first_start_ns != b.first_start_ns) {
                return a.first_start_ns < b.first_start_ns;
              }
              return a.tasks < b.tasks;
            });
  pattern_of_.assign(n, 0);
  for (std::size_t g = 0; g < patterns_.size(); ++g) {
    for (const std::size_t k : patterns_[g].tasks) pattern_of_[k] = g;
  }
}

RecordedGraph extract_task_graph(const TraceDump& dump) {
  std::unordered_map<std::uint64_t, RecordedTask> tasks;
  std::unordered_set<std::uint64_t> edge_seen;
  std::vector<RecordedGraph::Edge> edges;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      switch (e.kind) {
        case EventKind::kTaskSpawn: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.parent = e.arg;
          break;
        }
        case EventKind::kTaskStart: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.start_ns = e.t_ns;
          t.started = true;
          break;
        }
        case EventKind::kTaskFinish: {
          RecordedTask& t = tasks[e.id];
          t.id = e.id;
          t.finish_ns = e.t_ns;
          t.finished = true;
          break;
        }
        case EventKind::kDepEdge: {
          // Dedupe (a diamond's join edge is recorded once per spawn call,
          // but re-traced sessions could replay): key on the id pair.
          const std::uint64_t key = e.id * 0x9e3779b97f4a7c15ull ^ e.arg;
          if (edge_seen.insert(key).second) {
            edges.emplace_back(e.id, e.arg);
          }
          break;
        }
        default:
          break;
      }
    }
  }
  std::vector<RecordedTask> flat;
  flat.reserve(tasks.size());
  for (auto& [id, task] : tasks) flat.push_back(task);
  return RecordedGraph(std::move(flat), std::move(edges));
}

sim::TaskDag RecordedGraph::to_dag() const {
  sim::TaskDag dag;
  std::vector<sim::TaskDag::NodeId> deps;
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    deps.assign(preds_[k].begin(), preds_[k].end());
    dag.add_task(tasks_[k].cost_s(), deps);
  }
  return dag;
}

sim::TaskDag RecordedGraph::group_dag(std::size_t group) const {
  const PatternGroup& g = patterns_.at(group);
  // Member indices are sorted, so relative order stays topological.
  std::unordered_map<std::size_t, sim::TaskDag::NodeId> local;
  local.reserve(g.tasks.size());
  sim::TaskDag dag;
  std::vector<sim::TaskDag::NodeId> deps;
  for (const std::size_t k : g.tasks) {
    deps.clear();
    for (const std::size_t p : preds_[k]) {
      const auto it = local.find(p);
      if (it != local.end()) deps.push_back(it->second);
    }
    local.emplace(k, dag.add_task(tasks_[k].cost_s(), deps));
  }
  return dag;
}

void RecordedGraph::write(std::ostream& os) const {
  os << "# parc::obs task DAG: " << tasks_.size() << " tasks, "
     << edges_.size() << " edges\n";
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    os << "task " << k << " cost_s " << tasks_[k].cost_s() << " deps "
       << preds_[k].size();
    for (const std::size_t p : preds_[k]) os << ' ' << p;
    os << '\n';
  }
}

CriticalPathReport critical_path(const RecordedGraph& graph) {
  CriticalPathReport report;
  report.tasks = graph.task_count();
  report.edges = graph.edge_count();
  // Longest cost-weighted path, processed in the (topological) task order.
  std::vector<double> finish(graph.task_count(), 0.0);
  for (std::size_t k = 0; k < graph.task_count(); ++k) {
    double ready = 0.0;
    for (const std::size_t p : graph.preds(k)) {
      ready = std::max(ready, finish[p]);
    }
    const double cost = graph.tasks()[k].cost_s();
    finish[k] = ready + cost;
    report.work_s += cost;
    report.span_s = std::max(report.span_s, finish[k]);
  }
  return report;
}

double CriticalPathReport::speedup_bound(std::size_t cores) const noexcept {
  if (cores == 0 || work_s <= 0.0) return 0.0;
  const double bound =
      std::max(work_s / static_cast<double>(cores), span_s);
  return bound > 0.0 ? work_s / bound : 0.0;
}

}  // namespace parc::obs
