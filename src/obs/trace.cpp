#include "obs/trace.hpp"

#include <chrono>
#include <memory>
#include <mutex>
#include <utility>

#include "obs/counters.hpp"
#include "support/check.hpp"

namespace parc::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Single-writer event buffer. Slots are written once; `count` is the
/// publication frontier (release on write, acquire on collect). The write
/// path never allocates, locks, or touches another thread's cache lines.
struct ThreadBuffer {
  std::vector<Event> slots;
  std::atomic<std::uint32_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t origin_ns = 0;
  std::uint32_t tid = 0;
  std::string name;
};

/// Session registry: mutated only under `mutex` (session begin/end and a
/// thread's first event of a session — all cold paths).
struct Registry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;  // guarded by mutex
  std::uint64_t epoch = 0;                             // guarded by mutex
  std::uint64_t origin_ns = 0;                         // guarded by mutex
  std::size_t capacity = 0;                            // guarded by mutex
  std::uint32_t next_tid = 0;                          // guarded by mutex
};

Registry& registry() {
  // Immortal: worker threads of leaked global pools may emit during static
  // destruction.
  static auto* r = new Registry();
  return *r;
}

/// Session epoch, bumped by trace_begin. The release store pairs with the
/// acquire in emit() so a writer that observes the new epoch also observes
/// the registry state (origin, capacity) set up for it.
std::atomic<std::uint64_t> g_epoch{0};

std::atomic<std::uint64_t> g_next_id{1};

// Writer-side cache: the buffer registered for the current epoch. The
// shared_ptr keeps a collected buffer alive for any laggard writer.
thread_local std::shared_ptr<ThreadBuffer> t_buffer;
thread_local std::uint64_t t_buffer_epoch = 0;
// This thread's display name. Labels are set at thread start and read at
// buffer registration, both strictly within the thread's lifetime, so a
// plain thread_local (destroyed at thread exit) is safe.
thread_local std::string t_label;

/// Slow path of emit(): first event of this thread in this session.
/// Registers a fresh buffer; leaves t_buffer null if the session already
/// ended (the registry moved on).
void register_thread(std::uint64_t epoch) {
  Registry& r = registry();
  std::scoped_lock lock(r.mutex);
  t_buffer_epoch = epoch;
  if (r.epoch != epoch) {
    t_buffer = nullptr;  // stale epoch: session ended before we got here
    return;
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  buffer->slots.resize(r.capacity);
  buffer->origin_ns = r.origin_ns;
  buffer->tid = r.next_tid++;
  buffer->name =
      !t_label.empty() ? t_label : "thread-" + std::to_string(buffer->tid);
  r.buffers.push_back(buffer);
  t_buffer = std::move(buffer);
}

}  // namespace

void emit(EventKind kind, std::uint64_t id, std::uint64_t arg) noexcept {
  const std::uint64_t epoch = g_epoch.load(std::memory_order_acquire);
  if (epoch == 0) return;  // no session has ever started
  if (t_buffer_epoch != epoch) register_thread(epoch);
  ThreadBuffer* buffer = t_buffer.get();
  if (buffer == nullptr) return;
  const std::uint32_t i = buffer->count.load(std::memory_order_relaxed);
  if (i >= buffer->slots.size()) {
    buffer->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Event& e = buffer->slots[i];
  e.t_ns = now_ns() - buffer->origin_ns;
  e.id = id;
  e.arg = arg;
  e.kind = kind;
  buffer->count.store(i + 1, std::memory_order_release);
}

std::uint64_t next_id() noexcept {
  return g_next_id.fetch_add(1, std::memory_order_relaxed);
}

void label_thread(std::string name) {
  if constexpr (!kTraceCompiled) return;
  t_label = std::move(name);
  // Mid-session relabel: rename the already-registered buffer in place (the
  // collector reads the name only after the session ends).
  if (t_buffer != nullptr && !t_label.empty()) t_buffer->name = t_label;
}

void trace_begin(TraceConfig cfg) {
  if constexpr (!kTraceCompiled) return;
  PARC_CHECK_MSG(!trace_enabled(), "trace_begin with a session already live");
  PARC_CHECK(cfg.events_per_thread >= 1);
  Registry& r = registry();
  {
    std::scoped_lock lock(r.mutex);
    r.buffers.clear();  // previous session's buffers die with their writers
    r.capacity = cfg.events_per_thread;
    r.origin_ns = now_ns();
    r.next_tid = 0;
    r.epoch = g_epoch.load(std::memory_order_relaxed) + 1;
    g_epoch.store(r.epoch, std::memory_order_release);
  }
  detail::g_trace_enabled.store(true, std::memory_order_seq_cst);
}

TraceDump trace_end() {
  TraceDump dump;
  if constexpr (!kTraceCompiled) return dump;
  detail::g_trace_enabled.store(false, std::memory_order_seq_cst);
  Registry& r = registry();
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::scoped_lock lock(r.mutex);
    dump.origin_ns = r.origin_ns;
    buffers.swap(r.buffers);
  }
  for (const auto& buffer : buffers) {
    ThreadTrack track;
    track.tid = buffer->tid;
    track.name = buffer->name;
    track.dropped = buffer->dropped.load(std::memory_order_relaxed);
    const std::uint32_t n = buffer->count.load(std::memory_order_acquire);
    track.events.assign(buffer->slots.begin(), buffer->slots.begin() + n);
    dump.tracks.push_back(std::move(track));
  }
  Counters::global().add("obs.trace.events", dump.total_events());
  Counters::global().add("obs.trace.dropped", dump.total_dropped());
  return dump;
}

std::size_t TraceDump::total_events() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tracks) n += t.events.size();
  return n;
}

std::uint64_t TraceDump::total_dropped() const noexcept {
  std::uint64_t n = 0;
  for (const auto& t : tracks) n += t.dropped;
  return n;
}

std::size_t TraceDump::count_kind(EventKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& t : tracks) {
    for (const auto& e : t.events) n += (e.kind == kind) ? 1 : 0;
  }
  return n;
}

}  // namespace parc::obs
