#include "obs/counters.hpp"

namespace parc::obs {

Counters& Counters::global() {
  static auto* instance = new Counters();  // immortal by design
  return *instance;
}

std::atomic<std::uint64_t>& Counters::get(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<std::atomic<std::uint64_t>>(0))
             .first;
  }
  return *it->second;
}

void Counters::add(std::string_view name, std::uint64_t delta) {
  get(name).fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counters::value(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end()
             ? 0
             : it->second->load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->load(std::memory_order_relaxed));
  }
  return out;  // std::map iterates name-sorted
}

void Counters::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, counter] : counters_) {
    counter->store(0, std::memory_order_relaxed);
  }
}

}  // namespace parc::obs
