#include "obs/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>

namespace parc::obs::model {

namespace {

constexpr double kTiny = 1e-12;
/// Bit 4 of ScalingModel::terms: the Graham floor is active and eval()
/// returns max(linear part, floor_s).
constexpr unsigned kFloorTerm = 0x10;

double basis(std::size_t j, double p) {
  switch (j) {
    case 0: return 1.0;
    case 1: return 1.0 / p;
    case 2: return std::log2(p);
    default: return p;
  }
}

struct SamplePoint {
  double p = 1.0;
  double t = 0.0;
};

/// Weighted (relative) least squares of t ≈ Σ c_j·basis_j(p) over the
/// active terms. Returns false when the normal matrix is singular (e.g.
/// two active terms indistinguishable on the given points).
bool solve_least_squares(const std::vector<SamplePoint>& pts,
                         const std::vector<std::size_t>& active,
                         std::array<double, 4>& coeff) {
  const std::size_t k = active.size();
  double a[4][5] = {};
  for (const SamplePoint& s : pts) {
    // Minimise Σ ((t_i - f(p_i)) / t_i)²: weight 1/t² keeps a sweep whose
    // makespans span three decades from being fitted only at P=1.
    const double w = 1.0 / std::max(s.t * s.t, kTiny);
    for (std::size_t i = 0; i < k; ++i) {
      const double bi = basis(active[i], s.p);
      for (std::size_t j = 0; j < k; ++j) {
        a[i][j] += w * bi * basis(active[j], s.p);
      }
      a[i][k] += w * bi * s.t;
    }
  }
  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < k; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < k; ++r) {
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    }
    if (std::abs(a[pivot][col]) < 1e-30) return false;
    if (pivot != col) {
      for (std::size_t j = 0; j <= k; ++j) std::swap(a[col][j], a[pivot][j]);
    }
    for (std::size_t r = col + 1; r < k; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t j = col; j <= k; ++j) a[r][j] -= f * a[col][j];
    }
  }
  std::array<double, 4> x{};
  for (std::size_t i = k; i-- > 0;) {
    double s = a[i][k];
    for (std::size_t j = i + 1; j < k; ++j) s -= a[i][j] * x[j];
    x[i] = s / a[i][i];
  }
  coeff = {};
  for (std::size_t i = 0; i < k; ++i) coeff[active[i]] = x[i];
  return true;
}

std::vector<std::size_t> active_terms(unsigned mask) {
  std::vector<std::size_t> active;
  for (std::size_t j = 0; j < 4; ++j) {
    if ((mask & (1u << j)) != 0) active.push_back(j);
  }
  return active;
}

double eval_raw(const ScalingModel& m, double p) {
  double t = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    if ((m.terms & (1u << j)) != 0) t += m.c[j] * basis(j, p);
  }
  if ((m.terms & kFloorTerm) != 0) t = std::max(t, m.floor_s);
  return t;
}

/// Fit one candidate term set on the given points. Knee candidates
/// (kFloorTerm set) estimate the plateau as the fastest observed point and
/// fit the linear part on the pre-knee points only. Returns nullopt when
/// the candidate cannot be fitted on these points (too few, singular).
std::optional<ScalingModel> fit_candidate(const std::vector<SamplePoint>& pts,
                                          unsigned mask) {
  const std::vector<std::size_t> active = active_terms(mask);
  ScalingModel m;
  m.terms = mask;
  std::vector<SamplePoint> train = pts;
  if ((mask & kFloorTerm) != 0) {
    double floor = std::numeric_limits<double>::infinity();
    for (const SamplePoint& s : pts) floor = std::min(floor, s.t);
    m.floor_s = floor;
    // The linear part only describes the pre-knee regime; points already on
    // the plateau would drag its slope toward zero.
    train.clear();
    for (const SamplePoint& s : pts) {
      if (s.t > floor * 1.05) train.push_back(s);
    }
  }
  if (train.size() < active.size() + 1) return std::nullopt;
  if (!solve_least_squares(train, active, m.c)) return std::nullopt;
  return m;
}

double rel_error(double predicted, double truth) {
  return std::abs(predicted - truth) / std::max(std::abs(truth), kTiny);
}

/// RMS relative residual of the model over the points.
double rel_rmse(const ScalingModel& m, const std::vector<SamplePoint>& pts) {
  if (pts.empty()) return 0.0;
  double sum = 0.0;
  for (const SamplePoint& s : pts) {
    const double e = rel_error(eval_raw(m, s.p), s.t);
    sum += e * e;
  }
  return std::sqrt(sum / static_cast<double>(pts.size()));
}

/// Reject models that predict a non-positive time anywhere in the
/// evaluation range — an extrapolated makespan below zero is nonsense.
bool positive_over_range(const ScalingModel& m, double max_p) {
  for (double p = 1.0; p <= max_p * (1.0 + 1e-9); p *= 1.5) {
    if (eval_raw(m, p) <= 0.0) return false;
  }
  return eval_raw(m, max_p) > 0.0;
}

}  // namespace

double ScalingModel::eval(double p) const noexcept {
  return std::max(eval_raw(*this, std::max(p, 1.0)), 0.0);
}

double ScalingModel::speedup_at(double p) const noexcept {
  const double t = eval(p);
  return t > kTiny ? t1 / t : 0.0;
}

std::size_t ScalingModel::saturation_p(double min_gain,
                                       std::size_t max_p) const {
  for (std::size_t p = 1; 2 * p <= max_p; p *= 2) {
    const double now = eval(static_cast<double>(p));
    if (now <= kTiny) return p;
    const double next = eval(static_cast<double>(2 * p));
    if ((now - next) / now < min_gain) return p;
  }
  return max_p;
}

std::string ScalingModel::formula() const {
  static const char* const stems[4] = {"", "/p", "*log2(p)", "*p"};
  const bool with_floor = (terms & kFloorTerm) != 0;
  std::string out;
  if (with_floor) out += "max(";
  bool any = false;
  for (std::size_t j = 0; j < 4; ++j) {
    if ((terms & (1u << j)) == 0) continue;
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3g%s", c[j], stems[j]);
    if (any) out += " + ";
    out += buf;
    any = true;
  }
  if (!any) out += "0";
  if (with_floor) {
    char buf[48];
    std::snprintf(buf, sizeof buf, ", %.3g)", floor_s);
    out += buf;
  }
  return out;
}

ScalingModel fit(const sim::SweepTable& table, const FitOptions& opts) {
  std::vector<SamplePoint> pts;
  pts.reserve(table.points.size());
  for (const sim::SweepPoint& p : table.points) {
    pts.push_back(SamplePoint{static_cast<double>(p.cores),
                              p.outcome.makespan_s});
  }

  ScalingModel best;  // degenerate default: t(p) = 0
  best.terms = 0x1;
  const double t1_measured = table.makespan_at(1);
  bool all_zero = true;
  for (const SamplePoint& s : pts) all_zero = all_zero && s.t <= kTiny;
  if (pts.empty() || all_zero) return best;

  // Candidate term sets: every linear subset that includes the constant,
  // plus the two Graham-knee forms max(linear, floor) that a sweep with a
  // sharp work/span transition needs (a smooth basis cannot express the
  // kink; see DESIGN §3).
  static constexpr unsigned kCandidates[] = {
      0x1, 0x3, 0x5, 0x9, 0x7, 0xb, 0xd, 0xf,
      kFloorTerm | 0x2, kFloorTerm | 0x3,
  };

  double best_cv = std::numeric_limits<double>::infinity();
  int best_terms = std::numeric_limits<int>::max();
  bool have_best = false;
  for (const unsigned mask : kCandidates) {
    const auto full = fit_candidate(pts, mask);
    if (!full || !positive_over_range(*full, opts.max_extrapolation_p)) {
      continue;
    }
    // Leave-one-out cross-validation: refit without each point, score the
    // prediction at it. A candidate that cannot survive every refit is out.
    double cv_sum = 0.0;
    bool cv_ok = true;
    for (std::size_t i = 0; i < pts.size() && cv_ok; ++i) {
      std::vector<SamplePoint> rest;
      rest.reserve(pts.size() - 1);
      for (std::size_t j = 0; j < pts.size(); ++j) {
        if (j != i) rest.push_back(pts[j]);
      }
      const auto loo = fit_candidate(rest, mask);
      if (!loo) {
        cv_ok = false;
        break;
      }
      const double e = rel_error(eval_raw(*loo, pts[i].p), pts[i].t);
      cv_sum += e * e;
    }
    if (!cv_ok) continue;
    const double cv = std::sqrt(cv_sum / static_cast<double>(pts.size()));
    const int nterms = __builtin_popcount(mask);
    // Best CV wins; a near-tie (within the parsimony tolerance) goes to
    // the model with fewer terms.
    const bool better =
        !have_best ||
        (cv < best_cv * (1.0 - 1e-12) &&
         (cv < best_cv * (1.0 - opts.parsimony_tolerance) ||
          nterms <= best_terms)) ||
        (cv <= best_cv * (1.0 + opts.parsimony_tolerance) &&
         nterms < best_terms);
    if (better) {
      best = *full;
      best_cv = cv;
      best_terms = nterms;
      have_best = true;
    }
  }

  if (!have_best) {
    // Pathological sweep (e.g. one point): fall back to the weighted mean.
    double wsum = 0.0, wtsum = 0.0;
    for (const SamplePoint& s : pts) {
      const double w = 1.0 / std::max(s.t * s.t, kTiny);
      wsum += w;
      wtsum += w * s.t;
    }
    best = ScalingModel{};
    best.terms = 0x1;
    best.c[0] = wsum > 0.0 ? wtsum / wsum : 0.0;
    best_cv = rel_rmse(best, pts);
  }

  best.cv_rel_rmse = best_cv;
  best.train_rel_rmse = rel_rmse(best, pts);
  best.train_points = pts.size();
  best.t1 = t1_measured > 0.0 ? t1_measured : best.eval(1.0);
  return best;
}

std::size_t crossover_p(const ScalingModel& a, const ScalingModel& b,
                        std::size_t max_p) {
  for (std::size_t p = 1; p <= max_p; ++p) {
    if (a.eval(static_cast<double>(p)) <= b.eval(static_cast<double>(p))) {
      return p;
    }
  }
  return 0;
}

std::vector<HoldoutPoint> cross_check(
    const ScalingModel& model, const sim::TaskDag& dag,
    const std::vector<std::size_t>& holdout_cores,
    const sim::MachineParams& machine) {
  std::vector<HoldoutPoint> points;
  points.reserve(holdout_cores.size());
  for (const std::size_t p : holdout_cores) {
    sim::MachineParams m = machine;
    m.cores = p;
    const sim::SimOutcome truth = sim::simulate(dag, m);
    HoldoutPoint h;
    h.cores = p;
    h.predicted_s = model.eval(static_cast<double>(p));
    h.simulated_s = truth.makespan_s;
    // Both speedups share the model's serial reference so the relative
    // error below is a pure statement about the predicted curve shape.
    h.predicted_speedup =
        h.predicted_s > kTiny ? model.t1 / h.predicted_s : 0.0;
    h.simulated_speedup =
        h.simulated_s > kTiny ? model.t1 / h.simulated_s : 0.0;
    h.rel_error = rel_error(h.predicted_speedup, h.simulated_speedup);
    points.push_back(h);
  }
  return points;
}

double ProgramModel::composed_time(double p) const {
  double total = 0.0;
  for (const std::vector<std::size_t>& phase : phases) {
    double longest = 0.0, work = 0.0;
    for (const std::size_t idx : phase) {
      longest = std::max(longest, patterns[idx].model.eval(p));
      work += patterns[idx].work_s;
    }
    // Concurrent groups share the P cores: no phase can beat its combined
    // work law, however optimistic the individual fits are.
    total += std::max(longest, work / std::max(p, 1.0));
  }
  return total;
}

double ProgramModel::max_holdout_error() const noexcept {
  double worst = 0.0;
  for (const HoldoutPoint& h : holdout) worst = std::max(worst, h.rel_error);
  return worst;
}

ProgramModel fit_program(const RecordedGraph& graph,
                         const ModelOptions& opts) {
  ProgramModel pm;
  const sim::TaskDag full = graph.to_dag();
  const sim::SweepOptions sweep_opts{opts.train_cores, opts.machine};
  const sim::SweepTable full_table = sim::sweep(full, sweep_opts);
  pm.total = fit(full_table, opts.fit);

  const std::vector<PatternGroup>& groups = graph.patterns();
  pm.patterns.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    PatternModel p;
    p.kind = groups[g].kind;
    p.group = g;
    p.tasks = groups[g].tasks.size();
    p.work_s = groups[g].work_s;
    if (groups[g].work_s > 0.0) {
      p.model = fit(sim::sweep(graph.group_dag(g), sweep_opts), opts.fit);
    }
    pm.patterns.push_back(std::move(p));
  }

  // Sequential phases: groups are ordered by first start; a group that
  // starts after everything seen so far has finished opens a new phase.
  std::uint64_t phase_max_finish = 0;
  for (std::size_t g = 0; g < groups.size(); ++g) {
    if (pm.phases.empty() ||
        (groups[g].first_start_ns > phase_max_finish &&
         groups[g].last_finish_ns > 0)) {
      pm.phases.emplace_back();
    }
    pm.phases.back().push_back(g);
    phase_max_finish = std::max(phase_max_finish, groups[g].last_finish_ns);
  }

  // Composition residual: the structural prediction against the training
  // sweep's simulated truth.
  double sum = 0.0;
  std::size_t counted = 0;
  for (const sim::SweepPoint& point : full_table.points) {
    if (point.outcome.makespan_s <= kTiny) continue;
    const double e = rel_error(
        pm.composed_time(static_cast<double>(point.cores)),
        point.outcome.makespan_s);
    sum += e * e;
    ++counted;
  }
  pm.composed_rel_rmse =
      counted > 0 ? std::sqrt(sum / static_cast<double>(counted)) : 0.0;

  pm.holdout = cross_check(pm.total, full, opts.holdout_cores, opts.machine);
  return pm;
}

}  // namespace parc::obs::model
