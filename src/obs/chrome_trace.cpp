#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <string>
#include <unordered_map>

namespace parc::obs {

namespace {

struct KindInfo {
  const char* ph;    ///< trace-event phase: B, E, or i
  const char* name;  ///< event name stem (id appended for span kinds)
  const char* cat;
  bool with_id;      ///< append "#<id>" to the name
};

KindInfo kind_info(EventKind kind) {
  switch (kind) {
    case EventKind::kJobEnqueue:   return {"i", "enqueue", "sched", false};
    case EventKind::kExecBegin:    return {"B", "job", "sched", true};
    case EventKind::kExecEnd:      return {"E", "job", "sched", true};
    case EventKind::kSteal:        return {"i", "steal", "sched", false};
    case EventKind::kPark:         return {"i", "park", "sched", false};
    case EventKind::kUnpark:       return {"i", "unpark", "sched", false};
    case EventKind::kTaskSpawn:    return {"i", "spawn", "task", true};
    case EventKind::kTaskReady:    return {"i", "ready", "task", true};
    case EventKind::kTaskStart:    return {"B", "task", "task", true};
    case EventKind::kTaskFinish:   return {"E", "task", "task", true};
    case EventKind::kDepEdge:      return {"i", "dep", "task", false};
    case EventKind::kRegionBegin:  return {"B", "region", "pj", true};
    case EventKind::kRegionEnd:    return {"E", "region", "pj", true};
    case EventKind::kRegionFork:   return {"i", "region-fork", "pj", true};
    case EventKind::kSpawnFallback:
      return {"i", "spawn-fallback", "pj", true};
    case EventKind::kBarrierBegin: return {"B", "barrier", "pj", false};
    case EventKind::kBarrierEnd:   return {"E", "barrier", "pj", false};
    case EventKind::kEdtPost:      return {"i", "post", "gui", false};
    case EventKind::kEdtHop:       return {"i", "edt-hop", "gui", false};
    case EventKind::kEdtRunBegin:  return {"B", "event", "gui", true};
    case EventKind::kEdtRunEnd:    return {"E", "event", "gui", true};
    case EventKind::kWaiterPark:   return {"B", "join-wait", "sync", true};
    case EventKind::kWaiterWake:   return {"E", "join-wait", "sync", true};
    case EventKind::kWaiterHelp:   return {"i", "help", "sync", false};
    case EventKind::kContinuationRun:
      return {"i", "continuation", "sync", true};
    case EventKind::kContLocalPush:
      return {"i", "cont-local-push", "sched", false};
    case EventKind::kContInjectFallback:
      return {"i", "cont-inject-fallback", "sched", false};
    case EventKind::kDequeOverflow:
      return {"i", "deque-overflow", "sched", false};
    case EventKind::kStealRemote:
      return {"i", "steal-remote", "sched", false};
    case EventKind::kParkShard:
      return {"i", "park-shard", "sched", false};
    case EventKind::kServeArrive:  return {"i", "arrive", "serve", true};
    case EventKind::kServeShed:    return {"i", "shed", "serve", true};
    case EventKind::kServeHit:     return {"i", "cache-hit", "serve", true};
    case EventKind::kServeCoalesce:
      return {"i", "coalesce", "serve", true};
    case EventKind::kServeBatch:   return {"i", "batch", "serve", true};
    case EventKind::kServeExecBegin:
      return {"B", "request", "serve", true};
    case EventKind::kServeExecEnd: return {"E", "request", "serve", true};
    case EventKind::kServeDone:    return {"i", "done", "serve", true};
    case EventKind::kChanPush:     return {"i", "chan-push", "flow", true};
    case EventKind::kChanPop:      return {"i", "chan-pop", "flow", true};
    case EventKind::kChanFull:     return {"i", "chan-block", "flow", true};
    case EventKind::kChanClosed:   return {"i", "chan-closed", "flow", true};
  }
  return {"i", "unknown", "obs", false};
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microsecond timestamp with ns precision, as trace-event "ts" expects.
void append_ts(std::string& out, std::uint64_t t_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u",
                t_ns / 1000, static_cast<unsigned>(t_ns % 1000));
  out += buf;
}

struct Anchor {
  std::uint32_t tid = 0;
  std::uint64_t t_ns = 0;
  bool set = false;
};

}  // namespace

void write_chrome_trace(const TraceDump& dump, std::ostream& os) {
  std::string out;
  out.reserve(256 + dump.total_events() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Thread-name metadata so Perfetto shows "ptask-w0", "edt", ...
  for (const auto& track : dump.tracks) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    out += std::to_string(track.tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, track.name);
    out += "\"}}";
  }

  // First pass: anchor each task id's start/finish so dependence edges can
  // be drawn as flow events between the right (track, time) points.
  std::unordered_map<std::uint64_t, Anchor> starts;
  std::unordered_map<std::uint64_t, Anchor> finishes;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      if (e.kind == EventKind::kTaskStart) {
        starts[e.id] = Anchor{track.tid, e.t_ns, true};
      } else if (e.kind == EventKind::kTaskFinish) {
        finishes[e.id] = Anchor{track.tid, e.t_ns, true};
      }
    }
  }

  std::uint64_t flow_id = 0;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      const KindInfo info = kind_info(e.kind);
      comma();
      out += "{\"ph\":\"";
      out += info.ph;
      out += "\",\"name\":\"";
      out += info.name;
      if (info.with_id) {
        out += '#';
        out += std::to_string(e.id);
      }
      out += "\",\"cat\":\"";
      out += info.cat;
      out += "\",\"ts\":";
      append_ts(out, e.t_ns);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(track.tid);
      if (info.ph[0] == 'i') out += ",\"s\":\"t\"";
      out += ",\"args\":{\"id\":";
      out += std::to_string(e.id);
      out += ",\"arg\":";
      out += std::to_string(e.arg);
      out += "}}";

      // Channel push/pop carry occupancy-after in `arg`; mirror each one as
      // a Chrome counter sample so Perfetto draws a per-channel occupancy
      // track ("C" events aggregate per name, not per tid).
      if (e.kind == EventKind::kChanPush || e.kind == EventKind::kChanPop) {
        comma();
        out += "{\"ph\":\"C\",\"name\":\"chan#";
        out += std::to_string(e.id);
        out += " occupancy\",\"cat\":\"flow\",\"ts\":";
        append_ts(out, e.t_ns);
        out += ",\"pid\":1,\"args\":{\"occupancy\":";
        out += std::to_string(e.arg);
        out += "}}";
      }

      // A dependence edge additionally emits a flow arrow when both ends
      // were recorded (predecessor finish → successor start).
      if (e.kind == EventKind::kDepEdge) {
        const auto from = finishes.find(e.id);
        const auto to = starts.find(e.arg);
        if (from != finishes.end() && to != starts.end()) {
          const std::uint64_t fid = flow_id++;
          comma();
          out += "{\"ph\":\"s\",\"name\":\"dep\",\"cat\":\"dep\",\"id\":";
          out += std::to_string(fid);
          out += ",\"ts\":";
          append_ts(out, from->second.t_ns);
          out += ",\"pid\":1,\"tid\":";
          out += std::to_string(from->second.tid);
          out += "}";
          comma();
          out += "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"dep\",\"cat\":\"dep\",\"id\":";
          out += std::to_string(fid);
          out += ",\"ts\":";
          append_ts(out, to->second.t_ns);
          out += ",\"pid\":1,\"tid\":";
          out += std::to_string(to->second.tid);
          out += "}";
        }
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

}  // namespace parc::obs
