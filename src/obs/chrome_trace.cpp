#include "obs/chrome_trace.hpp"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <istream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace parc::obs {

namespace {

struct KindInfo {
  const char* ph;    ///< trace-event phase: B, E, or i
  const char* name;  ///< event name stem (id appended for span kinds)
  const char* cat;
  bool with_id;      ///< append "#<id>" to the name
};

KindInfo kind_info(EventKind kind) {
  switch (kind) {
    case EventKind::kJobEnqueue:   return {"i", "enqueue", "sched", false};
    case EventKind::kExecBegin:    return {"B", "job", "sched", true};
    case EventKind::kExecEnd:      return {"E", "job", "sched", true};
    case EventKind::kSteal:        return {"i", "steal", "sched", false};
    case EventKind::kPark:         return {"i", "park", "sched", false};
    case EventKind::kUnpark:       return {"i", "unpark", "sched", false};
    case EventKind::kTaskSpawn:    return {"i", "spawn", "task", true};
    case EventKind::kTaskReady:    return {"i", "ready", "task", true};
    case EventKind::kTaskStart:    return {"B", "task", "task", true};
    case EventKind::kTaskFinish:   return {"E", "task", "task", true};
    case EventKind::kDepEdge:      return {"i", "dep", "task", false};
    case EventKind::kRegionBegin:  return {"B", "region", "pj", true};
    case EventKind::kRegionEnd:    return {"E", "region", "pj", true};
    case EventKind::kRegionFork:   return {"i", "region-fork", "pj", true};
    case EventKind::kSpawnFallback:
      return {"i", "spawn-fallback", "pj", true};
    case EventKind::kBarrierBegin: return {"B", "barrier", "pj", false};
    case EventKind::kBarrierEnd:   return {"E", "barrier", "pj", false};
    case EventKind::kEdtPost:      return {"i", "post", "gui", false};
    case EventKind::kEdtHop:       return {"i", "edt-hop", "gui", false};
    case EventKind::kEdtRunBegin:  return {"B", "event", "gui", true};
    case EventKind::kEdtRunEnd:    return {"E", "event", "gui", true};
    case EventKind::kWaiterPark:   return {"B", "join-wait", "sync", true};
    case EventKind::kWaiterWake:   return {"E", "join-wait", "sync", true};
    case EventKind::kWaiterHelp:   return {"i", "help", "sync", false};
    case EventKind::kContinuationRun:
      return {"i", "continuation", "sync", true};
    case EventKind::kContLocalPush:
      return {"i", "cont-local-push", "sched", false};
    case EventKind::kContInjectFallback:
      return {"i", "cont-inject-fallback", "sched", false};
    case EventKind::kDequeOverflow:
      return {"i", "deque-overflow", "sched", false};
    case EventKind::kStealRemote:
      return {"i", "steal-remote", "sched", false};
    case EventKind::kParkShard:
      return {"i", "park-shard", "sched", false};
    case EventKind::kServeArrive:  return {"i", "arrive", "serve", true};
    case EventKind::kServeShed:    return {"i", "shed", "serve", true};
    case EventKind::kServeHit:     return {"i", "cache-hit", "serve", true};
    case EventKind::kServeCoalesce:
      return {"i", "coalesce", "serve", true};
    case EventKind::kServeBatch:   return {"i", "batch", "serve", true};
    case EventKind::kServeExecBegin:
      return {"B", "request", "serve", true};
    case EventKind::kServeExecEnd: return {"E", "request", "serve", true};
    case EventKind::kServeDone:    return {"i", "done", "serve", true};
    case EventKind::kChanPush:     return {"i", "chan-push", "flow", true};
    case EventKind::kChanPop:      return {"i", "chan-pop", "flow", true};
    case EventKind::kChanFull:     return {"i", "chan-block", "flow", true};
    case EventKind::kChanClosed:   return {"i", "chan-closed", "flow", true};
    case EventKind::kReplicaPick:  return {"i", "replica-pick", "serve", true};
    case EventKind::kReplicaFail:  return {"i", "replica-fail", "serve", true};
    case EventKind::kEject:        return {"i", "eject", "serve", true};
    case EventKind::kProbe:        return {"i", "probe", "serve", true};
    case EventKind::kDeadlineShed:
      return {"i", "deadline-shed", "serve", true};
  }
  return {"i", "unknown", "obs", false};
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Microsecond timestamp with ns precision, as trace-event "ts" expects.
void append_ts(std::string& out, std::uint64_t t_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u",
                t_ns / 1000, static_cast<unsigned>(t_ns % 1000));
  out += buf;
}

struct Anchor {
  std::uint32_t tid = 0;
  std::uint64_t t_ns = 0;
  bool set = false;
};

}  // namespace

void write_chrome_trace(const TraceDump& dump, std::ostream& os) {
  std::string out;
  out.reserve(256 + dump.total_events() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ",\n";
    first = false;
  };

  // Thread-name metadata so Perfetto shows "ptask-w0", "edt", ...
  for (const auto& track : dump.tracks) {
    comma();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    out += std::to_string(track.tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, track.name);
    out += "\"}}";
  }

  // First pass: anchor each task id's start/finish so dependence edges can
  // be drawn as flow events between the right (track, time) points.
  std::unordered_map<std::uint64_t, Anchor> starts;
  std::unordered_map<std::uint64_t, Anchor> finishes;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      if (e.kind == EventKind::kTaskStart) {
        starts[e.id] = Anchor{track.tid, e.t_ns, true};
      } else if (e.kind == EventKind::kTaskFinish) {
        finishes[e.id] = Anchor{track.tid, e.t_ns, true};
      }
    }
  }

  std::uint64_t flow_id = 0;
  for (const auto& track : dump.tracks) {
    for (const Event& e : track.events) {
      const KindInfo info = kind_info(e.kind);
      comma();
      out += "{\"ph\":\"";
      out += info.ph;
      out += "\",\"name\":\"";
      out += info.name;
      if (info.with_id) {
        out += '#';
        out += std::to_string(e.id);
      }
      out += "\",\"cat\":\"";
      out += info.cat;
      out += "\",\"ts\":";
      append_ts(out, e.t_ns);
      out += ",\"pid\":1,\"tid\":";
      out += std::to_string(track.tid);
      if (info.ph[0] == 'i') out += ",\"s\":\"t\"";
      out += ",\"args\":{\"id\":";
      out += std::to_string(e.id);
      out += ",\"arg\":";
      out += std::to_string(e.arg);
      out += "}}";

      // Channel push/pop carry occupancy-after in `arg`; mirror each one as
      // a Chrome counter sample so Perfetto draws a per-channel occupancy
      // track ("C" events aggregate per name, not per tid).
      if (e.kind == EventKind::kChanPush || e.kind == EventKind::kChanPop) {
        comma();
        out += "{\"ph\":\"C\",\"name\":\"chan#";
        out += std::to_string(e.id);
        out += " occupancy\",\"cat\":\"flow\",\"ts\":";
        append_ts(out, e.t_ns);
        out += ",\"pid\":1,\"args\":{\"occupancy\":";
        out += std::to_string(e.arg);
        out += "}}";
      }

      // A dependence edge additionally emits a flow arrow when both ends
      // were recorded (predecessor finish → successor start).
      if (e.kind == EventKind::kDepEdge) {
        const auto from = finishes.find(e.id);
        const auto to = starts.find(e.arg);
        if (from != finishes.end() && to != starts.end()) {
          const std::uint64_t fid = flow_id++;
          comma();
          out += "{\"ph\":\"s\",\"name\":\"dep\",\"cat\":\"dep\",\"id\":";
          out += std::to_string(fid);
          out += ",\"ts\":";
          append_ts(out, from->second.t_ns);
          out += ",\"pid\":1,\"tid\":";
          out += std::to_string(from->second.tid);
          out += "}";
          comma();
          out += "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"dep\",\"cat\":\"dep\",\"id\":";
          out += std::to_string(fid);
          out += ",\"ts\":";
          append_ts(out, to->second.t_ns);
          out += ",\"pid\":1,\"tid\":";
          out += std::to_string(to->second.tid);
          out += "}";
        }
      }
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  os << out;
}

// ---------------------------------------------------------------------------
// Reader: the inverse of write_chrome_trace, built on a minimal DOM parser
// for the subset of JSON the writer produces (objects, arrays, strings,
// numbers). Every runtime event round-trips exactly — kind from the
// (ph, name-stem, cat) triple, id/arg from the args object, t_ns from the
// microsecond "ts" with its three fractional digits.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };
  Type type = Type::kNull;
  double number = 0.0;
  bool boolean = false;
  std::string string;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("chrome trace parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        v.boolean = peek() == 't';
        literal(v.boolean ? "true" : "false");
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: return number();
    }
  }

  void literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (pos_ >= text_.size() || text_[pos_] != *c) fail("bad literal");
      ++pos_;
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only escapes control characters; anything else is
          // mapped through as a single byte (good enough for labels).
          out.push_back(static_cast<char>(code < 0x80 ? code : '?'));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("unparseable number");
    }
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

/// Reverse of kind_info: (ph, name-stem, cat) → EventKind, built once from
/// the same table the writer uses so the two can never drift apart.
const std::unordered_map<std::string, EventKind>& kind_by_triple() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, EventKind>;
    for (int k = 0; k <= static_cast<int>(EventKind::kChanClosed); ++k) {
      const auto kind = static_cast<EventKind>(k);
      const KindInfo info = kind_info(kind);
      m->emplace(std::string(info.ph) + '\x1f' + info.name + '\x1f' + info.cat,
                 kind);
    }
    return m;
  }();
  return *map;
}

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.get(key);
  if (v == nullptr || v->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("chrome trace: missing numeric \"" + key + "\"");
  }
  return v->number;
}

}  // namespace

TraceDump read_chrome_trace(std::istream& is) {
  std::string text(std::istreambuf_iterator<char>(is), {});
  const JsonValue root = JsonParser(std::move(text)).parse();
  if (root.type != JsonValue::Type::kObject) {
    throw std::runtime_error("chrome trace: top level is not an object");
  }
  const JsonValue* events = root.get("traceEvents");
  if (events == nullptr || events->type != JsonValue::Type::kArray) {
    throw std::runtime_error("chrome trace: no traceEvents array");
  }

  TraceDump dump;
  std::unordered_map<std::uint32_t, std::size_t> track_of_tid;
  auto track_for = [&](std::uint32_t tid) -> ThreadTrack& {
    const auto [it, inserted] = track_of_tid.emplace(tid, dump.tracks.size());
    if (inserted) {
      ThreadTrack t;
      t.tid = tid;
      t.name = "thread-" + std::to_string(tid);
      dump.tracks.push_back(std::move(t));
    }
    return dump.tracks[it->second];
  };

  for (const JsonValue& record : events->array) {
    if (record.type != JsonValue::Type::kObject) {
      throw std::runtime_error("chrome trace: non-object trace event");
    }
    const JsonValue* ph = record.get("ph");
    const JsonValue* name = record.get("name");
    if (ph == nullptr || name == nullptr) continue;

    if (ph->string == "M") {
      if (name->string == "thread_name") {
        const JsonValue* args = record.get("args");
        const JsonValue* label =
            args != nullptr ? args->get("name") : nullptr;
        ThreadTrack& track = track_for(
            static_cast<std::uint32_t>(require_number(record, "tid")));
        if (label != nullptr) track.name = label->string;
      }
      continue;
    }
    // Derived records: counter samples and dependence flow arrows are
    // re-derivable from the events themselves.
    if (ph->string == "C" || ph->string == "s" || ph->string == "f") continue;

    const JsonValue* cat = record.get("cat");
    if (cat == nullptr) continue;
    const std::string stem = name->string.substr(0, name->string.find('#'));
    const auto it =
        kind_by_triple().find(ph->string + '\x1f' + stem + '\x1f' + cat->string);
    if (it == kind_by_triple().end()) continue;  // foreign tooling event

    const JsonValue* args = record.get("args");
    if (args == nullptr || args->get("id") == nullptr ||
        args->get("arg") == nullptr) {
      throw std::runtime_error("chrome trace: event without args.id/args.arg");
    }
    Event e;
    e.kind = it->second;
    e.t_ns = static_cast<std::uint64_t>(
        std::llround(require_number(record, "ts") * 1000.0));
    e.id = static_cast<std::uint64_t>(require_number(*args, "id"));
    e.arg = static_cast<std::uint64_t>(require_number(*args, "arg"));
    track_for(static_cast<std::uint32_t>(require_number(record, "tid")))
        .events.push_back(e);
  }
  return dump;
}

}  // namespace parc::obs
