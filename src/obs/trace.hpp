// parc::obs tracing core: always-available, near-zero-overhead task-graph
// event recording for both runtimes.
//
// Design targets (ISSUE 2):
//  - compiled out entirely under -DPARC_TRACE=OFF (`tracing()` is a
//    compile-time false, so every hook is dead code);
//  - when compiled in but no session is active, a hook costs one relaxed
//    atomic load and one predicted branch (≤ 1 ns; bench_sched_overhead
//    asserts the budget);
//  - when a session is live, each event is one steady_clock read plus a
//    32-byte store into a per-thread fixed-capacity buffer — no locks, no
//    allocation, no cross-thread cache traffic on the write path.
//
// Concurrency model. Each thread writes to its own buffer; the only shared
// word a writer touches per event is its buffer's own `count`, published
// with a release store. The collector (trace_end) reads `count` with an
// acquire load and copies only slots below it, so a writer mid-append never
// races the reader — the in-flight event is simply not collected. Buffers
// are allocated fresh per session (registered under a mutex on a thread's
// first event), never recycled, so a laggard writer from a previous session
// can at worst append to a buffer nobody will read again.
//
// Buffers are bounded and non-wrapping: when full, further events on that
// thread are dropped and counted (`ThreadTrack::dropped`). A trace is a
// measurement tool; dropping beats unbounded memory or a resize lock.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

// Defined (0 or 1) by the build via the PARC_TRACE CMake option; defaults to
// compiled-in for non-CMake consumers of the headers.
#if !defined(PARC_OBS_TRACE)
#define PARC_OBS_TRACE 1
#endif

namespace parc::obs {

/// Fixed event vocabulary. `id` / `arg` meaning per kind is noted inline;
/// ids come from next_id() and are unique across kinds within a process.
enum class EventKind : std::uint8_t {
  // Scheduler layer (sched::WorkStealingPool).
  kJobEnqueue,   ///< id = job id, arg = 0 — cell entered a pool queue
  kExecBegin,    ///< id = job id — a worker/helper started the job
  kExecEnd,      ///< id = job id — the job returned
  kSteal,        ///< id = stolen job id, arg = victim worker index
  kPark,         ///< id = worker index — worker went to sleep
  kUnpark,       ///< id = worker index — worker woke up
  // Task layer (ptask tasks, pj deferred tasks, multi-task bodies).
  kTaskSpawn,    ///< id = task id, arg = parent task id (0 = none)
  kTaskReady,    ///< id = task id — all dependences satisfied, submitted
  kTaskStart,    ///< id = task id — body began executing
  kTaskFinish,   ///< id = task id — body finished (any terminal state)
  kDepEdge,      ///< id = predecessor task id, arg = successor task id
  // Pyjama structure.
  kRegionBegin,  ///< id = region id, arg = team size (per member thread)
  kRegionEnd,    ///< id = region id, arg = member index
  kRegionFork,   ///< id = parent region id (0 = top level), arg = child id
  kSpawnFallback,  ///< id = region id, arg = member count — pool saturated,
                   ///< inner-region members spawned as raw threads
  kBarrierBegin, ///< id = barrier identity
  kBarrierEnd,   ///< id = barrier identity
  // GUI event-dispatch thread.
  kEdtPost,      ///< id = 0 — closure posted to the event loop
  kEdtHop,       ///< id = completing task id — handler dispatched to EDT
  kEdtRunBegin,  ///< id = event sequence number — EDT started servicing
  kEdtRunEnd,    ///< id = event sequence number — EDT finished servicing
  // Completion core (sched::Completion / JoinLatch / Barrier waiters).
  kWaiterPark,      ///< id = join identity — waiter parked on a futex word
  kWaiterWake,      ///< id = join identity — parked waiter resumed
  kWaiterHelp,      ///< id = helped job id — a waiter ran a pool job
  kContinuationRun, ///< id = completed identity — continuation executed
  // Continuation stealing (hand-off decision on the submit/complete path).
  kContLocalPush,       ///< id = job id — ready work pushed to own deque tail
  kContInjectFallback,  ///< id = job id — local hint from a non-worker thread
  kDequeOverflow,       ///< id = job id, arg = worker — soft cap hit, injected
  // Locality-domain sharding (Config::shards > 1; see DESIGN §3).
  kStealRemote,  ///< id = stolen job id, arg = victim worker index — the
                 ///< thief's shard ran dry and it crossed into another domain
  kParkShard,    ///< id = worker index, arg = shard index — worker parked on
                 ///< its shard's (not a global) park list
  // Serving stack (parc::serve): one span per request plus lifecycle marks.
  kServeArrive,     ///< id = request id, arg = request kind — offered load
  kServeShed,       ///< id = request id, arg = 0 token bucket / 1 queue full
  kServeHit,        ///< id = request id — answered from the result cache
  kServeCoalesce,   ///< id = request id, arg = leader request id — attached
                    ///< to an in-flight computation of the same key
  kServeBatch,      ///< id = batch sequence no., arg = batch size — a batch
                    ///< left the batcher for submit_bulk
  kServeExecBegin,  ///< id = request id, arg = shard — backend work started
  kServeExecEnd,    ///< id = request id — backend work finished
  kServeDone,       ///< id = request id, arg = latency ns — reply delivered
  // Bounded channels (parc::flow). `id` is the channel's process-unique
  // serial; push/pop carry occupancy *after* the operation so the exporter
  // can draw per-channel occupancy counter tracks.
  kChanPush,     ///< id = channel id, arg = occupancy after the push
  kChanPop,      ///< id = channel id, arg = occupancy after the pop
  kChanFull,     ///< id = channel id, arg = 0 producer blocked on full,
                 ///< 1 consumer blocked on empty
  kChanClosed,   ///< id = channel id, arg = 0 closed, 1 poisoned
  // Replicated serving (serve::Router health/fault lifecycle). Replica
  // transitions are keyed on *scheduled* arrival time, so a traced run's
  // eject/probe sequence is a pure function of the seeded request stream.
  kReplicaPick,   ///< id = request id, arg = replica index — router choice
  kReplicaFail,   ///< id = request id, arg = replica index — request failed
                  ///< (injected fault or organic backend error)
  kEject,         ///< id = replica index, arg = consecutive failures —
                  ///< replica left the healthy rotation
  kProbe,         ///< id = replica index, arg = 0 half-open probe routed /
                  ///< 1 probe verdict ok (replica recovered) / 2 probe
                  ///< verdict failed (backoff doubled, re-ejected)
  kDeadlineShed,  ///< id = request id, arg = priority — expired or refused
                  ///< by the priority/deadline admission ladder
};

/// Fixed-slot trace record: 32 bytes, written once, never reused.
struct Event {
  std::uint64_t t_ns = 0;  ///< nanoseconds since session start
  std::uint64_t id = 0;
  std::uint64_t arg = 0;
  EventKind kind{};
  std::uint8_t reserved_[7] = {};
};
static_assert(sizeof(Event) == 32, "Event must stay one half cache line");

namespace detail {
// The runtime gate. Extern so trace_enabled() inlines to one relaxed load.
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when a trace session is live. Hot-path callers should use
/// tracing() below, which also folds in the compile-time switch.
[[nodiscard]] inline bool trace_enabled() noexcept {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Compile-time tracing switch (the PARC_TRACE CMake option).
inline constexpr bool kTraceCompiled = PARC_OBS_TRACE != 0;

/// The one gate every hook uses:
///   if (obs::tracing()) [[unlikely]] { ...assign ids, emit... }
/// Compiles to `false` (dead code) when tracing is compiled out, and to a
/// single relaxed load + branch when compiled in but idle.
[[nodiscard]] inline bool tracing() noexcept {
  if constexpr (kTraceCompiled) {
    return trace_enabled();
  } else {
    return false;
  }
}

/// Append one event to the calling thread's buffer. Callers must gate on
/// tracing() — emit() itself re-checks nothing beyond session epoch.
void emit(EventKind kind, std::uint64_t id, std::uint64_t arg = 0) noexcept;

/// Process-unique id source for tasks/jobs/regions (starts at 1; 0 means
/// "untraced"). Only called on traced paths.
[[nodiscard]] std::uint64_t next_id() noexcept;

/// Sticky label for the calling thread's lane in exported traces
/// ("ptask-w0", "edt", ...). Cheap; callable before any session starts.
void label_thread(std::string name);

struct TraceConfig {
  /// Event capacity per writing thread; events beyond it are dropped (and
  /// counted). 64Ki events = 2 MiB per thread.
  std::size_t events_per_thread = std::size_t{1} << 16;
};

/// One thread's recorded events, in emission order.
struct ThreadTrack {
  std::uint32_t tid = 0;       ///< registration order within the session
  std::string name;            ///< label_thread() value or "thread-<tid>"
  std::vector<Event> events;
  std::uint64_t dropped = 0;   ///< events lost to buffer exhaustion
};

/// A completed trace: every thread's track plus session metadata.
struct TraceDump {
  std::vector<ThreadTrack> tracks;
  std::uint64_t origin_ns = 0;  ///< steady-clock origin of t_ns == 0

  [[nodiscard]] std::size_t total_events() const noexcept;
  [[nodiscard]] std::uint64_t total_dropped() const noexcept;
  [[nodiscard]] std::size_t count_kind(EventKind kind) const noexcept;
};

/// Start recording. Requires no live session. Thread-safe; buffers from any
/// previous session are abandoned to their writers.
void trace_begin(TraceConfig cfg = {});

/// Stop recording and collect every registered thread's events. Events whose
/// emit is still in flight on another thread are safely excluded.
[[nodiscard]] TraceDump trace_end();

/// True between trace_begin() and trace_end() (same as trace_enabled(), but
/// readable when tracing is compiled out: always false then).
[[nodiscard]] inline bool session_active() noexcept { return tracing(); }

/// RAII session: begins on construction; end() (or destruction) collects.
class TraceSession {
 public:
  explicit TraceSession(TraceConfig cfg = {}) { trace_begin(cfg); }
  ~TraceSession() {
    if (!ended_) (void)trace_end();
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  [[nodiscard]] TraceDump end() {
    ended_ = true;
    return trace_end();
  }

 private:
  bool ended_ = false;
};

}  // namespace parc::obs
