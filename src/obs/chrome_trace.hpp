// Chrome trace-event JSON export: turns a TraceDump into a file that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//  - every recorded thread becomes a named track (metadata "M" events);
//  - paired kinds (ExecBegin/End, TaskStart/Finish, RegionBegin/End,
//    BarrierBegin/End, EdtRunBegin/End) become duration events ("B"/"E"),
//    which nest naturally per track — a ptask task span sits inside the
//    scheduler job span that ran it;
//  - dependence edges become flow events ("s" at the predecessor's finish,
//    "f" at the successor's start) so Perfetto draws the task-graph arrows;
//  - everything else (spawn, ready, steal, park, EDT hops) becomes a
//    thread-scoped instant event ("i").
#pragma once

#include <iosfwd>

#include "obs/trace.hpp"

namespace parc::obs {

/// Write `dump` as trace-event JSON ({"traceEvents": [...]}) to `os`.
void write_chrome_trace(const TraceDump& dump, std::ostream& os);

/// Read a trace-event JSON file written by write_chrome_trace back into a
/// TraceDump: thread tracks (tid + label) from the "M" metadata records,
/// every runtime event from its (ph, name, cat) triple plus the lossless
/// args.id/args.arg pair the writer emits. Derived records (flow arrows,
/// counter tracks) are skipped — they are re-derivable. This is what lets
/// tools ingest any `--trace` output instead of re-running the program;
/// extract_task_graph / build_serve_dag / build_flow_dag consume the result
/// exactly as if the session had just ended in-process.
///
/// Throws std::runtime_error on malformed input (not a PARC_CHECK: a trace
/// file is user input, not a program invariant).
[[nodiscard]] TraceDump read_chrome_trace(std::istream& is);

}  // namespace parc::obs
