// Chrome trace-event JSON export: turns a TraceDump into a file that loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//  - every recorded thread becomes a named track (metadata "M" events);
//  - paired kinds (ExecBegin/End, TaskStart/Finish, RegionBegin/End,
//    BarrierBegin/End, EdtRunBegin/End) become duration events ("B"/"E"),
//    which nest naturally per track — a ptask task span sits inside the
//    scheduler job span that ran it;
//  - dependence edges become flow events ("s" at the predecessor's finish,
//    "f" at the successor's start) so Perfetto draws the task-graph arrows;
//  - everything else (spawn, ready, steal, park, EDT hops) becomes a
//    thread-scoped instant event ("i").
#pragma once

#include <iosfwd>

#include "obs/trace.hpp"

namespace parc::obs {

/// Write `dump` as trace-event JSON ({"traceEvents": [...]}) to `os`.
void write_chrome_trace(const TraceDump& dump, std::ostream& os);

}  // namespace parc::obs
