// parc::obs counters: a process-wide registry of named monotonic counters.
//
// Complements the event trace: events answer "when/what happened", counters
// answer "how many, cheaply, always". Counter objects are plain relaxed
// atomics with stable addresses — subsystems look their counter up once
// (mutex-guarded map, cold) and then tick it lock-free forever. Snapshots
// are name-sorted so reports and tests are deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace parc::obs {

class Counters {
 public:
  /// The process-wide registry (immortal, like the runtimes' global pools).
  [[nodiscard]] static Counters& global();

  /// Look up (creating if absent) the counter with this name. The returned
  /// reference is valid for the registry's lifetime — cache it, then tick
  /// with fetch_add(1, std::memory_order_relaxed).
  [[nodiscard]] std::atomic<std::uint64_t>& get(std::string_view name);

  /// One-shot convenience for cold paths (does the lookup every call).
  void add(std::string_view name, std::uint64_t delta);

  /// Current value, 0 if the counter does not exist.
  [[nodiscard]] std::uint64_t value(std::string_view name) const;

  /// Name-sorted copy of every counter.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> snapshot()
      const;

  /// Zero every counter (tests / between experiment phases). Registered
  /// references stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  // unique_ptr: map rebalancing must not move the atomics out from under
  // cached references.
  std::map<std::string, std::unique_ptr<std::atomic<std::uint64_t>>,
           std::less<>>
      counters_;  // guarded by mutex_
};

}  // namespace parc::obs
