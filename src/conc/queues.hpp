// Queue variants for the project-9 throughput study:
//  - MichaelScottQueue: the classic *two-lock* concurrent queue (Michael &
//    Scott, PODC 1996): head and tail locks, so one enqueuer and one
//    dequeuer never contend.
//  - MpmcRing: Vyukov's bounded lock-free MPMC ring buffer — per-slot
//    sequence numbers, no reclamation problem, the honest lock-free
//    contender (an unbounded lock-free queue would need hazard pointers;
//    CP.100 says don't unless you have to, and we don't).
//
// Both queues carry the flow::Channel lifecycle contract (PR 8):
//  - close() is the graceful end-of-stream: enqueues are rejected,
//    dequeuers drain what is buffered and then see empty-forever. Contract:
//    close() happens-after the last enqueue a producer cares about.
//  - poison() is the error path: the queue closes and buffered elements are
//    discarded and counted (`dropped()`) by the next dequeue.
// Conservation at quiescence: enqueued == dequeued + dropped (the channel
// suites assert it by external count; these queues keep no hot-path
// counters so the project-9 throughput numbers stay honest).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "support/check.hpp"

namespace parc::conc {

template <typename T>
class MichaelScottQueue {
 public:
  MichaelScottQueue() : head_(new Node()), tail_(head_) {}

  ~MichaelScottQueue() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }

  MichaelScottQueue(const MichaelScottQueue&) = delete;
  MichaelScottQueue& operator=(const MichaelScottQueue&) = delete;

  /// False iff the queue closed (the element is dropped — no consumer is
  /// coming for it). Pre-close callers may ignore the result.
  bool enqueue(T v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    auto* node = new Node(std::move(v));
    std::scoped_lock lock(tail_mutex_);
    if (closed_.load(std::memory_order_acquire)) {
      // Racing close(): reject under the lock so a dequeuer that saw the
      // closed flag cannot miss a late element.
      delete node;
      return false;
    }
    // Release-publish: when the queue is short, head_->next and tail_->next
    // are the same field, and the dequeuer reads it under the *other* lock.
    tail_->next.store(node, std::memory_order_release);
    tail_ = node;
    return true;
  }

  [[nodiscard]] std::optional<T> try_dequeue() {
    std::scoped_lock lock(head_mutex_);
    if (poisoned_.load(std::memory_order_acquire)) {
      discard_locked();
      return std::nullopt;
    }
    Node* first = head_->next.load(std::memory_order_acquire);
    if (first == nullptr) return std::nullopt;
    std::optional<T> out(std::move(*first->value));
    delete head_;
    head_ = first;
    first->value.reset();  // consumed; head_ is now the new dummy
    return out;
  }

  /// Graceful end-of-stream: enqueues rejected, buffered elements drain.
  /// Idempotent; any thread.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Error-path close: buffered elements are discarded and counted as
  /// `dropped()` by the next try_dequeue.
  void poison() noexcept {
    poisoned_.store(true, std::memory_order_release);
    close();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool empty() const {
    std::scoped_lock lock(head_mutex_);
    return head_->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    Node() = default;
    explicit Node(T v) : value(std::make_unique<T>(std::move(v))) {}
    std::unique_ptr<T> value;
    std::atomic<Node*> next{nullptr};  // written under tail lock, read under
                                       // head lock — cross-lock publication
  };

  void discard_locked() {
    // Caller holds head_mutex_. Drop every buffered node, keeping the
    // dummy-head invariant.
    for (;;) {
      Node* first = head_->next.load(std::memory_order_acquire);
      if (first == nullptr) return;
      delete head_;
      head_ = first;
      first->value.reset();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  mutable std::mutex head_mutex_;  // guards head_
  std::mutex tail_mutex_;          // guards tail_ and tail_->next
  Node* head_;
  Node* tail_;
  std::atomic<bool> closed_{false};
  std::atomic<bool> poisoned_{false};
  std::atomic<std::uint64_t> dropped_{0};
};

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity)),
        mask_(capacity_ - 1),
        slots_(capacity_) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  /// Non-blocking; false when full or closed.
  bool try_enqueue(T v) {
    if (closed_.load(std::memory_order_acquire)) return false;
    Slot* slot;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq) -
                        static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    slot->value = std::move(v);
    slot->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Non-blocking; nullopt when empty (buffered elements still drain after
  /// close(); poison() makes them drop instead).
  [[nodiscard]] std::optional<T> try_dequeue() {
    if (poisoned_.load(std::memory_order_acquire)) {
      while (auto v = dequeue_one()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
      }
      return std::nullopt;
    }
    return dequeue_one();
  }

  /// Graceful end-of-stream: enqueues rejected, buffered elements drain.
  /// Idempotent; any thread.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Error-path close: buffered elements are discarded and counted as
  /// `dropped()` by the next try_dequeue.
  void poison() noexcept {
    poisoned_.store(true, std::memory_order_release);
    close();
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool poisoned() const noexcept {
    return poisoned_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> sequence;
    T value;
  };

  std::optional<T> dequeue_one() {
    Slot* slot;
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      slot = &slots_[pos & mask_];
      const std::uint64_t seq = slot->sequence.load(std::memory_order_acquire);
      const auto diff = static_cast<std::int64_t>(seq) -
                        static_cast<std::int64_t>(pos + 1);
      if (diff == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    std::optional<T> out(std::move(slot->value));
    slot->sequence.store(pos + mask_ + 1, std::memory_order_release);
    return out;
  }

  static std::size_t round_up_pow2(std::size_t n) {
    PARC_CHECK(n >= 2);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> poisoned_{false};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace parc::conc
