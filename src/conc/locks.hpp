// Lock variants for the project-9 study: fair ticket lock, unfair
// test-and-set spinlock, and std::mutex — all BasicLockable so they drop
// into std::scoped_lock and the locked collection wrappers.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "support/backoff.hpp"

namespace parc::conc {

/// FIFO-fair ticket spinlock: acquirers are served strictly in arrival
/// order. Fairness costs throughput under contention (every handover wakes
/// exactly one specific waiter).
class TicketLock {
 public:
  void lock() noexcept {
    const std::uint64_t my = next_.fetch_add(1, std::memory_order_relaxed);
    ExponentialBackoff backoff;
    while (serving_.load(std::memory_order_acquire) != my) {
      backoff.pause();
    }
  }

  void unlock() noexcept {
    serving_.fetch_add(1, std::memory_order_release);
  }

  bool try_lock() noexcept {
    std::uint64_t cur = serving_.load(std::memory_order_acquire);
    std::uint64_t expected = cur;
    // Only succeeds when no one is waiting (next == serving).
    return next_.compare_exchange_strong(expected, cur + 1,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

 private:
  alignas(64) std::atomic<std::uint64_t> next_{0};
  alignas(64) std::atomic<std::uint64_t> serving_{0};
};

/// Unfair test-and-test-and-set spinlock: whoever's CAS lands first wins,
/// regardless of arrival order. Fast under low contention; can starve
/// individual threads under high contention.
class SpinLock {
 public:
  void lock() noexcept {
    ExponentialBackoff backoff;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        backoff.pause();
      }
    }
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace parc::conc
