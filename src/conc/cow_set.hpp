// Copy-on-write snapshot set: the read-mostly design point in the project-9
// comparison. Readers take a shared_ptr snapshot with one atomic load and
// iterate lock-free over immutable data (CP.3: immutable data can be shared
// without locks); writers copy the whole set under a mutex and swing the
// pointer. Wins when reads vastly outnumber writes — exactly the
// configuration where coarse locks hurt most.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <set>

namespace parc::conc {

template <typename T, typename Compare = std::less<T>>
class CowSet {
 public:
  using Snapshot = std::shared_ptr<const std::set<T, Compare>>;

  CowSet() : current_(std::make_shared<const std::set<T, Compare>>()) {}

  /// O(1), lock-free: an atomic shared_ptr load.
  [[nodiscard]] Snapshot snapshot() const {
    return std::atomic_load_explicit(&current_, std::memory_order_acquire);
  }

  [[nodiscard]] bool contains(const T& v) const {
    return snapshot()->contains(v);
  }

  [[nodiscard]] std::size_t size() const { return snapshot()->size(); }

  /// Writers serialise on the mutex; each write copies the set (O(n)).
  bool insert(const T& v) {
    std::scoped_lock lock(write_mutex_);
    if (current_->contains(v)) return false;
    auto next = std::make_shared<std::set<T, Compare>>(*current_);
    next->insert(v);
    std::atomic_store_explicit(
        &current_,
        Snapshot(std::move(next)),
        std::memory_order_release);
    return true;
  }

  bool erase(const T& v) {
    std::scoped_lock lock(write_mutex_);
    if (!current_->contains(v)) return false;
    auto next = std::make_shared<std::set<T, Compare>>(*current_);
    next->erase(v);
    std::atomic_store_explicit(
        &current_,
        Snapshot(std::move(next)),
        std::memory_order_release);
    return true;
  }

 private:
  std::mutex write_mutex_;  // serialises writers (current_ swaps)
  Snapshot current_;        // atomically swapped; snapshots immutable
};

}  // namespace parc::conc
