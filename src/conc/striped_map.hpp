// Lock-striped hash map: the java.util.concurrent.ConcurrentHashMap
// analogue for the project-9 comparison. Keys hash to one of S independent
// stripes, each its own mutex + bucket map, so disjoint-stripe operations
// proceed in parallel while the per-stripe code stays as simple as the
// coarse-locked baseline.
//
// StripedLruCache below applies the same striping to a bounded LRU result
// cache (the parc::serve substrate): capacity and recency order are
// per-stripe, so a hot stripe can only evict its own keys and two lookups
// on different stripes never contend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace parc::conc {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t stripes = 16)
      : stripes_(round_up_pow2(stripes)), shards_(stripes_) {}

  void put(const K& k, V v) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    s.map[k] = std::move(v);
  }

  [[nodiscard]] std::optional<V> get(const K& k) const {
    const Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto it = s.map.find(k);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool erase(const K& k) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    return s.map.erase(k) > 0;
  }

  [[nodiscard]] bool contains(const K& k) const {
    const Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    return s.map.contains(k);
  }

  /// Atomic per-key update (compute-if-absent + transform in one section).
  template <typename F>
  V update(const K& k, V initial, F&& transform) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto [it, inserted] = s.map.try_emplace(k, std::move(initial));
    if (!inserted) it->second = transform(it->second);
    return it->second;
  }

  /// Linearizable-per-stripe size: locks every stripe in index order.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::scoped_lock lock(s.mutex);
      n += s.map.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t stripe_count() const noexcept { return stripes_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<K, V, Hash> map;  // guarded by mutex
  };

  static std::size_t round_up_pow2(std::size_t n) {
    PARC_CHECK(n >= 1);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& shard(const K& k) {
    return shards_[Hash{}(k) & (stripes_ - 1)];
  }
  const Shard& shard(const K& k) const {
    return shards_[Hash{}(k) & (stripes_ - 1)];
  }

  std::size_t stripes_;
  std::vector<Shard> shards_;
};

/// Bounded LRU cache, lock-striped like StripedHashMap: keys hash to one of
/// S stripes, each holding its own mutex, hash index, recency list, and an
/// equal share of the total capacity (so eviction pressure is local to the
/// stripe — a skewed key distribution cannot evict a cold stripe's
/// entries). get() refreshes recency; put() inserts/updates and evicts the
/// stripe's least-recently-used entry when over budget. Hit/miss/evict
/// counters are relaxed atomics, summed by stats(); they are exact after a
/// quiescent point, like the scheduler's Stats contract.
///
/// Entries may carry an absolute expiry stamp (`put(k, v, expire_at_s)` on
/// whatever clock the caller measures time — parc::serve uses scheduled
/// arrival time, so expiry is deterministic). `get(k, now_s)` treats an
/// expired entry as a miss, erases it lazily, and counts it (`expired`).
/// The default overloads (`put(k, v)` / `get(k)`) never expire anything,
/// so existing callers are unchanged.
template <typename K, typename V, typename Hash = std::hash<K>>
class StripedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t updates = 0;     ///< put() of a key already present
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;     ///< lookups that found a dead entry
                                   ///< (each also counted as a miss)
    std::size_t size = 0;          ///< entries resident right now
  };

  /// `capacity` is the total entry budget, split evenly (ceil) across
  /// stripes; each stripe holds at most ceil(capacity / stripes) entries.
  explicit StripedLruCache(std::size_t capacity, std::size_t stripes = 16)
      : stripes_(round_up_pow2(stripes)), shards_(stripes_) {
    PARC_CHECK(capacity >= 1);
    per_stripe_cap_ = (capacity + stripes_ - 1) / stripes_;
  }

  /// Look up `k` as of `now_s`; a live hit moves the entry to the stripe's
  /// most-recent slot. An entry whose expiry has passed is erased and
  /// reported as a miss (plus `expired`). The no-clock overload never sees
  /// expiry (now_s = 0 precedes every positive stamp).
  [[nodiscard]] std::optional<V> get(const K& k) { return get(k, 0.0); }

  [[nodiscard]] std::optional<V> get(const K& k, double now_s) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto it = s.index.find(k);
    if (it == s.index.end()) {
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (it->second->expire_s > 0.0 && now_s >= it->second->expire_s) {
      s.order.erase(it->second);
      s.index.erase(it);
      s.expired.fetch_add(1, std::memory_order_relaxed);
      s.misses.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    s.order.splice(s.order.begin(), s.order, it->second);
    s.hits.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Insert or overwrite `k`; either way the entry becomes most-recent.
  /// Evicts the stripe's LRU entry when the stripe is over budget.
  /// `expire_at_s` > 0 makes the entry dead to any get() whose clock has
  /// reached it (TTL = expire_at_s − put-time on the caller's clock);
  /// 0 = never expires.
  void put(const K& k, V v) { put(k, std::move(v), 0.0); }

  void put(const K& k, V v, double expire_at_s) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto it = s.index.find(k);
    if (it != s.index.end()) {
      it->second->value = std::move(v);
      it->second->expire_s = expire_at_s;
      s.order.splice(s.order.begin(), s.order, it->second);
      s.updates.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    s.order.emplace_front(Node{k, std::move(v), expire_at_s});
    s.index.emplace(k, s.order.begin());
    s.insertions.fetch_add(1, std::memory_order_relaxed);
    if (s.order.size() > per_stripe_cap_) {
      s.index.erase(s.order.back().key);
      s.order.pop_back();
      s.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Remove `k` if present (invalidation path).
  bool erase(const K& k) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto it = s.index.find(k);
    if (it == s.index.end()) return false;
    s.order.erase(it->second);
    s.index.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(const K& k) const {
    const Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    return s.index.contains(k);
  }

  /// Linearizable-per-stripe size, like StripedHashMap::size().
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::scoped_lock lock(s.mutex);
      n += s.order.size();
    }
    return n;
  }

  [[nodiscard]] Stats stats() const {
    Stats out;
    for (const auto& s : shards_) {
      out.hits += s.hits.load(std::memory_order_relaxed);
      out.misses += s.misses.load(std::memory_order_relaxed);
      out.insertions += s.insertions.load(std::memory_order_relaxed);
      out.updates += s.updates.load(std::memory_order_relaxed);
      out.evictions += s.evictions.load(std::memory_order_relaxed);
      out.expired += s.expired.load(std::memory_order_relaxed);
    }
    out.size = size();
    return out;
  }

  [[nodiscard]] std::size_t stripe_count() const noexcept { return stripes_; }
  [[nodiscard]] std::size_t stripe_capacity() const noexcept {
    return per_stripe_cap_;
  }
  /// Total entry budget actually enforced (stripe cap × stripes; ≥ the
  /// constructor's capacity because of the ceil split).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return per_stripe_cap_ * stripes_;
  }

 private:
  struct Node {
    K key;
    V value;
    double expire_s = 0.0;  ///< absolute expiry on the caller's clock; 0 = never
  };

  struct Shard {
    mutable std::mutex mutex;
    // Recency list front = most recent; index maps key → list node. Both
    // guarded by mutex.
    std::list<Node> order;
    std::unordered_map<K, typename std::list<Node>::iterator, Hash> index;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> updates{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> expired{0};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    PARC_CHECK(n >= 1);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& shard(const K& k) { return shards_[Hash{}(k) & (stripes_ - 1)]; }
  const Shard& shard(const K& k) const {
    return shards_[Hash{}(k) & (stripes_ - 1)];
  }

  std::size_t stripes_;
  std::size_t per_stripe_cap_ = 0;
  std::vector<Shard> shards_;
};

}  // namespace parc::conc
