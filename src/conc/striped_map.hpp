// Lock-striped hash map: the java.util.concurrent.ConcurrentHashMap
// analogue for the project-9 comparison. Keys hash to one of S independent
// stripes, each its own mutex + bucket map, so disjoint-stripe operations
// proceed in parallel while the per-stripe code stays as simple as the
// coarse-locked baseline.
#pragma once

#include <array>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/check.hpp"

namespace parc::conc {

template <typename K, typename V, typename Hash = std::hash<K>>
class StripedHashMap {
 public:
  explicit StripedHashMap(std::size_t stripes = 16)
      : stripes_(round_up_pow2(stripes)), shards_(stripes_) {}

  void put(const K& k, V v) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    s.map[k] = std::move(v);
  }

  [[nodiscard]] std::optional<V> get(const K& k) const {
    const Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto it = s.map.find(k);
    if (it == s.map.end()) return std::nullopt;
    return it->second;
  }

  bool erase(const K& k) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    return s.map.erase(k) > 0;
  }

  [[nodiscard]] bool contains(const K& k) const {
    const Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    return s.map.contains(k);
  }

  /// Atomic per-key update (compute-if-absent + transform in one section).
  template <typename F>
  V update(const K& k, V initial, F&& transform) {
    Shard& s = shard(k);
    std::scoped_lock lock(s.mutex);
    auto [it, inserted] = s.map.try_emplace(k, std::move(initial));
    if (!inserted) it->second = transform(it->second);
    return it->second;
  }

  /// Linearizable-per-stripe size: locks every stripe in index order.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& s : shards_) {
      std::scoped_lock lock(s.mutex);
      n += s.map.size();
    }
    return n;
  }

  [[nodiscard]] std::size_t stripe_count() const noexcept { return stripes_; }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<K, V, Hash> map;  // guarded by mutex
  };

  static std::size_t round_up_pow2(std::size_t n) {
    PARC_CHECK(n >= 1);
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& shard(const K& k) {
    return shards_[Hash{}(k) & (stripes_ - 1)];
  }
  const Shard& shard(const K& k) const {
    return shards_[Hash{}(k) & (stripes_ - 1)];
  }

  std::size_t stripes_;
  std::vector<Shard> shards_;
};

}  // namespace parc::conc
