// Project 6: task-aware ("task-safe") blocking classes for ParallelTask.
//
// The insight the project teaches: a *thread-safe* class is not necessarily
// a *task-safe* class. java.util.concurrent's blocking queue is perfectly
// thread-safe, yet inside a tasking runtime a blocking take() parks a pool
// worker; with a bounded pool, every worker can end up parked waiting for
// elements that only queued-but-unstarted producer tasks would add —
// deadlock, even though no lock is held.
//
// ThreadSafeBlockingQueue reproduces that hazard faithfully (with an optional
// timeout used by the bench to *detect* the stall instead of hanging).
// TaskSafeQueue waits cooperatively: a blocked consumer donates its thread to
// the pool via help_while(), so the producer tasks it is waiting on can run.
// TaskSafeLatch/TaskSafeBarrier apply the same rule to join points.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "sched/task_graph.hpp"
#include "sched/thread_pool.hpp"
#include "support/check.hpp"

namespace parc::conc {

/// Conventional cv-blocking bounded queue: thread-safe, NOT task-safe.
template <typename T>
class ThreadSafeBlockingQueue {
 public:
  explicit ThreadSafeBlockingQueue(std::size_t capacity) : capacity_(capacity) {
    PARC_CHECK(capacity >= 1);
  }

  /// Blocks while full.
  void put(T v) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return data_.size() < capacity_; });
    data_.push_back(std::move(v));
    not_empty_.notify_one();
  }

  /// Blocks while empty.
  [[nodiscard]] T take() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !data_.empty(); });
    T v = std::move(data_.front());
    data_.pop_front();
    not_full_.notify_one();
    return v;
  }

  /// take() with a deadline; nullopt on timeout. The bench uses this to
  /// observe the deadlock the plain take() would hang on.
  [[nodiscard]] std::optional<T> take_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout, [&] { return !data_.empty(); })) {
      return std::nullopt;
    }
    T v = std::move(data_.front());
    data_.pop_front();
    not_full_.notify_one();
    return v;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return data_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> data_;  // guarded by mutex_
};

/// Task-safe queue: take() waits by helping the pool instead of parking the
/// worker, so producer tasks stuck behind the consumer can run.
///
/// Deliberately *unbounded* — and that asymmetry is the design lesson the
/// project teaches. If put() could block (bounded buffer), a blocked
/// producer's cooperative help might execute the consumer task nested on its
/// own stack; when the consumer then waits for more elements, the producer
/// frame underneath it can never resume — deadlock. With put() nonblocking,
/// helped work can only ever *add* elements, so take()'s wait always makes
/// progress. (This mirrors real tasking runtimes, which forbid blocking a
/// worker on buffer space.)
template <typename T>
class TaskSafeQueue {
 public:
  explicit TaskSafeQueue(sched::WorkStealingPool& pool) : pool_(pool) {}

  /// Never blocks.
  void put(T v) {
    std::scoped_lock lock(mutex_);
    data_.push_back(std::move(v));
  }

  /// Cooperative wait: runs pending pool work while empty. The caller must
  /// guarantee a producer exists (submitted or running), as with any
  /// blocking take.
  [[nodiscard]] T take() {
    for (;;) {
      {
        std::scoped_lock lock(mutex_);
        if (!data_.empty()) {
          T v = std::move(data_.front());
          data_.pop_front();
          return v;
        }
      }
      pool_.help_while([&] {
        std::scoped_lock lock(mutex_);
        return data_.empty();
      });
    }
  }

  [[nodiscard]] std::optional<T> try_take() {
    std::scoped_lock lock(mutex_);
    if (data_.empty()) return std::nullopt;
    T v = std::move(data_.front());
    data_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return data_.size();
  }

 private:
  sched::WorkStealingPool& pool_;
  mutable std::mutex mutex_;
  std::deque<T> data_;  // guarded by mutex_
};

/// Task-safe countdown latch: a thin shell over the shared sched::JoinLatch
/// (project 6's classes ride the same completion core as the runtimes).
class TaskSafeLatch {
 public:
  TaskSafeLatch(sched::WorkStealingPool& pool, std::size_t count)
      : pool_(pool) {
    join_.add(count);
  }

  void count_down() noexcept { join_.done(); }

  [[nodiscard]] bool ready() const noexcept { return join_.idle(); }

  /// Waits by helping the pool: counted-down-by tasks that have not started
  /// yet can run on this thread.
  void wait() { join_.wait(&pool_); }

 private:
  sched::WorkStealingPool& pool_;
  sched::JoinLatch join_;
};

/// Task-safe cyclic barrier: parties arriving from *tasks* help the pool
/// while waiting, so sibling tasks that have not started yet can reach the
/// barrier too (a cv-barrier inside a bounded pool would deadlock whenever
/// parties > workers). Now the shared sched::Barrier with an explicit help
/// pool.
class TaskSafeBarrier {
 public:
  TaskSafeBarrier(sched::WorkStealingPool& pool, std::size_t parties)
      : barrier_(parties, &pool) {}

  void arrive_and_wait() { barrier_.arrive_and_wait(); }

 private:
  sched::Barrier barrier_;
};

}  // namespace parc::conc
