// Coarse-grained locked wrappers around std collections — the baseline the
// project-9 students built with `synchronized`-style locking, parameterised
// on the lock type so fair/unfair/mutex variants are one template away.
// The mutex lives with the data it guards (CP.50).
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

namespace parc::conc {

template <typename T, typename Lock = std::mutex>
class LockedVector {
 public:
  void push_back(T v) {
    std::scoped_lock lock(lock_);
    data_.push_back(std::move(v));
  }

  [[nodiscard]] std::optional<T> at(std::size_t i) const {
    std::scoped_lock lock(lock_);
    if (i >= data_.size()) return std::nullopt;
    return data_[i];
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(lock_);
    return data_.size();
  }

  [[nodiscard]] std::vector<T> snapshot() const {
    std::scoped_lock lock(lock_);
    return data_;
  }

  /// Read-modify-write under the lock (the composed-operation fix the
  /// memory-model project teaches: check-then-act must be one critical
  /// section).
  template <typename F>
  auto with(F&& f) {
    std::scoped_lock lock(lock_);
    return f(data_);
  }

 private:
  mutable Lock lock_;
  std::vector<T> data_;  // guarded by lock_
};

template <typename T, typename Lock = std::mutex>
class LockedSet {
 public:
  bool insert(const T& v) {
    std::scoped_lock lock(lock_);
    return data_.insert(v).second;
  }

  bool erase(const T& v) {
    std::scoped_lock lock(lock_);
    return data_.erase(v) > 0;
  }

  [[nodiscard]] bool contains(const T& v) const {
    std::scoped_lock lock(lock_);
    return data_.contains(v);
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(lock_);
    return data_.size();
  }

  [[nodiscard]] std::set<T> snapshot() const {
    std::scoped_lock lock(lock_);
    return data_;
  }

 private:
  mutable Lock lock_;
  std::set<T> data_;  // guarded by lock_
};

template <typename K, typename V, typename Lock = std::mutex>
class LockedMap {
 public:
  void put(const K& k, V v) {
    std::scoped_lock lock(lock_);
    data_[k] = std::move(v);
  }

  [[nodiscard]] std::optional<V> get(const K& k) const {
    std::scoped_lock lock(lock_);
    auto it = data_.find(k);
    if (it == data_.end()) return std::nullopt;
    return it->second;
  }

  bool erase(const K& k) {
    std::scoped_lock lock(lock_);
    return data_.erase(k) > 0;
  }

  /// Atomic compute-if-absent (the composed op that naive callers get wrong
  /// with separate contains()+put()).
  template <typename F>
  V get_or_compute(const K& k, F&& compute) {
    std::scoped_lock lock(lock_);
    auto it = data_.find(k);
    if (it != data_.end()) return it->second;
    V v = compute();
    data_.emplace(k, v);
    return v;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(lock_);
    return data_.size();
  }

 private:
  mutable Lock lock_;
  std::unordered_map<K, V> data_;  // guarded by lock_
};

template <typename T, typename Lock = std::mutex>
class LockedDeque {
 public:
  void push_back(T v) {
    std::scoped_lock lock(lock_);
    data_.push_back(std::move(v));
  }

  void push_front(T v) {
    std::scoped_lock lock(lock_);
    data_.push_front(std::move(v));
  }

  [[nodiscard]] std::optional<T> pop_front() {
    std::scoped_lock lock(lock_);
    if (data_.empty()) return std::nullopt;
    T v = std::move(data_.front());
    data_.pop_front();
    return v;
  }

  [[nodiscard]] std::optional<T> pop_back() {
    std::scoped_lock lock(lock_);
    if (data_.empty()) return std::nullopt;
    T v = std::move(data_.back());
    data_.pop_back();
    return v;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(lock_);
    return data_.size();
  }

 private:
  mutable Lock lock_;
  std::deque<T> data_;  // guarded by lock_
};

}  // namespace parc::conc
