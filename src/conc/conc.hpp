// Umbrella header for the concurrent-collections study kit (parc::conc).
#pragma once

#include "conc/cow_set.hpp"             // IWYU pragma: export
#include "conc/locked_collections.hpp"  // IWYU pragma: export
#include "conc/locks.hpp"               // IWYU pragma: export
#include "conc/queues.hpp"              // IWYU pragma: export
#include "conc/striped_map.hpp"         // IWYU pragma: export
#include "conc/task_safe.hpp"           // IWYU pragma: export
