#include "memmodel/demos.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "support/check.hpp"
#include "support/clock.hpp"

namespace parc::memmodel {

std::string to_string(Sync s) {
  switch (s) {
    case Sync::kUnsynchronised: return "unsynchronised";
    case Sync::kAtomicRmw: return "atomic-rmw";
    case Sync::kMutex: return "mutex";
    case Sync::kSeqCst: return "seq-cst";
    case Sync::kAcqRel: return "acq-rel";
  }
  return "?";
}

DemoResult lost_update_demo(Sync sync, std::uint64_t increments,
                            unsigned threads) {
  PARC_CHECK(threads >= 2);
  std::atomic<std::uint64_t> counter{0};
  std::mutex mutex;
  std::atomic<unsigned> started{0};

  Stopwatch sw;
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        // Start gate: all threads overlap even with slow thread creation.
        started.fetch_add(1, std::memory_order_acq_rel);
        while (started.load(std::memory_order_acquire) < threads) {
          std::this_thread::yield();
        }
        for (std::uint64_t i = 0; i < increments; ++i) {
          switch (sync) {
            case Sync::kUnsynchronised: {
              // The bug in slow motion: load, (maybe lose the CPU), store.
              const std::uint64_t v =
                  counter.load(std::memory_order_relaxed);
              if ((i & 0x3F) == 0) std::this_thread::yield();
              counter.store(v + 1, std::memory_order_relaxed);
              break;
            }
            case Sync::kAtomicRmw:
              counter.fetch_add(1, std::memory_order_relaxed);
              break;
            case Sync::kMutex: {
              std::scoped_lock lock(mutex);
              counter.store(counter.load(std::memory_order_relaxed) + 1,
                            std::memory_order_relaxed);
              break;
            }
            case Sync::kSeqCst:
              counter.fetch_add(1, std::memory_order_seq_cst);
              break;
            case Sync::kAcqRel:
              counter.fetch_add(1, std::memory_order_acq_rel);
              break;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  DemoResult r;
  r.trials = static_cast<std::uint64_t>(threads) * increments;
  const std::uint64_t final_value = counter.load();
  r.anomalies = r.trials - final_value;  // lost updates
  r.ns_per_op = sw.elapsed_ns() / static_cast<double>(r.trials);
  return r;
}

DemoResult store_buffer_litmus(Sync sync, std::uint64_t trials) {
  const auto order = sync == Sync::kSeqCst ? std::memory_order_seq_cst
                     : sync == Sync::kAcqRel
                         ? std::memory_order_acq_rel
                         : std::memory_order_relaxed;
  const auto store_order =
      order == std::memory_order_acq_rel ? std::memory_order_release : order;
  const auto load_order =
      order == std::memory_order_acq_rel ? std::memory_order_acquire : order;

  std::atomic<int> x{0}, y{0};
  std::atomic<int> r1{0}, r2{0};
  // Sense-reversing micro-barrier so both threads start each trial together.
  std::atomic<std::uint64_t> round{0};
  std::atomic<int> arrived{0};
  std::atomic<bool> stop{false};
  std::uint64_t anomalies = 0;

  auto sync_point = [&](std::uint64_t expected_round) {
    if (arrived.fetch_add(1, std::memory_order_acq_rel) == 1) {
      arrived.store(0, std::memory_order_relaxed);
      round.fetch_add(1, std::memory_order_release);
    } else {
      // Spin briefly, then yield: on a single-core host the partner can
      // only make progress when we give up the quantum.
      std::size_t spins = 0;
      while (round.load(std::memory_order_acquire) == expected_round) {
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  };

  Stopwatch sw;
  std::thread partner([&] {
    std::uint64_t my_round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      sync_point(my_round);
      ++my_round;
      y.store(1, store_order);
      r2.store(x.load(load_order), std::memory_order_relaxed);
      sync_point(my_round);
      ++my_round;
    }
  });

  std::uint64_t my_round = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    x.store(0, std::memory_order_relaxed);
    y.store(0, std::memory_order_relaxed);
    sync_point(my_round);
    ++my_round;
    x.store(1, store_order);
    r1.store(y.load(load_order), std::memory_order_relaxed);
    sync_point(my_round);
    ++my_round;
    if (r1.load(std::memory_order_relaxed) == 0 &&
        r2.load(std::memory_order_relaxed) == 0) {
      ++anomalies;
    }
  }
  stop.store(true, std::memory_order_release);
  // Release the partner from its current sync point.
  round.fetch_add(4, std::memory_order_release);
  partner.join();

  DemoResult r;
  r.trials = trials;
  r.anomalies = anomalies;
  r.ns_per_op = sw.elapsed_ns() / static_cast<double>(trials);
  return r;
}

DemoResult unsafe_publication_demo(Sync sync, std::uint64_t trials) {
  const auto store_order = sync == Sync::kSeqCst ? std::memory_order_seq_cst
                           : sync == Sync::kAcqRel ? std::memory_order_release
                                                   : std::memory_order_relaxed;
  const auto load_order = sync == Sync::kSeqCst ? std::memory_order_seq_cst
                          : sync == Sync::kAcqRel ? std::memory_order_acquire
                                                  : std::memory_order_relaxed;

  struct Payload {
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
  };
  Payload payload;
  std::atomic<bool> ready{false};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> round{0};
  std::atomic<std::uint64_t> torn{0};

  Stopwatch sw;
  std::thread reader([&] {
    std::uint64_t seen = 0;
    for (;;) {
      std::size_t spins = 0;
      while (!ready.load(load_order)) {
        if (stop.load(std::memory_order_acquire)) return;
        if (++spins > 128) {
          std::this_thread::yield();
          spins = 0;
        }
      }
      // Payload reads are relaxed: any ordering must come from the flag.
      const std::uint64_t a = payload.a.load(std::memory_order_relaxed);
      const std::uint64_t b = payload.b.load(std::memory_order_relaxed);
      if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
      ready.store(false, std::memory_order_relaxed);
      ++seen;
      round.store(seen, std::memory_order_release);
    }
  });

  for (std::uint64_t t = 1; t <= trials; ++t) {
    // The two payload halves are written unequal first, equal last, to
    // widen the torn-read window under reordering.
    payload.a.store(t, std::memory_order_relaxed);
    payload.b.store(t, std::memory_order_relaxed);
    ready.store(true, store_order);
    // Wait for the reader to consume this round.
    std::size_t spins = 0;
    while (round.load(std::memory_order_acquire) != t) {
      if (++spins > 128) {
        std::this_thread::yield();
        spins = 0;
      }
    }
  }
  stop.store(true, std::memory_order_release);
  reader.join();

  DemoResult r;
  r.trials = trials;
  r.anomalies = torn.load();
  r.ns_per_op = sw.elapsed_ns() / static_cast<double>(trials);
  return r;
}

DemoResult check_then_act_demo(Sync sync, std::uint64_t slots,
                               unsigned threads) {
  PARC_CHECK(threads >= 2);
  PARC_CHECK(slots >= 1);
  // claimed[k] holds the claiming thread id + 1 (0 = free); over_claimed
  // counts claims that landed on an already-claimed slot.
  std::vector<std::atomic<std::uint32_t>> claimed(slots);
  for (auto& c : claimed) c.store(0);
  std::atomic<std::uint64_t> double_claims{0};
  std::mutex mutex;
  std::atomic<unsigned> started{0};

  Stopwatch sw;
  {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        started.fetch_add(1, std::memory_order_acq_rel);
        while (started.load(std::memory_order_acquire) < threads) {
          std::this_thread::yield();
        }
        for (std::uint64_t k = 0; k < slots; ++k) {
          switch (sync) {
            case Sync::kUnsynchronised: {
              // if (!claimed) { ...window... claimed = me }
              if (claimed[k].load(std::memory_order_relaxed) == 0) {
                if ((k & 0x1F) == 0) std::this_thread::yield();
                const std::uint32_t prev = claimed[k].exchange(
                    t + 1, std::memory_order_relaxed);
                if (prev != 0) double_claims.fetch_add(1);
              }
              break;
            }
            case Sync::kAtomicRmw: {
              std::uint32_t expected = 0;
              claimed[k].compare_exchange_strong(expected, t + 1,
                                                 std::memory_order_relaxed);
              break;
            }
            case Sync::kMutex: {
              std::scoped_lock lock(mutex);
              if (claimed[k].load(std::memory_order_relaxed) == 0) {
                claimed[k].store(t + 1, std::memory_order_relaxed);
              }
              break;
            }
            case Sync::kSeqCst: {
              std::uint32_t expected = 0;
              claimed[k].compare_exchange_strong(expected, t + 1,
                                                 std::memory_order_seq_cst);
              break;
            }
            case Sync::kAcqRel: {
              std::uint32_t expected = 0;
              claimed[k].compare_exchange_strong(expected, t + 1,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire);
              break;
            }
          }
        }
      });
    }
    for (auto& w : workers) w.join();
  }

  DemoResult r;
  r.trials = slots * threads;
  r.anomalies = double_claims.load();
  r.ns_per_op = sw.elapsed_ns() / static_cast<double>(r.trials);
  return r;
}

DemoResult double_checked_locking_demo(Sync sync, std::uint64_t trials,
                                       unsigned threads) {
  PARC_CHECK(threads >= 2);
  struct Lazy {
    std::atomic<std::uint64_t> payload{0};
  };

  std::atomic<std::uint64_t> init_count{0};
  std::atomic<std::uint64_t> torn_reads{0};

  Stopwatch sw;
  for (std::uint64_t t = 0; t < trials; ++t) {
    Lazy object;
    std::atomic<Lazy*> instance{nullptr};
    std::mutex init_mutex;
    std::once_flag once;
    std::atomic<unsigned> started{0};
    std::atomic<std::uint64_t> local_inits{0};

    auto get_instance = [&]() -> Lazy* {
      switch (sync) {
        case Sync::kUnsynchronised: {
          // The broken classic: unlocked fast path with relaxed ordering —
          // a reader can see the pointer before the payload write.
          Lazy* p = instance.load(std::memory_order_relaxed);
          if (p == nullptr) {
            std::scoped_lock lock(init_mutex);
            p = instance.load(std::memory_order_relaxed);
            if (p == nullptr) {
              object.payload.store(0xFEEDFACE, std::memory_order_relaxed);
              local_inits.fetch_add(1);
              instance.store(&object, std::memory_order_relaxed);
              p = &object;
            }
          }
          return p;
        }
        case Sync::kAcqRel: {
          // Correct DCL: release publish, acquire observe (CP.111).
          Lazy* p = instance.load(std::memory_order_acquire);
          if (p == nullptr) {
            std::scoped_lock lock(init_mutex);
            p = instance.load(std::memory_order_acquire);
            if (p == nullptr) {
              object.payload.store(0xFEEDFACE, std::memory_order_relaxed);
              local_inits.fetch_add(1);
              instance.store(&object, std::memory_order_release);
              p = &object;
            }
          }
          return p;
        }
        case Sync::kSeqCst: {
          Lazy* p = instance.load(std::memory_order_seq_cst);
          if (p == nullptr) {
            std::scoped_lock lock(init_mutex);
            p = instance.load(std::memory_order_seq_cst);
            if (p == nullptr) {
              object.payload.store(0xFEEDFACE, std::memory_order_relaxed);
              local_inits.fetch_add(1);
              instance.store(&object, std::memory_order_seq_cst);
              p = &object;
            }
          }
          return p;
        }
        case Sync::kMutex: {
          // No double-check at all: every access takes the lock.
          std::scoped_lock lock(init_mutex);
          Lazy* p = instance.load(std::memory_order_relaxed);
          if (p == nullptr) {
            object.payload.store(0xFEEDFACE, std::memory_order_relaxed);
            local_inits.fetch_add(1);
            instance.store(&object, std::memory_order_relaxed);
            p = &object;
          }
          return p;
        }
        case Sync::kAtomicRmw: {
          // The modern answer: std::call_once (CP.110's recommendation).
          std::call_once(once, [&] {
            object.payload.store(0xFEEDFACE, std::memory_order_relaxed);
            local_inits.fetch_add(1);
            instance.store(&object, std::memory_order_release);
          });
          return instance.load(std::memory_order_acquire);
        }
      }
      return nullptr;
    };

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        started.fetch_add(1, std::memory_order_acq_rel);
        while (started.load(std::memory_order_acquire) < threads) {
        }
        Lazy* p = get_instance();
        if (p->payload.load(std::memory_order_relaxed) != 0xFEEDFACE) {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& w : workers) w.join();
    if (local_inits.load() != 1) init_count.fetch_add(1);
  }

  DemoResult r;
  r.trials = trials;
  r.anomalies = torn_reads.load() + init_count.load();
  r.ns_per_op = sw.elapsed_ns() / static_cast<double>(trials);
  return r;
}

}  // namespace parc::memmodel
