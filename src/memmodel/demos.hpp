// Project 8: memory-model demonstrators — "code snippets that demonstrate
// how typical parallelisation problems can occur ... and how such problems
// can be avoided, outlining what options are available and their pros/cons".
//
// Each demo is a small racy protocol executed many times, counting how often
// the anomaly manifests, under a selectable fix:
//
//   kUnsynchronised — the broken version (expressed with relaxed atomics and
//       split load/store so the *race condition* is real but the program has
//       no C++ UB; a data race on a plain int would make any measurement
//       meaningless).
//   kAtomicRmw      — fix with one atomic read-modify-write
//   kMutex          — fix with a mutex around the whole operation
//   kSeqCst         — fix with sequentially-consistent ordering (litmus)
//   kAcqRel         — fix with release/acquire publication
//
// Hardware honesty: the lost-update and check-then-act anomalies fire on any
// machine, including a single-core host (preemption splits the RMW). The
// store-buffer litmus and unsafe-publication anomalies require truly
// concurrent cores / weaker hardware; on a 1-core container both the broken
// and fixed variants report zero — the table still shows the *cost* of each
// fix, and EXPERIMENTS.md flags the limitation.
#pragma once

#include <cstdint>
#include <string>

namespace parc::memmodel {

enum class Sync : std::uint8_t {
  kUnsynchronised,
  kAtomicRmw,
  kMutex,
  kSeqCst,
  kAcqRel,
};

[[nodiscard]] std::string to_string(Sync s);

struct DemoResult {
  std::uint64_t trials = 0;
  std::uint64_t anomalies = 0;
  double ns_per_op = 0.0;

  [[nodiscard]] double anomaly_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(anomalies) /
                             static_cast<double>(trials);
  }
};

/// Lost update: `threads` threads each add 1 to a shared counter
/// `increments` times with a split load→store. Anomalies = missing counts.
/// Fixes: kAtomicRmw (fetch_add), kMutex. kUnsynchronised loses updates on
/// every machine.
[[nodiscard]] DemoResult lost_update_demo(Sync sync, std::uint64_t increments,
                                          unsigned threads);

/// Store-buffer litmus (Dekker core): T1: x=1; r1=y.  T2: y=1; r2=x.
/// Anomaly = r1==0 && r2==0, impossible under sequential consistency,
/// allowed (and observed on real multicore x86) with relaxed ordering.
/// Fixes: kSeqCst. kAcqRel does NOT forbid it — running both shows why.
[[nodiscard]] DemoResult store_buffer_litmus(Sync sync, std::uint64_t trials);

/// Message passing / unsafe publication: writer fills a payload then sets a
/// ready flag; reader polls the flag then reads the payload. Anomaly =
/// flag seen but payload stale. Fixes: kAcqRel, kSeqCst.
[[nodiscard]] DemoResult unsafe_publication_demo(Sync sync,
                                                 std::uint64_t trials);

/// Check-then-act: `threads` threads do `if (!claimed[k]) claimed[k] = me`
/// over shared slots. Anomaly = a slot claimed by more than one thread
/// (both passed the check before either acted). Fixes: kMutex (compose the
/// check and the act), kAtomicRmw (CAS).
[[nodiscard]] DemoResult check_then_act_demo(Sync sync, std::uint64_t slots,
                                             unsigned threads);

/// Double-checked locking (CP.110): `threads` threads lazily initialise a
/// shared object through the classic broken DCL (relaxed published pointer)
/// or a fix. Anomalies = initialisations observed more than once OR a
/// reader seeing the pointer before the payload. Fixes: kAcqRel (correct
/// DCL), kMutex (plain lock), kSeqCst. kAtomicRmw maps to std::call_once.
[[nodiscard]] DemoResult double_checked_locking_demo(Sync sync,
                                                     std::uint64_t trials,
                                                     unsigned threads);

}  // namespace parc::memmodel
