// Log-bucketed latency histogram (the serving-stack companion to Summary).
//
// Summary keeps every sample — exact percentiles, O(n) memory, fine for a
// few thousand bench iterations. A serving run records *millions* of
// latencies, so LogHistogram trades a bounded relative error for O(1)
// memory and O(1) add: buckets grow geometrically (HdrHistogram-style), a
// sample lands in the bucket whose range covers it, and percentiles are
// read back as the geometric midpoint of the covering bucket. With the
// default 32 buckets per decade the quoted value is within ~3.7% of the
// true sample, which is far below the run-to-run noise of any latency
// measurement this repo makes.
//
// Two histograms with the same configuration merge by bucket-wise addition
// — the property that lets each pool shard record its own histogram with no
// cross-shard cache traffic and the reporter combine them at the end.
//
// Not thread-safe: one writer per instance (per-shard / per-thread), merge
// after quiescing. Plain value type, no hidden state (CP.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parc {

class LogHistogram {
 public:
  /// Buckets cover [min_value, max_value) in geometric steps of
  /// 10^(1/buckets_per_decade); samples below/above clamp into dedicated
  /// underflow/overflow buckets so counts are never lost (same contract as
  /// the linear Histogram). Unit-agnostic — callers pick seconds, ms, ns.
  explicit LogHistogram(double min_value = 1e-6, double max_value = 1e3,
                        std::size_t buckets_per_decade = 32);

  void add(double x) noexcept;
  void add_n(double x, std::uint64_t n) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] bool empty() const noexcept { return total_ == 0; }
  /// Exact extremes of everything added (not bucket-quantised).
  [[nodiscard]] double min_seen() const noexcept { return min_seen_; }
  [[nodiscard]] double max_seen() const noexcept { return max_seen_; }
  /// Exact sum of everything added, so mean() has no bucket error.
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ > 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Percentile estimate, p in [0, 100]: the geometric midpoint of the
  /// bucket containing the p-th sample (exact min/max for the under/
  /// overflow buckets' outer edges). Relative error bounded by half a
  /// bucket width: 10^(1/(2*buckets_per_decade)) - 1.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }
  [[nodiscard]] double p999() const { return percentile(99.9); }

  /// Bucket-wise accumulate. Configurations must match exactly (checked):
  /// merging histograms with different ranges would silently re-bucket.
  void merge(const LogHistogram& other);

  /// True when `other` was constructed with identical parameters (and can
  /// therefore be merged into this one).
  [[nodiscard]] bool same_layout(const LogHistogram& other) const noexcept;

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return counts_[i];
  }
  /// Lower/upper value bound of bucket i (underflow: [0, min_value)).
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;

  /// "p50 <v>  p99 <v>  p999 <v>  max <v>  (n=<count>)" one-liner for run
  /// logs; `unit` is appended to each value.
  [[nodiscard]] std::string describe(const std::string& unit = "") const;

  /// ASCII bar chart over non-empty buckets (log-scaled value axis).
  [[nodiscard]] std::string render(int width = 40) const;

  void reset() noexcept;

 private:
  [[nodiscard]] std::size_t bucket_index(double x) const noexcept;

  double min_value_;
  double max_value_;
  std::size_t buckets_per_decade_;
  double inv_log_step_;  ///< 1 / log10(step), cached for bucket_index
  std::vector<std::uint64_t> counts_;  ///< [underflow, b0..bn-1, overflow]
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_seen_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace parc
