// Small string formatting helpers shared by tables, logs and reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace parc {

/// Fixed-precision double ("12.345"); trims a trailing ".000" only when
/// precision is 0.
[[nodiscard]] std::string format_double(double value, int precision);

/// Thousands-separated integer ("1,234,567").
[[nodiscard]] std::string format_count(std::uint64_t value);

/// Human bytes ("1.5 MiB").
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Human duration from nanoseconds ("1.20 ms").
[[nodiscard]] std::string format_duration_ns(double ns);

/// Left/right padding to a field width.
[[nodiscard]] std::string pad_left(std::string_view s, std::size_t width);
[[nodiscard]] std::string pad_right(std::string_view s, std::size_t width);

/// Split on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view delim);

/// ASCII lowercase copy.
[[nodiscard]] std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Repeat a string n times.
[[nodiscard]] std::string repeat(std::string_view s, std::size_t n);

}  // namespace parc
