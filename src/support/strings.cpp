#include "support/strings.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace parc {

std::string format_double(double value, int precision) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", precision, value);
  return std::string(buf.data());
}

std::string format_count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int since_sep = static_cast<int>(digits.size() % 3);
  if (since_sep == 0) since_sep = 3;
  for (char c : digits) {
    if (since_sep == 0) {
      out.push_back(',');
      since_sep = 3;
    }
    out.push_back(c);
    --since_sep;
  }
  return out;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  return format_double(v, unit == 0 ? 0 : 1) + " " + kUnits[unit];
}

std::string format_duration_ns(double ns) {
  if (ns < 1e3) return format_double(ns, 0) + " ns";
  if (ns < 1e6) return format_double(ns / 1e3, 2) + " us";
  if (ns < 1e9) return format_double(ns / 1e6, 2) + " ms";
  return format_double(ns / 1e9, 2) + " s";
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << delim;
    os << parts[i];
  }
  return os.str();
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out += s;
  return out;
}

}  // namespace parc
