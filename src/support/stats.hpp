// Descriptive statistics for benchmark and simulation results.
//
// Summary collects samples and reports the moments/percentiles the bench
// tables print; Histogram buckets latencies for the responsiveness probes.
// Everything is plain value types — no hidden global state (CP.2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace parc {

/// Order statistics + moments over a sample set.
class Summary {
 public:
  Summary() = default;

  void add(double x);
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const;

  /// "mean ± ci [min, p50, p99, max]" — the standard row suffix in tables.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;  // lazily rebuilt cache
  mutable bool sorted_valid_ = false;
  double sum_ = 0.0;
};

/// Fixed-bucket linear histogram over [lo, hi); out-of-range samples clamp
/// into the first/last bucket so counts are never lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const;
  [[nodiscard]] double bucket_low(std::size_t i) const;
  [[nodiscard]] double bucket_high(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// ASCII bar rendering, one line per non-empty bucket.
  [[nodiscard]] std::string render(int width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Online mean/variance (Welford) for hot paths that cannot afford to keep
/// every sample.
class OnlineStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Pearson correlation of two equal-length series (used by the course
/// module to sanity-check grade components).
[[nodiscard]] double pearson_correlation(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Simple least-squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

}  // namespace parc
