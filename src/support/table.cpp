#include "support/table.hpp"

#include <algorithm>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace parc {

Table::Table(std::string title) : title_(std::move(title)) {}

Table& Table::columns(std::initializer_list<std::string> names) {
  return columns(std::vector<std::string>(names));
}

Table& Table::columns(std::vector<std::string> names) {
  PARC_CHECK_MSG(rows_.empty(), "set columns before adding rows");
  columns_ = std::move(names);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  PARC_CHECK_MSG(cells.size() == columns_.size(),
                 "row width != column count");
  rows_.push_back(std::move(cells));
  return *this;
}

Table::RowBuilder& Table::RowBuilder::cell(const std::string& s) {
  cells_.push_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(const char* s) {
  cells_.emplace_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(double v, int precision) {
  cells_.push_back(format_double(v, precision));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::uint64_t v) {
  cells_.push_back(format_count(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::cell(int v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

Table::RowBuilder::~RowBuilder() { table_.row(std::move(cells_)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 3;
  os << "\n== " << title_ << " ==\n";
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << pad_right(columns_[c], widths[c]) << (c + 1 < columns_.size() ? " | " : "");
  }
  os << "\n" << repeat("-", total) << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << pad_right(r[c], widths[c]) << (c + 1 < r.size() ? " | " : "");
    }
    os << "\n";
  }
  os.flush();
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << csv_escape(columns_[c]) << (c + 1 < columns_.size() ? "," : "");
  }
  os << "\n";
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << csv_escape(r[c]) << (c + 1 < r.size() ? "," : "");
    }
    os << "\n";
  }
}

}  // namespace parc
