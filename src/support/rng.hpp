// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (workload generators, the
// cohort simulator, latency models) draws from these generators so that all
// regenerated tables are byte-identical across runs. SplitMix64 seeds
// Xoshiro256** per Blackman & Vigna's recommendation; Xoshiro256** is the
// workhorse generator. Both satisfy std::uniform_random_bit_generator so
// they compose with <random> distributions, but we also provide branch-light
// helpers (uniform, normal, exponential, zipf) whose outputs are stable
// across standard-library implementations.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace parc {

/// SplitMix64: tiny, fast, passes BigCrush when used for seeding.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: general-purpose 64-bit generator (Blackman & Vigna 2018).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Equivalent to 2^128 next() calls; used to derive independent streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (word & (std::uint64_t{1} << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        next();
      }
    }
    state_ = acc;
  }

  /// A generator 2^128 steps ahead; independent stream for a worker/shard.
  [[nodiscard]] constexpr Xoshiro256 split() noexcept {
    Xoshiro256 child = *this;
    jump();
    return child;
  }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Deterministic convenience wrapper: one seeded stream + shaped draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  std::uint64_t bits() noexcept { return gen_.next(); }

  /// Uniform double in [0, 1): 53 mantissa bits, stable across platforms.
  double uniform() noexcept {
    return static_cast<double>(gen_.next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    PARC_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Lemire-style rejection-free bound via 128-bit
  /// multiply; bias < 2^-64 which is acceptable for workload generation.
  std::uint64_t below(std::uint64_t n) noexcept {
    PARC_DCHECK(n > 0);
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(gen_.next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    PARC_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean (inverse-CDF).
  double exponential(double mean) noexcept {
    PARC_DCHECK(mean > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Log-normal parameterised by the mean/sigma of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    PARC_DCHECK(xm > 0.0 && alpha > 0.0);
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Zipf-like rank in [0, n) with exponent s > 0: rank k is drawn with
  /// probability ∝ ∫_{k+1}^{k+2} x^{-s} dx (continuous inverse transform,
  /// one uniform draw, no rejection). For workload modelling this matches
  /// discrete Zipf to within a few percent at every rank while being exact,
  /// fast and branch-light.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept {
    PARC_DCHECK(n > 0);
    PARC_DCHECK(s > 0.0);
    if (n == 1) return 0;
    const double hi = static_cast<double>(n) + 1.0;
    const double u = uniform();
    double x;
    if (s == 1.0) {
      // F(x) ∝ log(x) on [1, n+1)
      x = std::exp(u * std::log(hi));
    } else {
      // F(x) ∝ (x^(1-s) - 1) on [1, n+1)
      const double t = std::pow(hi, 1.0 - s);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - s));
    }
    auto k = static_cast<std::uint64_t>(x - 1.0);
    return k >= n ? n - 1 : k;  // guard the x == n+1 boundary
  }

  /// Split off an independent stream (for per-worker determinism).
  [[nodiscard]] Rng split() noexcept {
    Rng child(0);
    child.gen_ = gen_.split();
    return child;
  }

  Xoshiro256& engine() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
};

/// Fisher–Yates shuffle with a parc::Rng (std::shuffle's output is
/// implementation-defined; this one is stable).
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Rng& rng) {
  const auto n = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    using std::swap;
    swap(first[static_cast<std::ptrdiff_t>(i - 1)],
         first[static_cast<std::ptrdiff_t>(j)]);
  }
}

}  // namespace parc
