#include "support/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/check.hpp"

namespace parc {

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t buckets_per_decade)
    : min_value_(min_value),
      max_value_(max_value),
      buckets_per_decade_(buckets_per_decade) {
  PARC_CHECK(min_value_ > 0.0);
  PARC_CHECK(max_value_ > min_value_);
  PARC_CHECK(buckets_per_decade_ >= 1);
  const double decades = std::log10(max_value_ / min_value_);
  const auto regular = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(buckets_per_decade_) - 1e-9));
  inv_log_step_ = static_cast<double>(buckets_per_decade_);  // 1/log10(step)
  counts_.assign(regular + 2, 0);  // + underflow and overflow
}

std::size_t LogHistogram::bucket_index(double x) const noexcept {
  if (!(x >= min_value_)) return 0;  // underflow (also NaN, negatives)
  if (x >= max_value_) return counts_.size() - 1;  // overflow
  const double pos = std::log10(x / min_value_) * inv_log_step_;
  auto i = static_cast<std::size_t>(pos);
  // log10 rounding at exact bucket edges can land one off; clamp into the
  // regular range [1, size-2] after the +1 shift for the underflow slot.
  if (i > counts_.size() - 3) i = counts_.size() - 3;
  return i + 1;
}

void LogHistogram::add(double x) noexcept { add_n(x, 1); }

void LogHistogram::add_n(double x, std::uint64_t n) noexcept {
  if (n == 0) return;
  counts_[bucket_index(x)] += n;
  if (total_ == 0) {
    min_seen_ = x;
    max_seen_ = x;
  } else {
    min_seen_ = std::min(min_seen_, x);
    max_seen_ = std::max(max_seen_, x);
  }
  total_ += n;
  sum_ += x * static_cast<double>(n);
}

double LogHistogram::bucket_low(std::size_t i) const {
  PARC_CHECK(i < counts_.size());
  if (i == 0) return 0.0;
  return min_value_ *
         std::pow(10.0, static_cast<double>(i - 1) /
                            static_cast<double>(buckets_per_decade_));
}

double LogHistogram::bucket_high(std::size_t i) const {
  PARC_CHECK(i < counts_.size());
  if (i == 0) return min_value_;
  if (i == counts_.size() - 1) return max_value_ * 10.0;  // nominal edge
  return min_value_ *
         std::pow(10.0, static_cast<double>(i) /
                            static_cast<double>(buckets_per_decade_));
}

double LogHistogram::percentile(double p) const {
  PARC_CHECK(p >= 0.0 && p <= 100.0);
  if (total_ == 0) return 0.0;
  // Rank of the p-th sample, 1-based, nearest-rank (ceil) like HdrHistogram.
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(p / 100.0 * static_cast<double>(total_) - 1e-9)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // Outermost buckets report the exact observed extreme instead of a
      // bucket midpoint (the clamped buckets have no meaningful width).
      if (i == 0) return min_seen_;
      if (i == counts_.size() - 1) return max_seen_;
      const double lo = bucket_low(i);
      const double hi = bucket_high(i);
      return std::sqrt(lo * hi);  // geometric midpoint
    }
  }
  return max_seen_;  // unreachable (seen == total_ by the last bucket)
}

bool LogHistogram::same_layout(const LogHistogram& other) const noexcept {
  return min_value_ == other.min_value_ && max_value_ == other.max_value_ &&
         buckets_per_decade_ == other.buckets_per_decade_;
}

void LogHistogram::merge(const LogHistogram& other) {
  PARC_CHECK_MSG(same_layout(other),
                 "LogHistogram::merge requires identical bucket layouts");
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (total_ == 0) {
    min_seen_ = other.min_seen_;
    max_seen_ = other.max_seen_;
  } else {
    min_seen_ = std::min(min_seen_, other.min_seen_);
    max_seen_ = std::max(max_seen_, other.max_seen_);
  }
  total_ += other.total_;
  sum_ += other.sum_;
}

std::string LogHistogram::describe(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "p50 %.3g%s  p99 %.3g%s  p999 %.3g%s  max %.3g%s  (n=%llu)",
                p50(), unit.c_str(), p99(), unit.c_str(), p999(),
                unit.c_str(), max_seen(), unit.c_str(),
                static_cast<unsigned long long>(total_));
  return buf;
}

std::string LogHistogram::render(int width) const {
  std::string out;
  if (total_ == 0) return "(empty)\n";
  std::uint64_t peak = 0;
  for (const auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * width);
    char head[96];
    std::snprintf(head, sizeof head, "[%9.3g, %9.3g) %10llu |",
                  bucket_low(i), bucket_high(i),
                  static_cast<unsigned long long>(counts_[i]));
    out += head;
    out.append(static_cast<std::size_t>(std::max(bar, 1)), '#');
    out += '\n';
  }
  return out;
}

void LogHistogram::reset() noexcept {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  min_seen_ = 0.0;
  max_seen_ = 0.0;
}

}  // namespace parc
