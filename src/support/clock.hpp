// Real and virtual time sources.
//
// Stopwatch wraps steady_clock for wall measurements. VirtualClock is the
// discrete-event time source used by the network simulator and the machine
// model: time only advances when a component explicitly schedules it, which
// is what makes those experiments deterministic on any host.
#pragma once

#include <chrono>
#include <cstdint>
#include <queue>
#include <vector>

#include "support/check.hpp"

namespace parc {

/// Wall-clock stopwatch (steady_clock, ns resolution).
class Stopwatch {
 public:
  Stopwatch() : start_(Now()) {}

  void reset() { start_ = Now(); }

  [[nodiscard]] double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(Now() - start_).count();
  }
  [[nodiscard]] double elapsed_us() const { return elapsed_ns() / 1e3; }
  [[nodiscard]] double elapsed_ms() const { return elapsed_ns() / 1e6; }
  [[nodiscard]] double elapsed_s() const { return elapsed_ns() / 1e9; }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() { return Clock::now(); }
  Clock::time_point start_;
};

/// Discrete-event virtual clock. Components schedule (time, key) wake-ups
/// and the owner advances time to the earliest one. Single-threaded by
/// design: the simulators that use it run their event loop on one thread and
/// model parallelism explicitly.
class VirtualClock {
 public:
  using Time = double;  // seconds in simulated time

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule a wake-up; keys identify the waiter to the caller.
  void schedule(Time at, std::uint64_t key) {
    PARC_CHECK_MSG(at >= now_, "cannot schedule in the simulated past");
    queue_.push(Event{at, seq_++, key});
  }

  [[nodiscard]] bool has_pending() const noexcept { return !queue_.empty(); }

  /// Pop the earliest event, advancing now(). Ties break in schedule order
  /// so runs are reproducible.
  std::uint64_t advance() {
    PARC_CHECK(!queue_.empty());
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    return ev.key;
  }

  /// Earliest pending time (requires has_pending()).
  [[nodiscard]] Time next_time() const {
    PARC_CHECK(!queue_.empty());
    return queue_.top().at;
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::uint64_t key;
    bool operator>(const Event& o) const noexcept {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
};

/// Busy-spin for a given number of iterations of a data-dependent loop the
/// optimiser cannot elide. Used by workload generators to create CPU work
/// with a controllable cost.
std::uint64_t spin_work(std::uint64_t iterations) noexcept;

}  // namespace parc
