// Lightweight runtime contract checks.
//
// PARC_CHECK is always on (cheap invariants on API boundaries); PARC_DCHECK
// compiles away in release builds and is used on hot paths. Violations
// terminate: a broken invariant in a concurrent runtime is not recoverable,
// and throwing across scheduler threads would mask the original fault.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace parc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "parc: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg ? ": " : "", msg ? msg : "");
  std::abort();
}

}  // namespace parc

#define PARC_CHECK(expr)                                              \
  do {                                                                \
    if (!(expr)) ::parc::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PARC_CHECK_MSG(expr, msg)                                  \
  do {                                                             \
    if (!(expr)) ::parc::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define PARC_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define PARC_DCHECK(expr) PARC_CHECK(expr)
#endif
