#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"
#include "support/strings.hpp"

namespace parc {

void Summary::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void Summary::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

void Summary::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::min() const {
  PARC_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.front();
}

double Summary::max() const {
  PARC_CHECK(!samples_.empty());
  ensure_sorted();
  return sorted_.back();
}

double Summary::mean() const {
  PARC_CHECK(!samples_.empty());
  return sum_ / static_cast<double>(samples_.size());
}

double Summary::variance() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : samples_) acc += (x - m) * (x - m);
  return acc / static_cast<double>(samples_.size() - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::percentile(double p) const {
  PARC_CHECK(!samples_.empty());
  PARC_CHECK(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double Summary::ci95_half_width() const {
  if (samples_.size() < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(samples_.size()));
}

std::string Summary::describe() const {
  if (empty()) return "(no samples)";
  std::ostringstream os;
  os << format_double(mean(), 3) << " ±" << format_double(ci95_half_width(), 3)
     << " [min " << format_double(min(), 3) << ", p50 "
     << format_double(median(), 3) << ", p99 "
     << format_double(percentile(99.0), 3) << ", max "
     << format_double(max(), 3) << "] n=" << count();
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PARC_CHECK(hi > lo);
  PARC_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::uint64_t Histogram::bucket(std::size_t i) const {
  PARC_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::bucket_low(std::size_t i) const {
  PARC_CHECK(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_high(std::size_t i) const {
  return bucket_low(i) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(int width) const {
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak) * width);
    os << "[" << format_double(bucket_low(i), 2) << ", "
       << format_double(bucket_high(i), 2) << ") " << std::string(
           static_cast<std::size_t>(std::max(bar, 1)), '#')
       << " " << counts_[i] << "\n";
  }
  return os.str();
}

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  PARC_CHECK(xs.size() == ys.size());
  PARC_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    syy += ys[i] * ys[i];
    sxy += xs[i] * ys[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

LinearFit linear_fit(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  PARC_CHECK(xs.size() == ys.size());
  PARC_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.intercept = sy / n;
    fit.slope = 0.0;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  return fit;
}

}  // namespace parc
