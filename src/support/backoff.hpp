// Spin/backoff utilities shared by the lock and runtime implementations.
//
// Spinning briefly before yielding wins when the owner is running on
// another core; on oversubscribed or single-core hosts the yield is what
// lets the owner finish at all — ExponentialBackoff encodes that
// escalation once instead of ad-hoc counters at every spin site.
#pragma once

#include <cstddef>
#include <thread>

namespace parc {

/// Destructive-interference padding: align hot atomics to this to keep
/// unrelated writers off each other's cache line.
inline constexpr std::size_t kCacheLineSize = 64;

class ExponentialBackoff {
 public:
  /// `spins_before_yield`: busy iterations (doubling per round) before the
  /// policy escalates to std::this_thread::yield().
  explicit constexpr ExponentialBackoff(std::size_t spins_before_yield = 64)
      : limit_(spins_before_yield) {}

  /// One wait step: spin while cheap, yield once the budget is burnt.
  void pause() noexcept {
    if (count_ < limit_) {
      for (std::size_t i = 0; i < (std::size_t{1} << round_); ++i) {
        cpu_relax();
      }
      count_ += std::size_t{1} << round_;
      if (round_ < 6) ++round_;
    } else {
      std::this_thread::yield();
    }
  }

  /// Reset after a successful acquisition (next contention starts cheap).
  void reset() noexcept {
    count_ = 0;
    round_ = 0;
  }

  [[nodiscard]] bool yielding() const noexcept { return count_ >= limit_; }

  /// Architecture pause hint (PAUSE on x86, YIELD on ARM, no-op elsewhere).
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    // Plain compiler barrier: prevents the spin from being optimised into
    // a single cached load.
    asm volatile("" ::: "memory");
#endif
  }

 private:
  std::size_t limit_;
  std::size_t count_ = 0;
  std::size_t round_ = 0;
};

}  // namespace parc
