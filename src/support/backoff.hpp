// Spin/backoff utilities shared by the lock and runtime implementations.
//
// Spinning briefly before yielding wins when the owner is running on
// another core; on oversubscribed or single-core hosts the yield is what
// lets the owner finish at all — ExponentialBackoff encodes that
// escalation once instead of ad-hoc counters at every spin site.
#pragma once

#include <chrono>
#include <cstddef>
#include <limits>
#include <thread>

namespace parc {

/// Destructive-interference padding: align hot atomics to this to keep
/// unrelated writers off each other's cache line.
inline constexpr std::size_t kCacheLineSize = 64;

class ExponentialBackoff {
 public:
  /// Sentinel for `yields_before_sleep`: never escalate past yielding.
  static constexpr std::size_t kNeverSleep =
      std::numeric_limits<std::size_t>::max();

  /// `spins_before_yield`: busy iterations (doubling per round) before the
  /// policy escalates to std::this_thread::yield().
  /// `yields_before_sleep`: yields (doubling per round) before escalating
  /// further to a short sleep — for long cooperative waits (help_while)
  /// where an unbounded yield loop would still burn a core on
  /// oversubscribed hosts. Locks keep the default (never sleep).
  explicit constexpr ExponentialBackoff(
      std::size_t spins_before_yield = 64,
      std::size_t yields_before_sleep = kNeverSleep)
      : limit_(spins_before_yield), yield_limit_(yields_before_sleep) {}

  /// One wait step: spin while cheap, yield once the budget is burnt, and
  /// (if configured) sleep with doubling duration once yields are burnt too.
  void pause() noexcept {
    if (count_ < limit_) {
      for (std::size_t i = 0; i < (std::size_t{1} << round_); ++i) {
        cpu_relax();
      }
      count_ += std::size_t{1} << round_;
      if (round_ < 6) ++round_;
    } else if (yields_ < yield_limit_) {
      ++yields_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us_));
      if (sleep_us_ < kMaxSleepUs) sleep_us_ *= 2;
    }
  }

  /// Reset after a successful acquisition (next contention starts cheap).
  void reset() noexcept {
    count_ = 0;
    round_ = 0;
    yields_ = 0;
    sleep_us_ = kMinSleepUs;
  }

  [[nodiscard]] bool yielding() const noexcept { return count_ >= limit_; }

  /// Architecture pause hint (PAUSE on x86, YIELD on ARM, no-op elsewhere).
  static void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    // Plain compiler barrier: prevents the spin from being optimised into
    // a single cached load.
    asm volatile("" ::: "memory");
#endif
  }

 private:
  static constexpr std::size_t kMinSleepUs = 25;
  static constexpr std::size_t kMaxSleepUs = 400;

  std::size_t limit_;
  std::size_t yield_limit_;
  std::size_t count_ = 0;
  std::size_t round_ = 0;
  std::size_t yields_ = 0;
  std::size_t sleep_us_ = kMinSleepUs;
};

}  // namespace parc
