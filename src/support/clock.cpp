#include "support/clock.hpp"

#include <atomic>

namespace parc {

std::uint64_t spin_work(std::uint64_t iterations) noexcept {
  // A SplitMix-style mixing loop: cheap, data-dependent, not elidable
  // because the result is returned (callers typically feed it into a
  // benchmark::DoNotOptimize-style sink or an accumulator).
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x += i;
  }
  std::atomic_signal_fence(std::memory_order_seq_cst);
  return x;
}

}  // namespace parc
