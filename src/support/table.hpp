// ASCII table / CSV emission for bench binaries.
//
// Every bench target prints the paper artifact it regenerates as a Table:
// fixed column set, row-per-configuration, aligned ASCII to stdout plus an
// optional CSV dump for downstream plotting.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace parc {

class Table {
 public:
  explicit Table(std::string title);

  Table& columns(std::initializer_list<std::string> names);
  Table& columns(std::vector<std::string> names);

  /// Append a row; cell count must match the column count.
  Table& row(std::vector<std::string> cells);

  /// Convenience: formats doubles/ints in place.
  class RowBuilder {
   public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& cell(const std::string& s);
    RowBuilder& cell(const char* s);
    RowBuilder& cell(double v, int precision = 3);
    RowBuilder& cell(std::uint64_t v);
    RowBuilder& cell(std::int64_t v);
    RowBuilder& cell(int v);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    Table& table_;
    std::vector<std::string> cells_;
    friend class Table;
  };
  [[nodiscard]] RowBuilder add_row() { return RowBuilder(*this); }

  [[nodiscard]] const std::string& title() const noexcept { return title_; }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

  /// Aligned ASCII rendering with a title banner and column rule.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes fields containing commas/quotes).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace parc
