// OpenMP 3.0 tasks for Pyjama — the construct that later unified the two
// PARC tools: directive-style regions spawning deferred tasks onto the same
// work-stealing machinery Parallel Task uses.
//
//   pj::region(4, [&](pj::Team& team) {
//     team.single([&] {
//       for (auto& node : tree) pj::task(team, [&]{ process(node); });
//     });
//     pj::taskwait(team);   // also implicit at the end of the region
//   });
//
// Tasks run on a process-wide work-stealing pool (sized like the default
// team); taskwait donates the calling team thread to that pool while it
// waits, so tasks can spawn nested tasks without deadlock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "pj/team.hpp"
#include "sched/thread_pool.hpp"

namespace parc::pj {

/// Spawn a deferred task bound to `team`. Any team thread may call this,
/// any number of times; tasks may spawn further tasks (bind them to the
/// same team).
void task(Team& team, std::function<void()> body);

/// OpenMP 4.5 `taskloop`: split [begin, end) into `num_tasks` chunks (0 =
/// four per pool worker) and run each chunk as a deferred task bound to
/// `team`. All chunks enter the pool as one batch — workers are woken once
/// for the whole loop, not once per chunk. Synchronise with taskwait(team)
/// (also implicit at region end); `body(i)` runs once per iteration.
void taskloop(Team& team, std::int64_t begin, std::int64_t end,
              std::function<void(std::int64_t)> body,
              std::size_t num_tasks = 0);

/// Wait until every task bound to `team` has completed (including tasks
/// spawned by tasks). The calling thread executes pending tasks while it
/// waits.
void taskwait(Team& team);

/// Tasks currently outstanding for the team (diagnostics).
[[nodiscard]] std::size_t tasks_outstanding(const Team& team) noexcept;

/// The shared task pool (exposed for stats/tests).
[[nodiscard]] sched::WorkStealingPool& task_pool();

}  // namespace parc::pj
