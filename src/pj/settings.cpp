#include "pj/settings.hpp"

#include <atomic>
#include <climits>
#include <mutex>

#include "sched/thread_pool.hpp"

namespace parc::pj {

namespace {
std::atomic<std::size_t> g_num_threads{0};  // 0 = uninitialised
std::mutex g_opts_mutex;
ForOptions g_for_options;  // guarded by g_opts_mutex

constexpr int kUnlimitedLevels = INT_MAX;
std::atomic<int> g_max_active_levels{kUnlimitedLevels};

std::atomic<std::size_t> g_num_places{1};
std::atomic<ProcBind> g_proc_bind{ProcBind::none};
}  // namespace

std::size_t default_num_threads() noexcept {
  std::size_t n = g_num_threads.load(std::memory_order_acquire);
  if (n == 0) {
    n = sched::default_concurrency();
    g_num_threads.store(n, std::memory_order_release);
  }
  return n;
}

void set_default_num_threads(std::size_t n) noexcept {
  g_num_threads.store(n == 0 ? sched::default_concurrency() : n,
                      std::memory_order_release);
}

ForOptions default_for_options() noexcept {
  std::scoped_lock lock(g_opts_mutex);
  return g_for_options;
}

void set_default_for_options(ForOptions opts) noexcept {
  std::scoped_lock lock(g_opts_mutex);
  g_for_options = opts;
}

int max_active_levels() noexcept {
  return g_max_active_levels.load(std::memory_order_acquire);
}

void set_max_active_levels(int levels) noexcept {
  g_max_active_levels.store(levels < 0 ? 0 : levels,
                            std::memory_order_release);
}

bool nested() noexcept { return max_active_levels() > 1; }

void set_nested(bool enabled) noexcept {
  set_max_active_levels(enabled ? kUnlimitedLevels : 1);
}

std::size_t num_places() noexcept {
  return g_num_places.load(std::memory_order_acquire);
}

void set_places(std::size_t n) noexcept {
  g_num_places.store(n == 0 ? 1 : n, std::memory_order_release);
}

ProcBind proc_bind() noexcept {
  return g_proc_bind.load(std::memory_order_acquire);
}

void set_proc_bind(ProcBind bind) noexcept {
  g_proc_bind.store(bind, std::memory_order_release);
}

}  // namespace parc::pj
