// Umbrella header for the Pyjama runtime (parc::pj): OpenMP semantics as a
// C++ library, plus Pyjama's two extensions — object reductions and
// GUI-aware regions.
//
//   pj::region(4, [](pj::Team& t){ ... t.barrier(); ... });
//   pj::parallel_for(0, n, [&](std::int64_t i){ ... },
//                    {pj::Schedule::kDynamic, 64});
//   auto total = pj::reduce(0, n, pj::SumReducer<double>{},
//                           [&](std::int64_t i, double& acc){ acc += x[i]; });
//   auto h = pj::gui_region(4, body, on_complete);   // EDT-safe region
#pragma once

#include "pj/atomic.hpp"      // IWYU pragma: export
#include "pj/gui_region.hpp"  // IWYU pragma: export
#include "pj/parallel.hpp"    // IWYU pragma: export
#include "pj/reductions.hpp"  // IWYU pragma: export
#include "pj/schedule.hpp"    // IWYU pragma: export
#include "pj/settings.hpp"    // IWYU pragma: export
#include "pj/tasks.hpp"       // IWYU pragma: export
#include "pj/team.hpp"        // IWYU pragma: export
