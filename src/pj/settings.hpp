// Process-wide Pyjama runtime knobs (the omp_set_* surface).
#pragma once

#include <cstddef>

#include "pj/schedule.hpp"

namespace parc::pj {

/// Default team size for regions that don't specify one. Initially the
/// hardware concurrency (min 2, so parallel semantics hold on 1-core hosts).
[[nodiscard]] std::size_t default_num_threads() noexcept;
void set_default_num_threads(std::size_t n) noexcept;

/// Default schedule applied when ForOptions isn't given explicitly
/// (omp_set_schedule analogue).
[[nodiscard]] ForOptions default_for_options() noexcept;
void set_default_for_options(ForOptions opts) noexcept;

}  // namespace parc::pj
