// Process-wide Pyjama runtime knobs (the omp_set_* surface).
#pragma once

#include <cstddef>
#include <cstdint>

#include "pj/schedule.hpp"

namespace parc::pj {

/// Default team size for regions that don't specify one. Initially the
/// hardware concurrency (min 2, so parallel semantics hold on 1-core hosts).
[[nodiscard]] std::size_t default_num_threads() noexcept;
void set_default_num_threads(std::size_t n) noexcept;

/// Default schedule applied when ForOptions isn't given explicitly
/// (omp_set_schedule analogue).
[[nodiscard]] ForOptions default_for_options() noexcept;
void set_default_for_options(ForOptions opts) noexcept;

/// omp_set_max_active_levels: cap on simultaneously *active* (>1 thread)
/// nested regions. A region that would exceed the cap is serialized — it
/// still runs as a real team, but with one thread. Values < 0 clamp to 0
/// (every region serialized). Default: unlimited.
[[nodiscard]] int max_active_levels() noexcept;
void set_max_active_levels(int levels) noexcept;

/// omp_set_nested, per the OpenMP 5.0 mapping onto max-active-levels:
/// set_nested(false) is set_max_active_levels(1), set_nested(true) lifts
/// the cap; nested() reports max_active_levels() > 1.
[[nodiscard]] bool nested() noexcept;
void set_nested(bool enabled) noexcept;

/// OMP_PROC_BIND analogue: how a region's members are assigned to places.
/// `none` (the default) leaves members unbound — exactly the pre-places
/// behaviour. `close` packs consecutive members into consecutive places
/// starting at the encountering thread's place; `spread` distributes them
/// evenly across the place list; `master` puts every member on the
/// encountering thread's place. See Team::member_place for the formulas.
enum class ProcBind : std::uint8_t { none, close, spread, master };

/// OMP_PLACES analogue: the number of abstract places the process exposes
/// (default 1 = no locality structure). Places map onto the shared task
/// pool's locality domains — place p routes to shard p modulo the pool's
/// shard count — so set_places(n) should be called *before* the first pj
/// construct touches the pool: task_pool() sizes its Config::shards from
/// this value at creation and never re-shards. 0 clamps to 1.
[[nodiscard]] std::size_t num_places() noexcept;
void set_places(std::size_t n) noexcept;

/// Process default bind policy applied by region() overloads that do not
/// take an explicit ProcBind clause. Default: none.
[[nodiscard]] ProcBind proc_bind() noexcept;
void set_proc_bind(ProcBind bind) noexcept;

}  // namespace parc::pj
