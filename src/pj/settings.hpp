// Process-wide Pyjama runtime knobs (the omp_set_* surface).
#pragma once

#include <cstddef>

#include "pj/schedule.hpp"

namespace parc::pj {

/// Default team size for regions that don't specify one. Initially the
/// hardware concurrency (min 2, so parallel semantics hold on 1-core hosts).
[[nodiscard]] std::size_t default_num_threads() noexcept;
void set_default_num_threads(std::size_t n) noexcept;

/// Default schedule applied when ForOptions isn't given explicitly
/// (omp_set_schedule analogue).
[[nodiscard]] ForOptions default_for_options() noexcept;
void set_default_for_options(ForOptions opts) noexcept;

/// omp_set_max_active_levels: cap on simultaneously *active* (>1 thread)
/// nested regions. A region that would exceed the cap is serialized — it
/// still runs as a real team, but with one thread. Values < 0 clamp to 0
/// (every region serialized). Default: unlimited.
[[nodiscard]] int max_active_levels() noexcept;
void set_max_active_levels(int levels) noexcept;

/// omp_set_nested, per the OpenMP 5.0 mapping onto max-active-levels:
/// set_nested(false) is set_max_active_levels(1), set_nested(true) lifts
/// the cap; nested() reports max_active_levels() > 1.
[[nodiscard]] bool nested() noexcept;
void set_nested(bool enabled) noexcept;

}  // namespace parc::pj
