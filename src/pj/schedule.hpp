// Loop schedules for Pyjama worksharing constructs: the OpenMP `schedule`
// clause. ChunkSource hands out [begin, end) chunks to team threads
// according to the policy; the worksharing templates in parallel.hpp drive
// it. All policies hand out work exactly once and cover the full range.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <optional>
#include <string_view>

#include "support/check.hpp"

namespace parc::pj {

enum class Schedule : std::uint8_t {
  kStatic,   ///< contiguous blocks (or round-robin chunks) fixed per thread
  kDynamic,  ///< threads grab `chunk` iterations at a time
  kGuided,   ///< exponentially decreasing chunks, min `chunk`
  kAuto,     ///< implementation choice (here: static)
};

[[nodiscard]] constexpr std::string_view to_string(Schedule s) noexcept {
  switch (s) {
    case Schedule::kStatic: return "static";
    case Schedule::kDynamic: return "dynamic";
    case Schedule::kGuided: return "guided";
    case Schedule::kAuto: return "auto";
  }
  return "?";
}

struct ForOptions {
  Schedule schedule = Schedule::kStatic;
  /// 0 means the policy default: n/threads for static, 1 for dynamic,
  /// 1 for guided's minimum.
  std::int64_t chunk = 0;
};

struct Chunk {
  std::int64_t begin;
  std::int64_t end;
};

/// Shared chunk dispenser for one worksharing loop instance.
class ChunkSource {
 public:
  ChunkSource(std::int64_t begin, std::int64_t end, std::size_t threads,
              ForOptions opts)
      : begin_(begin),
        end_(end),
        threads_(threads),
        opts_(opts),
        cursor_(begin) {
    PARC_CHECK(end >= begin);
    PARC_CHECK(threads >= 1);
    if (opts_.chunk <= 0) {
      const std::int64_t n = end - begin;
      switch (opts_.schedule) {
        case Schedule::kStatic:
        case Schedule::kAuto:
          opts_.chunk = (n + static_cast<std::int64_t>(threads) - 1) /
                        static_cast<std::int64_t>(threads);
          if (opts_.chunk <= 0) opts_.chunk = 1;
          break;
        case Schedule::kDynamic:
        case Schedule::kGuided:
          opts_.chunk = 1;
          break;
      }
    }
  }

  /// Next chunk for `thread_num`, or nullopt when the loop is exhausted.
  /// Static schedules are per-thread deterministic; dynamic/guided share an
  /// atomic cursor.
  std::optional<Chunk> next(std::size_t thread_num, std::size_t& local_step) {
    switch (opts_.schedule) {
      case Schedule::kStatic:
      case Schedule::kAuto: {
        // Round-robin chunks: thread t takes chunks t, t+T, t+2T, ...
        const std::int64_t chunk_index =
            static_cast<std::int64_t>(thread_num) +
            static_cast<std::int64_t>(local_step) *
                static_cast<std::int64_t>(threads_);
        const std::int64_t lo = begin_ + chunk_index * opts_.chunk;
        if (lo >= end_) return std::nullopt;
        ++local_step;
        return Chunk{lo, std::min(end_, lo + opts_.chunk)};
      }
      case Schedule::kDynamic: {
        const std::int64_t lo =
            cursor_.fetch_add(opts_.chunk, std::memory_order_relaxed);
        if (lo >= end_) return std::nullopt;
        return Chunk{lo, std::min(end_, lo + opts_.chunk)};
      }
      case Schedule::kGuided: {
        for (;;) {
          std::int64_t lo = cursor_.load(std::memory_order_relaxed);
          if (lo >= end_) return std::nullopt;
          const std::int64_t remaining = end_ - lo;
          std::int64_t size =
              remaining / (2 * static_cast<std::int64_t>(threads_));
          size = std::max(size, opts_.chunk);
          size = std::min(size, remaining);
          if (cursor_.compare_exchange_weak(lo, lo + size,
                                            std::memory_order_relaxed)) {
            return Chunk{lo, lo + size};
          }
        }
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] std::int64_t chunk_size() const noexcept { return opts_.chunk; }
  [[nodiscard]] Schedule schedule() const noexcept { return opts_.schedule; }

 private:
  const std::int64_t begin_;
  const std::int64_t end_;
  const std::size_t threads_;
  ForOptions opts_;
  std::atomic<std::int64_t> cursor_;  // dynamic/guided only
};

}  // namespace parc::pj
