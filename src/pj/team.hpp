// Team: the set of threads executing one Pyjama parallel region, with the
// OpenMP synchronisation constructs as member functions — barrier, critical
// (named and unnamed, global like OpenMP's), single (with implicit barrier),
// master, and an ordered helper for loops.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::pj {

/// Sense-reversing cyclic barrier for a fixed team size.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties), waiting_(0) {
    PARC_CHECK(parties >= 1);
  }

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t waiting_;          // guarded by mutex_
  std::uint64_t generation_ = 0; // guarded by mutex_
};

/// Ticket-order helper implementing OpenMP `ordered` semantics for loops
/// executed with chunk size 1: iteration i's ordered section runs only after
/// iterations 0..i-1 have completed theirs.
class OrderedContext {
 public:
  explicit OrderedContext(std::int64_t first) : next_(first) {}

  template <typename F>
  void run_ordered(std::int64_t iteration, F&& body) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [&] { return next_ == iteration; });
    body();  // still holding the lock: ordered sections are serial anyway
    ++next_;
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::int64_t next_;  // guarded by mutex_
};

class Team {
 public:
  explicit Team(std::size_t size);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// omp_get_thread_num() — index of the calling thread within this team.
  [[nodiscard]] int thread_num() const;
  /// omp_get_num_threads().
  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(size_);
  }

  /// Block until every team member arrives (OpenMP `barrier`).
  void barrier() {
    if (obs::tracing()) [[unlikely]] {
      // Begin/end pair per member thread: the gap between them is the time
      // this thread spent blocked waiting for the team (load imbalance).
      const auto team_id = reinterpret_cast<std::uintptr_t>(this);
      obs::emit(obs::EventKind::kBarrierBegin, team_id,
                static_cast<std::uint64_t>(thread_num()));
      barrier_.arrive_and_wait();
      obs::emit(obs::EventKind::kBarrierEnd, team_id,
                static_cast<std::uint64_t>(thread_num()));
      return;
    }
    barrier_.arrive_and_wait();
  }

  /// OpenMP `critical` (unnamed): one global mutual-exclusion region across
  /// the whole process, exactly like OpenMP's unnamed critical.
  template <typename F>
  void critical(F&& body) {
    critical("", std::forward<F>(body));
  }

  /// OpenMP `critical(name)`: mutual exclusion across all teams using the
  /// same name.
  template <typename F>
  void critical(const std::string& name, F&& body) {
    std::scoped_lock lock(critical_mutex(name));
    body();
  }

  /// OpenMP `single`: the first thread to arrive executes `body`; all
  /// threads synchronise on the implicit barrier unless nowait is true.
  /// All team threads must call single() the same number of times.
  template <typename F>
  void single(F&& body, bool nowait = false) {
    const auto tid = static_cast<std::size_t>(thread_num());
    const std::uint64_t site = single_seq_[tid]++;
    bool mine;
    {
      std::scoped_lock lock(single_mutex_);
      mine = single_claimed_.insert(site).second;
    }
    if (mine) body();
    if (!nowait) barrier();
  }

  /// OpenMP `master`: only thread 0 executes; no implied barrier.
  template <typename F>
  void master(F&& body) {
    if (thread_num() == 0) body();
  }

  /// OpenMP `sections`: distributes the given section bodies over the team
  /// (first-come first-served), with an implicit barrier at the end.
  void sections(const std::vector<std::function<void()>>& bodies,
                bool nowait = false);

  /// Internal: region runner binds the calling thread to `index`.
  class MembershipScope {
   public:
    MembershipScope(const Team& team, int index) noexcept;
    ~MembershipScope();
    MembershipScope(const MembershipScope&) = delete;
    MembershipScope& operator=(const MembershipScope&) = delete;

   private:
    const Team* prev_team_;
    int prev_index_;
  };

  /// Team the calling thread currently belongs to (nullptr outside regions).
  [[nodiscard]] static const Team* current() noexcept;

  /// Worksharing rendezvous slot: the single() winner of a worksharing
  /// construct installs the shared dispenser here; the single's implicit
  /// barrier publishes it to the rest of the team. Type-erased so Team does
  /// not depend on loop machinery.
  void set_workshare_slot(std::shared_ptr<void> slot) {
    std::scoped_lock lock(slot_mutex_);
    workshare_slot_ = std::move(slot);
  }
  [[nodiscard]] std::shared_ptr<void> workshare_slot() const {
    std::scoped_lock lock(slot_mutex_);
    return workshare_slot_;
  }

 private:
  /// Registry of named critical mutexes; process-global like OpenMP.
  static std::mutex& critical_mutex(const std::string& name);

  const std::size_t size_;
  Barrier barrier_;

  std::mutex single_mutex_;
  std::set<std::uint64_t> single_claimed_;  // guarded by single_mutex_
  std::vector<std::uint64_t> single_seq_;   // one slot per thread, own-slot access

  mutable std::mutex slot_mutex_;
  std::shared_ptr<void> workshare_slot_;  // guarded by slot_mutex_

  // Deferred-task accounting for pj::task / pj::taskwait (tasks.hpp).
  // Padded: every task start/finish on every pool worker hits this counter,
  // and it must not share a line with the mutexes above.
  friend class TaskAccounting;
  alignas(kCacheLineSize) std::atomic<std::size_t> tasks_outstanding_{0};
  std::mutex task_error_mutex_;
  std::exception_ptr task_error_;  // guarded by task_error_mutex_
};

/// Internal handle used by the task layer to tick the team's counter and
/// funnel task-body exceptions back to taskwait.
class TaskAccounting {
 public:
  static void started(Team& team) noexcept {
    team.tasks_outstanding_.fetch_add(1, std::memory_order_acq_rel);
  }
  static void finished(Team& team) noexcept {
    team.tasks_outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  }
  static std::size_t outstanding(const Team& team) noexcept {
    return team.tasks_outstanding_.load(std::memory_order_acquire);
  }
  static void store_error(Team& team, std::exception_ptr e) {
    std::scoped_lock lock(team.task_error_mutex_);
    if (!team.task_error_) team.task_error_ = std::move(e);
  }
  [[nodiscard]] static std::exception_ptr take_error(Team& team) {
    std::scoped_lock lock(team.task_error_mutex_);
    std::exception_ptr e = team.task_error_;
    team.task_error_ = nullptr;
    return e;
  }
};

}  // namespace parc::pj
