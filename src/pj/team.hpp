// Team: the set of threads executing one Pyjama parallel region, with the
// OpenMP synchronisation constructs as member functions — barrier, critical
// (named and unnamed, global like OpenMP's), single (with implicit barrier),
// master, and an ordered helper for loops.
//
// Synchronisation rides the sched completion core: the barrier is the
// sense-reversing atomic sched::Barrier (helps the caller's pool or parks
// on a futex word — never blocks a pooled worker on a cv), `ordered` is a
// parking sched::Sequencer ticket, `single`/`sections` claim sites with one
// CAS on a monotonic high-water mark, and deferred-task accounting is a
// sched::JoinLatch with built-in lock-free first-error capture. No
// condition_variable appears anywhere in the team's hot paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sched/task_graph.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::pj {

/// Sense-reversing cyclic barrier for a fixed team size. An arrival from a
/// pool worker helps drain the pool (so a team scheduled onto fewer workers
/// than parties still completes); other threads spin then futex-park.
using Barrier = sched::Barrier;

/// Ticket-order helper implementing OpenMP `ordered` semantics for loops
/// executed with chunk size 1: iteration i's ordered section runs only after
/// iterations 0..i-1 have completed theirs. Waiting parks (never helps: a
/// helped job could nest a later iteration's ordered wait on this thread's
/// stack and deadlock the ticket sequence).
class OrderedContext {
 public:
  explicit OrderedContext(std::int64_t first) : seq_(first) {}

  template <typename F>
  void run_ordered(std::int64_t iteration, F&& body) {
    seq_.wait_for(iteration);
    body();  // ordered sections are serial by construction
    seq_.advance();
  }

 private:
  sched::Sequencer seq_;
};

class Team {
 public:
  explicit Team(std::size_t size);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// omp_get_thread_num() — index of the calling thread within this team.
  [[nodiscard]] int thread_num() const;
  /// omp_get_num_threads().
  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(size_);
  }

  /// Block until every team member arrives (OpenMP `barrier`).
  void barrier() {
    if (obs::tracing()) [[unlikely]] {
      // Begin/end pair per member thread: the gap between them is the time
      // this thread spent blocked waiting for the team (load imbalance).
      const auto team_id = reinterpret_cast<std::uintptr_t>(this);
      obs::emit(obs::EventKind::kBarrierBegin, team_id,
                static_cast<std::uint64_t>(thread_num()));
      barrier_.arrive_and_wait();
      obs::emit(obs::EventKind::kBarrierEnd, team_id,
                static_cast<std::uint64_t>(thread_num()));
      return;
    }
    barrier_.arrive_and_wait();
  }

  /// OpenMP `critical` (unnamed): one global mutual-exclusion region across
  /// the whole process, exactly like OpenMP's unnamed critical.
  template <typename F>
  void critical(F&& body) {
    critical("", std::forward<F>(body));
  }

  /// OpenMP `critical(name)`: mutual exclusion across all teams using the
  /// same name.
  template <typename F>
  void critical(const std::string& name, F&& body) {
    std::scoped_lock lock(critical_mutex(name));
    body();
  }

  /// OpenMP `single`: the first thread to arrive executes `body`; all
  /// threads synchronise on the implicit barrier unless nowait is true.
  /// All team threads must call single() the same number of times.
  template <typename F>
  void single(F&& body, bool nowait = false) {
    const auto tid = static_cast<std::size_t>(thread_num());
    const std::uint64_t site = single_seq_[tid]++;
    if (claim_site(site)) body();
    if (!nowait) barrier();
  }

  /// OpenMP `master`: only thread 0 executes; no implied barrier.
  template <typename F>
  void master(F&& body) {
    if (thread_num() == 0) body();
  }

  /// OpenMP `sections`: distributes the given section bodies over the team
  /// (first-come first-served), with an implicit barrier at the end.
  void sections(const std::vector<std::function<void()>>& bodies,
                bool nowait = false);

  /// Internal: region runner binds the calling thread to `index`.
  class MembershipScope {
   public:
    MembershipScope(const Team& team, int index) noexcept;
    ~MembershipScope();
    MembershipScope(const MembershipScope&) = delete;
    MembershipScope& operator=(const MembershipScope&) = delete;

   private:
    const Team* prev_team_;
    int prev_index_;
  };

  /// Team the calling thread currently belongs to (nullptr outside regions).
  [[nodiscard]] static const Team* current() noexcept;

  /// Worksharing rendezvous slot: the single() winner of a worksharing
  /// construct installs the shared dispenser here; the single's implicit
  /// barrier publishes it to the rest of the team. Type-erased so Team does
  /// not depend on loop machinery.
  void set_workshare_slot(std::shared_ptr<void> slot) {
    std::scoped_lock lock(slot_mutex_);
    workshare_slot_ = std::move(slot);
  }
  [[nodiscard]] std::shared_ptr<void> workshare_slot() const {
    std::scoped_lock lock(slot_mutex_);
    return workshare_slot_;
  }

 private:
  /// Lock-free claim of single/sections site `site`: one CAS on a monotonic
  /// high-water mark, replacing the old mutex + claimed-set. Valid because
  /// every team thread passes the same claim sites in the same order (an
  /// OpenMP requirement), so the high-water mark always equals the largest
  /// site any thread has passed — a thread claiming `site` either advances
  /// the mark (it is first: the section is its) or observes it already past.
  [[nodiscard]] bool claim_site(std::uint64_t site) noexcept {
    std::uint64_t expected = site;
    return single_hwm_.compare_exchange_strong(expected, site + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire);
  }

  /// Registry of named critical mutexes; process-global like OpenMP.
  static std::mutex& critical_mutex(const std::string& name);

  const std::size_t size_;
  Barrier barrier_;

  alignas(kCacheLineSize) std::atomic<std::uint64_t> single_hwm_{0};
  std::vector<std::uint64_t> single_seq_;  // one slot per thread, own-slot access

  mutable std::mutex slot_mutex_;
  std::shared_ptr<void> workshare_slot_;  // guarded by slot_mutex_

  // Deferred-task accounting for pj::task / pj::taskwait (tasks.hpp): a
  // JoinLatch (count + park epoch + first-error slot), cache-line padded
  // internally so task start/finish traffic never false-shares with the
  // members above.
  friend class TaskAccounting;
  sched::JoinLatch tasks_;
};

/// Internal handle used by the task layer to tick the team's counter and
/// funnel task-body exceptions back to taskwait. Thin forwarding onto the
/// team's sched::JoinLatch.
class TaskAccounting {
 public:
  static void started(Team& team) noexcept { team.tasks_.add(); }
  static void finished(Team& team) noexcept { team.tasks_.done(); }
  /// Batch spellings for chunked fan-out (taskloop): all chunks enter the
  /// count in one RMW, and a runner retires every chunk it executed with a
  /// single done_n (one epoch RMW + at most one wake per batch).
  static void started_n(Team& team, std::size_t n) noexcept {
    team.tasks_.add(n);
  }
  static void finished_n(Team& team, std::size_t n) noexcept {
    team.tasks_.done_n(n);
  }
  static std::size_t outstanding(const Team& team) noexcept {
    return team.tasks_.outstanding();
  }
  static void store_error(Team& team, std::exception_ptr e) noexcept {
    team.tasks_.capture_error(std::move(e));
  }
  [[nodiscard]] static std::exception_ptr take_error(Team& team) noexcept {
    return team.tasks_.take_error();
  }
  /// Wait for all deferred tasks, helping `pool` drain (taskwait).
  static void wait_idle(Team& team, sched::WorkStealingPool& pool) {
    team.tasks_.wait(&pool);
  }
};

}  // namespace parc::pj
