// Team: the set of threads executing one Pyjama parallel region, with the
// OpenMP synchronisation constructs as member functions — barrier, critical
// (named and unnamed, global like OpenMP's), single (with implicit barrier),
// master, and an ordered helper for loops.
//
// Synchronisation rides the sched completion core: the barrier is the
// sense-reversing atomic sched::Barrier (helps the caller's pool or parks
// on a futex word — never blocks a pooled worker on a cv), `ordered` is a
// parking sched::Sequencer ticket, `single`/`sections` claim sites with one
// CAS on a monotonic high-water mark, and deferred-task accounting is a
// sched::JoinLatch with built-in lock-free first-error capture. No
// condition_variable appears anywhere in the team's hot paths.
//
// Nesting model: each thread carries a *stack* of team memberships
// (innermost last). A member of a team that opens an inner region becomes
// thread 0 of the inner team; the other inner members inherit the
// encountering thread's whole stack (capture_ancestry / AncestryScope), so
// omp_get_ancestor_thread_num-style introspection works from any depth.
// Every synchronisation construct (barrier, single/sections sites, ordered
// tickets, the worksharing ring) lives on the Team *instance*, so an inner
// team's claim sites can never alias the outer team's.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "pj/settings.hpp"
#include "sched/task_graph.hpp"
#include "support/backoff.hpp"
#include "support/check.hpp"

namespace parc::pj {

/// Sense-reversing cyclic barrier for a fixed team size. An arrival from a
/// pool worker helps drain the pool (so a team scheduled onto fewer workers
/// than parties still completes); other threads spin then futex-park.
using Barrier = sched::Barrier;

/// Ticket-order helper implementing OpenMP `ordered` semantics for loops
/// executed with chunk size 1: iteration i's ordered section runs only after
/// iterations 0..i-1 have completed theirs. Waiting parks (never helps: a
/// helped job could nest a later iteration's ordered wait on this thread's
/// stack and deadlock the ticket sequence).
class OrderedContext {
 public:
  explicit OrderedContext(std::int64_t first) : seq_(first) {}

  template <typename F>
  void run_ordered(std::int64_t iteration, F&& body) {
    seq_.wait_for(iteration);
    body();  // ordered sections are serial by construction
    seq_.advance();
  }

 private:
  sched::Sequencer seq_;
};

class Team {
 public:
  /// `level` is the 1-based nesting depth of the region this team executes
  /// (1 = outermost); `active_level` counts enclosing teams — including this
  /// one — with more than one thread (omp_get_active_level). The default
  /// `active_level = -1` derives it from the team size, which is right for
  /// directly-constructed teams outside region().
  explicit Team(std::size_t size, int level = 1, int active_level = -1);
  ~Team();

  Team(const Team&) = delete;
  Team& operator=(const Team&) = delete;

  /// omp_get_thread_num() — index of the calling thread within this team.
  [[nodiscard]] int thread_num() const;
  /// omp_get_num_threads().
  [[nodiscard]] int num_threads() const noexcept {
    return static_cast<int>(size_);
  }
  /// 1-based nesting depth of this team's region (omp_get_level as seen by
  /// its members).
  [[nodiscard]] int level() const noexcept { return level_; }
  /// Number of enclosing parallel regions, this one included, with more
  /// than one thread (omp_get_active_level as seen by its members).
  [[nodiscard]] int active_level() const noexcept { return active_level_; }

  /// Block until every team member arrives (OpenMP `barrier`).
  void barrier() {
    if (obs::tracing()) [[unlikely]] {
      // Begin/end pair per member thread: the gap between them is the time
      // this thread spent blocked waiting for the team (load imbalance).
      const auto team_id = reinterpret_cast<std::uintptr_t>(this);
      obs::emit(obs::EventKind::kBarrierBegin, team_id,
                static_cast<std::uint64_t>(thread_num()));
      barrier_.arrive_and_wait();
      obs::emit(obs::EventKind::kBarrierEnd, team_id,
                static_cast<std::uint64_t>(thread_num()));
      return;
    }
    barrier_.arrive_and_wait();
  }

  /// OpenMP `critical` (unnamed): one global mutual-exclusion region across
  /// the whole process, exactly like OpenMP's unnamed critical.
  template <typename F>
  void critical(F&& body) {
    critical("", std::forward<F>(body));
  }

  /// OpenMP `critical(name)`: mutual exclusion across all teams using the
  /// same name.
  template <typename F>
  void critical(const std::string& name, F&& body) {
    std::scoped_lock lock(critical_mutex(name));
    body();
  }

  /// OpenMP `single`: the first thread to arrive executes `body`; all
  /// threads synchronise on the implicit barrier unless nowait is true.
  /// All team threads must call single() the same number of times.
  template <typename F>
  void single(F&& body, bool nowait = false) {
    const auto tid = static_cast<std::size_t>(thread_num());
    const std::uint64_t site = single_seq_[tid]++;
    if (claim_site(site)) body();
    if (!nowait) barrier();
  }

  /// OpenMP `master`: only thread 0 executes; no implied barrier.
  template <typename F>
  void master(F&& body) {
    if (thread_num() == 0) body();
  }

  /// OpenMP `sections`: distributes the given section bodies over the team
  /// (first-come first-served), with an implicit barrier at the end.
  void sections(const std::vector<std::function<void()>>& bodies,
                bool nowait = false);

  /// One entry of a thread's membership stack: which team, and the calling
  /// thread's index within it.
  struct MemberRef {
    const Team* team = nullptr;
    int index = -1;
  };
  /// A snapshot of a thread's whole membership stack, outermost first.
  /// Inner-region members install the encountering thread's snapshot so
  /// ancestor introspection works from any depth (see AncestryScope).
  using Ancestry = std::vector<MemberRef>;

  /// Internal: region runner binds the calling thread to `index`, pushing
  /// one entry onto the thread's membership stack.
  class MembershipScope {
   public:
    MembershipScope(const Team& team, int index);
    ~MembershipScope();
    MembershipScope(const MembershipScope&) = delete;
    MembershipScope& operator=(const MembershipScope&) = delete;
  };

  /// Internal: installs `ancestry` as the calling thread's membership stack
  /// for the scope's lifetime (restoring the previous stack on exit). Used
  /// for inner-region member bodies running on pool workers or fallback
  /// threads, whose own stack is unrelated to the encountering thread's.
  class AncestryScope {
   public:
    explicit AncestryScope(const Ancestry& ancestry);
    ~AncestryScope();
    AncestryScope(const AncestryScope&) = delete;
    AncestryScope& operator=(const AncestryScope&) = delete;

   private:
    Ancestry saved_;
  };

  /// Copy of the calling thread's membership stack (empty outside regions).
  [[nodiscard]] static Ancestry capture_ancestry();

  /// Innermost team the calling thread belongs to (nullptr outside regions).
  [[nodiscard]] static const Team* current() noexcept;

  /// Worksharing-construct rendezvous. Every team thread passes worksharing
  /// constructs in the same order (an OpenMP requirement), so each thread's
  /// own monotonic site counter names the construct; the first thread to
  /// claim the site publishes the construct's shared state into a small
  /// per-team ring keyed by site, and the publication barrier makes it
  /// visible team-wide. Per-construct (not per-team-singleton) publication
  /// means a later nowait construct — or anything run between a nowait loop
  /// and its barrier — can never clobber a slot a slower thread still needs.
  ///
  /// `make_slot()` is invoked on exactly one thread and must return a
  /// `std::shared_ptr<T>`. All threads return the same pointer.
  template <typename T, typename Factory>
  [[nodiscard]] std::shared_ptr<T> workshare(Factory&& make_slot) {
    const auto tid = static_cast<std::size_t>(thread_num());
    const std::uint64_t site = single_seq_[tid]++;
    if (claim_site(site)) {
      publish_workshare(site, std::forward<Factory>(make_slot)());
    }
    barrier();  // publication barrier: slot visible team-wide after this
    auto slot = std::static_pointer_cast<T>(fetch_workshare(site));
    PARC_CHECK_MSG(slot != nullptr, "workshare slot missing for site");
    return slot;
  }

  /// Trace identity of the region this team executes (0 when untraced).
  /// Written once by region() before any member starts.
  void set_trace_region_id(std::uint64_t id) noexcept {
    trace_region_id_ = id;
  }
  [[nodiscard]] std::uint64_t trace_region_id() const noexcept {
    return trace_region_id_;
  }

  /// Places binding for this team (see settings.hpp): the bind clause plus
  /// the encountering thread's place at fork time. Written once by region()
  /// before any member starts, like the trace id. Directly-constructed
  /// teams stay unbound (ProcBind::none from place -1).
  void set_places_binding(ProcBind bind, int origin_place) noexcept {
    bind_ = bind;
    origin_place_ = origin_place;
  }
  [[nodiscard]] ProcBind places_bind() const noexcept { return bind_; }

  /// Place assigned to member `index` under this team's binding, or -1 when
  /// the member is unbound (bind none from an unbound origin — the
  /// pre-places behaviour). With P = num_places(), T = team size, and p0 =
  /// the origin place (0 when the origin is unbound):
  ///  - master: every member on p0;
  ///  - close:  consecutive members packed into consecutive places from p0
  ///            (groups of ceil(T/P) when T > P);
  ///  - spread: member i at (p0 + i*P/T) mod P — even coverage of the
  ///            place list, subpartition-style.
  /// Nested regions inherit naturally: the inner origin is the member's own
  /// place, so bind none keeps children on the parent's place while
  /// close/spread re-distribute from it.
  [[nodiscard]] int member_place(std::size_t index) const noexcept;

 private:
  /// Ring-buffer backing for workshare(): entries are keyed by claim site.
  /// Publication-barrier ordering bounds the construct skew between the
  /// fastest and slowest thread to one in-flight construct, so a 4-deep
  /// ring can never wrap onto a site a thread has yet to fetch.
  void publish_workshare(std::uint64_t site, std::shared_ptr<void> slot);
  [[nodiscard]] std::shared_ptr<void> fetch_workshare(std::uint64_t site) const;

  /// Lock-free claim of single/sections site `site`: one CAS on a monotonic
  /// high-water mark, replacing the old mutex + claimed-set. Valid because
  /// every team thread passes the same claim sites in the same order (an
  /// OpenMP requirement), so the high-water mark always equals the largest
  /// site any thread has passed — a thread claiming `site` either advances
  /// the mark (it is first: the section is its) or observes it already past.
  [[nodiscard]] bool claim_site(std::uint64_t site) noexcept {
    std::uint64_t expected = site;
    return single_hwm_.compare_exchange_strong(expected, site + 1,
                                               std::memory_order_acq_rel,
                                               std::memory_order_acquire);
  }

  /// Registry of named critical mutexes; process-global like OpenMP.
  static std::mutex& critical_mutex(const std::string& name);

  const std::size_t size_;
  const int level_;
  const int active_level_;
  std::uint64_t trace_region_id_ = 0;  // set before members start, else const
  ProcBind bind_ = ProcBind::none;     // set before members start, else const
  int origin_place_ = -1;              // encountering thread's place at fork
  Barrier barrier_;

  alignas(kCacheLineSize) std::atomic<std::uint64_t> single_hwm_{0};
  std::vector<std::uint64_t> single_seq_;  // one slot per thread, own-slot access

  struct WorkshareEntry {
    std::uint64_t site = ~std::uint64_t{0};
    std::shared_ptr<void> slot;
  };
  static constexpr std::size_t kWorkshareRing = 4;
  mutable std::mutex slot_mutex_;
  WorkshareEntry workshare_ring_[kWorkshareRing];  // guarded by slot_mutex_

  // Deferred-task accounting for pj::task / pj::taskwait (tasks.hpp): a
  // JoinLatch (count + park epoch + first-error slot), cache-line padded
  // internally so task start/finish traffic never false-shares with the
  // members above.
  friend class TaskAccounting;
  sched::JoinLatch tasks_;
};

/// omp_get_level(): nesting depth of the calling thread — the number of
/// enclosing parallel regions (0 outside any region).
[[nodiscard]] int level() noexcept;

/// omp_get_active_level(): enclosing regions executing with more than one
/// thread.
[[nodiscard]] int active_level() noexcept;

/// omp_get_ancestor_thread_num(level): the calling thread's thread-num
/// within the enclosing region at depth `lvl` (1 = outermost). Returns 0
/// for lvl == 0 (the initial thread) and -1 when `lvl` is out of range —
/// exactly OpenMP's contract. ancestor_thread_num(level()) == the current
/// thread_num().
[[nodiscard]] int ancestor_thread_num(int lvl) noexcept;

/// The team at nesting depth `lvl` on the calling thread's membership
/// stack (1 = outermost, level() = innermost); nullptr out of range.
/// `ancestor_team(lvl)->num_threads()` is omp_get_team_size(lvl).
[[nodiscard]] const Team* ancestor_team(int lvl) noexcept;

/// omp_get_place_num(): the place the calling thread is currently bound to,
/// or -1 outside any bound region. Member threads of a region with a
/// close/spread/master bind see their Team::member_place; with bind none
/// they see the encountering thread's place (inheritance).
[[nodiscard]] int place_num() noexcept;

namespace detail {
/// RAII place binding for one member body: records the place for
/// place_num() and pins the thread's pool-injection affinity to the
/// corresponding locality domain (sched::WorkStealingPool's per-thread
/// shard binding, place modulo the pool's shard count). Restores both on
/// exit — member bodies run on borrowed threads (pool workers, raw
/// spawns), which must leave unbound.
class PlaceScope {
 public:
  explicit PlaceScope(int place) noexcept;
  ~PlaceScope();
  PlaceScope(const PlaceScope&) = delete;
  PlaceScope& operator=(const PlaceScope&) = delete;

 private:
  int saved_place_;
  std::size_t saved_shard_;
};
}  // namespace detail

/// Process-wide counters for the nested-region fork router in region():
/// how inner regions were executed. Monotonic; read deltas in tests.
struct NestedStats {
  std::uint64_t inner_pooled = 0;     ///< inner regions run on pool workers
  std::uint64_t inner_spawned = 0;    ///< pool saturated → raw thread spawn
  std::uint64_t serialized = 0;       ///< capped by max_active_levels/nested
  std::uint64_t members_pooled = 0;   ///< member bodies submitted to the pool
  std::uint64_t members_spawned = 0;  ///< member bodies given raw threads
};
[[nodiscard]] NestedStats nested_stats() noexcept;

namespace detail {
void count_inner_region(bool pooled, std::size_t members) noexcept;
void count_serialized_region() noexcept;
}  // namespace detail

/// Internal handle used by the task layer to tick the team's counter and
/// funnel task-body exceptions back to taskwait. Thin forwarding onto the
/// team's sched::JoinLatch.
class TaskAccounting {
 public:
  static void started(Team& team) noexcept { team.tasks_.add(); }
  static void finished(Team& team) noexcept { team.tasks_.done(); }
  /// Batch spellings for chunked fan-out (taskloop): all chunks enter the
  /// count in one RMW, and a runner retires every chunk it executed with a
  /// single done_n (one epoch RMW + at most one wake per batch).
  static void started_n(Team& team, std::size_t n) noexcept {
    team.tasks_.add(n);
  }
  static void finished_n(Team& team, std::size_t n) noexcept {
    team.tasks_.done_n(n);
  }
  static std::size_t outstanding(const Team& team) noexcept {
    return team.tasks_.outstanding();
  }
  static void store_error(Team& team, std::exception_ptr e) noexcept {
    team.tasks_.capture_error(std::move(e));
  }
  [[nodiscard]] static std::exception_ptr take_error(Team& team) noexcept {
    return team.tasks_.take_error();
  }
  /// Wait for all deferred tasks, helping `pool` drain (taskwait).
  static void wait_idle(Team& team, sched::WorkStealingPool& pool) {
    team.tasks_.wait(&pool);
  }
};

}  // namespace parc::pj
