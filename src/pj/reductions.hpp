// Pyjama reductions — including the object-oriented reductions that were
// project 5's research contribution and §VI's example of teaching feeding
// back into research.
//
// OpenMP's `reduction` clause covers a fixed operator set over scalars.
// Pyjama generalises it: a *reducer* is any type with
//
//   using value_type = ...;
//   value_type identity() const;
//   void combine(value_type& into, value_type&& from) const;
//
// The reduce() driver gives each team thread a private accumulator seeded
// with identity(), workshares the index space, then combines partials in
// ascending thread order — deterministic for a fixed schedule/thread count,
// and correct for any associative combine (commutativity not required).
//
// The builtin scalar reducers reproduce OpenMP's set; SetUnion, MapMerge,
// VectorConcat, TopK and HistogramReducer are the "larger wealth of
// reductions ... for example merging collections" the paper describes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <type_traits>
#include <utility>
#include <vector>

#include "pj/parallel.hpp"
#include "pj/schedule.hpp"
#include "support/check.hpp"

namespace parc::pj {

// ---------------------------------------------------------------------------
// Builtin scalar reducers (the OpenMP operator set).
// ---------------------------------------------------------------------------

template <typename T>
struct SumReducer {
  using value_type = T;
  [[nodiscard]] value_type identity() const { return T{}; }
  void combine(value_type& into, value_type&& from) const { into += from; }
};

template <typename T>
struct ProductReducer {
  using value_type = T;
  [[nodiscard]] value_type identity() const { return T{1}; }
  void combine(value_type& into, value_type&& from) const { into *= from; }
};

template <typename T>
struct MinReducer {
  using value_type = T;
  [[nodiscard]] value_type identity() const {
    return std::numeric_limits<T>::max();
  }
  void combine(value_type& into, value_type&& from) const {
    into = std::min(into, from);
  }
};

template <typename T>
struct MaxReducer {
  using value_type = T;
  [[nodiscard]] value_type identity() const {
    return std::numeric_limits<T>::lowest();
  }
  void combine(value_type& into, value_type&& from) const {
    into = std::max(into, from);
  }
};

struct LogicalAndReducer {
  using value_type = bool;
  [[nodiscard]] value_type identity() const { return true; }
  void combine(value_type& into, value_type&& from) const {
    into = into && from;
  }
};

struct LogicalOrReducer {
  using value_type = bool;
  [[nodiscard]] value_type identity() const { return false; }
  void combine(value_type& into, value_type&& from) const {
    into = into || from;
  }
};

template <typename T>
struct BitAndReducer {
  static_assert(std::is_integral_v<T>);
  using value_type = T;
  [[nodiscard]] value_type identity() const { return static_cast<T>(~T{}); }
  void combine(value_type& into, value_type&& from) const { into &= from; }
};

template <typename T>
struct BitOrReducer {
  static_assert(std::is_integral_v<T>);
  using value_type = T;
  [[nodiscard]] value_type identity() const { return T{}; }
  void combine(value_type& into, value_type&& from) const { into |= from; }
};

template <typename T>
struct BitXorReducer {
  static_assert(std::is_integral_v<T>);
  using value_type = T;
  [[nodiscard]] value_type identity() const { return T{}; }
  void combine(value_type& into, value_type&& from) const { into ^= from; }
};

// ---------------------------------------------------------------------------
// Object reducers (Pyjama's extension; project 5).
// ---------------------------------------------------------------------------

/// Merge std::set partials (collection-merge reduction).
template <typename T, typename Compare = std::less<T>>
struct SetUnionReducer {
  using value_type = std::set<T, Compare>;
  [[nodiscard]] value_type identity() const { return {}; }
  void combine(value_type& into, value_type&& from) const {
    into.merge(from);
  }
};

/// Merge std::map partials; colliding keys combine with ValueCombine.
template <typename K, typename V, typename ValueCombine = std::plus<V>>
struct MapMergeReducer {
  using value_type = std::map<K, V>;
  ValueCombine value_combine{};
  [[nodiscard]] value_type identity() const { return {}; }
  void combine(value_type& into, value_type&& from) const {
    for (auto& [k, v] : from) {
      auto [it, inserted] = into.try_emplace(k, std::move(v));
      if (!inserted) it->second = value_combine(it->second, v);
    }
  }
};

/// Concatenate vector partials. Combined in thread order, so with a static
/// schedule and chunk covering each thread's whole range the result equals
/// the sequential order of per-index appends within each thread block.
template <typename T>
struct VectorConcatReducer {
  using value_type = std::vector<T>;
  [[nodiscard]] value_type identity() const { return {}; }
  void combine(value_type& into, value_type&& from) const {
    into.insert(into.end(), std::make_move_iterator(from.begin()),
                std::make_move_iterator(from.end()));
  }
};

/// Keep the k smallest elements under Compare (k-best reduction).
template <typename T, typename Compare = std::less<T>>
struct TopKReducer {
  using value_type = std::vector<T>;  // kept sorted ascending by Compare
  std::size_t k;
  Compare less{};

  explicit TopKReducer(std::size_t k_arg) : k(k_arg) { PARC_CHECK(k > 0); }

  [[nodiscard]] value_type identity() const { return {}; }

  /// Element-wise accumulate helper for use inside loop bodies.
  void insert(value_type& acc, T item) const {
    auto pos = std::lower_bound(acc.begin(), acc.end(), item, less);
    acc.insert(pos, std::move(item));
    if (acc.size() > k) acc.pop_back();
  }

  void combine(value_type& into, value_type&& from) const {
    value_type merged;
    merged.reserve(std::min(into.size() + from.size(), k));
    std::merge(std::make_move_iterator(into.begin()),
               std::make_move_iterator(into.end()),
               std::make_move_iterator(from.begin()),
               std::make_move_iterator(from.end()),
               std::back_inserter(merged), less);
    if (merged.size() > k) merged.resize(k);
    into = std::move(merged);
  }
};

/// Fixed-bin counting histogram.
struct HistogramReducer {
  using value_type = std::vector<std::uint64_t>;
  std::size_t bins;

  explicit HistogramReducer(std::size_t bins_arg) : bins(bins_arg) {
    PARC_CHECK(bins > 0);
  }

  [[nodiscard]] value_type identity() const { return value_type(bins, 0); }

  void count(value_type& acc, std::size_t bin) const {
    PARC_DCHECK(bin < bins);
    ++acc[bin];
  }

  void combine(value_type& into, value_type&& from) const {
    PARC_CHECK(into.size() == from.size());
    for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
  }
};

/// Ad-hoc reducer from identity value + combine lambda, for one-off
/// user-defined reductions without a named struct.
template <typename T, typename Combine>
struct LambdaReducer {
  using value_type = T;
  T identity_value;
  Combine combiner;
  [[nodiscard]] value_type identity() const { return identity_value; }
  void combine(value_type& into, value_type&& from) const {
    combiner(into, std::move(from));
  }
};

template <typename T, typename Combine>
LambdaReducer<T, Combine> make_reducer(T identity, Combine combine) {
  return LambdaReducer<T, Combine>{std::move(identity), std::move(combine)};
}

// ---------------------------------------------------------------------------
// Drivers.
// ---------------------------------------------------------------------------

/// Reduction inside an existing region. `body(i, local)` accumulates index i
/// into the thread-private accumulator `local`. Partials are combined in
/// ascending thread order into the returned value on every thread (all team
/// threads return the same result, like an OpenMP reduction variable after
/// the join).
template <typename Reducer, typename F>
typename Reducer::value_type reduce_in_team(Team& team, std::int64_t begin,
                                            std::int64_t end,
                                            const Reducer& reducer, F&& body,
                                            ForOptions opts = {}) {
  using V = typename Reducer::value_type;
  // Boxing each accumulator sidesteps std::vector<bool> proxies and gives
  // every thread-private partial its own cache-line-ish object.
  struct Cell {
    V value;
  };
  struct Slot {
    // One accumulator per team thread; threads touch only their own cell
    // until the post-barrier combine, so no lock is needed.
    std::vector<Cell> partials;
    V result;
  };
  auto slot = team.workshare<Slot>([&] {
    auto s = std::make_shared<Slot>();
    s->partials.reserve(static_cast<std::size_t>(team.num_threads()));
    for (int i = 0; i < team.num_threads(); ++i) {
      s->partials.push_back(Cell{reducer.identity()});
    }
    return s;
  });

  const auto tid = static_cast<std::size_t>(team.thread_num());
  V& local = slot->partials[tid].value;
  for_loop(
      team, begin, end, [&](std::int64_t i) { body(i, local); }, opts,
      /*nowait=*/false);

  // All iterations done (barrier above). Thread 0 folds in fixed order.
  team.master([&] {
    V acc = reducer.identity();
    for (auto& p : slot->partials) reducer.combine(acc, std::move(p.value));
    slot->result = std::move(acc);
  });
  team.barrier();
  return slot->result;
}

/// Combined parallel + reduce over [begin, end).
template <typename Reducer, typename F>
typename Reducer::value_type reduce(std::size_t num_threads,
                                    std::int64_t begin, std::int64_t end,
                                    const Reducer& reducer, F&& body,
                                    ForOptions opts = {}) {
  typename Reducer::value_type out = reducer.identity();
  region(num_threads, [&](Team& team) {
    auto r = reduce_in_team(team, begin, end, reducer, body, opts);
    team.master([&] { out = std::move(r); });
  });
  return out;
}

template <typename Reducer, typename F>
typename Reducer::value_type reduce(std::int64_t begin, std::int64_t end,
                                    const Reducer& reducer, F&& body,
                                    ForOptions opts = {}) {
  return reduce(default_num_threads(), begin, end, reducer,
                std::forward<F>(body), opts);
}

}  // namespace parc::pj
