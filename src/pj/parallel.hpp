// Pyjama parallel constructs: `region` (omp parallel), worksharing loops
// (omp for with schedules), and combined parallel-for.
//
// A region forks a fresh team — the calling thread participates as thread 0,
// the classic fork-join model. Exceptions thrown by any team thread are
// captured and the first one is rethrown on the calling thread after the
// join (OpenMP leaves this undefined; Pyjama's documented behaviour is to
// propagate).
//
// Regions nest: a team member that opens an inner region becomes thread 0
// of a fresh inner team, and the thread's membership stack (Team::Ancestry)
// records the whole chain for level()/ancestor_thread_num() introspection.
// Where the extra threads come from depends on depth:
//  - an *outermost* region (level() == 0) spawns joined std::threads, so a
//    program's top-level fork never competes with its own task pool;
//  - an *inner* region routes member bodies through the shared
//    sched::WorkStealingPool as exclusive jobs after reserving blocking
//    capacity (one unit per member that may sit at a team barrier, plus one
//    when the encountering thread is itself a pool worker). Member 0 — the
//    encountering thread — joins the inner team through a pool-helped
//    JoinLatch wait, so a worker opening a region keeps draining ordinary
//    work while its inner team runs. If the reservation fails (pool
//    saturated with other teams), the region falls back to spawning raw
//    threads — counted in NestedStats and traced as kSpawnFallback — rather
//    than risk more blocked members than workers;
//  - a region past the settings cap (max_active_levels / set_nested(false))
//    is *serialized*: it still runs as a real Team of one (barriers,
//    single, tasks, introspection all behave), just on the calling thread.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pj/schedule.hpp"
#include "sched/completion.hpp"
#include "pj/settings.hpp"
#include "pj/tasks.hpp"
#include "pj/team.hpp"
#include "support/check.hpp"

namespace parc::pj {

namespace detail {

/// Fork `team`'s members 1..N-1 as joined std::threads; the calling thread
/// runs member 0. Used for outermost regions and as the inner-region
/// fallback when the pool has no blocking capacity left. Members inherit
/// the encountering thread's membership stack (empty at top level).
template <typename Member>
void spawn_members(Team& team, Member& member) {
  const auto num_threads = static_cast<std::size_t>(team.num_threads());
  const Team::Ancestry ancestry = Team::capture_ancestry();
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    threads.emplace_back([&member, &ancestry, i] {
      Team::AncestryScope chain(ancestry);
      member(static_cast<int>(i));
    });
  }
  member(0);
  for (auto& t : threads) t.join();
}

/// Fork an inner region's members through the shared task pool. Each member
/// body is an *exclusive* pool job (only ever started on a fresh top-level
/// worker frame — a helping waiter must never bury a team member under
/// another blocked frame on the same stack), admitted only after reserving
/// blocking capacity: one unit per submitted member, plus one for the
/// encountering thread when it is itself a worker of this pool, so the
/// number of workers that can end up waiting inside member frames never
/// reaches the worker count and a queued member always finds a free worker.
/// Member 0 runs inline; its join helps drain the pool (never parks).
/// When the reservation fails the region falls back to spawn_members,
/// counted and traced so saturation is visible.
template <typename Member>
void run_inner_members(Team& team, Member& member, std::uint64_t region_id) {
  auto& pool = task_pool();
  const auto helpers = static_cast<std::size_t>(team.num_threads()) - 1;
  const std::size_t tokens =
      helpers + (sched::WorkStealingPool::current_pool() == &pool ? 1 : 0);
  if (!pool.try_reserve_capacity(tokens)) {
    count_inner_region(/*pooled=*/false, helpers);
    if (obs::tracing() && region_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kSpawnFallback, region_id, helpers);
    }
    spawn_members(team, member);
    return;
  }
  count_inner_region(/*pooled=*/true, helpers);
  const Team::Ancestry ancestry = Team::capture_ancestry();
  sched::JoinLatch join;
  join.add(helpers);
  for (std::size_t i = 1; i <= helpers; ++i) {
    // Places soft binding: a bound member's exclusive job lands on its
    // place's locality domain, so the shard's own workers (checking their
    // exclusive queue first) prefer it; any worker may still drain it.
    const int place = team.member_place(i);
    pool.submit_exclusive(
        [&member, &ancestry, &join, i] {
          {
            Team::AncestryScope chain(ancestry);
            member(static_cast<int>(i));
          }
          join.done();
        },
        place >= 0 ? static_cast<std::size_t>(place)
                   : sched::WorkStealingPool::kAnyShard);
  }
  member(0);
  join.wait(&pool);  // pool-helped inner join
  pool.release_capacity(tokens);
}

}  // namespace detail

/// Execute `body(team)` on a team of `num_threads` threads with an explicit
/// proc_bind clause (`#pragma omp parallel proc_bind(...)`). Returns when
/// all team members have finished (implicit barrier, threads joined). May
/// be called from inside another region's body — see the nesting model in
/// the header comment. Each member runs under its Team::member_place
/// binding for the body's duration: pj::place_num() reports it, and the
/// thread's pool-injection affinity is pinned to the matching locality
/// domain (so pj::task spawned by a bound member stays in its domain).
template <typename F>
void region(std::size_t num_threads, ProcBind bind, F&& body) {
  PARC_CHECK(num_threads >= 1);
  const int enclosing_level = level();
  const int enclosing_active = active_level();
  // Settings cap: a region that would exceed max_active_levels runs
  // serialized — a real team, one thread.
  if (num_threads > 1 && enclosing_active >= max_active_levels()) {
    detail::count_serialized_region();
    num_threads = 1;
  }
  Team team(num_threads, enclosing_level + 1,
            enclosing_active + (num_threads > 1 ? 1 : 0));
  // Places: the bind clause plus the encountering thread's place at fork
  // time; nested regions inherit through place_num() (a bound member's own
  // place becomes its inner region's origin).
  team.set_places_binding(bind, place_num());
  sched::FirstError first_error;  // lock-free first-failure capture

  // One region id shared by every member's begin/end pair, so a viewer can
  // correlate the fork/join across team threads; the fork event links the
  // child region to its parent so traces can rebuild the region tree.
  const std::uint64_t region_id = obs::tracing() ? obs::next_id() : 0;
  if (region_id != 0) [[unlikely]] {
    team.set_trace_region_id(region_id);
    const Team* parent = Team::current();
    obs::emit(obs::EventKind::kRegionFork,
              parent != nullptr ? parent->trace_region_id() : 0, region_id);
  }

  auto member = [&](int index) {
    detail::PlaceScope place_scope(
        team.member_place(static_cast<std::size_t>(index)));
    Team::MembershipScope scope(team, index);
    if (obs::tracing() && region_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kRegionBegin, region_id,
                static_cast<std::uint64_t>(team.num_threads()));
    }
    try {
      body(team);
    } catch (...) {
      first_error.capture(std::current_exception());
    }
    // OpenMP's region-end barrier completes deferred tasks; runs even when
    // the body threw so no task can outlive the team.
    try {
      taskwait(team);
    } catch (...) {
      first_error.capture(std::current_exception());
    }
    if (obs::tracing() && region_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kRegionEnd, region_id,
                static_cast<std::uint64_t>(index));
    }
  };

  if (num_threads == 1) {
    // Serialized / single-thread team: the encountering thread is the whole
    // team. Still a real membership (level, barriers, taskwait).
    member(0);
  } else if (enclosing_level > 0) {
    detail::run_inner_members(team, member, region_id);
  } else {
    detail::spawn_members(team, member);
  }

  if (auto err = first_error.take()) std::rethrow_exception(err);
}

/// Region with the process default bind policy (set_proc_bind; none unless
/// configured, which is exactly the pre-places behaviour).
template <typename F>
void region(std::size_t num_threads, F&& body) {
  region(num_threads, proc_bind(), std::forward<F>(body));
}

/// Region with the process default team size.
template <typename F>
void region(F&& body) {
  region(default_num_threads(), std::forward<F>(body));
}

/// Worksharing loop inside an existing region: every team thread must call
/// this with identical arguments (like encountering `#pragma omp for`).
/// `body(i)` runs once for every i in [begin, end); implicit barrier at the
/// end unless nowait.
///
/// The chunk dispenser is published per-construct through the team's
/// workshare ring (see Team::workshare), so a nowait loop may be followed
/// by further worksharing constructs — or a whole inner parallel region —
/// without an intervening barrier.
template <typename F>
void for_loop(Team& team, std::int64_t begin, std::int64_t end, F&& body,
              ForOptions opts = {}, bool nowait = false) {
  auto source = team.workshare<ChunkSource>([&] {
    return std::make_shared<ChunkSource>(
        begin, end, static_cast<std::size_t>(team.num_threads()), opts);
  });

  std::size_t local_step = 0;
  const auto tid = static_cast<std::size_t>(team.thread_num());
  while (auto chunk = source->next(tid, local_step)) {
    for (std::int64_t i = chunk->begin; i < chunk->end; ++i) body(i);
  }
  if (!nowait) team.barrier();
}

/// Combined `parallel for`: forks a team and workshares [begin, end).
///
/// num_threads == 1 contract: the degenerate case is a *real region* with a
/// team of one, not a bare loop — inside `body`, Team::current() is
/// non-null, level() is one deeper than the caller's, thread_num() is 0 and
/// num_threads() is 1, and deferred pj::task work is retired before the
/// call returns, exactly as for any other team size. Iterations run
/// in order on the calling thread (every schedule degenerates on one
/// thread); the chunk dispenser is skipped as an optimisation.
template <typename F>
void parallel_for(std::size_t num_threads, std::int64_t begin,
                  std::int64_t end, F&& body, ForOptions opts = {}) {
  if (begin >= end) return;
  if (num_threads == 1) {
    region(1, [&](Team&) {
      for (std::int64_t i = begin; i < end; ++i) body(i);
    });
    return;
  }
  region(num_threads, [&](Team& team) {
    for_loop(team, begin, end, body, opts, /*nowait=*/true);
  });
}

template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, F&& body,
                  ForOptions opts = {}) {
  parallel_for(default_num_threads(), begin, end, std::forward<F>(body), opts);
}

/// Collapsed 2-D parallel loop (`collapse(2)`): the (rows x cols) iteration
/// space is flattened into one index space so scheduling balances across
/// both dimensions — important when rows are few but columns are many.
/// body(r, c) runs once for every pair in [r0, r1) x [c0, c1).
template <typename F>
void parallel_for_2d(std::size_t num_threads, std::int64_t r0, std::int64_t r1,
                     std::int64_t c0, std::int64_t c1, F&& body,
                     ForOptions opts = {}) {
  if (r0 >= r1 || c0 >= c1) return;
  const std::int64_t rows = r1 - r0;
  const std::int64_t cols = c1 - c0;
  parallel_for(
      num_threads, 0, rows * cols,
      [&](std::int64_t flat) {
        body(r0 + flat / cols, c0 + flat % cols);
      },
      opts);
}

template <typename F>
void parallel_for_2d(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                     std::int64_t c1, F&& body, ForOptions opts = {}) {
  parallel_for_2d(default_num_threads(), r0, r1, c0, c1,
                  std::forward<F>(body), opts);
}

}  // namespace parc::pj
