// Pyjama parallel constructs: `region` (omp parallel), worksharing loops
// (omp for with schedules), and combined parallel-for.
//
// A region forks a fresh team — the calling thread participates as thread 0
// and `size-1` joined std::threads are spawned for the rest, the classic
// fork-join model. Exceptions thrown by any team thread are captured and the
// first one is rethrown on the calling thread after the join (OpenMP leaves
// this undefined; Pyjama's documented behaviour is to propagate).
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pj/schedule.hpp"
#include "sched/completion.hpp"
#include "pj/settings.hpp"
#include "pj/tasks.hpp"
#include "pj/team.hpp"
#include "support/check.hpp"

namespace parc::pj {

/// Execute `body(team)` on a team of `num_threads` threads. Returns when all
/// team members have finished (implicit barrier, threads joined).
template <typename F>
void region(std::size_t num_threads, F&& body) {
  PARC_CHECK(num_threads >= 1);
  Team team(num_threads);
  sched::FirstError first_error;  // lock-free first-failure capture

  // One region id shared by every member's begin/end pair, so a viewer can
  // correlate the fork/join across team threads.
  const std::uint64_t region_id = obs::tracing() ? obs::next_id() : 0;

  auto member = [&](int index) {
    Team::MembershipScope scope(team, index);
    if (obs::tracing() && region_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kRegionBegin, region_id,
                static_cast<std::uint64_t>(num_threads));
    }
    try {
      body(team);
    } catch (...) {
      first_error.capture(std::current_exception());
    }
    // OpenMP's region-end barrier completes deferred tasks; runs even when
    // the body threw so no task can outlive the team.
    try {
      taskwait(team);
    } catch (...) {
      first_error.capture(std::current_exception());
    }
    if (obs::tracing() && region_id != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kRegionEnd, region_id,
                static_cast<std::uint64_t>(index));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (std::size_t i = 1; i < num_threads; ++i) {
    threads.emplace_back(member, static_cast<int>(i));
  }
  member(0);
  for (auto& t : threads) t.join();

  if (auto err = first_error.take()) std::rethrow_exception(err);
}

/// Region with the process default team size.
template <typename F>
void region(F&& body) {
  region(default_num_threads(), std::forward<F>(body));
}

/// Worksharing loop inside an existing region: every team thread must call
/// this with identical arguments (like encountering `#pragma omp for`).
/// `body(i)` runs once for every i in [begin, end); implicit barrier at the
/// end unless nowait.
///
/// nowait caveat (as in OpenMP): a nowait loop must not be followed by
/// another worksharing construct on the same team without an intervening
/// barrier, because the shared dispenser slot is reused.
template <typename F>
void for_loop(Team& team, std::int64_t begin, std::int64_t end, F&& body,
              ForOptions opts = {}, bool nowait = false) {
  // The single() winner installs the shared chunk dispenser; single's
  // implicit barrier publishes it to every team member before any iterates.
  team.single([&] {
    team.set_workshare_slot(std::make_shared<ChunkSource>(
        begin, end, static_cast<std::size_t>(team.num_threads()), opts));
  });
  auto source = std::static_pointer_cast<ChunkSource>(team.workshare_slot());
  PARC_CHECK(source != nullptr);
  // With nowait, a thread that finishes its share could reach a following
  // worksharing construct and overwrite the team slot before a slower
  // sibling has fetched it; this barrier makes the fetch safe either way.
  team.barrier();

  std::size_t local_step = 0;
  const auto tid = static_cast<std::size_t>(team.thread_num());
  while (auto chunk = source->next(tid, local_step)) {
    for (std::int64_t i = chunk->begin; i < chunk->end; ++i) body(i);
  }
  if (!nowait) team.barrier();
}

/// Combined `parallel for`: forks a team and workshares [begin, end).
template <typename F>
void parallel_for(std::size_t num_threads, std::int64_t begin,
                  std::int64_t end, F&& body, ForOptions opts = {}) {
  if (begin >= end) return;
  if (num_threads == 1) {
    // Degenerate team: no fork, no barriers, no chunk dispenser. Every
    // schedule degenerates to in-order iteration on a team of one, so this
    // is observably identical and skips the whole team setup cost.
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  region(num_threads, [&](Team& team) {
    for_loop(team, begin, end, body, opts, /*nowait=*/true);
  });
}

template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, F&& body,
                  ForOptions opts = {}) {
  parallel_for(default_num_threads(), begin, end, std::forward<F>(body), opts);
}

/// Collapsed 2-D parallel loop (`collapse(2)`): the (rows x cols) iteration
/// space is flattened into one index space so scheduling balances across
/// both dimensions — important when rows are few but columns are many.
/// body(r, c) runs once for every pair in [r0, r1) x [c0, c1).
template <typename F>
void parallel_for_2d(std::size_t num_threads, std::int64_t r0, std::int64_t r1,
                     std::int64_t c0, std::int64_t c1, F&& body,
                     ForOptions opts = {}) {
  if (r0 >= r1 || c0 >= c1) return;
  const std::int64_t rows = r1 - r0;
  const std::int64_t cols = c1 - c0;
  parallel_for(
      num_threads, 0, rows * cols,
      [&](std::int64_t flat) {
        body(r0 + flat / cols, c0 + flat % cols);
      },
      opts);
}

template <typename F>
void parallel_for_2d(std::int64_t r0, std::int64_t r1, std::int64_t c0,
                     std::int64_t c1, F&& body, ForOptions opts = {}) {
  parallel_for_2d(default_num_threads(), r0, r1, c0, c1,
                  std::forward<F>(body), opts);
}

}  // namespace parc::pj
