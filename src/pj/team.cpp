#include "pj/team.hpp"

#include <unordered_map>
#include <utility>

#include "sched/thread_pool.hpp"

namespace parc::pj {

namespace {
// The calling thread's current place (place_num()); -1 = unbound.
thread_local int t_place = -1;

// Membership stack of the calling thread, outermost team first. The
// innermost entry is mirrored into `t_team`/`t_index` so the hot accessors
// (thread_num on every barrier/single) stay two plain TLS loads.
thread_local Team::Ancestry t_stack;
thread_local const Team* t_team = nullptr;
thread_local int t_index = -1;

void refresh_mirror() noexcept {
  if (t_stack.empty()) {
    t_team = nullptr;
    t_index = -1;
  } else {
    t_team = t_stack.back().team;
    t_index = t_stack.back().index;
  }
}

// Nested-region fork-router counters (see NestedStats). Process-wide
// monotonic; relaxed — counts, not synchronisation.
std::atomic<std::uint64_t> g_inner_pooled{0};
std::atomic<std::uint64_t> g_inner_spawned{0};
std::atomic<std::uint64_t> g_serialized{0};
std::atomic<std::uint64_t> g_members_pooled{0};
std::atomic<std::uint64_t> g_members_spawned{0};
}  // namespace

Team::Team(std::size_t size, int level, int active_level)
    : size_(size),
      level_(level),
      active_level_(active_level >= 0 ? active_level : (size > 1 ? 1 : 0)),
      barrier_(size),
      single_seq_(size, 0) {
  PARC_CHECK(size >= 1);
  PARC_CHECK(level >= 1);
}

Team::~Team() {
  // A deferred task outliving its team would touch a destroyed object;
  // OpenMP puts an implicit taskwait at the region end, and pj::region does
  // the same — this check catches tasks spawned outside that machinery.
  PARC_CHECK_MSG(tasks_.outstanding() == 0,
                 "team destroyed with unfinished pj::task tasks");
}

int Team::thread_num() const {
  if (t_team == this) return t_index;
  // Not the innermost team: the caller may legitimately hold an outer
  // membership (e.g. querying an ancestor team object directly).
  for (auto it = t_stack.rbegin(); it != t_stack.rend(); ++it) {
    if (it->team == this) return it->index;
  }
  PARC_CHECK_MSG(false, "thread_num() called from a thread outside this team");
  return -1;
}

const Team* Team::current() noexcept { return t_team; }

Team::Ancestry Team::capture_ancestry() { return t_stack; }

Team::MembershipScope::MembershipScope(const Team& team, int index) {
  t_stack.push_back(MemberRef{&team, index});
  refresh_mirror();
}

Team::MembershipScope::~MembershipScope() {
  PARC_DCHECK(!t_stack.empty());
  t_stack.pop_back();
  refresh_mirror();
}

Team::AncestryScope::AncestryScope(const Ancestry& ancestry)
    : saved_(std::move(t_stack)) {
  t_stack = ancestry;
  refresh_mirror();
}

Team::AncestryScope::~AncestryScope() {
  t_stack = std::move(saved_);
  refresh_mirror();
}

void Team::publish_workshare(std::uint64_t site, std::shared_ptr<void> slot) {
  std::scoped_lock lock(slot_mutex_);
  WorkshareEntry& e = workshare_ring_[site % kWorkshareRing];
  e.site = site;
  e.slot = std::move(slot);
}

std::shared_ptr<void> Team::fetch_workshare(std::uint64_t site) const {
  std::scoped_lock lock(slot_mutex_);
  const WorkshareEntry& e = workshare_ring_[site % kWorkshareRing];
  return e.site == site ? e.slot : nullptr;
}

int level() noexcept { return static_cast<int>(t_stack.size()); }

int active_level() noexcept {
  return t_stack.empty() ? 0 : t_stack.back().team->active_level();
}

int ancestor_thread_num(int lvl) noexcept {
  if (lvl == 0) return 0;  // the initial thread
  if (lvl < 0 || static_cast<std::size_t>(lvl) > t_stack.size()) return -1;
  return t_stack[static_cast<std::size_t>(lvl) - 1].index;
}

const Team* ancestor_team(int lvl) noexcept {
  if (lvl < 1 || static_cast<std::size_t>(lvl) > t_stack.size()) {
    return nullptr;
  }
  return t_stack[static_cast<std::size_t>(lvl) - 1].team;
}

int place_num() noexcept { return t_place; }

int Team::member_place(std::size_t index) const noexcept {
  if (bind_ == ProcBind::none) return origin_place_;
  const auto nplaces = static_cast<std::size_t>(num_places());
  const auto p0 = static_cast<std::size_t>(origin_place_ >= 0
                                               ? origin_place_
                                               : 0);
  switch (bind_) {
    case ProcBind::master:
      return static_cast<int>(p0 % nplaces);
    case ProcBind::close: {
      // Members per place when oversubscribed; 1 otherwise, so consecutive
      // members land in consecutive places starting at the origin.
      const std::size_t group = (size_ + nplaces - 1) / nplaces;
      return static_cast<int>((p0 + index / group) % nplaces);
    }
    case ProcBind::spread:
      return static_cast<int>((p0 + index * nplaces / size_) % nplaces);
    case ProcBind::none:
      break;
  }
  return origin_place_;
}

namespace detail {
PlaceScope::PlaceScope(int place) noexcept
    : saved_place_(t_place),
      saved_shard_(sched::WorkStealingPool::thread_bound_shard()) {
  t_place = place;
  sched::WorkStealingPool::bind_thread_to_shard(
      place >= 0 ? static_cast<std::size_t>(place)
                 : sched::WorkStealingPool::kAnyShard);
}

PlaceScope::~PlaceScope() {
  t_place = saved_place_;
  sched::WorkStealingPool::bind_thread_to_shard(saved_shard_);
}
}  // namespace detail

NestedStats nested_stats() noexcept {
  NestedStats s;
  s.inner_pooled = g_inner_pooled.load(std::memory_order_relaxed);
  s.inner_spawned = g_inner_spawned.load(std::memory_order_relaxed);
  s.serialized = g_serialized.load(std::memory_order_relaxed);
  s.members_pooled = g_members_pooled.load(std::memory_order_relaxed);
  s.members_spawned = g_members_spawned.load(std::memory_order_relaxed);
  return s;
}

namespace detail {
void count_inner_region(bool pooled, std::size_t members) noexcept {
  if (pooled) {
    g_inner_pooled.fetch_add(1, std::memory_order_relaxed);
    g_members_pooled.fetch_add(members, std::memory_order_relaxed);
  } else {
    g_inner_spawned.fetch_add(1, std::memory_order_relaxed);
    g_members_spawned.fetch_add(members, std::memory_order_relaxed);
  }
}

void count_serialized_region() noexcept {
  g_serialized.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

std::mutex& Team::critical_mutex(const std::string& name) {
  // Process-global registry, exactly mirroring OpenMP's named criticals.
  // The registry mutex only guards the map; user code runs under the
  // per-name mutex returned from here.
  static std::mutex registry_mutex;
  static std::unordered_map<std::string, std::unique_ptr<std::mutex>>* registry =
      new std::unordered_map<std::string, std::unique_ptr<std::mutex>>();
  std::scoped_lock lock(registry_mutex);
  auto& slot = (*registry)[name];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

void Team::sections(const std::vector<std::function<void()>>& bodies,
                    bool nowait) {
  // Each section is a claim site drawn from the same monotonic per-thread
  // sequence as single(): the first thread to claim a site runs that body,
  // which is OpenMP's first-come distribution for `sections`.
  const auto tid = static_cast<std::size_t>(thread_num());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const std::uint64_t site = single_seq_[tid]++;
    if (claim_site(site)) bodies[i]();
  }
  if (!nowait) barrier();
}

}  // namespace parc::pj
