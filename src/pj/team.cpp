#include "pj/team.hpp"

#include <unordered_map>

namespace parc::pj {

namespace {
thread_local const Team* t_team = nullptr;
thread_local int t_index = -1;
}  // namespace

Team::Team(std::size_t size)
    : size_(size), barrier_(size), single_seq_(size, 0) {
  PARC_CHECK(size >= 1);
}

Team::~Team() {
  // A deferred task outliving its team would touch a destroyed object;
  // OpenMP puts an implicit taskwait at the region end, and pj::region does
  // the same — this check catches tasks spawned outside that machinery.
  PARC_CHECK_MSG(tasks_.outstanding() == 0,
                 "team destroyed with unfinished pj::task tasks");
}

int Team::thread_num() const {
  PARC_CHECK_MSG(t_team == this,
                 "thread_num() called from a thread outside this team");
  return t_index;
}

const Team* Team::current() noexcept { return t_team; }

Team::MembershipScope::MembershipScope(const Team& team, int index) noexcept
    : prev_team_(t_team), prev_index_(t_index) {
  t_team = &team;
  t_index = index;
}

Team::MembershipScope::~MembershipScope() {
  t_team = prev_team_;
  t_index = prev_index_;
}

std::mutex& Team::critical_mutex(const std::string& name) {
  // Process-global registry, exactly mirroring OpenMP's named criticals.
  // The registry mutex only guards the map; user code runs under the
  // per-name mutex returned from here.
  static std::mutex registry_mutex;
  static std::unordered_map<std::string, std::unique_ptr<std::mutex>>* registry =
      new std::unordered_map<std::string, std::unique_ptr<std::mutex>>();
  std::scoped_lock lock(registry_mutex);
  auto& slot = (*registry)[name];
  if (!slot) slot = std::make_unique<std::mutex>();
  return *slot;
}

void Team::sections(const std::vector<std::function<void()>>& bodies,
                    bool nowait) {
  // Each section is a claim site drawn from the same monotonic per-thread
  // sequence as single(): the first thread to claim a site runs that body,
  // which is OpenMP's first-come distribution for `sections`.
  const auto tid = static_cast<std::size_t>(thread_num());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    const std::uint64_t site = single_seq_[tid]++;
    if (claim_site(site)) bodies[i]();
  }
  if (!nowait) barrier();
}

}  // namespace parc::pj
