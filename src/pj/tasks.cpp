#include "pj/tasks.hpp"

#include "pj/settings.hpp"
#include "support/check.hpp"

namespace parc::pj {

sched::WorkStealingPool& task_pool() {
  // Immortal, like ptask::Runtime::global(): deferred tasks must never race
  // static destruction.
  static auto* pool = new sched::WorkStealingPool(
      sched::WorkStealingPool::Config{default_num_threads(), 4, "pj-tasks"});
  return *pool;
}

void task(Team& team, std::function<void()> body) {
  PARC_CHECK(body != nullptr);
  TaskAccounting::started(team);
  task_pool().submit([&team, body = std::move(body)] {
    try {
      body();
    } catch (...) {
      TaskAccounting::store_error(team, std::current_exception());
    }
    TaskAccounting::finished(team);
  });
}

void taskwait(Team& team) {
  if (TaskAccounting::outstanding(team) != 0) {
    task_pool().help_while(
        [&team] { return TaskAccounting::outstanding(team) != 0; });
  }
  // The first caller to observe a task failure rethrows it (Pyjama's
  // documented propagation; OpenMP leaves it undefined).
  if (auto error = TaskAccounting::take_error(team)) {
    std::rethrow_exception(error);
  }
}

std::size_t tasks_outstanding(const Team& team) noexcept {
  return TaskAccounting::outstanding(team);
}

}  // namespace parc::pj
