#include "pj/tasks.hpp"

#include <algorithm>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "pj/settings.hpp"
#include "support/check.hpp"

namespace parc::pj {

namespace {
/// Fresh obs task id with spawn + ready events (pj tasks go from created to
/// queued in one step, so both fire at submit time). 0 while untraced.
std::uint64_t trace_task_spawn() {
  if (obs::tracing()) [[unlikely]] {
    const std::uint64_t id = obs::next_id();
    obs::emit(obs::EventKind::kTaskSpawn, id, 0);
    obs::emit(obs::EventKind::kTaskReady, id, 0);
    return id;
  }
  return 0;
}
}  // namespace

sched::WorkStealingPool& task_pool() {
  // Immortal, like ptask::Runtime::global(): deferred tasks must never race
  // static destruction.
  static auto* pool = new sched::WorkStealingPool(
      sched::WorkStealingPool::Config{default_num_threads(), 4, "pj-tasks"});
  return *pool;
}

void task(Team& team, std::function<void()> body) {
  PARC_CHECK(body != nullptr);
  TaskAccounting::started(team);
  // The id capture keeps the closure within TaskCell::kInlineBytes.
  task_pool().submit([&team, body = std::move(body), tid = trace_task_spawn()] {
    if (obs::tracing() && tid != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kTaskStart, tid, 0);
    }
    try {
      body();
    } catch (...) {
      TaskAccounting::store_error(team, std::current_exception());
    }
    if (obs::tracing() && tid != 0) [[unlikely]] {
      obs::emit(obs::EventKind::kTaskFinish, tid, 0);
    }
    TaskAccounting::finished(team);
  });
}

void taskloop(Team& team, std::int64_t begin, std::int64_t end,
              std::function<void(std::int64_t)> body,
              std::size_t num_tasks) {
  PARC_CHECK(body != nullptr);
  if (begin >= end) return;
  auto& pool = task_pool();
  const auto span_len = static_cast<std::size_t>(end - begin);
  if (num_tasks == 0) num_tasks = pool.worker_count() * 4;
  num_tasks = std::max<std::size_t>(1, std::min(num_tasks, span_len));

  // Chunk closures share one copy of the (type-erased) body; the closure
  // itself — team ref, shared_ptr, two bounds — fits a TaskCell's inline
  // buffer, so the per-chunk submit cost stays allocation-free.
  auto shared_body =
      std::make_shared<const std::function<void(std::int64_t)>>(
          std::move(body));
  auto make_chunk = [&team, &shared_body](std::int64_t b, std::int64_t e) {
    // With the trace id the closure sits at exactly TaskCell::kInlineBytes,
    // so chunk submission stays allocation-free.
    return [&team, body = shared_body, b, e, tid = trace_task_spawn()] {
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskStart, tid, 0);
      }
      try {
        for (std::int64_t i = b; i < e; ++i) (*body)(i);
      } catch (...) {
        TaskAccounting::store_error(team, std::current_exception());
      }
      if (obs::tracing() && tid != 0) [[unlikely]] {
        obs::emit(obs::EventKind::kTaskFinish, tid, 0);
      }
      TaskAccounting::finished(team);
    };
  };
  using ChunkJob = decltype(make_chunk(0, 0));
  std::vector<ChunkJob> chunks;
  chunks.reserve(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) {
    const auto b = begin + static_cast<std::int64_t>(span_len * t / num_tasks);
    const auto e =
        begin + static_cast<std::int64_t>(span_len * (t + 1) / num_tasks);
    if (b == e) continue;
    TaskAccounting::started(team);
    chunks.push_back(make_chunk(b, e));
  }
  pool.submit_bulk(std::span<ChunkJob>(chunks));
}

void taskwait(Team& team) {
  // Helps the task pool until the team's JoinLatch drains: a team thread
  // waiting here runs the very tasks it is waiting for.
  TaskAccounting::wait_idle(team, task_pool());
  // The first caller to observe a task failure rethrows it (Pyjama's
  // documented propagation; OpenMP leaves it undefined).
  if (auto error = TaskAccounting::take_error(team)) {
    std::rethrow_exception(error);
  }
}

std::size_t tasks_outstanding(const Team& team) noexcept {
  return TaskAccounting::outstanding(team);
}

}  // namespace parc::pj
