#include "pj/tasks.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

#include "obs/trace.hpp"
#include "pj/settings.hpp"
#include "support/check.hpp"

namespace parc::pj {

namespace {
/// Fresh obs task id with spawn + ready events (pj tasks go from created to
/// queued in one step, so both fire at submit time). 0 while untraced.
std::uint64_t trace_task_spawn() {
  if (obs::tracing()) [[unlikely]] {
    const std::uint64_t id = obs::next_id();
    obs::emit(obs::EventKind::kTaskSpawn, id, 0);
    obs::emit(obs::EventKind::kTaskReady, id, 0);
    return id;
  }
  return 0;
}
}  // namespace

sched::WorkStealingPool& task_pool() {
  // Immortal, like ptask::Runtime::global(): deferred tasks must never race
  // static destruction. Sharded by the places configuration at first use
  // (Config clamps to the worker count); set_places after this point
  // changes member→place assignment but not the pool's domain layout.
  static auto* pool = [] {
    sched::WorkStealingPool::Config cfg;
    cfg.num_threads = default_num_threads();
    cfg.name = "pj-tasks";
    cfg.shards = num_places();
    return new sched::WorkStealingPool(std::move(cfg));
  }();
  return *pool;
}

void task(Team& team, std::function<void()> body) {
  PARC_CHECK(body != nullptr);
  TaskAccounting::started(team);
  // The id capture keeps the closure within TaskCell::kInlineBytes.
  task_pool().submit(
      [&team, body = std::move(body), tid = trace_task_spawn()] {
        if (obs::tracing() && tid != 0) [[unlikely]] {
          obs::emit(obs::EventKind::kTaskStart, tid, 0);
        }
        try {
          body();
        } catch (...) {
          TaskAccounting::store_error(team, std::current_exception());
        }
        if (obs::tracing() && tid != 0) [[unlikely]] {
          obs::emit(obs::EventKind::kTaskFinish, tid, 0);
        }
        TaskAccounting::finished(team);
      },
      sched::SubmitHint::auto_);
}

void taskloop(Team& team, std::int64_t begin, std::int64_t end,
              std::function<void(std::int64_t)> body,
              std::size_t num_tasks) {
  PARC_CHECK(body != nullptr);
  if (begin >= end) return;
  auto& pool = task_pool();
  const auto span_len = static_cast<std::size_t>(end - begin);
  if (num_tasks == 0) num_tasks = pool.worker_count() * 4;
  num_tasks = std::max<std::size_t>(1, std::min(num_tasks, span_len));

  // Runner/cursor design: instead of materialising one closure per chunk,
  // submit at most one *runner* job per potential executor; runners claim
  // chunks off a shared atomic cursor until the loop drains, then retire
  // everything they ran with one batched JoinLatch::done_n. That is one
  // started_n RMW for the whole loop and one finished_n RMW per runner —
  // not two RMWs (and a possible waiter wake) per chunk — and a chunk that
  // stalls in one runner is simply claimed around by the rest.
  struct LoopState {
    LoopState(Team& t, std::function<void(std::int64_t)> b, std::int64_t bg,
              std::size_t len, std::size_t chunks)
        : team(t),
          body(std::move(b)),
          begin(bg),
          span_len(len),
          num_chunks(chunks) {}
    Team& team;
    const std::function<void(std::int64_t)> body;
    const std::int64_t begin;
    const std::size_t span_len;
    const std::size_t num_chunks;
    /// Padded: the cursor is the only contended word in here.
    alignas(kCacheLineSize) std::atomic<std::size_t> next_chunk{0};
  };
  auto state = std::make_shared<LoopState>(team, std::move(body), begin,
                                           span_len, num_tasks);

  // Every chunk joins the team's count before any runner can retire one, so
  // a concurrent taskwait cannot observe a transient zero mid-loop.
  TaskAccounting::started_n(team, num_tasks);

  // One runner per thread that could execute chunks — pool workers plus
  // team threads helping from taskwait — capped at the chunk count. A
  // runner that finds the cursor exhausted retires nothing and exits.
  const std::size_t runners = std::min(
      num_tasks,
      pool.worker_count() + static_cast<std::size_t>(team.num_threads()));
  pool.submit_n(
      runners,
      [&state](std::size_t) {
        // The shared_ptr is the runner's whole capture: chunk submission
        // stays allocation-free in the TaskCell inline buffer.
        return [state] {
          std::size_t retired = 0;
          for (;;) {
            const std::size_t c =
                state->next_chunk.fetch_add(1, std::memory_order_relaxed);
            if (c >= state->num_chunks) break;
            const auto b = state->begin +
                           static_cast<std::int64_t>(state->span_len * c /
                                                     state->num_chunks);
            const auto e = state->begin +
                           static_cast<std::int64_t>(state->span_len * (c + 1) /
                                                     state->num_chunks);
            // Each chunk remains one traced task, claimed/started/finished
            // on this thread: graphs keep exactly one node per chunk.
            const std::uint64_t tid = trace_task_spawn();
            if (obs::tracing() && tid != 0) [[unlikely]] {
              obs::emit(obs::EventKind::kTaskStart, tid, 0);
            }
            try {
              for (std::int64_t i = b; i < e; ++i) state->body(i);
            } catch (...) {
              TaskAccounting::store_error(state->team,
                                          std::current_exception());
            }
            if (obs::tracing() && tid != 0) [[unlikely]] {
              obs::emit(obs::EventKind::kTaskFinish, tid, 0);
            }
            ++retired;
          }
          TaskAccounting::finished_n(state->team, retired);
        };
      },
      sched::SubmitHint::auto_);
}

void taskwait(Team& team) {
  // Helps the task pool until the team's JoinLatch drains: a team thread
  // waiting here runs the very tasks it is waiting for.
  TaskAccounting::wait_idle(team, task_pool());
  // The first caller to observe a task failure rethrows it (Pyjama's
  // documented propagation; OpenMP leaves it undefined).
  if (auto error = TaskAccounting::take_error(team)) {
    std::rethrow_exception(error);
  }
}

std::size_t tasks_outstanding(const Team& team) noexcept {
  return TaskAccounting::outstanding(team);
}

}  // namespace parc::pj
