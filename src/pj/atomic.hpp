// OpenMP `atomic` construct analogues: tiny wrappers over std::atomic
// fetch-ops so teaching code can spell the four OpenMP atomic flavours
// (read / write / update / capture) explicitly.
#pragma once

#include <atomic>

namespace parc::pj {

template <typename T>
[[nodiscard]] T atomic_read(const std::atomic<T>& v) noexcept {
  return v.load(std::memory_order_seq_cst);  // omp atomic read
}

template <typename T>
void atomic_write(std::atomic<T>& v, T value) noexcept {
  v.store(value, std::memory_order_seq_cst);  // omp atomic write
}

template <typename T>
void atomic_add(std::atomic<T>& v, T delta) noexcept {
  v.fetch_add(delta, std::memory_order_seq_cst);  // omp atomic update
}

template <typename T>
[[nodiscard]] T atomic_capture_add(std::atomic<T>& v, T delta) noexcept {
  return v.fetch_add(delta, std::memory_order_seq_cst);  // omp atomic capture
}

/// General read-modify-write via CAS loop (omp atomic update with an
/// arbitrary pure operator).
template <typename T, typename F>
void atomic_update(std::atomic<T>& v, F&& op) noexcept {
  T expected = v.load(std::memory_order_relaxed);
  while (!v.compare_exchange_weak(expected, op(expected),
                                  std::memory_order_seq_cst,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace parc::pj
