#include "pj/gui_region.hpp"

#include <mutex>
#include <utility>

#include "pj/parallel.hpp"
#include "support/check.hpp"

namespace parc::pj {

namespace {
std::mutex g_edt_mutex;
std::function<void(std::function<void()>)> g_edt_post;  // guarded by g_edt_mutex
}  // namespace

void set_event_dispatcher(std::function<void(std::function<void()>)> post) {
  std::scoped_lock lock(g_edt_mutex);
  g_edt_post = std::move(post);
}

void dispatch_to_edt(std::function<void()> fn) {
  PARC_CHECK(fn != nullptr);
  std::function<void(std::function<void()>)> post;
  {
    std::scoped_lock lock(g_edt_mutex);
    post = g_edt_post;
  }
  if (post) {
    post(std::move(fn));
  } else {
    fn();
  }
}

GuiRegionHandle::GuiRegionHandle(std::thread coordinator)
    : coordinator_(std::move(coordinator)) {}

GuiRegionHandle::~GuiRegionHandle() {
  if (coordinator_.joinable()) coordinator_.join();
}

GuiRegionHandle& GuiRegionHandle::operator=(GuiRegionHandle&& other) noexcept {
  if (this != &other) {
    if (coordinator_.joinable()) coordinator_.join();
    coordinator_ = std::move(other.coordinator_);
  }
  return *this;
}

void GuiRegionHandle::wait() {
  if (coordinator_.joinable()) coordinator_.join();
}

GuiRegionHandle gui_region(
    std::size_t num_threads, std::function<void(Team&)> body,
    std::function<void(std::exception_ptr)> on_complete) {
  PARC_CHECK(body != nullptr);
  std::thread coordinator(
      [num_threads, body = std::move(body),
       on_complete = std::move(on_complete)] {
        std::exception_ptr error;
        try {
          region(num_threads, [&](Team& team) { body(team); });
        } catch (...) {
          error = std::current_exception();
        }
        if (on_complete) {
          dispatch_to_edt([on_complete, error] { on_complete(error); });
        }
      });
  return GuiRegionHandle(std::move(coordinator));
}

}  // namespace parc::pj
