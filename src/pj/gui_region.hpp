// Pyjama's GUI-awareness: run a parallel region *off* the event-dispatch
// thread and deliver a completion handler back *onto* it.
//
// This is the `//#omp parallel freeguithread` construct of the Java Pyjama
// system (Vikas, Giacaman & Sinnen 2013): the EDT must never execute the
// region (it would freeze the UI), so a coordinator thread forks the team,
// joins it, and posts the continuation to the registered dispatcher.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <thread>

#include "pj/team.hpp"

namespace parc::pj {

/// Register the process-wide event dispatcher used by gui_region completion
/// handlers (same contract as ptask::Runtime::set_event_dispatcher). Pass
/// nullptr to unregister; handlers then run on the coordinator thread.
void set_event_dispatcher(std::function<void(std::function<void()>)> post);

/// Deliver on the EDT if registered, inline otherwise.
void dispatch_to_edt(std::function<void()> fn);

/// Handle for an in-flight GUI region; joins on wait() or destruction
/// (gsl::joining_thread discipline — never detached).
class GuiRegionHandle {
 public:
  GuiRegionHandle() = default;
  explicit GuiRegionHandle(std::thread coordinator);
  ~GuiRegionHandle();

  GuiRegionHandle(GuiRegionHandle&&) noexcept = default;
  GuiRegionHandle& operator=(GuiRegionHandle&&) noexcept;

  GuiRegionHandle(const GuiRegionHandle&) = delete;
  GuiRegionHandle& operator=(const GuiRegionHandle&) = delete;

  /// Block the calling thread until the region (and its completion dispatch)
  /// has finished. Do not call from the EDT.
  void wait();

  [[nodiscard]] bool joinable() const noexcept {
    return coordinator_.joinable();
  }

 private:
  std::thread coordinator_;
};

/// Run `body(team)` on a background team of `num_threads`; when the region
/// completes, `on_complete(error)` is posted to the EDT (error is nullptr on
/// success, else the first exception from the team).
GuiRegionHandle gui_region(
    std::size_t num_threads, std::function<void(Team&)> body,
    std::function<void(std::exception_ptr)> on_complete);

}  // namespace parc::pj
