// Project 1: the thumbnail-gallery pipeline with the exact strategy set the
// two student groups compared — work on the EDT (the anti-pattern), a single
// background worker (SwingWorker / AsyncTask analogue), a thread per image,
// and a ParallelTask multi-task with GUI notify. All strategies deliver
// thumbnails to an EDT-confined ListModel through the event loop, so the
// responsiveness probe measures exactly what a user would feel.
#pragma once

#include <cstdint>
#include <string>

#include "gui/event_loop.hpp"
#include "gui/widgets.hpp"
#include "img/image.hpp"
#include "ptask/runtime.hpp"

namespace parc::img {

enum class ThumbnailStrategy {
  kOnEventThread,   ///< decode+scale on the EDT (freezes the UI)
  kSingleWorker,    ///< one background worker (SwingWorker)
  kThreadPerImage,  ///< unbounded std::thread per image
  kPTaskMulti,      ///< ParallelTask multi-task over the pool
};

[[nodiscard]] std::string to_string(ThumbnailStrategy s);

struct ThumbnailRun {
  double wall_ms = 0.0;          ///< start → all thumbnails delivered
  std::size_t thumbnails = 0;    ///< items appended to the list model
  std::size_t peak_threads = 0;  ///< extra threads the strategy created
};

/// Render thumbnails for every image in `folder` into `gallery` using the
/// given strategy; returns once all thumbnails are delivered (list model
/// populated on the EDT). The event loop stays live throughout so probe
/// events interleave with delivery.
ThumbnailRun render_gallery(const ImageFolder& folder, std::uint32_t box,
                            Filter filter, ThumbnailStrategy strategy,
                            gui::EventLoop& loop,
                            gui::ListModel<Image>& gallery,
                            ptask::Runtime& rt);

}  // namespace parc::img
