// Synthetic image substrate for the thumbnail experiments (project 1).
//
// The paper's students opened folders of photos; we generate procedural
// RGBA images deterministically instead (same decode-scale-encode compute
// shape, no binary assets), and provide the box/bilinear/bicubic scalers a
// thumbnail pipeline needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::img {

struct Pixel {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;
  std::uint8_t a = 255;

  bool operator==(const Pixel&) const = default;
};

class Image {
 public:
  Image() = default;
  Image(std::uint32_t width, std::uint32_t height)
      : width_(width), height_(height), pixels_(static_cast<std::size_t>(width) * height) {}

  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return height_; }

  [[nodiscard]] Pixel& at(std::uint32_t x, std::uint32_t y) noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }
  [[nodiscard]] const Pixel& at(std::uint32_t x, std::uint32_t y) const noexcept {
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
  }

  [[nodiscard]] const std::vector<Pixel>& pixels() const noexcept {
    return pixels_;
  }

  /// FNV-1a over the pixel bytes: cheap content fingerprint for tests.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;

  /// Mean luminance in [0, 255] (Rec.601 weights).
  [[nodiscard]] double mean_luminance() const noexcept;

 private:
  std::uint32_t width_ = 0;
  std::uint32_t height_ = 0;
  std::vector<Pixel> pixels_;
};

enum class Filter { kBox, kBilinear, kBicubic };

[[nodiscard]] std::string to_string(Filter f);

/// Procedural "photo": layered value-noise gradients, deterministic in seed.
[[nodiscard]] Image generate_image(std::uint32_t width, std::uint32_t height,
                                   std::uint64_t seed);

/// Scale to the target size with the chosen filter. Aspect is the caller's
/// problem (thumbnail pipelines preserve it via fit_within).
[[nodiscard]] Image resize(const Image& src, std::uint32_t dst_width,
                           std::uint32_t dst_height,
                           Filter filter = Filter::kBilinear);

/// Largest (w, h) with the source aspect ratio fitting in a square box.
struct Extent {
  std::uint32_t width;
  std::uint32_t height;
};
[[nodiscard]] Extent fit_within(std::uint32_t src_w, std::uint32_t src_h,
                                std::uint32_t box);

/// A folder of images with sizes drawn from a seeded, skewed distribution
/// (a few large "photos", many small ones) — the workload generator the
/// thumbnail benches sweep.
struct ImageFolder {
  std::vector<Image> images;
  [[nodiscard]] std::size_t total_pixels() const noexcept;
};
[[nodiscard]] ImageFolder make_image_folder(std::size_t count,
                                            std::uint32_t min_side,
                                            std::uint32_t max_side,
                                            std::uint64_t seed);

}  // namespace parc::img
