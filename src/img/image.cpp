#include "img/image.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parc::img {

std::uint64_t Image::content_hash() const noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (const auto& p : pixels_) {
    mix(p.r);
    mix(p.g);
    mix(p.b);
    mix(p.a);
  }
  return h;
}

double Image::mean_luminance() const noexcept {
  if (pixels_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& p : pixels_) {
    acc += 0.299 * p.r + 0.587 * p.g + 0.114 * p.b;
  }
  return acc / static_cast<double>(pixels_.size());
}

std::string to_string(Filter f) {
  switch (f) {
    case Filter::kBox: return "box";
    case Filter::kBilinear: return "bilinear";
    case Filter::kBicubic: return "bicubic";
  }
  return "?";
}

namespace {

/// Smooth value noise: hash lattice points, interpolate with smoothstep.
double value_noise(std::uint64_t seed, double x, double y) {
  auto lattice = [&](std::int64_t ix, std::int64_t iy) {
    SplitMix64 sm(seed ^ (static_cast<std::uint64_t>(ix) * 0x9E3779B97F4A7C15ULL) ^
                  (static_cast<std::uint64_t>(iy) << 32));
    return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  };
  const auto x0 = static_cast<std::int64_t>(std::floor(x));
  const auto y0 = static_cast<std::int64_t>(std::floor(y));
  const double fx = x - static_cast<double>(x0);
  const double fy = y - static_cast<double>(y0);
  auto smooth = [](double t) { return t * t * (3.0 - 2.0 * t); };
  const double sx = smooth(fx);
  const double sy = smooth(fy);
  const double v00 = lattice(x0, y0);
  const double v10 = lattice(x0 + 1, y0);
  const double v01 = lattice(x0, y0 + 1);
  const double v11 = lattice(x0 + 1, y0 + 1);
  const double a = v00 + (v10 - v00) * sx;
  const double b = v01 + (v11 - v01) * sx;
  return a + (b - a) * sy;
}

std::uint8_t to_byte(double v) {
  return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

}  // namespace

Image generate_image(std::uint32_t width, std::uint32_t height,
                     std::uint64_t seed) {
  PARC_CHECK(width >= 1 && height >= 1);
  Image img(width, height);
  const double inv_w = 1.0 / static_cast<double>(width);
  const double inv_h = 1.0 / static_cast<double>(height);
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const double u = static_cast<double>(x) * inv_w;
      const double v = static_cast<double>(y) * inv_h;
      // Three octaves of value noise per channel + a base gradient.
      const double n1 = value_noise(seed, u * 8, v * 8);
      const double n2 = value_noise(seed ^ 0xABCD, u * 16, v * 16);
      const double n3 = value_noise(seed ^ 0x1234, u * 4, v * 4);
      img.at(x, y) = Pixel{
          to_byte(255.0 * (0.5 * n1 + 0.3 * n2 + 0.2 * u)),
          to_byte(255.0 * (0.6 * n3 + 0.4 * v)),
          to_byte(255.0 * (0.4 * n1 + 0.3 * n3 + 0.3 * (1.0 - u))),
          255,
      };
    }
  }
  return img;
}

namespace {

Image resize_box(const Image& src, std::uint32_t dw, std::uint32_t dh) {
  Image dst(dw, dh);
  const double sx = static_cast<double>(src.width()) / dw;
  const double sy = static_cast<double>(src.height()) / dh;
  for (std::uint32_t y = 0; y < dh; ++y) {
    const auto y0 = static_cast<std::uint32_t>(y * sy);
    const auto y1 = std::min(static_cast<std::uint32_t>((y + 1) * sy) + 1,
                             src.height());
    for (std::uint32_t x = 0; x < dw; ++x) {
      const auto x0 = static_cast<std::uint32_t>(x * sx);
      const auto x1 = std::min(static_cast<std::uint32_t>((x + 1) * sx) + 1,
                               src.width());
      double r = 0, g = 0, b = 0, a = 0;
      int count = 0;
      for (std::uint32_t yy = y0; yy < y1; ++yy) {
        for (std::uint32_t xx = x0; xx < x1; ++xx) {
          const Pixel& p = src.at(xx, yy);
          r += p.r;
          g += p.g;
          b += p.b;
          a += p.a;
          ++count;
        }
      }
      const double inv = count > 0 ? 1.0 / count : 0.0;
      dst.at(x, y) = Pixel{to_byte(r * inv), to_byte(g * inv), to_byte(b * inv),
                           to_byte(a * inv)};
    }
  }
  return dst;
}

Image resize_bilinear(const Image& src, std::uint32_t dw, std::uint32_t dh) {
  Image dst(dw, dh);
  const double sx = static_cast<double>(src.width() - 1) / std::max(dw - 1, 1u);
  const double sy =
      static_cast<double>(src.height() - 1) / std::max(dh - 1, 1u);
  for (std::uint32_t y = 0; y < dh; ++y) {
    const double fy = y * sy;
    const auto y0 = static_cast<std::uint32_t>(fy);
    const auto y1 = std::min(y0 + 1, src.height() - 1);
    const double wy = fy - y0;
    for (std::uint32_t x = 0; x < dw; ++x) {
      const double fx = x * sx;
      const auto x0 = static_cast<std::uint32_t>(fx);
      const auto x1 = std::min(x0 + 1, src.width() - 1);
      const double wx = fx - x0;
      auto lerp_channel = [&](auto get) {
        const double top = get(src.at(x0, y0)) * (1 - wx) +
                           get(src.at(x1, y0)) * wx;
        const double bot = get(src.at(x0, y1)) * (1 - wx) +
                           get(src.at(x1, y1)) * wx;
        return top * (1 - wy) + bot * wy;
      };
      dst.at(x, y) = Pixel{
          to_byte(lerp_channel([](const Pixel& p) { return double(p.r); })),
          to_byte(lerp_channel([](const Pixel& p) { return double(p.g); })),
          to_byte(lerp_channel([](const Pixel& p) { return double(p.b); })),
          to_byte(lerp_channel([](const Pixel& p) { return double(p.a); })),
      };
    }
  }
  return dst;
}

double cubic_weight(double t) {
  // Catmull-Rom kernel (a = -0.5).
  constexpr double a = -0.5;
  t = std::abs(t);
  if (t <= 1.0) return (a + 2.0) * t * t * t - (a + 3.0) * t * t + 1.0;
  if (t < 2.0) return a * t * t * t - 5.0 * a * t * t + 8.0 * a * t - 4.0 * a;
  return 0.0;
}

Image resize_bicubic(const Image& src, std::uint32_t dw, std::uint32_t dh) {
  Image dst(dw, dh);
  const double sx = static_cast<double>(src.width()) / dw;
  const double sy = static_cast<double>(src.height()) / dh;
  const auto w = static_cast<std::int64_t>(src.width());
  const auto h = static_cast<std::int64_t>(src.height());
  for (std::uint32_t y = 0; y < dh; ++y) {
    const double fy = (y + 0.5) * sy - 0.5;
    const auto iy = static_cast<std::int64_t>(std::floor(fy));
    for (std::uint32_t x = 0; x < dw; ++x) {
      const double fx = (x + 0.5) * sx - 0.5;
      const auto ix = static_cast<std::int64_t>(std::floor(fx));
      double r = 0, g = 0, b = 0, a = 0, wsum = 0;
      for (std::int64_t dy = -1; dy <= 2; ++dy) {
        for (std::int64_t dx = -1; dx <= 2; ++dx) {
          const auto px = std::clamp<std::int64_t>(ix + dx, 0, w - 1);
          const auto py = std::clamp<std::int64_t>(iy + dy, 0, h - 1);
          const double weight = cubic_weight(fx - static_cast<double>(ix + dx)) *
                                cubic_weight(fy - static_cast<double>(iy + dy));
          const Pixel& p = src.at(static_cast<std::uint32_t>(px),
                                  static_cast<std::uint32_t>(py));
          r += weight * p.r;
          g += weight * p.g;
          b += weight * p.b;
          a += weight * p.a;
          wsum += weight;
        }
      }
      const double inv = wsum != 0.0 ? 1.0 / wsum : 0.0;
      dst.at(x, y) = Pixel{to_byte(r * inv), to_byte(g * inv), to_byte(b * inv),
                           to_byte(a * inv)};
    }
  }
  return dst;
}

}  // namespace

Image resize(const Image& src, std::uint32_t dst_width,
             std::uint32_t dst_height, Filter filter) {
  PARC_CHECK(src.width() >= 1 && src.height() >= 1);
  PARC_CHECK(dst_width >= 1 && dst_height >= 1);
  switch (filter) {
    case Filter::kBox: return resize_box(src, dst_width, dst_height);
    case Filter::kBilinear: return resize_bilinear(src, dst_width, dst_height);
    case Filter::kBicubic: return resize_bicubic(src, dst_width, dst_height);
  }
  PARC_CHECK_MSG(false, "unknown filter");
  return {};
}

Extent fit_within(std::uint32_t src_w, std::uint32_t src_h,
                  std::uint32_t box) {
  PARC_CHECK(src_w >= 1 && src_h >= 1 && box >= 1);
  if (src_w >= src_h) {
    const auto h = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               static_cast<std::uint64_t>(box) * src_h / src_w));
    return {box, h};
  }
  const auto w = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(static_cast<std::uint64_t>(box) * src_w /
                                    src_h));
  return {w, box};
}

std::size_t ImageFolder::total_pixels() const noexcept {
  std::size_t total = 0;
  for (const auto& img : images) {
    total += static_cast<std::size_t>(img.width()) * img.height();
  }
  return total;
}

ImageFolder make_image_folder(std::size_t count, std::uint32_t min_side,
                              std::uint32_t max_side, std::uint64_t seed) {
  PARC_CHECK(min_side >= 1 && min_side <= max_side);
  ImageFolder folder;
  folder.images.reserve(count);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    // Pareto-skewed sides: most images small, a few near max (real photo
    // folders look like this, and it is what makes scheduling interesting).
    const double span = static_cast<double>(max_side - min_side + 1);
    auto side_of = [&]() {
      const double p = rng.pareto(1.0, 2.0);  // >= 1, heavy tail
      const double frac = std::min((p - 1.0) / 4.0, 1.0);
      return min_side + static_cast<std::uint32_t>(frac * (span - 1.0));
    };
    const std::uint32_t w = side_of();
    const std::uint32_t h = side_of();
    folder.images.push_back(generate_image(w, h, seed ^ (i * 0x9E3779B9ULL)));
  }
  return folder;
}

}  // namespace parc::img
