#include "img/ppm.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "support/check.hpp"

namespace parc::img {

void write_ppm(const Image& image, std::ostream& os) {
  PARC_CHECK(image.width() >= 1 && image.height() >= 1);
  os << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  std::vector<char> row(static_cast<std::size_t>(image.width()) * 3);
  for (std::uint32_t y = 0; y < image.height(); ++y) {
    for (std::uint32_t x = 0; x < image.width(); ++x) {
      const Pixel& p = image.at(x, y);
      row[x * 3 + 0] = static_cast<char>(p.r);
      row[x * 3 + 1] = static_cast<char>(p.g);
      row[x * 3 + 2] = static_cast<char>(p.b);
    }
    os.write(row.data(), static_cast<std::streamsize>(row.size()));
  }
  PARC_CHECK_MSG(os.good(), "PPM write failed");
}

namespace {

/// Read one whitespace/comment-delimited PPM header token.
std::string next_token(std::istream& is) {
  std::string token;
  for (;;) {
    const int c = is.get();
    PARC_CHECK_MSG(c != EOF, "truncated PPM header");
    if (c == '#') {  // comment to end of line
      std::string skip;
      std::getline(is, skip);
      continue;
    }
    if (std::isspace(c)) {
      if (!token.empty()) return token;
      continue;
    }
    token.push_back(static_cast<char>(c));
  }
}

}  // namespace

Image read_ppm(std::istream& is) {
  PARC_CHECK_MSG(next_token(is) == "P6", "not a binary PPM (P6)");
  const auto width = static_cast<std::uint32_t>(std::stoul(next_token(is)));
  const auto height = static_cast<std::uint32_t>(std::stoul(next_token(is)));
  const auto maxval = std::stoul(next_token(is));
  PARC_CHECK_MSG(maxval == 255, "only maxval 255 supported");
  PARC_CHECK(width >= 1 && height >= 1);

  Image image(width, height);
  std::vector<char> row(static_cast<std::size_t>(width) * 3);
  for (std::uint32_t y = 0; y < height; ++y) {
    is.read(row.data(), static_cast<std::streamsize>(row.size()));
    PARC_CHECK_MSG(is.gcount() == static_cast<std::streamsize>(row.size()),
                   "truncated PPM pixel data");
    for (std::uint32_t x = 0; x < width; ++x) {
      image.at(x, y) = Pixel{
          static_cast<std::uint8_t>(row[x * 3 + 0]),
          static_cast<std::uint8_t>(row[x * 3 + 1]),
          static_cast<std::uint8_t>(row[x * 3 + 2]),
          255,
      };
    }
  }
  return image;
}

void save_ppm(const Image& image, const std::string& path) {
  std::ofstream file(path, std::ios::binary);
  PARC_CHECK_MSG(file.is_open(), "cannot open PPM output file");
  write_ppm(image, file);
}

Image load_ppm(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  PARC_CHECK_MSG(file.is_open(), "cannot open PPM input file");
  return read_ppm(file);
}

}  // namespace parc::img
