#include "img/thumbnails.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "ptask/ptask.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"

namespace parc::img {

std::string to_string(ThumbnailStrategy s) {
  switch (s) {
    case ThumbnailStrategy::kOnEventThread: return "on-EDT";
    case ThumbnailStrategy::kSingleWorker: return "single-worker";
    case ThumbnailStrategy::kThreadPerImage: return "thread-per-image";
    case ThumbnailStrategy::kPTaskMulti: return "ptask-multi";
  }
  return "?";
}

namespace {

Image make_thumbnail(const Image& src, std::uint32_t box, Filter filter) {
  // Simulated decode: a real thumbnailer decompresses the photo before
  // scaling, an O(source pixels) pass that dominates the cost. Our images
  // are already raw, so stand in for the decode with a full-image pass —
  // without it, per-item work would be O(thumbnail) and no strategy could
  // ever freeze a UI, which would falsify the experiment, not the claim.
  volatile double decode_sink = src.mean_luminance();
  (void)decode_sink;
  const Extent e = fit_within(src.width(), src.height(), box);
  return resize(src, e.width, e.height, filter);
}

}  // namespace

ThumbnailRun render_gallery(const ImageFolder& folder, std::uint32_t box,
                            Filter filter, ThumbnailStrategy strategy,
                            gui::EventLoop& loop,
                            gui::ListModel<Image>& gallery,
                            ptask::Runtime& rt) {
  const std::size_t n = folder.images.size();
  ThumbnailRun run;
  run.thumbnails = n;
  std::atomic<std::size_t> delivered{0};
  Stopwatch sw;

  auto deliver = [&](Image thumb) {
    // Hop to the EDT: the only thread allowed to touch the list model.
    loop.post([&, thumb = std::move(thumb)]() mutable {
      gallery.append(std::move(thumb));
      delivered.fetch_add(1, std::memory_order_release);
    });
  };

  switch (strategy) {
    case ThumbnailStrategy::kOnEventThread: {
      // The anti-pattern: each scale runs as an EDT event, so probe events
      // queue behind whole-image work.
      for (const auto& src : folder.images) {
        loop.post([&, &src = src] {
          gallery.append(make_thumbnail(src, box, filter));
          delivered.fetch_add(1, std::memory_order_release);
        });
      }
      run.peak_threads = 0;
      break;
    }
    case ThumbnailStrategy::kSingleWorker: {
      std::thread worker([&] {
        for (const auto& src : folder.images) {
          deliver(make_thumbnail(src, box, filter));
        }
      });
      worker.join();
      run.peak_threads = 1;
      break;
    }
    case ThumbnailStrategy::kThreadPerImage: {
      std::vector<std::thread> threads;
      threads.reserve(n);
      for (const auto& src : folder.images) {
        threads.emplace_back(
            [&, &src = src] { deliver(make_thumbnail(src, box, filter)); });
      }
      for (auto& t : threads) t.join();
      run.peak_threads = n;
      break;
    }
    case ThumbnailStrategy::kPTaskMulti: {
      auto task = ptask::run_multi(rt, n, [&](std::size_t i) {
        deliver(make_thumbnail(folder.images[i], box, filter));
      });
      task.get();
      run.peak_threads = rt.worker_count();
      break;
    }
  }

  // All producers finished; wait for the EDT to drain deliveries.
  while (delivered.load(std::memory_order_acquire) < n) {
    std::this_thread::yield();
  }
  run.wall_ms = sw.elapsed_ms();
  return run;
}

}  // namespace parc::img
