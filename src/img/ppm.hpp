// Binary PPM (P6) serialisation: lets the examples write real image
// artifacts a viewer can open, and gives tests an encode/decode round-trip.
// Alpha is not representable in PPM and is dropped on write / set to 255 on
// read.
#pragma once

#include <iosfwd>
#include <string>

#include "img/image.hpp"

namespace parc::img {

/// Serialise as binary PPM (P6, maxval 255).
void write_ppm(const Image& image, std::ostream& os);

/// Parse a binary PPM produced by write_ppm (or any P6 with maxval 255).
/// Aborts on malformed input — this is a tool for our own artifacts, not a
/// hardened codec.
[[nodiscard]] Image read_ppm(std::istream& is);

/// Convenience file wrappers.
void save_ppm(const Image& image, const std::string& path);
[[nodiscard]] Image load_ppm(const std::string& path);

}  // namespace parc::img
