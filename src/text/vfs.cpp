#include "text/vfs.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace parc::text {

namespace {

/// Synthetic vocabulary: pronounceable CVCV... words, none of which can
/// collide with a user needle containing characters outside the pattern.
std::vector<std::string> make_vocabulary(std::size_t size, Rng& rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
  static constexpr char kVowels[] = "aeiou";
  std::vector<std::string> vocab;
  vocab.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::size_t syllables = 2 + rng.below(3);
    std::string w;
    for (std::size_t s = 0; s < syllables; ++s) {
      w.push_back(kConsonants[rng.below(sizeof(kConsonants) - 1)]);
      w.push_back(kVowels[rng.below(sizeof(kVowels) - 1)]);
    }
    vocab.push_back(std::move(w));
  }
  return vocab;
}

std::string make_path(Rng& rng, std::size_t depth, std::size_t index) {
  static constexpr const char* kFolders[] = {"src",  "docs",  "notes",
                                             "data", "tests", "reports"};
  std::string path;
  for (std::size_t d = 0; d < depth; ++d) {
    path += kFolders[rng.below(std::size(kFolders))];
    path += '/';
  }
  path += "file_" + std::to_string(index) + ".txt";
  return path;
}

/// Sample a word count log-normally with the requested mean.
std::size_t sample_word_count(Rng& rng, std::size_t mean) {
  const double mu = std::log(static_cast<double>(mean)) - 0.5;
  const auto n = static_cast<std::size_t>(rng.lognormal(mu, 1.0));
  return std::max<std::size_t>(n, 16);
}

}  // namespace

GeneratedCorpus make_corpus(const CorpusOptions& opts, std::uint64_t seed) {
  PARC_CHECK(opts.num_files >= 1);
  PARC_CHECK(!opts.needle.empty());
  Rng rng(seed);
  const auto vocab = make_vocabulary(4096, rng);
  // The vocabulary is lowercase CVCV; verify the needle cannot be generated
  // accidentally by checking it is not any vocab word (multi-word needles
  // can't collide because word boundaries are spaces).
  for (const auto& w : vocab) {
    PARC_CHECK_MSG(w != opts.needle, "needle collides with vocabulary");
  }

  GeneratedCorpus out;
  out.corpus.files.reserve(opts.num_files);
  for (std::size_t fi = 0; fi < opts.num_files; ++fi) {
    const std::size_t words = sample_word_count(rng, opts.mean_words_per_file);
    std::string content;
    content.reserve(words * 8);
    std::size_t line = 1;
    std::size_t col = 0;
    std::vector<std::pair<std::size_t, std::size_t>> planted;  // line, col

    const bool plant = rng.chance(opts.needle_file_fraction);
    std::size_t to_plant =
        plant ? 1 + rng.below(opts.max_needles_per_file) : 0;
    // Positions (word indices) where needles go, spread uniformly.
    std::vector<std::size_t> plant_at;
    for (std::size_t k = 0; k < to_plant; ++k) {
      plant_at.push_back(rng.below(words));
    }
    std::sort(plant_at.begin(), plant_at.end());
    plant_at.erase(std::unique(plant_at.begin(), plant_at.end()),
                   plant_at.end());

    std::size_t next_plant = 0;
    for (std::size_t w = 0; w < words; ++w) {
      const bool is_needle =
          next_plant < plant_at.size() && plant_at[next_plant] == w;
      const std::string& token =
          is_needle ? opts.needle
                    : vocab[rng.zipf(vocab.size(), 1.1)];
      if (is_needle) {
        planted.emplace_back(line, col);
        ++next_plant;
      }
      content += token;
      col += token.size();
      // ~12 words per line.
      if (w % 12 == 11) {
        content.push_back('\n');
        ++line;
        col = 0;
      } else {
        content.push_back(' ');
        ++col;
      }
    }
    content.push_back('\n');

    for (const auto& [l, c] : planted) {
      out.needles.push_back(PlantedNeedle{fi, l, c});
    }
    out.corpus.files.push_back(
        TextFile{make_path(rng, opts.folder_depth, fi), std::move(content)});
  }
  return out;
}

GeneratedPdfLibrary make_pdf_library(const PdfLibraryOptions& opts,
                                     std::uint64_t seed) {
  PARC_CHECK(opts.num_documents >= 1);
  Rng rng(seed);
  const auto vocab = make_vocabulary(2048, rng);
  for (const auto& w : vocab) {
    PARC_CHECK_MSG(w != opts.needle, "needle collides with vocabulary");
  }

  GeneratedPdfLibrary out;
  out.documents.reserve(opts.num_documents);
  for (std::size_t di = 0; di < opts.num_documents; ++di) {
    PagedDocument doc;
    doc.name = "doc_" + std::to_string(di) + ".pdf";
    // Pareto page counts: a few "books", many short papers.
    const auto pages = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(opts.mean_pages) *
               (rng.pareto(1.0, 2.2) - 0.5)));
    doc.pages.reserve(pages);
    for (std::size_t pi = 0; pi < pages; ++pi) {
      std::string page;
      page.reserve(opts.words_per_page * 8);
      const bool plant = rng.chance(opts.needle_page_fraction);
      const std::size_t plant_word =
          plant ? rng.below(opts.words_per_page) : opts.words_per_page;
      for (std::size_t w = 0; w < opts.words_per_page; ++w) {
        if (w == plant_word) {
          page += opts.needle;
        } else {
          page += vocab[rng.zipf(vocab.size(), 1.1)];
        }
        page.push_back(w % 15 == 14 ? '\n' : ' ');
      }
      if (plant) out.needles.push_back(PlantedPageNeedle{di, pi});
      doc.pages.push_back(std::move(page));
    }
    out.documents.push_back(std::move(doc));
  }
  return out;
}

}  // namespace parc::text
