// Virtual file system + deterministic text corpus generator.
//
// Replaces the real folders of text files / PDFs the students searched
// (substitution: removes disk nondeterminism, keeps the skewed file-size
// distribution that makes granularity choices matter). Needles are planted
// at generator-known locations so search results have an exact oracle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace parc::text {

struct TextFile {
  std::string path;     ///< folder-style path, e.g. "docs/a/report_17.txt"
  std::string content;  ///< newline-separated text
};

struct Corpus {
  std::vector<TextFile> files;

  [[nodiscard]] std::size_t total_bytes() const noexcept {
    std::size_t n = 0;
    for (const auto& f : files) n += f.content.size();
    return n;
  }
};

struct CorpusOptions {
  std::size_t num_files = 256;
  /// Words per file drawn log-normally around this mean (heavy tail).
  std::size_t mean_words_per_file = 2000;
  /// The needle string planted into a fraction of files.
  std::string needle = "concurrency";
  double needle_file_fraction = 0.25;
  /// Max needles planted per chosen file.
  std::size_t max_needles_per_file = 4;
  /// Folder tree depth for generated paths.
  std::size_t folder_depth = 3;
};

struct PlantedNeedle {
  std::size_t file_index;
  std::size_t line;    ///< 1-based line number
  std::size_t column;  ///< 0-based byte offset in the line
};

struct GeneratedCorpus {
  Corpus corpus;
  std::vector<PlantedNeedle> needles;  ///< ground truth, sorted by file/line
};

/// Build a corpus with Zipf-frequency synthetic words and planted needles.
/// Deterministic in `seed`. The vocabulary never contains the needle, so
/// the planted occurrences are exactly the true matches.
[[nodiscard]] GeneratedCorpus make_corpus(const CorpusOptions& opts,
                                          std::uint64_t seed);

/// Paged document ("PDF") library for project 7: page = text block;
/// documents have Pareto-distributed page counts.
struct PagedDocument {
  std::string name;
  std::vector<std::string> pages;
};

struct PdfLibraryOptions {
  std::size_t num_documents = 64;
  std::size_t mean_pages = 24;
  std::size_t words_per_page = 300;
  std::string needle = "parallel";
  double needle_page_fraction = 0.05;
};

struct PlantedPageNeedle {
  std::size_t doc_index;
  std::size_t page_index;
};

struct GeneratedPdfLibrary {
  std::vector<PagedDocument> documents;
  std::vector<PlantedPageNeedle> needles;
  [[nodiscard]] std::size_t total_pages() const noexcept {
    std::size_t n = 0;
    for (const auto& d : documents) n += d.pages.size();
    return n;
  }
};

[[nodiscard]] GeneratedPdfLibrary make_pdf_library(
    const PdfLibraryOptions& opts, std::uint64_t seed);

}  // namespace parc::text
