// Umbrella header for the text-search substrate (parc::text).
#pragma once

#include "text/search.hpp"  // IWYU pragma: export
#include "text/vfs.hpp"     // IWYU pragma: export
