#include "text/search.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>

#include "ptask/ptask.hpp"
#include "support/check.hpp"
#include "support/clock.hpp"

namespace parc::text {

std::vector<std::size_t> find_all_literal(std::string_view haystack,
                                          std::string_view needle) {
  std::vector<std::size_t> hits;
  const std::size_t n = haystack.size();
  const std::size_t m = needle.size();
  PARC_CHECK(m >= 1);
  if (m > n) return hits;

  // Boyer–Moore–Horspool bad-character skip table.
  std::array<std::size_t, 256> skip;
  skip.fill(m);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    skip[static_cast<unsigned char>(needle[i])] = m - 1 - i;
  }

  std::size_t pos = 0;
  while (pos + m <= n) {
    if (haystack[pos + m - 1] == needle[m - 1] &&
        haystack.compare(pos, m, needle) == 0) {
      hits.push_back(pos);
      pos += 1;  // overlapping matches allowed
    } else {
      pos += skip[static_cast<unsigned char>(haystack[pos + m - 1])];
    }
  }
  return hits;
}

namespace {

/// Convert byte offsets to (line, column) in one forward pass.
std::vector<Match> offsets_to_matches(const std::string& content,
                                      std::size_t file_index,
                                      const std::vector<std::size_t>& offsets) {
  std::vector<Match> out;
  out.reserve(offsets.size());
  std::size_t line = 1;
  std::size_t line_start = 0;
  std::size_t oi = 0;
  for (std::size_t i = 0; i <= content.size() && oi < offsets.size(); ++i) {
    while (oi < offsets.size() && offsets[oi] < i) {
      ++oi;  // defensive; offsets are sorted so this should not trigger
    }
    if (oi < offsets.size() && offsets[oi] == i) {
      out.push_back(Match{file_index, line, i - line_start});
      ++oi;
    }
    if (i < content.size() && content[i] == '\n') {
      ++line;
      line_start = i + 1;
    }
  }
  return out;
}

}  // namespace

std::vector<Match> search_file_literal(const TextFile& file,
                                       std::size_t file_index,
                                       std::string_view needle) {
  return offsets_to_matches(file.content, file_index,
                            find_all_literal(file.content, needle));
}

std::vector<Match> search_file_regex(const TextFile& file,
                                     std::size_t file_index,
                                     const std::regex& pattern) {
  std::vector<Match> out;
  std::size_t line = 1;
  std::size_t start = 0;
  const std::string& c = file.content;
  while (start <= c.size()) {
    std::size_t end = c.find('\n', start);
    if (end == std::string::npos) end = c.size();
    const char* begin_ptr = c.data() + start;
    const char* end_ptr = c.data() + end;
    for (std::cregex_iterator it(begin_ptr, end_ptr, pattern), last;
         it != last; ++it) {
      out.push_back(Match{file_index, line,
                          static_cast<std::size_t>(it->position(0))});
    }
    ++line;
    start = end + 1;
    if (end == c.size()) break;
  }
  return out;
}

std::vector<Match> search_corpus_seq(const Corpus& corpus,
                                     std::string_view needle) {
  std::vector<Match> all;
  for (std::size_t i = 0; i < corpus.files.size(); ++i) {
    auto m = search_file_literal(corpus.files[i], i, needle);
    all.insert(all.end(), m.begin(), m.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

namespace {

template <typename PerFile>
std::vector<Match> parallel_corpus_search(
    const Corpus& corpus, ptask::Runtime& rt,
    const std::function<void(const std::vector<Match>&)>& on_batch,
    PerFile&& per_file) {
  std::mutex batch_mutex;
  std::vector<Match> all;  // guarded by batch_mutex
  auto task = ptask::run_multi(rt, corpus.files.size(), [&](std::size_t i) {
    auto matches = per_file(corpus.files[i], i);
    if (matches.empty()) return;
    {
      std::scoped_lock lock(batch_mutex);
      all.insert(all.end(), matches.begin(), matches.end());
    }
    if (on_batch) on_batch(matches);
  });
  task.get();
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace

std::vector<Match> search_corpus_ptask(
    const Corpus& corpus, std::string_view needle, ptask::Runtime& rt,
    const std::function<void(const std::vector<Match>&)>& on_batch) {
  return parallel_corpus_search(
      corpus, rt, on_batch, [&](const TextFile& f, std::size_t i) {
        return search_file_literal(f, i, needle);
      });
}

std::vector<Match> search_corpus_regex_ptask(
    const Corpus& corpus, const std::string& pattern, ptask::Runtime& rt,
    const std::function<void(const std::vector<Match>&)>& on_batch) {
  const std::regex re(pattern, std::regex::optimize);
  return parallel_corpus_search(
      corpus, rt, on_batch, [&](const TextFile& f, std::size_t i) {
        return search_file_regex(f, i, re);
      });
}

std::string to_string(PdfGranularity g) {
  switch (g) {
    case PdfGranularity::kPerDocument: return "per-document";
    case PdfGranularity::kPerPage: return "per-page";
    case PdfGranularity::kPerChunk: return "per-chunk";
  }
  return "?";
}

PdfSearchResult search_pdfs_seq(const GeneratedPdfLibrary& lib,
                                std::string_view needle) {
  PdfSearchResult result;
  Stopwatch sw;
  for (std::size_t d = 0; d < lib.documents.size(); ++d) {
    const auto& doc = lib.documents[d];
    for (std::size_t p = 0; p < doc.pages.size(); ++p) {
      if (!find_all_literal(doc.pages[p], needle).empty()) {
        result.matches.push_back(PageMatch{d, p});
        result.delivery_ms.push_back(sw.elapsed_ms());
      }
    }
  }
  result.wall_ms = sw.elapsed_ms();
  return result;
}

PdfSearchResult search_pdfs_ptask(const GeneratedPdfLibrary& lib,
                                  std::string_view needle,
                                  PdfGranularity granularity,
                                  ptask::Runtime& rt,
                                  std::size_t chunk_pages) {
  PARC_CHECK(chunk_pages >= 1);
  PdfSearchResult result;
  std::mutex mutex;  // guards result.matches / delivery_ms
  Stopwatch sw;

  // Flatten (doc, page) work units, then group by granularity.
  struct Unit {
    std::size_t doc;
    std::size_t first_page;
    std::size_t last_page;  // exclusive
  };
  std::vector<Unit> units;
  for (std::size_t d = 0; d < lib.documents.size(); ++d) {
    const std::size_t pages = lib.documents[d].pages.size();
    switch (granularity) {
      case PdfGranularity::kPerDocument:
        units.push_back(Unit{d, 0, pages});
        break;
      case PdfGranularity::kPerPage:
        for (std::size_t p = 0; p < pages; ++p) {
          units.push_back(Unit{d, p, p + 1});
        }
        break;
      case PdfGranularity::kPerChunk:
        for (std::size_t p = 0; p < pages; p += chunk_pages) {
          units.push_back(Unit{d, p, std::min(p + chunk_pages, pages)});
        }
        break;
    }
  }

  auto task = ptask::run_multi(rt, units.size(), [&](std::size_t ui) {
    const Unit& u = units[ui];
    const auto& doc = lib.documents[u.doc];
    for (std::size_t p = u.first_page; p < u.last_page; ++p) {
      if (!find_all_literal(doc.pages[p], needle).empty()) {
        std::scoped_lock lock(mutex);
        result.matches.push_back(PageMatch{u.doc, p});
        result.delivery_ms.push_back(sw.elapsed_ms());
      }
    }
  });
  task.get();
  result.wall_ms = sw.elapsed_ms();
  std::sort(result.matches.begin(), result.matches.end());
  std::sort(result.delivery_ms.begin(), result.delivery_ms.end());
  return result;
}

}  // namespace parc::text
