// String search engines (projects 4 & 7): Boyer–Moore–Horspool literal
// search, regex search, and parallel folder-search drivers with incremental
// result delivery — the "matches appear while the search is running" UX the
// paper describes.
#pragma once

#include <cstdint>
#include <functional>
#include <regex>
#include <string>
#include <string_view>
#include <vector>

#include "gui/event_loop.hpp"
#include "pj/schedule.hpp"
#include "ptask/runtime.hpp"
#include "text/vfs.hpp"

namespace parc::text {

struct Match {
  std::size_t file_index;
  std::size_t line;    ///< 1-based
  std::size_t column;  ///< 0-based byte offset within the line

  bool operator==(const Match&) const = default;
  auto operator<=>(const Match&) const = default;
};

/// All occurrences of `needle` in `haystack` (byte offsets), BMH skip table.
[[nodiscard]] std::vector<std::size_t> find_all_literal(
    std::string_view haystack, std::string_view needle);

/// Matches of a literal needle in one file, with line/column resolution.
[[nodiscard]] std::vector<Match> search_file_literal(const TextFile& file,
                                                     std::size_t file_index,
                                                     std::string_view needle);

/// Regex matches in one file (first match per position, multiline input
/// split on '\n').
[[nodiscard]] std::vector<Match> search_file_regex(const TextFile& file,
                                                   std::size_t file_index,
                                                   const std::regex& pattern);

/// Sequential whole-corpus search (reference).
[[nodiscard]] std::vector<Match> search_corpus_seq(const Corpus& corpus,
                                                   std::string_view needle);

/// Parallel corpus search: a ParallelTask multi-task over files; per-file
/// result batches are delivered through `on_batch` *as they are found*
/// (called on the completing worker; hop to an EDT yourself if needed).
/// Blocks until the search completes; returns all matches sorted.
[[nodiscard]] std::vector<Match> search_corpus_ptask(
    const Corpus& corpus, std::string_view needle, ptask::Runtime& rt,
    const std::function<void(const std::vector<Match>&)>& on_batch = nullptr);

/// Regex variant of the parallel corpus search.
[[nodiscard]] std::vector<Match> search_corpus_regex_ptask(
    const Corpus& corpus, const std::string& pattern, ptask::Runtime& rt,
    const std::function<void(const std::vector<Match>&)>& on_batch = nullptr);

// ---------------------------------------------------------------------------
// Project 7: paged-document search with selectable granularity.
// ---------------------------------------------------------------------------

enum class PdfGranularity {
  kPerDocument,  ///< one task per document
  kPerPage,      ///< one task per page
  kPerChunk,     ///< one task per fixed-size page chunk
};

[[nodiscard]] std::string to_string(PdfGranularity g);

struct PageMatch {
  std::size_t doc_index;
  std::size_t page_index;

  bool operator==(const PageMatch&) const = default;
  auto operator<=>(const PageMatch&) const = default;
};

struct PdfSearchResult {
  std::vector<PageMatch> matches;  ///< sorted (doc, page)
  double wall_ms = 0.0;
  /// Wall time at which the k-th match was delivered (ms from start) —
  /// the "intermittent updates" metric: lower first-result latency is the
  /// point of finer granularity.
  std::vector<double> delivery_ms;
};

[[nodiscard]] PdfSearchResult search_pdfs_seq(const GeneratedPdfLibrary& lib,
                                              std::string_view needle);

[[nodiscard]] PdfSearchResult search_pdfs_ptask(const GeneratedPdfLibrary& lib,
                                                std::string_view needle,
                                                PdfGranularity granularity,
                                                ptask::Runtime& rt,
                                                std::size_t chunk_pages = 8);

}  // namespace parc::text
