// Umbrella header for the computational kernels (parc::kernels).
#pragma once

#include "kernels/fft.hpp"      // IWYU pragma: export
#include "kernels/graph.hpp"    // IWYU pragma: export
#include "kernels/linalg.hpp"   // IWYU pragma: export
#include "kernels/moldyn.hpp"   // IWYU pragma: export
#include "kernels/sort.hpp"     // IWYU pragma: export
#include "kernels/stencil.hpp"  // IWYU pragma: export
